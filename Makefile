GO ?= go

.PHONY: check fmt vet build test race chaos-smoke resilience-smoke guard-smoke fuzz-smoke shards-smoke serve-smoke bench bench-smoke

## check: the pre-merge gate — formatting, vet, build, the full suite under
## the race detector, chaos + resilience + guard + shards + serve + bench
## smoke runs, and a short fuzz pass over the chaos-schedule parser. Run
## before every merge; CI and the tier-1 verify in ROADMAP.md assume it
## passes.
check: fmt vet build race chaos-smoke resilience-smoke guard-smoke fuzz-smoke shards-smoke serve-smoke bench-smoke

## fmt: fail if any file needs gofmt (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the full suite under the race detector. -short skips only the
## wall-clock serve smoke, which serve-smoke below runs explicitly (with its
## report shown) so the 25 s pass doesn't run twice per check.
race:
	$(GO) test -race -short ./...

## chaos-smoke: a quick partition+heal chaos run through the CLI — proves
## the fault engine injects, heals and reports end to end.
chaos-smoke:
	$(GO) run ./cmd/l3bench -chaos 'partition@48s+24s:cluster-1/cluster-2' \
		-scenario scenario-1 -quick >/dev/null

## resilience-smoke: the retry-storm figure plus a policy-driven chaos run
## through the CLI — proves deadlines, budgets, per-try timeouts and the
## breaker compose end to end on the data plane.
resilience-smoke:
	$(GO) run ./cmd/l3bench -fig R1 -quick >/dev/null
	$(GO) run ./cmd/l3bench -chaos 'saturate@48s+24s:api-cluster-1/0.25' \
		-scenario scenario-1 -quick \
		-resilience 'deadline=1s,retries=3,budget=0.2,breaker=5' >/dev/null

## guard-smoke: the partial-visibility guard figure plus a guarded custom
## chaos run through the CLI — proves metric hygiene, degraded modes and
## the write gate compose end to end on the control plane.
guard-smoke:
	$(GO) run ./cmd/l3bench -fig G2 -quick >/dev/null
	$(GO) run ./cmd/l3bench -chaos 'garbage@48s+24s:nan' \
		-scenario scenario-1 -quick -guard >/dev/null

## fuzz-smoke: five seconds of coverage-guided fuzzing over the
## chaos-schedule parser — catches parse/String round-trip and validation
## regressions beyond the seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseSchedule -fuzztime 5s ./internal/chaos

## shards-smoke: figure 8 through the CLI on the sharded core at 1 and 4
## workers, stdout sha256-compared — proves the lookahead/barrier protocol
## keeps a full figure byte-identical at any worker count; figure S1 proves
## the 8-shard workload renders.
shards-smoke:
	@a="$$($(GO) run ./cmd/l3bench -fig 8 -quick -shards 1 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	b="$$($(GO) run ./cmd/l3bench -fig 8 -quick -shards 4 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	if [ "$$a" != "$$b" ]; then \
		echo "shards-smoke: -shards 1 ($$a) != -shards 4 ($$b)"; exit 1; fi; \
	echo "shards-smoke: fig 8 sha256 $$a identical at -shards 1 and 4"
	$(GO) run ./cmd/l3bench -fig S1 >/dev/null

## serve-smoke: the wall-clock serving mode end to end under the race
## detector — l3serve + stub backends on ephemeral ports, ~1.8k proxied
## requests of open-loop load per run, asserting the self-scraped /metrics
## parse, the L3 weight shift off the slow backend, the p99 win over
## round-robin and zero dropped requests across every graceful drain.
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke' -count=1 -v ./internal/serve

## bench: the fast-path benchmark suite (mesh.Call, metrics, histogram, event
## heap), machine-readable results in BENCH_fastpath.json, plus the
## shard-scaling sweep in BENCH_shards.json and the wall-clock serving-mode
## trajectory in BENCH_serve.json (rr vs l3 on skewed stubs: rps,
## p50/p99/p999, proxy-layer allocs/op).
bench:
	$(GO) run ./cmd/l3bench -bench -benchout BENCH_fastpath.json
	$(GO) run ./cmd/l3bench -bench-shards -benchout BENCH_shards.json
	$(GO) run ./cmd/l3serve -selftest -bench-out BENCH_serve.json

## bench-smoke: the same suite discarding results — proves the benchmark
## harness runs end to end.
bench-smoke:
	$(GO) run ./cmd/l3bench -bench -benchout /dev/null
