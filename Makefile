GO ?= go

.PHONY: check fmt vet build test race chaos-smoke resilience-smoke guard-smoke fuzz-smoke shards-smoke bench bench-smoke

## check: the pre-merge gate — formatting, vet, build, the full suite under
## the race detector, chaos + resilience + guard + shards + bench smoke runs,
## and a short fuzz pass over the chaos-schedule parser. Run before every
## merge; CI and the tier-1 verify in ROADMAP.md assume it passes.
check: fmt vet build race chaos-smoke resilience-smoke guard-smoke fuzz-smoke shards-smoke bench-smoke

## fmt: fail if any file needs gofmt (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos-smoke: a quick partition+heal chaos run through the CLI — proves
## the fault engine injects, heals and reports end to end.
chaos-smoke:
	$(GO) run ./cmd/l3bench -chaos 'partition@48s+24s:cluster-1/cluster-2' \
		-scenario scenario-1 -quick >/dev/null

## resilience-smoke: the retry-storm figure plus a policy-driven chaos run
## through the CLI — proves deadlines, budgets, per-try timeouts and the
## breaker compose end to end on the data plane.
resilience-smoke:
	$(GO) run ./cmd/l3bench -fig R1 -quick >/dev/null
	$(GO) run ./cmd/l3bench -chaos 'saturate@48s+24s:api-cluster-1/0.25' \
		-scenario scenario-1 -quick \
		-resilience 'deadline=1s,retries=3,budget=0.2,breaker=5' >/dev/null

## guard-smoke: the partial-visibility guard figure plus a guarded custom
## chaos run through the CLI — proves metric hygiene, degraded modes and
## the write gate compose end to end on the control plane.
guard-smoke:
	$(GO) run ./cmd/l3bench -fig G2 -quick >/dev/null
	$(GO) run ./cmd/l3bench -chaos 'garbage@48s+24s:nan' \
		-scenario scenario-1 -quick -guard >/dev/null

## fuzz-smoke: five seconds of coverage-guided fuzzing over the
## chaos-schedule parser — catches parse/String round-trip and validation
## regressions beyond the seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseSchedule -fuzztime 5s ./internal/chaos

## shards-smoke: figure 8 through the CLI on the sharded core at 1 and 4
## workers, stdout sha256-compared — proves the lookahead/barrier protocol
## keeps a full figure byte-identical at any worker count; figure S1 proves
## the 8-shard workload renders.
shards-smoke:
	@a="$$($(GO) run ./cmd/l3bench -fig 8 -quick -shards 1 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	b="$$($(GO) run ./cmd/l3bench -fig 8 -quick -shards 4 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	if [ "$$a" != "$$b" ]; then \
		echo "shards-smoke: -shards 1 ($$a) != -shards 4 ($$b)"; exit 1; fi; \
	echo "shards-smoke: fig 8 sha256 $$a identical at -shards 1 and 4"
	$(GO) run ./cmd/l3bench -fig S1 >/dev/null

## bench: the fast-path benchmark suite (mesh.Call, metrics, histogram, event
## heap), machine-readable results in BENCH_fastpath.json, plus the
## shard-scaling sweep in BENCH_shards.json.
bench:
	$(GO) run ./cmd/l3bench -bench -benchout BENCH_fastpath.json
	$(GO) run ./cmd/l3bench -bench-shards -benchout BENCH_shards.json

## bench-smoke: the same suite discarding results — proves the benchmark
## harness runs end to end.
bench-smoke:
	$(GO) run ./cmd/l3bench -bench -benchout /dev/null
