GO ?= go

.PHONY: check fmt vet build test race chaos-smoke resilience-smoke guard-smoke fuzz-smoke shards-vet shards-smoke serve-smoke serve-chaos-smoke overload-smoke bench bench-smoke bench-diff

## check: the pre-merge gate — formatting, vet, build, the full suite under
## the race detector, chaos + resilience + guard + shards + serve + bench
## smoke runs, and a short fuzz pass over the chaos-schedule parser. Run
## before every merge; CI and the tier-1 verify in ROADMAP.md assume it
## passes.
check: fmt vet build race chaos-smoke resilience-smoke guard-smoke fuzz-smoke shards-vet shards-smoke serve-smoke serve-chaos-smoke overload-smoke bench-smoke

## fmt: fail if any file needs gofmt (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the full suite under the race detector. -short skips only the
## wall-clock serve smoke, which serve-smoke below runs explicitly (with its
## report shown) so the 25 s pass doesn't run twice per check.
race:
	$(GO) test -race -short ./...

## chaos-smoke: a quick partition+heal chaos run through the CLI — proves
## the fault engine injects, heals and reports end to end.
chaos-smoke:
	$(GO) run ./cmd/l3bench -chaos 'partition@48s+24s:cluster-1/cluster-2' \
		-scenario scenario-1 -quick >/dev/null

## resilience-smoke: the retry-storm figure plus a policy-driven chaos run
## through the CLI — proves deadlines, budgets, per-try timeouts and the
## breaker compose end to end on the data plane.
resilience-smoke:
	$(GO) run ./cmd/l3bench -fig R1 -quick >/dev/null
	$(GO) run ./cmd/l3bench -chaos 'saturate@48s+24s:api-cluster-1/0.25' \
		-scenario scenario-1 -quick \
		-resilience 'deadline=1s,retries=3,budget=0.2,breaker=5' >/dev/null

## guard-smoke: the partial-visibility guard figure plus a guarded custom
## chaos run through the CLI — proves metric hygiene, degraded modes and
## the write gate compose end to end on the control plane.
guard-smoke:
	$(GO) run ./cmd/l3bench -fig G2 -quick >/dev/null
	$(GO) run ./cmd/l3bench -chaos 'garbage@48s+24s:nan' \
		-scenario scenario-1 -quick -guard >/dev/null

## fuzz-smoke: five seconds of coverage-guided fuzzing over the
## chaos-schedule parser — catches parse/String round-trip and validation
## regressions beyond the seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseSchedule -fuzztime 5s ./internal/chaos

## shards-vet: formatting and vet focused on the sharded core's packages —
## the fan-out/barrier code is where a stray data race or un-gofmt'd hot
## patch costs the most, so the gate names them explicitly (and fails fast,
## before the heavier smokes).
shards-vet:
	@out="$$(gofmt -l internal/sim internal/mesh internal/bench internal/perf)"; \
	if [ -n "$$out" ]; then \
		echo "shards-vet: gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./internal/sim ./internal/mesh ./internal/bench ./internal/perf
	@echo "shards-vet: shard packages gofmt-clean and vetted"

## shards-smoke: figure 8 through the CLI on the sharded core at 1 and 4
## workers, stdout sha256-compared — proves the lookahead/barrier protocol
## keeps a full figure byte-identical at any worker count. A second pass
## runs a resilience policy (deadline, budgeted retries, breaker) under a
## saturate fault at -shards 1 and 8 — the cross-shard continuation path —
## with the same sha comparison. Figure S1 proves the 8-shard workload
## renders.
shards-smoke:
	@a="$$($(GO) run ./cmd/l3bench -fig 8 -quick -shards 1 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	b="$$($(GO) run ./cmd/l3bench -fig 8 -quick -shards 4 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	if [ "$$a" != "$$b" ]; then \
		echo "shards-smoke: -shards 1 ($$a) != -shards 4 ($$b)"; exit 1; fi; \
	echo "shards-smoke: fig 8 sha256 $$a identical at -shards 1 and 4"
	@a="$$($(GO) run ./cmd/l3bench -chaos 'saturate@48s+24s:api-cluster-1/0.25' \
		-scenario scenario-1 -quick -shards 1 \
		-resilience 'deadline=1s,retries=3,budget=0.2,breaker=5' 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	b="$$($(GO) run ./cmd/l3bench -chaos 'saturate@48s+24s:api-cluster-1/0.25' \
		-scenario scenario-1 -quick -shards 8 \
		-resilience 'deadline=1s,retries=3,budget=0.2,breaker=5' 2>/dev/null | shasum -a 256 | cut -d' ' -f1)"; \
	if [ "$$a" != "$$b" ]; then \
		echo "shards-smoke: resilience under -shards 1 ($$a) != -shards 8 ($$b)"; exit 1; fi; \
	echo "shards-smoke: resilience-under-shards sha256 $$a identical at -shards 1 and 8"
	$(GO) run ./cmd/l3bench -fig S1 >/dev/null

## serve-smoke: the wall-clock serving mode end to end under the race
## detector — l3serve + stub backends on ephemeral ports, ~1.8k proxied
## requests of open-loop load per run, asserting the self-scraped /metrics
## parse, the L3 weight shift off the slow backend, the p99 win over
## round-robin and zero dropped requests across every graceful drain.
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke$$' -count=1 -v ./internal/serve

## serve-chaos-smoke: the wall-clock chaos harness end to end under the race
## detector — the compressed fault schedule (backend stall, connection-reset
## burst, control-plane scrape outage) against the live proxy, asserting the
## breaker ejects within its failure bound, windowed p99 re-converges with a
## measured time-to-recover, and fail-static engages and releases.
serve-chaos-smoke:
	$(GO) test -race -run 'TestServeChaosSmoke' -count=1 -v ./internal/serve

## overload-smoke: the admission-control layer end to end — the O1 quick
## golden (saturation collapse vs limiter+CoDel) through the CLI, then the
## wall-clock overload scene under the race detector: a saturating square
## wave against the live admission-controlled proxy, asserting bounded queue
## delay, tier-ordered shedding, live in-flight gauges and full tier
## re-admission.
overload-smoke:
	$(GO) run ./cmd/l3bench -fig O1 -quick >/dev/null
	$(GO) test -race -run 'TestServeOverloadScene' -count=1 -v ./internal/serve

## bench: the fast-path benchmark suite (mesh.Call, metrics, histogram, event
## heap), machine-readable results in BENCH_fastpath.json, plus the
## shard-scaling sweep in BENCH_shards.json and the wall-clock serving-mode
## records in BENCH_serve.json — the rr-vs-l3 skewed-stub trajectory (rps,
## p50/p99/p999, proxy-layer allocs/op) and the chaostest recovery records
## (per-fault time-to-recover, breaker ejections, fail-static engagement).
bench:
	$(GO) run ./cmd/l3bench -bench -benchout BENCH_fastpath.json
	$(GO) run ./cmd/l3bench -bench-shards -benchout BENCH_shards.json
	$(GO) run ./cmd/l3serve -selftest -chaostest -bench-out BENCH_serve.json

## bench-smoke: the same suite discarding results — proves the benchmark
## harness runs end to end.
bench-smoke:
	$(GO) run ./cmd/l3bench -bench -benchout /dev/null

## bench-diff: re-measure the benchmark suites against the committed
## baselines and fail on >15% ns/op or any allocs/op regression
## (BENCH_fastpath.json gates the fast-path suite, BENCH_shards.json the
## barrier/mailbox pair). BENCH_serve.json is load-dependent wall-clock, so
## its pass checks the host-independent contracts instead of re-timing:
## 0 proxy-layer allocs/op, l3 beating rr's p99, and every chaos record
## showing recovery (breaker ejections, fail-static, ttr). Wall-clock
## comparisons are only meaningful on hardware comparable to the machine
## that wrote the baselines — regenerate them with `make bench` when the
## host changes.
bench-diff:
	$(GO) run ./cmd/l3bench -benchdiff BENCH_fastpath.json
	$(GO) run ./cmd/l3bench -benchdiff BENCH_shards.json
	$(GO) run ./cmd/l3bench -benchdiff BENCH_serve.json
