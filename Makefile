GO ?= go

.PHONY: check vet build test race

## check: the pre-merge gate — vet, build, and the full suite under the
## race detector. Run before every merge; CI and the tier-1 verify in
## ROADMAP.md assume it passes.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
