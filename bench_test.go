// Benchmarks regenerating every data figure of the paper's evaluation
// (Figures 1, 2, 4, 6, 7, 8, 9, 10, 11, 12 — Figures 3 and 5 are
// architecture diagrams) plus the ablation studies DESIGN.md calls out.
//
// Each benchmark executes the figure's full experiment per iteration and
// reports the figure's headline numbers as custom metrics (milliseconds or
// percent, suffixed with the paper's value where one exists). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers come from a simulated testbed and are not expected to
// match the paper's EC2 milliseconds; orderings and rough factors are the
// reproduction target (see EXPERIMENTS.md).
package l3_test

import (
	"strings"
	"testing"

	"l3/internal/bench"
)

// benchOpts are the shared settings: the paper's full 10-minute scenarios,
// single repetition per iteration (the CLI's -reps flag merges more).
func benchOpts() bench.Options {
	return bench.Options{Seed: 1}
}

// reportRows republishes a Result's rows as benchmark metrics, using
// sanitised row labels as metric names.
func reportRows(b *testing.B, r *bench.Result) {
	b.Helper()
	for _, row := range r.Rows {
		name := strings.ToLower(row.Label)
		for _, ch := range []string{" ", "(", ")", ",", "="} {
			name = strings.ReplaceAll(name, ch, "_")
		}
		name = strings.ReplaceAll(name, "__", "_")
		unit := row.Unit
		if unit == "" {
			unit = "value"
		}
		b.ReportMetric(row.Value, name+"_"+unit)
	}
}

func BenchmarkFig01_ScenarioLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig1(benchOpts().Seed)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 12 {
			b.Fatalf("series = %d", len(r.Series))
		}
	}
}

func BenchmarkFig02_ScenarioRPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig2(benchOpts().Seed)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 2 {
			b.Fatalf("series = %d", len(r.Series))
		}
	}
}

func BenchmarkFig04_RateControlCurve(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		r = bench.Fig4()
	}
	reportRows(b, r)
}

func BenchmarkFig06_ScenarioP99(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig6(benchOpts().Seed)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 9 {
			b.Fatalf("series = %d", len(r.Series))
		}
	}
}

func BenchmarkFig07_PenaltyFactor(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkFig08_EWMAvsPeakEWMA(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkFig09_DeathStarBench(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkFig10_Scenarios(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkFig11_FailureLatency(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkFig12_FailureSuccessRate(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.Fig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationInflightExponent(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationInflightExponent(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationPercentile(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationPercentile(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationRateControl(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationRateControl(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationScrapeInterval(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationScrapeInterval(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationBaselines(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationBaselines(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationFailover(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationFailover(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationDynamicPenalty(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationDynamicPenalty(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationPenaltyWithRetries(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationPenaltyWithRetries(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}

func BenchmarkAblationCostAwareness(b *testing.B) {
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.AblationCostAwareness(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, r)
}
