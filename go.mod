module l3

go 1.24
