// Command l3load is the repository's open-loop wall-clock load generator —
// the same wrk2-style internal/loadgen that drives every simulated figure,
// scheduled on a real clock against a real HTTP target. Arrivals follow the
// offered rate alone (never gated on responses), and the CatchUp cursor
// fires late arrivals back-to-back so the offered RPS stays honest under
// scheduling jitter — the constant-throughput discipline that avoids
// coordinated omission.
//
// When the target stamps X-L3-Backend on its responses (l3serve does), the
// tool additionally buckets latency per serving backend, so weight
// convergence and per-backend tail behaviour are observable from outside the
// proxy — the client-side view of the same story /metrics tells.
//
// Usage:
//
//	l3load -url http://127.0.0.1:8080/ -rate 500 -duration 30s
//	l3load -url http://127.0.0.1:8080/ -rate 500 -duration 30s -warmup 5s
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"l3/internal/clock"
	"l3/internal/histogram"
	"l3/internal/loadgen"
	"l3/internal/serve"
)

// stdout is swappable so tests can silence the tool's output.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "l3load:", err)
		os.Exit(1)
	}
}

// backendStats is one backend's client-observed latency histogram, bucketed
// on the same Linkerd bounds the server-side metrics use so the two views
// line up quantile for quantile.
type backendStats struct {
	count    uint64
	failures uint64
	counts   []float64
}

func (s *backendStats) observe(latency time.Duration, success bool) {
	s.count++
	if !success {
		s.failures++
	}
	s.counts[histogram.BucketFor(histogram.LinkerdLatencyBounds, latency.Seconds())]++
}

func run(args []string) error {
	fs := flag.NewFlagSet("l3load", flag.ContinueOnError)
	var (
		target   = fs.String("url", "", "target URL (required)")
		rate     = fs.Float64("rate", 100, "offered load in requests/second")
		duration = fs.Duration("duration", 10*time.Second, "measured window")
		warmup   = fs.Duration("warmup", 0, "discarded warm-up before the measured window")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-url is required")
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive")
	}

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	}

	// perBackend is written only inside wall.Do callbacks — the same
	// single-threaded discipline as the Recorder.
	perBackend := map[string]*backendStats{}
	observe := func(backend string, latency time.Duration, success bool) {
		s := perBackend[backend]
		if s == nil {
			s = &backendStats{counts: make([]float64, len(histogram.LinkerdLatencyBounds)+1)}
			perBackend[backend] = s
		}
		s.observe(latency, success)
	}

	wall := clock.NewWall()
	gen := loadgen.NewClock(wall, loadgen.Config{
		Rate:    loadgen.ConstantRate(*rate),
		WarmUp:  *warmup,
		CatchUp: true,
	}, func(done func(latency time.Duration, success bool)) error {
		go func() {
			start := time.Now()
			ok := false
			backend := ""
			if resp, err := client.Get(*target); err == nil {
				ok = resp.StatusCode < http.StatusInternalServerError
				backend = resp.Header.Get(serve.HeaderBackend)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			latency := time.Since(start)
			// The Recorder is single-threaded; completions re-enter
			// through the wall clock to serialize with arrivals.
			wall.Do(func() {
				done(latency, ok)
				observe(backend, latency, ok)
			})
		}()
		return nil
	})

	fmt.Fprintf(stdout, "l3load: %s at %.1f rps for %v (warm-up %v)\n", *target, *rate, *duration, *warmup)
	wall.Do(gen.Start)
	time.Sleep(*warmup + *duration)
	wall.Do(gen.Stop)
	time.Sleep(500 * time.Millisecond) // let stragglers record

	var report string
	var lines []string
	wall.Do(func() {
		rec := gen.Recorder()
		report = fmt.Sprintf(
			"l3load: issued=%d recorded=%d rps=%.1f ok=%.4f p50=%v p90=%v p99=%v p999=%v max-ish mean=%v",
			gen.Issued(), rec.Count(), float64(rec.Count())/duration.Seconds(),
			rec.SuccessRate(), rec.Quantile(0.50), rec.Quantile(0.90),
			rec.Quantile(0.99), rec.Quantile(0.999), rec.Mean())
		var total uint64
		for _, s := range perBackend {
			total += s.count
		}
		names := make([]string, 0, len(perBackend))
		for name := range perBackend {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := perBackend[name]
			label := name
			if label == "" {
				// No X-L3-Backend header: a non-l3serve target, or requests
				// that failed before any backend answered.
				label = "(unattributed)"
			}
			lines = append(lines, fmt.Sprintf(
				"l3load: backend %-16s n=%d share=%.3f ok=%.4f p50=%v p90=%v p99=%v",
				label, s.count, float64(s.count)/float64(total),
				1-float64(s.failures)/float64(s.count),
				histogram.DurationQuantile(0.50, histogram.LinkerdLatencyBounds, s.counts),
				histogram.DurationQuantile(0.90, histogram.LinkerdLatencyBounds, s.counts),
				histogram.DurationQuantile(0.99, histogram.LinkerdLatencyBounds, s.counts)))
		}
	})
	wall.Stop()
	fmt.Fprintln(stdout, report)
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	return nil
}
