// Command l3load is the repository's open-loop wall-clock load generator —
// the same wrk2-style internal/loadgen that drives every simulated figure,
// scheduled on a real clock against a real HTTP target. Arrivals follow the
// offered rate alone (never gated on responses), and the CatchUp cursor
// fires late arrivals back-to-back so the offered RPS stays honest under
// scheduling jitter — the constant-throughput discipline that avoids
// coordinated omission.
//
// Usage:
//
//	l3load -url http://127.0.0.1:8080/ -rate 500 -duration 30s
//	l3load -url http://127.0.0.1:8080/ -rate 500 -duration 30s -warmup 5s
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"l3/internal/clock"
	"l3/internal/loadgen"
)

// stdout is swappable so tests can silence the tool's output.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "l3load:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("l3load", flag.ContinueOnError)
	var (
		target   = fs.String("url", "", "target URL (required)")
		rate     = fs.Float64("rate", 100, "offered load in requests/second")
		duration = fs.Duration("duration", 10*time.Second, "measured window")
		warmup   = fs.Duration("warmup", 0, "discarded warm-up before the measured window")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-url is required")
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive")
	}

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	}

	wall := clock.NewWall()
	gen := loadgen.NewClock(wall, loadgen.Config{
		Rate:    loadgen.ConstantRate(*rate),
		WarmUp:  *warmup,
		CatchUp: true,
	}, func(done func(latency time.Duration, success bool)) error {
		go func() {
			start := time.Now()
			ok := false
			if resp, err := client.Get(*target); err == nil {
				ok = resp.StatusCode < http.StatusInternalServerError
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			latency := time.Since(start)
			// The Recorder is single-threaded; completions re-enter
			// through the wall clock to serialize with arrivals.
			wall.Do(func() { done(latency, ok) })
		}()
		return nil
	})

	fmt.Fprintf(stdout, "l3load: %s at %.1f rps for %v (warm-up %v)\n", *target, *rate, *duration, *warmup)
	wall.Do(gen.Start)
	time.Sleep(*warmup + *duration)
	wall.Do(gen.Stop)
	time.Sleep(500 * time.Millisecond) // let stragglers record

	var report string
	wall.Do(func() {
		rec := gen.Recorder()
		report = fmt.Sprintf(
			"l3load: issued=%d recorded=%d rps=%.1f ok=%.4f p50=%v p90=%v p99=%v p999=%v max-ish mean=%v",
			gen.Issued(), rec.Count(), float64(rec.Count())/duration.Seconds(),
			rec.SuccessRate(), rec.Quantile(0.50), rec.Quantile(0.90),
			rec.Quantile(0.99), rec.Quantile(0.999), rec.Mean())
	})
	wall.Stop()
	fmt.Fprintln(stdout, report)
	return nil
}
