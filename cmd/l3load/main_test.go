package main

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
)

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunRequiresURL(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "-url") {
		t.Fatalf("err = %v, want missing -url error", err)
	}
	if err := run([]string{"-url", "http://h", "-rate", "0"}); err == nil || !strings.Contains(err.Error(), "-rate") {
		t.Fatalf("err = %v, want bad -rate error", err)
	}
}

func TestRunDrivesOpenLoopLoad(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		// Stamp the serving backend as l3serve would, so the per-backend
		// latency breakdown has something to bucket on.
		w.Header().Set("X-L3-Backend", "stub-a")
		fmt.Fprintln(w, "ok")
	})}
	go srv.Serve(ln)
	defer srv.Close()

	var out syncBuffer
	old := stdout
	stdout = &out
	defer func() { stdout = old }()

	if err := run([]string{
		"-url", "http://" + ln.Addr().String() + "/",
		"-rate", "200",
		"-duration", "500ms",
	}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "p99=") || !strings.Contains(got, "ok=1.0000") {
		t.Fatalf("report missing percentiles or success rate: %q", got)
	}
	// Open loop at 200 rps for 500ms must land near 100 requests.
	if !strings.Contains(got, "issued=") {
		t.Fatalf("report missing issued count: %q", got)
	}
	// The per-backend breakdown keys on the X-L3-Backend response header.
	if !strings.Contains(got, "backend stub-a") || !strings.Contains(got, "share=1.000") {
		t.Fatalf("report missing per-backend latency breakdown: %q", got)
	}
}
