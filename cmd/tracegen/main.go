// Command tracegen synthesises and dumps the workload scenarios — the
// reconstructions of the paper's proprietary TIER Mobility captures behind
// Figures 1, 2, 6 and 7a — as CSV, one row per second.
//
// Usage:
//
//	tracegen -scenario scenario-1            # median/P99/success per cluster + RPS
//	tracegen -scenario failure-2 -seed 3
//	tracegen -list                           # available scenarios
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"l3/internal/trace"
)

// stdout is swappable so tests can silence the tool's output.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		name = fs.String("scenario", trace.Scenario1, "scenario to generate")
		seed = fs.Uint64("seed", 1, "random seed")
		list = fs.Bool("list", false, "list scenario names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range trace.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	sc, err := trace.Generate(*name, *seed)
	if err != nil {
		return err
	}

	header := []string{"t_seconds"}
	for _, ct := range sc.Clusters {
		header = append(header,
			ct.Cluster+"_p50_ms", ct.Cluster+"_p99_ms", ct.Cluster+"_success")
	}
	header = append(header, "rps")
	fmt.Fprintln(stdout, strings.Join(header, ","))

	n := len(sc.RPS.Values)
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprintf("%d", i))
		for _, ct := range sc.Clusters {
			row = append(row,
				fmt.Sprintf("%.3f", ct.Median.Values[i]*1000),
				fmt.Sprintf("%.3f", ct.P99.Values[i]*1000),
				fmt.Sprintf("%.4f", ct.Success.Values[i]))
		}
		row = append(row, fmt.Sprintf("%.2f", sc.RPS.Values[i]))
		fmt.Fprintln(stdout, strings.Join(row, ","))
	}
	return nil
}
