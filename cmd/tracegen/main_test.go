package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunGeneratesCSV(t *testing.T) {
	if err := run([]string{"-scenario", "failure-2", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
}
