package main

import (
	"testing"

	"l3/internal/bench"
)

func TestParseAlgo(t *testing.T) {
	tests := map[string]bench.Algorithm{
		"rr": bench.AlgoRoundRobin, "round-robin": bench.AlgoRoundRobin,
		"l3": bench.AlgoL3, "c3": bench.AlgoC3, "p2c": bench.AlgoP2C,
	}
	for in, want := range tests {
		got, err := parseAlgo(in)
		if err != nil || got != want {
			t.Fatalf("parseAlgo(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlgo("magic"); err == nil {
		t.Fatal("unknown algo accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-algo", "nope"}); err == nil {
		t.Fatal("unknown algo accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickScenario(t *testing.T) {
	if err := run([]string{"-scenario", "scenario-5", "-algo", "rr", "-duration", "1m"}); err != nil {
		t.Fatal(err)
	}
}
