// Command l3sim runs one scenario under one load-balancing strategy and
// prints the latency distribution, success rate and a per-minute P99
// series — a single cell of the evaluation, for interactive exploration.
//
// Usage:
//
//	l3sim -scenario scenario-1 -algo l3
//	l3sim -scenario failure-2 -algo c3 -penalty 300ms -seed 9
//	l3sim -scenario scenario-4 -algo l3 -peak-ewma
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"l3/internal/bench"
	"l3/internal/ewma"
	"l3/internal/trace"
)

// stdout is swappable so tests can silence the tool's output.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "l3sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("l3sim", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", trace.Scenario1, fmt.Sprintf("scenario name %v", trace.Names()))
		algoName = fs.String("algo", "l3", "strategy: rr, c3, l3, p2c")
		seed     = fs.Uint64("seed", 1, "random seed")
		penalty  = fs.Duration("penalty", 600*time.Millisecond, "L3 penalty factor P")
		peak     = fs.Bool("peak-ewma", false, "use PeakEWMA instead of EWMA for L3's latency filter")
		noRate   = fs.Bool("no-rate-control", false, "disable Algorithm 2")
		duration = fs.Duration("duration", 0, "measured duration (default: the scenario's 10 minutes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	algo, err := parseAlgo(*algoName)
	if err != nil {
		return err
	}
	opts := bench.Options{
		Seed:               *seed,
		Penalty:            *penalty,
		Duration:           *duration,
		DisableRateControl: *noRate,
	}
	if *peak {
		opts.FilterKind = ewma.KindPeak
	}

	start := time.Now()
	rec, err := bench.RunScenario(*scenario, algo, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "scenario %s under %s (seed %d)\n", *scenario, algo, *seed)
	fmt.Fprintf(stdout, "  requests     %d\n", rec.Count())
	fmt.Fprintf(stdout, "  success rate %.2f%%\n", rec.SuccessRate()*100)
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		fmt.Fprintf(stdout, "  p%-5g       %v\n", q*100, rec.Quantile(q))
	}
	fmt.Fprintf(stdout, "  max          %v\n", rec.Quantile(1))

	fmt.Fprintln(stdout, "  worst per-second P99 within each minute (ms):")
	p99s := rec.QuantileSeries(0.99)
	for min := 0; min*60 < len(p99s); min++ {
		end := (min + 1) * 60
		if end > len(p99s) {
			end = len(p99s)
		}
		worst := 0.0
		for _, v := range p99s[min*60 : end] {
			if v > worst {
				worst = v
			}
		}
		fmt.Fprintf(stdout, "    minute %2d: %7.1f\n", min, worst*1000)
	}
	fmt.Fprintf(stdout, "  (simulated in %.1fs)\n", time.Since(start).Seconds())
	return nil
}

func parseAlgo(name string) (bench.Algorithm, error) {
	switch name {
	case "rr", "round-robin":
		return bench.AlgoRoundRobin, nil
	case "l3":
		return bench.AlgoL3, nil
	case "c3":
		return bench.AlgoC3, nil
	case "p2c":
		return bench.AlgoP2C, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (rr, c3, l3, p2c)", name)
	}
}
