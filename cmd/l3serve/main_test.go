package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer collects tool output written from the run goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	old := stderr
	stderr = io.Discard
	defer func() { stderr = old }()
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	err := run([]string{"-algo", "fancy", "-backends", "a=http://127.0.0.1:1"})
	if err == nil || !strings.Contains(err.Error(), `algo "fancy"`) {
		t.Fatalf("err = %v, want validation error", err)
	}
	if err := run([]string{"-listen", "127.0.0.1:0"}); err == nil || !strings.Contains(err.Error(), "no backends") {
		t.Fatalf("err = %v, want no-backends error", err)
	}
}

func TestServeSignalDrain(t *testing.T) {
	// A minimal upstream.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upstream := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})}
	go upstream.Serve(ln)
	defer upstream.Close()

	var out syncBuffer
	oldOut, oldSig := stdout, signals
	stdout = &out
	sigCh := make(chan os.Signal, 1)
	signals = func() <-chan os.Signal { return sigCh }
	defer func() { stdout, signals = oldOut, oldSig }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-algo", "rr",
			"-backends", "up=http://" + ln.Addr().String(),
		})
	}()

	// Wait for the serving banner, proxy one request through, then signal.
	addrRE := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("no serving banner in output: %q", out.String())
	}
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied status = %d", resp.StatusCode)
	}

	sigCh <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained clean") {
		t.Fatalf("output missing drain confirmation: %q", out.String())
	}
}
