// Command l3serve runs the repository's mesh machinery as a real reverse
// proxy: weighted TrafficSplit routing, the L3/C3 latency-aware controllers,
// health probing, circuit breaking and retry budgets — against live HTTP
// backends on a wall clock instead of the simulator's virtual one.
//
// Usage:
//
//	l3serve -backends 'a=http://10.0.0.1:8001,b=http://10.0.0.2:8001'
//	l3serve -config l3serve.yaml             # YAML config (env overrides apply)
//	l3serve -config l3serve.yaml -algo rr    # flag overrides both
//	l3serve -selftest                        # skewed-stub rr-vs-l3 benchmark
//	l3serve -selftest -bench-out BENCH_serve.json
//	l3serve -chaostest                       # scripted fault schedule + recovery assertions
//	l3serve -chaostest -quick                # compressed schedule for CI
//	l3serve -chaostest -chaos 'stall@3s+4s:chaos-a'
//
// Configuration layers, later wins: YAML file, L3SERVE_* environment
// variables, command-line flags. The serving process exposes /metrics
// (Prometheus text format — also what its own control plane scrapes),
// /healthz, and /debug/pprof on the same listener, and drains gracefully on
// SIGTERM/SIGINT: new proxy requests are refused, in-flight requests finish
// (bounded by drain_timeout), then the process reports how many requests, if
// any, were still in flight when the deadline hit.
//
// The selftest needs no external backends: it spins up two fast and one
// slow stub, runs one pass per algorithm under the open-loop wall-clock load
// generator, and reports achieved RPS, p50/p99/p999, the converged weight
// table and the proxy layer's allocs/op; -bench-out writes the same numbers
// as BENCH_serve.json records.
//
// The chaostest likewise self-hosts: chaos-capable stubs, open-loop load,
// and a scripted fault schedule (stall, connection resets, scrape outage by
// default — the same kind@at[+dur] grammar as the simulator's -chaos flag)
// run against the live proxy. It exits nonzero unless every recovery
// assertion holds: the breaker ejects a stalled backend within a bounded
// number of failures, windowed p99 re-converges (time-to-recover is
// reported), and a starved control plane engages and then releases
// fail-static. -selftest and -chaostest compose; -bench-out collects both
// runs' records.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"l3/internal/serve"
)

// stdout/stderr are swappable so tests can silence the tool's output.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

// signals delivers shutdown signals; swappable so tests can trigger a
// drain without killing the test process.
var signals = func() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	return ch
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "l3serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("l3serve", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "YAML config file (see docs; L3SERVE_* env vars override)")
		listen     = fs.String("listen", "", "listen address (overrides config)")
		backends   = fs.String("backends", "", "backend list 'name=url,name=url' (overrides config)")
		algo       = fs.String("algo", "", "balancing algorithm: rr, failover, l3 or c3 (overrides config)")
		selftest   = fs.Bool("selftest", false, "run the built-in skewed-stub benchmark instead of serving")
		chaostest  = fs.Bool("chaostest", false, "run the scripted fault schedule against a live proxy and assert recovery (composes with -selftest)")
		chaosSched = fs.String("chaos", "", "with -chaostest: fault schedule override (kind@start[+dur][:operands];...)")
		quick      = fs.Bool("quick", false, "with -chaostest: compressed schedule for CI smoke runs")
		benchOut   = fs.String("bench-out", "", "with -selftest/-chaostest: write results as BENCH_serve.json records to this file")
		rate       = fs.Float64("rate", 0, "with -selftest/-chaostest: offered rps (selftest default 250, chaostest 150)")
		duration   = fs.Duration("duration", 0, "with -selftest: measured window per pass (default 6s)")
		warmup     = fs.Duration("warmup", 0, "with -selftest: cap on the convergence wait before measuring (default 12s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *selftest || *chaostest {
		var entries []serve.BenchEntry
		if *selftest {
			report, err := serve.RunSelftest(serve.SelftestOptions{
				Rate:     *rate,
				Duration: *duration,
				WarmUp:   *warmup,
			}, stdout)
			if err != nil {
				return err
			}
			entries = append(entries, report.BenchEntries()...)
		}
		if *chaostest {
			report, err := serve.RunChaostest(serve.ChaostestOptions{
				Rate:     *rate,
				Schedule: *chaosSched,
				Quick:    *quick,
			}, stdout)
			if report != nil {
				entries = append(entries, report.BenchEntries()...)
			}
			if err != nil {
				// A failed recovery assertion must fail the command (make
				// check depends on the exit code), but the records gathered
				// up to the failure still land in -bench-out for inspection.
				if *benchOut != "" {
					serve.WriteBenchJSON(*benchOut, entries)
				}
				return err
			}
			// The overload scene rides every chaostest (skipped only when a
			// custom -chaos schedule narrows the run to specific faults):
			// saturating square-wave load against the admission-controlled
			// proxy, asserting bounded queue delay and tier-ordered shedding.
			if *chaosSched == "" {
				ovReport, err := serve.RunOverloadChaostest(serve.OverloadOptions{
					Quick: *quick,
				}, stdout)
				if ovReport != nil {
					entries = append(entries, ovReport.BenchEntries()...)
				}
				if err != nil {
					if *benchOut != "" {
						serve.WriteBenchJSON(*benchOut, entries)
					}
					return err
				}
			}
		}
		if *benchOut != "" {
			if err := serve.WriteBenchJSON(*benchOut, entries); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "l3serve: wrote %s\n", *benchOut)
		}
		return nil
	}

	cfg, err := serve.LoadConfig(*configPath)
	if err != nil {
		return err
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *algo != "" {
		cfg.Algo = *algo
	}
	if *backends != "" {
		if cfg.Backends, err = serve.ParseBackendList(*backends); err != nil {
			return err
		}
	}

	srv, err := serve.NewServer(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "l3serve: serving %s via %s on %s (%d backends)\n",
		cfg.Service, cfg.Algo, srv.Addr(), len(cfg.Backends))

	select {
	case sig := <-signals():
		fmt.Fprintf(stdout, "l3serve: %v, draining (timeout %v)\n", sig, cfg.DrainTimeout)
	case err := <-srv.WaitErr():
		if err != nil {
			return err
		}
	}

	start := time.Now()
	dropped, err := srv.ShutdownTimeout()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if dropped > 0 {
		return fmt.Errorf("drain: %d requests still in flight after %v", dropped, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(stdout, "l3serve: drained clean in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
