package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"l3/internal/perf"
)

// TestRunBenchWritesJSON drives -bench end to end: the suite runs, results
// land in -benchout as JSON, and every suite entry reports a measurement.
func TestRunBenchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite takes ~1s per entry")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-bench", "-benchout", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []perf.Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("benchout is not valid JSON: %v", err)
	}
	if len(results) != len(perf.Suite()) {
		t.Fatalf("got %d results, want %d (one per suite entry)", len(results), len(perf.Suite()))
	}
	for _, r := range results {
		if r.Name == "" || r.Iterations <= 0 || r.NsPerOp <= 0 {
			t.Fatalf("implausible measurement: %+v", r)
		}
	}
	for _, name := range []string{"MeshCall", "MeshCallP2C"} {
		found := false
		for _, r := range results {
			if r.Name == name {
				found = true
				if r.RequestsPerSec <= 0 {
					t.Fatalf("%s missing derived requests/sec: %+v", name, r)
				}
			}
		}
		if !found {
			t.Fatalf("suite result %s missing", name)
		}
	}
}

// TestRunBenchDiffFlagValidation pins the cheap -benchdiff plumbing: mode
// flags are mutually exclusive and a malformed baseline is rejected before
// any benchmark runs.
func TestRunBenchDiffFlagValidation(t *testing.T) {
	if err := run([]string{"-benchdiff", "x.json", "-bench"}); err == nil {
		t.Fatal("-benchdiff with -bench accepted")
	}
	if err := run([]string{"-benchdiff", "x.json", "-bench-shards"}); err == nil {
		t.Fatal("-benchdiff with -bench-shards accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nope":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-benchdiff", bad}); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

// TestRunBenchDiffShardReportGate drives -benchdiff end to end against a
// shard-report-shaped baseline: an absurdly fast committed ns/op must trip
// the 15% gate; a generous baseline with the pinned alloc counts passes.
func TestRunBenchDiffShardReportGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the shard benchmark suite twice")
	}
	report := `{"num_cpu":1,"benches":[` +
		`{"name":"ShardBarrier","iterations":1,"ns_per_op":%g,"allocs_per_op":0,"bytes_per_op":0},` +
		`{"name":"CrossShardSend","iterations":1,"ns_per_op":%g,"allocs_per_op":0,"bytes_per_op":0}]}`
	base := filepath.Join(t.TempDir(), "BENCH_shards.json")
	if err := os.WriteFile(base, []byte(fmt.Sprintf(report, 0.001, 0.001)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-benchdiff", base}); err == nil {
		t.Fatal("ns/op regression not detected")
	}
	if err := os.WriteFile(base, []byte(fmt.Sprintf(report, 1e9, 1e9)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-benchdiff", base}); err != nil {
		t.Fatalf("clean diff failed: %v", err)
	}
}

// TestRunProfilesWriteFiles checks -cpuprofile and -memprofile produce
// non-empty pprof files around an ordinary figure run.
func TestRunProfilesWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-fig", "6", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
