package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// captureStdout runs the CLI with stdout redirected into a buffer (stderr
// stays silenced by TestMain: timings are nondeterministic by design).
func captureStdout(t *testing.T, args ...string) []byte {
	t.Helper()
	old := stdout
	defer func() { stdout = old }()
	var buf bytes.Buffer
	stdout = &buf
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.Bytes()
}

// TestFigureOutputByteIdentical pins figure stdout two ways: serial and
// fanned-out runs must produce the same bytes (the -parallel guarantee), and
// those bytes must hash to the golden values captured before the fast-path
// refactor — proving the route-cached metric handles, pooled request state,
// atomic series and event recycling changed no observable result.
func TestFigureOutputByteIdentical(t *testing.T) {
	goldens := []struct {
		name   string
		args   []string
		sha256 string
	}{
		{"fig6", []string{"-fig", "6"},
			"019743b524369cce596ee98dbcd267e9e41b2262935e979dbf235a9361b8fe51"},
		{"chaos-partition", []string{
			"-chaos", "partition@48s+24s:cluster-1/cluster-2",
			"-scenario", "scenario-1", "-quick"},
			"b55805fa750b83df9978f71a6415b7b58363b2af3477a140b8cdd02dc71d09ac"},
		{"C1-quick", []string{"-fig", "C1", "-quick"},
			"670ec94202c375bbc0c3dcd0444563992a2dc3ebb33dc3bd0e8f0c230e0ec348"},
		{"C2-quick", []string{"-fig", "C2", "-quick"},
			"9d0bfaa46443fcf9b57fdc0371bd83237a54a0ef1f392e04e62422ac1024f2bc"},
		{"fig10-quick", []string{"-fig", "10", "-quick"},
			"fe841c542725856b8a05dfba01551793fa818d44d1cf7c755dc20ba259c86099"},
		{"R1-quick", []string{"-fig", "R1", "-quick"},
			"001ec69613d1f86ac48ba6a95488da4cfd2b811a243cf1e74fdcebf471e20fe3"},
		{"R2-quick", []string{"-fig", "R2", "-quick"},
			"a6f6556b5dabc9ade950b1b4456f7fe336123655684c105f4d0873790fa50eb9"},
		{"R3-quick", []string{"-fig", "R3", "-quick"},
			"42c52183884b73f24702d42a13c2b52117be70f615af8295e926d8d5b443ac9c"},
		{"G1-quick", []string{"-fig", "G1", "-quick"},
			"e12cef1d57bd3b5fe181580d8cff1a547c3e6648d197e4510176585910f56cd0"},
		{"G2-quick", []string{"-fig", "G2", "-quick"},
			"0f6f636a8cbc000b06bcfa220ca5d61bb22bf4df91f4b3e0822efc1ed2b03773"},
		{"chaos-resilience", []string{
			"-chaos", "saturate@48s+24s:api-cluster-1/0.25",
			"-scenario", "scenario-1", "-quick",
			"-resilience", "deadline=1s,retries=3,budget=0.2,breaker=5"},
			"97536c8d257edc0592b58fa5263127bf68e9a31e5de35b18469bbb8f44987346"},
		{"O1-quick", []string{"-fig", "O1", "-quick"},
			"b7f7796a91444a951bbeb1d13ad33c0d1996cc23005e3a5c855200591b71aae1"},
		{"O2-quick", []string{"-fig", "O2", "-quick"},
			"90d5e81e3ed38eaf4fc4076ef7a922342e4acd7b4c6dacaf216bb6d990300534"},
		// A disabled admission layer must be a pure pass-through: the same
		// run with '-overload off' hashes to the chaos-resilience golden
		// above, byte for byte.
		{"chaos-resilience-overload-off", []string{
			"-chaos", "saturate@48s+24s:api-cluster-1/0.25",
			"-scenario", "scenario-1", "-quick",
			"-resilience", "deadline=1s,retries=3,budget=0.2,breaker=5",
			"-overload", "off"},
			"97536c8d257edc0592b58fa5263127bf68e9a31e5de35b18469bbb8f44987346"},
	}
	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			serial := captureStdout(t, append([]string{"-parallel", "1"}, g.args...)...)
			fanned := captureStdout(t, append([]string{"-parallel", "8"}, g.args...)...)
			if !bytes.Equal(serial, fanned) {
				t.Fatal("stdout differs between -parallel 1 and -parallel 8")
			}
			sum := sha256.Sum256(serial)
			if got := hex.EncodeToString(sum[:]); got != g.sha256 {
				t.Fatalf("stdout sha256 = %s, want golden %s (output changed)", got, g.sha256)
			}
		})
	}
}

// TestShardedFigureOutputByteIdentical pins the sharded core's determinism
// contract at the CLI: an existing figure run with -shards 1 and -shards 4
// must produce the same stdout bytes (the worker pool may not leak into
// results), and figure S1's own output must likewise be invariant. The
// classic goldens above stay untouched: -shards 0 never enters the sharded
// path.
func TestShardedFigureOutputByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"fig8-sharded", []string{"-fig", "8", "-quick"}},
		{"S1", []string{"-fig", "S1"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			one := captureStdout(t, append([]string{"-shards", "1"}, c.args...)...)
			four := captureStdout(t, append([]string{"-shards", "4"}, c.args...)...)
			if len(one) == 0 {
				t.Fatal("no output")
			}
			if !bytes.Equal(one, four) {
				t.Fatal("stdout differs between -shards 1 and -shards 4")
			}
		})
	}
}
