// Command l3bench regenerates the figures of the paper's evaluation (§5)
// plus this repository's ablation experiments.
//
// Usage:
//
//	l3bench -fig all                 # every figure (the full evaluation)
//	l3bench -fig 9                   # one figure
//	l3bench -fig 10 -reps 3 -seed 7  # repetitions and seeding
//	l3bench -fig 1 -csv              # emit series as CSV for plotting
//	l3bench -fig ablations           # the ablation suite
//	l3bench -fig all -parallel 8     # fan runs out across 8 workers
//	l3bench -fig C1                  # chaos: partition + heal recovery figure
//	l3bench -fig C2                  # chaos: leader-kill transparency figure
//	l3bench -fig R1                  # resilience: naive vs budgeted retry storm
//	l3bench -fig R2                  # resilience: hedging tail-latency sweep
//	l3bench -fig R3                  # resilience: circuit breaking vs probes
//	l3bench -fig G1                  # guard: metric garbage, guarded vs unguarded
//	l3bench -fig G2                  # guard: partial visibility, quorum freeze
//	l3bench -fig S1                  # sharded core: 8-cluster scaling workload
//	l3bench -fig O1                  # overload: adaptive limit + CoDel vs collapse
//	l3bench -fig O2                  # overload: criticality-tiered flash crowd
//	l3bench -fig 10 -shards 4        # scenario figures on the sharded core
//
// A custom fault schedule runs against any scenario, optionally with a
// resilience policy and an admission-control policy on the client
// (grammars in internal/resilience and internal/overload):
//
//	l3bench -chaos 'partition@120s+60s:cluster-1/cluster-2' -scenario scenario-1
//	l3bench -chaos 'saturate@120s+60s:api-cluster-1/0.25' \
//	        -resilience 'deadline=1s,retries=3,budget=0.2,breaker=5'
//	l3bench -chaos 'saturate@120s+60s:api-cluster-1/0.1' \
//	        -overload 'limit=32,min=4,max=64,target=20ms,qcap=128'
//	l3bench -chaos 'garbage@60s+30s:nan' -guard   # hardened control plane
//
// Schedules are semicolon-separated events, each
// kind@start[+duration][:operands] with kinds partition, delay, flap,
// crash, saturate, scrapedrop, leaderkill, counterreset, garbage,
// clockskew and slowscrape; times are relative to the start of the
// measured window. See internal/chaos for the full grammar. -guard turns
// on the internal/guard hardening layer (metric hygiene, staleness-aware
// degraded modes, write gating) for the run.
//
// Figure durations follow the paper (10-minute scenarios); -quick shrinks
// the measured window for a fast sanity pass.
//
// The harness's own performance is measurable in place:
//
//	l3bench -bench                             # fast-path benchmark suite, JSON to stdout
//	l3bench -bench -benchout BENCH.json        # machine-readable results to a file
//	l3bench -bench-shards                      # shard report: classic baseline + scaling sweep
//	l3bench -benchdiff BENCH_fastpath.json     # fresh run vs committed baseline; fails on regression
//	l3bench -fig 10 -cpuprofile cpu.pprof      # profile any run (figures or -bench)
//	l3bench -bench -memprofile mem.pprof
//
// -bench runs the internal/perf suite (mesh.Call end to end, metric and
// histogram recording, registry scrapes, the event heap) through
// testing.Benchmark; profiles are standard pprof files. -bench-shards runs
// the figure S1 workload on the classic engine and then at 1, 2, 4 and 8
// workers, reporting host facts (NumCPU, GOMAXPROCS), the sharded core's
// overhead at one worker against the classic baseline, per-worker-count
// wall-clock/events-per-sec/speedup, and the barrier/mailbox
// micro-benchmarks (wall-clock is host-dependent by nature, so none of it
// appears on figure stdout). -benchdiff re-measures the suite a committed
// BENCH JSON holds and exits nonzero on >15% ns/op or any allocs/op
// regression — `make bench-diff` runs it against the repo's baselines.
//
// Scenario figures run on the sharded deterministic core with -shards N
// (N ≥ 1 caps the worker pool; the decomposition is fixed at one shard per
// cluster, so stdout is byte-identical for every N). The default, 0, is the
// classic single-loop engine — byte-identical to all historical goldens.
// -shards composes with -resilience and retry policies: responses complete
// on the source cluster's shard, where retry/hedge state lives, and the rng
// fork discipline makes the sharded run byte-identical to the classic one.
// Figure 9's DSB workload stays classic-only (its cross-service call graph
// needs service-keyed sharding); figure S1 always runs sharded.
//
// Independent runs (figures × configurations × repetitions) fan out across
// -parallel worker goroutines; each run derives its own seed and owns its
// simulation engine, and results are merged in a fixed order, so stdout is
// byte-for-bit identical for every -parallel value. Timings and the
// harness's self-metrics (runs completed, busy seconds, effective speedup
// over serial) go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"l3/internal/bench"
	"l3/internal/chaos"
	"l3/internal/overload"
	"l3/internal/perf"
	"l3/internal/resilience"
	"l3/internal/serve"
	"l3/internal/trace"
)

// stdout/stderr are swappable so tests can silence the tool's output.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "l3bench:", err)
		os.Exit(1)
	}
}

// runBenchDiff re-measures the benchmark suite a committed BENCH JSON file
// holds and fails on regressions: >15 % ns/op over the baseline, or any
// allocs/op increase (alloc counts are exact — the pins treat them as
// contracts, so the diff does too). The file's shape picks the suite: a
// result array whose objects carry an "algo" key is the wall-clock serving
// trajectory (BENCH_serve.json) and gets a contract check instead of a
// timing diff, any other result array is the fast-path suite
// (BENCH_fastpath.json), and an object with a "benches" field is a shard
// report (BENCH_shards.json), whose scaling and wall-clock fields are
// host-dependent and not diffed.
func runBenchDiff(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-benchdiff: %w", err)
	}
	// The serve shape must be sniffed before []perf.Result: unmarshalling
	// ignores unknown fields, so serve entries would "succeed" as an array
	// of zero-valued perf results and diff as garbage.
	var serveEntries []serve.BenchEntry
	if err := json.Unmarshal(data, &serveEntries); err == nil &&
		len(serveEntries) > 0 && serveEntries[0].Algo != "" {
		return serveContractCheck(path, serveEntries)
	}
	// Best-of-3 on the fresh side: one preempted sample on a loaded or
	// single-core host must not read as a regression. The barrier
	// benchmarks park and wake goroutines, so their wall time swings
	// ~20 % run to run when workers outnumber cores; -bench-shards writes
	// its committed benches best-of-3 too, making that comparison
	// minimum-vs-minimum.
	const measureRuns = 3
	var baseline, fresh []perf.Result
	if err := json.Unmarshal(data, &baseline); err == nil {
		fresh = perf.RunSuiteBest(stderr, perf.Suite(), measureRuns)
	} else {
		var report struct {
			Benches []perf.Result `json:"benches"`
		}
		if err2 := json.Unmarshal(data, &report); err2 != nil || len(report.Benches) == 0 {
			return fmt.Errorf("-benchdiff: %s is neither a benchmark result array nor a shard report with benches", path)
		}
		baseline = report.Benches
		fresh = perf.RunSuiteBest(stderr, perf.ShardSuite(), measureRuns)
	}
	const tol = 0.15
	msgs := perf.Diff(baseline, fresh, tol)
	if len(msgs) == 0 {
		fmt.Fprintf(stdout, "l3bench: benchdiff clean against %s (%d benchmarks, %.0f%% ns/op tolerance, allocs exact)\n",
			path, len(baseline), tol*100)
		return nil
	}
	for _, m := range msgs {
		fmt.Fprintf(stdout, "l3bench: benchdiff: %s\n", m)
	}
	return fmt.Errorf("%d benchmark regression(s) against %s", len(msgs), path)
}

// serveContractCheck validates a committed BENCH_serve.json against the
// serving mode's host-independent contracts. Wall-clock magnitudes are
// load- and hardware-dependent and are not diffed; what must always hold is
// checked exactly: the proxy layer's own hot path at 0 allocs/op, the L3
// pass beating round-robin's p99 on the skewed stubs, and every chaos record
// showing actual recovery — breaker ejections for data-plane faults,
// fail-static engagement for the scrape outage, a measured time-to-recover.
// A BENCH_serve.json regenerated on a regressed build fails here.
func serveContractCheck(path string, entries []serve.BenchEntry) error {
	var msgs []string
	var rrP99, l3P99 float64
	chaosRecords := 0
	for _, e := range entries {
		if e.AllocsPerOp != 0 {
			msgs = append(msgs, fmt.Sprintf("%s: proxy_layer_allocs_per_op = %v, contract is 0", e.Name, e.AllocsPerOp))
		}
		if e.Fault == "" {
			switch e.Name {
			case "serve_skewed_rr":
				rrP99 = e.P99Ms
			case "serve_skewed_l3":
				l3P99 = e.P99Ms
			}
			continue
		}
		chaosRecords++
		if !e.Recovered {
			msgs = append(msgs, fmt.Sprintf("%s: recovered = false", e.Name))
		}
		if e.TTRMs <= 0 {
			msgs = append(msgs, fmt.Sprintf("%s: ttr_ms = %v, want > 0", e.Name, e.TTRMs))
		}
		switch e.Fault {
		case "stall", "reset", "bflap":
			if e.Ejections == 0 {
				msgs = append(msgs, fmt.Sprintf("%s: breaker_ejections = 0, want >= 1", e.Name))
			}
		case "scrapedrop":
			if !e.FailStatic {
				msgs = append(msgs, fmt.Sprintf("%s: failstatic = false, want engagement", e.Name))
			}
		case "overload":
			// The overload scene's contracts: shedding strictly ordered by
			// criticality tier, the scene actually shedding something, and
			// the admission queue's longest admitted wait bounded (the
			// scene policy's 400ms MaxWait ceiling, with margin for a
			// regenerated baseline under a retuned policy).
			if e.ShedSheddable == 0 {
				msgs = append(msgs, fmt.Sprintf("%s: shed_sheddable = 0, the scene never shed", e.Name))
			}
			if e.ShedSheddable < e.ShedDefault || e.ShedDefault < e.ShedCritical {
				msgs = append(msgs, fmt.Sprintf("%s: shedding not tier-ordered (sheddable=%d default=%d critical=%d)",
					e.Name, e.ShedSheddable, e.ShedDefault, e.ShedCritical))
			}
			if e.MaxQueueMs <= 0 || e.MaxQueueMs >= 500 {
				msgs = append(msgs, fmt.Sprintf("%s: max_queue_ms = %v, want in (0, 500)", e.Name, e.MaxQueueMs))
			}
		}
	}
	if rrP99 > 0 && l3P99 > 0 && l3P99 >= rrP99 {
		msgs = append(msgs, fmt.Sprintf("serve_skewed: l3 p99 %.2fms >= rr p99 %.2fms", l3P99, rrP99))
	}
	if len(msgs) == 0 {
		fmt.Fprintf(stdout, "l3bench: benchdiff clean against %s (%d serve records, %d chaos; contracts exact, wall-clock not diffed)\n",
			path, len(entries), chaosRecords)
		return nil
	}
	for _, m := range msgs {
		fmt.Fprintf(stdout, "l3bench: benchdiff: %s\n", m)
	}
	return fmt.Errorf("%d serve contract violation(s) in %s", len(msgs), path)
}

func run(args []string) error {
	fs := flag.NewFlagSet("l3bench", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure to regenerate: 1,2,4,6,7,8,9,10,11,12, C1, C2, R1, R2, R3, G1, G2, S1, O1, O2, 'ablations' or 'all'")
		chaosStr = fs.String("chaos", "", "fault schedule to inject (kind@start[+dur][:operands];...); overrides -fig")
		scenario = fs.String("scenario", trace.Scenario1, "scenario a -chaos schedule runs against")
		resStr   = fs.String("resilience", "",
			"resilience policy on the client (key=value,... e.g. 'deadline=1s,retries=3,budget=0.2,hedge=p99,breaker=5'); composes with -chaos runs")
		overloadStr = fs.String("overload", "",
			"admission-control policy on the client (key=value,... e.g. 'limit=32,min=4,max=64,target=20ms,qcap=128,tiers=on'; 'off' disables); composes with -chaos and figure runs")
		seed     = fs.Uint64("seed", 1, "base random seed")
		reps     = fs.Int("reps", 1, "repetitions per configuration (paper used 2-3)")
		guard    = fs.Bool("guard", false, "harden the control plane with internal/guard (hygiene, degraded modes, write gating); applies to -chaos and figure runs")
		quick    = fs.Bool("quick", false, "shrink measured windows for a fast pass")
		csv      = fs.Bool("csv", false, "emit series results as CSV instead of summaries")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0),
			"worker goroutines fanning out independent runs (1 = serial); output is identical for any value")
		benchMode   = fs.Bool("bench", false, "run the fast-path benchmark suite instead of figures")
		benchShards = fs.Bool("bench-shards", false,
			"run the shard-scaling sweep (figure S1 workload, classic baseline plus 1/2/4/8 workers) instead of figures")
		benchDiff = fs.String("benchdiff", "",
			"compare a fresh -bench run against this committed BENCH JSON; exit nonzero on >15% ns/op or any allocs/op regression")
		shards = fs.Int("shards", 0,
			"run scenario figures on the sharded core with this many workers (0 = classic engine; stdout is identical for every value >= 1)")
		benchout   = fs.String("benchout", "", "write -bench results as JSON to this file (default: stdout)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchDiff != "" && (*benchMode || *benchShards) {
		return fmt.Errorf("-benchdiff runs its own fresh pass; drop -bench/-bench-shards")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "l3bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "l3bench: -memprofile:", err)
			}
		}()
	}

	if *benchMode {
		results := perf.Run(stderr)
		out := stdout
		if *benchout != "" {
			f, err := os.Create(*benchout)
			if err != nil {
				return fmt.Errorf("-benchout: %w", err)
			}
			defer f.Close()
			out = f
		}
		return perf.WriteJSON(out, results)
	}
	if *benchShards {
		report, err := bench.ShardScalingReport(*seed, []int{1, 2, 4, 8}, stderr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "l3bench: shards classic baseline wall=%.0fms on %d CPUs (GOMAXPROCS %d)\n",
			report.ClassicWallMS, report.NumCPU, report.GoMaxProcs)
		for _, p := range report.Scaling {
			fmt.Fprintf(stderr, "l3bench: shards workers=%d wall=%.0fms events/s=%.0f speedup=%.2fx\n",
				p.Workers, p.WallMS, p.EventsPerSec, p.Speedup)
		}
		fmt.Fprintf(stderr, "l3bench: shards overhead at one worker vs classic: %+.1f%%\n",
			report.OverheadAtOneWorker*100)
		out := stdout
		if *benchout != "" {
			f, err := os.Create(*benchout)
			if err != nil {
				return fmt.Errorf("-benchout: %w", err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	if *benchDiff != "" {
		return runBenchDiff(*benchDiff)
	}

	opts := bench.Options{Seed: *seed, Reps: *reps, Parallel: *parallel, Guard: *guard, Shards: *shards}
	if *quick {
		opts.Duration = 2 * time.Minute
	}
	if *resStr != "" {
		p, err := resilience.ParsePolicy(*resStr)
		if err != nil {
			return fmt.Errorf("-resilience: %w", err)
		}
		opts.Resilience = &p
	}
	if *overloadStr != "" {
		p, err := overload.ParsePolicy(*overloadStr)
		if err != nil {
			return fmt.Errorf("-overload: %w", err)
		}
		opts.Overload = &p
	}

	type runner struct {
		id string
		fn func() (*bench.Result, error)
	}
	dsbDuration := 5 * time.Minute
	if *quick {
		dsbDuration = 2 * time.Minute
	}
	runners := []runner{
		{"1", func() (*bench.Result, error) { return bench.Fig1(*seed) }},
		{"2", func() (*bench.Result, error) { return bench.Fig2(*seed) }},
		{"4", func() (*bench.Result, error) { return bench.Fig4(), nil }},
		{"6", func() (*bench.Result, error) { return bench.Fig6(*seed) }},
		{"7", func() (*bench.Result, error) { return bench.Fig7(opts) }},
		{"8", func() (*bench.Result, error) { return bench.Fig8(opts) }},
		{"9", func() (*bench.Result, error) { return bench.Fig9WithDuration(opts, dsbDuration) }},
		{"10", func() (*bench.Result, error) { return bench.Fig10(opts) }},
		{"11", func() (*bench.Result, error) { return bench.Fig11(opts) }},
		{"12", func() (*bench.Result, error) { return bench.Fig12(opts) }},
		{"C1", func() (*bench.Result, error) { return bench.FigC1(opts) }},
		{"C2", func() (*bench.Result, error) { return bench.FigC2(opts) }},
		{"R1", func() (*bench.Result, error) { return bench.FigR1(opts) }},
		{"R2", func() (*bench.Result, error) { return bench.FigR2(opts) }},
		{"R3", func() (*bench.Result, error) { return bench.FigR3(opts) }},
		{"G1", func() (*bench.Result, error) { return bench.FigG1(opts) }},
		{"G2", func() (*bench.Result, error) { return bench.FigG2(opts) }},
		{"S1", func() (*bench.Result, error) { return bench.FigS1(opts) }},
		{"O1", func() (*bench.Result, error) { return bench.FigO1(opts) }},
		{"O2", func() (*bench.Result, error) { return bench.FigO2(opts) }},
	}
	ablations := []runner{
		{"ablation-inflight-exponent", func() (*bench.Result, error) { return bench.AblationInflightExponent(opts) }},
		{"ablation-percentile", func() (*bench.Result, error) { return bench.AblationPercentile(opts) }},
		{"ablation-rate-control", func() (*bench.Result, error) { return bench.AblationRateControl(opts) }},
		{"ablation-scrape-interval", func() (*bench.Result, error) { return bench.AblationScrapeInterval(opts) }},
		{"ablation-baselines", func() (*bench.Result, error) { return bench.AblationBaselines(opts) }},
		{"ablation-failover", func() (*bench.Result, error) { return bench.AblationFailover(opts) }},
		{"ablation-dynamic-penalty", func() (*bench.Result, error) { return bench.AblationDynamicPenalty(opts) }},
		{"ablation-penalty-retries", func() (*bench.Result, error) { return bench.AblationPenaltyWithRetries(opts) }},
		{"ablation-cost", func() (*bench.Result, error) { return bench.AblationCostAwareness(opts) }},
	}

	var selected []runner
	switch {
	case *chaosStr != "":
		sched, err := chaos.ParseSchedule(*chaosStr)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		scen := *scenario
		selected = []runner{{"chaos", func() (*bench.Result, error) {
			return bench.FigChaosCustom(scen, sched, opts)
		}}}
	case *fig == "all":
		selected = runners
	case *fig == "ablations":
		selected = ablations
	default:
		for _, r := range append(runners, ablations...) {
			if r.id == *fig {
				selected = []runner{r}
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown figure %q (figures 3 and 5 are architecture diagrams with no data)", *fig)
		}
	}

	// Figures fan out like configurations and repetitions do; results are
	// rendered in selection order afterwards, so stdout does not depend on
	// scheduling. Per-figure wall-clock goes to stderr: timing is
	// nondeterministic by nature and would break the byte-identical
	// guarantee on stdout.
	startRuns, startBusy := bench.SelfStats()
	wall := time.Now()
	results := make([]*bench.Result, len(selected))
	times := make([]time.Duration, len(selected))
	err := bench.ForEach(*parallel, len(selected), func(i int) error {
		start := time.Now()
		res, err := selected[i].fn()
		if err != nil {
			return fmt.Errorf("fig %s: %w", selected[i].id, err)
		}
		results[i], times[i] = res, time.Since(start)
		return nil
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		if *csv && len(res.Series) > 0 {
			fmt.Fprint(stdout, res.CSV())
			continue
		}
		fmt.Fprint(stdout, res.Render())
		fmt.Fprintln(stdout)
		fmt.Fprintf(stderr, "l3bench: fig %s in %.1fs\n", selected[i].id, times[i].Seconds())
	}
	elapsed := time.Since(wall)
	workers := *parallel
	if workers <= 0 { // ForEach's GOMAXPROCS fallback
		workers = runtime.GOMAXPROCS(0)
	}
	runs, busy := bench.SelfStats()
	if runs -= startRuns; runs > 0 {
		busy -= startBusy
		fmt.Fprintf(stderr,
			"l3bench: %d runs, %.1fs busy across %d workers, %.1fs elapsed (%.1fx vs serial)\n",
			int(runs), busy.Seconds(), workers, elapsed.Seconds(),
			busy.Seconds()/elapsed.Seconds())
	}
	return nil
}
