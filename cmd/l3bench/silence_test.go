package main

import (
	"io"
	"os"
	"testing"
)

// TestMain silences the tool's stdout and timing stderr during tests so
// test logs stay readable; errors still reach the process stderr.
func TestMain(m *testing.M) {
	stdout = io.Discard
	stderr = io.Discard
	os.Exit(m.Run())
}
