package main

import "testing"

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-fig", "3"}); err == nil {
		t.Fatal("figure 3 (diagram) should explain it has no data")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFig4(t *testing.T) {
	if err := run([]string{"-fig", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig1CSV(t *testing.T) {
	if err := run([]string{"-fig", "1", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaosBadSchedule(t *testing.T) {
	if err := run([]string{"-chaos", "partition@nope"}); err == nil {
		t.Fatal("malformed schedule accepted")
	}
	if err := run([]string{"-chaos", "meteor@10s"}); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

func TestRunChaosCustom(t *testing.T) {
	err := run([]string{
		"-chaos", "partition@48s+24s:cluster-1/cluster-2",
		"-scenario", "scenario-1", "-quick",
	})
	if err != nil {
		t.Fatal(err)
	}
}
