package main

import (
	"io"
	"os"
	"testing"
)

// TestMain silences the tool's stdout during tests so test logs stay
// readable; errors still reach stderr.
func TestMain(m *testing.M) {
	stdout = io.Discard
	os.Exit(m.Run())
}
