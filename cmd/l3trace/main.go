// Command l3trace demonstrates the paper's trace-extraction methodology
// (§5.1): run the DeathStarBench application with distributed tracing
// enabled, then extract per-backend latency series from the spans — once
// with network delay excluded (the paper's choice when converting
// production traces into test scenarios) and once client-observed — and
// print the comparison, which makes the WAN contribution per backend
// visible.
//
// Usage:
//
//	l3trace                      # 2-minute DSB run at 100 RPS
//	l3trace -rps 200 -duration 5m -seed 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"l3/internal/balancer"
	"l3/internal/dsb"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/tracing"
	"l3/internal/wan"
)

// stdout is swappable so tests can silence the tool's output.
var stdout io.Writer = os.Stdout

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "l3trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("l3trace", flag.ContinueOnError)
	var (
		rps      = fs.Float64("rps", 100, "offered load")
		duration = fs.Duration("duration", 2*time.Minute, "measured duration")
		seed     = fs.Uint64("seed", 1, "random seed")
		top      = fs.Int("top", 12, "show the slowest N backends")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	engine := sim.NewEngine()
	rng := sim.NewRand(*seed)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	rec := tracing.NewRecorder(0)
	m.SetSpanRecorder(rec)

	clusters := []string{"cluster-1", "cluster-2", "cluster-3"}
	app, err := dsb.InstallHotelReservation(m, clusters, rng.Fork(), dsb.WithPerfVariation())
	if err != nil {
		return err
	}
	if err := app.SetPickerAll(func(string) mesh.Picker { return balancer.NewRoundRobin() }); err != nil {
		return err
	}

	gen := loadgen.New(engine, loadgen.Config{Rate: loadgen.ConstantRate(*rps)},
		func(done func(time.Duration, bool)) error {
			return m.Call("cluster-1", dsb.EntryService, func(r mesh.Result) {
				done(r.Latency, r.Success)
			})
		})
	gen.Start()
	engine.RunUntil(*duration)

	spans := rec.Spans()
	fmt.Fprintf(stdout, "collected %d spans over %v (%d dropped)\n\n", len(spans), *duration, rec.Dropped())

	exec := tracing.Extract(spans, time.Second, tracing.ExecutionOnly, nil)
	client := tracing.Extract(spans, time.Second, tracing.ClientObserved, nil)

	type row struct {
		backend            string
		execMed, clientMed time.Duration
		execP99, clientP99 time.Duration
		count              int
	}
	var rows []row
	for _, key := range exec.Keys() {
		em, ep, n, _ := exec.Summary(key)
		cm, cp, _, _ := client.Summary(key)
		rows = append(rows, row{key, em, cm, ep, cp, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].clientP99 > rows[j].clientP99 })
	if len(rows) > *top {
		rows = rows[:*top]
	}

	fmt.Fprintf(stdout, "%-34s %8s %10s %10s %10s %10s\n",
		"backend", "spans", "exec p50", "client p50", "exec p99", "client p99")
	for _, r := range rows {
		fmt.Fprintf(stdout, "%-34s %8d %10s %10s %10s %10s\n",
			r.backend, r.count,
			fmtMS(r.execMed), fmtMS(r.clientMed), fmtMS(r.execP99), fmtMS(r.clientP99))
	}
	fmt.Fprintln(stdout, "\nexec columns exclude network transit (the paper's §5.1 extraction);")
	fmt.Fprintln(stdout, "client columns include it — the gap is the WAN cost of cross-cluster hops.")
	return nil
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
