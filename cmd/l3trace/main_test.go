package main

import "testing"

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunShortTrace(t *testing.T) {
	if err := run([]string{"-duration", "20s", "-rps", "50", "-top", "3"}); err != nil {
		t.Fatal(err)
	}
}
