package perf

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"l3/internal/histogram"
	"l3/internal/metrics"
	"l3/internal/sim"
)

// Standard wrappers so `go test -bench .` exercises the same bodies
// cmd/l3bench's -bench mode runs programmatically.

func BenchmarkMeshCall(b *testing.B)                { BenchMeshCall(b) }
func BenchmarkMeshCallP2C(b *testing.B)             { BenchMeshCallP2C(b) }
func BenchmarkMetricsSeriesAccess(b *testing.B)     { BenchMetricsSeriesAccess(b) }
func BenchmarkMetricsLabelledLookup(b *testing.B)   { BenchMetricsLabelledLookup(b) }
func BenchmarkMetricsCounterAdd(b *testing.B)       { BenchMetricsCounterAdd(b) }
func BenchmarkMetricsHistogramObserve(b *testing.B) { BenchMetricsHistogramObserve(b) }
func BenchmarkRegistrySnapshot(b *testing.B)        { BenchRegistrySnapshot(b) }
func BenchmarkRegistrySnapshotCold(b *testing.B)    { BenchRegistrySnapshotCold(b) }
func BenchmarkHistogramRecord(b *testing.B)         { BenchHistogramRecord(b) }
func BenchmarkHistogramQuantile(b *testing.B)       { BenchHistogramQuantile(b) }
func BenchmarkEngineSchedule(b *testing.B)          { BenchEngineSchedule(b) }
func BenchmarkEngineTimerAfter(b *testing.B)        { BenchEngineTimerAfter(b) }
func BenchmarkShardBarrier(b *testing.B)            { BenchShardBarrier(b) }
func BenchmarkCrossShardSend(b *testing.B)          { BenchCrossShardSend(b) }

// TestSeriesAccessAllocsPinned pins the MetricsSeriesAccess bugfix: the
// route-cached handle path must perform a response's full metric work —
// inflight up/down, class counter, latency observation — with zero heap
// allocations (the labelled lookup it replaced paid 6 allocs/336 B).
func TestSeriesAccessAllocsPinned(t *testing.T) {
	r := metrics.NewRegistry()
	labels := metrics.Labels{"service": "api", "backend": "api-cluster-2", "src": "cluster-1"}
	cl := labels.With("classification", "success")
	inflight := r.Gauge("request_inflight", labels)
	total := r.Counter("response_total", cl)
	lat := r.Histogram("response_latency", cl, histogram.LinkerdLatencyBounds)
	allocs := testing.AllocsPerRun(200, func() {
		inflight.Inc()
		total.Inc()
		lat.Observe(0.042)
		inflight.Dec()
	})
	if allocs != 0 {
		t.Fatalf("route-cached metric access allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSnapshotBufferReuseAllocsPinned pins the RegistrySnapshot bugfix at
// the call site scrape loops use: with a caller-held buffer, a scrape pass
// over the testbed-shaped registry allocates nothing.
func TestSnapshotBufferReuseAllocsPinned(t *testing.T) {
	r := newSnapshotRegistry()
	buf := r.SnapshotAppend(nil)
	allocs := testing.AllocsPerRun(200, func() {
		buf = r.SnapshotAppend(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("warm SnapshotAppend allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEngineScheduleAllocsPinned pins the EngineSchedule bugfix: the
// handle-less schedule+dispatch cycle recycles events off the free list, so
// with the list warm it allocates nothing. (The benchmark used to go
// through After and charge the *Timer handle's 1 alloc/24 B to the
// scheduler; EngineTimerAfter now carries that comparison explicitly.)
func TestEngineScheduleAllocsPinned(t *testing.T) {
	engine := sim.NewEngine()
	noop := func() {}
	engine.ScheduleAfter(time.Microsecond, noop)
	engine.Step()
	allocs := testing.AllocsPerRun(200, func() {
		engine.ScheduleAfter(time.Microsecond, noop)
		engine.Step()
	})
	if allocs != 0 {
		t.Fatalf("warm ScheduleAfter+Step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCrossShardSendAllocsPinned pins the batched-mailbox path: a
// steady-state window carrying one cross-shard send — outbox append,
// canonical merge, heap delivery, callback — allocates nothing once slabs
// and free lists are warm.
func TestCrossShardSendAllocsPinned(t *testing.T) {
	const step = time.Millisecond
	se := sim.NewSharded(2, step)
	noop := func() {}
	sh := se.Shard(0)
	eng := sh.Engine()
	var tick func()
	tick = func() {
		sh.Send(1, eng.Now()+step, noop)
		eng.ScheduleAfter(step, tick)
	}
	eng.Schedule(0, tick)
	se.RunUntil(16 * step)
	next := se.Now()
	allocs := testing.AllocsPerRun(200, func() {
		next += step
		se.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("steady-state cross-shard window allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSuiteNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for _, bm := range append(Suite(), ShardSuite()...) {
		if bm.Name == "" || bm.Fn == nil {
			t.Fatalf("suite entry %+v incomplete", bm.Name)
		}
		if seen[bm.Name] {
			t.Fatalf("duplicate suite entry %q", bm.Name)
		}
		seen[bm.Name] = true
	}
}

func TestDiffFlagsRegressionsAndOmissions(t *testing.T) {
	base := []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "B", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "Gone", NsPerOp: 50},
	}
	fresh := []Result{
		{Name: "A", NsPerOp: 114, AllocsPerOp: 0}, // within 15%
		{Name: "B", NsPerOp: 120, AllocsPerOp: 3}, // ns/op and allocs regress
		{Name: "New", NsPerOp: 10},
	}
	msgs := Diff(base, fresh, 0.15)
	if len(msgs) != 4 {
		t.Fatalf("got %d messages, want 4: %v", len(msgs), msgs)
	}
	if len(Diff(base[:2], fresh[:1], 0.15)) != 1 { // only B missing
		t.Fatal("missing-benchmark case not flagged")
	}
	if msgs := Diff(base[:1], fresh[:1], 0.15); msgs != nil {
		t.Fatalf("clean run flagged: %v", msgs)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	in := []Result{{Name: "MeshCall", Iterations: 10, NsPerOp: 1234.5,
		AllocsPerOp: 2, BytesPerOp: 64, RequestsPerSec: 810000}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
