package perf

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Standard wrappers so `go test -bench .` exercises the same bodies
// cmd/l3bench's -bench mode runs programmatically.

func BenchmarkMeshCall(b *testing.B)                { BenchMeshCall(b) }
func BenchmarkMeshCallP2C(b *testing.B)             { BenchMeshCallP2C(b) }
func BenchmarkMetricsSeriesAccess(b *testing.B)     { BenchMetricsSeriesAccess(b) }
func BenchmarkMetricsCounterAdd(b *testing.B)       { BenchMetricsCounterAdd(b) }
func BenchmarkMetricsHistogramObserve(b *testing.B) { BenchMetricsHistogramObserve(b) }
func BenchmarkRegistrySnapshot(b *testing.B)        { BenchRegistrySnapshot(b) }
func BenchmarkHistogramRecord(b *testing.B)         { BenchHistogramRecord(b) }
func BenchmarkHistogramQuantile(b *testing.B)       { BenchHistogramQuantile(b) }
func BenchmarkEngineSchedule(b *testing.B)          { BenchEngineSchedule(b) }

func TestSuiteNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for _, bm := range Suite() {
		if bm.Name == "" || bm.Fn == nil {
			t.Fatalf("suite entry %+v incomplete", bm.Name)
		}
		if seen[bm.Name] {
			t.Fatalf("duplicate suite entry %q", bm.Name)
		}
		seen[bm.Name] = true
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	in := []Result{{Name: "MeshCall", Iterations: 10, NsPerOp: 1234.5,
		AllocsPerOp: 2, BytesPerOp: 64, RequestsPerSec: 810000}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
