// Package perf is the harness-performance measurement layer: a suite of
// micro-benchmarks over the simulator's per-request data plane (mesh.Call,
// metrics series access, histogram recording, the sim engine's event heap)
// that runs both as ordinary `go test -bench` benchmarks (see perf_test.go)
// and programmatically from cmd/l3bench's -bench mode, which renders the
// results as machine-readable JSON (BENCH_fastpath.json).
//
// The per-request path is the product: every simulated request pays
// mesh.Call's metric recording, two WAN hops on the event heap and a
// histogram observation, so these numbers bound the simulated-requests/sec
// the whole figure harness can sustain. The suite exists to prove fast-path
// changes and to keep them from regressing (alloc pins live next to the
// benchmarks in each package's tests).
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/histogram"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

// Bench is one named benchmark body, runnable by the testing package.
type Bench struct {
	// Name is the benchmark's identifier in results (Go-benchmark style).
	Name string
	// Fn is the benchmark body; it must call b.ReportAllocs itself so
	// allocation stats are recorded under testing.Benchmark too.
	Fn func(b *testing.B)
}

// Suite returns the fast-path benchmark suite in a fixed order.
func Suite() []Bench {
	return []Bench{
		{"MeshCall", BenchMeshCall},
		{"MeshCallP2C", BenchMeshCallP2C},
		{"MetricsSeriesAccess", BenchMetricsSeriesAccess},
		{"MetricsLabelledLookup", BenchMetricsLabelledLookup},
		{"MetricsCounterAdd", BenchMetricsCounterAdd},
		{"MetricsHistogramObserve", BenchMetricsHistogramObserve},
		{"RegistrySnapshot", BenchRegistrySnapshot},
		{"RegistrySnapshotCold", BenchRegistrySnapshotCold},
		{"HistogramRecord", BenchHistogramRecord},
		{"HistogramQuantile", BenchHistogramQuantile},
		{"EngineSchedule", BenchEngineSchedule},
		{"EngineTimerAfter", BenchEngineTimerAfter},
	}
}

// ShardSuite returns the sharded-core benchmark pair, reported inside
// BENCH_shards.json (l3bench -bench-shards) next to the scaling sweep they
// explain.
func ShardSuite() []Bench {
	return []Bench{
		{"ShardBarrier", BenchShardBarrier},
		{"CrossShardSend", BenchCrossShardSend},
	}
}

// newBenchMesh builds the steady-state testbed the mesh benchmarks share:
// three single-millisecond backends across three clusters behind one
// service, mirroring the scenario testbed's shape.
func newBenchMesh(picker mesh.Picker) (*sim.Engine, *mesh.Mesh) {
	engine := sim.NewEngine()
	rng := sim.NewRand(1)
	wcfg := wan.DefaultConfig()
	wcfg.Seed = 1
	m := mesh.New(engine, rng.Fork(), wan.New(wcfg), metrics.NewRegistry())
	if _, err := m.AddService("api"); err != nil {
		panic(err)
	}
	profile := func(now time.Duration, r *sim.Rand) (time.Duration, bool) {
		return time.Millisecond, true
	}
	for _, c := range []string{"cluster-1", "cluster-2", "cluster-3"} {
		if _, err := m.AddBackend("api", "api-"+c, c,
			backend.Config{}, profile); err != nil {
			panic(err)
		}
	}
	if err := m.SetPicker("api", picker); err != nil {
		panic(err)
	}
	return engine, m
}

// runMeshCalls drives b.N full request lifecycles (pick, WAN out, serve,
// WAN back, metric recording) through the engine, one outstanding request
// at a time — the steady-state unit of work every figure run repeats
// millions of times.
func runMeshCalls(b *testing.B, engine *sim.Engine, m *mesh.Mesh) {
	completed := 0
	onDone := func(mesh.Result) { completed++ } // hoisted: one closure for all requests
	issue := func() {
		if err := m.Call("cluster-1", "api", onDone); err != nil {
			b.Fatal(err)
		}
		engine.Run()
	}
	issue() // warm route caches and lazily-registered series
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		issue()
	}
	b.StopTimer()
	if completed != b.N+1 {
		b.Fatalf("completed %d of %d requests", completed, b.N+1)
	}
}

// BenchMeshCall measures one full request through the data plane under the
// round-robin picker (no Observer feedback).
func BenchMeshCall(b *testing.B) {
	engine, m := newBenchMesh(balancer.NewRoundRobin())
	runMeshCalls(b, engine, m)
}

// BenchMeshCallP2C measures the same path under the P2C PeakEWMA picker,
// which additionally takes the Observer feedback branch on completion.
func BenchMeshCallP2C(b *testing.B) {
	engine, m := newBenchMesh(balancer.NewP2C(sim.NewRand(2), 5*time.Second, time.Second))
	runMeshCalls(b, engine, m)
}

// BenchMetricsSeriesAccess measures one response's metric work through
// route-cached handles — what the mesh's routeStats fast path does per
// response (inflight up/down, class counter, latency observation). The
// handles resolve once when the route is first seen; steady state is
// allocation-free, which the pin in perf_test.go enforces.
func BenchMetricsSeriesAccess(b *testing.B) {
	r := metrics.NewRegistry()
	labels := metrics.Labels{"service": "api", "backend": "api-cluster-2", "src": "cluster-1"}
	cl := labels.With("classification", "success")
	inflight := r.Gauge("request_inflight", labels)
	total := r.Counter("response_total", cl)
	lat := r.Histogram("response_latency", cl, histogram.LinkerdLatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inflight.Inc()
		total.Inc()
		lat.Observe(0.042)
		inflight.Dec()
	}
}

// BenchMetricsLabelledLookup preserves the pre-fast-path measurement the
// route cache replaced: build a label set, key it, and resolve the series
// under the registry lock on every access (6 allocs/op) — kept as the
// comparison baseline for MetricsSeriesAccess.
func BenchMetricsLabelledLookup(b *testing.B) {
	r := metrics.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labels := metrics.Labels{"service": "api", "backend": "api-cluster-2", "src": "cluster-1"}
		r.Counter("response_total", labels.With("classification", "success")).Inc()
	}
}

// BenchMetricsCounterAdd measures one counter increment on a resolved
// handle — the steady-state fast-path cost.
func BenchMetricsCounterAdd(b *testing.B) {
	r := metrics.NewRegistry()
	c := r.Counter("response_total", metrics.Labels{"service": "api"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchMetricsHistogramObserve measures one observation into a resolved
// cumulative-bucket histogram handle.
func BenchMetricsHistogramObserve(b *testing.B) {
	r := metrics.NewRegistry()
	h := r.Histogram("response_latency", metrics.Labels{"service": "api"},
		histogram.LinkerdLatencyBounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

// newSnapshotRegistry builds a registry shaped like the scenario testbed's:
// 3 routes x (gauge + 2 counters + 2 histograms).
func newSnapshotRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	for _, c := range []string{"cluster-1", "cluster-2", "cluster-3"} {
		labels := metrics.Labels{"service": "api", "backend": "api-" + c, "src": "cluster-1"}
		r.Gauge("request_inflight", labels).Set(3)
		for _, class := range []string{"success", "failure"} {
			cl := labels.With("classification", class)
			r.Counter("response_total", cl).Add(100)
			h := r.Histogram("response_latency", cl, histogram.LinkerdLatencyBounds)
			h.Observe(0.05)
		}
	}
	return r
}

// BenchRegistrySnapshot measures one scrape pass over the testbed-shaped
// registry through the buffer-reusing path scrape loops use.
func BenchRegistrySnapshot(b *testing.B) {
	r := newSnapshotRegistry()
	// Scrape loops hold their buffer across rounds (core.Scraper does), so
	// the steady-state cost is value-filling alone: zero allocations once
	// the buffer and the registry's sample templates are warm.
	buf := r.SnapshotAppend(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.SnapshotAppend(buf[:0])
		if len(buf) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchRegistrySnapshotCold measures the allocating variant — a fresh
// result slice per scrape, the cost callers pay without a held buffer
// (bounded at ≤ 2 allocs/op by the pin in internal/metrics).
func BenchRegistrySnapshotCold(b *testing.B) {
	r := newSnapshotRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Snapshot(); len(s) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchHistogramRecord measures one observation into the HDR-style
// log-bucketed recorder every load generator feeds per request.
func BenchHistogramRecord(b *testing.B) {
	h := histogram.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000+1) * time.Millisecond)
	}
}

// BenchHistogramQuantile measures a p99 query over a populated recorder —
// the per-second reduction behind every latency series.
func BenchHistogramQuantile(b *testing.B) {
	h := histogram.New()
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i%997+1) * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Quantile(0.99) <= 0 {
			b.Fatal("empty quantile")
		}
	}
}

// BenchEngineSchedule measures the event heap's schedule+dispatch cycle:
// one ScheduleAfter and the Step that fires it, with a standing population
// of pending timers so heap sifts are exercised. ScheduleAfter is the
// handle-less path nearly every hot-path caller uses; with the event free
// list warm it allocates nothing (pinned in perf_test.go — this bench used
// to run the Timer path by accident and report its 1 alloc/24 B as the
// scheduler's cost).
func BenchEngineSchedule(b *testing.B) {
	engine := sim.NewEngine()
	noop := func() {}
	for i := 0; i < 256; i++ { // standing population, like in-flight requests
		engine.After(time.Duration(i+1)*time.Hour, noop)
	}
	engine.ScheduleAfter(time.Microsecond, noop) // warm the event free list
	engine.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.ScheduleAfter(time.Microsecond, noop)
		engine.Step()
	}
}

// BenchEngineTimerAfter measures the same cycle through the cancellable
// Timer path — the comparison baseline for EngineSchedule: the *Timer
// handle costs exactly one 24 B allocation per event, which is why only
// callers that may Cancel should pay for it.
func BenchEngineTimerAfter(b *testing.B) {
	engine := sim.NewEngine()
	noop := func() {}
	for i := 0; i < 256; i++ {
		engine.After(time.Duration(i+1)*time.Hour, noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.After(time.Microsecond, noop)
		engine.Step()
	}
}

// BenchShardBarrier measures one full sharded window — epoch bump, parker
// opens, cursor-claimed shard execution, last-arriver handshake — with two
// always-busy shards fanning out across two workers. All b.N windows run
// inside a single RunUntil, so the pool's once-per-run lazy spawn amortizes
// to zero and the steady-state barrier cost is what's reported: the number
// -shards N pays per lookahead window over a serial loop.
func BenchShardBarrier(b *testing.B) {
	const step = time.Millisecond
	se := sim.NewSharded(2, step)
	se.SetWorkers(2)
	for i := 0; i < 2; i++ {
		eng := se.Shard(i).Engine()
		var tick func()
		tick = func() { eng.ScheduleAfter(step, tick) }
		eng.Schedule(0, tick)
	}
	se.RunUntil(16 * step) // warm free lists and the fan-out path
	b.ReportAllocs()
	b.ResetTimer()
	se.RunUntil(se.Now() + time.Duration(b.N)*step)
	b.StopTimer()
}

// BenchCrossShardSend measures one cross-shard message through the batched
// mailbox protocol: outbox append on the source, canonical merge at the
// barrier, delivery onto the destination's heap, and the fired callback —
// one window per op on the serial path, so the number isolates the mailbox
// machinery itself. Steady state recycles outbox slabs and heap events:
// zero allocations, pinned in perf_test.go.
func BenchCrossShardSend(b *testing.B) {
	const step = time.Millisecond
	se := sim.NewSharded(2, step)
	noop := func() {}
	sh := se.Shard(0)
	eng := sh.Engine()
	var tick func()
	tick = func() {
		sh.Send(1, eng.Now()+step, noop)
		eng.ScheduleAfter(step, tick)
	}
	eng.Schedule(0, tick)
	se.RunUntil(16 * step) // warm outbox slabs and free lists
	b.ReportAllocs()
	b.ResetTimer()
	se.RunUntil(se.Now() + time.Duration(b.N)*step)
	b.StopTimer()
}

// Result is one benchmark's measurement in machine-readable form.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// RequestsPerSec is derived (1e9/NsPerOp) for the mesh benchmarks:
	// the simulated-requests/sec the data plane sustains single-threaded.
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
}

// Run executes the fast-path suite via testing.Benchmark and returns
// results in suite order. Progress lines go to w (nil silences them).
func Run(w io.Writer) []Result { return RunSuite(w, Suite()) }

// RunSuite executes the given benchmarks via testing.Benchmark and returns
// results in order. Progress lines go to w (nil silences them).
func RunSuite(w io.Writer, suite []Bench) []Result {
	results := make([]Result, 0, len(suite))
	for _, bm := range suite {
		r := testing.Benchmark(bm.Fn)
		res := Result{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if bm.Name == "MeshCall" || bm.Name == "MeshCallP2C" {
			if res.NsPerOp > 0 {
				res.RequestsPerSec = 1e9 / res.NsPerOp
			}
		}
		if w != nil {
			fmt.Fprintf(w, "l3bench: bench %-24s %12.1f ns/op %6d allocs/op %8d B/op\n",
				bm.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
		results = append(results, res)
	}
	return results
}

// WriteJSON renders results as indented JSON, one object per benchmark.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// RunSuiteBest runs the suite n times and keeps each benchmark's fastest
// ns/op sample — scheduling noise is one-sided (preemption only ever adds
// time), so the minimum is the stable, comparable number, especially for
// the barrier benchmarks on hosts where workers outnumber cores.
// AllocsPerOp is taken as the maximum across runs: allocation counts are
// contracts, and a single allocating sample must not hide behind a faster
// clean one.
func RunSuiteBest(w io.Writer, suite []Bench, n int) []Result {
	best := RunSuite(w, suite)
	for i := 1; i < n; i++ {
		next := RunSuite(w, suite)
		for j := range best {
			allocs := best[j].AllocsPerOp
			if next[j].AllocsPerOp > allocs {
				allocs = next[j].AllocsPerOp
			}
			if next[j].NsPerOp < best[j].NsPerOp {
				best[j] = next[j]
			}
			best[j].AllocsPerOp = allocs
		}
	}
	return best
}

// Diff compares a fresh benchmark run against a committed baseline and
// returns one message per regression: ns/op worse than the baseline by more
// than tol (a ratio — 0.15 means 15 %), or any increase in allocs/op (the
// alloc pins treat allocations as exact, so the tolerance never applies to
// them). Benchmarks present on only one side are reported too — a silently
// dropped benchmark would otherwise make a regression invisible. An empty
// slice means the fresh run is clean.
func Diff(baseline, fresh []Result, tol float64) []string {
	var msgs []string
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	seen := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		seen[r.Name] = true
		old, ok := base[r.Name]
		if !ok {
			msgs = append(msgs, fmt.Sprintf("%s: missing from baseline (new benchmark? refresh it)", r.Name))
			continue
		}
		if old.NsPerOp > 0 && r.NsPerOp > old.NsPerOp*(1+tol) {
			msgs = append(msgs, fmt.Sprintf("%s: %.1f ns/op, %.0f%% over baseline %.1f ns/op (tolerance %.0f%%)",
				r.Name, r.NsPerOp, (r.NsPerOp/old.NsPerOp-1)*100, old.NsPerOp, tol*100))
		}
		if r.AllocsPerOp > old.AllocsPerOp {
			msgs = append(msgs, fmt.Sprintf("%s: %d allocs/op, baseline %d (any increase fails)",
				r.Name, r.AllocsPerOp, old.AllocsPerOp))
		}
	}
	for _, r := range baseline {
		if !seen[r.Name] {
			msgs = append(msgs, fmt.Sprintf("%s: in baseline but not in this run", r.Name))
		}
	}
	return msgs
}
