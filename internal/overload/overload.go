// Package overload is the admission-control layer: an adaptive concurrency
// limiter (Vegas-style gradient on minRTT vs observed RTT, AIMD on
// failure), a CoDel-flavoured admission queue (target-delay dropping with
// adaptive-LIFO switchover under a standing queue), and criticality-tiered
// load shedding (sheddable traffic rejected first, tiers re-admitted with
// hysteresis so admission does not flap).
//
// L3 steers traffic toward low-latency backends, but steering alone cannot
// protect a backend — or the proxy itself — once offered load exceeds
// capacity: queues grow without bound and every request sees the full
// queue, the collapse that retry budgets (figure R1) only partially
// contain. This layer bounds the damage at the front door:
//
//		tier gate → concurrency limiter → admission queue (CoDel) → issue
//
//	  - The limiter tracks the minimum observed RTT as the no-queueing
//	    baseline and estimates the requests it is keeping queued as
//	    q = limit·(1 − minRTT/winRTT), where winRTT is the current window's
//	    own minimum — the best case the path offers right now, so inflation
//	    there is queueing rather than service-time spread. Below alpha it
//	    grows the limit by one per window; above beta it shrinks by one; a
//	    failed response (timeout, 5xx) multiplies the limit by Decrease at
//	    most once per window — additive increase, multiplicative decrease,
//	    like TCP Vegas adapted to concurrency (Netflix's adaptive
//	    concurrency limits).
//	  - Requests over the limit wait in a bounded queue. At dequeue the
//	    sojourn time feeds a CoDel control law: once sojourn has stayed
//	    above Target for a full Interval the queue is "standing" and
//	    dequeues drop at sqrt-spaced intervals until sojourn falls below
//	    Target again. Under a standing queue the dequeue order flips to
//	    LIFO (newest first — Facebook's adaptive LIFO): fresh requests
//	    still meet their deadlines while the backlog, which would time out
//	    anyway, absorbs the drops.
//	  - Every request carries a criticality tier (0 = critical,
//	    1 = default, 2 = sheddable). The drop law decides when to shed;
//	    criticality decides who: a CoDel drop falls on the most sheddable
//	    request still queued (DAGOR-style), and the drop law never
//	    discards the top tier at all — an all-critical standing queue is
//	    bounded by MaxWait and qcap instead. Overload signals
//	    (CoDel drops, queue overflow) also clamp the highest admitted tier
//	    one step at a time; a tier is re-admitted only after queue delay
//	    has stayed below Target/2 for Readmit — hysteresis, so a tier does
//	    not flap in and out at the overload boundary.
//
// The layer preserves the mesh's zero-allocation discipline: policies
// resolve to per-service state once, request state recycles through free
// lists with pre-bound callbacks, and the wall-clock admitter's
// no-queueing fast path is lock-then-counters only.
package overload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Metric families the layer exports, so shedding and limit adaptation can
// be plotted next to the data-plane series.
const (
	// MetricAdmittedTotal counts requests admitted (fast path or dequeued),
	// per service.
	MetricAdmittedTotal = "overload_admitted_total"
	// MetricShedTotal counts requests rejected, per service and tier label
	// ("critical", "default", "sheddable").
	MetricShedTotal = "overload_shed_total"
	// MetricCodelDroppedTotal counts queue entries dropped by the CoDel
	// control law at dequeue.
	MetricCodelDroppedTotal = "overload_codel_dropped_total"
	// MetricQueueOverflowTotal counts requests rejected because the
	// admission queue was full.
	MetricQueueOverflowTotal = "overload_queue_overflow_total"
	// MetricLifoFlipsTotal counts switches into LIFO dequeue order.
	MetricLifoFlipsTotal = "overload_lifo_flips_total"
	// MetricReadmitsTotal counts tiers re-admitted after hysteresis.
	MetricReadmitsTotal = "overload_tier_readmits_total"
	// MetricConcurrencyLimit gauges the limiter's current limit.
	MetricConcurrencyLimit = "overload_concurrency_limit"
)

// The three criticality tiers, lowest shed first from the top.
const (
	// TierCritical is never shed by the tier gate (the limiter and queue
	// still apply).
	TierCritical = 0
	// TierDefault is the tier of unmarked requests.
	TierDefault = 1
	// TierSheddable is rejected first under overload.
	TierSheddable = 2
	// NumTiers is the number of criticality tiers.
	NumTiers = 3
)

var tierNames = [NumTiers]string{"critical", "default", "sheddable"}

// TierName returns the label value for a tier ("critical", "default",
// "sheddable").
func TierName(tier int) string {
	if tier < 0 || tier >= NumTiers {
		return "default"
	}
	return tierNames[tier]
}

// ParseTier maps a criticality annotation (the X-L3-Criticality header in
// the wall path, a call option in the sim path) to a tier. Unknown or
// empty values are TierDefault; comparisons allocate nothing.
func ParseTier(s string) int {
	switch s {
	case "critical", "0":
		return TierCritical
	case "sheddable", "2":
		return TierSheddable
	default:
		return TierDefault
	}
}

// LimiterConfig parameterises the adaptive concurrency limiter.
type LimiterConfig struct {
	// Initial is the starting concurrency limit (0 disables the whole
	// layer).
	Initial int
	// Min / Max clamp the adaptive limit (defaults 1 and 4×Initial).
	Min int
	Max int
	// Alpha / Beta are the Vegas thresholds on the estimated queue
	// q = limit·(1 − Tolerance·minRTT/winRTT): grow below Alpha, shrink
	// above Beta (defaults 3 and 6).
	Alpha float64
	Beta  float64
	// Tolerance discounts RTT inflation below Tolerance×minRTT as noise
	// (default 2): heavy-tailed service time moves the window minimum by
	// tens of percent without any queueing, and reacting to that would
	// collapse the limit at healthy baseline. Real congestion — queue
	// waits of multiples of the service time — clears the factor easily.
	Tolerance float64
	// Window is how many responses close one adaptation window
	// (default 16).
	Window int
	// Decrease is the multiplicative factor applied on a failed response,
	// at most once per window (default 0.9).
	Decrease float64
}

// QueueConfig parameterises the CoDel admission queue.
type QueueConfig struct {
	// Target is the acceptable queue sojourn; sojourns above it for a
	// full Interval mark the queue standing (default 5 ms).
	Target time.Duration
	// Interval is the CoDel control interval (default 100 ms).
	Interval time.Duration
	// Capacity bounds the queue; arrivals beyond it are shed immediately
	// (default 128; 0 disables queueing — over-limit arrivals shed).
	Capacity int
	// MaxWait is the hard ceiling on queue sojourn: entries older than it
	// are discarded at dequeue regardless of the drop law's state (default
	// 10×Interval). Under adaptive LIFO the backlog end of the queue can
	// hold entries for the whole overload; this bounds how stale an
	// admitted request can be.
	MaxWait time.Duration
	// DisableLIFO keeps FIFO order even under a standing queue.
	DisableLIFO bool
}

// TierConfig parameterises criticality-tiered shedding.
type TierConfig struct {
	// Enabled turns the tier gate on.
	Enabled bool
	// Readmit is how long queue delay must stay below Target/2 before the
	// next clamped tier is re-admitted (default 1 s).
	Readmit time.Duration
	// ClampHold is the minimum spacing between clamp steps, so one burst
	// of drops walks down one tier, not all of them (default Interval).
	ClampHold time.Duration
}

// Policy is a service's admission policy. The zero value disables the
// layer entirely.
type Policy struct {
	Limiter LimiterConfig
	Queue   QueueConfig
	Tiers   TierConfig
}

// Enabled reports whether the layer is active.
func (p Policy) Enabled() bool { return p.Limiter.Initial > 0 }

// WithDefaults returns the policy with every unset knob at its documented
// default — what NewClient and NewWallAdmitter actually run, so callers
// can read effective parameters (e.g. the MaxWait ceiling) for reports.
func (p Policy) WithDefaults() Policy { return p.withDefaults() }

func (p Policy) withDefaults() Policy {
	if p.Limiter.Initial <= 0 {
		return p
	}
	if p.Limiter.Min <= 0 {
		p.Limiter.Min = 1
	}
	if p.Limiter.Max <= 0 {
		p.Limiter.Max = 4 * p.Limiter.Initial
	}
	if p.Limiter.Max < p.Limiter.Min {
		p.Limiter.Max = p.Limiter.Min
	}
	if p.Limiter.Alpha <= 0 {
		p.Limiter.Alpha = 3
	}
	if p.Limiter.Beta <= p.Limiter.Alpha {
		p.Limiter.Beta = 2 * p.Limiter.Alpha
	}
	if p.Limiter.Window <= 0 {
		p.Limiter.Window = 16
	}
	if p.Limiter.Tolerance <= 0 {
		p.Limiter.Tolerance = 2
	}
	if p.Limiter.Decrease <= 0 || p.Limiter.Decrease >= 1 {
		p.Limiter.Decrease = 0.9
	}
	if p.Queue.Capacity > 0 || p.Queue.Target > 0 || p.Tiers.Enabled {
		if p.Queue.Capacity <= 0 {
			p.Queue.Capacity = 128
		}
		if p.Queue.Target <= 0 {
			p.Queue.Target = 5 * time.Millisecond
		}
		if p.Queue.Interval <= 0 {
			p.Queue.Interval = 100 * time.Millisecond
		}
		if p.Queue.MaxWait <= 0 {
			p.Queue.MaxWait = 10 * p.Queue.Interval
		}
	}
	if p.Tiers.Enabled {
		if p.Tiers.Readmit <= 0 {
			p.Tiers.Readmit = time.Second
		}
		if p.Tiers.ClampHold <= 0 {
			p.Tiers.ClampHold = p.Queue.Interval
		}
	}
	return p
}

// String renders the policy in the -overload flag grammar ParsePolicy
// accepts.
func (p Policy) String() string {
	if !p.Enabled() {
		return "off"
	}
	parts := []string{"limit=" + strconv.Itoa(p.Limiter.Initial)}
	if p.Limiter.Min > 0 {
		parts = append(parts, "min="+strconv.Itoa(p.Limiter.Min))
	}
	if p.Limiter.Max > 0 {
		parts = append(parts, "max="+strconv.Itoa(p.Limiter.Max))
	}
	if p.Queue.Target > 0 {
		parts = append(parts, "target="+p.Queue.Target.String())
	}
	if p.Queue.Interval > 0 {
		parts = append(parts, "interval="+p.Queue.Interval.String())
	}
	if p.Queue.Capacity > 0 {
		parts = append(parts, "qcap="+strconv.Itoa(p.Queue.Capacity))
	}
	if p.Queue.MaxWait > 0 {
		parts = append(parts, "maxwait="+p.Queue.MaxWait.String())
	}
	if p.Queue.DisableLIFO {
		parts = append(parts, "lifo=off")
	}
	if p.Tiers.Enabled {
		parts = append(parts, "tiers=on")
		if p.Tiers.Readmit > 0 {
			parts = append(parts, "readmit="+p.Tiers.Readmit.String())
		}
	}
	return strings.Join(parts, ",")
}

// ParsePolicy parses the textual policy format of the l3bench -overload
// flag and the l3serve `overload` config key: comma-separated key=value
// pairs ("off" or empty disables).
//
//	limit=16       initial concurrency limit (enables the layer)
//	min=1 max=64   clamp on the adaptive limit
//	alpha=3 beta=6 Vegas grow/shrink thresholds on the estimated queue
//	tolerance=2    RTT inflation below tolerance×minRTT is noise, not queueing
//	window=16      responses per adaptation window   decrease=0.9  AIMD factor
//	target=5ms     CoDel target sojourn   interval=100ms  CoDel interval
//	qcap=128       admission-queue capacity   maxwait=1s  hard sojourn ceiling
//	lifo=off       keep FIFO under a standing queue (default adaptive LIFO)
//	tiers=on       criticality-tiered shedding
//	readmit=1s     healthy time before a shed tier re-admits
func ParsePolicy(s string) (Policy, error) {
	var p Policy
	if strings.TrimSpace(s) == "off" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return p, fmt.Errorf("overload: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "limit":
			p.Limiter.Initial, err = strconv.Atoi(val)
		case "min":
			p.Limiter.Min, err = strconv.Atoi(val)
		case "max":
			p.Limiter.Max, err = strconv.Atoi(val)
		case "alpha":
			p.Limiter.Alpha, err = strconv.ParseFloat(val, 64)
		case "beta":
			p.Limiter.Beta, err = strconv.ParseFloat(val, 64)
		case "tolerance":
			p.Limiter.Tolerance, err = strconv.ParseFloat(val, 64)
		case "window":
			p.Limiter.Window, err = strconv.Atoi(val)
		case "decrease":
			p.Limiter.Decrease, err = strconv.ParseFloat(val, 64)
		case "target":
			p.Queue.Target, err = time.ParseDuration(val)
		case "interval":
			p.Queue.Interval, err = time.ParseDuration(val)
		case "qcap":
			p.Queue.Capacity, err = strconv.Atoi(val)
		case "maxwait":
			p.Queue.MaxWait, err = time.ParseDuration(val)
		case "lifo":
			var on bool
			on, err = parseOnOff(val)
			p.Queue.DisableLIFO = !on
		case "tiers":
			p.Tiers.Enabled, err = parseOnOff(val)
		case "readmit":
			p.Tiers.Readmit, err = time.ParseDuration(val)
			p.Tiers.Enabled = p.Tiers.Enabled || err == nil
		default:
			return p, fmt.Errorf("overload: unknown policy key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("overload: bad %s value %q: %w", key, val, err)
		}
	}
	return p, nil
}

func parseOnOff(val string) (bool, error) {
	switch val {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("want on or off")
}

// minRTTWindows is how many adaptation windows the limiter's minRTT
// baseline spans; old minima age out so a routing change (or a healed
// fault) cannot pin an unreachably low baseline forever.
const minRTTWindows = 8

// Limiter is the adaptive concurrency limiter. It is a plain
// single-threaded value — the sim client runs it on an engine timeline and
// the wall admitter guards it with its own mutex.
type Limiter struct {
	cfg      LimiterConfig
	limit    float64
	inflight int

	// Current adaptation window.
	winMin    time.Duration
	winOK     int
	winN      int
	decreased bool

	// Ring of recent per-window RTT minima; their min is the baseline.
	minRing [minRTTWindows]time.Duration
	ringN   int
	ringI   int
}

// NewLimiter returns a limiter for an already-defaulted config.
func NewLimiter(cfg LimiterConfig) Limiter {
	return Limiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// Limit is the current concurrency limit.
func (l *Limiter) Limit() int { return int(l.limit) }

// Inflight is the number of held slots.
func (l *Limiter) Inflight() int { return l.inflight }

// TryAcquire takes a slot if one is free.
func (l *Limiter) TryAcquire() bool {
	if l.inflight >= int(l.limit) {
		return false
	}
	l.inflight++
	return true
}

// Release returns a slot.
func (l *Limiter) Release() {
	if l.inflight > 0 {
		l.inflight--
	}
}

// Observe feeds one response outcome into the adaptation loop. A failure
// (timeout, 5xx, shed downstream) is the AIMD decrease signal, applied at
// most once per window; successes close windows that grow or shrink the
// limit by one on the Vegas queue estimate.
func (l *Limiter) Observe(rtt time.Duration, success bool) {
	if !success {
		if !l.decreased {
			l.decreased = true
			l.limit *= l.cfg.Decrease
			if l.limit < float64(l.cfg.Min) {
				l.limit = float64(l.cfg.Min)
			}
		}
	} else {
		if l.winOK == 0 || rtt < l.winMin {
			l.winMin = rtt
		}
		l.winOK++
	}
	if l.winN++; l.winN < l.cfg.Window {
		return
	}
	l.closeWindow()
}

func (l *Limiter) closeWindow() {
	if l.winOK > 0 {
		l.minRing[l.ringI] = l.winMin
		l.ringI = (l.ringI + 1) % minRTTWindows
		if l.ringN < minRTTWindows {
			l.ringN++
		}
		if !l.decreased {
			minRTT := l.minRing[0]
			for i := 1; i < l.ringN; i++ {
				if l.minRing[i] < minRTT {
					minRTT = l.minRing[i]
				}
			}
			// Compare baselines: the window's own minimum is the best case
			// the path currently offers, so inflation there is queueing,
			// not service-time spread — and the tolerance factor forgives
			// the sampling noise a heavy-tailed service distribution puts
			// on a 16-sample minimum. Without both, dispersion alone reads
			// as a standing queue and the limit collapses at healthy
			// baseline.
			q := 0.0
			if l.winMin > 0 {
				q = l.limit * (1 - l.cfg.Tolerance*float64(minRTT)/float64(l.winMin))
				if q < 0 {
					q = 0
				}
			}
			switch {
			case q < l.cfg.Alpha:
				if l.limit += 1; l.limit > float64(l.cfg.Max) {
					l.limit = float64(l.cfg.Max)
				}
			case q > l.cfg.Beta:
				if l.limit -= 1; l.limit < float64(l.cfg.Min) {
					l.limit = float64(l.cfg.Min)
				}
			}
		}
	}
	l.winMin, l.winOK, l.winN = 0, 0, 0
	l.decreased = false
}

// CoDel is the controlled-delay drop law, evaluated on each dequeue with
// the entry's queue sojourn. Like Limiter it is a plain single-threaded
// value.
type CoDel struct {
	cfg QueueConfig
	// firstAbove is when the current above-target excursion will have
	// lasted a full interval (0 = sojourn currently below target).
	firstAbove time.Duration
	dropping   bool
	dropNext   time.Duration
	dropCount  int
}

// NewCoDel returns a drop law for an already-defaulted config.
func NewCoDel(cfg QueueConfig) CoDel { return CoDel{cfg: cfg} }

// Dropping reports whether the queue is standing (above target for a full
// interval) — the adaptive-LIFO and tier-clamp signal.
func (c *CoDel) Dropping() bool { return c.dropping }

// OnDequeue reports whether the entry dequeued at now after sojourn in the
// queue should be dropped.
func (c *CoDel) OnDequeue(now, sojourn time.Duration) bool {
	if sojourn < c.cfg.Target {
		c.firstAbove = 0
		c.dropping = false
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.cfg.Interval
		return false
	}
	if now < c.firstAbove {
		return false
	}
	if !c.dropping {
		c.dropping = true
		// Re-entering drop state shortly after leaving it resumes near the
		// previous drop rate instead of relearning it from scratch.
		if c.dropCount > 2 && now-c.dropNext < 8*c.cfg.Interval {
			c.dropCount -= 2
		} else {
			c.dropCount = 0
		}
		c.dropNext = now
	}
	if now >= c.dropNext {
		c.dropCount++
		c.dropNext = now + time.Duration(float64(c.cfg.Interval)/math.Sqrt(float64(c.dropCount)))
		return true
	}
	return false
}

// TierGate clamps and re-admits criticality tiers. Overload signals clamp
// the highest admitted tier one step at a time (spaced by ClampHold);
// re-admission needs queue delay below Target/2 sustained for Readmit.
type TierGate struct {
	cfg      TierConfig
	target   time.Duration
	admitMax int
	// goodSince is when queue delay last became healthy (0 = unhealthy).
	goodSince time.Duration
	lastClamp time.Duration
	readmits  int
}

// NewTierGate returns a gate for already-defaulted tier and queue configs;
// all tiers start admitted.
func NewTierGate(cfg TierConfig, target time.Duration) TierGate {
	return TierGate{cfg: cfg, target: target, admitMax: NumTiers - 1}
}

// Admit reports whether the tier is currently admitted.
func (g *TierGate) Admit(tier int) bool {
	return !g.cfg.Enabled || tier <= g.admitMax
}

// AdmitMax is the highest currently admitted tier.
func (g *TierGate) AdmitMax() int { return g.admitMax }

// Readmits counts tiers re-admitted after hysteresis.
func (g *TierGate) Readmits() int { return g.readmits }

// Overloaded is the clamp signal (a CoDel drop or queue overflow): shed
// one more tier, at most once per ClampHold.
func (g *TierGate) Overloaded(now time.Duration) {
	if !g.cfg.Enabled {
		return
	}
	g.goodSince = 0
	if g.admitMax > 0 && (g.lastClamp == 0 || now-g.lastClamp >= g.cfg.ClampHold) {
		g.admitMax--
		g.lastClamp = now
	}
}

// Signal feeds one queue-delay observation (0 for fast-path admissions)
// and reports whether sustained health just re-admitted a tier.
func (g *TierGate) Signal(now, sojourn time.Duration) bool {
	if !g.cfg.Enabled {
		return false
	}
	if sojourn >= g.target/2 {
		g.goodSince = 0
		return false
	}
	if g.goodSince == 0 {
		g.goodSince = now
		return false
	}
	if g.admitMax < NumTiers-1 && now-g.goodSince >= g.cfg.Readmit {
		g.admitMax++
		g.readmits++
		// Restart the clock: the next tier needs its own healthy period.
		g.goodSince = now
		return true
	}
	return false
}
