package overload

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Verdict is the outcome of one wall-clock admission decision.
type Verdict int8

const (
	// Admitted grants a concurrency slot; the caller must Release it.
	Admitted Verdict = iota
	// ShedTier rejects a tier the gate has clamped.
	ShedTier
	// ShedQueueFull rejects an arrival into a full admission queue.
	ShedQueueFull
	// ShedCoDel drops a queued request whose sojourn tripped the drop law.
	ShedCoDel
	// ShedCanceled abandons a queued request whose context ended first.
	ShedCanceled
	// ShedDraining rejects a queued request flushed by shutdown.
	ShedDraining
)

// String names the verdict for logs and reports.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case ShedTier:
		return "shed-tier"
	case ShedQueueFull:
		return "shed-queue-full"
	case ShedCoDel:
		return "shed-codel"
	case ShedCanceled:
		return "shed-canceled"
	case ShedDraining:
		return "shed-draining"
	}
	return "unknown"
}

// Shed reports whether the verdict rejected the request.
func (v Verdict) Shed() bool { return v != Admitted }

// waiter states: a queued waiter is granted (woken with a verdict) or
// canceled (its context ended); the loser of the race leaves the struct
// for the other side to recycle.
const (
	waiterQueued int32 = iota
	waiterGranted
	waiterCanceled
)

// waiter is one goroutine parked in the admission queue.
type waiter struct {
	state   atomic.Int32
	verdict Verdict
	ch      chan struct{}
	enq     time.Time
	tier    int
}

// WallAdmitterStats is a snapshot of the admitter's counters for /metrics,
// figures and assertions.
type WallAdmitterStats struct {
	Admitted      int64
	Shed          [NumTiers]int64
	CodelDropped  int64
	QueueOverflow int64
	LifoFlips     int64
	Readmits      int64
	// MaxSojourn is the longest queue wait of any woken (granted or
	// CoDel-dropped) request — the bounded-queue-delay assertion reads it.
	MaxSojourn time.Duration
	// TotalLimit is the current sum of per-backend limits; AdmitMax the
	// highest admitted tier.
	TotalLimit int
	AdmitMax   int
	QueueLen   int
}

// WallAdmitter is the proxy's admission gate: per-backend adaptive
// limiters summed into one concurrency budget, a CoDel admission queue
// ahead of backend pick, and the criticality tier gate. The no-queueing
// fast path (tier admitted, slot free) is one mutex hold over plain
// counters — zero allocations. Queued requests park on pooled waiters
// woken by Release in FIFO or, under a standing queue, LIFO order.
type WallAdmitter struct {
	mu     sync.Mutex
	policy Policy
	base   time.Time // wall origin for the duration-typed control laws

	limiters   []Limiter
	totalLimit int
	inflight   int
	codel      CoDel
	gate       TierGate

	queue []*waiter
	qhead int
	qlen  int
	lifo  bool

	pool sync.Pool

	stats    WallAdmitterStats
	draining bool
}

// NewWallAdmitter returns an admitter for nBackends upstream backends
// under p (which must be Enabled). base anchors the wall clock; pass the
// server's start time.
func NewWallAdmitter(p Policy, nBackends int, base time.Time) *WallAdmitter {
	p = p.withDefaults()
	if nBackends < 1 {
		nBackends = 1
	}
	a := &WallAdmitter{
		policy: p,
		base:   base,
		codel:  NewCoDel(p.Queue),
		gate:   NewTierGate(p.Tiers, p.Queue.Target),
	}
	a.limiters = make([]Limiter, nBackends)
	for i := range a.limiters {
		a.limiters[i] = NewLimiter(p.Limiter)
		a.totalLimit += a.limiters[i].Limit()
	}
	if p.Queue.Capacity > 0 {
		a.queue = make([]*waiter, p.Queue.Capacity)
	}
	a.pool.New = func() any { return &waiter{ch: make(chan struct{}, 1)} }
	return a
}

// Admit decides one request carrying a criticality tier. Admitted grants a
// slot the caller must Release; every other verdict is a rejection. When
// the limit is reached the caller parks in the admission queue until a
// slot frees, the drop law rejects it, shutdown flushes it, or ctx ends.
func (a *WallAdmitter) Admit(ctx context.Context, now time.Time, tier int) Verdict {
	if tier < 0 {
		tier = 0
	} else if tier >= NumTiers {
		tier = NumTiers - 1
	}
	a.mu.Lock()
	if a.draining {
		a.stats.Shed[tier]++
		a.mu.Unlock()
		return ShedDraining
	}
	if !a.gate.Admit(tier) {
		a.stats.Shed[tier]++
		a.mu.Unlock()
		return ShedTier
	}
	if a.inflight < a.totalLimit {
		a.inflight++
		a.stats.Admitted++
		if a.gate.Signal(now.Sub(a.base), 0) {
			a.stats.Readmits++
		}
		a.mu.Unlock()
		return Admitted
	}
	if a.qlen >= len(a.queue) {
		a.stats.QueueOverflow++
		a.stats.Shed[tier]++
		a.gate.Overloaded(now.Sub(a.base))
		a.mu.Unlock()
		return ShedQueueFull
	}
	w := a.pool.Get().(*waiter)
	w.state.Store(waiterQueued)
	w.enq = now
	w.tier = tier
	a.queue[(a.qhead+a.qlen)%len(a.queue)] = w
	a.qlen++
	if !a.policy.Queue.DisableLIFO && !a.lifo && a.qlen > len(a.queue)/2 {
		a.lifo = true
		a.stats.LifoFlips++
	}
	a.mu.Unlock()

	select {
	case <-w.ch:
		v := w.verdict
		a.pool.Put(w)
		return v
	case <-ctx.Done():
		if w.state.CompareAndSwap(waiterQueued, waiterCanceled) {
			// Still queued; the dequeuer will skip and recycle it.
			a.mu.Lock()
			a.stats.Shed[tier]++
			a.mu.Unlock()
			return ShedCanceled
		}
		// The waker won the race: consume its grant and undo it.
		<-w.ch
		v := w.verdict
		a.pool.Put(w)
		if v == Admitted {
			a.Release()
		}
		if v.Shed() {
			return v
		}
		return ShedCanceled
	}
}

// Release returns an admitted request's slot and wakes queued waiters into
// the freed capacity.
func (a *WallAdmitter) Release() {
	now := time.Now()
	a.mu.Lock()
	if a.inflight > 0 {
		a.inflight--
	}
	a.drainLocked(now)
	a.mu.Unlock()
}

// Observe feeds one upstream response into the backend's limiter and
// refreshes the aggregate limit. A false ok (transport error, 5xx,
// timeout) is the AIMD decrease signal.
func (a *WallAdmitter) Observe(backend int, rtt time.Duration, ok bool) {
	a.mu.Lock()
	if backend >= 0 && backend < len(a.limiters) {
		l := &a.limiters[backend]
		old := l.Limit()
		l.Observe(rtt, ok)
		a.totalLimit += l.Limit() - old
	}
	// A raised limit may free capacity for queued waiters.
	if a.qlen > 0 && a.inflight < a.totalLimit {
		a.drainLocked(time.Now())
	}
	a.mu.Unlock()
}

// drainLocked wakes queued waiters while capacity lasts, applying the
// CoDel verdict to each sojourn. Callers hold a.mu.
func (a *WallAdmitter) drainLocked(now time.Time) {
	rel := now.Sub(a.base)
	for a.qlen > 0 && a.inflight < a.totalLimit {
		var w *waiter
		if a.lifo {
			i := (a.qhead + a.qlen - 1) % len(a.queue)
			w = a.queue[i]
			a.queue[i] = nil
		} else {
			w = a.queue[a.qhead]
			a.queue[a.qhead] = nil
			a.qhead = (a.qhead + 1) % len(a.queue)
		}
		a.qlen--
		if a.lifo && a.qlen <= len(a.queue)/8 {
			a.lifo = false
		}
		if !w.state.CompareAndSwap(waiterQueued, waiterGranted) {
			// Canceled while queued; recycle and move on.
			a.pool.Put(w)
			continue
		}
		sojourn := now.Sub(w.enq)
		if a.gate.Signal(rel, sojourn) {
			a.stats.Readmits++
		}
		// MaxWait is the hard staleness ceiling (see the sim client): LIFO
		// backlog entries past it are discarded, not served.
		if sojourn >= a.policy.Queue.MaxWait {
			a.stats.CodelDropped++
			a.stats.Shed[w.tier]++
			a.gate.Overloaded(rel)
			w.verdict = ShedCoDel
			w.ch <- struct{}{}
			continue
		}
		if a.codel.OnDequeue(rel, sojourn) {
			// The drop law decides when to shed; criticality decides who: a
			// strictly more sheddable waiter still queued takes the drop in
			// w's place (DAGOR-style), so a critical request is never
			// discarded while sheddable backlog remains. With tiers on, the
			// drop law never discards the top tier at all — an all-critical
			// standing queue is bounded by MaxWait and qcap, trading latency
			// for availability, which is what the tier promises.
			v := a.stealWorstTierLocked(w.tier)
			if v == nil && a.policy.Tiers.Enabled && w.tier == TierCritical {
				a.gate.Overloaded(rel)
			} else if v == nil {
				a.stats.CodelDropped++
				a.stats.Shed[w.tier]++
				a.gate.Overloaded(rel)
				w.verdict = ShedCoDel
				w.ch <- struct{}{}
				continue
			} else {
				a.stats.CodelDropped++
				a.stats.Shed[v.tier]++
				a.gate.Overloaded(rel)
				v.verdict = ShedCoDel
				v.ch <- struct{}{}
				// w itself is admitted below: the law shed one request at
				// this drop instant, which is all its pacing asks for.
			}
		}
		// MaxSojourn tracks admitted waiters only: a CoDel-dropped entry
		// was discarded, not served, so its wait is not part of the delay
		// bound admitted traffic experiences.
		if sojourn > a.stats.MaxSojourn {
			a.stats.MaxSojourn = sojourn
		}
		a.inflight++
		a.stats.Admitted++
		w.verdict = Admitted
		w.ch <- struct{}{}
	}
}

// stealWorstTierLocked removes and returns the oldest queued waiter whose
// tier is strictly more sheddable than tier, or nil when none remains.
// A chosen entry that lost its wake race to cancellation recycles and the
// scan retries. Callers hold a.mu.
func (a *WallAdmitter) stealWorstTierLocked(tier int) *waiter {
	for {
		best, bestTier := -1, tier
		for i := 0; i < a.qlen; i++ {
			if w := a.queue[(a.qhead+i)%len(a.queue)]; w.tier > bestTier {
				best, bestTier = i, w.tier
			}
		}
		if best < 0 {
			return nil
		}
		w := a.removeAtLocked(best)
		if w.state.CompareAndSwap(waiterQueued, waiterGranted) {
			return w
		}
		a.pool.Put(w) // canceled while queued; recycle and rescan
	}
}

// removeAtLocked removes the waiter at offset i from qhead, compacting the
// ring toward the head so FIFO order is preserved. Callers hold a.mu.
func (a *WallAdmitter) removeAtLocked(i int) *waiter {
	w := a.queue[(a.qhead+i)%len(a.queue)]
	for ; i > 0; i-- {
		a.queue[(a.qhead+i)%len(a.queue)] = a.queue[(a.qhead+i-1)%len(a.queue)]
	}
	a.queue[a.qhead] = nil
	a.qhead = (a.qhead + 1) % len(a.queue)
	a.qlen--
	return w
}

// DrainFlush rejects every queued waiter with ShedDraining and stops
// admitting — the shutdown path, so a drain never strands goroutines in
// the admission queue.
func (a *WallAdmitter) DrainFlush() {
	a.mu.Lock()
	a.draining = true
	for a.qlen > 0 {
		w := a.queue[a.qhead]
		a.queue[a.qhead] = nil
		a.qhead = (a.qhead + 1) % len(a.queue)
		a.qlen--
		if !w.state.CompareAndSwap(waiterQueued, waiterGranted) {
			a.pool.Put(w)
			continue
		}
		a.stats.Shed[w.tier]++
		w.verdict = ShedDraining
		w.ch <- struct{}{}
	}
	a.mu.Unlock()
}

// Stats snapshots the admitter's counters.
func (a *WallAdmitter) Stats() WallAdmitterStats {
	a.mu.Lock()
	s := a.stats
	s.TotalLimit = a.totalLimit
	s.AdmitMax = a.gate.AdmitMax()
	s.QueueLen = a.qlen
	a.mu.Unlock()
	return s
}

// TotalLimit is the current aggregate concurrency limit.
func (a *WallAdmitter) TotalLimit() int {
	a.mu.Lock()
	n := a.totalLimit
	a.mu.Unlock()
	return n
}
