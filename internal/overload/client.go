package overload

import (
	"fmt"
	"time"

	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/resilience"
	"l3/internal/sim"
)

// svcState is a service's admission policy resolved once at Apply time
// (the same pattern as resilience's svcState): limiter, drop law, tier
// gate, the bounded queue and metric handles, so the per-request path
// touches no maps beyond the service lookup and no label machinery.
type svcState struct {
	name    string
	policy  Policy
	limiter Limiter
	codel   CoDel
	gate    TierGate

	// queue is a ring buffer of waiting ops: head+qlen index it, lifo
	// flips the dequeue end under a standing queue.
	queue []*op
	qhead int
	qlen  int
	lifo  bool

	maxSojourn time.Duration

	mAdmitted, mCodelDrop, mOverflow, mLifoFlips, mReadmits *metrics.Counter
	mShed                                                   [NumTiers]*metrics.Counter
	gLimit                                                  *metrics.Gauge
}

// Client composes admission control over a mesh (or over a resilience
// client, so shedding happens before a rejected request can spend retry
// budget). Like the layers it wraps, a Client is single-threaded on its
// engine; in sharded mode (NewShardClient) it is bound to one source
// cluster and all of its state lives on that cluster's shard timeline.
type Client struct {
	engine   *sim.Engine
	mesh     *mesh.Mesh
	src      string             // bound source cluster ("" = classic, any source)
	proxy    *mesh.Proxy        // bound source handle (sharded mode)
	res      *resilience.Client // optional inner layer
	services map[string]*svcState

	freeOps []*op
}

// NewClient returns an admission client issuing directly into m.
func NewClient(engine *sim.Engine, m *mesh.Mesh) *Client {
	if engine == nil || m == nil {
		panic("overload: NewClient requires engine and mesh")
	}
	return &Client{engine: engine, mesh: m, services: make(map[string]*svcState)}
}

// NewShardClient returns an admission client for requests originating in
// one cluster of a sharded mesh, running on that cluster's shard engine
// and recording into that shard's registry.
func NewShardClient(m *mesh.Mesh, src string) (*Client, error) {
	if m == nil {
		panic("overload: NewShardClient requires a mesh")
	}
	engine, err := m.EngineFor(src)
	if err != nil {
		return nil, err
	}
	proxy, err := m.Proxy(src)
	if err != nil {
		return nil, err
	}
	return &Client{engine: engine, mesh: m, src: src, proxy: proxy, services: make(map[string]*svcState)}, nil
}

// SetInner routes admitted requests through a resilience client instead of
// the bare mesh — admission composes outside retries, so shed requests
// never deposit into or spend from the retry budget. The resilience client
// must be bound to the same engine and source cluster.
func (c *Client) SetInner(res *resilience.Client) { c.res = res }

// Apply installs a policy for a service, resolving its metric handles.
// Applying a disabled policy removes the service from the layer.
func (c *Client) Apply(service string, p Policy) error {
	if _, ok := c.mesh.Service(service); !ok {
		return fmt.Errorf("overload: unknown service %q", service)
	}
	p = p.withDefaults()
	if !p.Enabled() {
		delete(c.services, service)
		return nil
	}
	reg := c.mesh.Registry()
	if c.src != "" {
		r, err := c.mesh.RegistryFor(c.src)
		if err != nil {
			return err
		}
		reg = r
	}
	labels := metrics.Labels{"service": service}
	st := &svcState{
		name:       service,
		policy:     p,
		limiter:    NewLimiter(p.Limiter),
		codel:      NewCoDel(p.Queue),
		gate:       NewTierGate(p.Tiers, p.Queue.Target),
		mAdmitted:  reg.Counter(MetricAdmittedTotal, labels),
		mCodelDrop: reg.Counter(MetricCodelDroppedTotal, labels),
		mOverflow:  reg.Counter(MetricQueueOverflowTotal, labels),
		mLifoFlips: reg.Counter(MetricLifoFlipsTotal, labels),
		mReadmits:  reg.Counter(MetricReadmitsTotal, labels),
		gLimit:     reg.Gauge(MetricConcurrencyLimit, labels),
	}
	if p.Queue.Capacity > 0 {
		st.queue = make([]*op, p.Queue.Capacity)
	}
	for tier := 0; tier < NumTiers; tier++ {
		st.mShed[tier] = reg.Counter(MetricShedTotal, labels.With("tier", TierName(tier)))
	}
	st.gLimit.Set(float64(st.limiter.Limit()))
	c.services[service] = st
	return nil
}

// State exposes a service's admission internals for figures and tests
// (limit, highest admitted tier, max queue sojourn); ok is false when the
// service has no policy.
func (c *Client) State(service string) (limit, admitMax int, maxSojourn time.Duration, ok bool) {
	st, found := c.services[service]
	if !found {
		return 0, 0, 0, false
	}
	return st.limiter.Limit(), st.gate.AdmitMax(), st.maxSojourn, true
}

// op is the pooled state of one request crossing the admission layer: the
// tier, the timestamps the limiter and drop law need, and the completion
// callbacks bound once per struct.
type op struct {
	c        *Client
	svc      *svcState // nil on the pass-through path
	service  string
	src      string
	tier     int
	admitted bool
	queuedAt time.Duration
	issuedAt time.Duration
	done     func(mesh.Result)

	fire    func(mesh.Result)
	fireRes func(resilience.Result)
}

func (c *Client) getOp() *op {
	var o *op
	if n := len(c.freeOps); n > 0 {
		o = c.freeOps[n-1]
		c.freeOps[n-1] = nil
		c.freeOps = c.freeOps[:n-1]
	} else {
		o = &op{c: c}
		o.fire = func(r mesh.Result) { o.onResult(r) }
		o.fireRes = func(r resilience.Result) { o.onResult(r.Result) }
	}
	o.admitted = false
	o.queuedAt, o.issuedAt = 0, 0
	return o
}

func (c *Client) putOp(o *op) {
	o.svc, o.done = nil, nil
	c.freeOps = append(c.freeOps, o)
}

// Call issues one request at TierDefault.
func (c *Client) Call(src, service string, done func(mesh.Result)) error {
	return c.CallTier(src, service, TierDefault, done)
}

// CallTier issues one request carrying a criticality tier. done fires
// exactly once; a shed request fails synchronously with zero latency (the
// rejection is the point — no work was queued anywhere).
func (c *Client) CallTier(src, service string, tier int, done func(mesh.Result)) error {
	if done == nil {
		panic("overload: Call requires a done callback")
	}
	if c.src != "" && src != c.src {
		return fmt.Errorf("overload: shard client bound to %q cannot call from %q", c.src, src)
	}
	if tier < 0 {
		tier = 0
	} else if tier >= NumTiers {
		tier = NumTiers - 1
	}
	svc := c.services[service]
	if svc == nil {
		o := c.getOp()
		o.svc, o.service, o.src, o.tier = nil, service, src, tier
		o.done = done
		return c.issue(o)
	}
	now := c.engine.Now()
	if !svc.gate.Admit(tier) {
		svc.mShed[tier].Inc()
		done(mesh.Result{Success: false})
		return nil
	}
	o := c.getOp()
	o.svc, o.service, o.src, o.tier = svc, service, src, tier
	o.done = done
	if svc.limiter.TryAcquire() {
		o.admitted = true
		o.issuedAt = now
		svc.mAdmitted.Inc()
		if svc.gate.Signal(now, 0) {
			svc.mReadmits.Inc()
		}
		if err := c.issue(o); err != nil {
			svc.limiter.Release()
			c.putOp(o)
			return err
		}
		return nil
	}
	if svc.qlen >= len(svc.queue) {
		// Full (or zero-capacity) queue: shed on arrival.
		svc.mOverflow.Inc()
		svc.mShed[tier].Inc()
		svc.gate.Overloaded(now)
		done := o.done
		c.putOp(o)
		done(mesh.Result{Success: false})
		return nil
	}
	o.queuedAt = now
	svc.queue[(svc.qhead+svc.qlen)%len(svc.queue)] = o
	svc.qlen++
	if !svc.policy.Queue.DisableLIFO {
		if !svc.lifo && svc.qlen > len(svc.queue)/2 {
			svc.lifo = true
			svc.mLifoFlips.Inc()
		}
	}
	return nil
}

// issue launches an admitted request through the inner layer.
func (c *Client) issue(o *op) error {
	if c.res != nil {
		return c.res.Call(o.src, o.service, o.fireRes)
	}
	if c.proxy != nil {
		return c.proxy.Call(o.service, o.fire)
	}
	return c.mesh.Call(o.src, o.service, o.fire)
}

// onResult is the completion path: release and adapt the limiter, drain
// the queue into the freed capacity, then settle the caller. The op
// recycles before the callback, which may issue nested calls.
func (o *op) onResult(r mesh.Result) {
	c, svc := o.c, o.svc
	if svc != nil && o.admitted {
		now := c.engine.Now()
		svc.limiter.Release()
		svc.limiter.Observe(now-o.issuedAt, r.Success)
		svc.gLimit.Set(float64(svc.limiter.Limit()))
		c.drain(svc, now)
	}
	done := o.done
	c.putOp(o)
	done(r)
}

// stealWorstTier removes and returns the oldest queued op whose tier is
// strictly more sheddable than tier, or nil when none remains. The ring
// compacts toward the head so FIFO order is preserved.
func (s *svcState) stealWorstTier(tier int) *op {
	best, bestTier := -1, tier
	for i := 0; i < s.qlen; i++ {
		if o := s.queue[(s.qhead+i)%len(s.queue)]; o.tier > bestTier {
			best, bestTier = i, o.tier
		}
	}
	if best < 0 {
		return nil
	}
	o := s.queue[(s.qhead+best)%len(s.queue)]
	for ; best > 0; best-- {
		s.queue[(s.qhead+best)%len(s.queue)] = s.queue[(s.qhead+best-1)%len(s.queue)]
	}
	s.queue[s.qhead] = nil
	s.qhead = (s.qhead + 1) % len(s.queue)
	s.qlen--
	return o
}

// drain admits queued requests into freed limiter slots, applying the
// CoDel verdict to each dequeued sojourn. Under a standing queue the
// dequeue end flips to LIFO so fresh requests ride over the backlog.
func (c *Client) drain(svc *svcState, now time.Duration) {
	for svc.qlen > 0 && svc.limiter.TryAcquire() {
		var q *op
		if svc.lifo {
			q = svc.queue[(svc.qhead+svc.qlen-1)%len(svc.queue)]
			svc.queue[(svc.qhead+svc.qlen-1)%len(svc.queue)] = nil
		} else {
			q = svc.queue[svc.qhead]
			svc.queue[svc.qhead] = nil
			svc.qhead = (svc.qhead + 1) % len(svc.queue)
		}
		svc.qlen--
		if svc.lifo && svc.qlen <= len(svc.queue)/8 {
			svc.lifo = false
		}
		sojourn := now - q.queuedAt
		if svc.gate.Signal(now, sojourn) {
			svc.mReadmits.Inc()
		}
		// MaxWait is the hard staleness ceiling: under adaptive LIFO the
		// backlog end can outwait any drop schedule, and issuing a request
		// that old serves nobody.
		if sojourn >= svc.policy.Queue.MaxWait {
			svc.limiter.Release()
			svc.mCodelDrop.Inc()
			svc.mShed[q.tier].Inc()
			svc.gate.Overloaded(now)
			done := q.done
			c.putOp(q)
			done(mesh.Result{Success: false})
			continue
		}
		if svc.codel.OnDequeue(now, sojourn) {
			// The drop law decides when to shed; criticality decides who: a
			// strictly more sheddable op still queued takes the drop in q's
			// place (DAGOR-style), so a critical request is never discarded
			// while sheddable backlog remains. With tiers on, the drop law
			// never discards the top tier at all — an all-critical standing
			// queue is bounded by MaxWait and qcap, trading latency for
			// availability, which is what the tier promises.
			v := svc.stealWorstTier(q.tier)
			if v == nil && svc.policy.Tiers.Enabled && q.tier == TierCritical {
				svc.gate.Overloaded(now)
			} else if v == nil {
				svc.limiter.Release()
				svc.mCodelDrop.Inc()
				svc.mShed[q.tier].Inc()
				svc.gate.Overloaded(now)
				done := q.done
				c.putOp(q)
				done(mesh.Result{Success: false})
				continue
			} else {
				svc.mCodelDrop.Inc()
				svc.mShed[v.tier].Inc()
				svc.gate.Overloaded(now)
				done := v.done
				c.putOp(v)
				done(mesh.Result{Success: false})
				// q itself is admitted below: the law shed one request at
				// this drop instant, which is all its pacing asks for.
			}
		}
		// maxSojourn tracks admitted requests only: a CoDel-dropped entry
		// (stale LIFO backlog) was discarded, not served, so its wait is
		// not part of the delay bound admitted traffic experiences.
		if sojourn > svc.maxSojourn {
			svc.maxSojourn = sojourn
		}
		svc.mAdmitted.Inc()
		q.admitted = true
		q.issuedAt = now
		if err := c.issue(q); err != nil {
			svc.limiter.Release()
			done := q.done
			c.putOp(q)
			done(mesh.Result{Success: false})
		}
	}
}
