package overload

import (
	"context"
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	cases := []string{
		"off",
		"limit=16",
		"limit=16,min=2,max=64,target=5ms,interval=100ms,qcap=128",
		"limit=8,target=10ms,qcap=64,lifo=off,tiers=on,readmit=2s",
	}
	for _, s := range cases {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", s, err)
		}
		q, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if q.String() != p.String() {
			t.Fatalf("round trip %q -> %q -> %q", s, p.String(), q.String())
		}
	}
	for _, s := range []string{"limit", "limit=x", "bogus=1", "lifo=maybe"} {
		if _, err := ParsePolicy(s); err == nil {
			t.Fatalf("ParsePolicy(%q) accepted", s)
		}
	}
}

func TestLimiterGrowsAndShrinks(t *testing.T) {
	cfg := Policy{Limiter: LimiterConfig{Initial: 10}}.withDefaults().Limiter
	l := NewLimiter(cfg)
	// Flat RTT at the baseline: estimated queue 0, limit grows every window.
	for i := 0; i < 5*cfg.Window; i++ {
		l.Observe(10*time.Millisecond, true)
	}
	if l.Limit() <= 10 {
		t.Fatalf("limit = %d after flat RTT, want growth", l.Limit())
	}
	grown := l.Limit()
	// Failures: multiplicative decrease, at most once per window.
	for i := 0; i < 2*cfg.Window; i++ {
		l.Observe(10*time.Millisecond, false)
	}
	if l.Limit() >= grown {
		t.Fatalf("limit = %d after failures, want decrease from %d", l.Limit(), grown)
	}
	// RTT far above baseline: Vegas shrink.
	l2 := NewLimiter(cfg)
	for i := 0; i < cfg.Window; i++ {
		l2.Observe(10*time.Millisecond, true)
	}
	start := l2.Limit()
	for i := 0; i < 10*cfg.Window; i++ {
		l2.Observe(100*time.Millisecond, true)
	}
	if l2.Limit() >= start {
		t.Fatalf("limit = %d under queueing RTT, want below %d", l2.Limit(), start)
	}
	if l2.Limit() < cfg.Min {
		t.Fatalf("limit = %d under floor %d", l2.Limit(), cfg.Min)
	}
}

func TestCoDelDropsStandingQueue(t *testing.T) {
	cfg := Policy{Limiter: LimiterConfig{Initial: 1}, Queue: QueueConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond, Capacity: 16}}.withDefaults().Queue
	c := NewCoDel(cfg)
	now := time.Second
	// Below target: never drops.
	for i := 0; i < 100; i++ {
		if c.OnDequeue(now, time.Millisecond) {
			t.Fatal("dropped below target")
		}
		now += 10 * time.Millisecond
	}
	// Above target: no drop until a full interval has passed.
	drops := 0
	first := -1
	for i := 0; i < 100; i++ {
		if c.OnDequeue(now, 20*time.Millisecond) {
			drops++
			if first < 0 {
				first = i
			}
		}
		now += 10 * time.Millisecond
	}
	if drops == 0 {
		t.Fatal("no drops under standing queue")
	}
	if first < 10 {
		t.Fatalf("first drop at dequeue %d, want after a full interval", first)
	}
	if !c.Dropping() {
		t.Fatal("not in dropping state")
	}
	// Sojourn back under target exits dropping immediately.
	if c.OnDequeue(now, time.Millisecond) {
		t.Fatal("dropped after recovery")
	}
	if c.Dropping() {
		t.Fatal("still dropping after recovery")
	}
}

// TestTierGateHysteresisSquareWave drives the gate with a square wave of
// overload and recovery and asserts tiers clamp under load, re-admit only
// after the full healthy period, and do not flap within one phase.
func TestTierGateHysteresisSquareWave(t *testing.T) {
	p := Policy{
		Limiter: LimiterConfig{Initial: 8},
		Queue:   QueueConfig{Target: 10 * time.Millisecond, Interval: 50 * time.Millisecond, Capacity: 64},
		Tiers:   TierConfig{Enabled: true, Readmit: 500 * time.Millisecond},
	}.withDefaults()
	g := NewTierGate(p.Tiers, p.Queue.Target)

	transitions := 0
	last := g.AdmitMax()
	record := func() {
		if g.AdmitMax() != last {
			transitions++
			last = g.AdmitMax()
		}
	}

	now := time.Duration(0)
	for cycle := 0; cycle < 3; cycle++ {
		// Overload phase: 1s of standing-queue signals every 10ms.
		for i := 0; i < 100; i++ {
			now += 10 * time.Millisecond
			g.Signal(now, 30*time.Millisecond)
			g.Overloaded(now)
			record()
		}
		if g.AdmitMax() != 0 {
			t.Fatalf("cycle %d: admitMax = %d under sustained overload, want 0", cycle, g.AdmitMax())
		}
		// Recovery phase: 2s of healthy signals every 10ms.
		for i := 0; i < 200; i++ {
			now += 10 * time.Millisecond
			g.Signal(now, time.Millisecond)
			record()
		}
		if g.AdmitMax() != NumTiers-1 {
			t.Fatalf("cycle %d: admitMax = %d after sustained health, want %d", cycle, g.AdmitMax(), NumTiers-1)
		}
	}
	// Each cycle: 2 clamps down + 2 re-admits, no extra flapping.
	if want := 3 * 4; transitions != want {
		t.Fatalf("admitMax transitions = %d, want %d (no flapping)", transitions, want)
	}
	if g.Readmits() != 6 {
		t.Fatalf("readmits = %d, want 6", g.Readmits())
	}
	// A short healthy blip must NOT re-admit (hysteresis).
	g2 := NewTierGate(p.Tiers, p.Queue.Target)
	g2.Overloaded(time.Second)
	for i := 0; i < 10; i++ {
		g2.Signal(time.Second+time.Duration(i)*10*time.Millisecond, time.Millisecond)
	}
	if g2.AdmitMax() != NumTiers-2 {
		t.Fatalf("admitMax = %d after 100ms blip, want still clamped", g2.AdmitMax())
	}
}

// scriptServer serves with whatever latency/outcome its fields hold at
// Serve time.
type scriptServer struct {
	engine  *sim.Engine
	latency time.Duration
	ok      bool
	served  int
}

func (s *scriptServer) Serve(done func(backend.Result)) {
	s.served++
	lat, ok := s.latency, s.ok
	s.engine.ScheduleAfter(lat, func() { done(backend.Result{Latency: lat, Success: ok}) })
}

type testRig struct {
	engine *sim.Engine
	mesh   *mesh.Mesh
	client *Client
	reg    *metrics.Registry
	srv    *scriptServer
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	e := sim.NewEngine()
	reg := metrics.NewRegistry()
	m := mesh.New(e, sim.NewRand(1), wan.New(wan.DefaultConfig()), reg)
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	srv := &scriptServer{engine: e, latency: 10 * time.Millisecond, ok: true}
	if _, err := m.AddServerBackend("api", "b1", "cluster-1", srv); err != nil {
		t.Fatal(err)
	}
	return &testRig{engine: e, mesh: m, client: NewClient(e, m), reg: reg, srv: srv}
}

func TestClientShedsOverLimitAndDrains(t *testing.T) {
	rig := newRig(t)
	pol, err := ParsePolicy("limit=2,max=2,target=50ms,interval=100ms,qcap=4")
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.client.Apply("api", pol); err != nil {
		t.Fatal(err)
	}
	okN, failN := 0, 0
	done := func(r mesh.Result) {
		if r.Success {
			okN++
		} else {
			failN++
		}
	}
	// 10 simultaneous calls into limit 2 + queue 4: 4 shed on arrival.
	for i := 0; i < 10; i++ {
		if err := rig.client.Call("cluster-1", "api", done); err != nil {
			t.Fatal(err)
		}
	}
	if failN != 4 {
		t.Fatalf("immediate sheds = %d, want 4 (queue overflow)", failN)
	}
	rig.engine.Run()
	if okN != 6 {
		t.Fatalf("successes = %d, want 6 (2 in flight + 4 queued drain)", okN)
	}
	labels := metrics.Labels{"service": "api"}
	if v := rig.reg.Counter(MetricQueueOverflowTotal, labels).Value(); v != 4 {
		t.Fatalf("overflow counter = %v, want 4", v)
	}
	if v := rig.reg.Counter(MetricAdmittedTotal, labels).Value(); v != 6 {
		t.Fatalf("admitted counter = %v, want 6", v)
	}
}

func TestClientTierShedding(t *testing.T) {
	rig := newRig(t)
	pol, err := ParsePolicy("limit=1,max=1,target=1ms,interval=20ms,qcap=2,tiers=on,readmit=200ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.client.Apply("api", pol); err != nil {
		t.Fatal(err)
	}
	shed := [NumTiers]int{}
	issue := func(tier int) {
		_ = rig.client.CallTier("cluster-1", "api", tier, func(r mesh.Result) {
			if !r.Success {
				shed[tier]++
			}
		})
	}
	// Offered load far above capacity, all three tiers interleaved.
	for i := 0; i < 300; i++ {
		tier := i % NumTiers
		at := time.Duration(i) * 2 * time.Millisecond
		rig.engine.Schedule(at, func() { issue(tier) })
	}
	rig.engine.Run()
	if shed[TierSheddable] <= shed[TierCritical] {
		t.Fatalf("shed ordering violated: critical=%d default=%d sheddable=%d",
			shed[TierCritical], shed[TierDefault], shed[TierSheddable])
	}
	// One request of slack: a CoDel drop lands on a default-tier request
	// when no more-sheddable entry is queued to steal — once the gate has
	// clamped, sheddable traffic is shed at the door and never queues.
	if shed[TierSheddable] < shed[TierDefault]-1 {
		t.Fatalf("sheddable (%d) shed less than default (%d)", shed[TierSheddable], shed[TierDefault])
	}
}

func TestClientPassThroughWithoutPolicy(t *testing.T) {
	rig := newRig(t)
	got := 0
	if err := rig.client.Call("cluster-1", "api", func(r mesh.Result) {
		if r.Success {
			got++
		}
	}); err != nil {
		t.Fatal(err)
	}
	rig.engine.Run()
	if got != 1 {
		t.Fatalf("pass-through successes = %d, want 1", got)
	}
}

func TestWallAdmitterFastPathAndQueue(t *testing.T) {
	p, err := ParsePolicy("limit=1,max=1,target=5ms,interval=50ms,qcap=8,tiers=on")
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	a := NewWallAdmitter(p, 1, base)
	if v := a.Admit(context.Background(), time.Now(), TierDefault); v != Admitted {
		t.Fatalf("first admit = %v", v)
	}
	// Second request queues; release from another goroutine admits it.
	got := make(chan Verdict, 1)
	go func() { got <- a.Admit(context.Background(), time.Now(), TierDefault) }()
	time.Sleep(10 * time.Millisecond)
	a.Release()
	select {
	case v := <-got:
		if v != Admitted {
			t.Fatalf("queued admit = %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("queued waiter never woke")
	}
	a.Release()
	st := a.Stats()
	if st.Admitted != 2 || st.MaxSojourn <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWallAdmitterDrainFlush(t *testing.T) {
	p, err := ParsePolicy("limit=1,max=1,target=5ms,interval=50ms,qcap=8")
	if err != nil {
		t.Fatal(err)
	}
	a := NewWallAdmitter(p, 1, time.Now())
	if v := a.Admit(context.Background(), time.Now(), TierDefault); v != Admitted {
		t.Fatalf("first admit = %v", v)
	}
	got := make(chan Verdict, 3)
	for i := 0; i < 3; i++ {
		go func() { got <- a.Admit(context.Background(), time.Now(), TierDefault) }()
	}
	for a.Stats().QueueLen < 3 {
		time.Sleep(time.Millisecond)
	}
	a.DrainFlush()
	for i := 0; i < 3; i++ {
		select {
		case v := <-got:
			if v != ShedDraining {
				t.Fatalf("flushed verdict = %v", v)
			}
		case <-time.After(time.Second):
			t.Fatal("waiter stranded by drain")
		}
	}
	// Post-drain arrivals are rejected, not queued.
	if v := a.Admit(context.Background(), time.Now(), TierCritical); v != ShedDraining {
		t.Fatalf("post-drain admit = %v", v)
	}
}

func TestWallAdmitterContextCancel(t *testing.T) {
	p, err := ParsePolicy("limit=1,max=1,target=5ms,interval=50ms,qcap=8")
	if err != nil {
		t.Fatal(err)
	}
	a := NewWallAdmitter(p, 1, time.Now())
	if v := a.Admit(context.Background(), time.Now(), TierDefault); v != Admitted {
		t.Fatalf("first admit = %v", v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan Verdict, 1)
	go func() { got <- a.Admit(ctx, time.Now(), TierDefault) }()
	for a.Stats().QueueLen < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case v := <-got:
		if v != ShedCanceled {
			t.Fatalf("canceled verdict = %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter never returned")
	}
	// The canceled waiter must not absorb the next freed slot.
	a.Release()
	if v := a.Admit(context.Background(), time.Now(), TierDefault); v != Admitted {
		t.Fatalf("post-cancel admit = %v", v)
	}
}

func TestWallAdmitterFastPathAllocs(t *testing.T) {
	p, err := ParsePolicy("limit=64,target=5ms,qcap=8,tiers=on")
	if err != nil {
		t.Fatal(err)
	}
	a := NewWallAdmitter(p, 3, time.Now())
	now := time.Now()
	allocs := testing.AllocsPerRun(10000, func() {
		if v := a.Admit(context.Background(), now, TierDefault); v != Admitted {
			t.Fatalf("admit = %v", v)
		}
		a.Observe(0, 3*time.Millisecond, true)
		a.Release()
	})
	if allocs != 0 {
		t.Fatalf("admit fast path allocs = %v, want 0", allocs)
	}
}
