// Package loadgen is a constant-throughput, open-loop HTTP-benchmark
// client in the spirit of wrk2 (the paper's load generator): arrivals are
// scheduled by the offered rate alone, never gated on responses, which
// avoids coordinated omission and keeps the offered RPS faithful to the
// scenario even when backends slow down. Latency of every request is
// recorded into mergeable histograms plus per-interval buckets, so both the
// end-of-run percentiles (Figures 8-12) and the percentile-over-time series
// (Figures 1 and 6) fall out of one recorder.
package loadgen

import (
	"fmt"
	"time"

	"l3/internal/clock"
	"l3/internal/histogram"
	"l3/internal/sim"
)

// IssueFunc sends one request; done must be called exactly once with the
// observed latency and outcome.
type IssueFunc func(done func(latency time.Duration, success bool)) error

// RateFunc returns the offered load (requests/second) at virtual time t.
type RateFunc func(t time.Duration) float64

// ConstantRate offers a fixed RPS.
func ConstantRate(rps float64) RateFunc {
	return func(time.Duration) float64 { return rps }
}

// Config parameterises a Generator.
type Config struct {
	// Rate is the offered load over time. Required.
	Rate RateFunc
	// WarmUp discards samples recorded before this virtual time, matching
	// the paper's warm-up period that populates caches and EWMAs before
	// measurement starts.
	WarmUp time.Duration
	// BucketWidth is the recorder's time-series granularity (default 1 s,
	// the granularity the paper's coordinator retrieves).
	BucketWidth time.Duration
	// CatchUp schedules arrivals from an absolute cursor instead of
	// relative gaps: if the clock delivers a callback late (wall-clock
	// scheduling jitter, a long callback ahead in the queue), the next
	// arrivals fire back-to-back until the cursor catches the ideal
	// schedule — wrk2's constant-throughput correction, and the reason an
	// open-loop wall-clock run keeps its offered RPS honest. Virtual-time
	// runs never fire late, so the default (false) keeps the simulated
	// arrival sequence — and every golden derived from it — unchanged.
	CatchUp bool
}

// Generator schedules open-loop arrivals on a Clock — the simulator's
// virtual clock in benchmarks, a wall clock under cmd/l3load.
type Generator struct {
	clk      clock.Clock
	issue    IssueFunc
	cfg      Config
	recorder *Recorder
	timer    clock.Timer
	next     time.Duration // absolute cursor for CatchUp scheduling
	stopped  bool
	issued   uint64
	errors   uint64
}

// New returns a generator on the simulation engine's virtual clock; call
// Start to begin offering load.
func New(engine *sim.Engine, cfg Config, issue IssueFunc) *Generator {
	return NewClock(clock.Sim(engine), cfg, issue)
}

// NewClock returns a generator driven by an arbitrary clock. Completions
// are recorded on whatever goroutine calls done; on a wall clock the caller
// must serialize those (clock.Wall.Do, or a mutex around the Recorder) —
// the Recorder itself is single-threaded, like every sim-era component.
func NewClock(clk clock.Clock, cfg Config, issue IssueFunc) *Generator {
	if clk == nil {
		panic("loadgen: nil clock")
	}
	if issue == nil {
		panic("loadgen: nil issue function")
	}
	if cfg.Rate == nil {
		panic("loadgen: nil rate function")
	}
	if cfg.BucketWidth <= 0 {
		cfg.BucketWidth = time.Second
	}
	return &Generator{
		clk:      clk,
		issue:    issue,
		cfg:      cfg,
		recorder: NewRecorder(cfg.BucketWidth),
	}
}

// Recorder returns the generator's latency recorder.
func (g *Generator) Recorder() *Recorder { return g.recorder }

// Issued returns the number of requests sent so far.
func (g *Generator) Issued() uint64 { return g.issued }

// IssueErrors returns the number of requests the IssueFunc rejected
// synchronously (misconfiguration, unknown service).
func (g *Generator) IssueErrors() uint64 { return g.errors }

// Start schedules the first arrival. The generator keeps offering load
// until Stop.
func (g *Generator) Start() {
	g.next = g.clk.Now()
	g.scheduleNext()
}

// Stop halts the arrival process; in-flight requests still complete and
// record.
func (g *Generator) Stop() {
	g.stopped = true
	if g.timer != nil {
		g.timer.Cancel()
	}
}

func (g *Generator) scheduleNext() {
	if g.stopped {
		return
	}
	now := g.clk.Now()
	rate := g.cfg.Rate(now)
	if rate <= 0 {
		// No load right now; poll again shortly for the rate to return.
		g.next = now + 100*time.Millisecond
		g.timer = g.clk.After(100*time.Millisecond, g.scheduleNext)
		return
	}
	gap := time.Duration(float64(time.Second) / rate)
	if gap <= 0 {
		gap = time.Nanosecond
	}
	delay := gap
	if g.cfg.CatchUp {
		// Advance the ideal cursor by one gap and sleep only the remaining
		// distance to it; a late wake-up shrinks (or zeroes) the next sleep
		// instead of shifting the whole schedule.
		g.next += gap
		delay = g.next - now
		if delay < 0 {
			delay = 0
		}
	}
	g.timer = g.clk.After(delay, func() {
		g.fire()
		g.scheduleNext()
	})
}

func (g *Generator) fire() {
	start := g.clk.Now()
	g.issued++
	err := g.issue(func(latency time.Duration, success bool) {
		if start >= g.cfg.WarmUp {
			g.recorder.Record(start, latency, success)
		}
	})
	if err != nil {
		g.errors++
	}
}

// Recorder accumulates request outcomes: one overall histogram, a
// successes-only histogram, success/failure counts, and per-bucket
// histograms for percentile-over-time series.
type Recorder struct {
	bucketWidth time.Duration
	overall     *histogram.Histogram
	successOnly *histogram.Histogram
	buckets     []*histogram.Histogram
	bucketOK    []uint64
	bucketAll   []uint64
	successes   uint64
	failures    uint64
}

// NewRecorder returns a recorder with the given time-bucket width.
func NewRecorder(bucketWidth time.Duration) *Recorder {
	if bucketWidth <= 0 {
		bucketWidth = time.Second
	}
	return &Recorder{
		bucketWidth: bucketWidth,
		overall:     histogram.New(),
		successOnly: histogram.New(),
	}
}

// Record adds one outcome observed for a request that started at virtual
// time at.
func (r *Recorder) Record(at, latency time.Duration, success bool) {
	r.overall.Record(latency)
	if success {
		r.successes++
		r.successOnly.Record(latency)
	} else {
		r.failures++
	}
	i := int(at / r.bucketWidth)
	for len(r.buckets) <= i {
		r.buckets = append(r.buckets, histogram.New())
		r.bucketOK = append(r.bucketOK, 0)
		r.bucketAll = append(r.bucketAll, 0)
	}
	r.buckets[i].Record(latency)
	r.bucketAll[i]++
	if success {
		r.bucketOK[i]++
	}
}

// Count returns the number of recorded requests.
func (r *Recorder) Count() uint64 { return r.successes + r.failures }

// SuccessRate returns successes/total, or 1 when nothing was recorded.
func (r *Recorder) SuccessRate() float64 {
	total := r.Count()
	if total == 0 {
		return 1
	}
	return float64(r.successes) / float64(total)
}

// Quantile returns the latency quantile over all recorded requests.
func (r *Recorder) Quantile(q float64) time.Duration { return r.overall.Quantile(q) }

// SuccessQuantile returns the latency quantile over successful requests.
func (r *Recorder) SuccessQuantile(q float64) time.Duration { return r.successOnly.Quantile(q) }

// Mean returns the mean latency over all recorded requests.
func (r *Recorder) Mean() time.Duration { return r.overall.Mean() }

// Buckets returns the number of time buckets with data capacity.
func (r *Recorder) Buckets() int { return len(r.buckets) }

// BucketWidth returns the configured bucket granularity.
func (r *Recorder) BucketWidth() time.Duration { return r.bucketWidth }

// WindowQuantile returns the latency quantile over requests that started
// in [from, to) — e.g. the P99 of just a surge window.
func (r *Recorder) WindowQuantile(q float64, from, to time.Duration) time.Duration {
	merged := histogram.New()
	lo := int(from / r.bucketWidth)
	if lo < 0 {
		lo = 0
	}
	hi := int(to / r.bucketWidth)
	for i := lo; i < hi && i < len(r.buckets); i++ {
		merged.Merge(r.buckets[i])
	}
	return merged.Quantile(q)
}

// QuantileSeries returns the per-bucket latency quantile in seconds
// (0 for empty buckets) — the series behind the paper's
// percentile-over-time plots.
func (r *Recorder) QuantileSeries(q float64) []float64 {
	out := make([]float64, len(r.buckets))
	for i, h := range r.buckets {
		out[i] = h.Quantile(q).Seconds()
	}
	return out
}

// RPSSeries returns the per-bucket request rate.
func (r *Recorder) RPSSeries() []float64 {
	out := make([]float64, len(r.buckets))
	w := r.bucketWidth.Seconds()
	for i, n := range r.bucketAll {
		out[i] = float64(n) / w
	}
	return out
}

// SuccessRateSeries returns the per-bucket success rate (1 for empty
// buckets).
func (r *Recorder) SuccessRateSeries() []float64 {
	out := make([]float64, len(r.buckets))
	for i := range r.buckets {
		if r.bucketAll[i] == 0 {
			out[i] = 1
			continue
		}
		out[i] = float64(r.bucketOK[i]) / float64(r.bucketAll[i])
	}
	return out
}

// Merge folds another recorder's overall statistics into this one
// (per-bucket series are merged when bucket widths match; mismatched
// widths merge only the aggregate histograms).
func (r *Recorder) Merge(o *Recorder) {
	if o == nil {
		return
	}
	r.overall.Merge(o.overall)
	r.successOnly.Merge(o.successOnly)
	r.successes += o.successes
	r.failures += o.failures
	if o.bucketWidth != r.bucketWidth {
		return
	}
	for i, h := range o.buckets {
		for len(r.buckets) <= i {
			r.buckets = append(r.buckets, histogram.New())
			r.bucketOK = append(r.bucketOK, 0)
			r.bucketAll = append(r.bucketAll, 0)
		}
		r.buckets[i].Merge(h)
		r.bucketOK[i] += o.bucketOK[i]
		r.bucketAll[i] += o.bucketAll[i]
	}
}

// String summarises the recorder.
func (r *Recorder) String() string {
	return fmt.Sprintf("recorder{n=%d p50=%v p99=%v success=%.2f%%}",
		r.Count(), r.Quantile(0.5), r.Quantile(0.99), r.SuccessRate()*100)
}
