package loadgen

import (
	"math"
	"testing"
	"time"

	"l3/internal/sim"
	"l3/internal/trace"
)

// instantIssue responds synchronously with a fixed latency.
func instantIssue(latency time.Duration, success bool) IssueFunc {
	return func(done func(time.Duration, bool)) error {
		done(latency, success)
		return nil
	}
}

func TestConstantRateOffersExpectedThroughput(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, Config{Rate: ConstantRate(100)}, instantIssue(5*time.Millisecond, true))
	g.Start()
	e.RunUntil(10 * time.Second)
	g.Stop()
	// 100 RPS for 10s => ~1000 requests.
	if n := g.Issued(); n < 990 || n > 1010 {
		t.Fatalf("issued = %d, want ~1000", n)
	}
}

func TestOpenLoopNotGatedOnResponses(t *testing.T) {
	// Responses that never arrive must not slow the arrival process.
	e := sim.NewEngine()
	g := New(e, Config{Rate: ConstantRate(50)}, func(func(time.Duration, bool)) error {
		return nil // black hole: done never called
	})
	g.Start()
	e.RunUntil(4 * time.Second)
	g.Stop()
	if n := g.Issued(); n < 195 || n > 205 {
		t.Fatalf("issued = %d, want ~200 despite zero responses", n)
	}
}

func TestRateFollowsSeries(t *testing.T) {
	e := sim.NewEngine()
	s := trace.Series{Step: time.Second, Values: []float64{
		100, 100, 100, 100, 100, 200, 200, 200, 200, 200, 200,
	}}
	g := New(e, Config{Rate: s.At}, instantIssue(time.Millisecond, true))
	g.Start()
	e.RunUntil(10 * time.Second)
	g.Stop()
	// ~5s at 100 + ~5s at ~200 (with a 1s interpolation ramp) => ~1550.
	if n := g.Issued(); n < 1350 || n > 1700 {
		t.Fatalf("issued = %d, want ~1500", n)
	}
}

func TestZeroRatePausesAndResumes(t *testing.T) {
	e := sim.NewEngine()
	rate := func(now time.Duration) float64 {
		if now < 2*time.Second {
			return 0
		}
		return 100
	}
	g := New(e, Config{Rate: rate}, instantIssue(time.Millisecond, true))
	g.Start()
	e.RunUntil(3 * time.Second)
	g.Stop()
	n := g.Issued()
	if n < 80 || n > 110 {
		t.Fatalf("issued = %d, want ~100 (only the final second offers load)", n)
	}
}

func TestWarmUpDiscardsSamples(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, Config{Rate: ConstantRate(100), WarmUp: 5 * time.Second},
		instantIssue(time.Millisecond, true))
	g.Start()
	e.RunUntil(10 * time.Second)
	g.Stop()
	rec := g.Recorder()
	if rec.Count() > 510 || rec.Count() < 490 {
		t.Fatalf("recorded = %d, want ~500 (half the run discarded)", rec.Count())
	}
}

func TestIssueErrorsCounted(t *testing.T) {
	e := sim.NewEngine()
	g := New(e, Config{Rate: ConstantRate(10)}, func(func(time.Duration, bool)) error {
		return errTest
	})
	g.Start()
	e.RunUntil(time.Second)
	g.Stop()
	if g.IssueErrors() != g.Issued() || g.Issued() == 0 {
		t.Fatalf("errors = %d, issued = %d", g.IssueErrors(), g.Issued())
	}
}

var errTest = errString("test error")

type errString string

func (e errString) Error() string { return string(e) }

func TestRecorderQuantilesAndRates(t *testing.T) {
	r := NewRecorder(time.Second)
	for i := 0; i < 99; i++ {
		r.Record(time.Duration(i)*10*time.Millisecond, 10*time.Millisecond, true)
	}
	r.Record(990*time.Millisecond, time.Second, false)
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	if sr := r.SuccessRate(); sr != 0.99 {
		t.Fatalf("SuccessRate = %v", sr)
	}
	if q := r.Quantile(0.5); q > 12*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := r.Quantile(0.999); q < 900*time.Millisecond {
		t.Fatalf("p99.9 = %v, the failure's 1s latency should surface", q)
	}
	if q := r.SuccessQuantile(0.999); q > 12*time.Millisecond {
		t.Fatalf("success-only p99.9 = %v, want ~10ms", q)
	}
}

func TestRecorderSeriesOutputs(t *testing.T) {
	r := NewRecorder(time.Second)
	// Bucket 0: 10 fast successes; bucket 2: 5 slow failures.
	for i := 0; i < 10; i++ {
		r.Record(500*time.Millisecond, 10*time.Millisecond, true)
	}
	for i := 0; i < 5; i++ {
		r.Record(2500*time.Millisecond, 800*time.Millisecond, false)
	}
	rps := r.RPSSeries()
	if len(rps) != 3 || rps[0] != 10 || rps[1] != 0 || rps[2] != 5 {
		t.Fatalf("RPSSeries = %v", rps)
	}
	p99 := r.QuantileSeries(0.99)
	if p99[0] > 0.012 || p99[1] != 0 || p99[2] < 0.7 {
		t.Fatalf("QuantileSeries = %v", p99)
	}
	sr := r.SuccessRateSeries()
	if sr[0] != 1 || sr[1] != 1 || sr[2] != 0 {
		t.Fatalf("SuccessRateSeries = %v", sr)
	}
}

func TestRecorderEmptyDefaults(t *testing.T) {
	r := NewRecorder(0)
	if r.BucketWidth() != time.Second {
		t.Fatalf("default bucket width = %v", r.BucketWidth())
	}
	if r.SuccessRate() != 1 || r.Quantile(0.99) != 0 || r.Buckets() != 0 {
		t.Fatal("empty recorder defaults wrong")
	}
}

func TestRecorderMerge(t *testing.T) {
	a, b := NewRecorder(time.Second), NewRecorder(time.Second)
	a.Record(0, 10*time.Millisecond, true)
	b.Record(0, 20*time.Millisecond, false)
	b.Record(1500*time.Millisecond, 30*time.Millisecond, true)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if math.Abs(a.SuccessRate()-2.0/3) > 1e-9 {
		t.Fatalf("merged success rate = %v", a.SuccessRate())
	}
	if a.Buckets() != 2 {
		t.Fatalf("merged buckets = %d", a.Buckets())
	}
	a.Merge(nil) // no-op
	// Mismatched widths merge aggregates only.
	c := NewRecorder(2 * time.Second)
	c.Record(0, 40*time.Millisecond, true)
	a.Merge(c)
	if a.Count() != 4 || a.Buckets() != 2 {
		t.Fatalf("mismatched merge: count=%d buckets=%d", a.Count(), a.Buckets())
	}
}

func TestGeneratorPanicsOnMissingDeps(t *testing.T) {
	e := sim.NewEngine()
	mustPanic(t, func() { New(e, Config{Rate: ConstantRate(1)}, nil) })
	mustPanic(t, func() { New(e, Config{}, instantIssue(0, true)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestDelayedResponsesRecordAtStartBucket(t *testing.T) {
	// A request issued at t=0.5s answered at t=3s must land in bucket 0:
	// the paper's latency series are keyed by request time.
	e := sim.NewEngine()
	issue := func(done func(time.Duration, bool)) error {
		e.After(2500*time.Millisecond, func() { done(2500*time.Millisecond, true) })
		return nil
	}
	g := New(e, Config{Rate: ConstantRate(2)}, issue)
	g.Start()
	e.RunUntil(time.Second)
	g.Stop()
	e.RunUntil(time.Minute)
	rps := g.Recorder().RPSSeries()
	if len(rps) == 0 || rps[0] == 0 {
		t.Fatalf("RPSSeries = %v, want requests attributed to bucket 0", rps)
	}
}
