package loadgen

import (
	"sync"
	"testing"
	"time"

	"l3/internal/clock"
	"l3/internal/sim"
)

// TestNewClockSimEquivalent pins that New(engine, ...) and
// NewClock(clock.Sim(engine), ...) produce the identical arrival sequence —
// the guarantee that keeps every sim golden byte-identical across the clock
// refactor.
func TestNewClockSimEquivalent(t *testing.T) {
	run := func(build func(e *sim.Engine, cfg Config, issue IssueFunc) *Generator) []time.Duration {
		e := sim.NewEngine()
		var arrivals []time.Duration
		g := build(e, Config{Rate: ConstantRate(100)}, func(done func(time.Duration, bool)) error {
			arrivals = append(arrivals, e.Now())
			done(time.Millisecond, true)
			return nil
		})
		g.Start()
		e.RunUntil(time.Second)
		return arrivals
	}
	direct := run(New)
	viaClock := run(func(e *sim.Engine, cfg Config, issue IssueFunc) *Generator {
		return NewClock(clock.Sim(e), cfg, issue)
	})
	if len(direct) == 0 || len(direct) != len(viaClock) {
		t.Fatalf("arrival counts differ: %d vs %d", len(direct), len(viaClock))
	}
	for i := range direct {
		if direct[i] != viaClock[i] {
			t.Fatalf("arrival %d at %v via engine, %v via clock", i, direct[i], viaClock[i])
		}
	}
}

// TestCatchUpHoldsOfferedRate pins the wrk2-style correction on a real wall
// clock: with CatchUp, a run's issued count tracks rate*elapsed even though
// the Go runtime delivers timers late. The bound is deliberately loose —
// this asserts the catch-up mechanism works, not the machine's jitter.
func TestCatchUpHoldsOfferedRate(t *testing.T) {
	w := clock.NewWall()
	defer w.Stop()
	var mu sync.Mutex
	issued := 0
	g := NewClock(w, Config{Rate: ConstantRate(2000), CatchUp: true}, func(done func(time.Duration, bool)) error {
		mu.Lock()
		issued++
		mu.Unlock()
		done(time.Millisecond, true)
		return nil
	})
	w.Do(g.Start)
	time.Sleep(250 * time.Millisecond)
	w.Do(g.Stop)
	mu.Lock()
	got := issued
	mu.Unlock()
	// 2000 rps for 250 ms is 500 ideal arrivals. Catch-up bursts recover
	// lost ticks, so even a noisy scheduler should land well above half the
	// ideal count; without catch-up, 1 ms relative gaps on a coarse timer
	// would deliver far fewer.
	if got < 250 {
		t.Fatalf("issued %d requests in 250ms at 2000 rps with catch-up; expected ≥ 250", got)
	}
}
