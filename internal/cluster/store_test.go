package cluster

import (
	"errors"
	"testing"
)

type obj struct {
	name string
	val  int
}

func (o obj) ObjectName() string { return o.name }

func TestStoreCreateGet(t *testing.T) {
	s := NewStore[obj]()
	if err := s.Create(obj{name: "a", val: 1}); err != nil {
		t.Fatal(err)
	}
	got, ver, ok := s.Get("a")
	if !ok || got.val != 1 || ver == 0 {
		t.Fatalf("Get = %+v, %d, %v", got, ver, ok)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("Get of missing object succeeded")
	}
}

func TestStoreCreateDuplicateFails(t *testing.T) {
	s := NewStore[obj]()
	_ = s.Create(obj{name: "a"})
	if err := s.Create(obj{name: "a"}); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate Create err = %v, want ErrAlreadyExists", err)
	}
}

func TestStoreUpdate(t *testing.T) {
	s := NewStore[obj]()
	if err := s.Update(obj{name: "a"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update of missing err = %v", err)
	}
	_ = s.Create(obj{name: "a", val: 1})
	if err := s.Update(obj{name: "a", val: 2}); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("a")
	if got.val != 2 {
		t.Fatalf("val = %d, want 2", got.val)
	}
}

func TestStoreUpdateIfVersion(t *testing.T) {
	s := NewStore[obj]()
	_ = s.Create(obj{name: "a", val: 1})
	_, ver, _ := s.Get("a")
	if err := s.UpdateIfVersion(obj{name: "a", val: 2}, ver); err != nil {
		t.Fatal(err)
	}
	// Stale version now conflicts.
	if err := s.UpdateIfVersion(obj{name: "a", val: 3}, ver); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale update err = %v, want ErrConflict", err)
	}
	if err := s.UpdateIfVersion(obj{name: "zz", val: 3}, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing update err = %v, want ErrNotFound", err)
	}
	got, _, _ := s.Get("a")
	if got.val != 2 {
		t.Fatalf("val = %d, want 2 (stale write must not land)", got.val)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore[obj]()
	_ = s.Create(obj{name: "a"})
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("a"); ok {
		t.Fatal("object still present after delete")
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete err = %v", err)
	}
}

func TestStoreListSorted(t *testing.T) {
	s := NewStore[obj]()
	for _, n := range []string{"c", "a", "b"} {
		_ = s.Create(obj{name: n})
	}
	list := s.List()
	if len(list) != 3 || list[0].name != "a" || list[2].name != "c" {
		t.Fatalf("List = %+v, want sorted a,b,c", list)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreResourceVersionMonotone(t *testing.T) {
	s := NewStore[obj]()
	v0 := s.ResourceVersion()
	_ = s.Create(obj{name: "a"})
	v1 := s.ResourceVersion()
	_ = s.Update(obj{name: "a", val: 1})
	v2 := s.ResourceVersion()
	_ = s.Delete("a")
	v3 := s.ResourceVersion()
	if !(v0 < v1 && v1 < v2 && v2 < v3) {
		t.Fatalf("versions not monotone: %d %d %d %d", v0, v1, v2, v3)
	}
}

func TestWatchReceivesMutations(t *testing.T) {
	s := NewStore[obj]()
	var events []Event[obj]
	cancel := s.Watch(false, func(e Event[obj]) { events = append(events, e) })
	_ = s.Create(obj{name: "a", val: 1})
	_ = s.Update(obj{name: "a", val: 2})
	_ = s.Delete("a")
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	wantTypes := []EventType{Added, Updated, Deleted}
	for i, w := range wantTypes {
		if events[i].Type != w {
			t.Fatalf("event %d type = %v, want %v", i, events[i].Type, w)
		}
	}
	cancel()
	_ = s.Create(obj{name: "b"})
	if len(events) != 3 {
		t.Fatal("event delivered after cancel")
	}
}

func TestWatchReplayListsExisting(t *testing.T) {
	s := NewStore[obj]()
	_ = s.Create(obj{name: "b"})
	_ = s.Create(obj{name: "a"})
	var names []string
	s.Watch(true, func(e Event[obj]) {
		if e.Type == Added {
			names = append(names, e.Object.name)
		}
	})
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("replay = %v, want [a b] sorted", names)
	}
}

func TestMultipleWatchersAllNotified(t *testing.T) {
	s := NewStore[obj]()
	n1, n2 := 0, 0
	s.Watch(false, func(Event[obj]) { n1++ })
	s.Watch(false, func(Event[obj]) { n2++ })
	_ = s.Create(obj{name: "a"})
	if n1 != 1 || n2 != 1 {
		t.Fatalf("watcher counts = %d, %d", n1, n2)
	}
}

func TestEventTypeString(t *testing.T) {
	if Added.String() != "added" || Updated.String() != "updated" || Deleted.String() != "deleted" {
		t.Fatal("event type names wrong")
	}
	if EventType(0).String() != "unknown" {
		t.Fatal("zero event type should be unknown")
	}
}
