package cluster

import (
	"time"

	"l3/internal/sim"
)

// ReconcileFunc processes one queued key. Returning an error requeues the
// key with exponential backoff; returning nil resets its failure count.
type ReconcileFunc func(key string) error

// WorkQueue is a deduplicating retry queue in the style of Kubernetes
// controller work-queues, driven by the virtual clock. Keys added while a
// reconcile for the same key is pending are coalesced. It is intended for
// single-threaded event-driven use on the engine.
type WorkQueue struct {
	engine      *sim.Engine
	reconcile   ReconcileFunc
	baseBackoff time.Duration
	maxBackoff  time.Duration

	queued   map[string]bool
	failures map[string]int
	stopped  bool

	// Instrumentation for tests and operators.
	processed int
	retried   int
}

// WorkQueueConfig parameterises NewWorkQueue.
type WorkQueueConfig struct {
	// BaseBackoff is the first retry delay (default 5 ms of virtual time).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential retry delay (default 1 s).
	MaxBackoff time.Duration
}

// NewWorkQueue returns a queue that invokes reconcile for every added key.
func NewWorkQueue(engine *sim.Engine, cfg WorkQueueConfig, reconcile ReconcileFunc) *WorkQueue {
	if reconcile == nil {
		panic("cluster: NewWorkQueue with nil reconcile")
	}
	base := cfg.BaseBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	maxB := cfg.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	return &WorkQueue{
		engine:      engine,
		reconcile:   reconcile,
		baseBackoff: base,
		maxBackoff:  maxB,
		queued:      make(map[string]bool),
		failures:    make(map[string]int),
	}
}

// Add enqueues a key for reconciliation. Duplicate adds while the key is
// queued are coalesced into one reconcile.
func (q *WorkQueue) Add(key string) {
	if q.stopped || q.queued[key] {
		return
	}
	q.queued[key] = true
	q.engine.After(0, func() { q.process(key) })
}

// Stop prevents any further reconciles, including already-queued ones.
func (q *WorkQueue) Stop() { q.stopped = true }

// Processed returns the number of reconcile invocations so far.
func (q *WorkQueue) Processed() int { return q.processed }

// Retried returns the number of reconciles requeued after an error.
func (q *WorkQueue) Retried() int { return q.retried }

func (q *WorkQueue) process(key string) {
	if q.stopped {
		return
	}
	delete(q.queued, key)
	q.processed++
	if err := q.reconcile(key); err != nil {
		q.failures[key]++
		q.retried++
		delay := q.backoff(q.failures[key])
		if !q.queued[key] {
			q.queued[key] = true
			q.engine.After(delay, func() { q.process(key) })
		}
		return
	}
	delete(q.failures, key)
}

func (q *WorkQueue) backoff(failures int) time.Duration {
	d := q.baseBackoff
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= q.maxBackoff {
			return q.maxBackoff
		}
	}
	if d > q.maxBackoff {
		d = q.maxBackoff
	}
	return d
}
