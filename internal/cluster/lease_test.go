package cluster

import (
	"testing"
	"time"

	"l3/internal/sim"
)

func TestLeaseLockAcquireReleaseExpiry(t *testing.T) {
	l := NewLeaseLock()
	if _, held := l.Holder(0); held {
		t.Fatal("fresh lock reports a holder")
	}
	if !l.TryAcquire("a", 0, 10*time.Second) {
		t.Fatal("acquire of free lock failed")
	}
	if l.TryAcquire("b", 5*time.Second, 10*time.Second) {
		t.Fatal("b acquired a live lease held by a")
	}
	// Renewal by the holder succeeds and extends.
	if !l.TryAcquire("a", 8*time.Second, 10*time.Second) {
		t.Fatal("holder renewal failed")
	}
	if l.TryAcquire("b", 17*time.Second, 10*time.Second) {
		t.Fatal("b acquired before renewed lease expired")
	}
	// After expiry anyone can take it.
	if !l.TryAcquire("b", 19*time.Second, 10*time.Second) {
		t.Fatal("b could not acquire expired lease")
	}
	holder, held := l.Holder(19 * time.Second)
	if !held || holder != "b" {
		t.Fatalf("holder = %q, %v", holder, held)
	}
	// Release by non-holder is a no-op; by holder frees immediately.
	l.Release("a")
	if _, held := l.Holder(19 * time.Second); !held {
		t.Fatal("release by non-holder freed the lease")
	}
	l.Release("b")
	if _, held := l.Holder(19 * time.Second); held {
		t.Fatal("release by holder did not free the lease")
	}
}

func TestSingleElectorBecomesLeader(t *testing.T) {
	e := sim.NewEngine()
	lock := NewLeaseLock()
	started := 0
	el := NewElector(e, lock, ElectorConfig{
		ID:               "a",
		OnStartedLeading: func() { started++ },
	})
	el.Run()
	e.RunUntil(time.Second)
	if !el.IsLeader() || started != 1 {
		t.Fatalf("leader=%v started=%d", el.IsLeader(), started)
	}
	// Leadership is stable across many renew cycles.
	e.RunUntil(5 * time.Minute)
	if !el.IsLeader() || started != 1 {
		t.Fatalf("leadership flapped: leader=%v started=%d", el.IsLeader(), started)
	}
}

func TestOnlyOneLeaderAmongCandidates(t *testing.T) {
	e := sim.NewEngine()
	lock := NewLeaseLock()
	var electors []*Elector
	for _, id := range []string{"a", "b", "c"} {
		el := NewElector(e, lock, ElectorConfig{ID: id})
		electors = append(electors, el)
		el.Run()
	}
	e.RunUntil(time.Minute)
	leaders := 0
	for _, el := range electors {
		if el.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
}

func TestFailoverAfterLeaderStops(t *testing.T) {
	e := sim.NewEngine()
	lock := NewLeaseLock()
	a := NewElector(e, lock, ElectorConfig{ID: "a"})
	b := NewElector(e, lock, ElectorConfig{ID: "b"})
	a.Run()
	e.RunUntil(time.Second) // a acquires first
	b.Run()
	e.RunUntil(10 * time.Second)
	if !a.IsLeader() || b.IsLeader() {
		t.Fatalf("initial leadership wrong: a=%v b=%v", a.IsLeader(), b.IsLeader())
	}
	stoppedAt := e.Now()
	a.Stop() // releases the lease
	e.RunUntil(stoppedAt + 5*time.Second)
	if !b.IsLeader() {
		t.Fatal("b did not take over within its retry interval after release")
	}
}

func TestFailoverAfterLeaderCrashes(t *testing.T) {
	// A "crash" is a leader that stops renewing without releasing: the
	// standby must take over only after lease expiry.
	e := sim.NewEngine()
	lock := NewLeaseLock()
	var onStopped int
	a := NewElector(e, lock, ElectorConfig{ID: "a", LeaseDuration: 15 * time.Second})
	b := NewElector(e, lock, ElectorConfig{ID: "b", LeaseDuration: 15 * time.Second,
		OnStoppedLeading: func() { onStopped++ }})
	a.Run()
	b.Run()
	e.RunUntil(10 * time.Second)
	a.Crash() // stops renewing without Release and without OnStoppedLeading
	crash := e.Now()
	e.RunUntil(crash + 10*time.Second)
	if b.IsLeader() {
		t.Fatal("b took over before the lease expired")
	}
	e.RunUntil(crash + 20*time.Second)
	if !b.IsLeader() {
		t.Fatal("b did not take over after lease expiry")
	}
}

// TestLeaderKillFailoverWithinTTL pins the failover window the chaos
// engine's leaderkill fault relies on: a crashed leader's lease stays on
// the books, the standby acquires within one lease TTL plus one retry
// interval, and at no instant do two electors both report leadership.
func TestLeaderKillFailoverWithinTTL(t *testing.T) {
	e := sim.NewEngine()
	lock := NewLeaseLock()
	const ttl = 15 * time.Second
	a := NewElector(e, lock, ElectorConfig{ID: "a", LeaseDuration: ttl})
	b := NewElector(e, lock, ElectorConfig{ID: "b", LeaseDuration: ttl})
	a.Run()
	e.RunUntil(time.Second) // deterministic initial leader
	b.Run()

	// Sample the both-leaders invariant continuously, finer than any
	// renew/retry interval.
	overlaps := 0
	e.Every(500*time.Millisecond, func() {
		if a.IsLeader() && b.IsLeader() {
			overlaps++
		}
	})

	e.RunUntil(30 * time.Second)
	if !a.IsLeader() {
		t.Fatal("a is not the initial leader")
	}
	kill := e.Now()
	a.Crash()

	// The standby must NOT lead before the crashed leader's lease expires…
	e.RunUntil(kill + ttl - time.Second)
	if b.IsLeader() {
		t.Fatal("b led before the crashed leader's lease expired")
	}
	// …and MUST lead within TTL + one retry interval.
	e.RunUntil(kill + ttl + 2*time.Second + time.Second)
	if !b.IsLeader() {
		t.Fatal("b did not take over within lease TTL + retry interval")
	}

	// A revived ex-leader rejoins as a standby, not a second leader.
	a.Run()
	e.RunUntil(e.Now() + 30*time.Second)
	if a.IsLeader() || !b.IsLeader() {
		t.Fatalf("after revival: a=%v b=%v, want b sole leader", a.IsLeader(), b.IsLeader())
	}
	if overlaps != 0 {
		t.Fatalf("observed %d instants with two leaders", overlaps)
	}
}

func TestElectorRequiresID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ID did not panic")
		}
	}()
	NewElector(sim.NewEngine(), NewLeaseLock(), ElectorConfig{})
}
