package cluster

import (
	"sync"
	"time"

	"l3/internal/sim"
)

// Lease is the shared lock record leader election competes over, mirroring
// the coordination.k8s.io Lease object: a holder identity plus renewal
// bookkeeping.
type Lease struct {
	Holder    string
	RenewedAt time.Duration
	Duration  time.Duration
}

// LeaseLock is the authoritative store of one Lease. Safe for concurrent
// use.
type LeaseLock struct {
	mu    sync.Mutex
	lease Lease
	held  bool
}

// NewLeaseLock returns an unheld lock.
func NewLeaseLock() *LeaseLock {
	return &LeaseLock{}
}

// TryAcquire attempts to take or renew the lease for id at virtual time
// now, with the given lease duration. It succeeds if the lease is unheld,
// expired, or already held by id (renewal).
func (l *LeaseLock) TryAcquire(id string, now, duration time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.held && l.lease.Holder != id && now < l.lease.RenewedAt+l.lease.Duration {
		return false
	}
	l.held = true
	l.lease = Lease{Holder: id, RenewedAt: now, Duration: duration}
	return true
}

// Release gives up the lease if id holds it, letting another candidate
// acquire immediately.
func (l *LeaseLock) Release(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.held && l.lease.Holder == id {
		l.held = false
	}
}

// Holder returns the current holder and whether the lease is live at now.
func (l *LeaseLock) Holder(now time.Duration) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.held || now >= l.lease.RenewedAt+l.lease.Duration {
		return "", false
	}
	return l.lease.Holder, true
}

// ElectorConfig parameterises an Elector.
type ElectorConfig struct {
	// ID identifies this candidate (e.g. pod name). Required.
	ID string
	// LeaseDuration is how long an un-renewed lease stays valid
	// (default 15 s, Kubernetes' default).
	LeaseDuration time.Duration
	// RenewInterval is how often the leader renews (default 5 s).
	RenewInterval time.Duration
	// RetryInterval is how often a non-leader retries acquisition
	// (default 2 s).
	RetryInterval time.Duration
	// OnStartedLeading fires when this candidate becomes leader.
	OnStartedLeading func()
	// OnStoppedLeading fires when leadership is lost or resigned.
	OnStoppedLeading func()
}

// Elector campaigns for a LeaseLock on the virtual clock. Only the leader
// replica of L3 writes TrafficSplit weights; standbys keep campaigning and
// take over when the leader stops renewing.
type Elector struct {
	engine  *sim.Engine
	lock    *LeaseLock
	cfg     ElectorConfig
	leading bool
	timer   *sim.Timer
	stopped bool
}

// NewElector returns an elector; call Run to start campaigning.
func NewElector(engine *sim.Engine, lock *LeaseLock, cfg ElectorConfig) *Elector {
	if cfg.ID == "" {
		panic("cluster: Elector requires an ID")
	}
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = 15 * time.Second
	}
	if cfg.RenewInterval <= 0 {
		cfg.RenewInterval = 5 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 2 * time.Second
	}
	return &Elector{engine: engine, lock: lock, cfg: cfg}
}

// Run starts the campaign loop. The first acquisition attempt happens
// immediately (on the next engine step). Run after Stop or Crash resumes
// campaigning.
func (e *Elector) Run() {
	e.stopped = false
	e.engine.After(0, e.tick)
}

// Stop halts campaigning, releasing the lease if held.
func (e *Elector) Stop() {
	e.stopped = true
	if e.timer != nil {
		e.timer.Cancel()
	}
	if e.leading {
		e.leading = false
		e.lock.Release(e.cfg.ID)
		if e.cfg.OnStoppedLeading != nil {
			e.cfg.OnStoppedLeading()
		}
	}
}

// Crash halts campaigning without releasing the lease and without firing
// OnStoppedLeading — the failure mode of a killed leader process. A held
// lease stays on the books until it expires, so standbys take over only
// after the lease TTL, matching Kubernetes leader-election semantics.
func (e *Elector) Crash() {
	e.stopped = true
	if e.timer != nil {
		e.timer.Cancel()
	}
	e.leading = false
}

// IsLeader reports whether this candidate currently holds the lease.
func (e *Elector) IsLeader() bool { return e.leading }

func (e *Elector) tick() {
	if e.stopped {
		return
	}
	now := e.engine.Now()
	acquired := e.lock.TryAcquire(e.cfg.ID, now, e.cfg.LeaseDuration)
	switch {
	case acquired && !e.leading:
		e.leading = true
		if e.cfg.OnStartedLeading != nil {
			e.cfg.OnStartedLeading()
		}
	case !acquired && e.leading:
		e.leading = false
		if e.cfg.OnStoppedLeading != nil {
			e.cfg.OnStoppedLeading()
		}
	}
	interval := e.cfg.RetryInterval
	if e.leading {
		interval = e.cfg.RenewInterval
	}
	e.timer = e.engine.After(interval, e.tick)
}
