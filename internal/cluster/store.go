// Package cluster provides the Kubernetes-flavoured control-plane substrate
// the L3 operator runs on: a typed object store with resource versions and
// watch notifications, a retrying reconcile work-queue, and lease-based
// leader election (§4 of the paper describes L3 as a Kubernetes operator
// with control loops and a lease-locked leader).
//
// The substrate is event-driven on the virtual clock of internal/sim rather
// than goroutine-driven, which keeps simulations deterministic.
package cluster

import (
	"errors"
	"sort"
	"sync"
)

// Object is anything storable: it must expose a stable name unique within
// its store.
type Object interface {
	ObjectName() string
}

// EventType classifies a watch notification.
type EventType int

const (
	// Added fires when an object is first created.
	Added EventType = iota + 1
	// Updated fires when an existing object is replaced.
	Updated
	// Deleted fires when an object is removed.
	Deleted
)

// String returns the event type's name.
func (t EventType) String() string {
	switch t {
	case Added:
		return "added"
	case Updated:
		return "updated"
	case Deleted:
		return "deleted"
	default:
		return "unknown"
	}
}

// Event is one watch notification.
type Event[T Object] struct {
	Type   EventType
	Object T
}

// Errors returned by Store operations.
var (
	ErrAlreadyExists = errors.New("cluster: object already exists")
	ErrNotFound      = errors.New("cluster: object not found")
	ErrConflict      = errors.New("cluster: resource version conflict")
)

// Store is a typed object store with watch support. Watch handlers are
// invoked synchronously in mutation order; handlers must not mutate the
// store re-entrantly. Safe for concurrent use.
type Store[T Object] struct {
	mu       sync.Mutex
	items    map[string]T
	versions map[string]uint64
	rv       uint64
	watchers map[int]func(Event[T])
	nextID   int
}

// NewStore returns an empty store.
func NewStore[T Object]() *Store[T] {
	return &Store[T]{
		items:    make(map[string]T),
		versions: make(map[string]uint64),
		watchers: make(map[int]func(Event[T])),
	}
}

// Create inserts a new object. It fails with ErrAlreadyExists if the name
// is taken.
func (s *Store[T]) Create(obj T) error {
	s.mu.Lock()
	name := obj.ObjectName()
	if _, ok := s.items[name]; ok {
		s.mu.Unlock()
		return ErrAlreadyExists
	}
	s.rv++
	s.items[name] = obj
	s.versions[name] = s.rv
	watchers := s.watcherList()
	s.mu.Unlock()
	notify(watchers, Event[T]{Type: Added, Object: obj})
	return nil
}

// Update replaces an existing object. It fails with ErrNotFound if absent.
func (s *Store[T]) Update(obj T) error {
	s.mu.Lock()
	name := obj.ObjectName()
	if _, ok := s.items[name]; !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	s.rv++
	s.items[name] = obj
	s.versions[name] = s.rv
	watchers := s.watcherList()
	s.mu.Unlock()
	notify(watchers, Event[T]{Type: Updated, Object: obj})
	return nil
}

// UpdateIfVersion replaces an existing object only if its current resource
// version equals expect (optimistic concurrency, like a Kubernetes
// update-with-resourceVersion). It returns ErrConflict on mismatch.
func (s *Store[T]) UpdateIfVersion(obj T, expect uint64) error {
	s.mu.Lock()
	name := obj.ObjectName()
	cur, ok := s.versions[name]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	if cur != expect {
		s.mu.Unlock()
		return ErrConflict
	}
	s.rv++
	s.items[name] = obj
	s.versions[name] = s.rv
	watchers := s.watcherList()
	s.mu.Unlock()
	notify(watchers, Event[T]{Type: Updated, Object: obj})
	return nil
}

// Delete removes an object by name. It fails with ErrNotFound if absent.
func (s *Store[T]) Delete(name string) error {
	s.mu.Lock()
	obj, ok := s.items[name]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	delete(s.items, name)
	delete(s.versions, name)
	s.rv++
	watchers := s.watcherList()
	s.mu.Unlock()
	notify(watchers, Event[T]{Type: Deleted, Object: obj})
	return nil
}

// Get returns the object by name with its resource version.
func (s *Store[T]) Get(name string) (obj T, version uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok = s.items[name]
	return obj, s.versions[name], ok
}

// List returns all objects sorted by name.
func (s *Store[T]) List() []T {
	s.mu.Lock()
	names := make([]string, 0, len(s.items))
	for n := range s.items {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]T, 0, len(names))
	for _, n := range names {
		out = append(out, s.items[n])
	}
	s.mu.Unlock()
	return out
}

// Len returns the number of stored objects.
func (s *Store[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// ResourceVersion returns the store's monotonically increasing version,
// bumped by every mutation.
func (s *Store[T]) ResourceVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rv
}

// Watch registers fn to be called synchronously on every subsequent
// mutation. It returns a cancel function; after cancel, no further events
// are delivered. If replay is true, fn is first called with a synthetic
// Added event per existing object (list-then-watch semantics).
func (s *Store[T]) Watch(replay bool, fn func(Event[T])) (cancel func()) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.watchers[id] = fn
	var existing []T
	if replay {
		for _, obj := range s.items {
			existing = append(existing, obj)
		}
		sort.Slice(existing, func(i, j int) bool {
			return existing[i].ObjectName() < existing[j].ObjectName()
		})
	}
	s.mu.Unlock()
	for _, obj := range existing {
		fn(Event[T]{Type: Added, Object: obj})
	}
	return func() {
		s.mu.Lock()
		delete(s.watchers, id)
		s.mu.Unlock()
	}
}

func (s *Store[T]) watcherList() []func(Event[T]) {
	ids := make([]int, 0, len(s.watchers))
	for id := range s.watchers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]func(Event[T]), 0, len(ids))
	for _, id := range ids {
		out = append(out, s.watchers[id])
	}
	return out
}

func notify[T Object](watchers []func(Event[T]), ev Event[T]) {
	for _, fn := range watchers {
		fn(ev)
	}
}
