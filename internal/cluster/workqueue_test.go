package cluster

import (
	"errors"
	"testing"
	"time"

	"l3/internal/sim"
)

func TestWorkQueueProcessesKeys(t *testing.T) {
	e := sim.NewEngine()
	var got []string
	q := NewWorkQueue(e, WorkQueueConfig{}, func(key string) error {
		got = append(got, key)
		return nil
	})
	q.Add("a")
	q.Add("b")
	e.RunUntil(time.Second)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("processed = %v", got)
	}
	if q.Processed() != 2 || q.Retried() != 0 {
		t.Fatalf("counters: processed=%d retried=%d", q.Processed(), q.Retried())
	}
}

func TestWorkQueueCoalescesDuplicates(t *testing.T) {
	e := sim.NewEngine()
	count := 0
	q := NewWorkQueue(e, WorkQueueConfig{}, func(string) error {
		count++
		return nil
	})
	q.Add("a")
	q.Add("a")
	q.Add("a")
	e.RunUntil(time.Second)
	if count != 1 {
		t.Fatalf("reconciled %d times, want 1 (coalesced)", count)
	}
}

func TestWorkQueueRetriesWithBackoff(t *testing.T) {
	e := sim.NewEngine()
	var times []time.Duration
	attempts := 0
	q := NewWorkQueue(e, WorkQueueConfig{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second},
		func(string) error {
			times = append(times, e.Now())
			attempts++
			if attempts < 4 {
				return errors.New("transient")
			}
			return nil
		})
	q.Add("a")
	e.RunUntil(10 * time.Second)
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	// Delays between attempts: 10ms, 20ms, 40ms.
	wantGaps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for i, w := range wantGaps {
		gap := times[i+1] - times[i]
		if gap != w {
			t.Fatalf("gap %d = %v, want %v", i, gap, w)
		}
	}
	if q.Retried() != 3 {
		t.Fatalf("Retried = %d, want 3", q.Retried())
	}
}

func TestWorkQueueBackoffCapped(t *testing.T) {
	e := sim.NewEngine()
	var times []time.Duration
	q := NewWorkQueue(e, WorkQueueConfig{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
		func(string) error {
			times = append(times, e.Now())
			return errors.New("always fails")
		})
	q.Add("a")
	e.RunUntil(2 * time.Second)
	if len(times) < 5 {
		t.Fatalf("too few attempts: %d", len(times))
	}
	for i := 3; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap > 200*time.Millisecond {
			t.Fatalf("gap %v exceeds max backoff", gap)
		}
	}
}

func TestWorkQueueSuccessResetsBackoff(t *testing.T) {
	e := sim.NewEngine()
	fail := true
	var times []time.Duration
	q := NewWorkQueue(e, WorkQueueConfig{BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second},
		func(string) error {
			times = append(times, e.Now())
			if fail {
				fail = false
				return errors.New("first time fails")
			}
			return nil
		})
	q.Add("a")
	e.RunUntil(time.Second)
	// Second round: fail once more; backoff should restart at base.
	fail = true
	mark := len(times)
	q.Add("a")
	e.RunUntil(2 * time.Second)
	if len(times) != mark+2 {
		t.Fatalf("second round attempts = %d, want 2", len(times)-mark)
	}
	if gap := times[mark+1] - times[mark]; gap != 50*time.Millisecond {
		t.Fatalf("post-success backoff = %v, want base 50ms", gap)
	}
}

func TestWorkQueueStop(t *testing.T) {
	e := sim.NewEngine()
	count := 0
	q := NewWorkQueue(e, WorkQueueConfig{}, func(string) error {
		count++
		return nil
	})
	q.Add("a")
	q.Stop()
	q.Add("b")
	e.RunUntil(time.Second)
	if count != 0 {
		t.Fatalf("reconciled %d keys after Stop, want 0", count)
	}
}

func TestWorkQueueNilReconcilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil reconcile did not panic")
		}
	}()
	NewWorkQueue(sim.NewEngine(), WorkQueueConfig{}, nil)
}

func TestWorkQueueAddDuringReconcileRequeues(t *testing.T) {
	e := sim.NewEngine()
	count := 0
	var q *WorkQueue
	q = NewWorkQueue(e, WorkQueueConfig{}, func(key string) error {
		count++
		if count == 1 {
			q.Add(key) // re-add while processing: must trigger another pass
		}
		return nil
	})
	q.Add("a")
	e.RunUntil(time.Second)
	if count != 2 {
		t.Fatalf("reconciled %d times, want 2", count)
	}
}
