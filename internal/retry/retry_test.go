package retry

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

// failNTimes builds a profile failing the first n requests, succeeding
// afterwards, each taking lat.
func failNTimes(n int, lat time.Duration) backend.Profile {
	count := 0
	return func(time.Duration, *sim.Rand) (time.Duration, bool) {
		count++
		return lat, count > n
	}
}

func newMesh(t *testing.T, profile backend.Profile) (*mesh.Mesh, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	m := mesh.New(engine, sim.NewRand(1), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBackend("api", "b", "cluster-1", backend.Config{}, profile); err != nil {
		t.Fatal(err)
	}
	return m, engine
}

func TestFirstAttemptSuccessNoRetry(t *testing.T) {
	m, engine := newMesh(t, failNTimes(0, 10*time.Millisecond))
	var res Result
	if err := Do(engine, m, "cluster-1", "api", Policy{}, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(time.Second)
	if !res.Success || res.Attempts != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Latency != 11*time.Millisecond { // 10ms exec + 2x local hop
		t.Fatalf("latency = %v", res.Latency)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	m, engine := newMesh(t, failNTimes(2, 10*time.Millisecond))
	var res Result
	_ = Do(engine, m, "cluster-1", "api", Policy{MaxAttempts: 3, Backoff: 20 * time.Millisecond}, func(r Result) { res = r })
	engine.RunUntil(time.Second)
	if !res.Success || res.Attempts != 3 {
		t.Fatalf("result = %+v", res)
	}
	// 3 attempts x 11ms + backoffs 20ms + 40ms = 93ms total.
	if res.Latency != 93*time.Millisecond {
		t.Fatalf("total latency = %v, want 93ms", res.Latency)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	m, engine := newMesh(t, failNTimes(1000, 5*time.Millisecond))
	var res Result
	calls := 0
	_ = Do(engine, m, "cluster-1", "api", Policy{MaxAttempts: 4}, func(r Result) { res = r; calls++ })
	engine.RunUntil(time.Minute)
	if calls != 1 {
		t.Fatalf("done fired %d times", calls)
	}
	if res.Success || res.Attempts != 4 {
		t.Fatalf("result = %+v", res)
	}
}

func TestBackoffGrowsGeometrically(t *testing.T) {
	// Instant failures isolate the backoff contribution.
	m, engine := newMesh(t, failNTimes(1000, 0))
	var res Result
	_ = Do(engine, m, "cluster-1", "api",
		Policy{MaxAttempts: 4, Backoff: 10 * time.Millisecond, BackoffFactor: 3},
		func(r Result) { res = r })
	engine.RunUntil(time.Minute)
	// Latency = 4 attempts x 1ms hops + backoffs 10+30+90 = 134ms.
	if res.Latency != 134*time.Millisecond {
		t.Fatalf("latency = %v, want 134ms", res.Latency)
	}
}

func TestSuccessRateLiftsGeometrically(t *testing.T) {
	// 50% failure per attempt, 3 attempts: failure probability 1/8.
	engine := sim.NewEngine()
	m := mesh.New(engine, sim.NewRand(1), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	_, _ = m.AddService("api")
	_, _ = m.AddBackend("api", "b", "cluster-1", backend.Config{},
		func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return time.Millisecond, r.Bool(0.5)
		})
	succ, total := 0, 2000
	for i := 0; i < total; i++ {
		engine.After(time.Duration(i)*5*time.Millisecond, func() {
			_ = Do(engine, m, "cluster-1", "api", Policy{MaxAttempts: 3}, func(r Result) {
				if r.Success {
					succ++
				}
			})
		})
	}
	engine.RunUntil(time.Minute)
	rate := float64(succ) / float64(total)
	if rate < 0.85 || rate > 0.90 {
		t.Fatalf("success after 3 attempts = %v, want ~0.875", rate)
	}
}

func TestUnknownServiceErrorsSynchronously(t *testing.T) {
	m, engine := newMesh(t, failNTimes(0, time.Millisecond))
	if err := Do(engine, m, "cluster-1", "nope", Policy{}, func(Result) {}); err == nil {
		t.Fatal("unknown service accepted")
	}
	if err := Do(nil, m, "cluster-1", "api", Policy{}, func(Result) {}); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestJitterSpreadsBackoffDeterministically(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		// Instant failures isolate the backoff contribution; each Do's
		// total latency is 4×1ms hops + the three jittered backoffs.
		m, engine := newMesh(t, failNTimes(100000, 0))
		policy := Policy{MaxAttempts: 4, Backoff: 10 * time.Millisecond, BackoffFactor: 2,
			Jitter: 0.5, Rand: sim.NewRand(seed)}
		var lats []time.Duration
		for i := 0; i < 8; i++ {
			engine.After(time.Duration(i)*time.Second, func() {
				_ = Do(engine, m, "cluster-1", "api", policy, func(r Result) {
					lats = append(lats, r.Latency)
				})
			})
		}
		engine.RunUntil(time.Minute)
		return lats
	}
	a := run(7)
	// Lockstep clients would all wait 10+20+40 = 70ms of backoff; jitter
	// must spread them while staying within ±50% per draw.
	distinct := map[time.Duration]bool{}
	for _, l := range a {
		distinct[l] = true
		backoff := l - 4*time.Millisecond
		if backoff < 35*time.Millisecond || backoff > 105*time.Millisecond {
			t.Fatalf("jittered backoff sum %v outside ±50%% envelope of 70ms", backoff)
		}
		if backoff == 70*time.Millisecond {
			t.Fatalf("backoff exactly nominal; jitter not applied")
		}
	}
	if len(distinct) < 4 {
		t.Fatalf("only %d distinct latencies in 8 jittered runs; clients still in lockstep", len(distinct))
	}
	// Same seed reproduces the run bit-for-bit; a different seed does not.
	b := run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not deterministic: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestDeadlineStopsPointlessRetries(t *testing.T) {
	// Failures land at ~1ms (hops only); the first 50ms backoff would fire
	// at ~51ms, past the 30ms deadline — so Do must report the failure at
	// ~1ms, not sleep out the schedule and report the same thing at 151ms.
	m, engine := newMesh(t, failNTimes(100000, 0))
	var res Result
	var at time.Duration
	calls := 0
	_ = Do(engine, m, "cluster-1", "api",
		Policy{MaxAttempts: 4, Backoff: 50 * time.Millisecond, Deadline: 30 * time.Millisecond},
		func(r Result) { res, at = r, engine.Now(); calls++ })
	engine.RunUntil(time.Minute)
	if calls != 1 {
		t.Fatalf("done fired %d times", calls)
	}
	if res.Success || res.Attempts != 1 {
		t.Fatalf("result = %+v, want failure after the single useful attempt", res)
	}
	if at != time.Millisecond || res.Latency != time.Millisecond {
		t.Fatalf("reported at %v (latency %v), want immediately at the first failure", at, res.Latency)
	}

	// A deadline with room for one retry allows exactly one.
	m2, engine2 := newMesh(t, failNTimes(100000, 0))
	var res2 Result
	_ = Do(engine2, m2, "cluster-1", "api",
		Policy{MaxAttempts: 4, Backoff: 50 * time.Millisecond, Deadline: 60 * time.Millisecond},
		func(r Result) { res2 = r })
	engine2.RunUntil(time.Minute)
	if res2.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (second backoff would cross the deadline)", res2.Attempts)
	}
}
