// Package retry adds client-side retries on top of the mesh — the
// behaviour Equation 3's penalty term models: "P can be multiplied by the
// expected value 1/Rₛ of the geometrically distributed number of requests
// a client has to send until a successful response is received" (§3.1).
// The paper's own benchmarks "did not perform retries for simplicity"
// (§5.2.1) and conjecture that P's effect on latency would soften with
// them; the retry-enabled penalty ablation in internal/bench tests that
// conjecture.
//
// Each attempt goes through the mesh's normal load-balancing path (the
// balancer may pick a different backend per attempt, as Linkerd's retries
// do), and the recorded latency spans all attempts plus backoff — the
// client-perceived cost of failure that P stands for.
package retry

import (
	"fmt"
	"time"

	"l3/internal/mesh"
	"l3/internal/sim"
)

// Policy configures retries.
type Policy struct {
	// MaxAttempts bounds total tries (default 3; 1 disables retries).
	MaxAttempts int
	// Backoff is the wait before the first retry (default 10 ms).
	Backoff time.Duration
	// BackoffFactor multiplies the wait per further retry (default 2).
	BackoffFactor float64
	// Jitter spreads each backoff uniformly over ±Jitter of its nominal
	// value, decorrelating clients that failed against the same backend
	// at the same instant (without it they all retry in lockstep and
	// re-spike the backend together). 0 disables; requires Rand.
	Jitter float64
	// Rand is the seeded source jitter draws from, so jittered runs stay
	// deterministic. nil disables jitter.
	Rand *sim.Rand
	// Deadline bounds the whole logical request, measured from the Do
	// call. A retry whose backoff cannot complete within it is pointless,
	// so the failure is reported immediately instead of sleeping past the
	// deadline and reporting the same stale result later. 0 means none.
	Deadline time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 10 * time.Millisecond
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = 2
	}
	return p
}

// Result is the outcome across all attempts.
type Result struct {
	// Result is the final attempt's mesh result, with Latency replaced by
	// the total client-perceived duration (all attempts plus backoff).
	mesh.Result
	// Attempts is how many tries were made.
	Attempts int
}

// Do issues one logical request with retries. done fires exactly once,
// after the first success or the final failed attempt.
func Do(engine *sim.Engine, m *mesh.Mesh, src, service string, policy Policy, done func(Result)) error {
	if engine == nil || m == nil {
		return fmt.Errorf("retry: Do requires engine and mesh")
	}
	policy = policy.withDefaults()
	start := engine.Now()

	var attempt func(n int, wait time.Duration) error
	attempt = func(n int, wait time.Duration) error {
		return m.Call(src, service, func(r mesh.Result) {
			if r.Success || n >= policy.MaxAttempts {
				r.Latency = engine.Now() - start
				done(Result{Result: r, Attempts: n})
				return
			}
			w := wait
			if policy.Jitter > 0 && policy.Rand != nil {
				w = time.Duration(float64(w) * (1 + policy.Jitter*(2*policy.Rand.Float64()-1)))
			}
			if policy.Deadline > 0 && engine.Now()+w-start >= policy.Deadline {
				// The next attempt could not even start before the
				// deadline: report the failure now rather than sleeping
				// past any useful point.
				r.Latency = engine.Now() - start
				done(Result{Result: r, Attempts: n})
				return
			}
			engine.After(w, func() {
				// A failed nested attempt only surfaces as a synchronous
				// error when the service vanished mid-flight; treat it as
				// the final failure.
				if err := attempt(n+1, time.Duration(float64(wait)*policy.BackoffFactor)); err != nil {
					r.Latency = engine.Now() - start
					done(Result{Result: r, Attempts: n})
				}
			})
		})
	}
	return attempt(1, policy.Backoff)
}
