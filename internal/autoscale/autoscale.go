// Package autoscale is the horizontal-autoscaling substrate the paper's
// rate controller is designed to cooperate with (§3.2): when L3 spreads a
// load surge across all backends, "the cluster's autoscaling mechanisms
// [can] promptly scale up the faster backends in response", after which
// traffic share to them can rise again; on load drops, scaling down the
// slower backends "increase[s] resource efficiency".
//
// The scaler follows the shape of Kubernetes' HorizontalPodAutoscaler:
// a control loop compares a utilisation measurement against a target and
// resizes the worker pool proportionally, with a stabilisation window
// against flapping and min/max bounds. Utilisation here is busy workers
// over pool size — the analogue of CPU utilisation for the replica model.
package autoscale

import (
	"fmt"
	"math"
	"time"

	"l3/internal/backend"
	"l3/internal/sim"
)

// Config parameterises an Autoscaler.
type Config struct {
	// Target is the desired utilisation in (0, 1] (default 0.6, a common
	// HPA setting).
	Target float64
	// Min and Max bound the worker-pool size (defaults 4 and 1024).
	Min, Max int
	// Interval is the control period (default 15 s, the HPA default).
	Interval time.Duration
	// ScaleDownStabilization delays shrinking until utilisation has been
	// below target for this long (default 60 s), preventing flapping —
	// scale-ups apply immediately, as in Kubernetes.
	ScaleDownStabilization time.Duration
	// Tolerance suppresses resizes within ±Tolerance of the target
	// (default 0.1).
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.Target <= 0 || c.Target > 1 {
		c.Target = 0.6
	}
	if c.Min <= 0 {
		c.Min = 4
	}
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.ScaleDownStabilization <= 0 {
		c.ScaleDownStabilization = time.Minute
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	return c
}

// Autoscaler resizes one Replica's worker pool on the virtual clock.
type Autoscaler struct {
	engine  *sim.Engine
	replica *backend.Replica
	cfg     Config

	ticker *sim.Timer
	// belowSince tracks how long utilisation has been below target, for
	// the scale-down stabilisation window; -1 means "not below".
	belowSince time.Duration

	// samples accumulated between control rounds (utilisation is sampled
	// every second for a steadier signal than one instantaneous read).
	sampler              *sim.Timer
	sampleΣ              float64
	sampleN              int
	scaleUps, scaleDowns int
}

// New returns an autoscaler for the replica; call Start to begin.
func New(engine *sim.Engine, replica *backend.Replica, cfg Config) *Autoscaler {
	if engine == nil || replica == nil {
		panic("autoscale: New requires engine and replica")
	}
	return &Autoscaler{
		engine:     engine,
		replica:    replica,
		cfg:        cfg.withDefaults(),
		belowSince: -1,
	}
}

// Start begins sampling and the control loop.
func (a *Autoscaler) Start() {
	a.sampler = a.engine.Every(time.Second, func() {
		a.sampleΣ += a.replica.Utilization()
		a.sampleN++
	})
	a.ticker = a.engine.Every(a.cfg.Interval, a.tick)
}

// Stop halts the loops.
func (a *Autoscaler) Stop() {
	if a.sampler != nil {
		a.sampler.Cancel()
	}
	if a.ticker != nil {
		a.ticker.Cancel()
	}
}

// ScaleEvents returns how many times the pool grew and shrank.
func (a *Autoscaler) ScaleEvents() (ups, downs int) { return a.scaleUps, a.scaleDowns }

func (a *Autoscaler) tick() {
	if a.sampleN == 0 {
		return
	}
	util := a.sampleΣ / float64(a.sampleN)
	a.sampleΣ, a.sampleN = 0, 0

	cur := a.replica.Concurrency()
	ratio := util / a.cfg.Target
	switch {
	case ratio > 1+a.cfg.Tolerance:
		// Scale up immediately, proportionally to the excess.
		want := clamp(int(math.Ceil(float64(cur)*ratio)), a.cfg.Min, a.cfg.Max)
		if want > cur {
			a.replica.SetConcurrency(want)
			a.scaleUps++
		}
		a.belowSince = -1
	case ratio < 1-a.cfg.Tolerance:
		now := a.engine.Now()
		if a.belowSince < 0 {
			a.belowSince = now
			return
		}
		if now-a.belowSince < a.cfg.ScaleDownStabilization {
			return
		}
		want := clamp(int(math.Ceil(float64(cur)*ratio)), a.cfg.Min, a.cfg.Max)
		if want < cur {
			a.replica.SetConcurrency(want)
			a.scaleDowns++
		}
		a.belowSince = now // restart the window after each step down
	default:
		a.belowSince = -1
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String describes the scaler.
func (a *Autoscaler) String() string {
	return fmt.Sprintf("autoscaler{target=%.0f%% min=%d max=%d every=%v}",
		a.cfg.Target*100, a.cfg.Min, a.cfg.Max, a.cfg.Interval)
}
