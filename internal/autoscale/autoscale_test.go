package autoscale

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/sim"
)

// load drives a replica at the given RPS with a constant service time.
func load(engine *sim.Engine, r *backend.Replica, rps float64) *sim.Timer {
	gap := time.Duration(float64(time.Second) / rps)
	return engine.Every(gap, func() {
		r.Serve(func(backend.Result) {})
	})
}

func newReplica(engine *sim.Engine, conc int, svc time.Duration) *backend.Replica {
	return backend.New(engine, sim.NewRand(1), backend.Config{Concurrency: conc},
		func(time.Duration, *sim.Rand) (time.Duration, bool) { return svc, true })
}

func TestScalesUpUnderLoad(t *testing.T) {
	engine := sim.NewEngine()
	// 100 RPS x 100ms = 10 busy workers needed; pool starts at 4 (will
	// queue heavily) and should grow toward ~17 (10/0.6 target).
	r := newReplica(engine, 4, 100*time.Millisecond)
	a := New(engine, r, Config{Min: 4, Max: 64})
	a.Start()
	load(engine, r, 100)
	engine.RunUntil(3 * time.Minute)
	if got := r.Concurrency(); got < 12 || got > 32 {
		t.Fatalf("concurrency = %d, want ~17 after scale-up", got)
	}
	ups, _ := a.ScaleEvents()
	if ups == 0 {
		t.Fatal("no scale-up events")
	}
}

func TestScaleUpRelievesQueueing(t *testing.T) {
	engine := sim.NewEngine()
	r := newReplica(engine, 4, 100*time.Millisecond)
	a := New(engine, r, Config{Min: 4, Max: 64})
	a.Start()
	var last time.Duration
	engine.Every(10*time.Millisecond, func() {
		r.Serve(func(res backend.Result) { last = res.Latency })
	})
	engine.RunUntil(5 * time.Minute)
	if last > 150*time.Millisecond {
		t.Fatalf("latency after scale-up = %v, want near the 100ms service time", last)
	}
}

func TestScaleDownAfterStabilization(t *testing.T) {
	engine := sim.NewEngine()
	// Oversized pool at light load: should shrink, but only after the
	// stabilisation window.
	r := newReplica(engine, 64, 50*time.Millisecond)
	a := New(engine, r, Config{Min: 4, Max: 64, ScaleDownStabilization: time.Minute})
	a.Start()
	load(engine, r, 20) // needs ~1 worker
	engine.RunUntil(45 * time.Second)
	if r.Concurrency() != 64 {
		t.Fatalf("scaled down before stabilisation window: %d", r.Concurrency())
	}
	engine.RunUntil(10 * time.Minute)
	if got := r.Concurrency(); got > 16 {
		t.Fatalf("concurrency = %d, want shrunk toward the minimum", got)
	}
	_, downs := a.ScaleEvents()
	if downs == 0 {
		t.Fatal("no scale-down events")
	}
}

func TestRespectsBounds(t *testing.T) {
	engine := sim.NewEngine()
	r := newReplica(engine, 8, 200*time.Millisecond)
	a := New(engine, r, Config{Min: 8, Max: 12})
	a.Start()
	load(engine, r, 500) // wants far more than 12
	engine.RunUntil(3 * time.Minute)
	if got := r.Concurrency(); got != 12 {
		t.Fatalf("concurrency = %d, want capped at 12", got)
	}
}

func TestSteadyStateNoFlapping(t *testing.T) {
	engine := sim.NewEngine()
	// 60 RPS x 100ms = 6 busy; pool of 10 => utilisation 0.6 == target.
	r := newReplica(engine, 10, 100*time.Millisecond)
	a := New(engine, r, Config{Min: 4, Max: 64})
	a.Start()
	load(engine, r, 60)
	engine.RunUntil(10 * time.Minute)
	ups, downs := a.ScaleEvents()
	if ups+downs > 2 {
		t.Fatalf("flapping: %d ups, %d downs at steady state", ups, downs)
	}
}

func TestStopHaltsScaling(t *testing.T) {
	engine := sim.NewEngine()
	r := newReplica(engine, 4, 100*time.Millisecond)
	a := New(engine, r, Config{Min: 4, Max: 64})
	a.Start()
	a.Stop()
	load(engine, r, 200)
	engine.RunUntil(2 * time.Minute)
	if r.Concurrency() != 4 {
		t.Fatalf("scaled after Stop: %d", r.Concurrency())
	}
}

func TestNilDepsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil deps did not panic")
		}
	}()
	New(nil, nil, Config{})
}

func TestReplicaSetConcurrencyDrainsQueue(t *testing.T) {
	engine := sim.NewEngine()
	r := newReplica(engine, 1, 100*time.Millisecond)
	done := 0
	for i := 0; i < 5; i++ {
		r.Serve(func(backend.Result) { done++ })
	}
	if r.QueueLen() != 4 {
		t.Fatalf("queue = %d", r.QueueLen())
	}
	r.SetConcurrency(5) // queued work starts immediately
	if r.QueueLen() != 0 {
		t.Fatalf("queue after grow = %d, want drained", r.QueueLen())
	}
	engine.RunUntil(time.Second)
	if done != 5 {
		t.Fatalf("completed = %d", done)
	}
	r.SetConcurrency(0) // clamped to 1
	if r.Concurrency() != 1 {
		t.Fatalf("clamp failed: %d", r.Concurrency())
	}
}

func TestReplicaUtilization(t *testing.T) {
	engine := sim.NewEngine()
	r := newReplica(engine, 4, time.Second)
	if r.Utilization() != 0 {
		t.Fatalf("idle utilization = %v", r.Utilization())
	}
	r.Serve(func(backend.Result) {})
	r.Serve(func(backend.Result) {})
	if r.Utilization() != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", r.Utilization())
	}
	engine.RunUntil(2 * time.Second)
	if r.Utilization() != 0 {
		t.Fatalf("post-drain utilization = %v", r.Utilization())
	}
}
