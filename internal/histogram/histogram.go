// Package histogram provides streaming latency histograms.
//
// Two shapes are offered:
//
//   - Histogram: an HDR-style log-bucketed recorder with ~2 % relative
//     error across a 10 µs .. 1000 s range, used by load generators and
//     trace statistics where the full distribution is needed.
//   - Explicit cumulative bucket layouts (see Buckets) used by the
//     Prometheus-flavoured metrics substrate, with the same
//     linear-interpolation quantile estimation Prometheus's
//     histogram_quantile applies.
package histogram

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

const (
	// minTrackable is the smallest distinguishable value; anything lower is
	// recorded in bucket 0.
	minTrackable = 10 * time.Microsecond
	// growth is the per-bucket geometric growth factor, chosen for ~2 %
	// relative quantile error.
	growth = 1.02
)

var (
	logGrowth  = math.Log(growth)
	numBuckets = logBucketIndex(1000*time.Second) + 2

	// bucketStarts[i] is the smallest duration mapped to bucket i, derived
	// once from the log formula so the table-driven index below reproduces
	// it bit-for-bit without a math.Log per Record.
	bucketStarts []time.Duration
	// bucketUppers[i] is the representative upper-bound value of bucket i,
	// the precomputed form of the old per-call math.Pow.
	bucketUppers []time.Duration
	// octaveLo/octaveHi clamp the index search to the buckets whose range
	// intersects the value's power-of-two octave (~36 buckets at growth
	// 1.02), so a Record costs a handful of compares instead of a log.
	octaveLo [65]int32
	octaveHi [65]int32
)

// logBucketIndex is the original logarithmic bucket mapping, kept as the
// reference the tables are calibrated against (and tests compare to).
func logBucketIndex(v time.Duration) int {
	if v <= minTrackable {
		return 0
	}
	return 1 + int(math.Log(float64(v)/float64(minTrackable))/logGrowth)
}

func init() {
	bucketStarts = make([]time.Duration, numBuckets)
	bucketUppers = make([]time.Duration, numBuckets)
	bucketUppers[0] = minTrackable
	for i := 1; i < numBuckets; i++ {
		// Seed near the analytic boundary, then calibrate against the log
		// formula so float rounding cannot shift any bucket edge.
		v := time.Duration(math.Exp(float64(i-1)*logGrowth) * float64(minTrackable))
		for v > 0 && logBucketIndex(v) >= i {
			v--
		}
		for logBucketIndex(v) < i {
			v++
		}
		bucketStarts[i] = v
		bucketUppers[i] = time.Duration(float64(minTrackable) * math.Pow(growth, float64(i)))
	}
	for b := 0; b <= 64; b++ {
		var lowest, highest time.Duration
		if b > 0 {
			lowest = 1 << (b - 1)
			highest = 1<<b - 1
			if b == 64 {
				highest = math.MaxInt64
			}
		}
		lo := sortSearchStarts(lowest)
		hi := sortSearchStarts(highest)
		octaveLo[b], octaveHi[b] = int32(lo), int32(hi)
	}
}

// sortSearchStarts returns the bucket index of v by full binary search over
// bucketStarts (used only to build the octave tables).
func sortSearchStarts(v time.Duration) int {
	lo, hi := 0, numBuckets-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if bucketStarts[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// bucketIndex maps a duration to its bucket using the precomputed tables:
// identical to logBucketIndex (clamped to the table) with no transcendental
// math on the hot path.
func bucketIndex(v time.Duration) int {
	if v <= minTrackable {
		return 0
	}
	lo := int(octaveLo[bits.Len64(uint64(v))])
	hi := int(octaveHi[bits.Len64(uint64(v))])
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if bucketStarts[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// bucketUpper returns a representative (upper-bound) value for bucket i.
func bucketUpper(i int) time.Duration {
	if i < len(bucketUppers) {
		return bucketUppers[i]
	}
	return time.Duration(float64(minTrackable) * math.Pow(growth, float64(i)))
}

// Histogram records durations into geometric buckets and answers quantile
// queries. The zero value is ready to use. Histogram is not safe for
// concurrent use; callers that share one across goroutines must synchronise.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{}
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v time.Duration) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, numBuckets)
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all recorded observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest recorded observation, or 0 if empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded observation, or 0 if empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// recorded distribution, or 0 if the histogram is empty. Estimates carry the
// bucket's relative error (~2 %) except at the extremes, which are exact.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge adds all observations recorded in o into h. Both histograms share
// the package-wide bucket layout, so the merge is exact.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, numBuckets)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset discards all recorded observations but keeps the allocation.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Snapshot returns an independent copy of the histogram.
func (h *Histogram) Snapshot() *Histogram {
	c := &Histogram{
		total: h.total,
		sum:   h.sum,
		min:   h.min,
		max:   h.max,
	}
	if h.counts != nil {
		c.counts = make([]uint64, len(h.counts))
		copy(c.counts, h.counts)
	}
	return c
}

// String summarises the distribution for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("histogram{n=%d p50=%v p99=%v max=%v}",
		h.total, h.Quantile(0.5), h.Quantile(0.99), h.max)
}
