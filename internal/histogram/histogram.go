// Package histogram provides streaming latency histograms.
//
// Two shapes are offered:
//
//   - Histogram: an HDR-style log-bucketed recorder with ~2 % relative
//     error across a 10 µs .. 1000 s range, used by load generators and
//     trace statistics where the full distribution is needed.
//   - Explicit cumulative bucket layouts (see Buckets) used by the
//     Prometheus-flavoured metrics substrate, with the same
//     linear-interpolation quantile estimation Prometheus's
//     histogram_quantile applies.
package histogram

import (
	"fmt"
	"math"
	"time"
)

const (
	// minTrackable is the smallest distinguishable value; anything lower is
	// recorded in bucket 0.
	minTrackable = 10 * time.Microsecond
	// growth is the per-bucket geometric growth factor, chosen for ~2 %
	// relative quantile error.
	growth = 1.02
)

var (
	logGrowth  = math.Log(growth)
	numBuckets = bucketIndex(1000*time.Second) + 2
)

func bucketIndex(v time.Duration) int {
	if v <= minTrackable {
		return 0
	}
	return 1 + int(math.Log(float64(v)/float64(minTrackable))/logGrowth)
}

// bucketUpper returns a representative (upper-bound) value for bucket i.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return minTrackable
	}
	return time.Duration(float64(minTrackable) * math.Pow(growth, float64(i)))
}

// Histogram records durations into geometric buckets and answers quantile
// queries. The zero value is ready to use. Histogram is not safe for
// concurrent use; callers that share one across goroutines must synchronise.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{}
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v time.Duration) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, numBuckets)
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all recorded observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Min returns the smallest recorded observation, or 0 if empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded observation, or 0 if empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// recorded distribution, or 0 if the histogram is empty. Estimates carry the
// bucket's relative error (~2 %) except at the extremes, which are exact.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge adds all observations recorded in o into h. Both histograms share
// the package-wide bucket layout, so the merge is exact.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, numBuckets)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset discards all recorded observations but keeps the allocation.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Snapshot returns an independent copy of the histogram.
func (h *Histogram) Snapshot() *Histogram {
	c := &Histogram{
		total: h.total,
		sum:   h.sum,
		min:   h.min,
		max:   h.max,
	}
	if h.counts != nil {
		c.counts = make([]uint64, len(h.counts))
		copy(c.counts, h.counts)
	}
	return c
}

// String summarises the distribution for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("histogram{n=%d p50=%v p99=%v max=%v}",
		h.total, h.Quantile(0.5), h.Quantile(0.99), h.max)
}
