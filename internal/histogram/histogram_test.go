package histogram

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"l3/internal/sim"
)

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h)
	}
}

func TestSingleObservation(t *testing.T) {
	h := New()
	h.Record(42 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if relErr(got, 42*time.Millisecond) > 0.03 {
			t.Fatalf("Quantile(%v) = %v, want ~42ms", q, got)
		}
	}
	if h.Min() != 42*time.Millisecond || h.Max() != 42*time.Millisecond {
		t.Fatalf("min/max = %v/%v, want exact 42ms", h.Min(), h.Max())
	}
}

func TestQuantileAccuracyAgainstSortedSamples(t *testing.T) {
	r := sim.NewRand(1)
	d := sim.NewLogNormalFromQuantiles(80*time.Millisecond, 700*time.Millisecond)
	h := New()
	const n = 50000
	samples := make([]time.Duration, n)
	for i := range samples {
		v := d.Sample(r)
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(n))-1]
		got := h.Quantile(q)
		if relErr(got, exact) > 0.05 {
			t.Fatalf("Quantile(%v) = %v, exact %v (err %.3f)", q, got, exact, relErr(got, exact))
		}
	}
}

func TestRecordClampsNegative(t *testing.T) {
	h := New()
	h.Record(-5 * time.Second)
	if h.Count() != 1 {
		t.Fatalf("negative record dropped")
	}
	if h.Max() != 0 {
		t.Fatalf("negative record not clamped: max=%v", h.Max())
	}
}

func TestRecordBeyondRangeGoesToOverflow(t *testing.T) {
	h := New()
	h.Record(5000 * time.Second)
	if got := h.Quantile(0.5); got != 5000*time.Second {
		// Quantile is clamped to max, which is exact.
		t.Fatalf("overflow quantile = %v, want exact max 5000s", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if got := a.Quantile(0.5); relErr(got, 100*time.Millisecond) > 0.05 {
		t.Fatalf("merged median = %v, want ~100ms", got)
	}
	if a.Min() != time.Millisecond || a.Max() != 200*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestMergeIntoEmptyAndFromNil(t *testing.T) {
	a := New()
	b := New()
	b.Record(time.Second)
	a.Merge(b)
	if a.Count() != 1 || a.Min() != time.Second {
		t.Fatalf("merge into empty: count=%d min=%v", a.Count(), a.Min())
	}
	a.Merge(nil)
	a.Merge(New())
	if a.Count() != 1 {
		t.Fatalf("merge of nil/empty changed count to %d", a.Count())
	}
}

func TestResetAndReuse(t *testing.T) {
	h := New()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Sum() != 0 {
		t.Fatal("reset did not clear state")
	}
	h.Record(2 * time.Second)
	if relErr(h.Quantile(0.5), 2*time.Second) > 0.03 {
		t.Fatalf("post-reset quantile = %v", h.Quantile(0.5))
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	h := New()
	h.Record(time.Second)
	s := h.Snapshot()
	h.Record(10 * time.Second)
	if s.Count() != 1 {
		t.Fatalf("snapshot mutated by later records: count=%d", s.Count())
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := sim.NewRand(99)
	f := func(seed uint64) bool {
		rr := sim.NewRand(seed)
		h := New()
		n := 10 + rr.IntN(500)
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rr.IntN(int(10 * time.Second))))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEquivalentToCombinedRecordingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := sim.NewRand(seed)
		a, b, both := New(), New(), New()
		for i := 0; i < 200; i++ {
			v := time.Duration(rr.IntN(int(2 * time.Second)))
			if i%2 == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			both.Record(v)
		}
		a.Merge(b)
		if a.Count() != both.Count() || a.Sum() != both.Sum() {
			return false
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
			if a.Quantile(q) != both.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketQuantileUniform(t *testing.T) {
	bounds := []float64{1, 2, 3, 4}
	counts := []float64{10, 10, 10, 10, 0}
	if got := BucketQuantile(0.5, bounds, counts); math.Abs(got-2) > 1e-9 {
		t.Fatalf("median = %v, want 2", got)
	}
	if got := BucketQuantile(0.25, bounds, counts); math.Abs(got-1) > 1e-9 {
		t.Fatalf("q25 = %v, want 1", got)
	}
	// Interpolation inside a bucket.
	if got := BucketQuantile(0.125, bounds, counts); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("q12.5 = %v, want 0.5", got)
	}
}

func TestBucketQuantileOverflowReturnsHighestBound(t *testing.T) {
	bounds := []float64{1, 2}
	counts := []float64{0, 0, 5}
	if got := BucketQuantile(0.99, bounds, counts); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
}

func TestBucketQuantileEmptyAndMalformed(t *testing.T) {
	bounds := []float64{1, 2}
	if got := BucketQuantile(0.5, bounds, []float64{0, 0, 0}); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	if got := BucketQuantile(0.5, bounds, []float64{1, 2}); got != 0 {
		t.Fatalf("malformed lengths = %v, want 0", got)
	}
}

func TestBucketForBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	tests := []struct {
		v    float64
		want int
	}{
		{0.0005, 0},
		{0.001, 0}, // le semantics: exactly the bound falls in that bucket
		{0.0011, 1},
		{0.05, 2},
		{0.5, 3}, // overflow
	}
	for _, tt := range tests {
		if got := BucketFor(bounds, tt.v); got != tt.want {
			t.Fatalf("BucketFor(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestDurationQuantile(t *testing.T) {
	bounds := []float64{0.1, 0.2}
	counts := []float64{0, 10, 0}
	got := DurationQuantile(1, bounds, counts)
	if got != 200*time.Millisecond {
		t.Fatalf("DurationQuantile = %v, want 200ms", got)
	}
}

func TestLinkerdBoundsSortedAscending(t *testing.T) {
	if !sort.Float64sAreSorted(LinkerdLatencyBounds) {
		t.Fatal("LinkerdLatencyBounds not sorted")
	}
	for _, b := range LinkerdLatencyBounds {
		if b <= 0 {
			t.Fatalf("non-positive bound %v", b)
		}
	}
}

func relErr(got, want time.Duration) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(got-want)) / float64(want)
}
