package histogram

import (
	"math"
	"sort"
	"time"
)

// LinkerdLatencyBounds are the cumulative latency bucket upper bounds (in
// seconds) used by the metrics substrate, mirroring the log-spaced layout
// of Linkerd's proxy response_latency histogram: decade steps of 1-2-…-9
// from 1 ms to 60 s, with a +Inf overflow implied by the final count.
var LinkerdLatencyBounds = []float64{
	0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009,
	0.010, 0.020, 0.030, 0.040, 0.050, 0.060, 0.070, 0.080, 0.090,
	0.100, 0.200, 0.300, 0.400, 0.500, 0.600, 0.700, 0.800, 0.900,
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50, 60,
}

// BucketQuantile estimates the q-quantile of a cumulative bucket histogram
// given the per-bucket (non-cumulative) counts aligned with bounds, using
// the same linear interpolation Prometheus's histogram_quantile applies.
// counts must have len(bounds)+1 entries, the final entry being the overflow
// (+Inf) bucket. The result is in the unit of bounds (seconds for
// LinkerdLatencyBounds). It returns 0 when the histogram is empty.
func BucketQuantile(q float64, bounds []float64, counts []float64) float64 {
	if len(counts) != len(bounds)+1 {
		return 0
	}
	var total float64
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	var seen float64
	for i, c := range counts {
		if seen+c < rank || c == 0 {
			seen += c
			continue
		}
		if i == len(bounds) {
			// Overflow bucket: no finite upper bound; return the highest
			// finite bound, like Prometheus does.
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		frac := (rank - seen) / c
		return lower + (upper-lower)*frac
	}
	return bounds[len(bounds)-1]
}

// BucketFor returns the index of the cumulative bucket that value (in
// seconds) falls into, where index len(bounds) is the overflow bucket.
func BucketFor(bounds []float64, value float64) int {
	return sort.SearchFloat64s(bounds, value)
}

// DurationQuantile is BucketQuantile with a time.Duration result.
func DurationQuantile(q float64, bounds []float64, counts []float64) time.Duration {
	s := BucketQuantile(q, bounds, counts)
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}
