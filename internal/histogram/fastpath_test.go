package histogram

import (
	"math"
	"testing"
	"time"

	"l3/internal/sim"
)

// clampedLogIndex is the reference mapping as Record applies it: the original
// log-formula index, clamped to the table (overflow bucket).
func clampedLogIndex(v time.Duration) int {
	i := logBucketIndex(v)
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

// TestBucketIndexMatchesLogFormulaAtBoundaries walks every bucket edge: the
// first duration of each bucket, and the durations one tick either side, must
// map identically under the precomputed tables and the log formula.
func TestBucketIndexMatchesLogFormulaAtBoundaries(t *testing.T) {
	for i := 1; i < numBuckets; i++ {
		edge := bucketStarts[i]
		for _, v := range []time.Duration{edge - 1, edge, edge + 1} {
			if v < 0 {
				continue
			}
			if got, want := bucketIndex(v), clampedLogIndex(v); got != want {
				t.Fatalf("bucketIndex(%v) = %d, log formula gives %d (edge of bucket %d)",
					v, got, want, i)
			}
		}
	}
}

// TestBucketIndexMatchesLogFormulaSweep cross-checks the table-driven index
// against the log formula over seeded random durations spanning the whole
// trackable range (and beyond, into the overflow bucket).
func TestBucketIndexMatchesLogFormulaSweep(t *testing.T) {
	r := sim.NewRand(42)
	for trial := 0; trial < 200000; trial++ {
		bits := 1 + r.IntN(63)
		v := time.Duration(r.Uint64() & (1<<bits - 1))
		if got, want := bucketIndex(v), clampedLogIndex(v); got != want {
			t.Fatalf("bucketIndex(%v) = %d, log formula gives %d", v, got, want)
		}
	}
}

// TestBucketUpperMatchesPow pins the precomputed upper-bound table to the
// original per-call math.Pow form.
func TestBucketUpperMatchesPow(t *testing.T) {
	for i := 0; i < numBuckets+3; i++ { // +3: exercise the past-table fallback
		got := bucketUpper(i)
		var want time.Duration
		if i == 0 {
			want = minTrackable
		} else {
			want = time.Duration(float64(minTrackable) * math.Pow(growth, float64(i)))
		}
		if got != want {
			t.Fatalf("bucketUpper(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestRecordAllocationFree pins the recorder's steady state: after the first
// Record lazily allocates the bucket array, recording costs zero allocations.
func TestRecordAllocationFree(t *testing.T) {
	h := New()
	h.Record(time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(42 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects per call, want 0", allocs)
	}
}
