// Package ewma implements the time-decayed moving-average filters L3 uses to
// smooth data-plane metrics: the EWMA of Equation 1 and the peak-sensitive
// PeakEWMA of Equation 2 in the paper (the latter originating from Twitter's
// Finagle).
//
// Both filters are parameterised by a half-life rather than the raw decay
// coefficient β: a sample observed one half-life ago contributes half as
// much as a fresh one (β = halfLife / ln 2). Each filter carries a default
// value λ used before the first observation, and can relax back toward that
// default while no traffic produces samples, matching §4 of the paper
// ("EWMA default values").
package ewma

import (
	"fmt"
	"math"
	"time"
)

// ln2 converts between half-life and the exponential decay coefficient.
const ln2 = 0.6931471805599453

// EWMA is an exponentially weighted moving average over timestamped samples
// (Equation 1 of the paper). The zero value is unusable; construct with New.
// EWMA is not safe for concurrent use.
type EWMA struct {
	beta        float64 // decay coefficient β, in seconds
	def         float64 // λ, the pre-observation default
	value       float64
	lastSample  time.Duration
	initialized bool
}

// New returns an EWMA with the given half-life and default value λ. The
// half-life must be positive.
func New(halfLife time.Duration, def float64) *EWMA {
	if halfLife <= 0 {
		panic(fmt.Sprintf("ewma: non-positive half-life %v", halfLife))
	}
	return &EWMA{beta: halfLife.Seconds() / ln2, def: def}
}

// Observe folds sample y observed at virtual time now into the average and
// returns the updated value. The first observation initialises the filter
// with λ before folding in y, per Equation 1's E_prev = ∅ branch followed by
// the regular update: the paper initialises E to λ and then treats every
// sample uniformly. The λ seed carries no timestamp, so the first sample
// folds in with one half-life of decay — weight ½ each for λ and y, the
// timestamp-free choice consistent with the filter's half-life semantics.
// Subsequent samples weight by their actual elapsed time.
func (e *EWMA) Observe(now time.Duration, y float64) float64 {
	if !e.initialized {
		e.initialized = true
		e.lastSample = now
		e.value = (e.def + y) / 2
		return e.value
	}
	dt := now - e.lastSample
	if dt < 0 {
		dt = 0
	}
	e.lastSample = now
	w := math.Exp(-dt.Seconds() / e.beta)
	e.value = y*(1-w) + e.value*w
	return e.value
}

// Value returns the current filtered value, or λ if nothing has been
// observed yet.
func (e *EWMA) Value() float64 {
	if !e.initialized {
		return e.def
	}
	return e.value
}

// Initialized reports whether at least one sample has been observed.
func (e *EWMA) Initialized() bool { return e.initialized }

// Default returns λ.
func (e *EWMA) Default() float64 { return e.def }

// Relax moves the value a small increment toward λ, modelling the behaviour
// the paper describes when no metrics can be retrieved for ≥10 s: the filter
// converges toward its initial value until new samples arrive. fraction is
// the per-call step in (0, 1]; the paper's "small increments" correspond to
// a fraction well below 1.
func (e *EWMA) Relax(now time.Duration, fraction float64) float64 {
	if !e.initialized {
		return e.def
	}
	if fraction <= 0 {
		return e.value
	}
	if fraction > 1 {
		fraction = 1
	}
	e.lastSample = now
	e.value += (e.def - e.value) * fraction
	return e.value
}

// Reset returns the filter to its pre-observation state.
func (e *EWMA) Reset() {
	e.initialized = false
	e.value = 0
	e.lastSample = 0
}

// PeakEWMA is the peak-sensitive variant of Equation 2: a sample above the
// current value replaces it outright, while lower samples decay in like a
// regular EWMA. It reacts instantly to latency spikes and recovers
// cautiously. PeakEWMA is not safe for concurrent use.
type PeakEWMA struct {
	inner EWMA
}

// NewPeak returns a PeakEWMA with the given half-life and default λ.
func NewPeak(halfLife time.Duration, def float64) *PeakEWMA {
	return &PeakEWMA{inner: *New(halfLife, def)}
}

// Observe folds sample y at time now per Equation 2. The pre-observation
// value is the λ seed, so Equation 2's peak rule applies to the first
// sample too: y above λ replaces the seed outright, y below it decays in.
func (p *PeakEWMA) Observe(now time.Duration, y float64) float64 {
	if !p.inner.initialized && y > p.inner.def {
		p.inner.initialized = true
		p.inner.value = y
		p.inner.lastSample = now
		return y
	}
	if p.inner.initialized && y > p.inner.value {
		p.inner.value = y
		p.inner.lastSample = now
		return y
	}
	return p.inner.Observe(now, y)
}

// Value returns the current filtered value, or λ before any observation.
func (p *PeakEWMA) Value() float64 { return p.inner.Value() }

// Initialized reports whether at least one sample has been observed.
func (p *PeakEWMA) Initialized() bool { return p.inner.Initialized() }

// Default returns λ.
func (p *PeakEWMA) Default() float64 { return p.inner.Default() }

// Relax moves the value a small increment toward λ (see EWMA.Relax).
func (p *PeakEWMA) Relax(now time.Duration, fraction float64) float64 {
	return p.inner.Relax(now, fraction)
}

// Reset returns the filter to its pre-observation state.
func (p *PeakEWMA) Reset() { p.inner.Reset() }

// Filter is the interface shared by EWMA and PeakEWMA, letting L3's weight
// assigner be configured with either (§5.2.2 compares the two).
type Filter interface {
	Observe(now time.Duration, y float64) float64
	Value() float64
	Initialized() bool
	Default() float64
	Relax(now time.Duration, fraction float64) float64
	Reset()
}

var (
	_ Filter = (*EWMA)(nil)
	_ Filter = (*PeakEWMA)(nil)
)

// Kind selects which filter variant a component should construct.
type Kind int

const (
	// KindEWMA selects the plain EWMA of Equation 1.
	KindEWMA Kind = iota + 1
	// KindPeak selects the PeakEWMA of Equation 2.
	KindPeak
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindEWMA:
		return "ewma"
	case KindPeak:
		return "peak-ewma"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NewFilter constructs a filter of the given kind.
func NewFilter(k Kind, halfLife time.Duration, def float64) Filter {
	if k == KindPeak {
		return NewPeak(halfLife, def)
	}
	return New(halfLife, def)
}
