package ewma

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueBeforeObservationIsDefault(t *testing.T) {
	e := New(5*time.Second, 42)
	if e.Value() != 42 {
		t.Fatalf("Value = %v, want default 42", e.Value())
	}
	if e.Initialized() {
		t.Fatal("Initialized before any observation")
	}
}

func TestFirstObservationSeedsFromDefault(t *testing.T) {
	// Regression: the filter is seeded with λ before folding in the first
	// sample (Equation 1's E_prev = ∅ branch), so the default influences
	// the first output. The seed has no timestamp, so the first sample
	// folds in with one half-life of decay: (λ + y)/2.
	e := New(5*time.Second, 42)
	if got := e.Observe(time.Second, 10); got != 26 {
		t.Fatalf("first sample = %v, want (42+10)/2 = 26", got)
	}
	if e.Value() != 26 {
		t.Fatalf("Value after first sample = %v, want 26", e.Value())
	}
	// The first-sample timestamp anchors later decay: one half-life on,
	// a zero sample halves the value.
	if got := e.Observe(6*time.Second, 0); math.Abs(got-13) > 1e-9 {
		t.Fatalf("one half-life after first sample = %v, want 13", got)
	}
}

func TestFirstObservationIndependentOfTimestamp(t *testing.T) {
	// The λ seed carries no timestamp, so the first blend must not depend
	// on when the first sample arrives.
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		e := New(5*time.Second, 42)
		if got := e.Observe(at, 10); got != 26 {
			t.Fatalf("first sample at %v = %v, want 26", at, got)
		}
	}
}

func TestHalfLifeSemantics(t *testing.T) {
	// After exactly one half-life, the old value and new sample each
	// contribute 50%. λ matches the first sample so the seed blend is a
	// no-op and the decay arithmetic stays visible.
	e := New(5*time.Second, 100)
	e.Observe(0, 100)
	got := e.Observe(5*time.Second, 0)
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("value after one half-life = %v, want 50", got)
	}
	got = e.Observe(10*time.Second, 0)
	if math.Abs(got-25) > 1e-9 {
		t.Fatalf("value after two half-lives = %v, want 25", got)
	}
}

func TestRapidSamplesBarelyMove(t *testing.T) {
	// Equation 1 weights by elapsed time: samples arriving almost
	// simultaneously have almost no effect.
	e := New(5*time.Second, 100)
	e.Observe(0, 100)
	got := e.Observe(time.Millisecond, 0)
	if got < 99.9 {
		t.Fatalf("value after 1ms zero-sample = %v, want > 99.9", got)
	}
}

func TestOutOfOrderTimestampClamped(t *testing.T) {
	e := New(5*time.Second, 100)
	e.Observe(10*time.Second, 100)
	// Sample "before" the previous one: Δt clamps to 0, no decay, so the
	// prior value is retained entirely.
	got := e.Observe(5*time.Second, 0)
	if got != 100 {
		t.Fatalf("value after out-of-order sample = %v, want 100", got)
	}
}

func TestConvergesToConstantInput(t *testing.T) {
	// The λ seed (0) leaves a geometrically vanishing residue, so the
	// tolerance is loose enough for 100 half-life-fifth steps.
	e := New(5*time.Second, 0)
	for i := 0; i <= 100; i++ {
		e.Observe(time.Duration(i)*time.Second, 7)
	}
	if math.Abs(e.Value()-7) > 1e-5 {
		t.Fatalf("did not converge to constant input: %v", e.Value())
	}
}

func TestRelaxMovesTowardDefault(t *testing.T) {
	e := New(5*time.Second, 5)
	e.Observe(0, 205) // seed blend: (5+205)/2 = 105
	e.Relax(time.Second, 0.1)
	if math.Abs(e.Value()-95) > 1e-9 {
		t.Fatalf("Relax(0.1) = %v, want 95", e.Value())
	}
	for i := 0; i < 200; i++ {
		e.Relax(time.Duration(i)*time.Second, 0.1)
	}
	if math.Abs(e.Value()-5) > 0.01 {
		t.Fatalf("repeated Relax did not converge to default: %v", e.Value())
	}
}

func TestRelaxEdgeCases(t *testing.T) {
	e := New(5*time.Second, 5)
	if got := e.Relax(0, 0.5); got != 5 {
		t.Fatalf("Relax before init = %v, want default", got)
	}
	e.Observe(0, 100) // seed blend: (5+100)/2 = 52.5
	if got := e.Relax(time.Second, 0); got != 52.5 {
		t.Fatalf("Relax(0 fraction) = %v, want unchanged 52.5", got)
	}
	if got := e.Relax(time.Second, 5); got != 5 {
		t.Fatalf("Relax(fraction>1) = %v, want snapped to default", got)
	}
}

func TestResetReturnsToDefault(t *testing.T) {
	e := New(5*time.Second, 3)
	e.Observe(0, 50)
	e.Reset()
	if e.Initialized() || e.Value() != 3 {
		t.Fatalf("Reset: initialized=%v value=%v", e.Initialized(), e.Value())
	}
}

func TestNewPanicsOnNonPositiveHalfLife(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, 1)
}

func TestPeakJumpsToHigherSample(t *testing.T) {
	p := NewPeak(5*time.Second, 0)
	p.Observe(0, 10)
	got := p.Observe(time.Millisecond, 500)
	if got != 500 {
		t.Fatalf("peak did not jump: %v, want 500", got)
	}
}

func TestPeakDecaysLikeEWMABelowPeak(t *testing.T) {
	p := NewPeak(5*time.Second, 0)
	p.Observe(0, 100)
	got := p.Observe(5*time.Second, 0)
	if math.Abs(got-50) > 1e-9 {
		t.Fatalf("peak decay after one half-life = %v, want 50", got)
	}
}

func TestPeakDecayMeasuredFromJump(t *testing.T) {
	p := NewPeak(5*time.Second, 0)
	p.Observe(0, 10)
	p.Observe(3*time.Second, 500) // jump resets the sample clock
	got := p.Observe(8*time.Second, 0)
	if math.Abs(got-250) > 1e-9 {
		t.Fatalf("decay after jump = %v, want 250 (half-life from the jump)", got)
	}
}

func TestPeakAtOrAboveCurrentValueAlwaysWins(t *testing.T) {
	f := func(a, b uint16) bool {
		p := NewPeak(time.Second, 0)
		p.Observe(0, float64(a))
		v := p.Observe(time.Millisecond, float64(a)+float64(b))
		return v == float64(a)+float64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeakNeverBelowEWMAProperty(t *testing.T) {
	// For any sample sequence, PeakEWMA ≥ EWMA at every step.
	f := func(seed int64) bool {
		samples := []float64{}
		x := uint64(seed)
		for i := 0; i < 64; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			samples = append(samples, float64(x%1000))
		}
		e := New(5*time.Second, 0)
		p := NewPeak(5*time.Second, 0)
		for i, s := range samples {
			now := time.Duration(i) * 500 * time.Millisecond
			ev := e.Observe(now, s)
			pv := p.Observe(now, s)
			if pv < ev-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMABoundedByInputRangeProperty(t *testing.T) {
	// Bounded by the range of its inputs — which, with λ-seeding, includes
	// the default as a virtual first sample.
	f := func(seed int64) bool {
		x := uint64(seed)
		e := New(2*time.Second, 50)
		lo, hi := 50.0, 50.0
		for i := 0; i < 100; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			s := float64(x % 500)
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
			v := e.Observe(time.Duration(i)*time.Second, s)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewFilterKinds(t *testing.T) {
	if _, ok := NewFilter(KindEWMA, time.Second, 0).(*EWMA); !ok {
		t.Fatal("KindEWMA did not produce *EWMA")
	}
	if _, ok := NewFilter(KindPeak, time.Second, 0).(*PeakEWMA); !ok {
		t.Fatal("KindPeak did not produce *PeakEWMA")
	}
	if KindEWMA.String() != "ewma" || KindPeak.String() != "peak-ewma" {
		t.Fatalf("kind names: %v %v", KindEWMA, KindPeak)
	}
}

func TestPeakRelaxAndReset(t *testing.T) {
	p := NewPeak(time.Second, 1)
	p.Observe(0, 101)
	p.Relax(time.Second, 0.5)
	if math.Abs(p.Value()-51) > 1e-9 {
		t.Fatalf("peak Relax = %v, want 51", p.Value())
	}
	p.Reset()
	if p.Initialized() || p.Value() != 1 {
		t.Fatal("peak Reset failed")
	}
}
