package guard

import (
	"sort"
	"time"

	"l3/internal/core"
	"l3/internal/metrics"
)

// backendClass is the degraded-mode state of one backend for one round.
type backendClass int

const (
	classFresh backendClass = iota
	classStale              // data gap or in-window reset: hold last-good weight
	classBlind              // past the blind TTL: decay toward the baseline
)

// Assigner wraps a core.Assigner with the staleness-aware degraded modes:
// only backends with fresh data reach the inner algorithm, stale backends
// hold their last-good weight (instead of letting the inner filters relax
// toward defaults and drift the split), blind backends decay toward a
// uniform-or-locality baseline, and a failed visibility quorum freezes the
// whole round.
//
// Holding works because the inner assigner never observes a held backend's
// round: its EWMAs stay at the last trustworthy state and resume seamlessly
// when data returns — "hold last-good" falls out of not feeding the filters,
// not from copying weights around.
type Assigner struct {
	inner core.Assigner
	cfg   Config
	held  map[string]float64

	holds, decays, frozen *metrics.Counter
}

// NewAssigner wraps inner with degraded-mode handling. reg receives the
// guard's own counters when non-nil.
func NewAssigner(inner core.Assigner, cfg Config, reg *metrics.Registry) *Assigner {
	a := &Assigner{inner: inner, cfg: cfg.withDefaults(), held: make(map[string]float64)}
	if reg == nil {
		a.holds, a.decays, a.frozen = &metrics.Counter{}, &metrics.Counter{}, &metrics.Counter{}
	} else {
		a.holds = reg.Counter(MetricHoldsTotal, nil)
		a.decays = reg.Counter(MetricDecaysTotal, nil)
		a.frozen = reg.Counter(MetricFrozenTotal, nil)
	}
	return a
}

// classify maps one backend's collected metrics to a degraded-mode class.
func (a *Assigner) classify(now time.Duration, bm core.BackendMetrics) backendClass {
	if bm.LastSample == 0 {
		// Never scraped: nothing to hold, nothing to trust — hand it to the
		// inner assigner, which treats it as traffic-less (the cold-start
		// path, identical to unguarded behaviour).
		return classFresh
	}
	age := now - bm.LastSample
	if age > a.cfg.BlindAfter {
		return classBlind
	}
	if age > a.cfg.StaleAfter {
		return classStale
	}
	if bm.Starved {
		// Samples exist but the window cannot compute a rate: a data gap
		// (dropped scrapes, rejected garbage, skew), not idleness. Genuine
		// idleness has fresh samples and a zero rate, and passes through.
		return classStale
	}
	if bm.ResetSeen {
		// A spliced counter reset lost the increments accumulated before
		// the restart; this window's rates read artificially low. Hold one
		// round rather than feed the dip into the EWMAs.
		return classStale
	}
	return classFresh
}

// Assign implements core.Assigner.
func (a *Assigner) Assign(now time.Duration, m map[string]core.BackendMetrics) map[string]float64 {
	names := make([]string, 0, len(m))
	for b := range m {
		names = append(names, b)
	}
	sort.Strings(names)

	classes := make(map[string]backendClass, len(m))
	fresh := 0
	for _, b := range names {
		c := a.classify(now, m[b])
		classes[b] = c
		if c == classFresh {
			fresh++
		}
	}

	// Partial-visibility quorum: reweighting from a sliver of the fleet
	// amplifies the survivors, so freeze instead. Only meaningful once
	// weights have been held at least once (cold start passes through).
	if len(names) > 0 && len(a.held) > 0 &&
		float64(fresh) < a.cfg.Quorum*float64(len(names)) {
		a.frozen.Inc()
		out := make(map[string]float64, len(names))
		anchor := a.anchor(names)
		for _, b := range names {
			out[b] = a.heldOr(b, anchor)
		}
		return out
	}

	mFresh := make(map[string]core.BackendMetrics, fresh)
	for _, b := range names {
		if classes[b] == classFresh {
			mFresh[b] = m[b]
		}
	}
	inner := a.inner.Assign(now, mFresh)

	out := make(map[string]float64, len(names))
	anchor := a.anchor(names)
	for _, b := range names {
		switch classes[b] {
		case classFresh:
			w := inner[b]
			out[b] = w
			a.held[b] = w
		case classStale:
			a.holds.Inc()
			w := a.heldOr(b, anchor)
			out[b] = w
			a.held[b] = w
		case classBlind:
			a.decays.Inc()
			cur := a.heldOr(b, anchor)
			w := cur + a.cfg.DecayFraction*(a.baseline(b, names, anchor)-cur)
			out[b] = w
			a.held[b] = w
		}
	}
	return out
}

// anchor is the mean held weight across the round's backends — the scale
// that "uniform" means at, since weights are only meaningful as ratios.
func (a *Assigner) anchor(names []string) float64 {
	sum, n := 0.0, 0
	for _, b := range names {
		if w, ok := a.held[b]; ok {
			sum += w
			n++
		}
	}
	if n == 0 || sum <= 0 {
		return 1
	}
	return sum / float64(n)
}

func (a *Assigner) heldOr(b string, fallback float64) float64 {
	if w, ok := a.held[b]; ok {
		return w
	}
	return fallback
}

// baseline is the degraded-mode target weight for one blind backend:
// uniform (the anchor) by default, or the configured locality split
// renormalised to the anchor's scale.
func (a *Assigner) baseline(b string, names []string, anchor float64) float64 {
	if len(a.cfg.BaselineWeights) == 0 {
		return anchor
	}
	sum := 0.0
	for _, n := range names {
		sum += a.cfg.BaselineWeights[n]
	}
	if sum <= 0 {
		return anchor
	}
	return a.cfg.BaselineWeights[b] / sum * float64(len(names)) * anchor
}

// Forget implements core.Assigner.
func (a *Assigner) Forget(backend string) {
	delete(a.held, backend)
	a.inner.Forget(backend)
}

// Inner exposes the wrapped assigner for instrumentation and tests.
func (a *Assigner) Inner() core.Assigner { return a.inner }

// FrozenRounds returns how many rounds the quorum froze.
func (a *Assigner) FrozenRounds() float64 { return a.frozen.Value() }
