package guard

import (
	"math"
	"testing"
	"time"

	"l3/internal/smi"
)

func newSplit(weights ...int64) *smi.TrafficSplit {
	ts := &smi.TrafficSplit{Name: "t", RootService: "svc"}
	names := []string{"a", "b", "c", "d"}
	for i, w := range weights {
		ts.Backends = append(ts.Backends, smi.Backend{Service: names[i], Weight: w})
	}
	return ts
}

func TestWriteGateRejectsInvalidVectors(t *testing.T) {
	g := NewWriteGate(Config{}, nil)
	ts := newSplit(500, 500)
	cases := []map[string]float64{
		{"a": math.NaN(), "b": 1},
		{"a": math.Inf(1), "b": 1},
		{"a": -1, "b": 1},
		{"a": 0, "b": 0},
		{},
	}
	for i, w := range cases {
		if _, ok := g.Guard(0, ts, w); ok {
			t.Errorf("case %d: invalid vector accepted: %v", i, w)
		}
	}
	if g.RejectedTotal() != float64(len(cases)) {
		t.Fatalf("RejectedTotal = %v, want %d", g.RejectedTotal(), len(cases))
	}
}

func TestWriteGateScalesAndPreservesSum(t *testing.T) {
	g := NewWriteGate(Config{WeightScale: 1000, MaxShareDelta: 1}, nil)
	ts := newSplit(0, 0, 0)
	ints, ok := g.Guard(0, ts, map[string]float64{"a": 1, "b": 1, "c": 2})
	if !ok {
		t.Fatal("valid vector suppressed")
	}
	if ints["a"] != 250 || ints["b"] != 250 || ints["c"] != 500 {
		t.Fatalf("ints = %v, want 250/250/500", ints)
	}
	if err := ts.ApplyWeights(ints); err != nil {
		t.Fatal(err)
	}
	if err := ts.CheckScaledSum(1000); err != nil {
		t.Fatal(err)
	}
}

func TestWriteGateClampsShareDelta(t *testing.T) {
	g := NewWriteGate(Config{WeightScale: 1000, MaxShareDelta: 0.1}, nil)
	// Current split: 50/50. Proposal: 90/10 — a 0.4 share move, clamped to
	// 0.1 per round: 60/40.
	ts := newSplit(500, 500)
	ints, ok := g.Guard(0, ts, map[string]float64{"a": 9, "b": 1})
	if !ok {
		t.Fatal("clamped vector suppressed")
	}
	if ints["a"] != 600 || ints["b"] != 400 {
		t.Fatalf("ints = %v, want 600/400", ints)
	}
	if g.ClampedTotal() != 1 {
		t.Fatalf("ClampedTotal = %v, want 1", g.ClampedTotal())
	}
	// Repeated rounds converge to the proposal despite the clamp.
	for i := 0; i < 10; i++ {
		if ints, ok = g.Guard(0, ts, map[string]float64{"a": 9, "b": 1}); ok {
			if err := ts.ApplyWeights(ints); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := ts.Backends[0].Weight; got != 900 {
		t.Fatalf("converged a = %v, want 900", got)
	}
}

func TestWriteGateSuppressesNoOpWrites(t *testing.T) {
	g := NewWriteGate(Config{WeightScale: 1000, MaxShareDelta: 1}, nil)
	ts := newSplit(250, 750)
	if _, ok := g.Guard(0, ts, map[string]float64{"a": 1, "b": 3}); ok {
		t.Fatal("no-op write not suppressed")
	}
	if g.SuppressedTotal() != 1 {
		t.Fatalf("SuppressedTotal = %v, want 1", g.SuppressedTotal())
	}
	// A genuinely different vector still goes through.
	if _, ok := g.Guard(0, ts, map[string]float64{"a": 3, "b": 1}); !ok {
		t.Fatal("changed vector suppressed")
	}
}

func TestWriteGateObserveTracksRounds(t *testing.T) {
	g := NewWriteGate(Config{}, nil)
	if _, ok := g.LastRound(); ok {
		t.Fatal("LastRound before any Observe")
	}
	g.Observe(42 * time.Second)
	if last, ok := g.LastRound(); !ok || last != 42*time.Second {
		t.Fatalf("LastRound = %v, %v", last, ok)
	}
	// Guard itself counts as a round heartbeat.
	g.Guard(50*time.Second, newSplit(1, 1), map[string]float64{"a": 1, "b": 1})
	if last, _ := g.LastRound(); last != 50*time.Second {
		t.Fatalf("LastRound after Guard = %v, want 50s", last)
	}
}
