package guard

import (
	"time"

	"l3/internal/clock"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
)

// Watchdog detects a stalled reconcile loop — no write gate has observed a
// round for WatchdogTTL — and degrades the managed TrafficSplits to the
// baseline split (uniform, or Config.BaselineWeights), so a dead controller
// leaves behind a safe static split instead of whatever weights it last
// wrote. It re-arms automatically once rounds resume.
type Watchdog struct {
	clk    clock.Clock
	splits *smi.Store
	gates  []*WriteGate
	cfg    Config
	filter func(name string) bool

	timer    clock.Timer
	start    time.Duration
	degraded bool
	degrades *metrics.Counter
}

// NewWatchdog builds a watchdog over the given write gates (at least one),
// on the simulation engine's virtual clock. filter restricts which splits
// are degraded on a stall (nil = all). reg receives the watchdog's counter
// when non-nil.
func NewWatchdog(engine *sim.Engine, splits *smi.Store, cfg Config, reg *metrics.Registry, filter func(name string) bool, gates ...*WriteGate) *Watchdog {
	if engine == nil {
		panic("guard: NewWatchdog requires engine, splits and at least one gate")
	}
	return NewWatchdogClock(clock.Sim(engine), splits, cfg, reg, filter, gates...)
}

// NewWatchdogClock builds a watchdog on an arbitrary clock. Single-threaded
// like the rest of the control plane: run it on the clock that drives the
// controller whose stalls it guards.
func NewWatchdogClock(clk clock.Clock, splits *smi.Store, cfg Config, reg *metrics.Registry, filter func(name string) bool, gates ...*WriteGate) *Watchdog {
	if clk == nil || splits == nil || len(gates) == 0 {
		panic("guard: NewWatchdog requires a clock, splits and at least one gate")
	}
	w := &Watchdog{clk: clk, splits: splits, gates: gates, cfg: cfg.withDefaults(), filter: filter}
	if reg == nil {
		w.degrades = &metrics.Counter{}
	} else {
		w.degrades = reg.Counter(MetricWatchdogDegradesTotal, nil)
	}
	return w
}

// Start arms the watchdog; the stall check runs at a third of the TTL.
func (w *Watchdog) Start() {
	w.start = w.clk.Now()
	interval := w.cfg.WatchdogTTL / 3
	if interval < time.Second {
		interval = time.Second
	}
	w.timer = w.clk.Every(interval, w.tick)
}

// Stop disarms the watchdog.
func (w *Watchdog) Stop() {
	if w.timer != nil {
		w.timer.Cancel()
		w.timer = nil
	}
}

func (w *Watchdog) tick() {
	now := w.clk.Now()
	var last time.Duration
	have := false
	for _, g := range w.gates {
		if t, ok := g.LastRound(); ok && (!have || t > last) {
			last = t
			have = true
		}
	}
	if !have {
		last = w.start // grace period from arming until the first round
	}
	if now-last <= w.cfg.WatchdogTTL {
		w.degraded = false
		return
	}
	if w.degraded {
		return // already degraded for this stall; write the baseline once
	}
	w.degraded = true
	w.degrades.Inc()
	for _, ts := range w.splits.List() {
		if w.filter != nil && !w.filter(ts.Name) {
			continue
		}
		w.degradeSplit(ts)
	}
}

// degradeSplit writes the baseline split: uniform shares, or the configured
// locality baseline, scaled to WeightScale.
func (w *Watchdog) degradeSplit(ts *smi.TrafficSplit) {
	if len(ts.Backends) == 0 {
		return
	}
	baseline := make(map[string]float64, len(ts.Backends))
	for _, b := range ts.Backends {
		bw := 1.0
		if len(w.cfg.BaselineWeights) > 0 {
			bw = w.cfg.BaselineWeights[b.Service]
		}
		baseline[b.Service] = bw
	}
	ints, err := smi.ScaleWeights(baseline, w.cfg.WeightScale)
	if err != nil {
		// A degenerate baseline (all zero) falls back to uniform.
		for b := range baseline {
			baseline[b] = 1
		}
		if ints, err = smi.ScaleWeights(baseline, w.cfg.WeightScale); err != nil {
			return
		}
	}
	if err := ts.ApplyWeights(ints); err != nil {
		return
	}
	_ = w.splits.Update(ts)
}

// Degraded reports whether the watchdog currently holds splits degraded.
func (w *Watchdog) Degraded() bool { return w.degraded }

// DegradesTotal returns how many stalls triggered a baseline write.
func (w *Watchdog) DegradesTotal() float64 { return w.degrades.Value() }
