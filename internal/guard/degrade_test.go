package guard

import (
	"math"
	"sort"
	"testing"
	"time"

	"l3/internal/core"
)

// spyAssigner records the backends it was asked about and returns canned
// weights (default 1) so tests can observe exactly what reaches the inner
// algorithm.
type spyAssigner struct {
	calls   []map[string]core.BackendMetrics
	weights map[string]float64
	forgot  []string
}

func (s *spyAssigner) Assign(now time.Duration, m map[string]core.BackendMetrics) map[string]float64 {
	s.calls = append(s.calls, m)
	out := make(map[string]float64, len(m))
	for b := range m {
		if w, ok := s.weights[b]; ok {
			out[b] = w
		} else {
			out[b] = 1
		}
	}
	return out
}

func (s *spyAssigner) Forget(b string) { s.forgot = append(s.forgot, b) }

func (s *spyAssigner) lastCall(t *testing.T) []string {
	t.Helper()
	if len(s.calls) == 0 {
		t.Fatal("inner assigner never called")
	}
	var names []string
	for b := range s.calls[len(s.calls)-1] {
		names = append(names, b)
	}
	sort.Strings(names)
	return names
}

func fresh(at time.Duration) core.BackendMetrics {
	return core.BackendMetrics{HasTraffic: true, RPS: 10, LastSample: at}
}

func TestAssignerFreshPassesThrough(t *testing.T) {
	inner := &spyAssigner{weights: map[string]float64{"a": 2, "b": 3}}
	a := NewAssigner(inner, Config{}, nil)
	now := 60 * time.Second
	out := a.Assign(now, map[string]core.BackendMetrics{
		"a": fresh(now), "b": fresh(now),
	})
	if out["a"] != 2 || out["b"] != 3 {
		t.Fatalf("out = %v, want inner weights 2/3", out)
	}
	if got := inner.lastCall(t); len(got) != 2 {
		t.Fatalf("inner saw %v, want both backends", got)
	}
}

func TestAssignerHoldsStaleBackend(t *testing.T) {
	inner := &spyAssigner{weights: map[string]float64{"a": 2, "b": 8}}
	a := NewAssigner(inner, Config{StaleAfter: 15 * time.Second, BlindAfter: time.Hour}, nil)

	// Round 1: both fresh, weights land at 2/8.
	now := 60 * time.Second
	a.Assign(now, map[string]core.BackendMetrics{"a": fresh(now), "b": fresh(now)})

	// Round 2: b's data is 20s old — stale. Inner only sees a; b holds 8.
	now = 80 * time.Second
	inner.weights["a"] = 4
	out := a.Assign(now, map[string]core.BackendMetrics{
		"a": fresh(now), "b": fresh(60 * time.Second),
	})
	if got := inner.lastCall(t); len(got) != 1 || got[0] != "a" {
		t.Fatalf("inner saw %v, want only a", got)
	}
	if out["a"] != 4 || out["b"] != 8 {
		t.Fatalf("out = %v, want a=4 (fresh), b=8 (held)", out)
	}
	if a.holds.Value() != 1 {
		t.Fatalf("holds = %v, want 1", a.holds.Value())
	}
}

func TestAssignerStarvedAndResetSeenHold(t *testing.T) {
	inner := &spyAssigner{}
	// Quorum 0.3 so one fresh backend of three keeps the round live; the
	// degraded backends then hold individually instead of freezing the round.
	a := NewAssigner(inner, Config{Quorum: 0.3}, nil)
	now := 60 * time.Second
	a.Assign(now, map[string]core.BackendMetrics{"a": fresh(now), "b": fresh(now), "c": fresh(now)})

	now = 65 * time.Second
	starved := core.BackendMetrics{LastSample: now, Starved: true}
	resetSeen := fresh(now)
	resetSeen.ResetSeen = true
	a.Assign(now, map[string]core.BackendMetrics{"a": starved, "b": resetSeen, "c": fresh(now)})
	if got := inner.lastCall(t); len(got) != 1 || got[0] != "c" {
		t.Fatalf("inner saw %v, want only c (a starved, b reset-seen)", got)
	}
	if a.holds.Value() != 2 {
		t.Fatalf("holds = %v, want 2", a.holds.Value())
	}
}

func TestAssignerBlindDecaysTowardBaseline(t *testing.T) {
	inner := &spyAssigner{weights: map[string]float64{"a": 9, "b": 1}}
	a := NewAssigner(inner, Config{
		StaleAfter:    10 * time.Second,
		BlindAfter:    20 * time.Second,
		DecayFraction: 0.5,
		Quorum:        0.4, // one fresh of two passes
	}, nil)
	now := 60 * time.Second
	a.Assign(now, map[string]core.BackendMetrics{"a": fresh(now), "b": fresh(now)})

	// b blind: its weight decays toward the anchor (mean held = 5).
	now = 100 * time.Second
	out := a.Assign(now, map[string]core.BackendMetrics{
		"a": fresh(now), "b": fresh(60 * time.Second),
	})
	// cur=1, baseline=anchor=5, decay 0.5 -> 3.
	if math.Abs(out["b"]-3) > 1e-9 {
		t.Fatalf("blind weight = %v, want 3 (1 + 0.5*(5-1))", out["b"])
	}
	if a.decays.Value() != 1 {
		t.Fatalf("decays = %v, want 1", a.decays.Value())
	}

	// Repeated blindness converges to the baseline.
	for i := 0; i < 40; i++ {
		now += 5 * time.Second
		out = a.Assign(now, map[string]core.BackendMetrics{
			"a": fresh(now), "b": fresh(60 * time.Second),
		})
	}
	// Anchor moves as held weights change; the fixed point is uniform:
	// b's weight pulled to the mean of {9, b} means b -> 9.
	if math.Abs(out["b"]-out["a"]) > 0.1 {
		t.Fatalf("decay fixed point: a=%v b=%v, want converged", out["a"], out["b"])
	}
}

func TestAssignerBlindDecaysTowardConfiguredBaseline(t *testing.T) {
	inner := &spyAssigner{weights: map[string]float64{"a": 1, "b": 1}}
	a := NewAssigner(inner, Config{
		StaleAfter:      10 * time.Second,
		BlindAfter:      20 * time.Second,
		DecayFraction:   1, // jump straight to the baseline
		Quorum:          0.4,
		BaselineWeights: map[string]float64{"a": 3, "b": 1},
	}, nil)
	now := 60 * time.Second
	a.Assign(now, map[string]core.BackendMetrics{"a": fresh(now), "b": fresh(now)})

	now = 100 * time.Second
	out := a.Assign(now, map[string]core.BackendMetrics{
		"a": fresh(now), "b": fresh(60 * time.Second),
	})
	// Anchor = 1; baseline share of b = 1/4 of (2 backends * anchor) = 0.5.
	if math.Abs(out["b"]-0.5) > 1e-9 {
		t.Fatalf("baseline-decayed weight = %v, want 0.5", out["b"])
	}
}

func TestAssignerQuorumFreeze(t *testing.T) {
	inner := &spyAssigner{weights: map[string]float64{"a": 2, "b": 4, "c": 6}}
	a := NewAssigner(inner, Config{StaleAfter: 10 * time.Second, BlindAfter: time.Hour, Quorum: 0.5}, nil)
	now := 60 * time.Second
	all := map[string]core.BackendMetrics{"a": fresh(now), "b": fresh(now), "c": fresh(now)}
	a.Assign(now, all)
	innerCalls := len(inner.calls)

	// 1 fresh of 3 < 0.5 quorum: the round freezes, the inner assigner is
	// not consulted, every backend keeps its held weight.
	now = 90 * time.Second
	old := fresh(60 * time.Second)
	out := a.Assign(now, map[string]core.BackendMetrics{
		"a": fresh(now), "b": old, "c": old,
	})
	if len(inner.calls) != innerCalls {
		t.Fatal("inner assigner consulted during a frozen round")
	}
	if out["a"] != 2 || out["b"] != 4 || out["c"] != 6 {
		t.Fatalf("frozen round = %v, want held 2/4/6", out)
	}
	if a.FrozenRounds() != 1 {
		t.Fatalf("FrozenRounds = %v, want 1", a.FrozenRounds())
	}

	// 2 fresh of 3 passes quorum again: b is stale (held), a and c fresh.
	now = 95 * time.Second
	out = a.Assign(now, map[string]core.BackendMetrics{
		"a": fresh(now), "b": old, "c": fresh(now),
	})
	if len(inner.calls) != innerCalls+1 {
		t.Fatal("inner assigner not consulted after quorum recovered")
	}
	if out["b"] != 4 {
		t.Fatalf("stale b = %v, want held 4", out["b"])
	}
}

func TestAssignerColdStartPassesThrough(t *testing.T) {
	inner := &spyAssigner{}
	a := NewAssigner(inner, Config{}, nil)
	// Never-scraped backends (LastSample 0) are fresh by definition: no
	// quorum freeze, the inner assigner's cold-start behaviour applies.
	out := a.Assign(0, map[string]core.BackendMetrics{"a": {}, "b": {}})
	if len(out) != 2 || a.FrozenRounds() != 0 {
		t.Fatalf("cold start: out=%v frozen=%v", out, a.FrozenRounds())
	}
	if got := inner.lastCall(t); len(got) != 2 {
		t.Fatalf("inner saw %v, want both", got)
	}
}

func TestAssignerForget(t *testing.T) {
	inner := &spyAssigner{}
	a := NewAssigner(inner, Config{}, nil)
	now := 60 * time.Second
	a.Assign(now, map[string]core.BackendMetrics{"a": fresh(now)})
	a.Forget("a")
	if len(inner.forgot) != 1 || inner.forgot[0] != "a" {
		t.Fatalf("inner.forgot = %v", inner.forgot)
	}
	if _, ok := a.held["a"]; ok {
		t.Fatal("held weight survived Forget")
	}
}
