package guard

import (
	"testing"
	"time"

	"l3/internal/sim"
	"l3/internal/smi"
)

func TestWatchdogDegradesStalledSplit(t *testing.T) {
	engine := sim.NewEngine()
	splits := smi.NewStore()
	ts := newSplit(900, 100)
	if err := splits.Create(ts); err != nil {
		t.Fatal(err)
	}
	gate := NewWriteGate(Config{}, nil)
	w := NewWatchdog(engine, splits, Config{WatchdogTTL: 30 * time.Second, WeightScale: 1000}, nil, nil, gate)
	w.Start()

	// Rounds keep coming for a minute: no degrade.
	stop := engine.Every(5*time.Second, func() {
		if engine.Now() <= time.Minute {
			gate.Observe(engine.Now())
		}
	})
	defer stop.Cancel()
	engine.RunUntil(time.Minute)
	if w.Degraded() || w.DegradesTotal() != 0 {
		t.Fatalf("degraded while rounds flowing: %v/%v", w.Degraded(), w.DegradesTotal())
	}

	// Rounds stop at 1m; the TTL expires at 1m30s.
	engine.RunUntil(2 * time.Minute)
	if !w.Degraded() {
		t.Fatal("watchdog did not degrade after stall")
	}
	if w.DegradesTotal() != 1 {
		t.Fatalf("DegradesTotal = %v, want 1 (baseline written once per stall)", w.DegradesTotal())
	}
	got, _ := splits.Get("t")
	if got.Backends[0].Weight != 500 || got.Backends[1].Weight != 500 {
		t.Fatalf("degraded split = %v, want uniform 500/500", got.Backends)
	}
}

func TestWatchdogUsesBaselineWeightsAndRearms(t *testing.T) {
	engine := sim.NewEngine()
	splits := smi.NewStore()
	if err := splits.Create(newSplit(900, 100)); err != nil {
		t.Fatal(err)
	}
	gate := NewWriteGate(Config{}, nil)
	w := NewWatchdog(engine, splits, Config{
		WatchdogTTL:     10 * time.Second,
		WeightScale:     1000,
		BaselineWeights: map[string]float64{"a": 3, "b": 1},
	}, nil, nil, gate)
	w.Start()

	engine.RunUntil(time.Minute)
	if !w.Degraded() {
		t.Fatal("no degrade (grace period never expired?)")
	}
	got, _ := splits.Get("t")
	if got.Backends[0].Weight != 750 || got.Backends[1].Weight != 250 {
		t.Fatalf("degraded split = %v, want locality baseline 750/250", got.Backends)
	}

	// Rounds resume: the watchdog re-arms, and a second stall degrades again.
	engine.At(engine.Now()+time.Second, func() { gate.Observe(engine.Now()) })
	engine.RunUntil(engine.Now() + 5*time.Second)
	if w.Degraded() {
		t.Fatal("watchdog did not re-arm after rounds resumed")
	}
	engine.RunUntil(engine.Now() + time.Minute)
	if w.DegradesTotal() != 2 {
		t.Fatalf("DegradesTotal = %v, want 2 after second stall", w.DegradesTotal())
	}
}

func TestWatchdogFilterLimitsScope(t *testing.T) {
	engine := sim.NewEngine()
	splits := smi.NewStore()
	managed := newSplit(900, 100)
	other := &smi.TrafficSplit{Name: "other", RootService: "o",
		Backends: []smi.Backend{{Service: "x", Weight: 7}}}
	if err := splits.Create(managed); err != nil {
		t.Fatal(err)
	}
	if err := splits.Create(other); err != nil {
		t.Fatal(err)
	}
	gate := NewWriteGate(Config{}, nil)
	w := NewWatchdog(engine, splits, Config{WatchdogTTL: 10 * time.Second, WeightScale: 1000}, nil,
		func(name string) bool { return name == "t" }, gate)
	w.Start()
	engine.RunUntil(time.Minute)
	got, _ := splits.Get("other")
	if got.Backends[0].Weight != 7 {
		t.Fatalf("filtered-out split mutated: %v", got.Backends)
	}
	got, _ = splits.Get("t")
	if got.Backends[0].Weight != 500 {
		t.Fatalf("managed split not degraded: %v", got.Backends)
	}
}
