// Package guard is the control-plane hardening layer: it defends L3's
// reconcile loop against the telemetry failures chaos injects (and
// production produces) at the three points where bad data becomes bad
// traffic steering.
//
//   - Ingestion (Hygiene, a timeseries.Gate): NaN/Inf/negative samples are
//     rejected before they can poison EWMAs, counter resets are detected and
//     spliced onto a cumulative offset (Prometheus rate()-style), duplicate
//     and out-of-order scrape timestamps are tolerated, and per-series
//     freshness is tracked.
//   - Reweighting (Assigner, wrapping a core.Assigner): each backend is
//     classified fresh / stale / blind from its sample freshness. Stale
//     backends hold their last-good weight instead of relaxing toward
//     defaults; blind backends decay toward a uniform-or-locality baseline;
//     and when fewer than a quorum fraction of backends report, reweighting
//     freezes entirely rather than amplify the survivors.
//   - Writes (WriteGate, a core.WriteGuard, plus Watchdog): weight vectors
//     are validated (finite, non-negative, share-preserving under integer
//     scaling), per-round share movement is clamped beyond Algorithm 2's
//     damping, no-op churn is suppressed, and a watchdog degrades managed
//     splits to the baseline when the reconcile loop stalls.
//
// Everything here runs on the scrape/control path (once per scrape or
// reconcile interval); the request fast path never touches it.
package guard

import "time"

// Metric families the guard layer exports about its own interventions.
const (
	// MetricRejectedTotal counts samples hygiene rejected, labelled with
	// reason (nan, negative, outoforder, duplicate, anomaly).
	MetricRejectedTotal = "guard_samples_rejected_total"
	// MetricResetsTotal counts counter resets detected and spliced.
	MetricResetsTotal = "guard_counter_resets_total"
	// MetricHoldsTotal counts backend-rounds where a stale backend held its
	// last-good weight.
	MetricHoldsTotal = "guard_stale_holds_total"
	// MetricDecaysTotal counts backend-rounds where a blind backend decayed
	// toward the baseline.
	MetricDecaysTotal = "guard_blind_decays_total"
	// MetricFrozenTotal counts reconcile rounds frozen by the
	// partial-visibility quorum.
	MetricFrozenTotal = "guard_quorum_frozen_rounds_total"
	// MetricWriteSuppressedTotal counts no-op writes suppressed by the gate.
	MetricWriteSuppressedTotal = "guard_writes_suppressed_total"
	// MetricWriteClampedTotal counts rounds where the gate clamped per-round
	// share movement.
	MetricWriteClampedTotal = "guard_writes_clamped_total"
	// MetricWriteRejectedTotal counts weight vectors the gate rejected
	// outright (non-finite, negative or mass-less).
	MetricWriteRejectedTotal = "guard_writes_rejected_total"
	// MetricWatchdogDegradesTotal counts watchdog firings that degraded
	// splits to the baseline.
	MetricWatchdogDegradesTotal = "guard_watchdog_degrades_total"
)

// Config parameterises the guard layer. The zero value takes the defaults
// documented per field (applied by withDefaults).
type Config struct {
	// ResetFraction classifies a counter decrease: a new value at or below
	// ResetFraction of the previous one is a genuine reset (spliced); a
	// shallower decrease is a corrupt sample (rejected). Default 0.5.
	ResetFraction float64
	// StaleAfter is the sample age beyond which a backend is stale and
	// holds its last-good weight. Default 15s (three scrape intervals).
	StaleAfter time.Duration
	// BlindAfter is the sample age beyond which a stale backend is blind
	// and decays toward the baseline. Default 30s.
	BlindAfter time.Duration
	// DecayFraction is the per-round step a blind backend takes toward the
	// baseline weight, in (0, 1]. Default 0.2.
	DecayFraction float64
	// Quorum is the minimum fraction of backends that must report fresh
	// data for reweighting to proceed; below it the round freezes. Default
	// 0.5.
	Quorum float64
	// BaselineWeights is the degraded-mode target split (relative weights,
	// e.g. a locality preference). Empty means uniform.
	BaselineWeights map[string]float64
	// WeightScale is the integer scale of gated TrafficSplit writes.
	// Default 1000.
	WeightScale int64
	// MaxShareDelta clamps how far one backend's traffic share may move in
	// a single write, beyond Algorithm 2's damping. Default 0.25.
	MaxShareDelta float64
	// WatchdogTTL is how long the reconcile loop may stall before the
	// watchdog degrades managed splits to the baseline. Default 30s.
	WatchdogTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.ResetFraction <= 0 || c.ResetFraction >= 1 {
		c.ResetFraction = 0.5
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 15 * time.Second
	}
	if c.BlindAfter <= c.StaleAfter {
		c.BlindAfter = 2 * c.StaleAfter
	}
	if c.DecayFraction <= 0 || c.DecayFraction > 1 {
		c.DecayFraction = 0.2
	}
	if c.Quorum <= 0 || c.Quorum > 1 {
		c.Quorum = 0.5
	}
	if c.WeightScale <= 0 {
		c.WeightScale = 1000
	}
	if c.MaxShareDelta <= 0 || c.MaxShareDelta > 1 {
		c.MaxShareDelta = 0.25
	}
	if c.WatchdogTTL <= 0 {
		c.WatchdogTTL = 30 * time.Second
	}
	return c
}
