package guard

import (
	"math"
	"testing"
	"time"

	"l3/internal/metrics"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestHygieneRejectsGarbageValues(t *testing.T) {
	h := NewHygiene(Config{}, nil)
	lbl := metrics.Labels{"backend": "b"}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -0.001} {
		if _, ok := h.Admit("m", lbl, metrics.KindCounter, sec(5), v); ok {
			t.Errorf("Admit(%v) accepted", v)
		}
	}
	if got := h.RejectedTotal(); got != 5 {
		t.Fatalf("RejectedTotal = %v, want 5", got)
	}
	if _, ok := h.Admit("m", lbl, metrics.KindCounter, sec(5), 10); !ok {
		t.Fatal("clean sample rejected")
	}
}

func TestHygieneDuplicateAndOutOfOrder(t *testing.T) {
	h := NewHygiene(Config{}, nil)
	lbl := metrics.Labels{"backend": "b"}
	if _, ok := h.Admit("m", lbl, metrics.KindCounter, sec(5), 10); !ok {
		t.Fatal("first sample rejected")
	}
	// Duplicate timestamp: first write wins, even with a different value.
	if _, ok := h.Admit("m", lbl, metrics.KindCounter, sec(5), 11); ok {
		t.Fatal("duplicate timestamp accepted")
	}
	// Out of order: the frontier only moves forward.
	if _, ok := h.Admit("m", lbl, metrics.KindCounter, sec(4), 12); ok {
		t.Fatal("out-of-order sample accepted")
	}
	// The frontier itself is untouched: the next in-order sample works.
	if v, ok := h.Admit("m", lbl, metrics.KindCounter, sec(10), 20); !ok || v != 20 {
		t.Fatalf("in-order sample after rejections: %v, %v", v, ok)
	}
	if got := h.RejectedTotal(); got != 2 {
		t.Fatalf("RejectedTotal = %v, want 2", got)
	}
}

func TestHygieneSplicesCounterReset(t *testing.T) {
	h := NewHygiene(Config{}, nil)
	lbl := metrics.Labels{"backend": "b"}
	admit := func(at int, v float64) float64 {
		t.Helper()
		got, ok := h.Admit("m", lbl, metrics.KindCounter, sec(at), v)
		if !ok {
			t.Fatalf("Admit(t=%ds, v=%v) rejected", at, v)
		}
		return got
	}
	admit(5, 100)
	admit(10, 200)
	// Restart: the counter re-exposes from ~0. Spliced onto the offset the
	// stored series keeps increasing.
	if got := admit(15, 50); got != 250 {
		t.Fatalf("spliced value = %v, want 250 (200 offset + 50)", got)
	}
	if got := admit(20, 150); got != 350 {
		t.Fatalf("post-reset value = %v, want 350", got)
	}
	if h.ResetsTotal() != 1 {
		t.Fatalf("ResetsTotal = %v, want 1", h.ResetsTotal())
	}
	// A second reset stacks offsets.
	if got := admit(25, 10); got != 360 {
		t.Fatalf("second splice = %v, want 360 (350 offset + 10)", got)
	}
	rt, ok := h.LastReset(metrics.Labels{"backend": "b"})
	if !ok || rt != sec(25) {
		t.Fatalf("LastReset = %v, %v; want 25s", rt, ok)
	}
	if _, ok := h.LastReset(metrics.Labels{"backend": "other"}); ok {
		t.Fatal("LastReset matched a different backend")
	}
}

func TestHygieneShallowDecreaseIsAnomalyNotReset(t *testing.T) {
	h := NewHygiene(Config{}, nil)
	lbl := metrics.Labels{"backend": "b"}
	h.Admit("m", lbl, metrics.KindCounter, sec(5), 1000)
	// 900 is 90% of the previous value: restarted counters re-expose near
	// zero, so this is a corrupt sample. Raw increase() would have treated
	// it as a reset and added 900 to the window's delta.
	if _, ok := h.Admit("m", lbl, metrics.KindCounter, sec(10), 900); ok {
		t.Fatal("shallow decrease accepted")
	}
	if h.ResetsTotal() != 0 {
		t.Fatalf("shallow decrease counted as reset")
	}
	// The frontier keeps the last good value: a resumed counter continues.
	if v, ok := h.Admit("m", lbl, metrics.KindCounter, sec(15), 1100); !ok || v != 1100 {
		t.Fatalf("resumed sample: %v, %v", v, ok)
	}
}

func TestHygieneGaugesMayDecrease(t *testing.T) {
	h := NewHygiene(Config{}, nil)
	lbl := metrics.Labels{"backend": "b"}
	h.Admit("g", lbl, metrics.KindGauge, sec(5), 10)
	if v, ok := h.Admit("g", lbl, metrics.KindGauge, sec(10), 2); !ok || v != 2 {
		t.Fatalf("gauge decrease: %v, %v; want 2, true", v, ok)
	}
	if h.ResetsTotal() != 0 || h.RejectedTotal() != 0 {
		t.Fatal("gauge decrease miscounted as reset or rejection")
	}
}

func TestHygieneCountersInRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	h := NewHygiene(Config{}, reg)
	h.Admit("m", nil, metrics.KindCounter, sec(5), math.NaN())
	if got := reg.Counter(MetricRejectedTotal, metrics.Labels{"reason": "nan"}).Value(); got != 1 {
		t.Fatalf("registry nan rejection counter = %v, want 1", got)
	}
}
