package guard

import (
	"math"
	"sort"
	"sync"
	"time"

	"l3/internal/metrics"
	"l3/internal/smi"
)

// WriteGate implements core.WriteGuard: the last line of defense between a
// computed weight vector and the TrafficSplit store. It rejects non-finite,
// negative or mass-less vectors, clamps per-round traffic-share movement
// (beyond Algorithm 2's damping, which bounds global rate change but not a
// single backend's share velocity), scales shares to integers through
// smi.ScaleWeights (preserving the sum invariant), and suppresses writes
// that would not change the stored split.
type WriteGate struct {
	mu        sync.Mutex
	cfg       Config
	lastRound time.Duration
	haveRound bool

	suppressed, clamped, rejected *metrics.Counter
}

// NewWriteGate returns a write gate. reg receives the gate's own counters
// when non-nil.
func NewWriteGate(cfg Config, reg *metrics.Registry) *WriteGate {
	g := &WriteGate{cfg: cfg.withDefaults()}
	if reg == nil {
		g.suppressed, g.clamped, g.rejected = &metrics.Counter{}, &metrics.Counter{}, &metrics.Counter{}
	} else {
		g.suppressed = reg.Counter(MetricWriteSuppressedTotal, nil)
		g.clamped = reg.Counter(MetricWriteClampedTotal, nil)
		g.rejected = reg.Counter(MetricWriteRejectedTotal, nil)
	}
	return g
}

// Observe implements core.WriteGuard: it marks a live reconcile round, the
// heartbeat the watchdog listens for.
func (g *WriteGate) Observe(now time.Duration) {
	g.mu.Lock()
	g.lastRound = now
	g.haveRound = true
	g.mu.Unlock()
}

// LastRound returns the time of the last observed reconcile round.
func (g *WriteGate) LastRound() (time.Duration, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lastRound, g.haveRound
}

// Guard implements core.WriteGuard. ok=false means the round's write is
// suppressed (invalid vector or no-op churn); the caller must not mutate
// the split.
func (g *WriteGate) Guard(now time.Duration, ts *smi.TrafficSplit, weights map[string]float64) (map[string]int64, bool) {
	g.Observe(now)

	names := make([]string, 0, len(weights))
	sum := 0.0
	for b, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			g.rejected.Inc()
			return nil, false
		}
		names = append(names, b)
		sum += w
	}
	if len(names) == 0 || sum <= 0 {
		g.rejected.Inc()
		return nil, false
	}
	sort.Strings(names)

	// Proposed and current traffic shares.
	proposed := make(map[string]float64, len(names))
	for _, b := range names {
		proposed[b] = weights[b] / sum
	}
	current := make(map[string]int64, len(ts.Backends))
	var curTotal int64
	for _, be := range ts.Backends {
		current[be.Service] = be.Weight
		curTotal += be.Weight
	}

	// Per-round delta clamp: no backend's share moves more than
	// MaxShareDelta in one write. Only applicable once the split carries
	// weight (an inert all-zero split takes the proposal as-is).
	shares := proposed
	if curTotal > 0 {
		clamped := false
		next := make(map[string]float64, len(names))
		total := 0.0
		for _, b := range names {
			cur := float64(current[b]) / float64(curTotal)
			d := proposed[b] - cur
			if d > g.cfg.MaxShareDelta {
				d = g.cfg.MaxShareDelta
				clamped = true
			} else if d < -g.cfg.MaxShareDelta {
				d = -g.cfg.MaxShareDelta
				clamped = true
			}
			v := cur + d
			if v < 0 {
				v = 0
			}
			next[b] = v
			total += v
		}
		if clamped && total > 0 {
			for _, b := range names {
				next[b] /= total
			}
			shares = next
			g.clamped.Inc()
		}
	}

	ints, err := smi.ScaleWeights(shares, g.cfg.WeightScale)
	if err != nil {
		g.rejected.Inc()
		return nil, false
	}

	// No-op churn suppression: skip the write when every targeted backend
	// already carries exactly this weight.
	same := true
	for _, b := range names {
		if current[b] != ints[b] {
			same = false
			break
		}
	}
	if same {
		g.suppressed.Inc()
		return nil, false
	}
	return ints, true
}

// SuppressedTotal returns how many no-op writes were suppressed.
func (g *WriteGate) SuppressedTotal() float64 { return g.suppressed.Value() }

// ClampedTotal returns how many rounds had share movement clamped.
func (g *WriteGate) ClampedTotal() float64 { return g.clamped.Value() }

// RejectedTotal returns how many weight vectors were rejected outright.
func (g *WriteGate) RejectedTotal() float64 { return g.rejected.Value() }
