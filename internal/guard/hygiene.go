package guard

import (
	"math"
	"sync"
	"time"

	"l3/internal/metrics"
)

// Hygiene is the ingestion gate: install it on a timeseries.DB with SetGate
// and every scraped sample is screened before storage. It implements
// timeseries.Gate and core.ResetSource.
//
// Admission rules, per series:
//
//   - NaN, ±Inf and negative values are rejected (one poisoned sample would
//     otherwise NaN the EWMAs permanently — EWMA(NaN) never recovers).
//   - A duplicate scrape timestamp is rejected; the first write wins.
//   - An out-of-order timestamp is rejected (Prometheus semantics: the
//     series frontier only moves forward), but the rejection is counted so
//     skew is observable rather than silent.
//   - A counter falling to at most ResetFraction of its previous value is a
//     genuine restart: the previous raw value is added to a cumulative
//     offset and the series continues spliced, so windowed increases never
//     misread the restart as negative growth. The splice time is recorded
//     for the collector's ResetSeen flag.
//   - A shallower counter decrease is not a plausible restart (restarted
//     counters re-expose from ~0) and is rejected as an anomaly — this is
//     what stops raw increase()'s "any decrease is a reset" heuristic from
//     double-counting corrupt samples.
type Hygiene struct {
	mu     sync.Mutex
	cfg    Config
	series map[string]*seriesState

	rejNaN, rejNegative, rejOutOfOrder, rejDuplicate, rejAnomaly *metrics.Counter
	resets                                                       *metrics.Counter
}

type seriesState struct {
	labels    metrics.Labels
	lastT     time.Duration
	lastRaw   float64
	offset    float64
	lastReset time.Duration
	hasReset  bool
}

// NewHygiene returns a hygiene gate. reg receives the gate's own counters
// when non-nil (they are created eagerly so registration order is stable).
func NewHygiene(cfg Config, reg *metrics.Registry) *Hygiene {
	h := &Hygiene{cfg: cfg.withDefaults(), series: make(map[string]*seriesState)}
	counter := func(reason string) *metrics.Counter {
		if reg == nil {
			return &metrics.Counter{}
		}
		return reg.Counter(MetricRejectedTotal, metrics.Labels{"reason": reason})
	}
	h.rejNaN = counter("nan")
	h.rejNegative = counter("negative")
	h.rejOutOfOrder = counter("outoforder")
	h.rejDuplicate = counter("duplicate")
	h.rejAnomaly = counter("anomaly")
	if reg == nil {
		h.resets = &metrics.Counter{}
	} else {
		h.resets = reg.Counter(MetricResetsTotal, nil)
	}
	return h
}

// Admit implements timeseries.Gate.
func (h *Hygiene) Admit(name string, labels metrics.Labels, kind metrics.Kind, t time.Duration, v float64) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.rejNaN.Inc()
		return 0, false
	}
	if v < 0 {
		// Every series in this system is non-negative by construction
		// (counters by contract, the gauges count in-flight requests and
		// leadership), so a negative value is corruption, not data.
		h.rejNegative.Inc()
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	key := name + "\x00" + labels.Key()
	st, ok := h.series[key]
	if !ok {
		st = &seriesState{labels: labels.Clone()}
		h.series[key] = st
		st.lastT = t
		st.lastRaw = v
		return v, true
	}
	if t == st.lastT {
		h.rejDuplicate.Inc()
		return 0, false
	}
	if t < st.lastT {
		h.rejOutOfOrder.Inc()
		return 0, false
	}
	if kind == metrics.KindCounter && v < st.lastRaw {
		if v <= st.lastRaw*h.cfg.ResetFraction {
			// Genuine restart: splice onto the cumulative offset.
			st.offset += st.lastRaw
			st.lastReset = t
			st.hasReset = true
			h.resets.Inc()
		} else {
			h.rejAnomaly.Inc()
			return 0, false
		}
	}
	st.lastT = t
	st.lastRaw = v
	if kind == metrics.KindCounter {
		v += st.offset
	}
	return v, true
}

// LastReset implements core.ResetSource: the most recent splice time among
// series matching the label set (subset match).
func (h *Hygiene) LastReset(match metrics.Labels) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var best time.Duration
	any := false
	for _, st := range h.series {
		if st.hasReset && st.labels.Matches(match) {
			if !any || st.lastReset > best {
				best = st.lastReset
			}
			any = true
		}
	}
	return best, any
}

// RejectedTotal returns how many samples have been rejected, all reasons
// combined (for tests and reports).
func (h *Hygiene) RejectedTotal() float64 {
	return h.rejNaN.Value() + h.rejNegative.Value() + h.rejOutOfOrder.Value() +
		h.rejDuplicate.Value() + h.rejAnomaly.Value()
}

// ResetsTotal returns how many counter resets have been spliced.
func (h *Hygiene) ResetsTotal() float64 { return h.resets.Value() }
