package guard

import (
	"testing"
	"time"

	"l3/internal/core"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/timeseries"
)

// stack is one end-to-end control-plane read path: DB -> Collector ->
// Assigner, optionally with the guard layer (hygiene gate on the DB, reset
// source on the collector, degraded-mode wrapper around the assigner).
type stack struct {
	db        *timeseries.DB
	collector *core.Collector
	assigner  core.Assigner
	weighter  *core.Weighter
}

func newStack(guarded bool) *stack {
	db := timeseries.NewDB(time.Minute)
	collector := core.NewCollector(db)
	l3 := core.NewL3Assigner(core.WeightingConfig{}, core.RateControlConfig{}, false)
	s := &stack{db: db, collector: collector, weighter: l3.Weighter()}
	if guarded {
		hyg := NewHygiene(Config{}, nil)
		db.SetGate(hyg)
		collector.Resets = hyg
		s.assigner = NewAssigner(l3, Config{}, nil)
	} else {
		s.assigner = l3
	}
	return s
}

func (s *stack) ingest(at time.Duration, counter, inflight float64) {
	lbl := metrics.Labels{"service": "api", "backend": "b", "classification": mesh.ClassSuccess}
	s.db.AppendSample(mesh.MetricResponseTotal, lbl, metrics.KindCounter, at, counter)
	s.db.AppendSample(mesh.MetricInflight, metrics.Labels{"service": "api", "backend": "b"},
		metrics.KindGauge, at, inflight)
}

func (s *stack) round(at time.Duration) (core.BackendMetrics, float64) {
	m := s.collector.Collect(at, "api", []string{"b"})
	w := s.assigner.Assign(at, m)
	return m["b"], w["b"]
}

// TestEWMARegressionCounterReset pins the behavioural difference between the
// raw pipeline and the guarded one across a pod restart. A restart zeroes
// the backend's counters and loses the increments accrued since the last
// scrape, so the restart window's measured rate dips below the true traffic
// rate. The raw pipeline feeds that artificial dip into the RPS EWMA and
// moves the weight; the guarded pipeline splices the counter, flags the
// window via ResetSeen, and holds both the EWMAs and the weight until the
// reset ages out of the window.
func TestEWMARegressionCounterReset(t *testing.T) {
	raw, grd := newStack(false), newStack(true)

	// 20 rps steady; the pod restarts at ~12s losing ~80 increments, so the
	// 15 s scrape re-exposes from 20 instead of 200.
	type sample struct {
		at time.Duration
		v  float64
	}
	feed := []sample{
		{5 * time.Second, 0},
		{10 * time.Second, 100},
		{15 * time.Second, 20}, // restart: true counter would read 200
		{20 * time.Second, 120},
		{25 * time.Second, 220},
		{30 * time.Second, 320},
	}
	weights := map[string][]float64{}
	rpsEWMA := map[string][]float64{}
	for _, f := range feed {
		for name, s := range map[string]*stack{"raw": raw, "guarded": grd} {
			s.ingest(f.at, f.v, 5)
			_, w := s.round(f.at)
			weights[name] = append(weights[name], w)
			v, _ := s.weighter.View("b")
			rpsEWMA[name] = append(rpsEWMA[name], v.RPS)
		}
	}

	// Raw: the 15 s window rate is (100-0)+20 over 10 s = 12 rps, a dip from
	// the true 20; the EWMA absorbs it and the weight moves.
	if weights["raw"][2] == weights["raw"][1] {
		t.Fatal("raw weight unchanged across the reset dip (regression baseline broken)")
	}
	if rpsEWMA["raw"][2] <= rpsEWMA["raw"][1] {
		// The EWMA is still rising toward 20 from its 0 default; the dip
		// shows as a *smaller* rise than the guarded stack's held value
		// would have seen. Assert against the guarded twin below instead.
		t.Logf("raw EWMA: %v", rpsEWMA["raw"])
	}

	// Guarded: rounds 2 and 3 (reset inside the 10 s window) hold the
	// round-1 weight exactly, and the inner EWMAs never observe them.
	if weights["guarded"][2] != weights["guarded"][1] || weights["guarded"][3] != weights["guarded"][1] {
		t.Fatalf("guarded weight not held across reset: %v", weights["guarded"])
	}
	if rpsEWMA["guarded"][2] != rpsEWMA["guarded"][1] {
		t.Fatalf("guarded RPS EWMA observed the reset window: %v", rpsEWMA["guarded"])
	}

	// Both stacks resume: once the reset ages out (25 s: window (15,25])
	// the guarded stack observes again and weights move.
	if weights["guarded"][4] == weights["guarded"][1] {
		t.Fatalf("guarded stack never resumed after the reset: %v", weights["guarded"])
	}

	// The spliced store and the raw store agree on the final window's rate —
	// hygiene's difference is *when* it trusts data, not the splice math.
	rawM, _ := raw.round(30 * time.Second)
	grdM, _ := grd.round(30 * time.Second)
	if rawM.RPS != grdM.RPS {
		t.Fatalf("steady-state rates diverge: raw %v vs guarded %v", rawM.RPS, grdM.RPS)
	}
}

// TestEWMARegressionShallowDecrease pins the rate-explosion failure mode of
// raw reset handling. increase() treats ANY decrease as a reset and adds the
// full post-decrease value to the window's delta — correct for genuine
// restarts (counters re-expose near zero) but catastrophic for a corrupt
// sample that reads slightly low: a counter at 10100 mis-scraped as 9999
// injects ~10000 spurious increments into the window. Hygiene classifies the
// shallow decrease as an anomaly, rejects the sample, and the guarded
// pipeline never observes a spike.
func TestEWMARegressionShallowDecrease(t *testing.T) {
	raw, grd := newStack(false), newStack(true)

	type sample struct {
		at time.Duration
		v  float64
	}
	feed := []sample{
		{5 * time.Second, 10000},
		{10 * time.Second, 10100},
		{15 * time.Second, 9999}, // corrupt: 99% of the previous value
		{20 * time.Second, 10200},
		{25 * time.Second, 10300},
	}
	var rawMax, grdMax float64
	var grdWeights []float64
	for _, f := range feed {
		raw.ingest(f.at, f.v, 5)
		m, _ := raw.round(f.at)
		if m.HasTraffic && m.RPS > rawMax {
			rawMax = m.RPS
		}
		grd.ingest(f.at, f.v, 5)
		m, w := grd.round(f.at)
		if m.HasTraffic && m.RPS > grdMax {
			grdMax = m.RPS
		}
		grdWeights = append(grdWeights, w)
	}

	if rawMax < 500 {
		t.Fatalf("raw max RPS = %v, want an explosion >> true 20 rps (regression baseline broken)", rawMax)
	}
	if grdMax > 25 {
		t.Fatalf("guarded max RPS = %v, want <= true rate (~20 rps)", grdMax)
	}
	// Rejecting the corrupt sample leaves a one-sample window at 20 s; the
	// guarded stack holds through it (Starved) instead of relaxing.
	if grdWeights[3] != grdWeights[2] {
		t.Fatalf("guarded weight moved during the starved window: %v", grdWeights)
	}
	// And resumes at 25 s with a clean two-sample window.
	if grdWeights[4] == grdWeights[2] {
		t.Fatalf("guarded stack never resumed: %v", grdWeights)
	}
}
