// Package balancer implements the data-plane load-balancing strategies the
// paper evaluates or builds on:
//
//   - RoundRobin — Linkerd's baseline strategy and the paper's primary
//     comparison point.
//   - WeightedSplit — proportional distribution over TrafficSplit weights,
//     the mechanism L3 (and the C3 adaptation) steer through.
//   - P2C — power-of-two-choices over PeakEWMA-scored backends, Linkerd's
//     in-cluster per-request balancer, kept as an ablation baseline.
//   - PreferCluster — locality-style routing (cluster-local first), the
//     static strategy cloud meshes offer.
package balancer

import (
	"time"

	"l3/internal/ewma"
	"l3/internal/mesh"
	"l3/internal/sim"
	"l3/internal/smi"
)

// routeKey identifies per-(source cluster, service/backend) picker state
// without building a string per request: struct keys hash directly.
type routeKey struct {
	src  string
	name string
}

// RoundRobin cycles through a service's backends in order. State is kept
// per (source cluster, service) — one counter per client proxy, like a real
// mesh — and the strategy is deterministic.
type RoundRobin struct {
	counters map[routeKey]int
}

// NewRoundRobin returns a fresh round-robin picker.
func NewRoundRobin() *RoundRobin {
	return &RoundRobin{counters: make(map[routeKey]int)}
}

// Pick implements mesh.Picker.
func (r *RoundRobin) Pick(_ time.Duration, src, service string, backends []*mesh.Backend) *mesh.Backend {
	if len(backends) == 0 {
		return nil
	}
	key := routeKey{src, service}
	i := r.counters[key] % len(backends)
	r.counters[key]++
	return backends[i]
}

// WeightedSplit distributes requests proportionally to the weights of the
// service's TrafficSplit, implementing the SMI contract the paper's data
// plane enforces: a backend with twice the weight receives twice the
// traffic. Backends absent from the split (or with all-zero weights) fall
// back to uniform selection, mirroring how a mesh treats an inert split.
type WeightedSplit struct {
	splits *smi.Store
	name   func(src, service string) string
	rng    *sim.Rand
	// weights is Pick's scratch buffer; like the mesh that calls it, a
	// picker is single-threaded, so reusing it keeps picks allocation-free.
	weights []int64
}

// NewWeightedSplit returns a picker reading weights from splits. splitName
// maps (source cluster, service) to a TrafficSplit name; nil means a single
// global split named after the service. Multi-cluster deployments that run
// one L3 per cluster (as §3 describes for production) use per-source names
// so every cluster's split reflects latency as measured from that cluster.
func NewWeightedSplit(splits *smi.Store, rng *sim.Rand, splitName func(src, service string) string) *WeightedSplit {
	if splitName == nil {
		splitName = func(_, s string) string { return s }
	}
	return &WeightedSplit{splits: splits, name: splitName, rng: rng}
}

// Pick implements mesh.Picker.
func (w *WeightedSplit) Pick(_ time.Duration, src, service string, backends []*mesh.Backend) *mesh.Backend {
	if len(backends) == 0 {
		return nil
	}
	ts, ok := w.splits.Get(w.name(src, service))
	if !ok {
		return backends[w.rng.IntN(len(backends))]
	}
	if cap(w.weights) < len(backends) {
		w.weights = make([]int64, len(backends))
	}
	weights := w.weights[:len(backends)]
	var total int64
	for i, b := range backends {
		weights[i] = 0
		for _, tb := range ts.Backends {
			if tb.Service == b.Name {
				weights[i] = tb.Weight
				total += tb.Weight
				break
			}
		}
	}
	if total <= 0 {
		return backends[w.rng.IntN(len(backends))]
	}
	r := int64(w.rng.Float64() * float64(total))
	for i, b := range backends {
		if r < weights[i] {
			return b
		}
		r -= weights[i]
	}
	return backends[len(backends)-1]
}

// P2C is the power-of-two-choices balancer over peak-EWMA latency scores
// that Linkerd applies within a cluster: sample two distinct backends, send
// to the one with the lower cost, where cost is the PeakEWMA of observed
// latency multiplied by the number of outstanding requests plus one. It
// implements mesh.Observer to learn from responses.
type P2C struct {
	rng      *sim.Rand
	halfLife time.Duration
	defaultL float64
	state    map[routeKey]*p2cState
}

type p2cState struct {
	latency  *ewma.PeakEWMA
	inflight int
}

// NewP2C returns a P2C picker. halfLife controls latency memory (Linkerd
// uses a few seconds); defaultLatency seeds unobserved backends.
func NewP2C(rng *sim.Rand, halfLife, defaultLatency time.Duration) *P2C {
	if halfLife <= 0 {
		halfLife = 5 * time.Second
	}
	if defaultLatency <= 0 {
		defaultLatency = time.Second
	}
	return &P2C{
		rng:      rng,
		halfLife: halfLife,
		defaultL: defaultLatency.Seconds(),
		state:    make(map[routeKey]*p2cState),
	}
}

func (p *P2C) stateFor(src, name string) *p2cState {
	key := routeKey{src, name}
	s, ok := p.state[key]
	if !ok {
		s = &p2cState{latency: ewma.NewPeak(p.halfLife, p.defaultL)}
		p.state[key] = s
	}
	return s
}

func (p *P2C) cost(src, name string) float64 {
	s := p.stateFor(src, name)
	return s.latency.Value() * float64(s.inflight+1)
}

// Pick implements mesh.Picker.
func (p *P2C) Pick(_ time.Duration, src, _ string, backends []*mesh.Backend) *mesh.Backend {
	if len(backends) == 0 {
		return nil
	}
	var chosen *mesh.Backend
	if len(backends) == 1 {
		chosen = backends[0]
	} else {
		i := p.rng.IntN(len(backends))
		j := p.rng.IntN(len(backends) - 1)
		if j >= i {
			j++
		}
		chosen = backends[i]
		if p.cost(src, backends[j].Name) < p.cost(src, backends[i].Name) {
			chosen = backends[j]
		}
	}
	p.stateFor(src, chosen.Name).inflight++
	return chosen
}

// Observe implements mesh.Observer.
func (p *P2C) Observe(now time.Duration, src, backendName string, latency time.Duration, _ bool) {
	s := p.stateFor(src, backendName)
	if s.inflight > 0 {
		s.inflight--
	}
	s.latency.Observe(now, latency.Seconds())
}

// PreferCluster routes to backends in a fixed cluster when any exist, and
// otherwise delegates to Fallback (or uniform round-robin order). It models
// the static locality-aware policies of Istio/Linkerd/Traffic Director the
// related-work section contrasts L3 with.
type PreferCluster struct {
	Cluster  string
	Fallback mesh.Picker

	rr    RoundRobin
	local []*mesh.Backend // Pick's scratch buffer (single-threaded)
}

// NewPreferCluster returns a locality picker for the given cluster.
func NewPreferCluster(cluster string, fallback mesh.Picker) *PreferCluster {
	return &PreferCluster{
		Cluster:  cluster,
		Fallback: fallback,
		rr:       RoundRobin{counters: make(map[routeKey]int)},
	}
}

// Pick implements mesh.Picker.
func (p *PreferCluster) Pick(now time.Duration, src, service string, backends []*mesh.Backend) *mesh.Backend {
	local := p.local[:0]
	for _, b := range backends {
		if b.Cluster == p.Cluster {
			local = append(local, b)
		}
	}
	p.local = local
	if len(local) > 0 {
		return p.rr.Pick(now, src, service, local)
	}
	if p.Fallback != nil {
		return p.Fallback.Pick(now, src, service, backends)
	}
	return p.rr.Pick(now, src, service, backends)
}

var (
	_ mesh.Picker   = (*RoundRobin)(nil)
	_ mesh.Picker   = (*WeightedSplit)(nil)
	_ mesh.Picker   = (*P2C)(nil)
	_ mesh.Observer = (*P2C)(nil)
	_ mesh.Picker   = (*PreferCluster)(nil)
)
