package balancer

import (
	"math"
	"testing"
	"time"

	"l3/internal/mesh"
	"l3/internal/sim"
	"l3/internal/smi"
)

func backends(names ...string) []*mesh.Backend {
	out := make([]*mesh.Backend, len(names))
	for i, n := range names {
		out[i] = &mesh.Backend{Name: n, Cluster: "cluster-" + n}
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	bs := backends("a", "b", "c")
	var got []string
	for i := 0; i < 6; i++ {
		got = append(got, rr.Pick(0, "c1", "svc", bs).Name)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinPerServiceCounters(t *testing.T) {
	rr := NewRoundRobin()
	bs := backends("a", "b")
	if rr.Pick(0, "c1", "s1", bs).Name != "a" {
		t.Fatal("s1 first pick wrong")
	}
	if rr.Pick(0, "c1", "s2", bs).Name != "a" {
		t.Fatal("s2 should have its own counter")
	}
	if rr.Pick(0, "c1", "s1", bs).Name != "b" {
		t.Fatal("s1 second pick wrong")
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	if NewRoundRobin().Pick(0, "c1", "s", nil) != nil {
		t.Fatal("empty backends should return nil")
	}
}

func TestWeightedSplitFollowsRatios(t *testing.T) {
	splits := smi.NewStore()
	_ = splits.Create(&smi.TrafficSplit{
		Name: "svc", RootService: "svc",
		Backends: []smi.Backend{
			{Service: "a", Weight: 900},
			{Service: "b", Weight: 100},
		},
	})
	w := NewWeightedSplit(splits, sim.NewRand(1), nil)
	bs := backends("a", "b")
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[w.Pick(0, "c1", "svc", bs).Name]++
	}
	frac := float64(counts["a"]) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("a received %.3f of traffic, want ~0.9", frac)
	}
}

func TestWeightedSplitZeroWeightBackendStarved(t *testing.T) {
	splits := smi.NewStore()
	_ = splits.Create(&smi.TrafficSplit{
		Name: "svc", RootService: "svc",
		Backends: []smi.Backend{
			{Service: "a", Weight: 100},
			{Service: "b", Weight: 0},
		},
	})
	w := NewWeightedSplit(splits, sim.NewRand(1), nil)
	bs := backends("a", "b")
	for i := 0; i < 1000; i++ {
		if w.Pick(0, "c1", "svc", bs).Name == "b" {
			t.Fatal("zero-weight backend received traffic")
		}
	}
}

func TestWeightedSplitMissingSplitUniform(t *testing.T) {
	w := NewWeightedSplit(smi.NewStore(), sim.NewRand(1), nil)
	bs := backends("a", "b")
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[w.Pick(0, "c1", "svc", bs).Name]++
	}
	if counts["a"] < 800 || counts["b"] < 800 {
		t.Fatalf("fallback not ~uniform: %v", counts)
	}
}

func TestWeightedSplitAllZeroWeightsUniform(t *testing.T) {
	splits := smi.NewStore()
	_ = splits.Create(&smi.TrafficSplit{
		Name: "svc", RootService: "svc",
		Backends: []smi.Backend{{Service: "a", Weight: 0}, {Service: "b", Weight: 0}},
	})
	w := NewWeightedSplit(splits, sim.NewRand(1), nil)
	bs := backends("a", "b")
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[w.Pick(0, "c1", "svc", bs).Name]++
	}
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("inert split starved a backend: %v", counts)
	}
}

func TestWeightedSplitCustomNameMapping(t *testing.T) {
	splits := smi.NewStore()
	_ = splits.Create(&smi.TrafficSplit{
		Name: "split-for-svc", RootService: "svc",
		Backends: []smi.Backend{{Service: "a", Weight: 1}},
	})
	w := NewWeightedSplit(splits, sim.NewRand(1), func(_, s string) string { return "split-for-" + s })
	bs := backends("a", "b")
	for i := 0; i < 100; i++ {
		if w.Pick(0, "c1", "svc", bs).Name != "a" {
			t.Fatal("name mapping not applied")
		}
	}
}

func TestWeightedSplitTracksLiveUpdates(t *testing.T) {
	splits := smi.NewStore()
	_ = splits.Create(&smi.TrafficSplit{
		Name: "svc", RootService: "svc",
		Backends: []smi.Backend{{Service: "a", Weight: 1}, {Service: "b", Weight: 0}},
	})
	w := NewWeightedSplit(splits, sim.NewRand(1), nil)
	bs := backends("a", "b")
	if w.Pick(0, "c1", "svc", bs).Name != "a" {
		t.Fatal("initial weights not honoured")
	}
	ts, _ := splits.Get("svc")
	ts.SetWeight("a", 0)
	ts.SetWeight("b", 1)
	_ = splits.Update(ts)
	for i := 0; i < 100; i++ {
		if w.Pick(0, "c1", "svc", bs).Name != "b" {
			t.Fatal("weight update not picked up")
		}
	}
}

func TestP2CPrefersFasterBackend(t *testing.T) {
	p := NewP2C(sim.NewRand(1), 5*time.Second, time.Second)
	bs := backends("fast", "slow")
	// Teach it: fast answers in 10ms, slow in 500ms.
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * 100 * time.Millisecond
		p.Observe(now, "c1", "fast", 10*time.Millisecond, true)
		p.Observe(now, "c1", "slow", 500*time.Millisecond, true)
	}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		b := p.Pick(10*time.Second, "c1", "svc", bs)
		counts[b.Name]++
		p.Observe(10*time.Second, "c1", b.Name, map[string]time.Duration{
			"fast": 10 * time.Millisecond, "slow": 500 * time.Millisecond,
		}[b.Name], true)
	}
	if counts["fast"] < counts["slow"]*2 {
		t.Fatalf("P2C did not prefer the fast backend: %v", counts)
	}
}

func TestP2CSingleBackend(t *testing.T) {
	p := NewP2C(sim.NewRand(1), 0, 0)
	bs := backends("only")
	if p.Pick(0, "c1", "svc", bs).Name != "only" {
		t.Fatal("single backend not picked")
	}
	if p.Pick(0, "c1", "svc", nil) != nil {
		t.Fatal("empty backends should return nil")
	}
}

func TestP2CInflightPressureSpreadsLoad(t *testing.T) {
	// With equal latency, a backend loaded with outstanding requests must
	// lose to an idle one.
	p := NewP2C(sim.NewRand(1), 5*time.Second, 100*time.Millisecond)
	bs := backends("a", "b")
	// Issue many picks without completions: inflight builds on whichever
	// is chosen, so counts should stay roughly balanced.
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[p.Pick(0, "c1", "svc", bs).Name]++
	}
	ratio := float64(counts["a"]) / float64(counts["b"]+1)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("inflight pressure did not balance: %v", counts)
	}
}

func TestP2CObserveUnknownBackendSafe(t *testing.T) {
	p := NewP2C(sim.NewRand(1), time.Second, time.Second)
	p.Observe(0, "c1", "never-picked", time.Millisecond, true) // must not panic
}

func TestPreferClusterRoutesLocally(t *testing.T) {
	p := NewPreferCluster("cluster-a", nil)
	bs := backends("a", "b") // clusters cluster-a, cluster-b
	for i := 0; i < 10; i++ {
		if got := p.Pick(0, "c1", "svc", bs).Name; got != "a" {
			t.Fatalf("pick = %s, want local backend a", got)
		}
	}
}

func TestPreferClusterFallsBack(t *testing.T) {
	p := NewPreferCluster("cluster-z", nil)
	bs := backends("a", "b")
	got := map[string]bool{}
	for i := 0; i < 10; i++ {
		got[p.Pick(0, "c1", "svc", bs).Name] = true
	}
	if !got["a"] || !got["b"] {
		t.Fatalf("fallback round-robin did not cycle: %v", got)
	}
	// Explicit fallback picker is honoured.
	p2 := NewPreferCluster("cluster-z", pickLast{})
	if p2.Pick(0, "c1", "svc", bs).Name != "b" {
		t.Fatal("explicit fallback ignored")
	}
}

type pickLast struct{}

func (pickLast) Pick(_ time.Duration, _, _ string, bs []*mesh.Backend) *mesh.Backend {
	return bs[len(bs)-1]
}
