// Package c3 is the adaptation of C3 (Suresh et al., "C3: Cutting Tail
// Latency in Cloud Data Stores via Adaptive Replica Selection", NSDI '15)
// that the paper compares L3 against (§5.1).
//
// Original C3 ranks replicas per request with the score
//
//	Ψ_s = R̄_s − 1/µ̄_s + (q̂_s)³ / µ̄_s
//
// where R̄ is an EWMA of response time, 1/µ̄ an EWMA of service time and
// q̂ = 1 + os·w + q̄ a queue-size estimate built from the client's
// outstanding requests and server-reported queue length. The paper adapts
// it to the service-mesh setting with three deliberate deviations, all of
// which this package mirrors:
//
//   - Aggregated metrics instead of per-request metrics: scores are
//     computed from the same 5-second Prometheus-style aggregates L3 uses,
//     and steer the TrafficSplit weight distribution rather than individual
//     requests.
//   - No success-rate term: C3 was designed for data stores where request
//     failure is not the dominant concern, so the adaptation does not trade
//     latency for availability (visible in §5.3.2's results).
//   - No backpressure/rate-control queue: C3's congestion-control mechanism
//     needs servers that know their own capacity; mesh microservices do
//     not, so it is omitted.
//
// With only aggregated data, the server-side queue length q̄ and service
// rate µ̄ are not observable separately: the queue estimate falls back to
// the aggregate outstanding-request gauge (exactly os summed over clients),
// and the response/service-time signal to the same P99 latency the
// aggregated Linkerd histograms provide — §5.3.1 of the paper confirms the
// 99th percentile "plays a decisive role in the C3 and L3 algorithms".
package c3

import (
	"math"
	"sort"
	"time"

	"l3/internal/core"
	"l3/internal/ewma"
)

// Config parameterises the adaptation.
type Config struct {
	// LatencyHalfLife smooths the latency EWMA R̄ (default 20 s — C3
	// recovers cautiously by design, markedly slower than L3's 5 s
	// half-life).
	LatencyHalfLife time.Duration
	// InflightHalfLife smooths the outstanding-request EWMA (default 5 s).
	InflightHalfLife time.Duration
	// DefaultLatency seeds R̄ before observations (default 5 s, aligned
	// with L3's λ so cold starts behave the same).
	DefaultLatency time.Duration
	// RelaxFraction is the idle convergence step (default 0.1).
	RelaxFraction float64
	// MinWeight floors weights so no backend is starved of measurement
	// traffic (default 0.01 — C3 scores span a wider range than L3
	// weights, so the floor sits lower; the controller's integer scaling
	// re-applies a floor of 1).
	MinWeight float64
	// QueueScale divides the aggregate outstanding-request gauge before
	// the cube: q̂ = 1 + inflight/QueueScale. The default of 1 keeps the
	// raw aggregate, as a direct adaptation of C3's q̂ = 1 + os·w + q̄
	// does; under load the cube then dominates the score and pushes C3
	// toward outstanding-request equalisation — the behaviour consistent
	// with C3 trailing L3 across the paper's evaluation.
	QueueScale float64
}

func (c Config) withDefaults() Config {
	if c.LatencyHalfLife <= 0 {
		c.LatencyHalfLife = 20 * time.Second
	}
	if c.InflightHalfLife <= 0 {
		c.InflightHalfLife = 5 * time.Second
	}
	if c.DefaultLatency <= 0 {
		c.DefaultLatency = 5 * time.Second
	}
	if c.RelaxFraction <= 0 {
		c.RelaxFraction = 0.1
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.01
	}
	if c.QueueScale <= 0 {
		c.QueueScale = 2
	}
	return c
}

type backendState struct {
	latency  *ewma.EWMA // R̄: filtered P99 latency, seconds
	inflight *ewma.EWMA // os aggregate
}

// Assigner scores backends with the adapted C3 ranking and converts scores
// to TrafficSplit weights (weight ∝ 1/Ψ). It implements core.Assigner so
// it runs under the same operator shell as L3.
type Assigner struct {
	cfg    Config
	states map[string]*backendState
}

var _ core.Assigner = (*Assigner)(nil)

// New returns an assigner with cfg (zero fields take defaults).
func New(cfg Config) *Assigner {
	return &Assigner{cfg: cfg.withDefaults(), states: make(map[string]*backendState)}
}

func (a *Assigner) stateFor(b string) *backendState {
	s, ok := a.states[b]
	if !ok {
		s = &backendState{
			latency:  ewma.New(a.cfg.LatencyHalfLife, a.cfg.DefaultLatency.Seconds()),
			inflight: ewma.New(a.cfg.InflightHalfLife, 0),
		}
		a.states[b] = s
	}
	return s
}

// Assign implements core.Assigner.
func (a *Assigner) Assign(now time.Duration, m map[string]core.BackendMetrics) map[string]float64 {
	names := make([]string, 0, len(m))
	for b := range m {
		names = append(names, b)
	}
	sort.Strings(names)

	out := make(map[string]float64, len(names))
	for _, b := range names {
		bm := m[b]
		s := a.stateFor(b)
		if bm.HasTraffic {
			if bm.P99Valid {
				s.latency.Observe(now, bm.P99)
			}
			s.inflight.Observe(now, bm.Inflight)
		} else {
			s.latency.Relax(now, a.cfg.RelaxFraction)
			s.inflight.Relax(now, a.cfg.RelaxFraction)
		}
		out[b] = a.weightOf(s)
	}
	return out
}

// weightOf converts one backend's filtered state into a weight.
func (a *Assigner) weightOf(s *backendState) float64 {
	rBar := s.latency.Value() // seconds
	if rBar <= 0 {
		rBar = 1e-6
	}
	qHat := 1 + math.Max(0, s.inflight.Value())/a.cfg.QueueScale
	// Adapted Ψ = R̄ + q̂³·T̄ with T̄ = R̄ (the −1/µ̄ term cancels against
	// the service-time proxy, see the package comment).
	score := rBar + qHat*qHat*qHat*rBar
	w := 1 / score
	if w < a.cfg.MinWeight {
		w = a.cfg.MinWeight
	}
	return w
}

// Forget implements core.Assigner.
func (a *Assigner) Forget(b string) { delete(a.states, b) }

// Score exposes the current Ψ of a backend for tests and instrumentation;
// ok is false for unknown backends.
func (a *Assigner) Score(b string) (float64, bool) {
	s, ok := a.states[b]
	if !ok {
		return 0, false
	}
	return 1 / a.weightOf(s), true
}
