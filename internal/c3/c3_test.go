package c3

import (
	"math"
	"testing"
	"time"

	"l3/internal/core"
)

func metricsFor(mean, inflight float64) core.BackendMetrics {
	return core.BackendMetrics{
		RPS: 100, SuccessRate: 1,
		P99: mean * 3, P99Valid: true,
		MeanLatency: mean, MeanValid: true,
		Inflight: inflight, HasTraffic: true,
	}
}

func converge(a *Assigner, m map[string]core.BackendMetrics) map[string]float64 {
	var w map[string]float64
	for i := 0; i < 40; i++ {
		w = a.Assign(time.Duration(i)*5*time.Second, m)
	}
	return w
}

func TestFasterBackendScoresBetter(t *testing.T) {
	a := New(Config{})
	w := converge(a, map[string]core.BackendMetrics{
		"fast": metricsFor(0.050, 1),
		"slow": metricsFor(0.500, 1),
	})
	if w["fast"] <= w["slow"] {
		t.Fatalf("fast=%v slow=%v", w["fast"], w["slow"])
	}
	sf, _ := a.Score("fast")
	ss, _ := a.Score("slow")
	if sf >= ss {
		t.Fatalf("score fast=%v slow=%v, want fast lower", sf, ss)
	}
}

func TestCubicQueuePenalty(t *testing.T) {
	a := New(Config{QueueScale: 1})
	w := converge(a, map[string]core.BackendMetrics{
		"idle": metricsFor(0.100, 0), // q̂=1
		"busy": metricsFor(0.100, 3), // q̂=4
	})
	// Ψ ratio: (1+64)/(1+1) = 32.5.
	ratio := w["idle"] / w["busy"]
	if math.Abs(ratio-32.5) > 3 {
		t.Fatalf("idle/busy ratio = %v, want ~32.5 (cube law)", ratio)
	}
}

func TestNoSuccessRateSensitivity(t *testing.T) {
	// C3's adaptation must ignore availability: identical latency and
	// inflight with wildly different success rates yield equal weights.
	a := New(Config{})
	healthy := metricsFor(0.1, 1)
	flaky := metricsFor(0.1, 1)
	flaky.SuccessRate = 0.3
	w := converge(a, map[string]core.BackendMetrics{"h": healthy, "f": flaky})
	if math.Abs(w["h"]-w["f"]) > 1e-9 {
		t.Fatalf("success rate influenced C3 weights: %v vs %v", w["h"], w["f"])
	}
}

func TestP99DrivenNotMeanDriven(t *testing.T) {
	// The adaptation consumes the aggregated P99 (the latency signal the
	// paper's §5.3.1 says plays the decisive role in both algorithms);
	// the mean is ignored, so equal P99s with different means score the
	// same.
	a := New(Config{})
	lowMean := metricsFor(0.1, 1)
	highMean := metricsFor(0.1, 1)
	highMean.MeanLatency = 0.09
	w := converge(a, map[string]core.BackendMetrics{"low": lowMean, "high": highMean})
	if math.Abs(w["low"]-w["high"]) > 1e-9 {
		t.Fatalf("mean influenced C3 weights: %v vs %v", w["low"], w["high"])
	}
	// And a worse P99 with the same mean lowers the weight.
	spiky := metricsFor(0.1, 1)
	spiky.P99 = 3.0
	w = converge(New(Config{}), map[string]core.BackendMetrics{"calm": metricsFor(0.1, 1), "spiky": spiky})
	if w["spiky"] >= w["calm"] {
		t.Fatalf("P99 did not drive C3 weights: calm=%v spiky=%v", w["calm"], w["spiky"])
	}
}

func TestRelaxationOnNoTraffic(t *testing.T) {
	a := New(Config{})
	converge(a, map[string]core.BackendMetrics{"b": metricsFor(0.010, 0)})
	w0 := a.Assign(1000*time.Second, map[string]core.BackendMetrics{"b": metricsFor(0.010, 0)})["b"]
	var w float64
	for i := 0; i < 100; i++ {
		w = a.Assign(time.Duration(1001+i)*5*time.Second,
			map[string]core.BackendMetrics{"b": {HasTraffic: false}})["b"]
	}
	// Latency relaxes toward the 5 s default, so the weight must fall.
	if w >= w0/10 {
		t.Fatalf("idle weight = %v, want far below the active weight %v", w, w0)
	}
}

func TestMinWeightFloor(t *testing.T) {
	a := New(Config{})
	w := converge(a, map[string]core.BackendMetrics{"awful": metricsFor(5.0, 50)})
	if w["awful"] != a.cfg.MinWeight {
		t.Fatalf("weight = %v, want floored at %v", w["awful"], a.cfg.MinWeight)
	}
}

func TestForgetDropsState(t *testing.T) {
	a := New(Config{})
	converge(a, map[string]core.BackendMetrics{"b": metricsFor(0.01, 0)})
	if _, ok := a.Score("b"); !ok {
		t.Fatal("state missing before Forget")
	}
	a.Forget("b")
	if _, ok := a.Score("b"); ok {
		t.Fatal("state present after Forget")
	}
}

func TestInvalidP99SkipsObservation(t *testing.T) {
	a := New(Config{})
	m := metricsFor(0.1, 0)
	m.P99Valid = false
	w := converge(a, map[string]core.BackendMetrics{"b": m})
	// Latency EWMA stays at its 5s default: weight 1/(5·2)=0.1.
	if math.Abs(w["b"]-0.1) > 0.02 {
		t.Fatalf("weight = %v, want ~0.1 (default latency retained)", w["b"])
	}
}

func TestWeightsPositiveFinite(t *testing.T) {
	a := New(Config{})
	for i := 0; i < 50; i++ {
		w := a.Assign(time.Duration(i)*5*time.Second, map[string]core.BackendMetrics{
			"z": {HasTraffic: true, MeanLatency: 0, MeanValid: true, Inflight: -5},
		})
		if v := w["z"]; v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("weight = %v", v)
		}
	}
}
