// Package health implements periodic health checking with failover — the
// availability mechanism the paper's related work section describes as the
// state of practice (Istio locality failover, linkerd-failover, Traffic
// Director, AppMesh): probe each backend on an interval, take it out of
// the load-balancing rotation after consecutive probe failures, and
// return it after consecutive successes. §3.1 of the paper also assigns
// this layer the job of ejecting backends too degraded to serve L3's
// metric-floor traffic.
//
// L3's pitch against this mechanism (§6): health checks react to binary
// failure after the fact, while L3 steers on symptoms — rising latency,
// falling success rate — before the checker trips. The failover ablation
// in internal/bench quantifies that difference on the failure scenarios.
package health

import (
	"fmt"
	"time"

	"l3/internal/backend"
	"l3/internal/clock"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
)

// Metric families the checker exports when given a registry, so failover
// activity (ejections, restores) can be plotted next to L3's weight moves in
// the chaos recovery figures.
const (
	// MetricEjectionsTotal counts healthy→unhealthy transitions per backend.
	MetricEjectionsTotal = "health_ejections_total"
	// MetricRestoresTotal counts unhealthy→healthy transitions per backend.
	MetricRestoresTotal = "health_restores_total"
)

// Prober carries one probe to a backend and reports the outcome. The
// default prober calls the backend's server directly (a kubelet probing the
// pod from the same node); a mesh-level prober (mesh.Probe) adds WAN
// transit, so partitions and delay spikes become visible to the checker. A
// prober that never calls done (e.g. a blackholed link) counts as a failure
// once the probe timeout trips.
type Prober func(b *mesh.Backend, done func(success bool))

// Config parameterises a Checker, with Kubernetes-liveness-probe-flavoured
// defaults.
type Config struct {
	// Interval between probes per backend (default 10 s).
	Interval time.Duration
	// Timeout after which an unanswered probe counts as failed
	// (default 1 s).
	Timeout time.Duration
	// UnhealthyThreshold is the consecutive failures that eject a backend
	// (default 3).
	UnhealthyThreshold int
	// HealthyThreshold is the consecutive successes that restore it
	// (default 2).
	HealthyThreshold int
	// Probe overrides how probes reach backends (default: direct serve).
	Probe Prober
	// Registry receives ejection/restore counters when set.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.UnhealthyThreshold <= 0 {
		c.UnhealthyThreshold = 3
	}
	if c.HealthyThreshold <= 0 {
		c.HealthyThreshold = 2
	}
	return c
}

type probeState struct {
	name        string
	healthy     bool
	consecFail  int
	consecOK    int
	transitions int
}

// Checker probes backends on a clock (virtual or wall) and tracks their
// health.
type Checker struct {
	clk     clock.Clock
	cfg     Config
	states  map[string]*probeState
	timers  []clock.Timer
	stopped bool
}

// NewChecker returns a checker on the simulation engine's virtual clock;
// register backends with Watch.
func NewChecker(engine *sim.Engine, cfg Config) *Checker {
	if engine == nil {
		panic("health: NewChecker requires an engine")
	}
	return NewCheckerClock(clock.Sim(engine), cfg)
}

// NewCheckerClock returns a checker driven by an arbitrary clock. The
// checker is single-threaded: all its methods must run serialized with the
// clock's callbacks (automatic on a sim engine; via clock.Wall.Do — or by
// only touching it from clock callbacks — on a wall clock).
func NewCheckerClock(clk clock.Clock, cfg Config) *Checker {
	if clk == nil {
		panic("health: NewCheckerClock requires a clock")
	}
	return &Checker{
		clk:    clk,
		cfg:    cfg.withDefaults(),
		states: make(map[string]*probeState),
	}
}

// Watch starts periodic probing of a backend. Backends start healthy.
// Watching after Stop is a no-op: a stopped checker stays stopped.
func (c *Checker) Watch(b *mesh.Backend) {
	if c.stopped {
		return
	}
	if _, ok := c.states[b.Name]; ok {
		return
	}
	st := &probeState{healthy: true, name: b.Name}
	c.states[b.Name] = st
	c.timers = append(c.timers, c.clk.Every(c.cfg.Interval, func() {
		c.probe(b, st)
	}))
}

// WatchAll starts probing every backend of the slice.
func (c *Checker) WatchAll(backends []*mesh.Backend) {
	for _, b := range backends {
		c.Watch(b)
	}
}

// Stop halts all probing and freezes health state. Cancelling the probe
// tickers is not enough on its own: a probe already in flight at Stop time
// still holds a pending timeout timer, which would otherwise fire later
// and record a failure — ejecting a backend from a checker the caller
// believes dead. The stopped flag silences those stragglers too. Stop is
// terminal and idempotent.
func (c *Checker) Stop() {
	c.stopped = true
	for _, t := range c.timers {
		t.Cancel()
	}
	c.timers = nil
}

// Healthy reports whether the named backend is in rotation. Unknown
// backends are healthy (fail open, like a mesh without checks configured).
func (c *Checker) Healthy(name string) bool {
	st, ok := c.states[name]
	return !ok || st.healthy
}

// Transitions returns how often the named backend changed health state.
func (c *Checker) Transitions(name string) int {
	if st, ok := c.states[name]; ok {
		return st.transitions
	}
	return 0
}

// probe issues one synthetic request through the configured prober (by
// default directly to the backend's server, bypassing load balancing like a
// kubelet probe hitting the pod) and applies the thresholds.
func (c *Checker) probe(b *mesh.Backend, st *probeState) {
	answered := false
	timedOut := false
	timeout := c.clk.After(c.cfg.Timeout, func() {
		if answered {
			return
		}
		timedOut = true
		c.record(st, false)
	})
	deliver := func(ok bool) {
		if timedOut {
			return // too late; already counted as failure
		}
		answered = true
		timeout.Cancel()
		c.record(st, ok)
	}
	if c.cfg.Probe != nil {
		c.cfg.Probe(b, deliver)
		return
	}
	b.Server.Serve(func(res backend.Result) {
		deliver(res.Success && !res.Rejected)
	})
}

func (c *Checker) record(st *probeState, ok bool) {
	if c.stopped {
		return // late delivery from a probe in flight at Stop time
	}
	if ok {
		st.consecOK++
		st.consecFail = 0
		if !st.healthy && st.consecOK >= c.cfg.HealthyThreshold {
			st.healthy = true
			st.transitions++
			if c.cfg.Registry != nil {
				c.cfg.Registry.Counter(MetricRestoresTotal, metrics.Labels{"backend": st.name}).Inc()
			}
		}
		return
	}
	st.consecFail++
	st.consecOK = 0
	if st.healthy && st.consecFail >= c.cfg.UnhealthyThreshold {
		st.healthy = false
		st.transitions++
		if c.cfg.Registry != nil {
			c.cfg.Registry.Counter(MetricEjectionsTotal, metrics.Labels{"backend": st.name}).Inc()
		}
	}
}

// String describes the checker.
func (c *Checker) String() string {
	return fmt.Sprintf("health{every=%v timeout=%v thresholds=%d/%d}",
		c.cfg.Interval, c.cfg.Timeout, c.cfg.UnhealthyThreshold, c.cfg.HealthyThreshold)
}

// FailoverPicker filters unhealthy backends out of the rotation before
// delegating to the inner strategy — round-robin plus failover, the
// baseline configuration of Istio/Linkerd multi-cluster deployments. If
// every backend is unhealthy it fails open and delegates unfiltered
// (sending somewhere beats sending nowhere).
type FailoverPicker struct {
	Checker *Checker
	Inner   mesh.Picker
}

var _ mesh.Picker = (*FailoverPicker)(nil)

// Pick implements mesh.Picker.
func (p *FailoverPicker) Pick(now time.Duration, src, service string, backends []*mesh.Backend) *mesh.Backend {
	healthy := make([]*mesh.Backend, 0, len(backends))
	for _, b := range backends {
		if p.Checker.Healthy(b.Name) {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		healthy = backends
	}
	return p.Inner.Pick(now, src, service, healthy)
}

// Observe forwards feedback to the inner picker when it wants it.
func (p *FailoverPicker) Observe(now time.Duration, src, backendName string, latency time.Duration, success bool) {
	if obs, ok := p.Inner.(mesh.Observer); ok {
		obs.Observe(now, src, backendName, latency, success)
	}
}
