package health

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/mesh"
	"l3/internal/sim"
)

// flakyServer fails (or hangs) on demand.
type flakyServer struct {
	engine  *sim.Engine
	latency time.Duration
	fail    bool
	hang    bool
	probes  int
}

func (s *flakyServer) Serve(done func(backend.Result)) {
	s.probes++
	if s.hang {
		return // never answers
	}
	ok := !s.fail
	s.engine.After(s.latency, func() {
		done(backend.Result{Latency: s.latency, Success: ok})
	})
}

func newBackend(e *sim.Engine, name string) (*mesh.Backend, *flakyServer) {
	srv := &flakyServer{engine: e, latency: 5 * time.Millisecond}
	return &mesh.Backend{Name: name, Cluster: "c", Server: srv}, srv
}

func TestBackendStartsHealthy(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{})
	b, _ := newBackend(e, "b")
	c.Watch(b)
	if !c.Healthy("b") || !c.Healthy("unknown") {
		t.Fatal("backends must start (and default) healthy")
	}
}

func TestEjectionAfterConsecutiveFailures(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 3})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	srv.fail = true
	e.RunUntil(25 * time.Second) // two failed probes: still in rotation
	if !c.Healthy("b") {
		t.Fatal("ejected before the threshold")
	}
	e.RunUntil(35 * time.Second) // third failure
	if c.Healthy("b") {
		t.Fatal("not ejected after 3 consecutive failures")
	}
	if c.Transitions("b") != 1 {
		t.Fatalf("transitions = %d", c.Transitions("b"))
	}
}

func TestRecoveryAfterConsecutiveSuccesses(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 3, HealthyThreshold: 2})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	srv.fail = true
	e.RunUntil(35 * time.Second)
	if c.Healthy("b") {
		t.Fatal("setup: not ejected")
	}
	srv.fail = false
	e.RunUntil(45 * time.Second) // one success: not yet
	if c.Healthy("b") {
		t.Fatal("restored after a single success")
	}
	e.RunUntil(60 * time.Second) // second success
	if !c.Healthy("b") {
		t.Fatal("not restored after 2 consecutive successes")
	}
}

func TestIntermittentFailuresDoNotEject(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 3})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	// Alternate failure and success: consecFail never reaches 3.
	e.Every(10*time.Second, func() { srv.fail = !srv.fail })
	e.RunUntil(5 * time.Minute)
	if !c.Healthy("b") {
		t.Fatal("intermittent failures ejected the backend")
	}
}

func TestTimeoutCountsAsFailure(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, Timeout: time.Second, UnhealthyThreshold: 2})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	srv.hang = true
	e.RunUntil(30 * time.Second)
	if c.Healthy("b") {
		t.Fatal("hanging backend not ejected via probe timeout")
	}
}

func TestLateAnswerAfterTimeoutIgnored(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, Timeout: time.Second, UnhealthyThreshold: 2})
	b, srv := newBackend(e, "b")
	srv.latency = 3 * time.Second // always answers, but after the timeout
	c.Watch(b)
	e.RunUntil(40 * time.Second)
	if c.Healthy("b") {
		t.Fatal("slow-answering backend should count as failing")
	}
}

func TestWatchIsIdempotentAndStopHalts(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	c.Watch(b) // second Watch must not double-probe
	e.RunUntil(35 * time.Second)
	if srv.probes != 3 {
		t.Fatalf("probes = %d, want 3 (one per interval)", srv.probes)
	}
	c.Stop()
	e.RunUntil(2 * time.Minute)
	if srv.probes != 3 {
		t.Fatalf("probing continued after Stop: %d", srv.probes)
	}
}

func TestFailoverPickerFiltersUnhealthy(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 1})
	good, _ := newBackend(e, "good")
	bad, badSrv := newBackend(e, "bad")
	c.WatchAll([]*mesh.Backend{good, bad})
	badSrv.fail = true
	e.RunUntil(15 * time.Second)

	p := &FailoverPicker{Checker: c, Inner: balancer.NewRoundRobin()}
	for i := 0; i < 10; i++ {
		if got := p.Pick(0, "c1", "svc", []*mesh.Backend{good, bad}); got.Name != "good" {
			t.Fatalf("picked ejected backend %s", got.Name)
		}
	}
}

func TestFailoverPickerFailsOpen(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 1})
	a, aSrv := newBackend(e, "a")
	b, bSrv := newBackend(e, "b")
	c.WatchAll([]*mesh.Backend{a, b})
	aSrv.fail, bSrv.fail = true, true
	e.RunUntil(15 * time.Second)
	p := &FailoverPicker{Checker: c, Inner: balancer.NewRoundRobin()}
	if got := p.Pick(0, "c1", "svc", []*mesh.Backend{a, b}); got == nil {
		t.Fatal("all-unhealthy must fail open, not return nil")
	}
}

func TestNilEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil engine did not panic")
		}
	}()
	NewChecker(nil, Config{})
}
