package health

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
)

// flakyServer fails (or hangs) on demand.
type flakyServer struct {
	engine  *sim.Engine
	latency time.Duration
	fail    bool
	hang    bool
	probes  int
}

func (s *flakyServer) Serve(done func(backend.Result)) {
	s.probes++
	if s.hang {
		return // never answers
	}
	ok := !s.fail
	s.engine.After(s.latency, func() {
		done(backend.Result{Latency: s.latency, Success: ok})
	})
}

func newBackend(e *sim.Engine, name string) (*mesh.Backend, *flakyServer) {
	srv := &flakyServer{engine: e, latency: 5 * time.Millisecond}
	return &mesh.Backend{Name: name, Cluster: "c", Server: srv}, srv
}

func TestBackendStartsHealthy(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{})
	b, _ := newBackend(e, "b")
	c.Watch(b)
	if !c.Healthy("b") || !c.Healthy("unknown") {
		t.Fatal("backends must start (and default) healthy")
	}
}

func TestEjectionAfterConsecutiveFailures(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 3})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	srv.fail = true
	e.RunUntil(25 * time.Second) // two failed probes: still in rotation
	if !c.Healthy("b") {
		t.Fatal("ejected before the threshold")
	}
	e.RunUntil(35 * time.Second) // third failure
	if c.Healthy("b") {
		t.Fatal("not ejected after 3 consecutive failures")
	}
	if c.Transitions("b") != 1 {
		t.Fatalf("transitions = %d", c.Transitions("b"))
	}
}

func TestRecoveryAfterConsecutiveSuccesses(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 3, HealthyThreshold: 2})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	srv.fail = true
	e.RunUntil(35 * time.Second)
	if c.Healthy("b") {
		t.Fatal("setup: not ejected")
	}
	srv.fail = false
	e.RunUntil(45 * time.Second) // one success: not yet
	if c.Healthy("b") {
		t.Fatal("restored after a single success")
	}
	e.RunUntil(60 * time.Second) // second success
	if !c.Healthy("b") {
		t.Fatal("not restored after 2 consecutive successes")
	}
}

func TestIntermittentFailuresDoNotEject(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 3})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	// Alternate failure and success: consecFail never reaches 3.
	e.Every(10*time.Second, func() { srv.fail = !srv.fail })
	e.RunUntil(5 * time.Minute)
	if !c.Healthy("b") {
		t.Fatal("intermittent failures ejected the backend")
	}
}

func TestTimeoutCountsAsFailure(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, Timeout: time.Second, UnhealthyThreshold: 2})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	srv.hang = true
	e.RunUntil(30 * time.Second)
	if c.Healthy("b") {
		t.Fatal("hanging backend not ejected via probe timeout")
	}
}

func TestLateAnswerAfterTimeoutIgnored(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, Timeout: time.Second, UnhealthyThreshold: 2})
	b, srv := newBackend(e, "b")
	srv.latency = 3 * time.Second // always answers, but after the timeout
	c.Watch(b)
	e.RunUntil(40 * time.Second)
	if c.Healthy("b") {
		t.Fatal("slow-answering backend should count as failing")
	}
}

func TestWatchIsIdempotentAndStopHalts(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	c.Watch(b) // second Watch must not double-probe
	e.RunUntil(35 * time.Second)
	if srv.probes != 3 {
		t.Fatalf("probes = %d, want 3 (one per interval)", srv.probes)
	}
	c.Stop()
	e.RunUntil(2 * time.Minute)
	if srv.probes != 3 {
		t.Fatalf("probing continued after Stop: %d", srv.probes)
	}
}

func TestFailoverPickerFiltersUnhealthy(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 1})
	good, _ := newBackend(e, "good")
	bad, badSrv := newBackend(e, "bad")
	c.WatchAll([]*mesh.Backend{good, bad})
	badSrv.fail = true
	e.RunUntil(15 * time.Second)

	p := &FailoverPicker{Checker: c, Inner: balancer.NewRoundRobin()}
	for i := 0; i < 10; i++ {
		if got := p.Pick(0, "c1", "svc", []*mesh.Backend{good, bad}); got.Name != "good" {
			t.Fatalf("picked ejected backend %s", got.Name)
		}
	}
}

func TestFailoverPickerFailsOpen(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, UnhealthyThreshold: 1})
	a, aSrv := newBackend(e, "a")
	b, bSrv := newBackend(e, "b")
	c.WatchAll([]*mesh.Backend{a, b})
	aSrv.fail, bSrv.fail = true, true
	e.RunUntil(15 * time.Second)
	p := &FailoverPicker{Checker: c, Inner: balancer.NewRoundRobin()}
	if got := p.Pick(0, "c1", "svc", []*mesh.Backend{a, b}); got == nil {
		t.Fatal("all-unhealthy must fail open, not return nil")
	}
}

func TestNilEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil engine did not panic")
		}
	}()
	NewChecker(nil, Config{})
}

func TestStopSilencesInFlightProbeTimeout(t *testing.T) {
	// A probe launched just before Stop leaves its timeout timer armed.
	// Without the stopped guard that timer fires later, records a
	// failure, and can eject a backend from a checker the caller already
	// shut down.
	e := sim.NewEngine()
	reg := metrics.NewRegistry()
	c := NewChecker(e, Config{Interval: 10 * time.Second, Timeout: time.Second,
		UnhealthyThreshold: 1, Registry: reg})
	b, srv := newBackend(e, "b")
	srv.hang = true // probe will never answer; only the timeout could record
	c.Watch(b)
	e.RunUntil(10 * time.Second) // probe fires now; timeout armed for t=11s
	c.Stop()
	e.RunUntil(time.Minute)
	if !c.Healthy("b") {
		t.Fatal("in-flight probe timeout ejected backend after Stop")
	}
	if v := reg.Counter(MetricEjectionsTotal, metrics.Labels{"backend": "b"}).Value(); v != 0 {
		t.Fatalf("ejections counted after Stop: %v", v)
	}
}

func TestStopIsTerminalAndIdempotent(t *testing.T) {
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second})
	b, srv := newBackend(e, "b")
	c.Watch(b)
	e.RunUntil(15 * time.Second)
	c.Stop()
	c.Stop() // idempotent
	c.Watch(b)
	b2, srv2 := newBackend(e, "b2")
	c.Watch(b2) // Watch after Stop must not restart probing
	e.RunUntil(2 * time.Minute)
	if srv.probes != 1 || srv2.probes != 0 {
		t.Fatalf("probes after Stop: %d/%d, want 1/0", srv.probes, srv2.probes)
	}
	// State frozen at Stop remains queryable.
	if !c.Healthy("b") {
		t.Fatal("frozen state lost")
	}
}

func TestStopDuringRunInterleavesCleanly(t *testing.T) {
	// Stop issued from inside the event loop (as a bench teardown does),
	// racing the same tick that launches a probe: timestamp-ordered
	// delivery must leave no probe activity after the stop event.
	e := sim.NewEngine()
	c := NewChecker(e, Config{Interval: 10 * time.Second, Timeout: time.Second, UnhealthyThreshold: 1})
	b, srv := newBackend(e, "b")
	srv.fail = true
	c.Watch(b)
	e.At(25*time.Second, func() { c.Stop() })
	e.RunUntil(5 * time.Minute)
	if srv.probes != 2 {
		t.Fatalf("probes = %d, want the 2 pre-Stop ticks", srv.probes)
	}
}

func TestEjectionRestoreCountersStayConsistent(t *testing.T) {
	// Drive a flapping backend through many eject/restore cycles and pin
	// the counter invariants: ejections == healthy→unhealthy transitions,
	// restores == the reverse, and the difference matches the final state.
	e := sim.NewEngine()
	reg := metrics.NewRegistry()
	c := NewChecker(e, Config{Interval: time.Second, Timeout: 100 * time.Millisecond,
		UnhealthyThreshold: 2, HealthyThreshold: 2, Registry: reg})
	b, srv := newBackend(e, "b")
	srv.latency = time.Millisecond
	c.Watch(b)
	e.Every(5*time.Second, func() { srv.fail = !srv.fail })
	e.RunUntil(10 * time.Minute)
	c.Stop()
	e.RunUntil(11 * time.Minute)

	ej := reg.Counter(MetricEjectionsTotal, metrics.Labels{"backend": "b"}).Value()
	re := reg.Counter(MetricRestoresTotal, metrics.Labels{"backend": "b"}).Value()
	if ej == 0 {
		t.Fatal("flapping backend never ejected")
	}
	if float64(c.Transitions("b")) != ej+re {
		t.Fatalf("transitions = %d, counters say %v", c.Transitions("b"), ej+re)
	}
	diff := ej - re
	if c.Healthy("b") && diff != 0 {
		t.Fatalf("healthy backend but ejections-restores = %v, want 0", diff)
	}
	if !c.Healthy("b") && diff != 1 {
		t.Fatalf("unhealthy backend but ejections-restores = %v, want 1", diff)
	}
}

func TestCheckersAreIndependentUnderRace(t *testing.T) {
	// Independent engines/checkers on concurrent goroutines: run under
	// `go test -race` this pins that Watch/Stop/record share no hidden
	// global state across instances.
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int) {
			defer func() { done <- struct{}{} }()
			e := sim.NewEngine()
			reg := metrics.NewRegistry()
			c := NewChecker(e, Config{Interval: time.Second, Timeout: 100 * time.Millisecond,
				UnhealthyThreshold: 2, HealthyThreshold: 2, Registry: reg})
			b, srv := newBackend(e, "b")
			srv.latency = time.Millisecond
			c.Watch(b)
			e.Every(3*time.Second, func() { srv.fail = !srv.fail })
			e.At(time.Duration(30+seed)*time.Second, func() { c.Stop() })
			e.RunUntil(2 * time.Minute)
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
