// Package dsb models the hotel-reservation application of the
// DeathStarBench suite (Gan et al., ASPLOS '19) — the multi-tier
// microservice workload of the paper's Figure 9 experiment. The application
// consists of eight microservices (frontend, search, geo, rate, profile,
// recommendation, user, reservation) plus their memcached caches and
// MongoDB stores. Every service is deployed in every cluster, and every
// service-to-service hop goes through the mesh's client proxy, so each hop
// makes an independent load-balancing decision — exactly the deployment of
// §5.1, where "outgoing requests from any of the microservices to other
// microservices are distributed within all clusters according to the load
// balancing algorithm".
//
// Service execution times are log-normal with per-tier parameters chosen so
// the end-to-end latency sits at the tens-of-milliseconds scale the paper
// measured (Figure 9: round-robin P99 ≈ 93 ms at 200 RPS); MongoDB tiers
// carry the heavy tail, reflecting the paper's observation that a slow
// database dominates geographic distance.
package dsb

import (
	"fmt"
	"time"

	"l3/internal/backend"
	"l3/internal/mesh"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/trace"
)

// Stage is one step of a service's handler: a set of downstream services
// called in parallel. A handler's stages run sequentially.
type Stage []string

// Variant is one behaviour of a service handler, selected with probability
// proportional to Weight (request mix, cache hit/miss paths).
type Variant struct {
	Weight float64
	Stages []Stage
}

// ServiceSpec describes one microservice of the application.
type ServiceSpec struct {
	// Name of the service.
	Name string
	// ComputeMedian/ComputeP99 parameterise the local execution-time
	// distribution (excluding downstream calls).
	ComputeMedian time.Duration
	ComputeP99    time.Duration
	// Concurrency bounds parallel request execution per cluster
	// deployment.
	Concurrency int
	// Variants are the handler's alternative downstream call plans; a
	// single-variant service always runs the same plan. Leaf services
	// (caches, databases) have no variants.
	Variants []Variant
}

// HotelReservationSpecs returns the application graph: 8 microservices,
// 3 memcached tiers and 6 MongoDB tiers. The frontend's variants encode the
// DeathStarBench mixed workload (≈60 % hotel search, 39 % recommendations,
// 0.5 % user login, 0.5 % reservations); rate/profile/reservation variants
// encode cache hit/miss paths.
func HotelReservationSpecs() []ServiceSpec {
	return []ServiceSpec{
		{
			Name:          "frontend",
			ComputeMedian: 500 * time.Microsecond,
			ComputeP99:    2 * time.Millisecond,
			Concurrency:   256,
			Variants: []Variant{
				{Weight: 0.60, Stages: []Stage{{"search"}, {"reservation"}, {"profile"}}},
				{Weight: 0.39, Stages: []Stage{{"recommendation"}, {"profile"}}},
				{Weight: 0.005, Stages: []Stage{{"user"}}},
				{Weight: 0.005, Stages: []Stage{{"user"}, {"reservation"}}},
			},
		},
		{
			Name:          "search",
			ComputeMedian: time.Millisecond,
			ComputeP99:    4 * time.Millisecond,
			Concurrency:   128,
			Variants:      []Variant{{Weight: 1, Stages: []Stage{{"geo", "rate"}}}},
		},
		{
			Name:          "geo",
			ComputeMedian: 800 * time.Microsecond,
			ComputeP99:    3 * time.Millisecond,
			Concurrency:   128,
			Variants:      []Variant{{Weight: 1, Stages: []Stage{{"mongo-geo"}}}},
		},
		{
			Name:          "rate",
			ComputeMedian: 600 * time.Microsecond,
			ComputeP99:    2 * time.Millisecond,
			Concurrency:   128,
			Variants: []Variant{
				{Weight: 0.8, Stages: []Stage{{"memcached-rate"}}},
				{Weight: 0.2, Stages: []Stage{{"memcached-rate"}, {"mongo-rate"}}},
			},
		},
		{
			Name:          "profile",
			ComputeMedian: 700 * time.Microsecond,
			ComputeP99:    2 * time.Millisecond,
			Concurrency:   128,
			Variants: []Variant{
				{Weight: 0.9, Stages: []Stage{{"memcached-profile"}}},
				{Weight: 0.1, Stages: []Stage{{"memcached-profile"}, {"mongo-profile"}}},
			},
		},
		{
			Name:          "recommendation",
			ComputeMedian: 1200 * time.Microsecond,
			ComputeP99:    4 * time.Millisecond,
			Concurrency:   128,
			Variants:      []Variant{{Weight: 1, Stages: []Stage{{"mongo-recommendation"}}}},
		},
		{
			Name:          "user",
			ComputeMedian: 600 * time.Microsecond,
			ComputeP99:    2 * time.Millisecond,
			Concurrency:   128,
			Variants:      []Variant{{Weight: 1, Stages: []Stage{{"mongo-user"}}}},
		},
		{
			Name:          "reservation",
			ComputeMedian: 800 * time.Microsecond,
			ComputeP99:    3 * time.Millisecond,
			Concurrency:   128,
			Variants: []Variant{
				{Weight: 0.85, Stages: []Stage{{"memcached-reserve"}}},
				{Weight: 0.15, Stages: []Stage{{"memcached-reserve"}, {"mongo-reservation"}}},
			},
		},
		{Name: "memcached-rate", ComputeMedian: 200 * time.Microsecond, ComputeP99: 800 * time.Microsecond, Concurrency: 512},
		{Name: "memcached-profile", ComputeMedian: 200 * time.Microsecond, ComputeP99: 800 * time.Microsecond, Concurrency: 512},
		{Name: "memcached-reserve", ComputeMedian: 200 * time.Microsecond, ComputeP99: 800 * time.Microsecond, Concurrency: 512},
		{Name: "mongo-geo", ComputeMedian: 2 * time.Millisecond, ComputeP99: 15 * time.Millisecond, Concurrency: 64},
		{Name: "mongo-rate", ComputeMedian: 2500 * time.Microsecond, ComputeP99: 18 * time.Millisecond, Concurrency: 64},
		{Name: "mongo-profile", ComputeMedian: 2 * time.Millisecond, ComputeP99: 15 * time.Millisecond, Concurrency: 64},
		{Name: "mongo-recommendation", ComputeMedian: 3 * time.Millisecond, ComputeP99: 20 * time.Millisecond, Concurrency: 64},
		{Name: "mongo-user", ComputeMedian: 1500 * time.Microsecond, ComputeP99: 10 * time.Millisecond, Concurrency: 64},
		{Name: "mongo-reservation", ComputeMedian: 2500 * time.Microsecond, ComputeP99: 18 * time.Millisecond, Concurrency: 64},
	}
}

// EntryService is the service the load generator addresses (the paper's
// benchmarking client sends to the cluster-local frontend).
const EntryService = "frontend"

// App is an installed application: every service of the graph deployed
// into every cluster of the mesh.
type App struct {
	mesh     *mesh.Mesh
	clusters []string
	specs    map[string]ServiceSpec
	order    []string
	options  installOptions
}

type installOptions struct {
	perfVariation bool
	perfHorizon   time.Duration
}

// InstallOption customises Install.
type InstallOption func(*installOptions)

// WithPerfVariation makes every (service, cluster) deployment's execution
// time follow a slowly varying multiplier — a base drift plus sustained
// degradation episodes — modelling the multi-tenant performance
// variability of the paper's EC2 testbed, which is what gives the
// latency-aware balancers their signal in the Figure 9 experiment.
func WithPerfVariation() InstallOption {
	return func(o *installOptions) { o.perfVariation = true }
}

// WithPerfHorizon bounds the precomputed variation series (default 40
// minutes; beyond the horizon the last value holds).
func WithPerfHorizon(d time.Duration) InstallOption {
	return func(o *installOptions) { o.perfHorizon = d }
}

// Install deploys the given service graph into the mesh, one backend per
// (service, cluster), named "<service>-<cluster>".
func Install(m *mesh.Mesh, clusters []string, rng *sim.Rand, specs []ServiceSpec, opts ...InstallOption) (*App, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("dsb: no clusters")
	}
	app := &App{
		mesh:     m,
		clusters: append([]string(nil), clusters...),
		specs:    make(map[string]ServiceSpec, len(specs)),
		options:  installOptions{perfHorizon: 40 * time.Minute},
	}
	for _, o := range opts {
		o(&app.options)
	}
	for _, spec := range specs {
		if _, ok := app.specs[spec.Name]; ok {
			return nil, fmt.Errorf("dsb: duplicate service %q", spec.Name)
		}
		app.specs[spec.Name] = spec
		app.order = append(app.order, spec.Name)
		if _, err := m.AddService(spec.Name); err != nil {
			return nil, fmt.Errorf("dsb: %w", err)
		}
		for _, c := range clusters {
			srv := &appServer{
				app:     app,
				cluster: c,
				spec:    spec,
				rng:     rng.Fork(),
				compute: backend.New(m.Engine(), rng.Fork(), backend.Config{
					Name:        BackendName(spec.Name, c),
					Concurrency: spec.Concurrency,
				}, app.computeProfile(spec, rng.Fork())),
			}
			if _, err := m.AddServerBackend(spec.Name, BackendName(spec.Name, c), c, srv); err != nil {
				return nil, fmt.Errorf("dsb: %w", err)
			}
		}
	}
	// Validate the graph: every downstream target must exist.
	for _, spec := range specs {
		for _, v := range spec.Variants {
			for _, stage := range v.Stages {
				for _, target := range stage {
					if _, ok := app.specs[target]; !ok {
						return nil, fmt.Errorf("dsb: service %q calls unknown service %q", spec.Name, target)
					}
				}
			}
		}
	}
	return app, nil
}

// InstallHotelReservation installs the standard hotel-reservation graph.
func InstallHotelReservation(m *mesh.Mesh, clusters []string, rng *sim.Rand, opts ...InstallOption) (*App, error) {
	return Install(m, clusters, rng, HotelReservationSpecs(), opts...)
}

// BackendName names the deployment of service in cluster.
func BackendName(service, cluster string) string {
	return service + "-" + cluster
}

// SplitName names the TrafficSplit that governs traffic from src to
// service. Each source cluster owns its own splits, matching the paper's
// production deployment where an L3 instance runs per cluster and adjusts
// that cluster's TrafficSplits from that cluster's proxy metrics.
func SplitName(src, service string) string {
	return src + "/" + service
}

// Services returns the application's service names in installation order.
func (a *App) Services() []string {
	return append([]string(nil), a.order...)
}

// CreateSplits creates one TrafficSplit per (source cluster, service) with
// equal weights across all clusters, named SplitName(src, service).
func (a *App) CreateSplits() error {
	for _, src := range a.clusters {
		for _, svc := range a.order {
			backends := make([]smi.Backend, 0, len(a.clusters))
			for _, c := range a.clusters {
				backends = append(backends, smi.Backend{Service: BackendName(svc, c), Weight: 500})
			}
			ts := &smi.TrafficSplit{Name: SplitName(src, svc), RootService: svc, Backends: backends}
			if err := a.mesh.Splits().Create(ts); err != nil {
				return fmt.Errorf("dsb: create split %s: %w", ts.Name, err)
			}
		}
	}
	return nil
}

// Clusters returns the clusters the application is deployed into.
func (a *App) Clusters() []string {
	return append([]string(nil), a.clusters...)
}

// SetPickerAll installs the same routing strategy constructor on every
// service (one picker instance per service, so per-service state like
// round-robin counters stays isolated).
func (a *App) SetPickerAll(newPicker func(service string) mesh.Picker) error {
	for _, svc := range a.order {
		if err := a.mesh.SetPicker(svc, newPicker(svc)); err != nil {
			return err
		}
	}
	return nil
}

func (a *App) computeProfile(spec ServiceSpec, rng *sim.Rand) backend.Profile {
	dist := sim.NewLogNormalFromQuantiles(spec.ComputeMedian, spec.ComputeP99)
	if !a.options.perfVariation {
		return func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return dist.Sample(r), true
		}
	}
	n := int(a.options.perfHorizon/time.Second) + 1
	// Two components of multi-tenant noise: a mild drift of the whole
	// distribution, and degradation episodes that manifest as intermittent
	// stalls — a fraction of requests slowed by an order of magnitude —
	// which inflate the tail far more than the mean (the "tail at scale"
	// phenomenon the paper builds on).
	scale := trace.Walk(rng, time.Second, n, 0.9, 1.2, 0.1)
	stall := trace.EpisodeMultipliers(rng, time.Second, n, 12, 20, 45, 2.0, 3.5)
	// Rare but extreme stalls: ~3 % of requests during an episode slow by
	// an order of magnitude or more. An episode is glaring at the 99th
	// percentile yet barely moves the median, and lasts a few tens of
	// seconds — long enough for a fast controller (L3's 5 s half-life) to
	// steer around, short enough that a cautious one (C3's conservative
	// smoothing) mostly misses it.
	const stallProb = 0.03
	return func(now time.Duration, r *sim.Rand) (time.Duration, bool) {
		d := float64(dist.Sample(r)) * scale.At(now)
		if e := stall.At(now); e > 1.05 && r.Bool(stallProb) {
			d *= 1 + (e-1)*25
		}
		return time.Duration(d), true
	}
}

// appServer is one (service, cluster) deployment: local compute modelled by
// a replica pool, then the downstream call plan executed through the mesh
// from this server's own cluster.
type appServer struct {
	app     *App
	cluster string
	spec    ServiceSpec
	rng     *sim.Rand
	compute *backend.Replica
}

var _ mesh.Server = (*appServer)(nil)

// Serve implements mesh.Server. The reported Result.Latency spans the
// whole server-side handling — local compute plus downstream stages — so
// distributed-tracing spans carry the true execution duration of mid-tier
// services.
func (s *appServer) Serve(done func(backend.Result)) {
	start := s.app.mesh.Engine().Now()
	timed := func(res backend.Result) {
		res.Latency = s.app.mesh.Engine().Now() - start
		done(res)
	}
	s.compute.Serve(func(res backend.Result) {
		if !res.Success || res.Rejected {
			timed(res)
			return
		}
		v := s.pickVariant()
		if v == nil || len(v.Stages) == 0 {
			timed(res)
			return
		}
		s.runStages(v.Stages, true, timed)
	})
}

func (s *appServer) pickVariant() *Variant {
	if len(s.spec.Variants) == 0 {
		return nil
	}
	if len(s.spec.Variants) == 1 {
		return &s.spec.Variants[0]
	}
	var total float64
	for i := range s.spec.Variants {
		total += s.spec.Variants[i].Weight
	}
	r := s.rng.Float64() * total
	for i := range s.spec.Variants {
		if r < s.spec.Variants[i].Weight {
			return &s.spec.Variants[i]
		}
		r -= s.spec.Variants[i].Weight
	}
	return &s.spec.Variants[len(s.spec.Variants)-1]
}

// runStages executes the remaining stages sequentially; within a stage all
// calls run in parallel. A request succeeds only if every downstream call
// succeeds.
func (s *appServer) runStages(stages []Stage, okSoFar bool, done func(backend.Result)) {
	if len(stages) == 0 {
		done(backend.Result{Success: okSoFar})
		return
	}
	stage := stages[0]
	remaining := len(stage)
	if remaining == 0 {
		s.runStages(stages[1:], okSoFar, done)
		return
	}
	stageOK := true
	for _, target := range stage {
		err := s.app.mesh.Call(s.cluster, target, func(r mesh.Result) {
			if !r.Success {
				stageOK = false
			}
			remaining--
			if remaining == 0 {
				s.runStages(stages[1:], okSoFar && stageOK, done)
			}
		})
		if err != nil {
			stageOK = false
			remaining--
			if remaining == 0 {
				s.runStages(stages[1:], okSoFar && stageOK, done)
			}
		}
	}
}
