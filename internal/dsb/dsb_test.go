package dsb

import (
	"testing"
	"time"

	"l3/internal/balancer"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

var testClusters = []string{"cluster-1", "cluster-2", "cluster-3"}

func newApp(t *testing.T) (*App, *mesh.Mesh, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	rng := sim.NewRand(7)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	app, err := InstallHotelReservation(m, testClusters, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	return app, m, engine
}

func TestInstallCreatesAllServicesAndBackends(t *testing.T) {
	app, m, _ := newApp(t)
	services := app.Services()
	if len(services) != 17 {
		t.Fatalf("installed %d services, want 17 (8 micro + 3 cache + 6 db)", len(services))
	}
	for _, svc := range services {
		s, ok := m.Service(svc)
		if !ok {
			t.Fatalf("service %s missing", svc)
		}
		if len(s.Backends()) != 3 {
			t.Fatalf("service %s has %d backends, want one per cluster", svc, len(s.Backends()))
		}
	}
}

func TestInstallValidatesGraph(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRand(7)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	bad := []ServiceSpec{{
		Name:          "a",
		ComputeMedian: time.Millisecond,
		ComputeP99:    time.Millisecond,
		Variants:      []Variant{{Weight: 1, Stages: []Stage{{"missing"}}}},
	}}
	if _, err := Install(m, testClusters, rng, bad); err == nil {
		t.Fatal("dangling call target accepted")
	}
	if _, err := Install(m, nil, rng, nil); err == nil {
		t.Fatal("empty clusters accepted")
	}
}

func TestInstallRejectsDuplicates(t *testing.T) {
	engine := sim.NewEngine()
	rng := sim.NewRand(7)
	m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	dup := []ServiceSpec{
		{Name: "a", ComputeMedian: time.Millisecond, ComputeP99: time.Millisecond},
		{Name: "a", ComputeMedian: time.Millisecond, ComputeP99: time.Millisecond},
	}
	if _, err := Install(m, testClusters, rng, dup); err == nil {
		t.Fatal("duplicate service accepted")
	}
}

func TestCreateSplitsCoversEveryService(t *testing.T) {
	app, m, _ := newApp(t)
	if err := app.CreateSplits(); err != nil {
		t.Fatal(err)
	}
	if m.Splits().Len() != 51 {
		t.Fatalf("splits = %d, want 17 services x 3 source clusters", m.Splits().Len())
	}
	ts, ok := m.Splits().Get(SplitName("cluster-2", "search"))
	if !ok || len(ts.Backends) != 3 {
		t.Fatalf("search split = %+v", ts)
	}
	for _, b := range ts.Backends {
		if b.Weight != 500 {
			t.Fatalf("initial weight = %d, want 500", b.Weight)
		}
	}
	if err := app.CreateSplits(); err == nil {
		t.Fatal("second CreateSplits should conflict")
	}
}

func TestEndToEndRequestCompletes(t *testing.T) {
	app, m, engine := newApp(t)
	_ = app.SetPickerAll(func(string) mesh.Picker { return balancer.NewRoundRobin() })
	var res mesh.Result
	got := false
	if err := m.Call("cluster-1", EntryService, func(r mesh.Result) { res, got = r, true }); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(time.Minute)
	if !got {
		t.Fatal("request never completed")
	}
	if !res.Success {
		t.Fatalf("request failed: %+v", res)
	}
	// A multi-hop request through caches/DBs plus several WAN hops: a few
	// ms at minimum, well under a second at idle.
	if res.Latency < 2*time.Millisecond || res.Latency > time.Second {
		t.Fatalf("end-to-end latency = %v, implausible", res.Latency)
	}
}

func TestWorkloadLatencyScaleMatchesPaper(t *testing.T) {
	// At 50 RPS round-robin, the P99 should sit at the tens-of-ms scale
	// (the paper measured ~93ms at 200 RPS on EC2).
	app, m, engine := newApp(t)
	_ = app.SetPickerAll(func(string) mesh.Picker { return balancer.NewRoundRobin() })
	gen := loadgen.New(engine, loadgen.Config{Rate: loadgen.ConstantRate(50)},
		func(done func(time.Duration, bool)) error {
			return m.Call("cluster-1", EntryService, func(r mesh.Result) {
				done(r.Latency, r.Success)
			})
		})
	gen.Start()
	engine.RunUntil(30 * time.Second)
	gen.Stop()
	engine.RunUntil(40 * time.Second)

	rec := gen.Recorder()
	if rec.Count() < 1400 {
		t.Fatalf("recorded %d requests, want ~1500", rec.Count())
	}
	if sr := rec.SuccessRate(); sr < 0.999 {
		t.Fatalf("success rate = %v, want ~1 (no failure injection)", sr)
	}
	p99 := rec.Quantile(0.99)
	if p99 < 20*time.Millisecond || p99 > 400*time.Millisecond {
		t.Fatalf("P99 = %v, want tens-of-ms scale", p99)
	}
	p50 := rec.Quantile(0.5)
	if p50 >= p99 || p50 < 5*time.Millisecond {
		t.Fatalf("P50 = %v (P99 %v), implausible", p50, p99)
	}
}

func TestRequestsFanOutAcrossClusters(t *testing.T) {
	app, m, engine := newApp(t)
	_ = app.SetPickerAll(func(string) mesh.Picker { return balancer.NewRoundRobin() })
	for i := 0; i < 200; i++ {
		engine.After(time.Duration(i)*20*time.Millisecond, func() {
			_ = m.Call("cluster-1", EntryService, func(mesh.Result) {})
		})
	}
	engine.RunUntil(time.Minute)
	// Round-robin must have exercised mongo backends in all clusters.
	reg := m.Registry()
	for _, c := range testClusters {
		total := 0.0
		for _, src := range testClusters {
			lbl := metrics.Labels{
				"service": "mongo-geo", "backend": BackendName("mongo-geo", c),
				"classification": mesh.ClassSuccess, "src": src,
			}
			total += reg.Counter(mesh.MetricResponseTotal, lbl).Value()
		}
		if total == 0 {
			t.Fatalf("mongo-geo in %s received no traffic under round-robin", c)
		}
	}
}

func TestFrontendVariantMixRoughlyHonoured(t *testing.T) {
	// search (60%) calls the search service; recommend (39%) calls
	// recommendation. Check the traffic ratio between those services.
	app, m, engine := newApp(t)
	_ = app.SetPickerAll(func(string) mesh.Picker { return balancer.NewRoundRobin() })
	for i := 0; i < 2000; i++ {
		engine.After(time.Duration(i)*2*time.Millisecond, func() {
			_ = m.Call("cluster-1", EntryService, func(mesh.Result) {})
		})
	}
	engine.RunUntil(time.Minute)
	reg := m.Registry()
	count := func(svc string) float64 {
		var total float64
		for _, c := range testClusters {
			for _, src := range testClusters {
				lbl := metrics.Labels{"service": svc, "backend": BackendName(svc, c),
					"classification": mesh.ClassSuccess, "src": src}
				total += reg.Counter(mesh.MetricResponseTotal, lbl).Value()
			}
		}
		return total
	}
	searches, recs := count("search"), count("recommendation")
	if searches == 0 || recs == 0 {
		t.Fatal("variant services unreached")
	}
	ratio := searches / recs
	if ratio < 1.2 || ratio > 2.0 {
		t.Fatalf("search/recommendation ratio = %v, want ~1.54 (60/39)", ratio)
	}
}

func TestBackendNameFormat(t *testing.T) {
	if BackendName("geo", "cluster-2") != "geo-cluster-2" {
		t.Fatal("BackendName format changed")
	}
}

func TestPerfVariationWidensTail(t *testing.T) {
	run := func(opts ...InstallOption) time.Duration {
		engine := sim.NewEngine()
		rng := sim.NewRand(5)
		m := mesh.New(engine, rng.Fork(), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
		app, err := InstallHotelReservation(m, testClusters, rng.Fork(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		_ = app.SetPickerAll(func(string) mesh.Picker { return balancer.NewRoundRobin() })
		gen := loadgen.New(engine, loadgen.Config{Rate: loadgen.ConstantRate(150)},
			func(done func(time.Duration, bool)) error {
				return m.Call("cluster-1", EntryService, func(r mesh.Result) { done(r.Latency, r.Success) })
			})
		gen.Start()
		engine.RunUntil(3 * time.Minute)
		return gen.Recorder().Quantile(0.999)
	}
	plain := run()
	varied := run(WithPerfVariation())
	if varied <= plain {
		t.Fatalf("perf variation did not widen the tail: %v vs %v", varied, plain)
	}
}

func TestSplitNameFormat(t *testing.T) {
	if SplitName("cluster-2", "geo") != "cluster-2/geo" {
		t.Fatal("SplitName format changed")
	}
}

func TestClustersAccessorCopies(t *testing.T) {
	app, _, _ := newApp(t)
	cs := app.Clusters()
	if len(cs) != 3 {
		t.Fatalf("Clusters = %v", cs)
	}
	cs[0] = "mutated"
	if app.Clusters()[0] == "mutated" {
		t.Fatal("Clusters aliases internal state")
	}
}
