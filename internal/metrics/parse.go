package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseExposition reads the Prometheus text exposition format (version
// 0.0.4) — the inverse of WritePrometheus. It is how cmd/l3serve's control
// plane ingests its own data plane's /metrics over real HTTP, exactly as
// the Prometheus in the paper's Figure 5 would, so the L3 controller steers
// from scraped text rather than in-process registry pointers.
//
// The parser enforces the grammar a real Prometheus enforces: metric and
// label names from [a-zA-Z_:][a-zA-Z0-9_:]*, label values quoted with only
// \\, \" and \n escapes, a float value (NaN/+Inf/-Inf accepted), and an
// optional integer millisecond timestamp. Malformed lines fail with the
// line number rather than being skipped — a scrape that half-parses is
// worse than one that errors.
//
// Sample kinds come from "# TYPE" comments when present; without one, the
// conventional suffixes _total, _bucket, _sum and _count mark a series
// cumulative (KindCounter) and anything else scrapes as a gauge — the same
// classification the registry itself uses for histogram expansions.
func ParseExposition(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Sample
	types := make(map[string]Kind)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if family, kind, ok := parseTypeComment(line); ok {
				types[family] = kind
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		s.Kind = kindFor(s.Name, types)
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: reading exposition: %w", err)
	}
	return out, nil
}

// parseTypeComment recognises "# TYPE <family> <kind>" comments; every
// other comment (HELP, freeform) parses as ok=false and is ignored.
func parseTypeComment(line string) (family string, kind Kind, ok bool) {
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "#" || fields[1] != "TYPE" {
		return "", 0, false
	}
	switch fields[3] {
	case "counter", "histogram", "summary":
		// Histogram/summary component series are cumulative.
		return fields[2], KindCounter, true
	case "gauge", "untyped":
		return fields[2], KindGauge, true
	}
	return "", 0, false
}

func kindFor(name string, types map[string]Kind) Kind {
	if k, ok := types[name]; ok {
		return k
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if family, ok := strings.CutSuffix(name, suffix); ok {
			if k, ok := types[family]; ok {
				return k
			}
			return KindCounter
		}
	}
	if strings.HasSuffix(name, "_total") {
		return KindCounter
	}
	return KindGauge
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest, name, err := scanName(line)
	if err != nil {
		return s, err
	}
	s.Name = name
	if strings.HasPrefix(rest, "{") {
		if s.Labels, rest, err = scanLabels(rest); err != nil {
			return s, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value after %q", s.Name)
	}
	if len(fields) > 2 {
		return s, fmt.Errorf("trailing garbage after value: %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		// Optional millisecond timestamp; validated then dropped (the
		// ingesting scraper stamps samples with its own scrape time, like
		// Prometheus does by default).
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q: %w", fields[1], err)
		}
	}
	return s, nil
}

// scanName splits the leading metric name off a sample line.
func scanName(line string) (rest, name string, err error) {
	i := 0
	for i < len(line) && isNameRune(line[i], i) {
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("expected metric name, got %q", line)
	}
	return line[i:], line[:i], nil
}

func isNameRune(c byte, pos int) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return pos > 0
	}
	return false
}

// scanLabels parses a {name="value",...} block, unescaping values.
func scanLabels(in string) (Labels, string, error) {
	labels := make(Labels)
	rest := in[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		var name string
		var err error
		if rest, name, err = scanName(rest); err != nil {
			return nil, "", fmt.Errorf("expected label name: %w", err)
		}
		rest = strings.TrimLeft(rest, " \t")
		if !strings.HasPrefix(rest, "=") {
			return nil, "", fmt.Errorf("expected '=' after label %q", name)
		}
		rest = strings.TrimLeft(rest[1:], " \t")
		var value string
		if value, rest, err = scanQuoted(rest); err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		labels[name] = value
		rest = strings.TrimLeft(rest, " \t")
		switch {
		case strings.HasPrefix(rest, ","):
			rest = rest[1:] // trailing comma before '}' is legal
		case strings.HasPrefix(rest, "}"):
			return labels, rest[1:], nil
		default:
			return nil, "", fmt.Errorf("expected ',' or '}' after label %q", name)
		}
	}
}

// scanQuoted parses a double-quoted label value with exposition escaping:
// \\ and \" and \n are the only escape sequences.
func scanQuoted(in string) (value, rest string, err error) {
	if !strings.HasPrefix(in, `"`) {
		return "", "", fmt.Errorf("expected quoted value, got %q", in)
	}
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("unterminated escape in %q", in)
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value in %q", in)
}
