package metrics

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLabelsKeyCanonicalOrder(t *testing.T) {
	a := Labels{"b": "2", "a": "1"}
	b := Labels{"a": "1", "b": "2"}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != "a=1,b=2" {
		t.Fatalf("key = %q", a.Key())
	}
	if Labels(nil).Key() != "" {
		t.Fatalf("nil labels key = %q, want empty", Labels(nil).Key())
	}
}

func TestLabelsCloneIndependence(t *testing.T) {
	a := Labels{"x": "1"}
	c := a.Clone()
	c["x"] = "2"
	if a["x"] != "1" {
		t.Fatal("Clone shares storage with original")
	}
}

func TestLabelsWithDoesNotMutate(t *testing.T) {
	a := Labels{"x": "1"}
	b := a.With("y", "2")
	if _, ok := a["y"]; ok {
		t.Fatal("With mutated the receiver")
	}
	if b["x"] != "1" || b["y"] != "2" {
		t.Fatalf("With result wrong: %v", b)
	}
}

func TestLabelsMatches(t *testing.T) {
	l := Labels{"cluster": "c1", "service": "s"}
	if !l.Matches(Labels{"cluster": "c1"}) {
		t.Fatal("subset match failed")
	}
	if !l.Matches(nil) {
		t.Fatal("empty matcher should match everything")
	}
	if l.Matches(Labels{"cluster": "c2"}) {
		t.Fatal("mismatched value matched")
	}
	if l.Matches(Labels{"zone": "z"}) {
		t.Fatal("absent label matched")
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored
	if c.Value() != 3.5 {
		t.Fatalf("Value = %v, want 3.5", c.Value())
	}
}

func TestGaugeOps(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if g.Value() != 3 {
		t.Fatalf("Value = %v, want 3", g.Value())
	}
}

func TestHistogramObserveAndBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", Labels{"b": "x"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1) // le semantics: exactly on the bound
	h.Observe(0.5)
	h.Observe(5) // overflow
	if h.Count() != 4 {
		t.Fatalf("Count = %v, want 4", h.Count())
	}
	if h.Sum() != 5.65 {
		t.Fatalf("Sum = %v, want 5.65", h.Sum())
	}

	samples := r.Snapshot()
	want := map[string]float64{
		"lat_bucket|0.1":  2,
		"lat_bucket|1":    3,
		"lat_bucket|+Inf": 4,
		"lat_sum|":        5.65,
		"lat_count|":      4,
	}
	got := make(map[string]float64)
	for _, s := range samples {
		got[s.Name+"|"+s.Labels["le"]] = s.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("sample %s = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x", Labels{"a": "1"})
	c2 := r.Counter("x", Labels{"a": "1"})
	if c1 != c2 {
		t.Fatal("same series returned different counters")
	}
	c3 := r.Counter("x", Labels{"a": "2"})
	if c1 == c3 {
		t.Fatal("different labels returned same counter")
	}
}

func TestRegistrySnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", nil).Inc()
	r.Counter("a", nil).Inc()
	r.Gauge("g", Labels{"x": "1"}).Set(2)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != 3 || len(s2) != 3 {
		t.Fatalf("snapshot sizes: %d, %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name {
			t.Fatal("snapshot order not stable across scrapes")
		}
	}
	if s1[0].Name != "b" || s1[1].Name != "a" {
		t.Fatal("snapshot not in registration order")
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", nil, []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registration with different bounds did not panic")
		}
	}()
	r.Histogram("h", nil, []float64{1})
}

func TestHistogramNoBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty bounds did not panic")
		}
	}()
	NewRegistry().Histogram("h", nil, nil)
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", nil, []float64{1, 0.1})
	h.Observe(0.5)
	samples := r.Snapshot()
	// bucket le=0.1 must be 0, le=1 must be 1
	for _, s := range samples {
		switch s.Labels["le"] {
		case "0.1":
			if s.Value != 0 {
				t.Fatalf("le=0.1 bucket = %v, want 0", s.Value)
			}
		case "1":
			if s.Value != 1 {
				t.Fatalf("le=1 bucket = %v, want 1", s.Value)
			}
		}
	}
}

func TestConcurrentCounterAdds(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", Labels{"w": "shared"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", Labels{"w": "shared"}).Value(); got != 8000 {
		t.Fatalf("concurrent count = %v, want 8000", got)
	}
}

func TestSnapshotLabelsIndependentOfCallerMap(t *testing.T) {
	// Snapshot labels are registry-owned and read-only by contract
	// (see SnapshotAppend); what must hold is that mutating the map the
	// caller registered with does not leak into snapshots.
	caller := Labels{"a": "1"}
	r := NewRegistry()
	r.Counter("c", caller).Inc()
	caller["a"] = "mutated"
	s := r.Snapshot()
	if s[0].Labels["a"] != "1" {
		t.Fatal("snapshot labels alias the caller's registration map")
	}
}

func TestSnapshotAppendReusesBuffer(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", Labels{"a": "1"}).Inc()
	r.Gauge("g", Labels{"a": "1"}).Set(2)
	r.Histogram("h", Labels{"a": "1"}, []float64{1, 2}).Observe(1.5)

	buf := r.SnapshotAppend(nil)
	want := r.Snapshot()
	if len(buf) != len(want) {
		t.Fatalf("len = %d, want %d", len(buf), len(want))
	}
	for i := range buf {
		if buf[i].Name != want[i].Name || buf[i].Value != want[i].Value ||
			buf[i].Kind != want[i].Kind || buf[i].Labels.Key() != want[i].Labels.Key() {
			t.Fatalf("sample %d: %+v != %+v", i, buf[i], want[i])
		}
	}

	// A warm buffer round-trips without growing or allocating.
	r.Counter("c", Labels{"a": "1"}).Inc()
	allocs := testing.AllocsPerRun(100, func() {
		buf = r.SnapshotAppend(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("warm SnapshotAppend allocated %.0f times, want 0", allocs)
	}
	if buf[0].Value != 2 {
		t.Fatalf("reused buffer holds stale value %v", buf[0].Value)
	}
}

func TestSnapshotAllocsPinned(t *testing.T) {
	// Satellite pin: a cold Snapshot on a populated registry must stay at
	// ≤ 2 allocations (the output slice; histogram expansion and label maps
	// are pre-built at registration).
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		l := Labels{"cluster": string(rune('a' + i))}
		r.Counter("req_total", l).Inc()
		r.Gauge("inflight", l).Set(float64(i))
		r.Histogram("latency", l, []float64{1, 5, 10, 50, 100}).Observe(float64(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = r.Snapshot()
	})
	if allocs > 2 {
		t.Fatalf("Snapshot allocated %.0f times, want ≤ 2", allocs)
	}
}

func TestLabelsKeyInjectiveProperty(t *testing.T) {
	// Distinct label sets must produce distinct keys.
	f := func(a, b uint8) bool {
		l1 := Labels{"k": string(rune('a' + a%26))}
		l2 := Labels{"k": string(rune('a' + b%26))}
		if a%26 == b%26 {
			return l1.Key() == l2.Key()
		}
		return l1.Key() != l2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
