package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry's current state in the Prometheus
// text exposition format (version 0.0.4): one line per sample, labels
// sorted, histogram series already expanded into _bucket/_sum/_count by
// Snapshot. Samples are grouped by family and sorted for stable output.
//
// This is the read side a real deployment scrapes over HTTP; the paper's
// L3 exposes both the data-plane metrics and its own internal state this
// way so "human operators and other systems can infer the internal state
// at any point in time" (§4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		li, lj := samples[i].Labels, samples[j].Labels
		// Histogram buckets sort by their numeric bound, +Inf last — the
		// order Prometheus's linter expects — not by the lexical label key
		// (which would put le="10" before le="5" and +Inf first).
		if vi, ok := li["le"]; ok {
			if vj, ok := lj["le"]; ok {
				ki, kj := li.keyWithout("le"), lj.keyWithout("le")
				if ki != kj {
					return ki < kj
				}
				return leBound(vi) < leBound(vj)
			}
		}
		return li.Key() < lj.Key()
	})
	for _, s := range samples {
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

// keyWithout returns the canonical label key with one label dropped.
func (l Labels) keyWithout(skip string) string {
	names := make([]string, 0, len(l))
	for k := range l {
		if k != skip {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// leBound parses a bucket's upper bound for sort order; unparsable bounds
// sort last alongside +Inf.
func leBound(v string) float64 {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return math.Inf(1)
	}
	return f
}

func writeSample(w io.Writer, s Sample) error {
	var b strings.Builder
	b.WriteString(sanitizeName(s.Name))
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		names := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			names = append(names, k)
		}
		sort.Strings(names)
		for i, k := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(sanitizeName(k))
			b.WriteByte('=')
			writeEscapedLabelValue(&b, s.Labels[k])
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// writeEscapedLabelValue quotes a label value with the exposition format's
// escaping: exactly backslash, double-quote and newline are escaped, and
// everything else (including non-ASCII UTF-8) passes through raw. This is
// narrower than strconv.Quote, whose \u/\x escapes Prometheus does not
// understand.
func writeEscapedLabelValue(b *strings.Builder, v string) {
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// formatValue renders a sample value the way Prometheus does (shortest
// round-trippable form; +Inf/-Inf/NaN spelled out).
func formatValue(v float64) string {
	switch {
	case v != v: // NaN
		return "NaN"
	case v > maxFloat:
		return "+Inf"
	case v < -maxFloat:
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

const maxFloat = 1.7976931348623157e308

// sanitizeName maps arbitrary names onto the Prometheus metric/label name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; invalid runes become underscores.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Fprint renders one family's samples with a HELP/TYPE header — a
// convenience for debugging dumps.
func Fprint(w io.Writer, r *Registry, family, help, kind string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		sanitizeName(family), help, sanitizeName(family), kind); err != nil {
		return err
	}
	for _, s := range r.Snapshot() {
		if s.Name != family && !strings.HasPrefix(s.Name, family+"_") {
			continue
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}
