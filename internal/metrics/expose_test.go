package metrics

import (
	"strings"
	"testing"
)

func TestWritePrometheusBasic(t *testing.T) {
	r := NewRegistry()
	r.Counter("response_total", Labels{"backend": "b1", "classification": "success"}).Add(42)
	r.Gauge("request_inflight", Labels{"backend": "b1"}).Set(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		`request_inflight{backend="b1"} 3`,
		`response_total{backend="b1",classification="success"} 42`,
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w+"\n") {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
}

func TestWritePrometheusHistogramExpansion(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", Labels{"b": "x"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`lat_bucket{b="x",le="0.1"} 1`,
		`lat_bucket{b="x",le="1"} 2`,
		`lat_bucket{b="x",le="+Inf"} 2`,
		`lat_sum{b="x"} 0.55`,
		`lat_count{b="x"} 2`,
	} {
		if !strings.Contains(out, w+"\n") {
			t.Fatalf("missing %q:\n%s", w, out)
		}
	}
}

func TestWritePrometheusSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", nil).Inc()
	r.Counter("aaa", Labels{"x": "2"}).Inc()
	r.Counter("aaa", Labels{"x": "1"}).Inc()
	var b1, b2 strings.Builder
	_ = r.WritePrometheus(&b1)
	_ = r.WritePrometheus(&b2)
	if b1.String() != b2.String() {
		t.Fatal("exposition not stable across calls")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if !strings.HasPrefix(lines[0], `aaa{x="1"}`) || !strings.HasPrefix(lines[2], "zzz") {
		t.Fatalf("not sorted:\n%s", b1.String())
	}
}

func TestWritePrometheusEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", Labels{"path": `a"b\c`}).Inc()
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `path="a\"b\\c"`) {
		t.Fatalf("label value not quoted: %s", b.String())
	}
}

func TestSanitizeName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"response_total", "response_total"},
		{"foo-bar.baz", "foo_bar_baz"},
		{"9lives", "_lives"},
		{"a9", "a9"},
		{"", "_"},
		{"ns:metric", "ns:metric"},
	}
	for _, tt := range tests {
		if got := sanitizeName(tt.in); got != tt.want {
			t.Fatalf("sanitizeName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFormatValueSpecials(t *testing.T) {
	nan := 0.0
	nan /= nan // silence constant-expression analysis; still NaN at runtime
	if formatValue(nan) != "NaN" {
		t.Fatal("NaN formatting")
	}
	if formatValue(1.5) != "1.5" {
		t.Fatalf("plain formatting: %s", formatValue(1.5))
	}
}

func TestFprintFamilyHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs", nil).Add(5)
	r.Counter("other", nil).Add(9)
	var b strings.Builder
	if err := Fprint(&b, r, "reqs", "requests served", "counter"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# HELP reqs requests served") ||
		!strings.Contains(out, "# TYPE reqs counter") ||
		!strings.Contains(out, "reqs 5") {
		t.Fatalf("Fprint output:\n%s", out)
	}
	if strings.Contains(out, "other") {
		t.Fatalf("Fprint leaked other families:\n%s", out)
	}
}
