package metrics

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// exposeTestRegistry builds a registry exercising every exposition corner:
// label values that need escaping, multiple label sets on one family, and a
// histogram whose bounds would sort wrongly as strings ("10" < "5").
func exposeTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", Labels{"backend": "a-1", "path": `multi
line`}).Add(3)
	r.Counter("requests_total", Labels{"backend": "a-1", "path": `quote"and\slash`}).Add(4)
	r.Counter("requests_total", Labels{"backend": "é-utf8"}).Add(5)
	r.Gauge("inflight", nil).Set(2)
	h := r.Histogram("latency_seconds", Labels{"backend": "a-1"}, []float64{0.5, 5, 10})
	h.Observe(0.25)
	h.Observe(7)
	return r
}

// TestWritePrometheusGolden pins the exact rendered exposition: label
// escaping (only \\ \" \n, UTF-8 raw), deterministic label ordering,
// histogram le in numeric order with +Inf last, and _sum/_count pairing.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := exposeTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `inflight 2
latency_seconds_bucket{backend="a-1",le="0.5"} 1
latency_seconds_bucket{backend="a-1",le="5"} 1
latency_seconds_bucket{backend="a-1",le="10"} 2
latency_seconds_bucket{backend="a-1",le="+Inf"} 2
latency_seconds_count{backend="a-1"} 2
latency_seconds_sum{backend="a-1"} 7.25
requests_total{backend="a-1",path="multi\nline"} 3
requests_total{backend="a-1",path="quote\"and\\slash"} 4
requests_total{backend="é-utf8"} 5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Exposition-format grammar (text format 0.0.4), one sample line:
// name, optional label block with escaped quoted values, float value,
// optional ms timestamp.
var sampleLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*` + // metric name
		`(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(\\\\|\\"|\\n|[^"\\])*"` + // first label
		`(,[a-zA-Z_:][a-zA-Z0-9_:]*="(\\\\|\\"|\\n|[^"\\])*")*,?\})?` + // rest
		` (NaN|[+-]Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)` + // value
		`( -?[0-9]+)?$`) // optional timestamp

// TestWritePrometheusMatchesGrammar validates every emitted line against
// the exposition grammar, so a real Prometheus can scrape l3serve.
func TestWritePrometheusMatchesGrammar(t *testing.T) {
	var b strings.Builder
	if err := exposeTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// The escaped newline must never become a literal line break; every
	// physical line must be one grammatical sample.
	for i, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !sampleLineRE.MatchString(line) {
			t.Errorf("line %d violates exposition grammar: %q", i+1, line)
		}
	}
}

// TestExpositionRoundTrip pins that ParseExposition inverts WritePrometheus
// — the contract the serve control plane relies on when it scrapes its own
// data plane over HTTP.
func TestExpositionRoundTrip(t *testing.T) {
	reg := exposeTestRegistry()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := reg.Snapshot()
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d samples, registry holds %d", len(parsed), len(want))
	}
	byKey := make(map[string]Sample, len(parsed))
	for _, s := range parsed {
		byKey[s.Name+"|"+s.Labels.Key()] = s
	}
	for _, w := range want {
		g, ok := byKey[w.Name+"|"+w.Labels.Key()]
		if !ok {
			t.Fatalf("series %s{%s} lost in round trip", w.Name, w.Labels.Key())
		}
		if g.Value != w.Value {
			t.Errorf("%s{%s}: value %v, want %v", w.Name, w.Labels.Key(), g.Value, w.Value)
		}
		if g.Kind != w.Kind {
			t.Errorf("%s{%s}: kind %v, want %v", w.Name, w.Labels.Key(), g.Kind, w.Kind)
		}
	}
}

func TestParseExpositionTypeComments(t *testing.T) {
	in := `# HELP speed how fast
# TYPE speed counter
speed 3
# TYPE depth gauge
depth 4
# TYPE lat histogram
lat_bucket{le="+Inf"} 1
lat_sum 0.5
lat_count 1
free_form 9
hits_total 2
`
	samples, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]Kind)
	for _, s := range samples {
		kinds[s.Name] = s.Kind
	}
	for name, want := range map[string]Kind{
		"speed":      KindCounter, // explicit TYPE
		"depth":      KindGauge,
		"lat_bucket": KindCounter, // family TYPE histogram
		"lat_sum":    KindCounter,
		"lat_count":  KindCounter,
		"free_form":  KindGauge,   // untyped, no suffix
		"hits_total": KindCounter, // _total convention
	} {
		if kinds[name] != want {
			t.Errorf("%s parsed as kind %v, want %v", name, kinds[name], want)
		}
	}
}

func TestParseExpositionValuesAndTimestamps(t *testing.T) {
	in := `a NaN
b +Inf 1700000000000
c -Inf
d 1.5e-3
`
	samples, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4", len(samples))
	}
	if !math.IsNaN(samples[0].Value) {
		t.Errorf("a = %v, want NaN", samples[0].Value)
	}
	if !math.IsInf(samples[1].Value, 1) || !math.IsInf(samples[2].Value, -1) {
		t.Errorf("b, c = %v, %v; want +Inf, -Inf", samples[1].Value, samples[2].Value)
	}
	if samples[3].Value != 0.0015 {
		t.Errorf("d = %v, want 0.0015", samples[3].Value)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`9metric 1`,                              // name starts with digit
		`m{l="x} 1`,                              // unterminated quote
		`m{l="x"`,                                // unterminated label block
		`m{l="a\t"} 1`,                           // unknown escape
		`m{l=unquoted} 1`,                        // bare label value
		`m`,                                      // missing value
		`m 1 2 3`,                                // trailing garbage
		`m notanumber`,                           // bad value
		`m 1 yesterday`,                          // bad timestamp
		`m{l="v" k="w"} 1`,                       // missing comma
		strings.Repeat("m 1\n", 1) + `{x="y"} 1`, // empty name
	} {
		if _, err := ParseExposition(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseExposition accepted malformed input %q", bad)
		}
	}
}

func TestParseExpositionTrailingComma(t *testing.T) {
	samples, err := ParseExposition(strings.NewReader(`m{a="1",b="2",} 7` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Labels["a"] != "1" || samples[0].Labels["b"] != "2" || samples[0].Value != 7 {
		t.Fatalf("trailing-comma label block parsed as %+v", samples)
	}
}

// TestLeBoundOrdering pins the numeric ordering helper directly against the
// string orderings it exists to avoid.
func TestLeBoundOrdering(t *testing.T) {
	order := []string{"0.005", "0.5", "5", "10", "+Inf"}
	for i := 1; i < len(order); i++ {
		if !(leBound(order[i-1]) < leBound(order[i])) {
			t.Errorf("leBound(%q) !< leBound(%q)", order[i-1], order[i])
		}
	}
	if _, err := strconv.ParseFloat("+Inf", 64); err != nil {
		t.Fatal("strconv no longer parses +Inf; leBound needs a fallback")
	}
}
