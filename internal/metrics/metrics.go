// Package metrics is a Prometheus-flavoured instrumentation substrate: a
// registry of labelled counters, gauges and cumulative-bucket histograms
// that can be scraped into point-in-time samples.
//
// It mirrors the subset of the Prometheus data model that Linkerd's proxy
// metrics use and that L3 consumes: monotonically increasing counters (e.g.
// response_total), gauges (in-flight requests) and histograms with explicit
// upper bounds (response_latency). Histograms flatten into *_bucket samples
// with an "le" label plus *_sum and *_count, exactly as a Prometheus scrape
// would render them.
//
// Series are lock-free on the write side: counters, gauges and histogram
// buckets are atomics, so a data-plane observation costs a few atomic
// operations and allocates nothing. The registry lock only guards series
// registration and the scrape pass. Like Prometheus itself, a scrape
// concurrent with writers has no cross-series atomicity guarantee; in the
// simulator both run on the engine's single thread, where a scrape is
// coherent by construction.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a set of label name/value pairs identifying one time series of
// a metric family.
type Labels map[string]string

// Clone returns an independent copy of the label set.
func (l Labels) Clone() Labels {
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// With returns a copy of the label set with one extra pair.
func (l Labels) With(name, value string) Labels {
	c := l.Clone()
	c[name] = value
	return c
}

// Matches reports whether every pair in m is present in l (subset match,
// like a PromQL equality selector).
func (l Labels) Matches(m Labels) bool {
	for k, v := range m {
		if l[k] != v {
			return false
		}
	}
	return true
}

// Key returns the canonical form of the label set, usable as a map key.
func (l Labels) Key() string {
	if len(l) == 0 {
		return ""
	}
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// String renders the label set in Prometheus exposition style.
func (l Labels) String() string {
	return "{" + l.Key() + "}"
}

// Kind classifies a sample's series for ingestion-side consumers: counters
// are monotone by contract (resets excepted), gauges move freely. Histogram
// expansions (_bucket/_sum/_count) are cumulative and scrape as counters.
type Kind uint8

const (
	// KindCounter marks a monotonically increasing series.
	KindCounter Kind = iota + 1
	// KindGauge marks a free-moving series.
	KindGauge
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Sample is one scraped value of one series at scrape time.
type Sample struct {
	Name   string
	Labels Labels
	Kind   Kind
	Value  float64
}

// atomicFloat is a float64 updated through compare-and-swap on its bit
// pattern — the lock-free substrate under counters, gauges and histogram
// sums.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. Safe for concurrent use;
// updates are lock-free and allocation-free.
type Counter struct {
	v atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored: counters are
// monotone by contract.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.v.add(delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down. Safe for concurrent use;
// updates are lock-free and allocation-free.
type Gauge struct {
	v atomicFloat
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add shifts the value by delta (may be negative).
func (g *Gauge) Add(delta float64) { g.v.add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram is a cumulative-bucket histogram over explicit upper bounds
// (seconds for latency histograms). Safe for concurrent use; observations
// are lock-free (a binary search plus three atomic updates) and
// allocation-free.
type Histogram struct {
	bounds []float64       // sorted ascending; +Inf bucket implied
	counts []atomic.Uint64 // len(bounds)+1, per-bucket (cumulated at scrape)
	sum    atomicFloat
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value (same unit as the bounds).
func (h *Histogram) Observe(v float64) {
	// Inlined sort.SearchFloat64s: find the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() float64 { return float64(h.total.Load()) }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Bounds returns the histogram's upper bounds (shared, do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// snapshot appends the histogram's flattened samples through the
// registration-time sample templates (see registered.templates), so a
// scrape builds no label maps and formats no bounds.
func (h *Histogram) snapshot(reg *registered, out []Sample) []Sample {
	cum := 0.0
	tpl := reg.templates
	for i := range h.counts {
		cum += float64(h.counts[i].Load())
		s := tpl[i]
		s.Value = cum
		out = append(out, s)
	}
	sum := tpl[len(h.counts)]
	sum.Value = h.sum.load()
	count := tpl[len(h.counts)+1]
	count.Value = float64(h.total.Load())
	return append(out, sum, count)
}

// reset zeroes the histogram, as a restarted process would re-expose it.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.store(0)
	h.total.Store(0)
}

// Registry holds metric families and hands out series on demand
// (get-or-create semantics, like promauto). Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	order      []registered
	samples    int // total flattened sample count across order (histograms expand)
}

// registered is one series in registration order, holding the series
// directly so a scrape never goes back through the lookup maps, plus the
// series' sample templates: everything about a sample except its value is
// fixed once, so the scrape path fills in values and allocates nothing.
// Templates build lazily on the series' first snapshot — not at
// registration, which keeps lazy first-request registration on the data
// plane's hot path as cheap as it always was. Template label maps are
// shared across scrapes by contract (see SnapshotAppend).
type registered struct {
	name      string
	labels    Labels
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	// templates holds value-less samples: one for a counter/gauge; for a
	// histogram, one per bucket (with the "le" label and formatted bound
	// baked in) followed by _sum and _count. nil until first snapshot.
	templates []Sample
}

// buildTemplates fills reg.templates; called under the registry lock on the
// series' first snapshot.
func (reg *registered) buildTemplates() {
	switch {
	case reg.counter != nil:
		reg.templates = []Sample{{Name: reg.name, Labels: reg.labels, Kind: KindCounter}}
	case reg.gauge != nil:
		reg.templates = []Sample{{Name: reg.name, Labels: reg.labels, Kind: KindGauge}}
	case reg.histogram != nil:
		h := reg.histogram
		templates := make([]Sample, 0, len(h.counts)+2)
		for i := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			templates = append(templates, Sample{
				Name: reg.name + "_bucket", Labels: reg.labels.With("le", le), Kind: KindCounter,
			})
		}
		reg.templates = append(templates,
			Sample{Name: reg.name + "_sum", Labels: reg.labels, Kind: KindCounter},
			Sample{Name: reg.name + "_count", Labels: reg.labels, Kind: KindCounter},
		)
	}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func seriesKey(name string, labels Labels) string {
	return name + "\x00" + labels.Key()
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.order = append(r.order, registered{name: name, labels: labels.Clone(), counter: c})
		r.samples++
	}
	return c
}

// Gauge returns the gauge series for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.order = append(r.order, registered{name: name, labels: labels.Clone(), gauge: g})
		r.samples++
	}
	return g
}

// Histogram returns the histogram series for (name, labels), creating it
// with the given bounds on first use. Later calls must pass equal bounds; a
// mismatch panics, as it indicates two incompatible registrations of the
// same family.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: Histogram registered with no bounds")
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[key] = h
		r.order = append(r.order, registered{name: name, labels: labels.Clone(), histogram: h})
		r.samples += len(h.counts) + 2
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("metrics: histogram %s re-registered with different bounds", name))
	}
	return h
}

// Snapshot renders every series into flat samples, in registration order
// (stable across scrapes). Histograms expand into _bucket/_sum/_count.
// Equivalent to SnapshotAppend(nil); the label-sharing contract below
// applies here too.
func (r *Registry) Snapshot() []Sample {
	return r.SnapshotAppend(nil)
}

// SnapshotAppend appends every series' current sample to out and returns
// the extended slice, in registration order (stable across scrapes).
// Histograms expand into _bucket/_sum/_count. Scrape loops pass a recycled
// buffer (`buf = reg.SnapshotAppend(buf[:0])`); once the buffer has grown
// to the registry's series count, a scrape allocates nothing.
//
// Sample label maps are the registry's registration-time sets, shared
// across snapshots and across callers: they must be treated as read-only.
// Consumers that retain labels past the scrape (the time-series DB, the
// hygiene gate) already clone on first sight.
//
// The whole pass runs under one lock acquisition, so a scrape sees a single
// coherent registration state instead of re-locking per series (the old
// per-series locking let a request land between two series reads and render
// a response_total increment without its response_latency observation).
// Value reads are atomic loads; when callers follow the simulator's
// single-threaded execution model, the snapshot is an exact point-in-time
// cut between events.
func (r *Registry) SnapshotAppend(out []Sample) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if out == nil {
		out = make([]Sample, 0, r.samples)
	}
	for i := range r.order {
		reg := &r.order[i]
		if reg.templates == nil {
			reg.buildTemplates()
		}
		switch {
		case reg.counter != nil:
			s := reg.templates[0]
			s.Value = reg.counter.Value()
			out = append(out, s)
		case reg.gauge != nil:
			s := reg.templates[0]
			s.Value = reg.gauge.Value()
			out = append(out, s)
		case reg.histogram != nil:
			out = reg.histogram.snapshot(reg, out)
		}
	}
	return out
}

// ResetCounters zeroes every counter and histogram series whose labels match
// (subset match), emulating the counter reset a pod restart produces: the
// cumulative series re-expose from zero while gauges keep tracking live
// state. Returns the number of series reset.
func (r *Registry) ResetCounters(match Labels) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.order {
		reg := &r.order[i]
		if !reg.labels.Matches(match) {
			continue
		}
		switch {
		case reg.counter != nil:
			reg.counter.v.store(0)
			n++
		case reg.histogram != nil:
			reg.histogram.reset()
			n++
		}
	}
	return n
}
