// Package metrics is a Prometheus-flavoured instrumentation substrate: a
// registry of labelled counters, gauges and cumulative-bucket histograms
// that can be scraped into point-in-time samples.
//
// It mirrors the subset of the Prometheus data model that Linkerd's proxy
// metrics use and that L3 consumes: monotonically increasing counters (e.g.
// response_total), gauges (in-flight requests) and histograms with explicit
// upper bounds (response_latency). Histograms flatten into *_bucket samples
// with an "le" label plus *_sum and *_count, exactly as a Prometheus scrape
// would render them.
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is a set of label name/value pairs identifying one time series of
// a metric family.
type Labels map[string]string

// Clone returns an independent copy of the label set.
func (l Labels) Clone() Labels {
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// With returns a copy of the label set with one extra pair.
func (l Labels) With(name, value string) Labels {
	c := l.Clone()
	c[name] = value
	return c
}

// Matches reports whether every pair in m is present in l (subset match,
// like a PromQL equality selector).
func (l Labels) Matches(m Labels) bool {
	for k, v := range m {
		if l[k] != v {
			return false
		}
	}
	return true
}

// Key returns the canonical form of the label set, usable as a map key.
func (l Labels) Key() string {
	if len(l) == 0 {
		return ""
	}
	names := make([]string, 0, len(l))
	for k := range l {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// String renders the label set in Prometheus exposition style.
func (l Labels) String() string {
	return "{" + l.Key() + "}"
}

// Sample is one scraped value of one series at scrape time.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Counter is a monotonically increasing value. Safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored: counters are
// monotone by contract.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the value by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a cumulative-bucket histogram over explicit upper bounds
// (seconds for latency histograms). Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted ascending; +Inf bucket implied
	counts []float64 // len(bounds)+1, cumulative at scrape time only
	sum    float64
	total  float64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]float64, len(b)+1)}
}

// Observe records one value (same unit as the bounds).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count returns the number of observations.
func (h *Histogram) Count() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Bounds returns the histogram's upper bounds (shared, do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// snapshot appends the histogram's flattened samples.
func (h *Histogram) snapshot(name string, labels Labels, out []Sample) []Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := 0.0
	for i, c := range h.counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		out = append(out, Sample{
			Name:   name + "_bucket",
			Labels: labels.With("le", le),
			Value:  cum,
		})
	}
	out = append(out,
		Sample{Name: name + "_sum", Labels: labels.Clone(), Value: h.sum},
		Sample{Name: name + "_count", Labels: labels.Clone(), Value: h.total},
	)
	return out
}

// Registry holds metric families and hands out series on demand
// (get-or-create semantics, like promauto). Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	order      []registered
}

type registered struct {
	name   string
	labels Labels
	kind   byte // 'c', 'g', 'h'
	key    string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func seriesKey(name string, labels Labels) string {
	return name + "\x00" + labels.Key()
}

// Counter returns the counter series for (name, labels), creating it on
// first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.order = append(r.order, registered{name: name, labels: labels.Clone(), kind: 'c', key: key})
	}
	return c
}

// Gauge returns the gauge series for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.order = append(r.order, registered{name: name, labels: labels.Clone(), kind: 'g', key: key})
	}
	return g
}

// Histogram returns the histogram series for (name, labels), creating it
// with the given bounds on first use. Later calls must pass equal bounds; a
// mismatch panics, as it indicates two incompatible registrations of the
// same family.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: Histogram registered with no bounds")
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[key] = h
		r.order = append(r.order, registered{name: name, labels: labels.Clone(), kind: 'h', key: key})
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("metrics: histogram %s re-registered with different bounds", name))
	}
	return h
}

// Snapshot renders every series into flat samples, in registration order
// (stable across scrapes). Histograms expand into _bucket/_sum/_count.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	order := make([]registered, len(r.order))
	copy(order, r.order)
	r.mu.Unlock()

	var out []Sample
	for _, reg := range order {
		switch reg.kind {
		case 'c':
			r.mu.Lock()
			c := r.counters[reg.key]
			r.mu.Unlock()
			out = append(out, Sample{Name: reg.name, Labels: reg.labels.Clone(), Value: c.Value()})
		case 'g':
			r.mu.Lock()
			g := r.gauges[reg.key]
			r.mu.Unlock()
			out = append(out, Sample{Name: reg.name, Labels: reg.labels.Clone(), Value: g.Value()})
		case 'h':
			r.mu.Lock()
			h := r.histograms[reg.key]
			r.mu.Unlock()
			out = h.snapshot(reg.name, reg.labels, out)
		}
	}
	return out
}
