package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// TestCounterAddAllocationFree pins the lock-free counter's steady state at
// zero allocations per update.
func TestCounterAddAllocationFree(t *testing.T) {
	var c Counter
	allocs := testing.AllocsPerRun(1000, func() { c.Add(1) })
	if allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f objects per call, want 0", allocs)
	}
}

// TestGaugeAddAllocationFree pins gauge updates at zero allocations.
func TestGaugeAddAllocationFree(t *testing.T) {
	var g Gauge
	allocs := testing.AllocsPerRun(1000, func() { g.Add(-0.5); g.Add(0.5) })
	if allocs != 0 {
		t.Fatalf("Gauge.Add allocates %.1f objects per call, want 0", allocs)
	}
}

// TestHistogramObserveAllocationFree pins observations into a resolved
// histogram handle at zero allocations.
func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewRegistry().Histogram("lat", nil, []float64{0.01, 0.1, 1})
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.05) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects per call, want 0", allocs)
	}
}

// TestSnapshotPairedSeriesCoherent is the torn-scrape regression test: on the
// simulator's single thread, a scrape between events must see response pairs
// whole — a counter increment together with its histogram observation, never
// one without the other.
func TestSnapshotPairedSeriesCoherent(t *testing.T) {
	r := NewRegistry()
	total := r.Counter("response_total", nil)
	latency := r.Histogram("response_latency", nil, []float64{0.1, 1})
	for i := 0; i < 50; i++ {
		total.Inc()
		latency.Observe(0.05)
		var gotTotal, gotCount float64
		for _, s := range r.Snapshot() {
			switch s.Name {
			case "response_total":
				gotTotal = s.Value
			case "response_latency_count":
				gotCount = s.Value
			}
		}
		if gotTotal != gotCount {
			t.Fatalf("scrape %d tore a response pair: response_total=%v response_latency_count=%v",
				i, gotTotal, gotCount)
		}
	}
}

// TestSnapshotUnderConcurrentWritersAndRegistrations exercises the scrape
// pass under the race detector: lock-free writers, concurrent series
// registration and scrapes must not race, and per-series counter values must
// be monotone across scrapes.
func TestSnapshotUnderConcurrentWritersAndRegistrations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot", nil)
	h := r.Histogram("lat", nil, []float64{0.1, 1})
	const writers, perWriter = 4, 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(0.05)
				if i%64 == 0 { // register fresh series mid-scrape
					r.Gauge("g", Labels{"w": fmt.Sprintf("%d-%d", w, i)}).Set(1)
				}
			}
		}()
	}
	prev := -1.0
	for i := 0; i < 200; i++ {
		for _, s := range r.Snapshot() {
			if s.Name == "hot" {
				if s.Value < prev {
					t.Errorf("counter went backwards across scrapes: %v -> %v", prev, s.Value)
				}
				prev = s.Value
			}
		}
	}
	wg.Wait()
	// Once the writers drain, the lock-free adds must all have landed: on a
	// single-CPU box the scrape loop may have finished before the writers
	// ran, so only this final scrape is guaranteed to see them.
	final := 0.0
	for _, s := range r.Snapshot() {
		if s.Name == "hot" {
			final = s.Value
		}
	}
	if final != writers*perWriter {
		t.Fatalf("final scrape saw hot=%v, want %d", final, writers*perWriter)
	}
}
