package clock

import (
	"sync"
	"time"
)

// Wall is the real-time Clock: callbacks fire on Go runtime timers at their
// wall-clock due times, and Now is the monotonic time elapsed since the
// clock was created. It is the clock under cmd/l3serve's control plane and
// cmd/l3load's open-loop arrival process.
//
// Callbacks are serialized through one mutex, preserving the simulator's
// single-threaded execution model: a health checker, an L3 controller and a
// scraper sharing one Wall never observe each other mid-update, exactly as
// they never interleave on a sim.Engine. Scheduling calls (After, Every,
// Cancel) are safe from any goroutine, including from inside a callback.
//
// Unlike the simulator, due times are best-effort: a callback that runs long
// delays the callbacks behind it, and the Go runtime adds scheduling jitter.
// Components that must not drift (the open-loop load generator) schedule
// from an absolute cursor rather than relative gaps.
type Wall struct {
	epoch time.Time
	mu    sync.Mutex
	// stopped is read under mu by firing timers; once set, no callback ever
	// runs again (pending runtime timers drain as no-ops).
	stopped bool
}

// NewWall returns a wall clock with its epoch (Now() == 0) at the call.
func NewWall() *Wall {
	return &Wall{epoch: time.Now()}
}

// Now returns the monotonic time elapsed since the clock was created. It is
// safe from any goroutine and never blocks on the callback mutex, so data
// planes may timestamp requests with it at arbitrary rates.
func (w *Wall) Now() time.Duration { return time.Since(w.epoch) }

// After implements Clock.
func (w *Wall) After(d time.Duration, fn func()) Timer {
	return w.schedule(d, 0, fn)
}

// Every implements Clock.
func (w *Wall) Every(interval time.Duration, fn func()) Timer {
	if interval <= 0 {
		panic("clock: Every called with non-positive interval")
	}
	return w.schedule(interval, interval, fn)
}

func (w *Wall) schedule(d, interval time.Duration, fn func()) Timer {
	if fn == nil {
		panic("clock: schedule called with nil callback")
	}
	if d < 0 {
		d = 0
	}
	t := &wallTimer{w: w, fn: fn, interval: interval}
	// Holding t.mu across the AfterFunc call orders the t.t assignment
	// before any fire() that wants to reschedule through it.
	t.mu.Lock()
	t.t = time.AfterFunc(d, t.fire)
	t.mu.Unlock()
	return t
}

// Stop terminally silences the clock: no callback runs after Stop returns.
// Timers already executing finish first (Stop takes the callback mutex), so
// a caller that stops the clock and then reads clock-driven state sees a
// quiesced world. Stop is idempotent.
func (w *Wall) Stop() {
	w.mu.Lock()
	w.stopped = true
	w.mu.Unlock()
}

// Do runs fn serialized against the clock's callbacks — the way code outside
// the callback world (an HTTP completion on its own goroutine, a test
// assertion) safely touches state owned by clock-driven components. Calling
// Do from inside a callback deadlocks; callbacks already hold the mutex and
// can touch shared state directly.
func (w *Wall) Do(fn func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fn()
}

// wallTimer is one scheduled callback on a Wall. Its own tiny mutex guards
// the cancelled flag and the runtime timer handle; the ordering is always
// Wall.mu before wallTimer.mu, and Cancel/After take only wallTimer.mu, so
// cancelling from inside a callback cannot deadlock.
type wallTimer struct {
	w        *Wall
	mu       sync.Mutex
	t        *time.Timer
	fn       func()
	interval time.Duration // 0 = one-shot
	// cancelled is sticky; a cancelled timer never fires and never
	// reschedules.
	cancelled bool
}

// fire runs on the runtime timer's goroutine: serialize, re-check liveness,
// run the callback, and reschedule when periodic.
func (t *wallTimer) fire() {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	t.mu.Lock()
	dead := t.cancelled || w.stopped
	t.mu.Unlock()
	if dead {
		return
	}
	t.fn()
	if t.interval <= 0 {
		return
	}
	t.mu.Lock()
	if !t.cancelled && !w.stopped {
		// Reset on a fired AfterFunc timer re-arms it; the next tick is
		// interval after this callback finished (periodic wall ticks pace
		// from completion, not from the ideal grid — control loops tolerate
		// that, and the load generator uses an absolute cursor instead).
		t.t.Reset(t.interval)
	}
	t.mu.Unlock()
}

// Cancel implements Timer.
func (t *wallTimer) Cancel() {
	t.mu.Lock()
	t.cancelled = true
	if t.t != nil {
		t.t.Stop()
	}
	t.mu.Unlock()
}
