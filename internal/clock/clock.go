// Package clock abstracts "a clock that schedules callbacks" so the same
// component can run on the simulator's virtual time or on the machine's wall
// clock. Time is a time.Duration measured from the clock's epoch (simulation
// start, or process start for the wall clock) — exactly the convention every
// simulated component already follows, which is what makes the abstraction a
// drop-in: internal/loadgen, internal/health, the L3 controller, scraper and
// guard watchdog all schedule through this interface and cannot tell whether
// a sim.Engine or a Wall clock is underneath.
//
// The contract mirrors sim.Engine's execution model: callbacks of one clock
// are mutually serialized (never two at once), so single-threaded components
// like the EWMA weighter run unmodified on a Wall clock. What the wall clock
// cannot promise is the simulator's determinism — callbacks fire in real
// time, subject to scheduler jitter — so anything golden-tested stays on the
// virtual clock.
package clock

import (
	"time"

	"l3/internal/sim"
)

// Timer is a handle to a scheduled callback. Cancel prevents an unfired
// callback from running; cancelling an already-fired or already-cancelled
// timer is a no-op. For timers returned by Every, Cancel stops all future
// ticks.
type Timer interface {
	Cancel()
}

// Clock schedules callbacks against a monotonic clock measured from an
// epoch. Implementations serialize callbacks: no two callbacks of one clock
// run concurrently, and components driven by the same clock may share state
// without locks (the simulator's single-threaded model).
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
	// After schedules fn once, d from now (negative d clamps to zero).
	After(d time.Duration, fn func()) Timer
	// Every schedules fn every interval, starting one interval from now,
	// until the returned Timer is cancelled. The interval must be positive.
	Every(interval time.Duration, fn func()) Timer
}

// simClock adapts a sim.Engine to the Clock interface. The adapter is pure
// forwarding: scheduling through it is byte-identical to scheduling on the
// engine directly, so components refactored onto Clock keep their golden
// outputs.
type simClock struct {
	e *sim.Engine
}

// Sim wraps a simulation engine as a Clock.
func Sim(e *sim.Engine) Clock {
	if e == nil {
		panic("clock: Sim requires an engine")
	}
	return simClock{e}
}

func (c simClock) Now() time.Duration { return c.e.Now() }

func (c simClock) After(d time.Duration, fn func()) Timer { return c.e.After(d, fn) }

func (c simClock) Every(interval time.Duration, fn func()) Timer { return c.e.Every(interval, fn) }
