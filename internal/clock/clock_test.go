package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l3/internal/sim"
)

// TestSimAdapterForwards pins that the adapter is pure forwarding: the same
// schedule on the adapter and on the engine directly produces identical
// firing times and order.
func TestSimAdapterForwards(t *testing.T) {
	e := sim.NewEngine()
	c := Sim(e)
	var fired []time.Duration
	c.After(10*time.Millisecond, func() { fired = append(fired, c.Now()) })
	c.After(5*time.Millisecond, func() { fired = append(fired, c.Now()) })
	tick := 0
	var every Timer
	every = c.Every(20*time.Millisecond, func() {
		fired = append(fired, c.Now())
		tick++
		if tick == 2 {
			every.Cancel()
		}
	})
	e.RunUntil(time.Second)
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("cancelled Every left %d events pending (cancelled events are lazily popped)", e.Pending())
	}
}

// TestSimAdapterCancel pins that cancelling through the adapter's Timer
// reaches the engine event.
func TestSimAdapterCancel(t *testing.T) {
	e := sim.NewEngine()
	c := Sim(e)
	ran := false
	timer := c.After(time.Millisecond, func() { ran = true })
	timer.Cancel()
	e.RunUntil(time.Second)
	if ran {
		t.Fatal("cancelled callback ran")
	}
}

func TestWallAfterFires(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	done := make(chan time.Duration, 1)
	w.After(10*time.Millisecond, func() { done <- w.Now() })
	select {
	case at := <-done:
		if at < 10*time.Millisecond {
			t.Fatalf("fired at %v, before its 10ms due time", at)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("After callback never fired")
	}
}

func TestWallEveryReschedulesAndCancels(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	var n atomic.Int32
	fired := make(chan struct{}, 16)
	timer := w.Every(5*time.Millisecond, func() {
		n.Add(1)
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	for i := 0; i < 3; i++ {
		select {
		case <-fired:
		case <-time.After(5 * time.Second):
			t.Fatalf("tick %d never fired", i)
		}
	}
	timer.Cancel()
	after := n.Load()
	time.Sleep(50 * time.Millisecond)
	if got := n.Load(); got > after+1 {
		// One tick may have been in flight at Cancel; more means the
		// reschedule ignored cancellation.
		t.Fatalf("ticks kept firing after Cancel: %d -> %d", after, got)
	}
}

// TestWallCallbacksSerialized pins the core contract: no two callbacks of
// one Wall run concurrently, so sim-written components need no locks.
func TestWallCallbacksSerialized(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	var inside atomic.Int32
	var overlaps atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		w.After(time.Duration(i%3)*time.Millisecond, func() {
			defer wg.Done()
			if inside.Add(1) != 1 {
				overlaps.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
			inside.Add(-1)
		})
	}
	wg.Wait()
	if overlaps.Load() != 0 {
		t.Fatalf("%d callbacks overlapped", overlaps.Load())
	}
}

// TestWallScheduleFromCallback pins that After/Every/Cancel are legal inside
// a callback (the health checker schedules probe timeouts there).
func TestWallScheduleFromCallback(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	done := make(chan struct{})
	w.After(time.Millisecond, func() {
		inner := w.After(time.Hour, func() { t.Error("cancelled inner timer fired") })
		inner.Cancel()
		w.After(time.Millisecond, func() { close(done) })
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("nested schedule never fired")
	}
}

// TestWallStopSilences pins that Stop is a barrier: once it returns, no
// callback runs, even ones already due.
func TestWallStopSilences(t *testing.T) {
	w := NewWall()
	var ran atomic.Int32
	for i := 0; i < 16; i++ {
		w.After(time.Duration(i)*time.Millisecond, func() { ran.Add(1) })
	}
	w.Stop()
	snapshot := ran.Load()
	time.Sleep(40 * time.Millisecond)
	if got := ran.Load(); got != snapshot {
		t.Fatalf("callbacks ran after Stop returned: %d -> %d", snapshot, got)
	}
}

// TestWallDoSerializes pins that Do excludes callbacks while it runs.
func TestWallDoSerializes(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	var inside atomic.Int32
	var overlaps atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		w.After(time.Millisecond, func() {
			defer wg.Done()
			if inside.Add(1) != 1 {
				overlaps.Add(1)
			}
			time.Sleep(time.Millisecond)
			inside.Add(-1)
		})
	}
	for i := 0; i < 50; i++ {
		w.Do(func() {
			if inside.Add(1) != 1 {
				overlaps.Add(1)
			}
			inside.Add(-1)
		})
	}
	wg.Wait()
	if overlaps.Load() != 0 {
		t.Fatalf("%d overlaps between Do and callbacks", overlaps.Load())
	}
}
