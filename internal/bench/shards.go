// Sharded scenario execution: the Options.Shards > 0 path of the benchmark
// harness. The world decomposes into one logical shard per cluster on a
// sim.ShardedEngine (lookahead = the WAN model's provable minimum one-way
// delay), with the control plane — scraper, controllers, electors, health
// checkers, chaos injector — on the control engine, executing exclusively at
// barriers. The decomposition is FIXED; Options.Shards only caps the worker
// pool, so output is byte-identical for every value (the `-parallel`
// discipline, applied inside a single scenario).
package bench

import (
	"fmt"
	"strings"
	"time"

	"l3/internal/autoscale"
	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/c3"
	"l3/internal/chaos"
	"l3/internal/cluster"
	"l3/internal/core"
	"l3/internal/cost"
	"l3/internal/guard"
	"l3/internal/health"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/overload"
	"l3/internal/resilience"
	"l3/internal/retry"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/trace"
	"l3/internal/wan"
)

// multiResetter fans a chaos counterreset out to every shard registry — the
// backend's series live in whichever shards have routed to it.
type multiResetter struct{ regs []*metrics.Registry }

func (r multiResetter) ResetBackendCounters(backend string) {
	for _, reg := range r.regs {
		reg.ResetCounters(metrics.Labels{"backend": backend})
	}
}

// runOnceShardedCounted is runOnceCounted on the sharded core. It builds the
// same scenario world — API service in every cluster, TrafficSplit,
// algorithm wiring, chaos — but each cluster's backends and proxies live on
// their own shard, and the whole run executes under conservative lookahead
// windows across opts.Shards workers.
func runOnceShardedCounted(sc *trace.Scenario, algo Algorithm, opts Options, seed uint64) (*loadgen.Recorder, map[[2]string]float64, *chaosArtifacts, error) {
	defer func(start time.Time) { recordRun(time.Since(start)) }(time.Now())
	rng := sim.NewRand(seed)
	wcfg := wan.DefaultConfig()
	wcfg.Seed = seed
	wanModel := wan.New(wcfg)
	clusters := sc.ClusterNames()
	se := sim.NewSharded(len(clusters), wanModel.MinOneWayDelay())
	se.SetWorkers(opts.Shards)
	m, err := mesh.NewSharded(se, clusters, rng.Fork(), wanModel)
	if err != nil {
		return nil, nil, nil, err
	}
	// ctrlReg holds control-plane series (health-checker ejections, guard
	// accounting); it is scraped alongside the shard registries.
	ctrlReg := metrics.NewRegistry()

	if _, err := m.AddService(apiService); err != nil {
		return nil, nil, nil, err
	}
	warm := opts.WarmUp
	var backends []smi.Backend
	injectors := make(map[string]chaos.BackendInjector)
	for i := range sc.Clusters {
		ct := &sc.Clusters[i]
		name := apiService + "-" + ct.Cluster
		profile := func(ct *trace.ClusterTrace) backend.Profile {
			return func(now time.Duration, r *sim.Rand) (time.Duration, bool) {
				t := now - warm
				return ct.SampleLatency(t, r), ct.SampleSuccess(t, r)
			}
		}(ct)
		conc := opts.Concurrency
		if c, ok := opts.ConcurrencyByCluster[ct.Cluster]; ok {
			conc = c
		}
		b, err := m.AddBackend(apiService, name, ct.Cluster,
			backend.Config{Concurrency: conc, QueueCapacity: opts.QueueCapacity}, profile)
		if err != nil {
			return nil, nil, nil, err
		}
		if replica, ok := b.Server.(*backend.Replica); ok {
			injectors[name] = replica
		}
		if opts.Autoscale != nil {
			replica, ok := b.Server.(*backend.Replica)
			if !ok {
				return nil, nil, nil, fmt.Errorf("bench: backend %s is not a replica pool", name)
			}
			cfg := *opts.Autoscale
			if cfg.Max == 0 {
				cfg.Max = 16 * conc
			}
			if cfg.Min == 0 {
				cfg.Min = conc
			}
			eng, err := m.EngineFor(ct.Cluster)
			if err != nil {
				return nil, nil, nil, err
			}
			autoscale.New(eng, replica, cfg).Start()
		}
		backends = append(backends, smi.Backend{Service: name, Weight: 500})
	}
	if err := m.Splits().Create(&smi.TrafficSplit{
		Name: apiService, RootService: apiService, Backends: backends,
	}); err != nil {
		return nil, nil, nil, err
	}

	handles, err := installShardedAlgorithm(m, se, ctrlReg, rng, algo, opts,
		[]string{apiService}, nil, globalController())
	if err != nil {
		return nil, nil, nil, err
	}

	var art *chaosArtifacts
	if opts.Chaos != nil || opts.Resilience != nil || opts.Overload != nil {
		art = &chaosArtifacts{}
		if len(opts.OverloadTierMix) > 0 {
			for tier := range art.tierRecs {
				art.tierRecs[tier] = loadgen.NewRecorder(time.Second)
			}
		}
	}
	if opts.Chaos != nil {
		m.Splits().Watch(false, func(e cluster.Event[*smi.TrafficSplit]) {
			if e.Type != cluster.Updated || e.Object.Name != apiService {
				return
			}
			weights := make(map[string]int64, len(e.Object.Backends))
			for _, b := range e.Object.Backends {
				weights[b.Service] = b.Weight
			}
			// Splits are written on the control timeline.
			art.updates = append(art.updates, se.Control().Now())
			art.snaps = append(art.snaps, chaos.WeightSnapshot{At: se.Control().Now(), Weights: weights})
		})
		scrapers := make([]chaos.ScrapeGate, len(handles.scrapers))
		for i, s := range handles.scrapers {
			scrapers[i] = s
		}
		inj := chaos.New(se.Control(), *opts.Chaos, chaos.Targets{
			Clusters: clusters,
			Links:    wanModel,
			Backends: injectors,
			Scrapers: scrapers,
			Leaders:  handles.leaders,
			Metrics:  multiResetter{regs: m.Registries()},
		}, warm)
		if err := inj.Start(); err != nil {
			return nil, nil, nil, err
		}
		art.injector = inj
	}

	// Client layers, forked off the root stream in the exact order the
	// classic path forks them — this is what lets a sharded resilience
	// figure reproduce the classic bytes: the backend streams already match
	// (mesh wiring-rng discipline), so matching the client forks makes the
	// whole run a function of the seed alone, not the mode.
	var resClient *resilience.Client
	if opts.Resilience != nil {
		// Applied after installShardedAlgorithm so the breaker filter wraps
		// the source shard's installed picker. The client is bound to the
		// source cluster: its timers, budget and breaker live on that
		// shard's timeline, and retry/hedge re-entries are cross-shard
		// continuations delivered back there by the mesh's return hop.
		rc, err := resilience.NewShardClient(m, sourceCluster, rng.Fork())
		if err != nil {
			return nil, nil, nil, err
		}
		if err := rc.Apply(apiService, *opts.Resilience); err != nil {
			return nil, nil, nil, err
		}
		resClient = rc
	}
	var ovClient *overload.Client
	if opts.Overload != nil {
		// Like the classic path, the admission layer forks no rng: it is
		// bound to the source shard (NewShardClient) and wraps the resilience
		// client when one is set, so shard-mode output matches classic.
		oc, err := overload.NewShardClient(m, sourceCluster)
		if err != nil {
			return nil, nil, nil, err
		}
		if resClient != nil {
			oc.SetInner(resClient)
		}
		if err := oc.Apply(apiService, *opts.Overload); err != nil {
			return nil, nil, nil, err
		}
		ovClient = oc
	}
	var retryPolicy retry.Policy
	if opts.Retry != nil {
		retryPolicy = *opts.Retry
		if retryPolicy.Jitter > 0 && retryPolicy.Rand == nil {
			retryPolicy.Rand = rng.Fork()
		}
	}

	srcEngine, err := m.EngineFor(sourceCluster)
	if err != nil {
		return nil, nil, nil, err
	}
	proxy, err := m.Proxy(sourceCluster)
	if err != nil {
		return nil, nil, nil, err
	}
	var tierSeq int
	issue := func(done func(time.Duration, bool)) error {
		switch {
		case ovClient != nil:
			tier := overload.TierDefault
			if n := len(opts.OverloadTierMix); n > 0 {
				tier = opts.OverloadTierMix[tierSeq%n]
				tierSeq++
			}
			trec := art.tierRecs[tier]
			if trec == nil {
				return ovClient.CallTier(sourceCluster, apiService, tier, func(r mesh.Result) {
					done(r.Latency, r.Success)
				})
			}
			start := srcEngine.Now()
			return ovClient.CallTier(sourceCluster, apiService, tier, func(r mesh.Result) {
				if start >= warm {
					trec.Record(start, r.Latency, r.Success)
				}
				done(r.Latency, r.Success)
			})
		case resClient != nil:
			return resClient.Call(sourceCluster, apiService, func(r resilience.Result) {
				done(r.Latency, r.Success)
			})
		case opts.Retry != nil:
			// retry.Do schedules backoff on the source shard's engine; the
			// retried Call re-enters the mesh from that timeline, exactly
			// where the previous attempt's response was delivered.
			return retry.Do(srcEngine, m, sourceCluster, apiService, retryPolicy, func(r retry.Result) {
				done(r.Latency, r.Success)
			})
		default:
			return proxy.Call(apiService, func(r mesh.Result) {
				done(r.Latency, r.Success)
			})
		}
	}
	gen := loadgen.New(srcEngine, loadgen.Config{
		Rate: func(now time.Duration) float64 {
			return sc.RPS.At(now-warm) * opts.RPSScale
		},
		WarmUp: warm,
	}, issue)
	gen.Start()

	duration := opts.Duration
	if duration <= 0 {
		duration = sc.Duration
	}
	se.RunUntil(warm + duration)
	gen.Stop()
	se.RunUntil(warm + duration + 30*time.Second) // drain in-flight

	counts := make(map[[2]string]float64)
	regs := append(m.Registries(), ctrlReg)
	var buf []metrics.Sample
	for _, reg := range regs {
		buf = reg.SnapshotAppend(buf[:0])
		for _, sample := range buf {
			switch sample.Name {
			case mesh.MetricResponseTotal:
				src := sample.Labels["src"]
				dst := strings.TrimPrefix(sample.Labels["backend"], apiService+"-")
				counts[[2]string{src, dst}] += sample.Value
				if art != nil {
					art.res.attempts += sample.Value
				}
			case health.MetricEjectionsTotal:
				if art != nil {
					art.ejections += sample.Value
				}
			case health.MetricRestoresTotal:
				if art != nil {
					art.restores += sample.Value
				}
			}
			if art == nil {
				continue
			}
			switch sample.Name {
			case resilience.MetricRequestsTotal:
				art.res.requests += sample.Value
			case resilience.MetricRetriesTotal:
				art.res.retries += sample.Value
			case resilience.MetricHedgesTotal:
				art.res.hedges += sample.Value
			case resilience.MetricBudgetExhaustedTotal:
				art.res.budgetDenied += sample.Value
			case resilience.MetricDeadlineExceededTotal:
				art.res.deadline += sample.Value
			case resilience.MetricDuplicatesTotal:
				art.res.duplicates += sample.Value
			case resilience.MetricBreakerEjectionsTotal:
				art.res.breakerEjects += sample.Value
			case resilience.MetricBreakerRestoresTotal:
				art.res.breakerRestores += sample.Value
			case resilience.MetricBreakerDeniedTotal:
				art.res.breakerDenied += sample.Value
			case guard.MetricRejectedTotal:
				art.grd.rejected += sample.Value
			case guard.MetricResetsTotal:
				art.grd.resets += sample.Value
			case guard.MetricHoldsTotal:
				art.grd.holds += sample.Value
			case guard.MetricDecaysTotal:
				art.grd.decays += sample.Value
			case guard.MetricFrozenTotal:
				art.grd.frozen += sample.Value
			case guard.MetricWriteSuppressedTotal:
				art.grd.writeSuppressed += sample.Value
			case guard.MetricWriteClampedTotal:
				art.grd.writeClamped += sample.Value
			case guard.MetricWriteRejectedTotal:
				art.grd.writeRejected += sample.Value
			case guard.MetricWatchdogDegradesTotal:
				art.grd.watchdogDegrades += sample.Value
			case overload.MetricAdmittedTotal:
				art.ovl.admitted += sample.Value
			case overload.MetricCodelDroppedTotal:
				art.ovl.codelDropped += sample.Value
			case overload.MetricQueueOverflowTotal:
				art.ovl.overflow += sample.Value
			case overload.MetricLifoFlipsTotal:
				art.ovl.lifoFlips += sample.Value
			case overload.MetricReadmitsTotal:
				art.ovl.readmits += sample.Value
			case overload.MetricShedTotal:
				for tier := 0; tier < overload.NumTiers; tier++ {
					if sample.Labels["tier"] == overload.TierName(tier) {
						art.ovl.shed[tier] += sample.Value
					}
				}
			}
		}
	}
	if art != nil && ovClient != nil {
		if limit, admitMax, maxSojourn, ok := ovClient.State(apiService); ok {
			art.ovl.limit, art.ovl.admitMax, art.ovl.maxSojourn = limit, admitMax, maxSojourn
		}
	}
	return gen.Recorder(), counts, art, nil
}

// installShardedAlgorithm is installAlgorithm for the sharded world: pickers
// are installed per shard (stateful balancer instances must not be shared
// across concurrently executing shards), and every control-plane component —
// scraper, controllers, electors, health checker, watchdog — runs on the
// control engine, where it reads and writes cross-shard state exclusively at
// barriers.
func installShardedAlgorithm(m *mesh.Mesh, se *sim.ShardedEngine, ctrlReg *metrics.Registry,
	rng *sim.Rand, algo Algorithm, opts Options,
	services []string, splitName func(src, service string) string, controllers []controllerSpec) (*algoHandles, error) {
	handles := &algoHandles{}
	clusters := m.Clusters()

	perShard := func(svc string, mk func(cluster string) (mesh.Picker, error)) error {
		for _, cl := range clusters {
			p, err := mk(cl)
			if err != nil {
				return err
			}
			if err := m.SetShardPicker(svc, cl, p); err != nil {
				return err
			}
		}
		return nil
	}

	switch algo {
	case AlgoRoundRobin:
		for _, svc := range services {
			if err := perShard(svc, func(string) (mesh.Picker, error) {
				return balancer.NewRoundRobin(), nil
			}); err != nil {
				return nil, err
			}
		}
		return handles, nil
	case AlgoP2C:
		for _, svc := range services {
			// One root fork per service — the same draw the classic path
			// makes — then per-shard forks off it, keeping the root stream's
			// position identical across modes for the layers wired after
			// this (resilience, retry jitter).
			base := rng.Fork()
			if err := perShard(svc, func(string) (mesh.Picker, error) {
				return balancer.NewP2C(base.Fork(), 5*time.Second, time.Second), nil
			}); err != nil {
				return nil, err
			}
		}
		return handles, nil
	case AlgoFailover:
		hcfg := health.Config{Registry: ctrlReg}
		if opts.Chaos != nil {
			hcfg.Probe = func(b *mesh.Backend, done func(success bool)) {
				m.Probe(sourceCluster, b, done)
			}
		}
		// The checker probes and ejects on the control timeline; shard
		// pickers read its healthy-set through the FailoverPicker filter,
		// which is safe during windows because ejection state only changes
		// at barriers.
		checker := health.NewChecker(se.Control(), hcfg)
		handles.checker = checker
		for _, svc := range services {
			s, ok := m.Service(svc)
			if !ok {
				return nil, fmt.Errorf("bench: unknown service %q", svc)
			}
			checker.WatchAll(s.Backends())
			if err := perShard(svc, func(string) (mesh.Picker, error) {
				return &health.FailoverPicker{Checker: checker, Inner: balancer.NewRoundRobin()}, nil
			}); err != nil {
				return nil, err
			}
		}
		return handles, nil
	case AlgoL3, AlgoC3:
		for _, svc := range services {
			base := rng.Fork() // mirror the classic path's one draw per service
			if err := perShard(svc, func(string) (mesh.Picker, error) {
				return balancer.NewWeightedSplit(m.Splits(), base.Fork(), splitName), nil
			}); err != nil {
				return nil, err
			}
		}
		db := timeseries.NewDB(time.Minute)
		var hyg *guard.Hygiene
		var gate *guard.WriteGate
		if opts.Guard {
			hyg = guard.NewHygiene(guard.Config{}, ctrlReg)
			db.SetGate(hyg)
			gate = guard.NewWriteGate(guard.Config{}, ctrlReg)
		}
		scraper := core.NewScraperMulti(se.Control(), db, m.Registries(), opts.ScrapeInterval)
		scraper.Start()
		handles.scrapers = append(handles.scrapers, scraper)
		newAssigner := func() core.Assigner {
			var assigner core.Assigner
			if algo == AlgoC3 {
				assigner = c3.New(c3.Config{})
			} else {
				assigner = core.NewL3Assigner(core.WeightingConfig{
					Penalty:          opts.Penalty,
					FilterKind:       opts.FilterKind,
					InflightExponent: opts.inflightExponent,
					DynamicPenalty:   opts.DynamicPenalty,
				}, core.RateControlConfig{}, !opts.DisableRateControl)
				if opts.CostLambda > 0 {
					assigner = cost.NewAssigner(assigner, cost.NewModel(cost.DefaultRates(), 0),
						sourceCluster, func(b string) string {
							return strings.TrimPrefix(b, apiService+"-")
						}, opts.CostLambda)
				}
			}
			if opts.Guard {
				assigner = guard.NewAssigner(assigner, guard.Config{}, ctrlReg)
			}
			return assigner
		}
		handles.leaders = make(map[string]chaos.Leader)
		for si, spec := range controllers {
			newController := func(elector *cluster.Elector) *core.Controller {
				collector := &core.Collector{
					DB: db, Window: opts.Window, Percentile: opts.Percentile,
					Match: spec.match,
				}
				if hyg != nil {
					collector.Resets = hyg
				}
				cfg := core.ControllerConfig{
					Interval:    opts.ScrapeInterval,
					NewAssigner: newAssigner,
					SplitFilter: spec.filter,
					Elector:     elector,
				}
				if gate != nil {
					cfg.WriteGuard = gate
				}
				return core.NewController(se.Control(), m.Splits(), collector, cfg)
			}
			if !opts.LeaderElection {
				newController(nil).Start()
				continue
			}
			lock := cluster.NewLeaseLock()
			for i := 0; i < 2; i++ {
				id := fmt.Sprintf("l3-%d", i)
				if len(controllers) > 1 {
					id = fmt.Sprintf("l3-%d-%d", si, i)
				}
				elector := cluster.NewElector(se.Control(), lock, cluster.ElectorConfig{ID: id})
				ctrl := newController(elector)
				ctrl.Start()
				handles.leaders[id] = leaderHandle{ctrl: ctrl, elector: elector}
			}
		}
		if gate != nil {
			guard.NewWatchdog(se.Control(), m.Splits(), guard.Config{}, ctrlReg, nil, gate).Start()
		}
		return handles, nil
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %v", algo)
	}
}
