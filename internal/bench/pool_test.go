package bench

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l3/internal/trace"
)

func TestForEachRunsEveryIndexExactlyOnce(t *testing.T) {
	for _, parallel := range []int{0, 1, 3, 8, 100} {
		const n = 37
		var counts [n]atomic.Int64
		err := ForEach(parallel, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", parallel, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n <= 0")
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	// Error selection must not depend on which goroutine finishes first.
	errOf := func(i int) error { return fmt.Errorf("fail-%d", i) }
	for _, parallel := range []int{1, 2, 8} {
		err := ForEach(parallel, 20, func(i int) error {
			if i == 7 || i == 13 {
				return errOf(i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-7" {
			t.Fatalf("parallel=%d: err = %v, want fail-7", parallel, err)
		}
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	// parallel == 1 degenerates to a plain loop: indices after the failure
	// never run.
	var ran []int
	sentinel := errors.New("boom")
	err := ForEach(1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("serial loop ran %v after the failure", ran)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const parallel = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	err := ForEach(parallel, 50, func(int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > parallel {
		t.Fatalf("observed %d concurrent calls, cap is %d", p, parallel)
	}
}

func TestSelfStatsCountRuns(t *testing.T) {
	startRuns, startBusy := SelfStats()
	o := quick()
	o.Duration = 30 * time.Second
	if _, err := RunScenario(trace.Scenario1, AlgoRoundRobin, o); err != nil {
		t.Fatal(err)
	}
	runs, busy := SelfStats()
	if runs-startRuns != 1 {
		t.Fatalf("runs delta = %v, want 1", runs-startRuns)
	}
	if busy <= startBusy {
		t.Fatal("busy seconds did not grow")
	}
}

// TestParallelMatchesSerial is the determinism guarantee of the issue: the
// same scenario fanned out across 8 workers must produce a recorder that is
// bit-for-bit identical to the serial run — every bucket, every histogram
// count, every float.
func TestParallelMatchesSerial(t *testing.T) {
	base := Options{Seed: 1, WarmUp: 30 * time.Second, Duration: time.Minute, Reps: 4}

	serial := base
	serial.Parallel = 1
	a, err := RunScenario(trace.Scenario5, AlgoL3, serial)
	if err != nil {
		t.Fatal(err)
	}

	wide := base
	wide.Parallel = 8
	b, err := RunScenario(trace.Scenario5, AlgoL3, wide)
	if err != nil {
		t.Fatal(err)
	}

	if a.Count() == 0 {
		t.Fatal("no traffic recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel run diverged from serial: n=%d/%d p99=%v/%v",
			a.Count(), b.Count(), a.Quantile(0.99), b.Quantile(0.99))
	}
}

// TestParallelStatsMatchSerial covers the cost-accounting path, whose
// floating-point reductions (transfer cost, remote share) are the easiest
// place to silently lose determinism.
func TestParallelStatsMatchSerial(t *testing.T) {
	base := Options{Seed: 1, WarmUp: 30 * time.Second, Duration: time.Minute, Reps: 3}

	serial := base
	serial.Parallel = 1
	a, err := RunScenarioWithStats(trace.Scenario1, AlgoL3, serial)
	if err != nil {
		t.Fatal(err)
	}

	wide := base
	wide.Parallel = 8
	b, err := RunScenarioWithStats(trace.Scenario1, AlgoL3, wide)
	if err != nil {
		t.Fatal(err)
	}

	if a.TransferCost != b.TransferCost || a.RemoteShare != b.RemoteShare {
		t.Fatalf("cost accounting diverged: cost=%v/%v remote=%v/%v",
			a.TransferCost, b.TransferCost, a.RemoteShare, b.RemoteShare)
	}
	if !reflect.DeepEqual(a.Recorder, b.Recorder) {
		t.Fatal("recorders diverged")
	}
}
