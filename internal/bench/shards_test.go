package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"l3/internal/chaos"
	"l3/internal/resilience"
	"l3/internal/retry"
	"l3/internal/trace"
)

// shardDigest captures everything observable from one sharded run: the
// recorder's full per-second series, the per-route count matrix, and (under
// chaos) the split-write trace and health accounting. Two runs with equal
// digests produced byte-identical figures.
type shardDigest struct {
	count       uint64
	successRate float64
	mean        time.Duration
	p50, p99    time.Duration
	p99Series   []float64
	rpsSeries   []float64
	succSeries  []float64
	counts      map[[2]string]float64
	updates     []time.Duration
	snaps       string
	ejections   float64
	restores    float64
	res         string
}

// shardRun digests one run: workers ≥ 1 takes the sharded path, 0 the
// classic single-engine path (runOnceCounted dispatches on Shards) — which
// is what lets the parity tests below compare the two modes byte for byte.
func shardRun(t *testing.T, scenario string, algo Algorithm, opts Options, workers int) shardDigest {
	t.Helper()
	opts = opts.withDefaults()
	opts.Shards = workers
	sc, err := trace.Generate(scenario, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rec, counts, art, err := runOnceCounted(sc, algo, opts, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	d := shardDigest{
		count:       rec.Count(),
		successRate: rec.SuccessRate(),
		mean:        rec.Mean(),
		p50:         rec.Quantile(0.5),
		p99:         rec.Quantile(0.99),
		p99Series:   rec.QuantileSeries(0.99),
		rpsSeries:   rec.RPSSeries(),
		succSeries:  rec.SuccessRateSeries(),
		counts:      counts,
	}
	if art != nil {
		d.updates = art.updates
		d.snaps = fmt.Sprint(art.snaps)
		d.ejections = art.ejections
		d.restores = art.restores
		d.res = fmt.Sprint(art.res)
	}
	return d
}

// TestShardedRunByteIdenticalAcrossWorkerCounts is the tentpole's property
// test: for a matrix of scenario × algorithm × chaos configurations, the
// sharded core must produce identical recorder series, per-route counts and
// control-plane traces at 1, 4 and 8 workers. Run under -race this also
// exercises the window/barrier protocol for data races.
func TestShardedRunByteIdenticalAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name     string
		scenario string
		algo     Algorithm
		chaos    *chaos.Schedule
		retry    *retry.Policy
		res      *resilience.Policy
	}{
		{"s1-rr", trace.Scenario1, AlgoRoundRobin, nil, nil, nil},
		{"s1-l3", trace.Scenario1, AlgoL3, nil, nil, nil},
		{"f1-failover-chaos", trace.Failure1, AlgoFailover, partitionQuick(), nil, nil},
		{"s1-l3-chaos", trace.Scenario1, AlgoL3, partitionQuick(), nil, nil},
		{"s1-rr-retry", trace.Scenario1, AlgoRoundRobin, partitionQuick(),
			&retry.Policy{MaxAttempts: 3, Backoff: 10 * time.Millisecond, Jitter: 0.2}, nil},
		{"s1-l3-resilience-chaos", trace.Scenario1, AlgoL3, partitionQuick(), nil,
			&resilience.Policy{
				Deadline: 2 * time.Second,
				Retry: resilience.RetryConfig{
					MaxAttempts: 3, AttemptTimeout: 500 * time.Millisecond,
					Backoff: 10 * time.Millisecond, Jitter: 0.2, BudgetRatio: 0.2,
				},
				Hedge:   resilience.HedgeConfig{Percentile: 0.95},
				Breaker: resilience.BreakerConfig{ConsecutiveFailures: 5},
			}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			opts := quick()
			opts.Chaos = tc.chaos
			opts.Retry = tc.retry
			opts.Resilience = tc.res
			base := shardRun(t, tc.scenario, tc.algo, opts, 1)
			if base.count == 0 {
				t.Fatal("sharded run recorded no requests")
			}
			for _, workers := range []int{4, 8} {
				got := shardRun(t, tc.scenario, tc.algo, opts, workers)
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("workers=%d diverged from workers=1:\n  base n=%d p99=%v counts=%v\n  got  n=%d p99=%v counts=%v",
						workers, base.count, base.p99, base.counts,
						got.count, got.p99, got.counts)
				}
			}
		})
	}
}

// TestShardedRunDeterministicForSeed pins run-to-run determinism at a fixed
// worker count (the property -shards relies on when figures are regenerated).
func TestShardedRunDeterministicForSeed(t *testing.T) {
	a := shardRun(t, trace.Scenario1, AlgoL3, quick(), 4)
	b := shardRun(t, trace.Scenario1, AlgoL3, quick(), 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: n=%d/%d p99=%v/%v", a.count, b.count, a.p99, b.p99)
	}
}

// TestShardedRunProducesPlausibleTraffic sanity-checks that the sharded path
// runs the same experiment as the classic path: scenario-1 offers ~300 RPS
// with no failures.
func TestShardedRunProducesPlausibleTraffic(t *testing.T) {
	d := shardRun(t, trace.Scenario1, AlgoRoundRobin, quick(), 4)
	if d.count < 30000 || d.count > 45000 {
		t.Fatalf("recorded %d requests, want ~36k", d.count)
	}
	if d.successRate != 1 {
		t.Fatalf("success = %v, scenario-1 has no failures", d.successRate)
	}
	if d.p99 < 100*time.Millisecond || d.p99 > 2*time.Second {
		t.Fatalf("P99 = %v, outside scenario-1's plausible band", d.p99)
	}
}

// TestShardedRejectsUnsupportedLayers pins the explicit error for the one
// layer still classic-only — the DSB cross-service call graph, which needs
// service-keyed sharding. It must name the layer and point at the remedy
// (-shards 0), so a CLI user knows which flag to drop. Retry and resilience
// compose with -shards since the cross-shard continuation work; the matrix
// test above covers them.
func TestShardedRejectsUnsupportedLayers(t *testing.T) {
	o := quick()
	o.Shards = 2
	_, err := RunDSB(AlgoRoundRobin, 100, time.Minute, o)
	if err == nil {
		t.Fatal("DSB accepted with Shards > 0")
	}
	if !strings.Contains(err.Error(), "DSB") {
		t.Fatalf("error %q does not name the DSB layer", err)
	}
	if !strings.Contains(err.Error(), "-shards 0") {
		t.Fatalf("error %q does not suggest -shards 0", err)
	}
}

// TestShardScalingWorkloadClassicShardedParity pins what makes the
// workers=1 overhead number in BENCH_shards.json meaningful: the classic
// baseline and the sharded sweep execute the same simulation (routing via
// per-source round-robin, WAN hash delays, backend rng streams), so their
// recorder digests must match and the wall-clock ratio isolates machinery.
func TestShardScalingWorkloadClassicShardedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("60 simulated seconds at 16k RPS twice")
	}
	classic, err := runShardWorkloadClassic(1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := runShardWorkload(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sharded.recDigest(), classic.recDigest(); got != want {
		t.Fatalf("sharded scaling workload diverged from classic baseline:\n sharded %s\n classic %s", got, want)
	}
}

// TestShardedResilienceMatchesClassic is the acceptance criterion for the
// cross-shard continuation protocol: the figure R1 configuration — full
// resilience policy (deadline, budgeted retries with per-try timeouts and
// jitter) over round-robin under a saturate fault — must reproduce the
// classic single-engine run byte for byte when sharded, at any worker
// count. This works because sharding changed no model semantics: the rng
// fork discipline, event timestamps and per-timeline execution order are
// mode-invariant; only the machinery differs.
func TestShardedResilienceMatchesClassic(t *testing.T) {
	opts := resilienceLoadOptions(quick())
	opts.Chaos = saturateSchedule(opts, 0.1, apiService+"-cluster-1", apiService+"-cluster-2")
	opts.Resilience = &resilience.Policy{
		Deadline: 2 * time.Second,
		Retry: resilience.RetryConfig{
			MaxAttempts: 3, AttemptTimeout: 500 * time.Millisecond,
			Backoff: 10 * time.Millisecond, Jitter: 0.2, BudgetRatio: 0.1,
		},
	}
	classic := shardRun(t, trace.Scenario1, AlgoRoundRobin, opts, 0)
	if classic.count == 0 {
		t.Fatal("classic run recorded no requests")
	}
	for _, workers := range []int{1, 4} {
		sharded := shardRun(t, trace.Scenario1, AlgoRoundRobin, opts, workers)
		if !reflect.DeepEqual(classic, sharded) {
			t.Fatalf("sharded workers=%d diverged from classic:\n  classic n=%d p99=%v res=%s counts=%v\n  sharded n=%d p99=%v res=%s counts=%v",
				workers, classic.count, classic.p99, classic.res, classic.counts,
				sharded.count, sharded.p99, sharded.res, sharded.counts)
		}
	}
}
