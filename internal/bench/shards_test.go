package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"l3/internal/chaos"
	"l3/internal/resilience"
	"l3/internal/retry"
	"l3/internal/trace"
)

// shardDigest captures everything observable from one sharded run: the
// recorder's full per-second series, the per-route count matrix, and (under
// chaos) the split-write trace and health accounting. Two runs with equal
// digests produced byte-identical figures.
type shardDigest struct {
	count       uint64
	successRate float64
	mean        time.Duration
	p50, p99    time.Duration
	p99Series   []float64
	rpsSeries   []float64
	succSeries  []float64
	counts      map[[2]string]float64
	updates     []time.Duration
	snaps       string
	ejections   float64
	restores    float64
}

func shardRun(t *testing.T, scenario string, algo Algorithm, opts Options, workers int) shardDigest {
	t.Helper()
	opts = opts.withDefaults()
	opts.Shards = workers
	sc, err := trace.Generate(scenario, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rec, counts, art, err := runOnceShardedCounted(sc, algo, opts, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	d := shardDigest{
		count:       rec.Count(),
		successRate: rec.SuccessRate(),
		mean:        rec.Mean(),
		p50:         rec.Quantile(0.5),
		p99:         rec.Quantile(0.99),
		p99Series:   rec.QuantileSeries(0.99),
		rpsSeries:   rec.RPSSeries(),
		succSeries:  rec.SuccessRateSeries(),
		counts:      counts,
	}
	if art != nil {
		d.updates = art.updates
		d.snaps = fmt.Sprint(art.snaps)
		d.ejections = art.ejections
		d.restores = art.restores
	}
	return d
}

// TestShardedRunByteIdenticalAcrossWorkerCounts is the tentpole's property
// test: for a matrix of scenario × algorithm × chaos configurations, the
// sharded core must produce identical recorder series, per-route counts and
// control-plane traces at 1, 4 and 8 workers. Run under -race this also
// exercises the window/barrier protocol for data races.
func TestShardedRunByteIdenticalAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		name     string
		scenario string
		algo     Algorithm
		chaos    *chaos.Schedule
	}{
		{"s1-rr", trace.Scenario1, AlgoRoundRobin, nil},
		{"s1-l3", trace.Scenario1, AlgoL3, nil},
		{"f1-failover-chaos", trace.Failure1, AlgoFailover, partitionQuick()},
		{"s1-l3-chaos", trace.Scenario1, AlgoL3, partitionQuick()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			opts := quick()
			opts.Chaos = tc.chaos
			base := shardRun(t, tc.scenario, tc.algo, opts, 1)
			if base.count == 0 {
				t.Fatal("sharded run recorded no requests")
			}
			for _, workers := range []int{4, 8} {
				got := shardRun(t, tc.scenario, tc.algo, opts, workers)
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("workers=%d diverged from workers=1:\n  base n=%d p99=%v counts=%v\n  got  n=%d p99=%v counts=%v",
						workers, base.count, base.p99, base.counts,
						got.count, got.p99, got.counts)
				}
			}
		})
	}
}

// TestShardedRunDeterministicForSeed pins run-to-run determinism at a fixed
// worker count (the property -shards relies on when figures are regenerated).
func TestShardedRunDeterministicForSeed(t *testing.T) {
	a := shardRun(t, trace.Scenario1, AlgoL3, quick(), 4)
	b := shardRun(t, trace.Scenario1, AlgoL3, quick(), 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: n=%d/%d p99=%v/%v", a.count, b.count, a.p99, b.p99)
	}
}

// TestShardedRunProducesPlausibleTraffic sanity-checks that the sharded path
// runs the same experiment as the classic path: scenario-1 offers ~300 RPS
// with no failures.
func TestShardedRunProducesPlausibleTraffic(t *testing.T) {
	d := shardRun(t, trace.Scenario1, AlgoRoundRobin, quick(), 4)
	if d.count < 30000 || d.count > 45000 {
		t.Fatalf("recorded %d requests, want ~36k", d.count)
	}
	if d.successRate != 1 {
		t.Fatalf("success = %v, scenario-1 has no failures", d.successRate)
	}
	if d.p99 < 100*time.Millisecond || d.p99 > 2*time.Second {
		t.Fatalf("P99 = %v, outside scenario-1's plausible band", d.p99)
	}
}

// TestShardedRejectsUnsupportedLayers pins the explicit errors for the
// layers that are classic-only: each must name the offending layer and
// point at the remedy (-shards 0), so a CLI user knows which flag to drop.
func TestShardedRejectsUnsupportedLayers(t *testing.T) {
	wantActionable := func(t *testing.T, err error, layer string) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s accepted with Shards > 0", layer)
		}
		if !strings.Contains(err.Error(), layer) {
			t.Fatalf("error %q does not name the %s layer", err, layer)
		}
		if !strings.Contains(err.Error(), "-shards 0") {
			t.Fatalf("error %q does not suggest -shards 0", err)
		}
	}
	o := quick()
	o.Shards = 2
	o.Retry = &retry.Policy{MaxAttempts: 3}
	_, err := RunScenario(trace.Scenario1, AlgoRoundRobin, o)
	wantActionable(t, err, "retry")
	o.Retry = nil
	o.Resilience = &resilience.Policy{}
	_, err = RunScenario(trace.Scenario1, AlgoRoundRobin, o)
	wantActionable(t, err, "resilience")
	o.Resilience = nil
	_, err = RunDSB(AlgoRoundRobin, 100, time.Minute, o)
	wantActionable(t, err, "DSB")
}
