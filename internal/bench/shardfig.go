package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/perf"
	"l3/internal/sim"
	"l3/internal/wan"
)

// The shard-scaling workload (figure S1): a mesh wide enough that the
// sharded core has real parallelism to exploit. Eight clusters each host a
// replica of one service and each run their own load generator; per-shard
// round-robin pickers spray 7/8 of the traffic across the WAN, so every
// barrier exchanges a full mailbox of cross-shard messages. The WAN's 40 ms
// base RTT yields a 16 ms lookahead — wide windows with hundreds of events
// per shard between barriers.
const (
	shardFigClusters  = 8
	shardFigRPS       = 2000 // per cluster
	shardFigWarm      = 5 * time.Second
	shardFigMeasure   = 45 * time.Second
	shardFigDrain     = 10 * time.Second
	shardFigBaseRTT   = 40 * time.Millisecond
	shardFigLatFloor  = 20 * time.Millisecond
	shardFigLatSpread = 60 * time.Millisecond
)

// shardFigRun holds what one execution of the workload yields: the merged
// recorder (simulated results — identical for every worker count) and the
// engine's self-accounting.
type shardFigRun struct {
	rec       *loadgen.Recorder
	stats     sim.ShardStats
	lookahead time.Duration
}

// recDigest summarizes the simulated results for cross-run comparison.
func (r *shardFigRun) recDigest() string {
	return fmt.Sprintf("%d|%v|%v|%v",
		r.rec.Count(), r.rec.Quantile(0.5), r.rec.Quantile(0.99), r.rec.SuccessRate())
}

// perSourceRR gives the classic baseline the sharded mesh's routing: one
// RoundRobin rotation per source cluster (sharded mode instantiates one
// picker per shard). With it, the classic and sharded executions of the
// scaling workload are the same simulation — same routing, same WAN hash
// delays, same backend rng streams — so their wall-clock difference is
// purely the two cores' machinery, which is exactly what the overhead
// number must isolate.
type perSourceRR struct {
	by map[string]mesh.Picker
}

func (p *perSourceRR) Pick(now time.Duration, src, svc string, bs []*mesh.Backend) *mesh.Backend {
	rr := p.by[src]
	if rr == nil {
		rr = balancer.NewRoundRobin()
		p.by[src] = rr
	}
	return rr.Pick(now, src, svc, bs)
}

// runShardWorkloadClassic executes the identical scaling workload on the
// classic single-loop engine — the baseline the sharded core's workers=1
// overhead is measured against.
func runShardWorkloadClassic(seed uint64) (*shardFigRun, error) {
	rng := sim.NewRand(seed)
	wcfg := wan.DefaultConfig()
	wcfg.BaseRTT = shardFigBaseRTT
	wcfg.Seed = seed
	wanModel := wan.New(wcfg)

	engine := sim.NewEngine()
	m := mesh.New(engine, rng.Fork(), wanModel, metrics.NewRegistry())
	if _, err := m.AddService(apiService); err != nil {
		return nil, err
	}
	clusters := make([]string, shardFigClusters)
	for i := range clusters {
		clusters[i] = fmt.Sprintf("cluster-%d", i+1)
	}
	for _, cl := range clusters {
		profile := func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return shardFigLatFloor + time.Duration(r.Float64()*float64(shardFigLatSpread)), true
		}
		if _, err := m.AddBackend(apiService, apiService+"-"+cl, cl,
			backend.Config{Concurrency: 160}, profile); err != nil {
			return nil, err
		}
	}
	if err := m.SetPicker(apiService, &perSourceRR{by: make(map[string]mesh.Picker)}); err != nil {
		return nil, err
	}

	gens := make([]*loadgen.Generator, len(clusters))
	for i, cl := range clusters {
		cl := cl
		gens[i] = loadgen.New(engine, loadgen.Config{
			Rate:   loadgen.ConstantRate(shardFigRPS),
			WarmUp: shardFigWarm,
		}, func(done func(time.Duration, bool)) error {
			return m.Call(cl, apiService, func(r mesh.Result) {
				done(r.Latency, r.Success)
			})
		})
		gens[i].Start()
	}

	engine.RunUntil(shardFigWarm + shardFigMeasure)
	for _, g := range gens {
		g.Stop()
	}
	engine.RunUntil(shardFigWarm + shardFigMeasure + shardFigDrain)

	recs := make([]*loadgen.Recorder, len(gens))
	for i, g := range gens {
		recs[i] = g.Recorder()
	}
	return &shardFigRun{
		rec:   mergeRecorders(recs),
		stats: sim.ShardStats{Events: engine.Fired()},
	}, nil
}

// runShardWorkload executes the scaling workload with the given worker-pool
// size. Everything observable in the return value is byte-identical for any
// workers ≥ 1; only wall-clock differs.
func runShardWorkload(workers int, seed uint64) (*shardFigRun, error) {
	rng := sim.NewRand(seed)
	wcfg := wan.DefaultConfig()
	wcfg.BaseRTT = shardFigBaseRTT
	wcfg.Seed = seed
	wanModel := wan.New(wcfg)

	clusters := make([]string, shardFigClusters)
	for i := range clusters {
		clusters[i] = fmt.Sprintf("cluster-%d", i+1)
	}
	se := sim.NewSharded(len(clusters), wanModel.MinOneWayDelay())
	se.SetWorkers(workers)
	m, err := mesh.NewSharded(se, clusters, rng.Fork(), wanModel)
	if err != nil {
		return nil, err
	}
	if _, err := m.AddService(apiService); err != nil {
		return nil, err
	}
	for _, cl := range clusters {
		profile := func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return shardFigLatFloor + time.Duration(r.Float64()*float64(shardFigLatSpread)), true
		}
		// 2000 RPS at ~50 ms mean needs ~100 slots; 160 keeps utilisation
		// near 60 % so the figure reflects the network, not queueing.
		if _, err := m.AddBackend(apiService, apiService+"-"+cl, cl,
			backend.Config{Concurrency: 160}, profile); err != nil {
			return nil, err
		}
		if err := m.SetShardPicker(apiService, cl, balancer.NewRoundRobin()); err != nil {
			return nil, err
		}
	}

	gens := make([]*loadgen.Generator, len(clusters))
	for i, cl := range clusters {
		cl := cl
		eng, err := m.EngineFor(cl)
		if err != nil {
			return nil, err
		}
		gens[i] = loadgen.New(eng, loadgen.Config{
			Rate:   loadgen.ConstantRate(shardFigRPS),
			WarmUp: shardFigWarm,
		}, func(done func(time.Duration, bool)) error {
			return m.Call(cl, apiService, func(r mesh.Result) {
				done(r.Latency, r.Success)
			})
		})
		gens[i].Start()
	}

	se.RunUntil(shardFigWarm + shardFigMeasure)
	for _, g := range gens {
		g.Stop()
	}
	se.RunUntil(shardFigWarm + shardFigMeasure + shardFigDrain)

	recs := make([]*loadgen.Recorder, len(gens))
	for i, g := range gens {
		recs[i] = g.Recorder()
	}
	return &shardFigRun{rec: mergeRecorders(recs), stats: se.Stats(), lookahead: se.Lookahead()}, nil
}

// FigS1 renders the sharded-core figure: the scaling workload's simulated
// results plus the engine's window/event accounting. Every number on stdout
// is a simulation fact, so the figure is byte-identical for any -shards
// value; wall-clock scaling lives in BENCH_shards.json (l3bench
// -bench-shards), keeping the determinism discipline of every other figure.
func FigS1(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	workers := opts.Shards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	run, err := runShardWorkload(workers, opts.Seed)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "S1", Title: "Sharded deterministic core: 8-cluster scaling workload"}
	r.AddRow("Requests", float64(run.rec.Count()), "", NoPaper)
	r.AddRow("Success rate", run.rec.SuccessRate()*100, "%", NoPaper)
	r.AddRow("P50 latency", msOf(run.rec.Quantile(0.5)), "ms", NoPaper)
	r.AddRow("P99 latency", msOf(run.rec.Quantile(0.99)), "ms", NoPaper)
	r.AddRow("Lookahead windows", float64(run.stats.Windows), "", NoPaper)
	r.AddRow("Empty windows (no mailbox drain)", float64(run.stats.EmptyWindows), "", NoPaper)
	r.AddRow("Events fired", float64(run.stats.Events), "", NoPaper)
	r.AddRow("Cross-shard messages", float64(run.stats.CrossSends), "", NoPaper)
	r.Note("8 clusters x %d RPS, %v measured; one shard per cluster, %v lookahead",
		shardFigRPS, shardFigMeasure, run.lookahead)
	r.Note("stdout is identical for every -shards value; wall-clock scaling is in BENCH_shards.json")
	return r, nil
}

// ShardPoint is one worker-count measurement of the scaling workload.
type ShardPoint struct {
	// Workers is the sharded engine's worker-pool size.
	Workers int `json:"workers"`
	// WallMS is the run's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Events is the total events fired (identical across rows — the
	// simulated work is invariant).
	Events uint64 `json:"events"`
	// EventsPerSec is the throughput this row achieved.
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is WallMS(workers=1) / WallMS.
	Speedup float64 `json:"speedup"`
}

// ShardScaling measures the scaling workload's wall-clock at each worker
// count, serially (concurrent runs would contend for cores and corrupt the
// measurement). The simulated output is asserted identical across rows —
// a scaling number from diverging runs would be meaningless.
func ShardScaling(seed uint64, workerCounts []int) ([]ShardPoint, error) {
	points := make([]ShardPoint, 0, len(workerCounts))
	var baseMS float64
	var baseDigest string
	for _, w := range workerCounts {
		start := time.Now()
		run, err := runShardWorkload(w, seed)
		if err != nil {
			return nil, err
		}
		wallMS := float64(time.Since(start)) / float64(time.Millisecond)
		digest := fmt.Sprintf("%s|%+v", run.recDigest(), run.stats)
		if baseDigest == "" {
			baseMS, baseDigest = wallMS, digest
		} else if digest != baseDigest {
			return nil, fmt.Errorf("bench: workers=%d diverged from workers=%d: %s vs %s",
				w, workerCounts[0], digest, baseDigest)
		}
		points = append(points, ShardPoint{
			Workers:      w,
			WallMS:       wallMS,
			Events:       run.stats.Events,
			EventsPerSec: float64(run.stats.Events) / (wallMS / 1000),
			Speedup:      baseMS / wallMS,
		})
	}
	return points, nil
}

// ShardReport is BENCH_shards.json: the scaling sweep plus the classic
// baseline it is judged against and the host facts (CPU count, GOMAXPROCS)
// without which none of the wall-clock numbers can be interpreted.
type ShardReport struct {
	// NumCPU and GoMaxProcs stamp the host the sweep ran on.
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"gomaxprocs"`
	// ClassicWallMS is the identical workload on the classic single-loop
	// engine; ClassicEvents its event count (equal to every sharded row's —
	// same simulation, different machinery).
	ClassicWallMS float64 `json:"classic_wall_ms"`
	ClassicEvents uint64  `json:"classic_events"`
	// OverheadAtOneWorker is WallMS(workers=1)/ClassicWallMS − 1: what
	// -shards costs before any parallelism pays for it. The acceptance bar
	// is ≤ 0.05.
	OverheadAtOneWorker float64 `json:"overhead_at_one_worker"`
	// Scaling is the per-worker-count sweep.
	Scaling []ShardPoint `json:"scaling"`
	// Benches isolates the synchronization primitives the sweep exercises
	// (perf.ShardSuite: ShardBarrier, CrossShardSend) — both 0 allocs/op.
	Benches []perf.Result `json:"benches"`
}

// ShardScalingReport runs the classic baseline, the scaling sweep and the
// shard micro-benchmarks, and assembles BENCH_shards.json. The classic and
// sharded runs are asserted to be the same simulation (equal recorder
// digests) — the overhead number would otherwise compare different work.
// Benchmark progress lines go to w (nil silences them).
func ShardScalingReport(seed uint64, workerCounts []int, w io.Writer) (*ShardReport, error) {
	start := time.Now()
	classic, err := runShardWorkloadClassic(seed)
	if err != nil {
		return nil, err
	}
	classicMS := float64(time.Since(start)) / float64(time.Millisecond)

	points, err := ShardScaling(seed, workerCounts)
	if err != nil {
		return nil, err
	}
	sharded, err := runShardWorkload(1, seed)
	if err != nil {
		return nil, err
	}
	if got, want := sharded.recDigest(), classic.recDigest(); got != want {
		return nil, fmt.Errorf("bench: sharded scaling workload diverged from classic baseline: %s vs %s", got, want)
	}
	report := &ShardReport{
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		ClassicWallMS: classicMS,
		ClassicEvents: classic.stats.Events,
		Scaling:       points,
		Benches:       perf.RunSuiteBest(w, perf.ShardSuite(), 3),
	}
	for _, p := range points {
		if p.Workers == 1 && classicMS > 0 {
			report.OverheadAtOneWorker = p.WallMS/classicMS - 1
		}
	}
	return report, nil
}
