package bench

import (
	"fmt"
	"time"

	"l3/internal/chaos"
	"l3/internal/loadgen"
	"l3/internal/trace"
)

// Recovery scoring parameters shared by the chaos figures: the SLO is the
// per-second success rate staying at or above 95%, recovery must hold for
// five consecutive seconds to filter single-bucket blips, and TrafficSplit
// weights count as reconverged within 5% normalized L1 distance of their
// final steady state.
const (
	chaosSLOThreshold   = 0.95
	chaosSustainBuckets = 5
	chaosReconvergeTol  = 0.05
)

// ChaosStats is one algorithm's outcome under a fault schedule: the merged
// latency recorder plus the recovery scorecard averaged across
// repetitions in index order.
type ChaosStats struct {
	Recorder *loadgen.Recorder
	Report   chaos.Report
	// Ejections and Restores total the health checker's transitions
	// (non-zero only for AlgoFailover).
	Ejections float64
	Restores  float64
}

// RunChaosScenario replays a trace scenario under one algorithm with
// opts.Chaos injected into every repetition, and scores the recovery.
func RunChaosScenario(scenarioName string, algo Algorithm, opts Options) (*ChaosStats, error) {
	opts = opts.withDefaults()
	if opts.Chaos == nil {
		return nil, fmt.Errorf("bench: RunChaosScenario requires Options.Chaos")
	}
	recs := make([]*loadgen.Recorder, opts.Reps)
	arts := make([]*chaosArtifacts, opts.Reps)
	durations := make([]time.Duration, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := DeriveSeed(opts.Seed, rep)
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, _, art, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		duration := opts.Duration
		if duration <= 0 {
			duration = sc.Duration
		}
		recs[rep], arts[rep], durations[rep] = rec, art, duration
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats := &ChaosStats{Recorder: mergeRecorders(recs)}
	reports := make([]chaos.Report, opts.Reps)
	for rep := 0; rep < opts.Reps; rep++ {
		reports[rep] = scoreRun(recs[rep], arts[rep], opts.WarmUp, durations[rep], opts.Chaos)
		stats.Ejections += arts[rep].ejections
		stats.Restores += arts[rep].restores
	}
	stats.Report = mergeReports(reports)
	return stats, nil
}

// scoreRun turns one repetition's recorder and artifacts into a recovery
// report. Recorder buckets are indexed by absolute request-start time
// (warm-up included), so schedule times shift by warm here exactly as the
// injector shifted them.
func scoreRun(rec *loadgen.Recorder, art *chaosArtifacts, warm, duration time.Duration, sched *chaos.Schedule) chaos.Report {
	var r chaos.Report
	width := rec.BucketWidth()
	series := rec.SuccessRateSeries()
	faultAbs := warm + sched.Start()

	r.TimeToRecover, r.Recovered = chaos.TimeToRecover(series, width, faultAbs, chaosSLOThreshold, chaosSustainBuckets)
	from := int(faultAbs / width)
	if from > len(series) {
		from = len(series)
	}
	r.SLOViolation = chaos.SLOViolation(series[from:], width, chaosSLOThreshold)
	r.Trough = chaos.Trough(series, width, faultAbs)

	if end, ok := sched.End(); ok {
		r.Reconverge, r.ReconvergeOK = chaos.ReconvergeTime(art.snaps, warm+end, chaosReconvergeTol)
	}
	for _, ev := range sched.Events {
		if ev.Kind == chaos.LeaderKill {
			r.FailoverGap = chaos.FailoverGap(art.updates, warm+ev.At, warm+duration)
			break
		}
	}
	return r
}

// mergeReports averages per-repetition reports in index order. Boolean
// outcomes AND across reps: a configuration only counts as recovered (or
// reconverged) when every repetition did, and the averaged durations span
// just those reps.
func mergeReports(reports []chaos.Report) chaos.Report {
	if len(reports) == 0 {
		return chaos.Report{}
	}
	out := chaos.Report{Recovered: true, ReconvergeOK: true}
	n := time.Duration(len(reports))
	for _, r := range reports {
		out.Recovered = out.Recovered && r.Recovered
		out.ReconvergeOK = out.ReconvergeOK && r.ReconvergeOK
		out.TimeToRecover += r.TimeToRecover / n
		out.SLOViolation += r.SLOViolation / n
		out.Trough += r.Trough / float64(len(reports))
		out.Reconverge += r.Reconverge / n
		out.FailoverGap += r.FailoverGap / n
	}
	return out
}

// chaosWindow places the standard fault window inside the measured
// duration: injection at 2/5 of the run, healing after another 1/5, so a
// healthy baseline precedes the fault and at least 2/5 of the run observes
// the recovery — at any -quick or -full duration.
func chaosWindow(opts Options) (at, dur time.Duration) {
	total := opts.Duration
	if total <= 0 {
		total = 10 * time.Minute
	}
	return total * 2 / 5, total / 5
}

// FigC1 is the cluster-partition recovery figure: the WAN link between the
// source cluster and cluster-2 blackholes mid-run and heals, under L3, C3,
// plain round-robin and health-check failover. It reports the depth of the
// availability dip, the SLO damage, and how fast each strategy steers away
// from — and back to — the partitioned cluster.
func FigC1(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	at, dur := chaosWindow(opts)
	sched := &chaos.Schedule{Events: []chaos.Event{{
		Kind: chaos.Partition, At: at, Duration: dur,
		From: sourceCluster, To: "cluster-2",
	}}}
	opts.Chaos = sched

	algos := []Algorithm{AlgoL3, AlgoC3, AlgoRoundRobin, AlgoFailover}
	stats := make([]*ChaosStats, len(algos))
	err := ForEach(opts.Parallel, len(algos), func(i int) error {
		s, err := RunChaosScenario(trace.Scenario1, algos[i], opts)
		stats[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figC1", Title: "Partition recovery (WAN blackhole + heal)", SeriesStep: time.Second}
	for i, algo := range algos {
		s := stats[i]
		label := algo.String()
		r.AddRow(label+" P99", msOf(s.Recorder.Quantile(0.99)), "ms", NoPaper)
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		r.AddRow(label+" trough", s.Report.Trough*100, "%", NoPaper)
		r.AddRow(label+" SLO violation", s.Report.SLOViolation.Seconds(), "s", NoPaper)
		if s.Report.Recovered {
			r.AddRow(label+" time-to-recover", s.Report.TimeToRecover.Seconds(), "s", NoPaper)
		} else {
			r.Note("%s never recovered above %.0f%% success", label, chaosSLOThreshold*100)
		}
		r.AddSeries("success_"+label, s.Recorder.SuccessRateSeries())
	}
	if l3 := stats[0]; l3.Report.ReconvergeOK {
		r.AddRow("L3 weight reconverge", l3.Report.Reconverge.Seconds(), "s", NoPaper)
	}
	fo := stats[len(stats)-1]
	r.AddRow("RR+failover ejections", fo.Ejections, "", NoPaper)
	r.AddRow("RR+failover restores", fo.Restores, "", NoPaper)
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	r.Note("expectation: L3 recovers fastest (symptom-driven reweighting); health-check failover waits out probe thresholds; plain round-robin stays degraded until the heal")
	return r, nil
}

// FigC2 is the leader-failover transparency figure: the leader L3
// controller instance is killed mid-run without releasing its lease, the
// standby takes over after the lease TTL, and the figure compares the run
// against an unperturbed leader-elected run. The split keeps its last
// written weights across the gap, so the data plane should barely notice.
func FigC2(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	opts.LeaderElection = true
	at, dur := chaosWindow(opts)
	sched := &chaos.Schedule{Events: []chaos.Event{{
		Kind: chaos.LeaderKill, At: at, Duration: dur,
	}}}

	var killed *ChaosStats
	var baseline *loadgen.Recorder
	err := ForEach(opts.Parallel, 2, func(i int) error {
		if i == 0 {
			chaosOpts := opts
			chaosOpts.Chaos = sched
			s, err := RunChaosScenario(trace.Scenario1, AlgoL3, chaosOpts)
			killed = s
			return err
		}
		rec, err := RunScenario(trace.Scenario1, AlgoL3, opts)
		baseline = rec
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figC2", Title: "Leader-kill failover transparency (lease TTL takeover)", SeriesStep: time.Second}
	r.AddRow("leader-killed P99", msOf(killed.Recorder.Quantile(0.99)), "ms", NoPaper)
	r.AddRow("baseline P99", msOf(baseline.Quantile(0.99)), "ms", NoPaper)
	r.AddRow("leader-killed success", killed.Recorder.SuccessRate()*100, "%", NoPaper)
	r.AddRow("baseline success", baseline.SuccessRate()*100, "%", NoPaper)
	r.AddRow("failover gap", killed.Report.FailoverGap.Seconds(), "s", NoPaper)
	r.AddSeries("success_killed", killed.Recorder.SuccessRateSeries())
	r.AddSeries("success_baseline", baseline.SuccessRateSeries())
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	r.Note("expectation: failover gap ≈ lease TTL (15 s) + one reconcile interval; data-plane latency and success match the baseline — stale weights keep routing while no leader writes")
	return r, nil
}

// FigChaosCustom runs a caller-supplied schedule (the -chaos flag) under
// the standard algorithm set and reports the same recovery scorecard as
// FigC1.
func FigChaosCustom(scenarioName string, sched *chaos.Schedule, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	opts.Chaos = sched
	needsLeaders, needsMetricPlane := false, false
	for _, ev := range sched.Events {
		switch ev.Kind {
		case chaos.LeaderKill:
			needsLeaders = true
		case chaos.Garbage, chaos.CounterReset, chaos.ClockSkew, chaos.SlowScrape:
			needsMetricPlane = true
		}
	}
	algos := []Algorithm{AlgoL3, AlgoC3, AlgoRoundRobin, AlgoFailover}
	if needsMetricPlane {
		// Metric-plane faults corrupt the scrape pipeline, which only the
		// metric-driven algorithms have.
		algos = []Algorithm{AlgoL3, AlgoC3}
	}
	if needsLeaders {
		// Only L3/C3 have controller instances to kill.
		algos = []Algorithm{AlgoL3, AlgoC3}
		opts.LeaderElection = true
	}
	stats := make([]*ChaosStats, len(algos))
	err := ForEach(opts.Parallel, len(algos), func(i int) error {
		s, err := RunChaosScenario(scenarioName, algos[i], opts)
		stats[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Custom chaos schedule on %s", scenarioName)
	if opts.Guard {
		title += " (guarded)"
	}
	r := &Result{ID: "chaos", Title: title, SeriesStep: time.Second}
	for i, algo := range algos {
		s := stats[i]
		label := algo.String()
		r.AddRow(label+" P99", msOf(s.Recorder.Quantile(0.99)), "ms", NoPaper)
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		r.AddRow(label+" trough", s.Report.Trough*100, "%", NoPaper)
		r.AddRow(label+" SLO violation", s.Report.SLOViolation.Seconds(), "s", NoPaper)
		if s.Report.Recovered {
			r.AddRow(label+" time-to-recover", s.Report.TimeToRecover.Seconds(), "s", NoPaper)
		} else {
			r.Note("%s never recovered above %.0f%% success", label, chaosSLOThreshold*100)
		}
		if needsLeaders {
			r.AddRow(label+" failover gap", s.Report.FailoverGap.Seconds(), "s", NoPaper)
		}
		r.AddSeries("success_"+label, s.Recorder.SuccessRateSeries())
	}
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	return r, nil
}
