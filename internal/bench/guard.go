package bench

import (
	"time"

	"l3/internal/chaos"
	"l3/internal/loadgen"
	"l3/internal/trace"
)

// runChaosWithGuard is RunChaosScenario keeping the guard-layer counters and
// the first repetition's weight snapshots, which the G figures report
// (survivor amplification is a weight-trajectory property, not a latency
// one).
func runChaosWithGuard(scenarioName string, algo Algorithm, opts Options) (*ChaosStats, guardCounters, []chaos.WeightSnapshot, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	arts := make([]*chaosArtifacts, opts.Reps)
	durations := make([]time.Duration, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := DeriveSeed(opts.Seed, rep)
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, _, art, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		duration := opts.Duration
		if duration <= 0 {
			duration = sc.Duration
		}
		recs[rep], arts[rep], durations[rep] = rec, art, duration
		return nil
	})
	if err != nil {
		return nil, guardCounters{}, nil, err
	}
	stats := &ChaosStats{Recorder: mergeRecorders(recs)}
	reports := make([]chaos.Report, opts.Reps)
	var g guardCounters
	for rep := 0; rep < opts.Reps; rep++ {
		reports[rep] = scoreRun(recs[rep], arts[rep], opts.WarmUp, durations[rep], opts.Chaos)
		a := arts[rep].grd
		g.rejected += a.rejected
		g.resets += a.resets
		g.holds += a.holds
		g.decays += a.decays
		g.frozen += a.frozen
		g.writeSuppressed += a.writeSuppressed
		g.writeClamped += a.writeClamped
		g.writeRejected += a.writeRejected
		g.watchdogDegrades += a.watchdogDegrades
	}
	stats.Report = mergeReports(reports)
	return stats, g, arts[0].snaps, nil
}

// peakShare is the largest traffic share one backend reached across a run's
// TrafficSplit snapshots — the survivor-amplification metric of FigG2.
func peakShare(snaps []chaos.WeightSnapshot, backend string) float64 {
	best := 0.0
	for _, s := range snaps {
		var total, w int64
		for b, v := range s.Weights {
			total += v
			if b == backend {
				w = v
			}
		}
		if total > 0 {
			if share := float64(w) / float64(total); share > best {
				best = share
			}
		}
	}
	return best
}

// addGuardRows reports the guard layer's own accounting for one
// configuration (all-zero rows are skipped: the unguarded runs have none).
func addGuardRows(r *Result, label string, g guardCounters) {
	add := func(name string, v float64) {
		if v > 0 {
			r.AddRow(label+" "+name, v, "", NoPaper)
		}
	}
	add("samples rejected", g.rejected)
	add("resets spliced", g.resets)
	add("weight holds", g.holds)
	add("blind decays", g.decays)
	add("quorum-frozen rounds", g.frozen)
	add("writes suppressed", g.writeSuppressed)
	add("writes clamped", g.writeClamped)
	add("writes rejected", g.writeRejected)
	add("watchdog degrades", g.watchdogDegrades)
}

// guardConfigs is the two-column comparison every G figure runs: the same
// schedule under hardened and unhardened control planes.
var guardConfigs = []struct {
	label string
	guard bool
}{
	{"guarded", true},
	{"unguarded", false},
}

// FigG1 is the metric-garbage figure: a counter reset and a scrape blackout
// exercise the hygiene layer in isolation, then a saturate fault on
// cluster-2 arrives with NaN-corrupted scrapes landing right after it — the
// moment the control plane most needs its metrics is the moment they turn to
// garbage. The unguarded pipeline ingests NaN into its EWMAs, which never
// recover (NaN absorbs every later observation), so its weights freeze
// mid-steer and it cannot route around the saturated backend until the fault
// itself heals. The guarded pipeline rejects the garbage at ingestion, holds
// last-good weights through the blackout, and resumes steering the moment
// clean samples return — while the saturate fault is still active.
func FigG1(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// R3's headroom testbed: ejecting one of three backends is safe, so the
	// figure isolates how fast each control plane steers, not redistribution
	// overload.
	opts.Concurrency = 14
	opts.QueueCapacity = 192
	total := opts.Duration
	if total <= 0 {
		total = 10 * time.Minute
	}
	sched := &chaos.Schedule{Events: []chaos.Event{
		// Benign hygiene traffic first: a pod restart and a short scrape
		// blackout, both of which the guarded plane should shrug off.
		{Kind: chaos.CounterReset, At: total / 5, Backend: apiService + "-cluster-1"},
		{Kind: chaos.ScrapeDrop, At: total / 4, Duration: total / 20},
		// The compound fault: cluster-2 loses 95% of its workers, and 5 s
		// later every scraped value reads NaN for a quarter of the run.
		{Kind: chaos.Saturate, At: total * 2 / 5, Duration: total / 2,
			Backend: apiService + "-cluster-2", Factor: 0.05},
		{Kind: chaos.Garbage, At: total*2/5 + 5*time.Second, Duration: total / 4, Mode: "nan"},
	}}
	opts.Chaos = sched

	stats := make([]*ChaosStats, len(guardConfigs))
	counters := make([]guardCounters, len(guardConfigs))
	err := ForEach(opts.Parallel, len(guardConfigs), func(i int) error {
		cfgOpts := opts
		cfgOpts.Guard = guardConfigs[i].guard
		s, g, _, err := runChaosWithGuard(trace.Scenario1, AlgoL3, cfgOpts)
		stats[i], counters[i] = s, g
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figG1", Title: "Metric hygiene under garbage + saturate (guarded vs unguarded L3)", SeriesStep: time.Second}
	for i, cfg := range guardConfigs {
		s := stats[i]
		label := cfg.label
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		r.AddRow(label+" trough", s.Report.Trough*100, "%", NoPaper)
		r.AddRow(label+" SLO violation", s.Report.SLOViolation.Seconds(), "s", NoPaper)
		// Time-to-recover is anchored at the schedule's first event, which
		// here is the benign counter reset both planes shrug off — the
		// fault-relative clock reads ~0 for both, so total SLO violation is
		// the comparable number.
		if !s.Report.Recovered {
			r.Note("%s never recovered above %.0f%% success", label, chaosSLOThreshold*100)
		}
		if s.Report.ReconvergeOK {
			r.AddRow(label+" weight reconverge", s.Report.Reconverge.Seconds(), "s", NoPaper)
		} else {
			r.Note("%s weights never reconverged after the heal", label)
		}
		addGuardRows(r, label, counters[i])
		r.AddSeries("success_"+label, s.Recorder.SuccessRateSeries())
	}
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	r.Note("expectation: unguarded EWMAs go NaN on the first corrupt scrape and freeze mid-steer until the saturate heals; guarded rejects the garbage, holds through the blackout, and re-steers as soon as clean samples return")
	return r, nil
}

// FigG2 is the partial-visibility figure: two of three backends scrape
// negative counter values (a broken exporter, not broken capacity — the
// backends themselves are healthy) for a fifth of the run. The unguarded
// pipeline reads negative rates as "no traffic", relaxes those backends'
// filters toward their defaults, and drifts the split onto the one backend
// it can still see — amplifying the survivor far past its capacity on a
// testbed where one backend carries barely half the offered load. The
// guarded pipeline classifies the two backends blind, fails the visibility
// quorum (1 of 3 fresh < 50%), and freezes the split: reweighting from a
// sliver of the fleet is worse than not reweighting at all.
//
// The testbed is scenario-5, the calm symmetric one (cluster medians within
// a few ms): the pre-fault split sits near-uniform, so what the figure
// compares is purely freeze-the-good-split vs drift-onto-the-survivor, not
// whichever skew the scenario's dynamics happened to leave behind at fault
// onset.
func FigG2(opts Options) (*Result, error) {
	opts = resilienceLoadOptions(opts.withDefaults())
	// Tighter than the shared resilience testbed: scenario-5's ~185 rps fit
	// on one 10-worker backend, so amplification alone would not overload
	// the survivor. Six workers put single-backend capacity (~100 rps) well
	// under the offered load while a balanced third (~62 rps) keeps headroom.
	opts.Concurrency = 6
	total := opts.Duration
	if total <= 0 {
		total = 10 * time.Minute
	}
	at, dur := chaosWindow(opts)
	// Twice the usual fault window: relax-toward-defaults drifts the
	// unguarded split slowly (a few percent per 5 s round), and the figure
	// needs the drift to fully land on the survivor before the heal.
	dur *= 2
	sched := &chaos.Schedule{Events: []chaos.Event{
		{Kind: chaos.Garbage, At: at, Duration: dur, Mode: "negative", Backend: apiService + "-cluster-1"},
		{Kind: chaos.Garbage, At: at, Duration: dur, Mode: "negative", Backend: apiService + "-cluster-2"},
	}}
	opts.Chaos = sched
	survivor := apiService + "-cluster-3"

	stats := make([]*ChaosStats, len(guardConfigs))
	counters := make([]guardCounters, len(guardConfigs))
	snaps := make([][]chaos.WeightSnapshot, len(guardConfigs))
	err := ForEach(opts.Parallel, len(guardConfigs), func(i int) error {
		cfgOpts := opts
		cfgOpts.Guard = guardConfigs[i].guard
		s, g, sn, err := runChaosWithGuard(trace.Scenario5, AlgoL3, cfgOpts)
		stats[i], counters[i], snaps[i] = s, g, sn
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figG2", Title: "Partial visibility: quorum freeze vs survivor amplification", SeriesStep: time.Second}
	for i, cfg := range guardConfigs {
		s := stats[i]
		label := cfg.label
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		r.AddRow(label+" trough", s.Report.Trough*100, "%", NoPaper)
		r.AddRow(label+" SLO violation", s.Report.SLOViolation.Seconds(), "s", NoPaper)
		if s.Report.Recovered {
			r.AddRow(label+" time-to-recover", s.Report.TimeToRecover.Seconds(), "s", NoPaper)
		} else {
			r.Note("%s never recovered above %.0f%% success", label, chaosSLOThreshold*100)
		}
		r.AddRow(label+" survivor peak share", peakShare(snaps[i], survivor)*100, "%", NoPaper)
		addGuardRows(r, label, counters[i])
		r.AddSeries("success_"+label, s.Recorder.SuccessRateSeries())
	}
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	r.Note("testbed: scenario-5 (symmetric clusters), concurrency 6/backend, queue 192 — one backend carries ~100 rps of ~185 offered, so amplifying the survivor overloads it while a balanced third has headroom")
	r.Note("expectation: unguarded drifts the split onto cluster-3 (relax-toward-defaults on the blinded pair), overloads it, then oscillates as the survivor's visible pain pushes traffic back; guarded fails the 50%% visibility quorum and freezes the balanced split, riding out the window clean")
	return r, nil
}
