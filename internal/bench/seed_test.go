package bench

import "testing"

// TestDeriveSeedPinned pins the splitmix64 derivation: these exact values
// are what every rep-indexed experiment runs with, so changing the mix (or
// regressing to the old affine base+rep*1000003 scheme) must fail loudly
// here rather than silently shift every figure.
func TestDeriveSeedPinned(t *testing.T) {
	cases := []struct {
		base uint64
		rep  int
		want uint64
	}{
		{1, 0, 0x910a2dec89025cc1},
		{1, 1, 0xbeeb8da1658eec67},
		{1, 2, 0xf893a2eefb32555e},
		{42, 0, 0xbdd732262feb6e95},
		{42, 1, 0x28efe333b266f103},
		{123456789, 3, 0x851e061616a5bee5},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.base, c.rep); got != c.want {
			t.Errorf("DeriveSeed(%d, %d) = %#x, want %#x", c.base, c.rep, got, c.want)
		}
	}
}

func TestDeriveSeedDecorrelated(t *testing.T) {
	// Neighbouring reps of neighbouring bases must all be distinct — the
	// collision the affine scheme had (base+3 rep 0 == base rep 3 shifted).
	seen := make(map[uint64][2]int)
	for base := 0; base < 32; base++ {
		for rep := 0; rep < 32; rep++ {
			s := DeriveSeed(uint64(base), rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed collision: (%d,%d) and (%d,%d) -> %#x",
					base, rep, prev[0], prev[1], s)
			}
			seen[s] = [2]int{base, rep}
		}
	}
}
