package bench

import (
	"fmt"
	"time"

	"l3/internal/core"
	"l3/internal/ewma"
	"l3/internal/loadgen"
	"l3/internal/trace"
)

// msOf converts a duration to milliseconds as float.
func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// traceSeriesResult renders per-cluster trace series for the given
// scenarios — shared by Figures 1, 2, 6 and 7a, which plot the (originally
// proprietary) input traces themselves rather than benchmark output.
func traceSeriesResult(id, title string, scenarios []string, seed uint64,
	attach func(r *Result, sc *trace.Scenario)) (*Result, error) {
	r := &Result{ID: id, Title: title, SeriesStep: time.Second}
	for _, name := range scenarios {
		sc, err := trace.Generate(name, seed)
		if err != nil {
			return nil, err
		}
		attach(r, sc)
	}
	return r, nil
}

// Fig1 regenerates Figure 1: per-cluster P50 and P99 latency over the 10
// minutes of scenario-1 (a) and scenario-2 (b).
func Fig1(seed uint64) (*Result, error) {
	return traceSeriesResult("fig1", "Latency variation of scenario-1 and scenario-2",
		[]string{trace.Scenario1, trace.Scenario2}, seed,
		func(r *Result, sc *trace.Scenario) {
			for _, ct := range sc.Clusters {
				r.AddSeries(fmt.Sprintf("%s/%s/p50_ms", sc.Name, ct.Cluster), ct.Median.Scale(1000).Values)
				r.AddSeries(fmt.Sprintf("%s/%s/p99_ms", sc.Name, ct.Cluster), ct.P99.Scale(1000).Values)
			}
			r.Note("%s: median band [%.0f, %.0f] ms, P99 band [%.0f, %.0f] ms",
				sc.Name,
				sc.Clusters[0].Median.Min()*1000, worstOverClusters(sc, func(ct *trace.ClusterTrace) float64 { return ct.Median.Max() })*1000,
				sc.Clusters[0].P99.Min()*1000, worstOverClusters(sc, func(ct *trace.ClusterTrace) float64 { return ct.P99.Max() })*1000)
		})
}

// Fig2 regenerates Figure 2: the RPS series of scenario-1 and scenario-2.
func Fig2(seed uint64) (*Result, error) {
	return traceSeriesResult("fig2", "RPS variation of scenario-1 and scenario-2",
		[]string{trace.Scenario1, trace.Scenario2}, seed,
		func(r *Result, sc *trace.Scenario) {
			r.AddSeries(sc.Name+"/rps", sc.RPS.Values)
			r.Note("%s: RPS range [%.0f, %.0f]", sc.Name, sc.RPS.Min(), sc.RPS.Max())
		})
}

// Fig4 regenerates Figure 4: the rate-control output weight as a function
// of relative change c ∈ [−1, 3], for (a) wb=2000 > wµ=1000 and (b)
// wb=500 < wµ=1000. Negative c uses the decrease branch ("RPS decrease"
// curve), non-negative c the increase branch.
func Fig4() *Result {
	r := &Result{ID: "fig4", Title: "Rate control weight adjustment vs relative change",
		SeriesStep: time.Second}
	const step = 0.05
	var cs, above, below []float64
	for c := -1.0; c <= 3.0+1e-9; c += step {
		cs = append(cs, c)
		above = append(above, core.RateControlAdjust(c, 2000, 1000))
		below = append(below, core.RateControlAdjust(c, 500, 1000))
	}
	r.AddSeries("c", cs)
	r.AddSeries("wb2000_wmu1000", above)
	r.AddSeries("wb500_wmu1000", below)
	r.AddRow("w(c=-1) for wb=2000,wµ=1000", core.RateControlAdjust(-1, 2000, 1000), "", 2875)
	r.AddRow("w(c=3) for wb=2000,wµ=1000", core.RateControlAdjust(3, 2000, 1000), "", NoPaper)
	r.Note("the paper's in-text example (halved RPS → weight >2800) matches the published formula at c=-1")
	return r
}

// Fig6 regenerates Figure 6: per-cluster P99 latency of scenario-3, -4
// and -5.
func Fig6(seed uint64) (*Result, error) {
	return traceSeriesResult("fig6", "99th percentile latency of scenario-3/4/5",
		[]string{trace.Scenario3, trace.Scenario4, trace.Scenario5}, seed,
		func(r *Result, sc *trace.Scenario) {
			for _, ct := range sc.Clusters {
				r.AddSeries(fmt.Sprintf("%s/%s/p99_ms", sc.Name, ct.Cluster), ct.P99.Scale(1000).Values)
			}
			r.Note("%s: worst P99 %.0f ms", sc.Name,
				worstOverClusters(sc, func(ct *trace.ClusterTrace) float64 { return ct.P99.Max() })*1000)
		})
}

// Fig7 regenerates Figure 7: (a) the simulated success rate of failure-2
// and (b) the penalty-factor sweep — success rate and P50/P90/P99 latency
// decrease vs round-robin for P from 100 ms to 1.5 s. Each configuration
// runs opts.Reps times (the paper ran each twice).
func Fig7(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "fig7", Title: "Penalty factor impact on failure-2", SeriesStep: time.Second}

	sc, err := trace.Generate(trace.Failure2, opts.Seed)
	if err != nil {
		return nil, err
	}
	for _, ct := range sc.Clusters {
		r.AddSeries("failure-2/"+ct.Cluster+"/success", ct.Success.Values)
	}

	penalties := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond,
		400 * time.Millisecond, 500 * time.Millisecond, 600 * time.Millisecond,
		700 * time.Millisecond, 800 * time.Millisecond, 900 * time.Millisecond,
		1000 * time.Millisecond, 1500 * time.Millisecond,
	}
	// Job 0 is the round-robin baseline; jobs 1..n sweep the penalty. All
	// run concurrently; the reduction below walks the original order.
	var rr *loadgen.Recorder
	runs := make([]*loadgen.Recorder, len(penalties))
	err = ForEach(opts.Parallel, len(penalties)+1, func(i int) error {
		if i == 0 {
			rec, err := RunScenario(trace.Failure2, AlgoRoundRobin, opts)
			rr = rec
			return err
		}
		o := opts
		o.Penalty = penalties[i-1]
		rec, err := RunScenario(trace.Failure2, AlgoL3, o)
		runs[i-1] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	var ps, succ, d50, d90, d99 []float64
	for i, p := range penalties {
		rec := runs[i]
		dec := func(q float64) float64 {
			base := rr.Quantile(q).Seconds()
			if base <= 0 {
				return 0
			}
			return (base - rec.Quantile(q).Seconds()) / base * 100
		}
		ps = append(ps, p.Seconds())
		succ = append(succ, rec.SuccessRate()*100)
		d50 = append(d50, dec(0.50))
		d90 = append(d90, dec(0.90))
		d99 = append(d99, dec(0.99))
	}
	r.AddSeries("penalty_s", ps)
	r.AddSeries("success_rate_pct", succ)
	r.AddSeries("p50_decrease_pct", d50)
	r.AddSeries("p90_decrease_pct", d90)
	r.AddSeries("p99_decrease_pct", d99)
	r.AddRow("Round-robin success rate", rr.SuccessRate()*100, "%", 98.59)
	r.AddRow("L3 success rate at P=0.1s", succ[0], "%", NoPaper)
	r.AddRow("L3 success rate at P=1.5s", succ[len(succ)-1], "%", NoPaper)
	r.Note("paper: success rate rises with P toward a ~99.0%% ceiling while the latency decrease diminishes")
	return r, nil
}

// Fig8 regenerates Figure 8: P99 latency on scenario-4 under round-robin,
// L3 with PeakEWMA and L3 with EWMA (paper: 805.7 / 590.4 / 577.1 ms; each
// configuration ran three times).
func Fig8(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "fig8", Title: "EWMA vs PeakEWMA on scenario-4 (P99)"}

	configs := []struct {
		algo   Algorithm
		filter ewma.Kind
		label  string
		paper  float64
	}{
		{AlgoRoundRobin, 0, "Round-robin", 805.7},
		{AlgoL3, ewma.KindPeak, "L3 (PeakEWMA)", 590.4},
		{AlgoL3, ewma.KindEWMA, "L3 (EWMA)", 577.1},
	}
	recs := make([]*loadgen.Recorder, len(configs))
	err := ForEach(opts.Parallel, len(configs), func(i int) error {
		o := opts
		if configs[i].filter != 0 {
			o.FilterKind = configs[i].filter
		}
		rec, err := RunScenario(trace.Scenario4, configs[i].algo, o)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, cfg := range configs {
		r.AddRow(cfg.label, msOf(recs[i].Quantile(0.99)), "ms", cfg.paper)
	}
	r.Note("paper: both variants beat round-robin; EWMA edges PeakEWMA by ~2.3%%")
	return r, nil
}

// paperFig9 holds Figure 9's reported P99 values (ms).
var paperFig9 = map[Algorithm]float64{AlgoRoundRobin: 93.0, AlgoC3: 88.3, AlgoL3: 68.8}

// Fig9 regenerates Figure 9: the DeathStarBench hotel-reservation P99 under
// round-robin, C3 and L3 at 200 RPS with 100 % success (paper: 93.0 / 88.3
// / 68.8 ms over 20-minute runs).
func Fig9(opts Options) (*Result, error) {
	return fig9At(opts, 200, 5*time.Minute)
}

// Fig9WithDuration is Fig9 with a custom measured duration (the paper ran
// 20 minutes; the default here is 5).
func Fig9WithDuration(opts Options, duration time.Duration) (*Result, error) {
	return fig9At(opts, 200, duration)
}

func fig9At(opts Options, rps float64, duration time.Duration) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "fig9", Title: "DeathStarBench hotel-reservation (P99)"}
	algos := []Algorithm{AlgoRoundRobin, AlgoC3, AlgoL3}
	recs := make([]*loadgen.Recorder, len(algos))
	err := ForEach(opts.Parallel, len(algos), func(i int) error {
		rec, err := RunDSB(algos[i], rps, duration, opts)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, algo := range algos {
		r.AddRow(algo.String(), msOf(recs[i].Quantile(0.99)), "ms", paperFig9[algo])
		if sr := recs[i].SuccessRate(); sr < 0.999 {
			r.Note("%s success rate %.3f (expected ~1.0)", algo, sr)
		}
	}
	r.Note("paper ran 20 min at 200 RPS; this run: %v at %.0f RPS", duration, rps)
	return r, nil
}

// paperFig10 holds Figure 10's reported P99 values (ms) per scenario.
var paperFig10 = map[string]map[Algorithm]float64{
	trace.Scenario1: {AlgoRoundRobin: 459.4, AlgoC3: 391.2, AlgoL3: 359.6},
	trace.Scenario2: {AlgoRoundRobin: 115.4, AlgoC3: 82.4, AlgoL3: 74.7},
	trace.Scenario3: {AlgoRoundRobin: 513.3, AlgoC3: 464.9, AlgoL3: 415.0},
	trace.Scenario4: {AlgoRoundRobin: 563.7, AlgoC3: 538.0, AlgoL3: 512.7},
	trace.Scenario5: {AlgoRoundRobin: 116.4, AlgoC3: 109.2, AlgoL3: 105.7},
}

// Fig10 regenerates Figure 10: P99 latency of round-robin, C3 and L3 on
// scenario-1 through scenario-5 (three repetitions each in the paper).
func Fig10(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "fig10", Title: "P99 latency per scenario (RR / C3 / L3)"}
	type cell struct {
		sc   string
		algo Algorithm
	}
	var cells []cell
	for _, sc := range []string{trace.Scenario1, trace.Scenario2, trace.Scenario3, trace.Scenario4, trace.Scenario5} {
		for _, algo := range []Algorithm{AlgoRoundRobin, AlgoC3, AlgoL3} {
			cells = append(cells, cell{sc, algo})
		}
	}
	recs := make([]*loadgen.Recorder, len(cells))
	err := ForEach(opts.Parallel, len(cells), func(i int) error {
		rec, err := RunScenario(cells[i].sc, cells[i].algo, opts)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		r.AddRow(fmt.Sprintf("%s %s", c.sc, c.algo), msOf(recs[i].Quantile(0.99)), "ms", paperFig10[c.sc][c.algo])
	}
	r.Note("paper: L3 < C3 < round-robin on every scenario")
	return r, nil
}

// paperFig11 and paperFig12 hold Figures 11-12's reported values.
var (
	paperFig11 = map[string]map[Algorithm]float64{
		trace.Failure1: {AlgoRoundRobin: 447.5, AlgoC3: 364.2, AlgoL3: 364.9},
		trace.Failure2: {AlgoRoundRobin: 117.2, AlgoC3: 84.6, AlgoL3: 76.2},
	}
	paperFig12 = map[string]map[Algorithm]float64{
		trace.Failure1: {AlgoRoundRobin: 91.4, AlgoC3: 91.1, AlgoL3: 92.4},
		trace.Failure2: {AlgoRoundRobin: 98.6, AlgoC3: 98.5, AlgoL3: 98.6},
	}
)

// failureRuns executes the failure scenarios once per algorithm and feeds
// both Figure 11 (P99) and Figure 12 (success rate).
func failureRuns(opts Options) (map[string]map[Algorithm]*runStats, error) {
	opts = opts.withDefaults()
	type cell struct {
		sc   string
		algo Algorithm
	}
	var cells []cell
	for _, sc := range []string{trace.Failure1, trace.Failure2} {
		for _, algo := range []Algorithm{AlgoRoundRobin, AlgoC3, AlgoL3} {
			cells = append(cells, cell{sc, algo})
		}
	}
	stats := make([]*runStats, len(cells))
	err := ForEach(opts.Parallel, len(cells), func(i int) error {
		rec, err := RunScenario(cells[i].sc, cells[i].algo, opts)
		if err != nil {
			return err
		}
		stats[i] = &runStats{p99: rec.Quantile(0.99), success: rec.SuccessRate()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[Algorithm]*runStats)
	for i, c := range cells {
		if out[c.sc] == nil {
			out[c.sc] = make(map[Algorithm]*runStats)
		}
		out[c.sc][c.algo] = stats[i]
	}
	return out, nil
}

type runStats struct {
	p99     time.Duration
	success float64
}

// Fig11 regenerates Figure 11: P99 latency on failure-1 and failure-2.
func Fig11(opts Options) (*Result, error) {
	stats, err := failureRuns(opts)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig11", Title: "P99 latency under failure injection"}
	for _, sc := range []string{trace.Failure1, trace.Failure2} {
		for _, algo := range []Algorithm{AlgoRoundRobin, AlgoC3, AlgoL3} {
			r.AddRow(fmt.Sprintf("%s %s", sc, algo), msOf(stats[sc][algo].p99), "ms", paperFig11[sc][algo])
		}
	}
	return r, nil
}

// Fig12 regenerates Figure 12: success rate on failure-1 and failure-2.
func Fig12(opts Options) (*Result, error) {
	stats, err := failureRuns(opts)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig12", Title: "Success rate under failure injection"}
	for _, sc := range []string{trace.Failure1, trace.Failure2} {
		for _, algo := range []Algorithm{AlgoRoundRobin, AlgoC3, AlgoL3} {
			r.AddRow(fmt.Sprintf("%s %s", sc, algo), stats[sc][algo].success*100, "%", paperFig12[sc][algo])
		}
	}
	r.Note("paper: L3 lifts failure-1 success above round-robin; C3 trails both (no success-rate term)")
	return r, nil
}

func worstOverClusters(sc *trace.Scenario, f func(*trace.ClusterTrace) float64) float64 {
	worst := 0.0
	for i := range sc.Clusters {
		if v := f(&sc.Clusters[i]); v > worst {
			worst = v
		}
	}
	return worst
}
