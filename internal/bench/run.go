package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"l3/internal/autoscale"
	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/c3"
	"l3/internal/chaos"
	"l3/internal/cluster"
	"l3/internal/core"
	"l3/internal/cost"
	"l3/internal/dsb"
	"l3/internal/ewma"
	"l3/internal/guard"
	"l3/internal/health"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/overload"
	"l3/internal/resilience"
	"l3/internal/retry"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/trace"
	"l3/internal/wan"
)

// Algorithm selects the load-balancing strategy under test.
type Algorithm int

const (
	// AlgoRoundRobin is Linkerd's default and the paper's baseline.
	AlgoRoundRobin Algorithm = iota + 1
	// AlgoL3 is the paper's system (Algorithm 1 + Algorithm 2 driving a
	// TrafficSplit).
	AlgoL3
	// AlgoC3 is the adapted C3 comparison (internal/c3).
	AlgoC3
	// AlgoP2C is Linkerd's per-request power-of-two-choices PeakEWMA
	// balancer, kept as an extra ablation baseline.
	AlgoP2C
	// AlgoFailover is round-robin plus health-check-driven ejection — the
	// multi-cluster failover mechanism of Istio/Linkerd/Traffic Director
	// that the paper's related work contrasts L3 with.
	AlgoFailover
)

// String names the algorithm as the paper labels it.
func (a Algorithm) String() string {
	switch a {
	case AlgoRoundRobin:
		return "Round-robin"
	case AlgoL3:
		return "L3"
	case AlgoC3:
		return "C3"
	case AlgoP2C:
		return "P2C"
	case AlgoFailover:
		return "RR+failover"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options parameterises one scenario run. Zero values take the paper's
// setup.
type Options struct {
	// Seed drives all randomness; reps use Seed, Seed+1, ...
	Seed uint64
	// Reps is the number of repetitions merged per configuration
	// (default 1; the paper used 2-3).
	Reps int
	// Parallel caps the worker goroutines fanning out independent runs —
	// repetitions and sweep configurations (default runtime.GOMAXPROCS(0);
	// 1 forces serial execution). Every run derives its own seed and owns
	// its engine, and results merge in index order, so the output is
	// bit-for-bit identical for any value.
	Parallel int
	// WarmUp precedes measurement (default 30 s); the scenario's t=0
	// state is held during warm-up.
	WarmUp time.Duration
	// Duration overrides the measured portion (default: the scenario's
	// full 10 minutes).
	Duration time.Duration
	// Concurrency per backend deployment (default 64 ≈ the paper's three
	// replicas per cluster).
	Concurrency int
	// QueueCapacity overrides each backend's wait-queue bound (default
	// 4096). The resilience figures shrink it so a saturated backend
	// sheds load fast instead of absorbing it into multi-second queues.
	QueueCapacity int
	// ConcurrencyByCluster overrides Concurrency for specific clusters
	// (heterogeneous capacities, e.g. a fast-but-small deployment next to
	// slow-but-wide ones).
	ConcurrencyByCluster map[string]int
	// Autoscale attaches a horizontal autoscaler to every backend when
	// non-nil — the mechanism §3.2's rate controller is designed to buy
	// time for.
	Autoscale *autoscale.Config
	// Retry makes the benchmark client retry failed requests (the paper's
	// benchmarks skipped retries "for simplicity", §5.2.1); recorded
	// latency then spans all attempts. When the policy enables Jitter and
	// leaves Rand nil, each repetition forks its own seeded source, so
	// jittered runs stay deterministic at any -parallel.
	Retry *retry.Policy
	// Resilience routes the benchmark client through the full resilience
	// layer (deadlines, budgeted retries, hedging, circuit breaking)
	// instead of bare mesh.Call / retry.Do. The policy is applied on top
	// of whatever picker the algorithm installed, so the breaker filter
	// composes with failover and weighted strategies.
	Resilience *resilience.Policy
	// Overload composes the admission-control layer (internal/overload) —
	// adaptive concurrency limit, CoDel admission queue, criticality-tiered
	// shedding — over the benchmark client, outside Resilience, so a shed
	// request is rejected before it can deposit into or spend from the
	// retry budget. Incompatible with the legacy Retry client.
	Overload *overload.Policy
	// OverloadTierMix cycles request criticality tiers deterministically
	// (e.g. [0,1,2] marks equal thirds critical/default/sheddable); empty
	// issues everything at TierDefault. Requires Overload; when set, the
	// run additionally records one recorder per tier into its artifacts.
	OverloadTierMix []int
	// DynamicPenalty switches L3 to the per-backend measured failure
	// round-trip instead of the static P (the paper's future work).
	DynamicPenalty bool
	// CostLambda enables cost-aware L3 (§7 future work): the
	// dollars→latency exchange rate in seconds per dollar (0 = off).
	CostLambda float64
	// Penalty is L3's P (default 600 ms).
	Penalty time.Duration
	// FilterKind selects L3's latency filter (default EWMA).
	FilterKind ewma.Kind
	// DisableRateControl turns Algorithm 2 off (ablation).
	DisableRateControl bool
	// ScrapeInterval is the metrics pipeline's scrape period
	// (default 5 s).
	ScrapeInterval time.Duration
	// Window is the collector's query window (default 2×scrape).
	Window time.Duration
	// Percentile is L3's latency percentile (default 0.99).
	Percentile float64
	// RPSScale multiplies the scenario's offered load (default 1).
	RPSScale float64
	// Chaos injects this fault schedule into every repetition. Event times
	// are relative to measurement start; the harness shifts them by WarmUp.
	Chaos *chaos.Schedule
	// LeaderElection runs two leader-elected controller instances per
	// split scope (ids l3-0, l3-1, …) sharing one lease instead of a
	// single always-on instance, so chaos leader kills have a standby to
	// fail over to. L3/C3 only.
	LeaderElection bool
	// Guard hardens the L3/C3 control plane with internal/guard: metric
	// hygiene at scrape ingestion, staleness-aware degraded modes around
	// the assigner, a write gate in front of every TrafficSplit write, and
	// a stall watchdog degrading to the baseline split. Off by default so
	// every unguarded figure is byte-identical to the historical output.
	Guard bool
	// Shards > 0 runs each scenario on the sharded deterministic core
	// (internal/sim.ShardedEngine): one logical shard per cluster plus a
	// control engine, synchronised at conservative lookahead barriers
	// derived from the WAN model's minimum one-way delay. The decomposition
	// is fixed by the scenario, and Shards only caps the worker pool, so
	// output is byte-identical for every value ≥ 1 (the -parallel merge
	// discipline, applied inside one run) — and, because the sharded
	// wiring replays the classic rng fork order, byte-identical to the
	// classic path too. Retry and Resilience compose via cross-shard
	// continuations (responses complete on the source-cluster shard, where
	// the retry/hedge state lives). 0 keeps the classic single-loop path —
	// byte-identical to all historical figures. The DSB workload remains
	// classic-only: its cross-service call graph needs service-keyed
	// sharding.
	Shards int

	// inflightExponent overrides Equation 4's exponent for the ablation
	// bench (0 = the paper's default of 2).
	inflightExponent float64
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.WarmUp <= 0 {
		o.WarmUp = 30 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 64
	}
	if o.Penalty <= 0 {
		o.Penalty = 600 * time.Millisecond
	}
	if o.FilterKind == 0 {
		o.FilterKind = ewma.KindEWMA
	}
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = 5 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 2 * o.ScrapeInterval
	}
	if o.Percentile <= 0 || o.Percentile >= 1 {
		o.Percentile = 0.99
	}
	if o.RPSScale <= 0 {
		o.RPSScale = 1
	}
	return o
}

// sourceCluster is where the load generator and L3 run (the paper deploys
// both in cluster-1).
const sourceCluster = "cluster-1"

// apiService is the service name of the trace-driven REST API workload.
const apiService = "api"

// ScenarioStats augments a run's latency recorder with traffic-cost
// accounting for the cost-awareness experiments.
type ScenarioStats struct {
	Recorder *loadgen.Recorder
	// RemoteShare is the fraction of requests served outside the source
	// cluster.
	RemoteShare float64
	// TransferCost is the run's inter-cluster transfer bill in dollars,
	// priced by cost.DefaultRates at 16 KiB per request.
	TransferCost float64
}

// RunScenarioWithStats is RunScenario returning traffic accounting too.
func RunScenarioWithStats(scenarioName string, algo Algorithm, opts Options) (*ScenarioStats, error) {
	opts = opts.withDefaults()
	stats := &ScenarioStats{Recorder: loadgen.NewRecorder(time.Second)}
	model := cost.NewModel(cost.DefaultRates(), 0)
	recs := make([]*loadgen.Recorder, opts.Reps)
	repCounts := make([]map[[2]string]float64, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := DeriveSeed(opts.Seed, rep)
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, counts, _, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		recs[rep], repCounts[rep] = rec, counts
		return nil
	})
	if err != nil {
		return nil, err
	}
	var local, remote float64
	for rep := 0; rep < opts.Reps; rep++ {
		stats.Recorder.Merge(recs[rep])
		stats.TransferCost += model.TrafficCost(repCounts[rep])
		for _, link := range sortedLinks(repCounts[rep]) {
			if link[0] == link[1] {
				local += repCounts[rep][link]
			} else {
				remote += repCounts[rep][link]
			}
		}
	}
	if local+remote > 0 {
		stats.RemoteShare = remote / (local + remote)
	}
	return stats, nil
}

// RunScenario replays a trace scenario under one algorithm and returns the
// merged recorder across repetitions. The setup mirrors §5.1's second
// testbed: an HTTP/2 REST API deployed in all three clusters whose response
// delay and failure rate follow the scenario's per-cluster series, a
// constant-throughput generator in cluster-1 offering the scenario's RPS,
// and (for L3/C3) the controller pipeline — scraper, TSDB, collector,
// assigner — updating one TrafficSplit every 5 s.
func RunScenario(scenarioName string, algo Algorithm, opts Options) (*loadgen.Recorder, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := DeriveSeed(opts.Seed, rep)
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, _, _, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		recs[rep] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRecorders(recs), nil
}

// mergeRecorders folds per-repetition recorders into one, in index order —
// the deterministic reduction behind every parallel fan-out here.
func mergeRecorders(recs []*loadgen.Recorder) *loadgen.Recorder {
	merged := loadgen.NewRecorder(time.Second)
	for _, rec := range recs {
		merged.Merge(rec)
	}
	return merged
}

// sortedLinks returns the count matrix's keys in lexicographic order, so
// floating-point reductions over it are reproducible.
func sortedLinks(counts map[[2]string]float64) [][2]string {
	links := make([][2]string, 0, len(counts))
	for link := range counts {
		links = append(links, link)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	return links
}

// RunScenarioTrace is RunScenario for a caller-built scenario (custom RPS
// shapes, synthetic latency processes). Repetitions rerun the same trace
// with different simulation seeds.
func RunScenarioTrace(sc *trace.Scenario, algo Algorithm, opts Options) (*loadgen.Recorder, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		rec, _, _, err := runOnceCounted(sc, algo, opts, DeriveSeed(opts.Seed, rep))
		if err != nil {
			return err
		}
		recs[rep] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRecorders(recs), nil
}

// chaosArtifacts is what one chaos- or resilience-instrumented run yields
// beyond its recorder: the observed TrafficSplit write times and weight
// snapshots (for reconvergence and failover-gap metrics), the health
// checker's ejection/restore totals, the injector's own accounting, and —
// when Options.Resilience is set — the resilience layer's counters.
type chaosArtifacts struct {
	injector  *chaos.Injector
	updates   []time.Duration
	snaps     []chaos.WeightSnapshot
	ejections float64
	restores  float64
	res       resCounters
	grd       guardCounters
	ovl       ovlCounters
	// tierRecs holds one recorder per criticality tier, filled only when
	// Options.OverloadTierMix is set (the O2 figure's per-tier SLO view).
	tierRecs [overload.NumTiers]*loadgen.Recorder
}

// resCounters aggregates one run's resilience-layer activity from the
// metrics registry, plus the data-plane attempt total the retry ratio is
// measured against.
type resCounters struct {
	requests, retries, hedges, budgetDenied, deadline, duplicates float64
	breakerEjects, breakerRestores, breakerDenied                 float64
	// attempts is the sum of mesh response_total across routes: every
	// attempt the data plane actually carried, retries and hedges
	// included.
	attempts float64
}

// ovlCounters aggregates one run's admission-layer activity from the
// metrics registry plus the client's end-of-run state (all zero when
// Options.Overload is off).
type ovlCounters struct {
	admitted, codelDropped, overflow, lifoFlips, readmits float64
	shed                                                  [overload.NumTiers]float64
	// limit and admitMax are the client's final limiter value and highest
	// admitted tier; maxSojourn the longest queue wait any admitted or
	// dropped request saw.
	limit, admitMax int
	maxSojourn      time.Duration
}

// guardCounters aggregates one run's guard-layer activity from the metrics
// registry (all zero when Options.Guard is off).
type guardCounters struct {
	rejected, resets, holds, decays, frozen      float64
	writeSuppressed, writeClamped, writeRejected float64
	watchdogDegrades                             float64
}

// registryResetter adapts the run's metrics registry to the chaos
// MetricResetter: a counterreset event zeroes the backend's cumulative
// series, exactly what a pod restart does to its /metrics endpoint.
type registryResetter struct{ reg *metrics.Registry }

func (r registryResetter) ResetBackendCounters(backend string) {
	r.reg.ResetCounters(metrics.Labels{"backend": backend})
}

// runOnceCounted runs one scenario replay and additionally returns the
// per-(src, dst-cluster) request counts read from the data-plane metrics,
// plus — when a chaos schedule is set — the run's chaos artifacts. Every
// call is fully self-contained — own engine, RNG, WAN model and metrics
// registry — which is what makes the rep/sweep fan-outs above safe and
// deterministic.
func runOnceCounted(sc *trace.Scenario, algo Algorithm, opts Options, seed uint64) (*loadgen.Recorder, map[[2]string]float64, *chaosArtifacts, error) {
	if opts.Overload != nil && opts.Retry != nil {
		return nil, nil, nil, fmt.Errorf("bench: Overload composes over Resilience; the legacy Retry client is not supported under admission control")
	}
	if opts.Overload == nil && len(opts.OverloadTierMix) > 0 {
		return nil, nil, nil, fmt.Errorf("bench: OverloadTierMix requires Overload")
	}
	if opts.Shards > 0 {
		return runOnceShardedCounted(sc, algo, opts, seed)
	}
	defer func(start time.Time) { recordRun(time.Since(start)) }(time.Now())
	engine := sim.NewEngine()
	rng := sim.NewRand(seed)
	wcfg := wan.DefaultConfig()
	wcfg.Seed = seed
	wanModel := wan.New(wcfg)
	m := mesh.New(engine, rng.Fork(), wanModel, metrics.NewRegistry())

	if _, err := m.AddService(apiService); err != nil {
		return nil, nil, nil, err
	}
	warm := opts.WarmUp
	var backends []smi.Backend
	injectors := make(map[string]chaos.BackendInjector)
	for i := range sc.Clusters {
		ct := &sc.Clusters[i]
		name := apiService + "-" + ct.Cluster
		profile := func(ct *trace.ClusterTrace) backend.Profile {
			return func(now time.Duration, r *sim.Rand) (time.Duration, bool) {
				t := now - warm // trace clamps t<0 to its first value
				return ct.SampleLatency(t, r), ct.SampleSuccess(t, r)
			}
		}(ct)
		conc := opts.Concurrency
		if c, ok := opts.ConcurrencyByCluster[ct.Cluster]; ok {
			conc = c
		}
		b, err := m.AddBackend(apiService, name, ct.Cluster,
			backend.Config{Concurrency: conc, QueueCapacity: opts.QueueCapacity}, profile)
		if err != nil {
			return nil, nil, nil, err
		}
		if replica, ok := b.Server.(*backend.Replica); ok {
			injectors[name] = replica
		}
		if opts.Autoscale != nil {
			replica, ok := b.Server.(*backend.Replica)
			if !ok {
				return nil, nil, nil, fmt.Errorf("bench: backend %s is not a replica pool", name)
			}
			cfg := *opts.Autoscale
			if cfg.Max == 0 {
				cfg.Max = 16 * conc
			}
			if cfg.Min == 0 {
				cfg.Min = conc
			}
			autoscale.New(engine, replica, cfg).Start()
		}
		backends = append(backends, smi.Backend{Service: name, Weight: 500})
	}
	if err := m.Splits().Create(&smi.TrafficSplit{
		Name: apiService, RootService: apiService, Backends: backends,
	}); err != nil {
		return nil, nil, nil, err
	}

	handles, err := installAlgorithm(m, engine, rng, algo, opts, []string{apiService}, nil, globalController())
	if err != nil {
		return nil, nil, nil, err
	}

	var art *chaosArtifacts
	if opts.Chaos != nil || opts.Resilience != nil || opts.Overload != nil {
		art = &chaosArtifacts{}
		if len(opts.OverloadTierMix) > 0 {
			for tier := range art.tierRecs {
				art.tierRecs[tier] = loadgen.NewRecorder(time.Second)
			}
		}
	}
	if opts.Chaos != nil {
		m.Splits().Watch(false, func(e cluster.Event[*smi.TrafficSplit]) {
			if e.Type != cluster.Updated || e.Object.Name != apiService {
				return
			}
			weights := make(map[string]int64, len(e.Object.Backends))
			for _, b := range e.Object.Backends {
				weights[b.Service] = b.Weight
			}
			art.updates = append(art.updates, engine.Now())
			art.snaps = append(art.snaps, chaos.WeightSnapshot{At: engine.Now(), Weights: weights})
		})
		scrapers := make([]chaos.ScrapeGate, len(handles.scrapers))
		for i, s := range handles.scrapers {
			scrapers[i] = s
		}
		inj := chaos.New(engine, *opts.Chaos, chaos.Targets{
			Clusters: sc.ClusterNames(),
			Links:    wanModel,
			Backends: injectors,
			Scrapers: scrapers,
			Leaders:  handles.leaders,
			Metrics:  registryResetter{m.Registry()},
		}, warm)
		if err := inj.Start(); err != nil {
			return nil, nil, nil, err
		}
		art.injector = inj
	}

	var resClient *resilience.Client
	if opts.Resilience != nil {
		// Applied after installAlgorithm so the breaker filter wraps the
		// strategy the algorithm installed (round-robin, failover, split).
		resClient = resilience.NewClient(engine, rng.Fork(), m)
		if err := resClient.Apply(apiService, *opts.Resilience); err != nil {
			return nil, nil, nil, err
		}
	}
	var ovClient *overload.Client
	if opts.Overload != nil {
		// The admission layer forks no rng of its own (its control laws are
		// deterministic functions of observed RTTs), so enabling it leaves
		// the classic fork order — and every overload-off figure —
		// untouched.
		ovClient = overload.NewClient(engine, m)
		if resClient != nil {
			ovClient.SetInner(resClient)
		}
		if err := ovClient.Apply(apiService, *opts.Overload); err != nil {
			return nil, nil, nil, err
		}
	}
	var retryPolicy retry.Policy
	if opts.Retry != nil {
		// Copy per run: sharing one seeded jitter source across parallel
		// repetitions would race and break determinism, so each rep forks
		// its own from the run-local stream.
		retryPolicy = *opts.Retry
		if retryPolicy.Jitter > 0 && retryPolicy.Rand == nil {
			retryPolicy.Rand = rng.Fork()
		}
	}
	var tierSeq int
	issue := func(done func(time.Duration, bool)) error {
		switch {
		case ovClient != nil:
			tier := overload.TierDefault
			if n := len(opts.OverloadTierMix); n > 0 {
				tier = opts.OverloadTierMix[tierSeq%n]
				tierSeq++
			}
			trec := art.tierRecs[tier]
			if trec == nil {
				return ovClient.CallTier(sourceCluster, apiService, tier, func(r mesh.Result) {
					done(r.Latency, r.Success)
				})
			}
			start := engine.Now()
			return ovClient.CallTier(sourceCluster, apiService, tier, func(r mesh.Result) {
				if start >= warm {
					trec.Record(start, r.Latency, r.Success)
				}
				done(r.Latency, r.Success)
			})
		case resClient != nil:
			return resClient.Call(sourceCluster, apiService, func(r resilience.Result) {
				done(r.Latency, r.Success)
			})
		case opts.Retry != nil:
			return retry.Do(engine, m, sourceCluster, apiService, retryPolicy, func(r retry.Result) {
				done(r.Latency, r.Success)
			})
		default:
			return m.Call(sourceCluster, apiService, func(r mesh.Result) {
				done(r.Latency, r.Success)
			})
		}
	}
	gen := loadgen.New(engine, loadgen.Config{
		Rate: func(now time.Duration) float64 {
			return sc.RPS.At(now-warm) * opts.RPSScale
		},
		WarmUp: warm,
	}, issue)
	gen.Start()

	duration := opts.Duration
	if duration <= 0 {
		duration = sc.Duration
	}
	engine.RunUntil(warm + duration)
	gen.Stop()
	engine.RunUntil(warm + duration + 30*time.Second) // drain in-flight

	counts := make(map[[2]string]float64)
	for _, sample := range m.Registry().Snapshot() {
		switch sample.Name {
		case mesh.MetricResponseTotal:
			src := sample.Labels["src"]
			dst := strings.TrimPrefix(sample.Labels["backend"], apiService+"-")
			counts[[2]string{src, dst}] += sample.Value
			if art != nil {
				art.res.attempts += sample.Value
			}
		case health.MetricEjectionsTotal:
			if art != nil {
				art.ejections += sample.Value
			}
		case health.MetricRestoresTotal:
			if art != nil {
				art.restores += sample.Value
			}
		}
		if art == nil {
			continue
		}
		switch sample.Name {
		case resilience.MetricRequestsTotal:
			art.res.requests += sample.Value
		case resilience.MetricRetriesTotal:
			art.res.retries += sample.Value
		case resilience.MetricHedgesTotal:
			art.res.hedges += sample.Value
		case resilience.MetricBudgetExhaustedTotal:
			art.res.budgetDenied += sample.Value
		case resilience.MetricDeadlineExceededTotal:
			art.res.deadline += sample.Value
		case resilience.MetricDuplicatesTotal:
			art.res.duplicates += sample.Value
		case resilience.MetricBreakerEjectionsTotal:
			art.res.breakerEjects += sample.Value
		case resilience.MetricBreakerRestoresTotal:
			art.res.breakerRestores += sample.Value
		case resilience.MetricBreakerDeniedTotal:
			art.res.breakerDenied += sample.Value
		case guard.MetricRejectedTotal:
			art.grd.rejected += sample.Value
		case guard.MetricResetsTotal:
			art.grd.resets += sample.Value
		case guard.MetricHoldsTotal:
			art.grd.holds += sample.Value
		case guard.MetricDecaysTotal:
			art.grd.decays += sample.Value
		case guard.MetricFrozenTotal:
			art.grd.frozen += sample.Value
		case guard.MetricWriteSuppressedTotal:
			art.grd.writeSuppressed += sample.Value
		case guard.MetricWriteClampedTotal:
			art.grd.writeClamped += sample.Value
		case guard.MetricWriteRejectedTotal:
			art.grd.writeRejected += sample.Value
		case guard.MetricWatchdogDegradesTotal:
			art.grd.watchdogDegrades += sample.Value
		case overload.MetricAdmittedTotal:
			art.ovl.admitted += sample.Value
		case overload.MetricCodelDroppedTotal:
			art.ovl.codelDropped += sample.Value
		case overload.MetricQueueOverflowTotal:
			art.ovl.overflow += sample.Value
		case overload.MetricLifoFlipsTotal:
			art.ovl.lifoFlips += sample.Value
		case overload.MetricReadmitsTotal:
			art.ovl.readmits += sample.Value
		case overload.MetricShedTotal:
			for tier := 0; tier < overload.NumTiers; tier++ {
				if sample.Labels["tier"] == overload.TierName(tier) {
					art.ovl.shed[tier] += sample.Value
				}
			}
		}
	}
	if art != nil && ovClient != nil {
		if limit, admitMax, maxSojourn, ok := ovClient.State(apiService); ok {
			art.ovl.limit, art.ovl.admitMax, art.ovl.maxSojourn = limit, admitMax, maxSojourn
		}
	}
	return gen.Recorder(), counts, art, nil
}

// algoHandles exposes the control-plane pieces installAlgorithm built, so
// the chaos injector can reach into them. All fields may be empty — a
// round-robin run has no scraper, controller or checker.
type algoHandles struct {
	scrapers []*core.Scraper
	checker  *health.Checker
	leaders  map[string]chaos.Leader
}

// leaderHandle adapts one controller instance (controller + elector) to the
// chaos Leader interface: Kill crashes it without releasing the lease,
// Revive restarts it (it rejoins as standby until it re-acquires).
type leaderHandle struct {
	ctrl    *core.Controller
	elector *cluster.Elector
}

func (h leaderHandle) Kill()          { h.ctrl.Crash() }
func (h leaderHandle) Revive()        { h.ctrl.Start() }
func (h leaderHandle) IsLeader() bool { return h.elector.IsLeader() }

// installAlgorithm wires the routing strategy (and, for L3/C3, the
// controller pipeline) for the given services. splitName maps (source
// cluster, service) to the governing TrafficSplit (nil = one global split
// named after the service), and controllers lists the L3/C3 instances to
// run: the single-service scenario testbed runs one instance in cluster-1
// managing the global split; the DSB testbed runs one per cluster, each
// reading its own cluster's proxy metrics and managing its own splits, as
// §3 describes for production deployments.
func installAlgorithm(m *mesh.Mesh, engine *sim.Engine, rng *sim.Rand, algo Algorithm, opts Options,
	services []string, splitName func(src, service string) string, controllers []controllerSpec) (*algoHandles, error) {
	handles := &algoHandles{}
	switch algo {
	case AlgoRoundRobin:
		for _, svc := range services {
			if err := m.SetPicker(svc, balancer.NewRoundRobin()); err != nil {
				return nil, err
			}
		}
		return handles, nil
	case AlgoP2C:
		for _, svc := range services {
			if err := m.SetPicker(svc, balancer.NewP2C(rng.Fork(), 5*time.Second, time.Second)); err != nil {
				return nil, err
			}
		}
		return handles, nil
	case AlgoFailover:
		hcfg := health.Config{Registry: m.Registry()}
		if opts.Chaos != nil {
			// Under chaos the checker probes through the mesh so WAN
			// faults (partitions, delay spikes) are visible to it, as they
			// are to Istio/Linkerd cross-cluster health checks.
			hcfg.Probe = func(b *mesh.Backend, done func(success bool)) {
				m.Probe(sourceCluster, b, done)
			}
		}
		checker := health.NewChecker(engine, hcfg)
		handles.checker = checker
		for _, svc := range services {
			s, ok := m.Service(svc)
			if !ok {
				return nil, fmt.Errorf("bench: unknown service %q", svc)
			}
			checker.WatchAll(s.Backends())
			if err := m.SetPicker(svc, &health.FailoverPicker{
				Checker: checker,
				Inner:   balancer.NewRoundRobin(),
			}); err != nil {
				return nil, err
			}
		}
		return handles, nil
	case AlgoL3, AlgoC3:
		for _, svc := range services {
			if err := m.SetPicker(svc, balancer.NewWeightedSplit(m.Splits(), rng.Fork(), splitName)); err != nil {
				return nil, err
			}
		}
		db := timeseries.NewDB(time.Minute)
		var hyg *guard.Hygiene
		var gate *guard.WriteGate
		if opts.Guard {
			hyg = guard.NewHygiene(guard.Config{}, m.Registry())
			db.SetGate(hyg)
			gate = guard.NewWriteGate(guard.Config{}, m.Registry())
		}
		scraper := core.NewScraper(engine, db, m.Registry(), opts.ScrapeInterval)
		scraper.Start()
		handles.scrapers = append(handles.scrapers, scraper)
		newAssigner := func() core.Assigner {
			var assigner core.Assigner
			if algo == AlgoC3 {
				assigner = c3.New(c3.Config{})
			} else {
				assigner = core.NewL3Assigner(core.WeightingConfig{
					Penalty:          opts.Penalty,
					FilterKind:       opts.FilterKind,
					InflightExponent: opts.inflightExponent,
					DynamicPenalty:   opts.DynamicPenalty,
				}, core.RateControlConfig{}, !opts.DisableRateControl)
				if opts.CostLambda > 0 {
					assigner = cost.NewAssigner(assigner, cost.NewModel(cost.DefaultRates(), 0),
						sourceCluster, func(b string) string {
							return strings.TrimPrefix(b, apiService+"-")
						}, opts.CostLambda)
				}
			}
			if opts.Guard {
				assigner = guard.NewAssigner(assigner, guard.Config{}, m.Registry())
			}
			return assigner
		}
		handles.leaders = make(map[string]chaos.Leader)
		for si, spec := range controllers {
			newController := func(elector *cluster.Elector) *core.Controller {
				collector := &core.Collector{
					DB: db, Window: opts.Window, Percentile: opts.Percentile,
					Match: spec.match,
				}
				if hyg != nil {
					collector.Resets = hyg
				}
				cfg := core.ControllerConfig{
					Interval:    opts.ScrapeInterval,
					NewAssigner: newAssigner,
					SplitFilter: spec.filter,
					Elector:     elector,
				}
				if gate != nil {
					cfg.WriteGuard = gate
				}
				return core.NewController(engine, m.Splits(), collector, cfg)
			}
			if !opts.LeaderElection {
				newController(nil).Start()
				continue
			}
			// Leader-elected pair: both instances run the full pipeline,
			// one lease gates the split writes. Instance 0 starts first and
			// campaigns first, so it is deterministically the initial
			// leader.
			lock := cluster.NewLeaseLock()
			for i := 0; i < 2; i++ {
				id := fmt.Sprintf("l3-%d", i)
				if len(controllers) > 1 {
					id = fmt.Sprintf("l3-%d-%d", si, i)
				}
				elector := cluster.NewElector(engine, lock, cluster.ElectorConfig{ID: id})
				ctrl := newController(elector)
				ctrl.Start()
				handles.leaders[id] = leaderHandle{ctrl: ctrl, elector: elector}
			}
		}
		if gate != nil {
			guard.NewWatchdog(engine, m.Splits(), guard.Config{}, m.Registry(), nil, gate).Start()
		}
		return handles, nil
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %v", algo)
	}
}

// controllerSpec describes one L3/C3 instance: which metric series it may
// read and which TrafficSplits it manages.
type controllerSpec struct {
	match  metrics.Labels
	filter func(name string) bool
}

// globalController is the scenario testbed's single instance managing
// every split from all metrics.
func globalController() []controllerSpec {
	return []controllerSpec{{}}
}

// perClusterControllers builds one instance per cluster, each scoped to its
// cluster's source-side metrics and its cluster's splits.
func perClusterControllers(clusters []string) []controllerSpec {
	specs := make([]controllerSpec, 0, len(clusters))
	for _, c := range clusters {
		c := c
		specs = append(specs, controllerSpec{
			match:  metrics.Labels{"src": c},
			filter: func(name string) bool { return strings.HasPrefix(name, c+"/") },
		})
	}
	return specs
}

// RunDSB runs the DeathStarBench hotel-reservation workload (Figure 9's
// experiment) under one algorithm: the full application in every cluster,
// load entering at the cluster-local frontend at a constant rate.
func RunDSB(algo Algorithm, rps float64, duration time.Duration, opts Options) (*loadgen.Recorder, error) {
	opts = opts.withDefaults()
	if opts.Shards > 0 {
		return nil, fmt.Errorf("bench: the DSB workload (cross-service call graph) requires the classic single-timeline engine; run without sharding (-shards 0)")
	}
	recs := make([]*loadgen.Recorder, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := DeriveSeed(opts.Seed, rep)
		rec, err := runDSBOnce(algo, rps, duration, opts, seed)
		if err != nil {
			return err
		}
		recs[rep] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRecorders(recs), nil
}

func runDSBOnce(algo Algorithm, rps float64, duration time.Duration, opts Options, seed uint64) (*loadgen.Recorder, error) {
	defer func(start time.Time) { recordRun(time.Since(start)) }(time.Now())
	engine := sim.NewEngine()
	rng := sim.NewRand(seed)
	wcfg := wan.DefaultConfig()
	wcfg.Seed = seed
	m := mesh.New(engine, rng.Fork(), wan.New(wcfg), metrics.NewRegistry())

	clusters := []string{"cluster-1", "cluster-2", "cluster-3"}
	app, err := dsb.InstallHotelReservation(m, clusters, rng.Fork(), dsb.WithPerfVariation())
	if err != nil {
		return nil, err
	}
	if err := app.CreateSplits(); err != nil {
		return nil, err
	}
	if _, err := installAlgorithm(m, engine, rng, algo, opts, app.Services(),
		dsb.SplitName, perClusterControllers(clusters)); err != nil {
		return nil, err
	}

	gen := loadgen.New(engine, loadgen.Config{
		Rate:   loadgen.ConstantRate(rps),
		WarmUp: opts.WarmUp,
	}, func(done func(time.Duration, bool)) error {
		return m.Call(sourceCluster, dsb.EntryService, func(r mesh.Result) {
			done(r.Latency, r.Success)
		})
	})
	gen.Start()
	engine.RunUntil(opts.WarmUp + duration)
	gen.Stop()
	engine.RunUntil(opts.WarmUp + duration + 30*time.Second)
	return gen.Recorder(), nil
}
