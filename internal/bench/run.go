package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"l3/internal/autoscale"
	"l3/internal/backend"
	"l3/internal/balancer"
	"l3/internal/c3"
	"l3/internal/core"
	"l3/internal/cost"
	"l3/internal/dsb"
	"l3/internal/ewma"
	"l3/internal/health"
	"l3/internal/loadgen"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/retry"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/timeseries"
	"l3/internal/trace"
	"l3/internal/wan"
)

// Algorithm selects the load-balancing strategy under test.
type Algorithm int

const (
	// AlgoRoundRobin is Linkerd's default and the paper's baseline.
	AlgoRoundRobin Algorithm = iota + 1
	// AlgoL3 is the paper's system (Algorithm 1 + Algorithm 2 driving a
	// TrafficSplit).
	AlgoL3
	// AlgoC3 is the adapted C3 comparison (internal/c3).
	AlgoC3
	// AlgoP2C is Linkerd's per-request power-of-two-choices PeakEWMA
	// balancer, kept as an extra ablation baseline.
	AlgoP2C
	// AlgoFailover is round-robin plus health-check-driven ejection — the
	// multi-cluster failover mechanism of Istio/Linkerd/Traffic Director
	// that the paper's related work contrasts L3 with.
	AlgoFailover
)

// String names the algorithm as the paper labels it.
func (a Algorithm) String() string {
	switch a {
	case AlgoRoundRobin:
		return "Round-robin"
	case AlgoL3:
		return "L3"
	case AlgoC3:
		return "C3"
	case AlgoP2C:
		return "P2C"
	case AlgoFailover:
		return "RR+failover"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options parameterises one scenario run. Zero values take the paper's
// setup.
type Options struct {
	// Seed drives all randomness; reps use Seed, Seed+1, ...
	Seed uint64
	// Reps is the number of repetitions merged per configuration
	// (default 1; the paper used 2-3).
	Reps int
	// Parallel caps the worker goroutines fanning out independent runs —
	// repetitions and sweep configurations (default runtime.GOMAXPROCS(0);
	// 1 forces serial execution). Every run derives its own seed and owns
	// its engine, and results merge in index order, so the output is
	// bit-for-bit identical for any value.
	Parallel int
	// WarmUp precedes measurement (default 30 s); the scenario's t=0
	// state is held during warm-up.
	WarmUp time.Duration
	// Duration overrides the measured portion (default: the scenario's
	// full 10 minutes).
	Duration time.Duration
	// Concurrency per backend deployment (default 64 ≈ the paper's three
	// replicas per cluster).
	Concurrency int
	// ConcurrencyByCluster overrides Concurrency for specific clusters
	// (heterogeneous capacities, e.g. a fast-but-small deployment next to
	// slow-but-wide ones).
	ConcurrencyByCluster map[string]int
	// Autoscale attaches a horizontal autoscaler to every backend when
	// non-nil — the mechanism §3.2's rate controller is designed to buy
	// time for.
	Autoscale *autoscale.Config
	// Retry makes the benchmark client retry failed requests (the paper's
	// benchmarks skipped retries "for simplicity", §5.2.1); recorded
	// latency then spans all attempts.
	Retry *retry.Policy
	// DynamicPenalty switches L3 to the per-backend measured failure
	// round-trip instead of the static P (the paper's future work).
	DynamicPenalty bool
	// CostLambda enables cost-aware L3 (§7 future work): the
	// dollars→latency exchange rate in seconds per dollar (0 = off).
	CostLambda float64
	// Penalty is L3's P (default 600 ms).
	Penalty time.Duration
	// FilterKind selects L3's latency filter (default EWMA).
	FilterKind ewma.Kind
	// DisableRateControl turns Algorithm 2 off (ablation).
	DisableRateControl bool
	// ScrapeInterval is the metrics pipeline's scrape period
	// (default 5 s).
	ScrapeInterval time.Duration
	// Window is the collector's query window (default 2×scrape).
	Window time.Duration
	// Percentile is L3's latency percentile (default 0.99).
	Percentile float64
	// RPSScale multiplies the scenario's offered load (default 1).
	RPSScale float64

	// inflightExponent overrides Equation 4's exponent for the ablation
	// bench (0 = the paper's default of 2).
	inflightExponent float64
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.WarmUp <= 0 {
		o.WarmUp = 30 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 64
	}
	if o.Penalty <= 0 {
		o.Penalty = 600 * time.Millisecond
	}
	if o.FilterKind == 0 {
		o.FilterKind = ewma.KindEWMA
	}
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = 5 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 2 * o.ScrapeInterval
	}
	if o.Percentile <= 0 || o.Percentile >= 1 {
		o.Percentile = 0.99
	}
	if o.RPSScale <= 0 {
		o.RPSScale = 1
	}
	return o
}

// sourceCluster is where the load generator and L3 run (the paper deploys
// both in cluster-1).
const sourceCluster = "cluster-1"

// apiService is the service name of the trace-driven REST API workload.
const apiService = "api"

// ScenarioStats augments a run's latency recorder with traffic-cost
// accounting for the cost-awareness experiments.
type ScenarioStats struct {
	Recorder *loadgen.Recorder
	// RemoteShare is the fraction of requests served outside the source
	// cluster.
	RemoteShare float64
	// TransferCost is the run's inter-cluster transfer bill in dollars,
	// priced by cost.DefaultRates at 16 KiB per request.
	TransferCost float64
}

// RunScenarioWithStats is RunScenario returning traffic accounting too.
func RunScenarioWithStats(scenarioName string, algo Algorithm, opts Options) (*ScenarioStats, error) {
	opts = opts.withDefaults()
	stats := &ScenarioStats{Recorder: loadgen.NewRecorder(time.Second)}
	model := cost.NewModel(cost.DefaultRates(), 0)
	recs := make([]*loadgen.Recorder, opts.Reps)
	repCounts := make([]map[[2]string]float64, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := opts.Seed + uint64(rep)*1000003
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, counts, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		recs[rep], repCounts[rep] = rec, counts
		return nil
	})
	if err != nil {
		return nil, err
	}
	var local, remote float64
	for rep := 0; rep < opts.Reps; rep++ {
		stats.Recorder.Merge(recs[rep])
		stats.TransferCost += model.TrafficCost(repCounts[rep])
		for _, link := range sortedLinks(repCounts[rep]) {
			if link[0] == link[1] {
				local += repCounts[rep][link]
			} else {
				remote += repCounts[rep][link]
			}
		}
	}
	if local+remote > 0 {
		stats.RemoteShare = remote / (local + remote)
	}
	return stats, nil
}

// RunScenario replays a trace scenario under one algorithm and returns the
// merged recorder across repetitions. The setup mirrors §5.1's second
// testbed: an HTTP/2 REST API deployed in all three clusters whose response
// delay and failure rate follow the scenario's per-cluster series, a
// constant-throughput generator in cluster-1 offering the scenario's RPS,
// and (for L3/C3) the controller pipeline — scraper, TSDB, collector,
// assigner — updating one TrafficSplit every 5 s.
func RunScenario(scenarioName string, algo Algorithm, opts Options) (*loadgen.Recorder, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := opts.Seed + uint64(rep)*1000003
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, _, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		recs[rep] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRecorders(recs), nil
}

// mergeRecorders folds per-repetition recorders into one, in index order —
// the deterministic reduction behind every parallel fan-out here.
func mergeRecorders(recs []*loadgen.Recorder) *loadgen.Recorder {
	merged := loadgen.NewRecorder(time.Second)
	for _, rec := range recs {
		merged.Merge(rec)
	}
	return merged
}

// sortedLinks returns the count matrix's keys in lexicographic order, so
// floating-point reductions over it are reproducible.
func sortedLinks(counts map[[2]string]float64) [][2]string {
	links := make([][2]string, 0, len(counts))
	for link := range counts {
		links = append(links, link)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	return links
}

// RunScenarioTrace is RunScenario for a caller-built scenario (custom RPS
// shapes, synthetic latency processes). Repetitions rerun the same trace
// with different simulation seeds.
func RunScenarioTrace(sc *trace.Scenario, algo Algorithm, opts Options) (*loadgen.Recorder, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		rec, _, err := runOnceCounted(sc, algo, opts, opts.Seed+uint64(rep)*1000003)
		if err != nil {
			return err
		}
		recs[rep] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRecorders(recs), nil
}

// runOnceCounted runs one scenario replay and additionally returns the
// per-(src, dst-cluster) request counts read from the data-plane metrics.
// Every call is fully self-contained — own engine, RNG, WAN model and
// metrics registry — which is what makes the rep/sweep fan-outs above safe
// and deterministic.
func runOnceCounted(sc *trace.Scenario, algo Algorithm, opts Options, seed uint64) (*loadgen.Recorder, map[[2]string]float64, error) {
	defer func(start time.Time) { recordRun(time.Since(start)) }(time.Now())
	engine := sim.NewEngine()
	rng := sim.NewRand(seed)
	wcfg := wan.DefaultConfig()
	wcfg.Seed = seed
	m := mesh.New(engine, rng.Fork(), wan.New(wcfg), metrics.NewRegistry())

	if _, err := m.AddService(apiService); err != nil {
		return nil, nil, err
	}
	warm := opts.WarmUp
	var backends []smi.Backend
	for i := range sc.Clusters {
		ct := &sc.Clusters[i]
		name := apiService + "-" + ct.Cluster
		profile := func(ct *trace.ClusterTrace) backend.Profile {
			return func(now time.Duration, r *sim.Rand) (time.Duration, bool) {
				t := now - warm // trace clamps t<0 to its first value
				return ct.SampleLatency(t, r), ct.SampleSuccess(t, r)
			}
		}(ct)
		conc := opts.Concurrency
		if c, ok := opts.ConcurrencyByCluster[ct.Cluster]; ok {
			conc = c
		}
		b, err := m.AddBackend(apiService, name, ct.Cluster,
			backend.Config{Concurrency: conc}, profile)
		if err != nil {
			return nil, nil, err
		}
		if opts.Autoscale != nil {
			replica, ok := b.Server.(*backend.Replica)
			if !ok {
				return nil, nil, fmt.Errorf("bench: backend %s is not a replica pool", name)
			}
			cfg := *opts.Autoscale
			if cfg.Max == 0 {
				cfg.Max = 16 * conc
			}
			if cfg.Min == 0 {
				cfg.Min = conc
			}
			autoscale.New(engine, replica, cfg).Start()
		}
		backends = append(backends, smi.Backend{Service: name, Weight: 500})
	}
	if err := m.Splits().Create(&smi.TrafficSplit{
		Name: apiService, RootService: apiService, Backends: backends,
	}); err != nil {
		return nil, nil, err
	}

	if err := installAlgorithm(m, engine, rng, algo, opts, []string{apiService}, nil, globalController()); err != nil {
		return nil, nil, err
	}

	issue := func(done func(time.Duration, bool)) error {
		if opts.Retry != nil {
			return retry.Do(engine, m, sourceCluster, apiService, *opts.Retry, func(r retry.Result) {
				done(r.Latency, r.Success)
			})
		}
		return m.Call(sourceCluster, apiService, func(r mesh.Result) {
			done(r.Latency, r.Success)
		})
	}
	gen := loadgen.New(engine, loadgen.Config{
		Rate: func(now time.Duration) float64 {
			return sc.RPS.At(now-warm) * opts.RPSScale
		},
		WarmUp: warm,
	}, issue)
	gen.Start()

	duration := opts.Duration
	if duration <= 0 {
		duration = sc.Duration
	}
	engine.RunUntil(warm + duration)
	gen.Stop()
	engine.RunUntil(warm + duration + 30*time.Second) // drain in-flight

	counts := make(map[[2]string]float64)
	for _, sample := range m.Registry().Snapshot() {
		if sample.Name != mesh.MetricResponseTotal {
			continue
		}
		src := sample.Labels["src"]
		dst := strings.TrimPrefix(sample.Labels["backend"], apiService+"-")
		counts[[2]string{src, dst}] += sample.Value
	}
	return gen.Recorder(), counts, nil
}

// installAlgorithm wires the routing strategy (and, for L3/C3, the
// controller pipeline) for the given services. splitName maps (source
// cluster, service) to the governing TrafficSplit (nil = one global split
// named after the service), and controllers lists the L3/C3 instances to
// run: the single-service scenario testbed runs one instance in cluster-1
// managing the global split; the DSB testbed runs one per cluster, each
// reading its own cluster's proxy metrics and managing its own splits, as
// §3 describes for production deployments.
func installAlgorithm(m *mesh.Mesh, engine *sim.Engine, rng *sim.Rand, algo Algorithm, opts Options,
	services []string, splitName func(src, service string) string, controllers []controllerSpec) error {
	switch algo {
	case AlgoRoundRobin:
		for _, svc := range services {
			if err := m.SetPicker(svc, balancer.NewRoundRobin()); err != nil {
				return err
			}
		}
		return nil
	case AlgoP2C:
		for _, svc := range services {
			if err := m.SetPicker(svc, balancer.NewP2C(rng.Fork(), 5*time.Second, time.Second)); err != nil {
				return err
			}
		}
		return nil
	case AlgoFailover:
		checker := health.NewChecker(engine, health.Config{})
		for _, svc := range services {
			s, ok := m.Service(svc)
			if !ok {
				return fmt.Errorf("bench: unknown service %q", svc)
			}
			checker.WatchAll(s.Backends())
			if err := m.SetPicker(svc, &health.FailoverPicker{
				Checker: checker,
				Inner:   balancer.NewRoundRobin(),
			}); err != nil {
				return err
			}
		}
		return nil
	case AlgoL3, AlgoC3:
		for _, svc := range services {
			if err := m.SetPicker(svc, balancer.NewWeightedSplit(m.Splits(), rng.Fork(), splitName)); err != nil {
				return err
			}
		}
		db := timeseries.NewDB(time.Minute)
		core.NewScraper(engine, db, m.Registry(), opts.ScrapeInterval).Start()
		newAssigner := func() core.Assigner {
			if algo == AlgoC3 {
				return c3.New(c3.Config{})
			}
			var assigner core.Assigner = core.NewL3Assigner(core.WeightingConfig{
				Penalty:          opts.Penalty,
				FilterKind:       opts.FilterKind,
				InflightExponent: opts.inflightExponent,
				DynamicPenalty:   opts.DynamicPenalty,
			}, core.RateControlConfig{}, !opts.DisableRateControl)
			if opts.CostLambda > 0 {
				assigner = cost.NewAssigner(assigner, cost.NewModel(cost.DefaultRates(), 0),
					sourceCluster, func(b string) string {
						return strings.TrimPrefix(b, apiService+"-")
					}, opts.CostLambda)
			}
			return assigner
		}
		for _, spec := range controllers {
			collector := &core.Collector{
				DB: db, Window: opts.Window, Percentile: opts.Percentile,
				Match: spec.match,
			}
			ctrl := core.NewController(engine, m.Splits(), collector, core.ControllerConfig{
				Interval:    opts.ScrapeInterval,
				NewAssigner: newAssigner,
				SplitFilter: spec.filter,
			})
			ctrl.Start()
		}
		return nil
	default:
		return fmt.Errorf("bench: unknown algorithm %v", algo)
	}
}

// controllerSpec describes one L3/C3 instance: which metric series it may
// read and which TrafficSplits it manages.
type controllerSpec struct {
	match  metrics.Labels
	filter func(name string) bool
}

// globalController is the scenario testbed's single instance managing
// every split from all metrics.
func globalController() []controllerSpec {
	return []controllerSpec{{}}
}

// perClusterControllers builds one instance per cluster, each scoped to its
// cluster's source-side metrics and its cluster's splits.
func perClusterControllers(clusters []string) []controllerSpec {
	specs := make([]controllerSpec, 0, len(clusters))
	for _, c := range clusters {
		c := c
		specs = append(specs, controllerSpec{
			match:  metrics.Labels{"src": c},
			filter: func(name string) bool { return strings.HasPrefix(name, c+"/") },
		})
	}
	return specs
}

// RunDSB runs the DeathStarBench hotel-reservation workload (Figure 9's
// experiment) under one algorithm: the full application in every cluster,
// load entering at the cluster-local frontend at a constant rate.
func RunDSB(algo Algorithm, rps float64, duration time.Duration, opts Options) (*loadgen.Recorder, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := opts.Seed + uint64(rep)*1000003
		rec, err := runDSBOnce(algo, rps, duration, opts, seed)
		if err != nil {
			return err
		}
		recs[rep] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRecorders(recs), nil
}

func runDSBOnce(algo Algorithm, rps float64, duration time.Duration, opts Options, seed uint64) (*loadgen.Recorder, error) {
	defer func(start time.Time) { recordRun(time.Since(start)) }(time.Now())
	engine := sim.NewEngine()
	rng := sim.NewRand(seed)
	wcfg := wan.DefaultConfig()
	wcfg.Seed = seed
	m := mesh.New(engine, rng.Fork(), wan.New(wcfg), metrics.NewRegistry())

	clusters := []string{"cluster-1", "cluster-2", "cluster-3"}
	app, err := dsb.InstallHotelReservation(m, clusters, rng.Fork(), dsb.WithPerfVariation())
	if err != nil {
		return nil, err
	}
	if err := app.CreateSplits(); err != nil {
		return nil, err
	}
	if err := installAlgorithm(m, engine, rng, algo, opts, app.Services(),
		dsb.SplitName, perClusterControllers(clusters)); err != nil {
		return nil, err
	}

	gen := loadgen.New(engine, loadgen.Config{
		Rate:   loadgen.ConstantRate(rps),
		WarmUp: opts.WarmUp,
	}, func(done func(time.Duration, bool)) error {
		return m.Call(sourceCluster, dsb.EntryService, func(r mesh.Result) {
			done(r.Latency, r.Success)
		})
	})
	gen.Start()
	engine.RunUntil(opts.WarmUp + duration)
	gen.Stop()
	engine.RunUntil(opts.WarmUp + duration + 30*time.Second)
	return gen.Recorder(), nil
}
