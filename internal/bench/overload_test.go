package bench

import (
	"testing"
	"time"

	"l3/internal/overload"
	"l3/internal/resilience"
	"l3/internal/retry"
)

// quickOverloadOptions is the O-figures' quick preset — the same settings
// the l3bench golden entries run, so passing here means the golden output
// embodies the claims.
func quickOverloadOptions() Options {
	return Options{Seed: 42, Reps: 1, WarmUp: 30 * time.Second, Duration: 2 * time.Minute}
}

// findRow fetches a row's value from a figure by exact label.
func findRow(t *testing.T, r *Result, label string) float64 {
	t.Helper()
	for _, row := range r.Rows {
		if row.Label == label {
			return row.Value
		}
	}
	t.Fatalf("figure %s has no row %q", r.ID, label)
	return 0
}

// TestFigO1Thresholds pins the tentpole claim: under the same retry-storm
// fault, the uncontrolled client loses most of its baseline goodput for
// good, while the admission-controlled client sheds through the fault and
// retains it — with the admission queue's delay bounded.
func TestFigO1Thresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated scenario; skipped in -short")
	}
	r, err := FigO1(quickOverloadOptions())
	if err != nil {
		t.Fatalf("FigO1: %v", err)
	}
	uncontrolled := findRow(t, r, "uncontrolled goodput retention")
	controlled := findRow(t, r, "limiter+codel goodput retention")
	if uncontrolled > 50 {
		t.Errorf("uncontrolled arm retained %.1f%% of baseline goodput post-heal; expected a metastable collapse (≤50%%)", uncontrolled)
	}
	if controlled < 90 {
		t.Errorf("limiter+codel arm retained %.1f%% of baseline goodput post-heal; want ≥90%%", controlled)
	}
	ctrlP99 := findRow(t, r, "limiter+codel post-heal P99")
	unctrlP99 := findRow(t, r, "uncontrolled post-heal P99")
	if ctrlP99 >= unctrlP99 {
		t.Errorf("controlled post-heal P99 %.0fms not below uncontrolled %.0fms", ctrlP99, unctrlP99)
	}
	if ctrlP99 > 1000 {
		t.Errorf("controlled post-heal P99 %.0fms; want bounded under 1s once the limiter regrows", ctrlP99)
	}
	// The controlled arm's rejections happen at the client: the admission
	// queue must have both shed and kept its delay bounded (well under the
	// 2s deadline the uncontrolled arm rides to).
	if shed := findRow(t, r, "limiter+codel shed"); shed <= 0 {
		t.Errorf("limiter+codel arm shed nothing under a 10x saturation fault")
	}
	if maxDelay := findRow(t, r, "limiter+codel max queue delay"); maxDelay > 2000 {
		t.Errorf("admission queue delay peaked at %.0fms; want bounded below the 2s deadline", maxDelay)
	}
}

// TestFigO2Thresholds pins the criticality claim: the flash crowd is
// absorbed by the sheddable tier in strict tier order, and the critical
// tier's SLO stays intact while the uncontrolled arm collapses across all
// tiers.
func TestFigO2Thresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated scenario; skipped in -short")
	}
	r, err := FigO2(quickOverloadOptions())
	if err != nil {
		t.Fatalf("FigO2: %v", err)
	}
	shedCrit := findRow(t, r, "tiered shedding critical shed")
	shedDef := findRow(t, r, "tiered shedding default shed")
	shedShed := findRow(t, r, "tiered shedding sheddable shed")
	if !(shedShed > shedDef && shedDef > shedCrit) {
		t.Errorf("shed counts not strictly tier-ordered: sheddable %.0f, default %.0f, critical %.0f", shedShed, shedDef, shedCrit)
	}
	critViol := findRow(t, r, "tiered shedding critical SLO violation")
	if critViol > 2 {
		t.Errorf("critical tier violated its SLO for %.1fs under tiered shedding; want ≈0", critViol)
	}
	// Without control the flash must actually hurt the critical tier —
	// otherwise the figure proves nothing.
	unctrlCrit := findRow(t, r, "no control critical SLO violation")
	if unctrlCrit < 10 {
		t.Errorf("no-control critical SLO violation only %.1fs; the flash crowd is not overloading the testbed", unctrlCrit)
	}
	if readmits := findRow(t, r, "tiered shedding tier re-admits"); readmits <= 0 {
		t.Errorf("gate never re-admitted a tier; hysteresis path untested by the figure")
	}
}

// TestOverloadOptionValidation pins the wiring contracts: the legacy Retry
// client cannot sit under admission control, and a tier mix without a
// policy is a configuration error.
func TestOverloadOptionValidation(t *testing.T) {
	sc, _, _ := flashCrowdScenario(time.Minute)
	opts := Options{Reps: 1, WarmUp: time.Second, Duration: time.Second}
	opts.Overload = &overload.Policy{Limiter: overload.LimiterConfig{Initial: 4}}
	opts.Retry = &retry.Policy{MaxAttempts: 2}
	if _, _, _, err := runOnceCounted(sc, AlgoRoundRobin, opts.withDefaults(), 1); err == nil {
		t.Fatalf("Overload+Retry accepted; want an error")
	}
	opts = Options{Reps: 1, WarmUp: time.Second, Duration: time.Second, OverloadTierMix: []int{0}}
	if _, _, _, err := runOnceCounted(sc, AlgoRoundRobin, opts.withDefaults(), 1); err == nil {
		t.Fatalf("OverloadTierMix without Overload accepted; want an error")
	}
}

// TestOverloadShardedMatchesClassic pins the mode-independence contract
// extended to the admission layer: an overload-controlled run produces
// byte-identical recorders on the classic and sharded cores.
func TestOverloadShardedMatchesClassic(t *testing.T) {
	sc, _, _ := flashCrowdScenario(30 * time.Second)
	base := Options{
		Seed: 7, Reps: 1, WarmUp: 5 * time.Second, Duration: 30 * time.Second,
		Concurrency: 4, QueueCapacity: 32,
		Overload:        figO2OverloadPolicy(),
		OverloadTierMix: []int{overload.TierCritical, overload.TierDefault, overload.TierSheddable},
		Resilience:      &resilience.Policy{Deadline: 500 * time.Millisecond},
	}
	classic, err := RunOverloadScenarioTrace(sc, AlgoRoundRobin, base)
	if err != nil {
		t.Fatalf("classic: %v", err)
	}
	sharded := base
	sharded.Shards = 2
	shardedStats, err := RunOverloadScenarioTrace(sc, AlgoRoundRobin, sharded)
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if got, want := shardedStats.Recorder.String(), classic.Recorder.String(); got != want {
		t.Errorf("sharded recorder diverged from classic:\nclassic: %s\nsharded: %s", want, got)
	}
	if shardedStats.Admitted != classic.Admitted || shardedStats.ShedTotal() != classic.ShedTotal() {
		t.Errorf("admission counters diverged: classic admitted %.0f shed %.0f, sharded admitted %.0f shed %.0f",
			classic.Admitted, classic.ShedTotal(), shardedStats.Admitted, shardedStats.ShedTotal())
	}
	for tier := range classic.TierRecorders {
		if got, want := shardedStats.TierRecorders[tier].String(), classic.TierRecorders[tier].String(); got != want {
			t.Errorf("tier %d recorder diverged:\nclassic: %s\nsharded: %s", tier, want, got)
		}
	}
}
