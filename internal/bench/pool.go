package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"l3/internal/metrics"
)

// The harness instruments itself through internal/metrics, the same
// substrate the simulated data plane uses: every completed simulation run
// increments a counter and adds its wall-clock cost, so any caller can
// compute the parallel speedup as busy-seconds / elapsed-seconds (the
// busy-seconds sum is what a serial execution of the same runs would have
// cost). The estimate assumes workers get real cores: when -parallel
// exceeds the CPUs available, runs time-slice, each run's wall-clock
// inflates by the oversubscription factor, and busy-seconds overestimates
// the serial cost accordingly.
const (
	// MetricRunsCompleted counts finished simulation runs (one scenario or
	// DSB replay each).
	MetricRunsCompleted = "bench_runs_completed_total"
	// MetricRunBusySeconds accumulates the wall-clock seconds spent inside
	// simulation runs — the serial-execution estimate.
	MetricRunBusySeconds = "bench_run_busy_seconds_total"
)

var (
	selfRegistry = metrics.NewRegistry()
	selfRuns     = selfRegistry.Counter(MetricRunsCompleted, nil)
	selfBusy     = selfRegistry.Counter(MetricRunBusySeconds, nil)
)

// SelfMetrics returns the harness's own instrumentation registry (runs
// completed, busy seconds). Counters are cumulative per process; callers
// wanting per-invocation numbers snapshot with SelfStats before and after.
func SelfMetrics() *metrics.Registry { return selfRegistry }

// SelfStats reads the harness's self-metrics: the number of completed
// simulation runs and the total wall-clock time spent inside them. Dividing
// busy by the observed elapsed wall-clock gives the effective speedup over
// serial execution.
func SelfStats() (runs float64, busy time.Duration) {
	return selfRuns.Value(), time.Duration(selfBusy.Value() * float64(time.Second))
}

// recordRun accounts one finished simulation run.
func recordRun(elapsed time.Duration) {
	selfRuns.Inc()
	selfBusy.Add(elapsed.Seconds())
}

// ForEach runs fn(0), …, fn(n-1) across at most parallel goroutines and
// returns the error of the lowest-indexed failed call (nil if all succeed),
// so error selection never depends on goroutine scheduling. parallel <= 0
// defaults to runtime.GOMAXPROCS(0); parallel == 1 degenerates to a plain
// serial loop.
//
// Each index is executed exactly once and owned exclusively by one call, so
// callers collect results by writing to the i-th slot of a pre-sized slice
// and then reduce the slice in index order. Because every run derives its
// own seed and owns its engine, that reduction is bit-for-bit identical to
// what the serial loop produces, for any parallelism.
func ForEach(parallel, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
