package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestResultRenderRowsAndNotes(t *testing.T) {
	r := &Result{ID: "figX", Title: "test figure"}
	r.AddRow("Round-robin", 105.5, "ms", 93.0)
	r.AddRow("L3", 70.1, "ms", NoPaper)
	r.Note("a caveat about %s", "something")
	out := r.Render()
	for _, want := range []string{"figX", "test figure", "Round-robin", "105.50", "paper: 93.0", "L3", "note: a caveat about something"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "paper:") != 1 {
		t.Fatalf("NaN paper value rendered:\n%s", out)
	}
}

func TestResultRenderSeriesSummary(t *testing.T) {
	r := &Result{ID: "fig1", Title: "series", SeriesStep: time.Second}
	r.AddSeries("b/p99", []float64{1, 2, 3})
	r.AddSeries("a/p99", []float64{5, 5})
	out := r.Render()
	ai := strings.Index(out, "a/p99")
	bi := strings.Index(out, "b/p99")
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("series not rendered sorted:\n%s", out)
	}
	if !strings.Contains(out, "mean=2") {
		t.Fatalf("series stats missing:\n%s", out)
	}
}

func TestResultCSV(t *testing.T) {
	r := &Result{ID: "fig2", SeriesStep: 2 * time.Second}
	r.AddSeries("rps", []float64{10, 20, 30})
	r.AddSeries("short", []float64{1})
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "t_seconds,rps,short" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4", len(lines))
	}
	if lines[1] != "0,10,1" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20," {
		t.Fatalf("row 2 = %q (short series should leave a gap)", lines[2])
	}
	if (&Result{}).CSV() != "" {
		t.Fatal("CSV of series-less result should be empty")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := []float64{3, 1, 2}
	if minOf(s) != 1 || maxOf(s) != 3 || meanOf(s) != 2 {
		t.Fatalf("helpers: %v %v %v", minOf(s), maxOf(s), meanOf(s))
	}
	if minOf(nil) != 0 || maxOf(nil) != 0 || meanOf(nil) != 0 {
		t.Fatal("helpers on empty slices should be 0")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgoRoundRobin: "Round-robin",
		AlgoL3:         "L3",
		AlgoC3:         "C3",
		AlgoP2C:        "P2C",
		Algorithm(99):  "algorithm(99)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestNoPaperIsNaN(t *testing.T) {
	if !math.IsNaN(NoPaper) {
		t.Fatal("NoPaper must be NaN")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Reps != 1 || o.WarmUp != 30*time.Second || o.Concurrency != 64 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Penalty != 600*time.Millisecond || o.ScrapeInterval != 5*time.Second {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Window != 10*time.Second || o.Percentile != 0.99 || o.RPSScale != 1 {
		t.Fatalf("defaults: %+v", o)
	}
}
