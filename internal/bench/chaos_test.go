package bench

import (
	"testing"
	"time"

	"l3/internal/chaos"
	"l3/internal/trace"
)

// chaosQuick shrinks the measured window like quick(); the partition then
// lands at 48 s and heals at 72 s of a 2-minute measurement.
func chaosQuick() Options {
	return Options{Seed: 1, WarmUp: 30 * time.Second, Duration: 2 * time.Minute}
}

func partitionQuick() *chaos.Schedule {
	return &chaos.Schedule{Events: []chaos.Event{{
		Kind: chaos.Partition, At: 48 * time.Second, Duration: 24 * time.Second,
		From: sourceCluster, To: "cluster-2",
	}}}
}

func TestRunChaosScenarioRequiresSchedule(t *testing.T) {
	if _, err := RunChaosScenario(trace.Scenario1, AlgoL3, chaosQuick()); err == nil {
		t.Fatal("missing schedule accepted")
	}
}

func TestChaosPartitionDipsAndRecovers(t *testing.T) {
	opts := chaosQuick()
	opts.Chaos = partitionQuick()
	s, err := RunChaosScenario(trace.Scenario1, AlgoL3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Report.Trough >= chaosSLOThreshold {
		t.Fatalf("trough = %v, partition of 1/3 of capacity should dip below the SLO", s.Report.Trough)
	}
	if !s.Report.Recovered {
		t.Fatal("L3 never recovered from the partition")
	}
	if s.Report.SLOViolation <= 0 {
		t.Fatal("no SLO violation recorded despite the dip")
	}
	if !s.Report.ReconvergeOK {
		t.Fatal("weights never reconverged after the heal")
	}
}

// TestChaosRecoveryOrdering is the figure's acceptance criterion: L3's
// symptom-driven reweighting must beat health-check failover's
// probe-threshold reaction, and both must beat round-robin (which only
// "recovers" when the partition heals underneath it).
func TestChaosRecoveryOrdering(t *testing.T) {
	opts := chaosQuick()
	opts.Chaos = partitionQuick()
	run := func(algo Algorithm) *ChaosStats {
		t.Helper()
		s, err := RunChaosScenario(trace.Scenario1, algo, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	l3, fo, rr := run(AlgoL3), run(AlgoFailover), run(AlgoRoundRobin)

	if !l3.Report.Recovered {
		t.Fatal("L3 did not recover")
	}
	if !fo.Report.Recovered {
		t.Fatal("failover did not recover")
	}
	if l3.Report.TimeToRecover >= fo.Report.TimeToRecover {
		t.Fatalf("L3 time-to-recover %v not below failover's %v",
			l3.Report.TimeToRecover, fo.Report.TimeToRecover)
	}
	if l3.Report.SLOViolation >= rr.Report.SLOViolation {
		t.Fatalf("L3 SLO violation %v not below round-robin's %v",
			l3.Report.SLOViolation, rr.Report.SLOViolation)
	}
	if fo.Ejections == 0 {
		t.Fatal("health checker never ejected the partitioned backend")
	}
}

// TestChaosDeterministicAcrossParallelism pins the tentpole's determinism
// guarantee: the same seed and schedule must render byte-identical figure
// output at any -parallel value.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallel int) string {
		opts := chaosQuick()
		opts.Reps = 2
		opts.Parallel = parallel
		r, err := FigC1(opts)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render() + r.CSV()
	}
	serial := render(1)
	fanned := render(4)
	if serial != fanned {
		t.Fatalf("figC1 output differs between -parallel 1 and 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, fanned)
	}
}

func TestFigC2LeaderKillTransparency(t *testing.T) {
	r, err := FigC2(chaosQuick())
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		rows[row.Label] = row.Value
	}
	gap := rows["failover gap"]
	// The standby acquires after the 15 s lease TTL and writes on its next
	// 5 s reconcile tick; well under that means the kill did nothing,
	// far over means failover never happened.
	if gap < 10 || gap > 40 {
		t.Fatalf("failover gap = %v s, want within lease-TTL failover band [10, 40]", gap)
	}
	// Transparency: the data plane rides out the gap on stale weights.
	if base, killed := rows["baseline success"], rows["leader-killed success"]; killed < base-1 {
		t.Fatalf("leader kill dented success: %v%% vs baseline %v%%", killed, base)
	}
}

func TestFigChaosCustomLeaderKill(t *testing.T) {
	sched, err := chaos.ParseSchedule("leaderkill@48s+24s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := FigChaosCustom(trace.Scenario1, sched, chaosQuick())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range r.Rows {
		if row.Label == "L3 failover gap" && row.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no positive L3 failover gap row in:\n%s", r.Render())
	}
}
