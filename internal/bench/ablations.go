package bench

import (
	"fmt"
	"time"

	"l3/internal/autoscale"
	"l3/internal/loadgen"
	"l3/internal/retry"
	"l3/internal/trace"
)

// AblationInflightExponent sweeps the exponent on (Rᵢ+1) in Equation 4.
// The paper chose 2 as "a good trade-off between swiftly diverting traffic
// away from backends experiencing increasing latency and ensuring
// stability"; this ablation quantifies that choice on scenario-2 (the
// scenario with the strongest RPS variation, where in-flight pressure
// matters most).
func AblationInflightExponent(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-inflight-exponent", Title: "Equation 4 exponent on (Ri+1), scenario-2 P99"}
	exps := []float64{1, 2, 3}
	recs := make([]*loadgen.Recorder, len(exps))
	err := ForEach(opts.Parallel, len(exps), func(i int) error {
		rec, err := runScenarioWithExponent(trace.Scenario2, opts, exps[i])
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, exp := range exps {
		r.AddRow(fmt.Sprintf("exponent %.0f", exp), msOf(recs[i].Quantile(0.99)), "ms", NoPaper)
	}
	r.Note("paper default is 2 (squaring); 1 under-reacts to queue build-up, 3 overreacts")
	return r, nil
}

// AblationPercentile sweeps the latency percentile Lₛ is taken from. §3.1
// says L3 can be configured for the 98th or 99.9th percentile as
// requirements demand.
func AblationPercentile(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-percentile", Title: "Latency percentile feeding Algorithm 1, scenario-1 P99"}
	percentiles := []float64{0.90, 0.98, 0.99, 0.999}
	recs := make([]*loadgen.Recorder, len(percentiles))
	err := ForEach(opts.Parallel, len(percentiles), func(i int) error {
		o := opts
		o.Percentile = percentiles[i]
		rec, err := RunScenario(trace.Scenario1, AlgoL3, o)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, p := range percentiles {
		r.AddRow(fmt.Sprintf("P%g", p*100), msOf(recs[i].Quantile(0.99)), "ms", NoPaper)
	}
	return r, nil
}

// AblationRateControl measures Algorithm 2's contribution in the regime
// §3.2 designed it for: a sudden load surge against backends whose
// capacity the fastest one cannot absorb alone. One cluster is clearly
// fastest, so Algorithm 1 concentrates traffic on it; when the offered
// load steps 4x, the rate controller's c > 0 response spreads the surge
// across all backends before the favourite saturates.
func AblationRateControl(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-rate-control", Title: "Algorithm 2 on/off under a 4x load surge"}
	type combo struct{ autoscaled, disabled bool }
	var combos []combo
	for _, autoscaled := range []bool{false, true} {
		for _, disabled := range []bool{false, true} {
			combos = append(combos, combo{autoscaled, disabled})
		}
	}
	recs := make([]*loadgen.Recorder, len(combos))
	err := ForEach(opts.Parallel, len(combos), func(i int) error {
		o := opts
		// The fast deployment is small (cap ≈ 180 RPS at its ~22 ms
		// mean); the slower ones are wide (cap ≈ 350 RPS each).
		// Algorithm 1 alone concentrates ~70 % of traffic on the fast
		// one, which the surge onset then saturates; Algorithm 2
		// detects the RPS jump within one update and spreads the
		// surge, buying the autoscaler (when present) the time §3.2
		// describes.
		o.ConcurrencyByCluster = map[string]int{
			"cluster-1": 4, "cluster-2": 40, "cluster-3": 40,
		}
		o.DisableRateControl = combos[i].disabled
		if combos[i].autoscaled {
			o.Autoscale = &autoscale.Config{Interval: 15 * time.Second}
		}
		rec, err := RunScenarioTrace(SurgeScenario(), AlgoL3, o)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range combos {
		rec := recs[i]
		// Report the quantile of the surge onset window (30 s from
		// the step, offset by the run's warm-up).
		onset := rec.WindowQuantile(0.99, opts.WarmUp+3*time.Minute, opts.WarmUp+3*time.Minute+30*time.Second)
		label := fmt.Sprintf("rate control %v, autoscaler %v",
			map[bool]string{false: "on", true: "off"}[c.disabled],
			map[bool]string{false: "off", true: "on"}[c.autoscaled])
		r.AddRow(label+" (surge-onset P99)", msOf(onset), "ms", NoPaper)
		r.AddRow(label+" (overall P99)", msOf(rec.Quantile(0.99)), "ms", NoPaper)
		r.AddRow(label+" (overall P50)", msOf(rec.Quantile(0.5)), "ms", NoPaper)
	}
	r.Note("surge: 80 RPS stepping to 320 RPS for three minutes at minute 3; the fast backend is small, the slow ones wide")
	r.Note("finding: the P99 is pinned by the onset's queue blast, which both Algorithm 2 and Equation 4's (Ri+1)^2 term correct only at the next 5 s update; the autoscaler's contribution (absorbing the sustained surge, §3.2) is visible at the median")
	return r, nil
}

// SurgeScenario builds the synthetic step-surge workload for the
// rate-control ablation: stable latencies with one clearly-fastest
// cluster, and an offered load that steps from 80 to 320 RPS between
// minutes 3 and 5.
func SurgeScenario() *trace.Scenario {
	const (
		step = time.Second
		n    = 601
	)
	mk := func(med, p99 float64) trace.ClusterTrace {
		return trace.ClusterTrace{
			Median:  trace.Constant(step, n, med),
			P99:     trace.Constant(step, n, p99),
			Success: trace.Constant(step, n, 1),
		}
	}
	fast := mk(0.020, 0.050)
	fast.Cluster = "cluster-1"
	mid := mk(0.100, 0.250)
	mid.Cluster = "cluster-2"
	slow := mk(0.110, 0.280)
	slow.Cluster = "cluster-3"

	rps := make([]float64, n)
	for i := range rps {
		rps[i] = 80
		if i >= 180 && i < 360 {
			rps[i] = 320
		}
	}
	return &trace.Scenario{
		Name:     "surge",
		Duration: 10 * time.Minute,
		Step:     step,
		RPS:      trace.Series{Step: step, Values: rps},
		Clusters: []trace.ClusterTrace{fast, mid, slow},
	}
}

// AblationScrapeInterval sweeps the metrics pipeline's scrape interval. §4
// discusses the freshness/load trade-off of the 5 s default.
func AblationScrapeInterval(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-scrape-interval", Title: "Scrape interval (data freshness), scenario-4 P99"}
	intervals := []time.Duration{time.Second, 5 * time.Second, 15 * time.Second}
	recs := make([]*loadgen.Recorder, len(intervals))
	err := ForEach(opts.Parallel, len(intervals), func(i int) error {
		o := opts
		o.ScrapeInterval = intervals[i]
		o.Window = 2 * intervals[i]
		rec, err := RunScenario(trace.Scenario4, AlgoL3, o)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, iv := range intervals {
		r.AddRow(fmt.Sprintf("scrape %v", iv), msOf(recs[i].Quantile(0.99)), "ms", NoPaper)
	}
	r.Note("faster scraping tracks scenario-4's short episodes better at higher pipeline cost (§4)")
	return r, nil
}

// AblationBaselines compares the full strategy roster, including the two
// the paper discusses but does not plot: Linkerd's per-request P2C
// PeakEWMA (in-cluster default) and static locality routing.
func AblationBaselines(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-baselines", Title: "All strategies on scenario-1 (P99)"}
	algos := []Algorithm{AlgoRoundRobin, AlgoP2C, AlgoC3, AlgoL3}
	recs := make([]*loadgen.Recorder, len(algos))
	err := ForEach(opts.Parallel, len(algos), func(i int) error {
		rec, err := RunScenario(trace.Scenario1, algos[i], opts)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, algo := range algos {
		r.AddRow(algo.String(), msOf(recs[i].Quantile(0.99)), "ms", NoPaper)
	}
	return r, nil
}

// AblationDynamicPenalty evaluates the paper's future work (§7): deriving
// the penalty factor P per backend from "continuous feedback about the
// response time of unsuccessful requests" instead of a static constant.
// failure-1's failures cost only their observed service time (~tens of
// ms), far below the static 600 ms guess, so the dynamic variant should
// behave like a well-tuned small P.
func AblationDynamicPenalty(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-dynamic-penalty", Title: "Static vs dynamic penalty factor on failure-1"}
	statics := []time.Duration{100 * time.Millisecond, 600 * time.Millisecond, 1500 * time.Millisecond}
	recs := make([]*loadgen.Recorder, len(statics)+1)
	err := ForEach(opts.Parallel, len(statics)+1, func(i int) error {
		o := opts
		if i < len(statics) {
			o.Penalty = statics[i]
		} else {
			o.DynamicPenalty = true
		}
		rec, err := RunScenario(trace.Failure1, AlgoL3, o)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, p := range statics {
		r.AddRow(fmt.Sprintf("static P=%v (P99)", p), msOf(recs[i].Quantile(0.99)), "ms", NoPaper)
		r.AddRow(fmt.Sprintf("static P=%v (success)", p), recs[i].SuccessRate()*100, "%", NoPaper)
	}
	dyn := recs[len(statics)]
	r.AddRow("dynamic P (P99)", msOf(dyn.Quantile(0.99)), "ms", NoPaper)
	r.AddRow("dynamic P (success)", dyn.SuccessRate()*100, "%", NoPaper)
	return r, nil
}

// AblationPenaltyWithRetries re-runs the penalty-factor comparison with
// client retries enabled — §5.2.1 notes the paper's benchmarks skipped
// retries and conjectures that "the effect of P on the latency percentile
// decrease might not be as strong with retries as in our benchmark". With
// retries, failed requests genuinely cost the client extra round-trips, so
// Equation 3's model matches reality and success converges toward 100 %.
func AblationPenaltyWithRetries(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	opts.Retry = &retry.Policy{MaxAttempts: 3, Backoff: 10 * time.Millisecond}
	r := &Result{ID: "ablation-penalty-retries", Title: "Penalty factor with client retries, failure-2"}
	penalties := []time.Duration{100 * time.Millisecond, 600 * time.Millisecond, 1500 * time.Millisecond}
	var rr *loadgen.Recorder
	recs := make([]*loadgen.Recorder, len(penalties))
	err := ForEach(opts.Parallel, len(penalties)+1, func(i int) error {
		if i == 0 {
			rec, err := RunScenario(trace.Failure2, AlgoRoundRobin, opts)
			rr = rec
			return err
		}
		o := opts
		o.Penalty = penalties[i-1]
		rec, err := RunScenario(trace.Failure2, AlgoL3, o)
		recs[i-1] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("Round-robin (P99)", msOf(rr.Quantile(0.99)), "ms", NoPaper)
	r.AddRow("Round-robin (success)", rr.SuccessRate()*100, "%", NoPaper)
	for i, p := range penalties {
		dec := (1 - recs[i].Quantile(0.99).Seconds()/rr.Quantile(0.99).Seconds()) * 100
		r.AddRow(fmt.Sprintf("L3 P=%v (P99 decrease)", p), dec, "%", NoPaper)
		r.AddRow(fmt.Sprintf("L3 P=%v (success)", p), recs[i].SuccessRate()*100, "%", NoPaper)
	}
	r.Note("retried latency spans all attempts, so every strategy's tail includes genuine failure costs")
	return r, nil
}

// AblationCostAwareness evaluates the other §7 extension: making L3 aware
// of inter-cluster transfer pricing. λ is the dollars→latency exchange
// rate (seconds of virtual latency per dollar of per-request transfer
// cost); λ = 0 is plain L3. Costs use public-cloud-like $0.02/GB between
// clusters at 16 KiB per request; the reported bill is normalised per
// million requests. The expected trade-off: rising λ keeps more traffic
// local, shrinking the bill at some tail-latency price.
func AblationCostAwareness(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-cost", Title: "Cost-aware L3 on scenario-1 (λ sweep)"}
	lambdas := []float64{0, 1e5, 3e5, 1e6, 3e6}
	allStats := make([]*ScenarioStats, len(lambdas))
	err := ForEach(opts.Parallel, len(lambdas), func(i int) error {
		o := opts
		o.CostLambda = lambdas[i]
		stats, err := RunScenarioWithStats(trace.Scenario1, AlgoL3, o)
		allStats[i] = stats
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, lambda := range lambdas {
		stats := allStats[i]
		label := fmt.Sprintf("λ=%.0es/$", lambda)
		if lambda == 0 {
			label = "λ=0 (plain L3)"
		}
		r.AddRow(label+" (P99)", msOf(stats.Recorder.Quantile(0.99)), "ms", NoPaper)
		r.AddRow(label+" (remote traffic)", stats.RemoteShare*100, "%", NoPaper)
		perMillion := stats.TransferCost / float64(stats.Recorder.Count()) * 1e6
		r.AddRow(label+" (cost/M req)", perMillion, "$", NoPaper)
	}
	return r, nil
}

// AblationFailover compares L3's proactive symptom-based steering with the
// reactive health-check failover of production meshes, on the heavy
// failure-1 scenario: availability dips last tens of seconds, which a
// 10-second probe with a 3-strike threshold catches late or (for
// probabilistic 30 %-success failure) often not at all, while L3's
// success-rate EWMA starts shifting within one collection round.
func AblationFailover(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{ID: "ablation-failover", Title: "Health-check failover vs L3 on failure-1"}
	algos := []Algorithm{AlgoRoundRobin, AlgoFailover, AlgoL3}
	recs := make([]*loadgen.Recorder, len(algos))
	err := ForEach(opts.Parallel, len(algos), func(i int) error {
		rec, err := RunScenario(trace.Failure1, algos[i], opts)
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, algo := range algos {
		r.AddRow(algo.String()+" (P99)", msOf(recs[i].Quantile(0.99)), "ms", NoPaper)
		r.AddRow(algo.String()+" (success)", recs[i].SuccessRate()*100, "%", NoPaper)
	}
	r.Note("probes answer with the backend's probabilistic success, so a 30%%-success dip needs 3 consecutive probe failures (p≈0.34 per round) to eject — L3 steers on the measured rate instead")
	return r, nil
}

// runScenarioWithExponent is RunScenario with a custom Equation 4 exponent
// (plumbed through an unexported Options field to keep the public surface
// aligned with the paper's knobs).
func runScenarioWithExponent(name string, opts Options, exponent float64) (*loadgen.Recorder, error) {
	opts.inflightExponent = exponent
	return RunScenario(name, AlgoL3, opts)
}
