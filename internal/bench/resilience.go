package bench

import (
	"time"

	"l3/internal/chaos"
	"l3/internal/loadgen"
	"l3/internal/resilience"
	"l3/internal/trace"
)

// ResilienceStats is one configuration's outcome under a resilience
// policy: the merged recorder, the recovery scorecard (when a chaos
// schedule ran), and the resilience layer's summed counters across
// repetitions.
type ResilienceStats struct {
	Recorder *loadgen.Recorder
	// Report carries the chaos recovery scorecard; valid only when
	// HasReport (a chaos schedule was injected).
	Report    chaos.Report
	HasReport bool
	// Requests counts logical requests entering the resilience layer;
	// Attempts counts what the data plane actually carried (retries and
	// hedges included).
	Requests float64
	Attempts float64
	// Retries/Hedges are extra attempts launched; BudgetDenied counts
	// retries/hedges the token bucket refused; DeadlineExceeded and
	// Duplicates are the deadline layer's accounting.
	Retries          float64
	Hedges           float64
	BudgetDenied     float64
	DeadlineExceeded float64
	Duplicates       float64
	// Breaker and health-checker activity, for the R3 comparison.
	BreakerEjections float64
	BreakerRestores  float64
	BreakerDenied    float64
	HealthEjections  float64
	HealthRestores   float64
}

// RetryRatio is extra attempts per logical request (the quantity a retry
// budget bounds: ≤ BudgetRatio in steady state, plus the initial burst).
func (s *ResilienceStats) RetryRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return s.Retries / s.Requests
}

// DuplicateLoad is hedge attempts per logical request — the extra
// capacity hedging buys its tail cut with.
func (s *ResilienceStats) DuplicateLoad() float64 {
	if s.Requests == 0 {
		return 0
	}
	return s.Hedges / s.Requests
}

// RunResilienceScenario replays a trace scenario under one algorithm with
// opts.Resilience routing the client through the resilience layer. Unlike
// RunChaosScenario the chaos schedule is optional; when present the
// recovery scorecard is filled in too.
func RunResilienceScenario(scenarioName string, algo Algorithm, opts Options) (*ResilienceStats, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	arts := make([]*chaosArtifacts, opts.Reps)
	durations := make([]time.Duration, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := DeriveSeed(opts.Seed, rep)
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, _, art, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		if art == nil {
			art = &chaosArtifacts{}
		}
		duration := opts.Duration
		if duration <= 0 {
			duration = sc.Duration
		}
		recs[rep], arts[rep], durations[rep] = rec, art, duration
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats := &ResilienceStats{Recorder: mergeRecorders(recs)}
	reports := make([]chaos.Report, opts.Reps)
	for rep := 0; rep < opts.Reps; rep++ {
		art := arts[rep]
		stats.Requests += art.res.requests
		stats.Attempts += art.res.attempts
		stats.Retries += art.res.retries
		stats.Hedges += art.res.hedges
		stats.BudgetDenied += art.res.budgetDenied
		stats.DeadlineExceeded += art.res.deadline
		stats.Duplicates += art.res.duplicates
		stats.BreakerEjections += art.res.breakerEjects
		stats.BreakerRestores += art.res.breakerRestores
		stats.BreakerDenied += art.res.breakerDenied
		stats.HealthEjections += art.ejections
		stats.HealthRestores += art.restores
		if opts.Chaos != nil {
			reports[rep] = scoreRun(recs[rep], art, opts.WarmUp, durations[rep], opts.Chaos)
		}
	}
	if opts.Chaos != nil {
		stats.Report, stats.HasReport = mergeReports(reports), true
	}
	return stats, nil
}

// resilienceLoadOptions is the shared testbed of the R1/R3 figures: a
// deliberately small deployment where retry and breaker dynamics are
// visible. 10 workers per backend put total capacity (~430 rps on
// scenario-1's 50-85 ms medians) a comfortable ~40% above the ~300 rps
// offered load, so every well-behaved client is clean at baseline. The
// queue bound is the storm ingredient: a full queue's waiting time
// (queue × service-time / workers ≈ 1-1.6 s) exceeds R1's 500 ms per-try
// timeout, so once queues fill, every response a backend serves goes to a
// client that already abandoned the attempt — capacity burned on work
// nobody is waiting for. That wasted-work regime is what makes a retry
// storm metastable rather than self-correcting: instant queue rejects
// would cost the server nothing and the storm would unwind on its own.
func resilienceLoadOptions(opts Options) Options {
	opts.Concurrency = 10
	opts.QueueCapacity = 192
	return opts
}

// saturateSchedule degrades the named backends to fraction factor of
// their workers over the standard chaos window.
func saturateSchedule(opts Options, factor float64, backendNames ...string) *chaos.Schedule {
	at, dur := chaosWindow(opts)
	sched := &chaos.Schedule{}
	for _, name := range backendNames {
		sched.Events = append(sched.Events, chaos.Event{
			Kind: chaos.Saturate, At: at, Duration: dur,
			Backend: name, Factor: factor,
		})
	}
	return sched
}

// postHealGoodput averages successful requests per second over the run's
// tail, starting grace after the fault healed — the "did it come back"
// number that separates a metastable retry storm from a recovery.
func postHealGoodput(rec *loadgen.Recorder, reps int, healAbs, grace time.Duration) float64 {
	rps := rec.RPSSeries()
	sr := rec.SuccessRateSeries()
	from := int((healAbs + grace) / rec.BucketWidth())
	if from >= len(rps) {
		return 0
	}
	// The final buckets are drain artifacts (the generator stops issuing
	// but stragglers still land); keep them out of the average.
	last := len(rps) - 3
	if last > len(sr) {
		last = len(sr)
	}
	var sum float64
	n := 0
	for i := from; i < last; i++ {
		sum += rps[i] * sr[i]
		n++
	}
	if n == 0 {
		return 0
	}
	// The merged recorder stacks reps on the same buckets; normalise back
	// to per-run rates.
	return sum / float64(n) / float64(reps)
}

// FigR1 is the retry-storm figure: two of three backends saturate to a
// tenth of their workers mid-run and heal, under three client
// configurations — no retries, naive ×3 retries, and budget-bounded
// retries, all behind a 2 s deadline with a 500 ms per-try timeout on the
// retrying clients. Per-try timeouts make naive retries triple the
// offered load; that pins every queue past the point where waiting time
// exceeds the timeout, so every response a backend serves goes to a
// client that already gave up — all capacity burned as wasted work.
// Amplified load (~3×300 rps) exceeds even the healed capacity (~430),
// so the collapse outlives the fault: the metastable failure mode
// Linkerd/Finagle retry budgets exist to prevent. The budgeted client
// bounds retry load to its earn rate (~10%), stays under healed capacity,
// and drains back to full goodput within seconds of the heal.
func FigR1(opts Options) (*Result, error) {
	opts = resilienceLoadOptions(opts.withDefaults())
	// A correlated fault: two of the three backends drop to a tenth of
	// their workers, so retries cannot simply route around it — the
	// surviving backend alone cannot carry amplified load.
	sched := saturateSchedule(opts, 0.1, apiService+"-cluster-1", apiService+"-cluster-2")
	opts.Chaos = sched
	healAbs := opts.WarmUp + sched.Events[0].At + sched.Events[0].Duration

	// All three clients share the 2 s deadline; the retrying clients also
	// abandon attempts unanswered for 500 ms (per-try timeout) and retry —
	// the abandoned work stays queued server-side, which is what arms the
	// storm. They differ only in whether a token bucket bounds those
	// retries: BudgetRatio 0 on the naive client means unlimited.
	const deadline = 2 * time.Second
	retryCfg := resilience.RetryConfig{
		MaxAttempts:    3,
		AttemptTimeout: 500 * time.Millisecond,
		Backoff:        10 * time.Millisecond,
		Jitter:         0.2,
	}
	budgetCfg := retryCfg
	budgetCfg.BudgetRatio = 0.1
	configs := []struct {
		label  string
		policy *resilience.Policy
	}{
		{"no retries", &resilience.Policy{Deadline: deadline}},
		{"naive x3", &resilience.Policy{Deadline: deadline, Retry: retryCfg}},
		{"budget 0.1", &resilience.Policy{Deadline: deadline, Retry: budgetCfg}},
	}
	stats := make([]*ResilienceStats, len(configs))
	err := ForEach(opts.Parallel, len(configs), func(i int) error {
		cfgOpts := opts
		cfgOpts.Resilience = configs[i].policy
		s, err := RunResilienceScenario(trace.Scenario1, AlgoRoundRobin, cfgOpts)
		stats[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figR1", Title: "Retry storm: naive vs budgeted retries under a saturate fault", SeriesStep: time.Second}
	for i, cfg := range configs {
		s := stats[i]
		label := cfg.label
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		r.AddRow(label+" post-heal goodput", postHealGoodput(s.Recorder, opts.Reps, healAbs, 10*time.Second), "rps", NoPaper)
		r.AddRow(label+" retry ratio", s.RetryRatio(), "retries/req", NoPaper)
		r.AddRow(label+" P99", msOf(s.Recorder.Quantile(0.99)), "ms", NoPaper)
		if s.HasReport {
			if s.Report.Recovered {
				r.AddRow(label+" time-to-recover", s.Report.TimeToRecover.Seconds(), "s", NoPaper)
			} else {
				r.Note("%s never recovered above %.0f%% success after the heal", label, chaosSLOThreshold*100)
			}
			r.AddRow(label+" SLO violation", s.Report.SLOViolation.Seconds(), "s", NoPaper)
		}
		if s.BudgetDenied > 0 {
			r.AddRow(label+" budget-denied", s.BudgetDenied, "", NoPaper)
		}
		r.AddSeries("success_"+label, s.Recorder.SuccessRateSeries())
	}
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	r.Note("testbed: concurrency 10/backend, queue 192, deadline 2s, per-try timeout 500ms — offered ~300 rps vs ~430 rps capacity; a full queue waits ~1-1.6s, past the per-try timeout")
	r.Note("expectation: the budget caps retry ratio at ~0.1 and goodput returns after the heal; naive x3 amplifies offered load past healed capacity and stays collapsed")
	return r, nil
}

// FigR2 is the hedging figure: scenario-2's heavy tail (p99 spikes above
// 2 s) under round-robin, sweeping the hedge threshold. Hedging at a high
// percentile cuts p99/p999 for a few percent of duplicate load; hedging
// too early buys little more tail for much more load.
func FigR2(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	configs := []struct {
		label  string
		policy *resilience.Policy
	}{
		{"no hedge", nil},
		{"hedge p99", &resilience.Policy{Hedge: resilience.HedgeConfig{Percentile: 0.99}}},
		{"hedge p95", &resilience.Policy{Hedge: resilience.HedgeConfig{Percentile: 0.95}}},
		{"hedge p90", &resilience.Policy{Hedge: resilience.HedgeConfig{Percentile: 0.90}}},
	}
	stats := make([]*ResilienceStats, len(configs))
	err := ForEach(opts.Parallel, len(configs), func(i int) error {
		cfgOpts := opts
		cfgOpts.Resilience = configs[i].policy
		s, err := RunResilienceScenario(trace.Scenario2, AlgoRoundRobin, cfgOpts)
		stats[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figR2", Title: "Hedged requests: tail latency vs hedge threshold", SeriesStep: time.Second}
	for i, cfg := range configs {
		s := stats[i]
		label := cfg.label
		r.AddRow(label+" P50", msOf(s.Recorder.Quantile(0.50)), "ms", NoPaper)
		r.AddRow(label+" P99", msOf(s.Recorder.Quantile(0.99)), "ms", NoPaper)
		r.AddRow(label+" P999", msOf(s.Recorder.Quantile(0.999)), "ms", NoPaper)
		r.AddRow(label+" duplicate load", s.DuplicateLoad()*100, "%", NoPaper)
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
	}
	r.Note("scenario-2 under round-robin; hedge threshold learned online from successful-response latency")
	r.Note("expectation: p99/p999 drop as the threshold tightens, while duplicate load grows ~(1-percentile); p50 is untouched — hedges fire only past the threshold")
	return r, nil
}

// FigR3 is the circuit-breaking figure: one backend degrades to 1/20 of
// its workers (slow-failing, not dead) and the figure compares how fast
// each protection takes it out of rotation: none, the data-path breaker,
// probe-driven health failover, and both composed. The breaker reacts in
// a handful of failed responses; probes need FailureThreshold × Interval.
func FigR3(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// Unlike R1's storm testbed, R3 needs enough headroom that ejecting
	// one of three backends is SAFE (two backends ≈ 600×2/3 = 400 rps vs
	// ~300 offered): the figure isolates how fast each mechanism takes
	// the degraded backend out, not what redistribution overload does.
	opts.Concurrency = 14
	opts.QueueCapacity = 192
	sched := saturateSchedule(opts, 0.05, apiService+"-cluster-2")
	opts.Chaos = sched

	breakerPolicy := &resilience.Policy{
		Breaker: resilience.BreakerConfig{
			ConsecutiveFailures: 5,
			BaseEjection:        10 * time.Second,
			MaxEjectionPercent:  0.5,
		},
	}
	configs := []struct {
		label  string
		algo   Algorithm
		policy *resilience.Policy
	}{
		{"RR", AlgoRoundRobin, nil},
		{"RR+breaker", AlgoRoundRobin, breakerPolicy},
		{"RR+failover", AlgoFailover, nil},
		{"failover+breaker", AlgoFailover, breakerPolicy},
	}
	stats := make([]*ResilienceStats, len(configs))
	err := ForEach(opts.Parallel, len(configs), func(i int) error {
		cfgOpts := opts
		cfgOpts.Resilience = configs[i].policy
		s, err := RunResilienceScenario(trace.Scenario1, configs[i].algo, cfgOpts)
		stats[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figR3", Title: "Circuit breaking vs probe-driven ejection under partial degradation", SeriesStep: time.Second}
	for i, cfg := range configs {
		s := stats[i]
		label := cfg.label
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		r.AddRow(label+" trough", s.Report.Trough*100, "%", NoPaper)
		r.AddRow(label+" SLO violation", s.Report.SLOViolation.Seconds(), "s", NoPaper)
		if s.Report.Recovered {
			r.AddRow(label+" time-to-recover", s.Report.TimeToRecover.Seconds(), "s", NoPaper)
		} else {
			r.Note("%s never recovered above %.0f%% success", label, chaosSLOThreshold*100)
		}
		if s.BreakerEjections > 0 || s.BreakerDenied > 0 {
			r.AddRow(label+" breaker ejections", s.BreakerEjections, "", NoPaper)
		}
		if s.HealthEjections > 0 {
			r.AddRow(label+" probe ejections", s.HealthEjections, "", NoPaper)
		}
		r.AddSeries("success_"+label, s.Recorder.SuccessRateSeries())
	}
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	r.Note("expectation: the breaker ejects on the data path within ~5 failed responses; probe failover waits out 3 probes x 10 s; max-ejection-percent 0.5 keeps at most half the backends out")
	return r, nil
}
