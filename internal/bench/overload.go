package bench

import (
	"time"

	"l3/internal/chaos"
	"l3/internal/loadgen"
	"l3/internal/overload"
	"l3/internal/resilience"
	"l3/internal/trace"
)

// OverloadStats is one configuration's outcome under an admission-control
// policy: the merged recorder (plus one per criticality tier when a tier
// mix was issued), the recovery scorecard when a chaos schedule ran, and
// the admission layer's summed counters across repetitions.
type OverloadStats struct {
	Recorder *loadgen.Recorder
	// TierRecorders split the recorder by criticality tier; entries are
	// nil unless Options.OverloadTierMix was set.
	TierRecorders [overload.NumTiers]*loadgen.Recorder
	Report        chaos.Report
	HasReport     bool
	// Admission accounting, summed across repetitions.
	Admitted      float64
	Shed          [overload.NumTiers]float64
	CodelDropped  float64
	QueueOverflow float64
	LifoFlips     float64
	Readmits      float64
	// FinalLimit and AdmitMax are the first repetition's end-of-run
	// limiter value and highest admitted tier (reps are deterministic, so
	// rep 0 is representative); MaxSojourn is the longest admission-queue
	// wait across all repetitions — the bounded-queue-delay number.
	FinalLimit int
	AdmitMax   int
	MaxSojourn time.Duration
}

// ShedTotal sums sheds across tiers.
func (s *OverloadStats) ShedTotal() float64 {
	var t float64
	for _, v := range s.Shed {
		t += v
	}
	return t
}

// RunOverloadScenarioTrace replays a caller-built scenario with
// opts.Overload composing admission control over the client, and collects
// the admission scorecard. Repetitions rerun the same trace under
// different simulation seeds, exactly like RunScenarioTrace.
func RunOverloadScenarioTrace(sc *trace.Scenario, algo Algorithm, opts Options) (*OverloadStats, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	arts := make([]*chaosArtifacts, opts.Reps)
	durations := make([]time.Duration, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		rec, _, art, err := runOnceCounted(sc, algo, opts, DeriveSeed(opts.Seed, rep))
		if err != nil {
			return err
		}
		if art == nil {
			art = &chaosArtifacts{}
		}
		duration := opts.Duration
		if duration <= 0 {
			duration = sc.Duration
		}
		recs[rep], arts[rep], durations[rep] = rec, art, duration
		return nil
	})
	if err != nil {
		return nil, err
	}
	return collectOverloadStats(opts, recs, arts, durations), nil
}

// RunOverloadScenario is RunOverloadScenarioTrace for a named trace
// scenario (each repetition regenerates the trace from its derived seed,
// like RunScenario).
func RunOverloadScenario(scenarioName string, algo Algorithm, opts Options) (*OverloadStats, error) {
	opts = opts.withDefaults()
	recs := make([]*loadgen.Recorder, opts.Reps)
	arts := make([]*chaosArtifacts, opts.Reps)
	durations := make([]time.Duration, opts.Reps)
	err := ForEach(opts.Parallel, opts.Reps, func(rep int) error {
		seed := DeriveSeed(opts.Seed, rep)
		sc, err := trace.Generate(scenarioName, seed)
		if err != nil {
			return err
		}
		rec, _, art, err := runOnceCounted(sc, algo, opts, seed)
		if err != nil {
			return err
		}
		if art == nil {
			art = &chaosArtifacts{}
		}
		duration := opts.Duration
		if duration <= 0 {
			duration = sc.Duration
		}
		recs[rep], arts[rep], durations[rep] = rec, art, duration
		return nil
	})
	if err != nil {
		return nil, err
	}
	return collectOverloadStats(opts, recs, arts, durations), nil
}

// collectOverloadStats folds per-repetition artifacts into one scorecard,
// in index order.
func collectOverloadStats(opts Options, recs []*loadgen.Recorder, arts []*chaosArtifacts, durations []time.Duration) *OverloadStats {
	stats := &OverloadStats{Recorder: mergeRecorders(recs)}
	if len(opts.OverloadTierMix) > 0 {
		for tier := range stats.TierRecorders {
			stats.TierRecorders[tier] = loadgen.NewRecorder(time.Second)
		}
	}
	reports := make([]chaos.Report, len(arts))
	for rep, art := range arts {
		stats.Admitted += art.ovl.admitted
		stats.CodelDropped += art.ovl.codelDropped
		stats.QueueOverflow += art.ovl.overflow
		stats.LifoFlips += art.ovl.lifoFlips
		stats.Readmits += art.ovl.readmits
		for tier := 0; tier < overload.NumTiers; tier++ {
			stats.Shed[tier] += art.ovl.shed[tier]
			if stats.TierRecorders[tier] != nil && art.tierRecs[tier] != nil {
				stats.TierRecorders[tier].Merge(art.tierRecs[tier])
			}
		}
		if rep == 0 {
			stats.FinalLimit, stats.AdmitMax = art.ovl.limit, art.ovl.admitMax
		}
		if art.ovl.maxSojourn > stats.MaxSojourn {
			stats.MaxSojourn = art.ovl.maxSojourn
		}
		if opts.Chaos != nil {
			reports[rep] = scoreRun(recs[rep], art, opts.WarmUp, durations[rep], opts.Chaos)
		}
	}
	if opts.Chaos != nil {
		stats.Report, stats.HasReport = mergeReports(reports), true
	}
	return stats
}

// windowGoodput averages successful requests per second over [from, to) —
// the pre-fault companion to postHealGoodput, so goodput-retention ratios
// compare like windows of the same run.
func windowGoodput(rec *loadgen.Recorder, reps int, from, to time.Duration) float64 {
	rps := rec.RPSSeries()
	sr := rec.SuccessRateSeries()
	lo := int(from / rec.BucketWidth())
	hi := int(to / rec.BucketWidth())
	if hi > len(rps) {
		hi = len(rps)
	}
	if hi > len(sr) {
		hi = len(sr)
	}
	var sum float64
	n := 0
	for i := lo; i < hi; i++ {
		sum += rps[i] * sr[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) / float64(reps)
}

// saturateScenario builds O1's workload: three identical clusters
// (median 55 ms, P99 150 ms, no intrinsic failures) under a steady
// 300 rps. On the O1 testbed's 10-worker backends that is ~65% of the
// ~460 rps aggregate capacity — comfortably provisioned, so the injected
// saturate fault is the run's only disturbance. (Scenario1's organic
// cluster-2 latency episodes would land at arbitrary points of the
// post-heal window and confound the retention measurement; the
// resilience figures tolerate them because retry budgets don't shed
// throughput, but an admission controller correctly reads a slow
// backend as lost capacity.)
func saturateScenario(total time.Duration) *trace.Scenario {
	step := time.Second
	n := int(total/step) + 1
	sc := &trace.Scenario{Name: "saturate", Duration: total, Step: step,
		RPS: trace.Constant(step, n, 300)}
	for _, cl := range []string{"cluster-1", "cluster-2", "cluster-3"} {
		sc.Clusters = append(sc.Clusters, trace.ClusterTrace{
			Cluster: cl,
			Median:  trace.Constant(step, n, 0.055),
			P99:     trace.Constant(step, n, 0.150),
			Success: trace.Constant(step, n, 1.0),
		})
	}
	return sc
}

// figO1OverloadPolicy is the "limiter+codel" arm's admission policy: a
// Vegas limit sized ~50% above the baseline's bandwidth-delay product
// (~300 rps × 65 ms ≈ 20 in flight), a 20 ms CoDel target on the
// admission queue, tiers off — O1 isolates the limiter and drop law; O2
// adds criticality.
func figO1OverloadPolicy() *overload.Policy {
	return &overload.Policy{
		Limiter: overload.LimiterConfig{Initial: 32, Min: 4, Max: 64},
		Queue: overload.QueueConfig{
			Target:   20 * time.Millisecond,
			Interval: 100 * time.Millisecond,
			Capacity: 128,
		},
	}
}

// FigO1 is the saturation-collapse figure: R1's correlated fault (two of
// three backends drop to a tenth of their workers, then heal) under the
// same naive ×3 retrying client, with and without admission control. The
// uncontrolled client amplifies offered load past healed capacity and
// stays collapsed — the metastable regime R1 established. The controlled
// client watches its own RTTs: the Vegas limiter shrinks to the capacity
// the fault left, the CoDel queue sheds the excess at ~zero cost (a shed
// request never reaches a server), and when the fault heals the limiter
// regrows and goodput returns — same client, same retries, opposite
// outcome.
func FigO1(opts Options) (*Result, error) {
	opts = resilienceLoadOptions(opts.withDefaults())
	total := opts.Duration
	if total <= 0 {
		total = 10 * time.Minute
		opts.Duration = total
	}
	sc := saturateScenario(total)
	sched := saturateSchedule(opts, 0.1, apiService+"-cluster-1", apiService+"-cluster-2")
	opts.Chaos = sched
	faultAbs := opts.WarmUp + sched.Events[0].At
	healAbs := faultAbs + sched.Events[0].Duration

	// Both arms run R1's storm-prone client: 2 s deadline, naive ×3
	// retries with a 500 ms per-try timeout and no budget.
	const deadline = 2 * time.Second
	resPolicy := &resilience.Policy{
		Deadline: deadline,
		Retry: resilience.RetryConfig{
			MaxAttempts:    3,
			AttemptTimeout: 500 * time.Millisecond,
			Backoff:        10 * time.Millisecond,
			Jitter:         0.2,
		},
	}
	configs := []struct {
		label  string
		policy *overload.Policy
	}{
		{"uncontrolled", nil},
		{"limiter+codel", figO1OverloadPolicy()},
	}
	stats := make([]*OverloadStats, len(configs))
	err := ForEach(opts.Parallel, len(configs), func(i int) error {
		cfgOpts := opts
		cfgOpts.Resilience = resPolicy
		cfgOpts.Overload = configs[i].policy
		if cfgOpts.Overload == nil {
			// The uncontrolled arm still runs through the (empty) overload
			// layer so both arms share one client stack; a disabled policy
			// is a pure pass-through.
			cfgOpts.Overload = &overload.Policy{}
		}
		s, err := RunOverloadScenarioTrace(sc, AlgoRoundRobin, cfgOpts)
		stats[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figO1", Title: "Overload control: adaptive limit + CoDel vs uncontrolled saturation collapse", SeriesStep: time.Second}
	for i, cfg := range configs {
		s := stats[i]
		label := cfg.label
		base := windowGoodput(s.Recorder, opts.Reps, opts.WarmUp+10*time.Second, faultAbs)
		post := postHealGoodput(s.Recorder, opts.Reps, healAbs, 10*time.Second)
		retention := 0.0
		if base > 0 {
			retention = post / base
		}
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		r.AddRow(label+" baseline goodput", base, "rps", NoPaper)
		r.AddRow(label+" post-heal goodput", post, "rps", NoPaper)
		r.AddRow(label+" goodput retention", retention*100, "%", NoPaper)
		r.AddRow(label+" P99", msOf(s.Recorder.Quantile(0.99)), "ms", NoPaper)
		r.AddRow(label+" post-heal P99", msOf(s.Recorder.WindowQuantile(0.99, healAbs+10*time.Second, opts.WarmUp+total)), "ms", NoPaper)
		if cfg.policy != nil {
			r.AddRow(label+" shed", s.ShedTotal(), "", NoPaper)
			r.AddRow(label+" codel drops", s.CodelDropped, "", NoPaper)
			r.AddRow(label+" queue overflow", s.QueueOverflow, "", NoPaper)
			r.AddRow(label+" final limit", float64(s.FinalLimit), "", NoPaper)
			r.AddRow(label+" max queue delay", msOf(s.MaxSojourn), "ms", NoPaper)
		}
		if s.HasReport {
			if s.Report.Recovered {
				r.AddRow(label+" time-to-recover", s.Report.TimeToRecover.Seconds(), "s", NoPaper)
			} else {
				r.Note("%s never recovered above %.0f%% success after the heal", label, chaosSLOThreshold*100)
			}
			r.AddRow(label+" SLO violation", s.Report.SLOViolation.Seconds(), "s", NoPaper)
		}
		r.AddSeries("success_"+label, s.Recorder.SuccessRateSeries())
	}
	r.Note("chaos schedule: %s (shifted by %v warm-up)", sched, opts.WarmUp)
	r.Note("testbed: 300 rps constant over three 55ms-median clusters (concurrency 10/backend, queue 192, ~460 rps capacity); R1's storm client (2s deadline, naive x3, 500ms per-try); the controlled arm adds limit 32 (min 4), CoDel target 20ms/interval 100ms, qcap 128")
	r.Note("expectation: uncontrolled loses over half its baseline goodput after the heal (metastable storm); limiter+CoDel sheds at the client for the fault's duration, keeps queue delay bounded near the CoDel target and retains ≥90%% goodput post-heal")
	return r, nil
}

// flashCrowdScenario builds O2's workload: three identical clusters
// (median 55 ms, P99 150 ms, no intrinsic failures, aggregate capacity
// ≈ 500 rps on the O2 testbed's 10-worker backends) under 250 rps of
// steady load, with a flash crowd to 1200 rps — 2.4× capacity — between
// 2/5 and 3/5 of the measured run.
func flashCrowdScenario(total time.Duration) (*trace.Scenario, time.Duration, time.Duration) {
	step := time.Second
	n := int(total/step) + 1
	flashFrom, flashTo := total*2/5, total*3/5
	rps := trace.Constant(step, n, 250)
	for i := range rps.Values {
		t := time.Duration(i) * step
		if t >= flashFrom && t < flashTo {
			rps.Values[i] = 1200
		}
	}
	sc := &trace.Scenario{Name: "flash-crowd", Duration: total, Step: step, RPS: rps}
	for _, cl := range []string{"cluster-1", "cluster-2", "cluster-3"} {
		sc.Clusters = append(sc.Clusters, trace.ClusterTrace{
			Cluster: cl,
			Median:  trace.Constant(step, n, 0.055),
			P99:     trace.Constant(step, n, 0.150),
			Success: trace.Constant(step, n, 1.0),
		})
	}
	return sc, flashFrom, flashTo
}

// figO2OverloadPolicy is the tiered arm's policy: O1's limiter and queue
// plus the criticality gate (1 s re-admit hysteresis).
func figO2OverloadPolicy() *overload.Policy {
	p := figO1OverloadPolicy()
	p.Limiter.Max = 96
	p.Queue.Target = 10 * time.Millisecond
	p.Tiers = overload.TierConfig{Enabled: true, Readmit: time.Second}
	return p
}

// FigO2 is the criticality figure: a flash crowd to 2.4× capacity with
// requests split evenly across the three tiers, under a 500 ms deadline.
// Without admission control the server queues absorb the crowd until
// waiting time alone exceeds the deadline, and every tier — critical
// included — collapses together. With the tier gate, overload clamps
// sheddable first and default second (each clamp one ClampHold apart),
// re-admitting a tier only after a second of sustained health, so the
// flash is absorbed almost entirely by the sheddable tier and the
// critical tier rides through the crowd inside its SLO.
func FigO2(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	opts.Concurrency = 10
	opts.QueueCapacity = 192
	total := opts.Duration
	if total <= 0 {
		total = 10 * time.Minute
		opts.Duration = total
	}
	sc, flashFrom, flashTo := flashCrowdScenario(total)
	flashAbs := opts.WarmUp + flashFrom
	opts.OverloadTierMix = []int{overload.TierCritical, overload.TierDefault, overload.TierSheddable}

	resPolicy := &resilience.Policy{Deadline: 500 * time.Millisecond}
	configs := []struct {
		label  string
		policy *overload.Policy
	}{
		{"no control", &overload.Policy{}},
		{"tiered shedding", figO2OverloadPolicy()},
	}
	stats := make([]*OverloadStats, len(configs))
	err := ForEach(opts.Parallel, len(configs), func(i int) error {
		cfgOpts := opts
		cfgOpts.Resilience = resPolicy
		cfgOpts.Overload = configs[i].policy
		s, err := RunOverloadScenarioTrace(sc, AlgoRoundRobin, cfgOpts)
		stats[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "figO2", Title: "Flash crowd: criticality-tiered shedding vs undifferentiated collapse", SeriesStep: time.Second}
	for i, cfg := range configs {
		s := stats[i]
		label := cfg.label
		r.AddRow(label+" success", s.Recorder.SuccessRate()*100, "%", NoPaper)
		for tier := 0; tier < overload.NumTiers; tier++ {
			trec := s.TierRecorders[tier]
			if trec == nil {
				continue
			}
			tname := overload.TierName(tier)
			series := trec.SuccessRateSeries()
			from := int(flashAbs / trec.BucketWidth())
			if from > len(series) {
				from = len(series)
			}
			viol := chaos.SLOViolation(series[from:], trec.BucketWidth(), chaosSLOThreshold)
			r.AddRow(label+" "+tname+" success", trec.SuccessRate()*100, "%", NoPaper)
			r.AddRow(label+" "+tname+" SLO violation", viol.Seconds(), "s", NoPaper)
			if cfg.policy.Enabled() {
				r.AddRow(label+" "+tname+" shed", s.Shed[tier], "", NoPaper)
			}
			r.AddSeries("success_"+label+"_"+tname, series)
		}
		if cfg.policy.Enabled() {
			r.AddRow(label+" codel drops", s.CodelDropped, "", NoPaper)
			r.AddRow(label+" tier re-admits", s.Readmits, "", NoPaper)
			r.AddRow(label+" max queue delay", msOf(s.MaxSojourn), "ms", NoPaper)
			r.AddRow(label+" final limit", float64(s.FinalLimit), "", NoPaper)
		}
	}
	r.Note("flash crowd: 250 rps → 1200 rps (2.4x the ~500 rps capacity) from %v to %v after warm-up; tiers cycle critical/default/sheddable; deadline 500ms, no retries", flashFrom, flashTo)
	r.Note("expectation: without control every tier collapses together (queueing alone exceeds the deadline); with the gate, shed counts order sheddable > default > critical ≈ 0 and the critical tier's SLO violation stays near zero through the flash")
	return r, nil
}
