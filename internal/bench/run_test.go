package bench

import (
	"testing"
	"time"

	"l3/internal/retry"
	"l3/internal/trace"
)

// quick returns options that shrink the measured window so unit tests stay
// fast; the orderings under test are visible within two minutes.
func quick() Options {
	return Options{Seed: 1, WarmUp: 30 * time.Second, Duration: 2 * time.Minute}
}

func TestRunScenarioUnknownName(t *testing.T) {
	if _, err := RunScenario("scenario-99", AlgoL3, quick()); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunScenarioUnknownAlgorithm(t *testing.T) {
	if _, err := RunScenario(trace.Scenario1, Algorithm(42), quick()); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunScenarioProducesTraffic(t *testing.T) {
	rec, err := RunScenario(trace.Scenario1, AlgoRoundRobin, quick())
	if err != nil {
		t.Fatal(err)
	}
	// Scenario-1 offers ~300 RPS for the 2-minute window.
	if rec.Count() < 30000 || rec.Count() > 45000 {
		t.Fatalf("recorded %d requests, want ~36k", rec.Count())
	}
	if rec.SuccessRate() != 1 {
		t.Fatalf("success = %v, scenario-1 has no failures", rec.SuccessRate())
	}
	p99 := rec.Quantile(0.99)
	if p99 < 100*time.Millisecond || p99 > 2*time.Second {
		t.Fatalf("P99 = %v, outside scenario-1's plausible band", p99)
	}
}

func TestRunScenarioDeterministicForSeed(t *testing.T) {
	a, err := RunScenario(trace.Scenario5, AlgoL3, quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(trace.Scenario5, AlgoL3, quick())
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != b.Count() || a.Quantile(0.99) != b.Quantile(0.99) {
		t.Fatalf("same seed diverged: n=%d/%d p99=%v/%v",
			a.Count(), b.Count(), a.Quantile(0.99), b.Quantile(0.99))
	}
}

func TestRunScenarioRepsAccumulate(t *testing.T) {
	single, err := RunScenario(trace.Scenario5, AlgoRoundRobin, quick())
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	o.Reps = 2
	double, err := RunScenario(trace.Scenario5, AlgoRoundRobin, o)
	if err != nil {
		t.Fatal(err)
	}
	lo := uint64(float64(single.Count()) * 1.7)
	hi := uint64(float64(single.Count()) * 2.3)
	if double.Count() < lo || double.Count() > hi {
		t.Fatalf("2 reps recorded %d, want ~2x single's %d", double.Count(), single.Count())
	}
}

func TestL3BeatsRoundRobinOnScenario1(t *testing.T) {
	// The paper's headline ordering, on the favourable scenario.
	rr, err := RunScenario(trace.Scenario1, AlgoRoundRobin, quick())
	if err != nil {
		t.Fatal(err)
	}
	l3, err := RunScenario(trace.Scenario1, AlgoL3, quick())
	if err != nil {
		t.Fatal(err)
	}
	if l3.Quantile(0.99) >= rr.Quantile(0.99) {
		t.Fatalf("L3 P99 %v not below round-robin %v", l3.Quantile(0.99), rr.Quantile(0.99))
	}
}

func TestL3ImprovesSuccessOnFailure1(t *testing.T) {
	rr, err := RunScenario(trace.Failure1, AlgoRoundRobin, quick())
	if err != nil {
		t.Fatal(err)
	}
	l3, err := RunScenario(trace.Failure1, AlgoL3, quick())
	if err != nil {
		t.Fatal(err)
	}
	if l3.SuccessRate() <= rr.SuccessRate() {
		t.Fatalf("L3 success %v not above round-robin %v", l3.SuccessRate(), rr.SuccessRate())
	}
}

func TestRunDSBCompletes(t *testing.T) {
	rec, err := RunDSB(AlgoRoundRobin, 100, time.Minute, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() < 5500 || rec.Count() > 6500 {
		t.Fatalf("recorded %d, want ~6000", rec.Count())
	}
	if rec.SuccessRate() < 0.999 {
		t.Fatalf("success = %v", rec.SuccessRate())
	}
}

func TestFig4IsPureAndAnchored(t *testing.T) {
	r := Fig4()
	if len(r.Series["c"]) != len(r.Series["wb2000_wmu1000"]) {
		t.Fatal("series lengths differ")
	}
	if r.Rows[0].Value != 2875 {
		t.Fatalf("c=-1 anchor = %v, want 2875", r.Rows[0].Value)
	}
	// Monotone convergence toward the mean on the increase side.
	s := r.Series["wb2000_wmu1000"]
	cs := r.Series["c"]
	for i := 1; i < len(cs); i++ {
		if cs[i] <= 0 || cs[i-1] < 0 {
			continue
		}
		if s[i] > s[i-1]+1e-9 {
			t.Fatalf("increase side not monotone toward mean at c=%v", cs[i])
		}
	}
}

func TestFig1SeriesShape(t *testing.T) {
	r, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios x 3 clusters x 2 series.
	if len(r.Series) != 12 {
		t.Fatalf("series = %d, want 12", len(r.Series))
	}
	p99 := r.Series["scenario-1/cluster-2/p99_ms"]
	if len(p99) != 601 {
		t.Fatalf("series length = %d, want 601 (10 min at 1 s)", len(p99))
	}
	if maxOf(p99) > 960 {
		t.Fatalf("scenario-1 p99 max = %v ms, want <= 950", maxOf(p99))
	}
}

func TestFig2SeriesShape(t *testing.T) {
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(r.Series))
	}
	rps := r.Series["scenario-2/rps"]
	if minOf(rps) < 40 || maxOf(rps) > 210 {
		t.Fatalf("scenario-2 RPS range [%v, %v]", minOf(rps), maxOf(rps))
	}
}

func TestFig6SeriesShape(t *testing.T) {
	r, err := Fig6(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 9 {
		t.Fatalf("series = %d, want 9 (3 scenarios x 3 clusters)", len(r.Series))
	}
	if maxOf(r.Series["scenario-4/cluster-1/p99_ms"]) > 5100 {
		t.Fatal("scenario-4 p99 exceeds its 5 s cap")
	}
}

func TestRunScenarioWithStatsAccounting(t *testing.T) {
	stats, err := RunScenarioWithStats(trace.Scenario5, AlgoRoundRobin, quick())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recorder.Count() == 0 {
		t.Fatal("no requests recorded")
	}
	// Round-robin sends 2/3 of traffic to remote clusters.
	if stats.RemoteShare < 0.60 || stats.RemoteShare > 0.72 {
		t.Fatalf("RemoteShare = %v, want ~2/3 under round-robin", stats.RemoteShare)
	}
	if stats.TransferCost <= 0 {
		t.Fatalf("TransferCost = %v, want positive", stats.TransferCost)
	}
}

func TestCostLambdaReducesRemoteShare(t *testing.T) {
	plain, err := RunScenarioWithStats(trace.Scenario5, AlgoL3, quick())
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	o.CostLambda = 3e6
	costly, err := RunScenarioWithStats(trace.Scenario5, AlgoL3, o)
	if err != nil {
		t.Fatal(err)
	}
	if costly.RemoteShare >= plain.RemoteShare {
		t.Fatalf("cost-aware remote share %v not below plain %v",
			costly.RemoteShare, plain.RemoteShare)
	}
}

func TestFailoverAlgorithmRuns(t *testing.T) {
	rec, err := RunScenario(trace.Failure1, AlgoFailover, quick())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestRetryOptionLiftsSuccess(t *testing.T) {
	plain, err := RunScenario(trace.Failure1, AlgoRoundRobin, quick())
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	o.Retry = &retry.Policy{MaxAttempts: 3}
	retried, err := RunScenario(trace.Failure1, AlgoRoundRobin, o)
	if err != nil {
		t.Fatal(err)
	}
	if retried.SuccessRate() <= plain.SuccessRate() {
		t.Fatalf("retries did not lift success: %v vs %v",
			retried.SuccessRate(), plain.SuccessRate())
	}
}
