package bench

// DeriveSeed maps (base seed, repetition index) to the seed that repetition
// runs with, using a splitmix64-style finalizer: the rep index strides the
// state by the golden-ratio increment and the mix scrambles it, so
// neighbouring reps get decorrelated streams. The previous affine scheme
// (base + rep*1000003) kept reps on one arithmetic progression, which a
// seeded PCG partially echoes in its low bits; the mixed seeds share no
// structure.
func DeriveSeed(base uint64, rep int) uint64 {
	z := base + (uint64(rep)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
