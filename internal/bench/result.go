// Package bench is the experiment harness: one runner per figure of the
// paper's evaluation (§5), each producing the rows or series the paper
// reports. The runners are shared by the root-level testing.B benchmarks
// and the cmd/l3bench CLI.
//
// Figures 3 and 5 are architecture diagrams with no data; every other
// figure (1, 2, 4, 6, 7, 8, 9, 10, 11, 12) has a runner here. Absolute
// milliseconds are not expected to match the paper's EC2 testbed — the
// comparisons of interest are orderings and rough factors.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Row is one reported cell: a measured value next to the paper's value for
// the same cell (Paper = NaN when the paper gives none).
type Row struct {
	Label string
	Value float64
	Unit  string
	Paper float64
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	// Series holds named time series for the trace figures; step is
	// SeriesStep.
	Series     map[string][]float64
	SeriesStep time.Duration
	Notes      []string
}

// AddRow appends a row with a paper reference value.
func (r *Result) AddRow(label string, value float64, unit string, paper float64) {
	r.Rows = append(r.Rows, Row{Label: label, Value: value, Unit: unit, Paper: paper})
}

// AddSeries attaches a named series.
func (r *Result) AddSeries(name string, values []float64) {
	if r.Series == nil {
		r.Series = make(map[string][]float64)
	}
	r.Series[name] = values
}

// Note records a caveat or observation rendered with the result.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		width := 0
		for _, row := range r.Rows {
			if len(row.Label) > width {
				width = len(row.Label)
			}
		}
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "  %-*s  %10.2f %-3s", width, row.Label, row.Value, row.Unit)
			if !math.IsNaN(row.Paper) {
				fmt.Fprintf(&b, "   (paper: %.1f %s)", row.Paper, row.Unit)
			}
			b.WriteByte('\n')
		}
	}
	if len(r.Series) > 0 {
		names := make([]string, 0, len(r.Series))
		for name := range r.Series {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := r.Series[name]
			fmt.Fprintf(&b, "  series %-32s n=%d min=%.4g mean=%.4g max=%.4g\n",
				name, len(s), minOf(s), meanOf(s), maxOf(s))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the named series as comma-separated columns with a time
// column, for plotting.
func (r *Result) CSV() string {
	if len(r.Series) == 0 {
		return ""
	}
	names := make([]string, 0, len(r.Series))
	maxLen := 0
	for name, s := range r.Series {
		names = append(names, name)
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("t_seconds")
	for _, n := range names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	step := r.SeriesStep.Seconds()
	if step <= 0 {
		step = 1
	}
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%g", float64(i)*step)
		for _, n := range names {
			s := r.Series[n]
			b.WriteByte(',')
			if i < len(s) {
				fmt.Fprintf(&b, "%g", s[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NoPaper marks a cell the paper reports no number for.
var NoPaper = math.NaN()

func minOf(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

func meanOf(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}
