package mesh

import (
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

func newTestMesh(t *testing.T) (*Mesh, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine()
	m := New(e, sim.NewRand(1), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	return m, e
}

func constProfile(d time.Duration, ok bool) backend.Profile {
	return func(time.Duration, *sim.Rand) (time.Duration, bool) { return d, ok }
}

func addBackend(t *testing.T, m *Mesh, svc, name, cluster string, d time.Duration, ok bool) *Backend {
	t.Helper()
	b, err := m.AddBackend(svc, name, cluster, backend.Config{}, constProfile(d, ok))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// pickFirst always routes to the first backend.
type pickFirst struct{}

func (pickFirst) Pick(_ time.Duration, _, _ string, bs []*Backend) *Backend { return bs[0] }

// recordingPicker routes to the first backend and records observations.
type recordingPicker struct {
	observed []string
}

func (p *recordingPicker) Pick(_ time.Duration, _, _ string, bs []*Backend) *Backend { return bs[0] }
func (p *recordingPicker) Observe(_ time.Duration, src, b string, _ time.Duration, _ bool) {
	p.observed = append(p.observed, src+"->"+b)
}

func TestAddServiceAndBackendValidation(t *testing.T) {
	m, _ := newTestMesh(t)
	if _, err := m.AddService(""); err == nil {
		t.Fatal("empty service name accepted")
	}
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddService("api"); err == nil {
		t.Fatal("duplicate service accepted")
	}
	if _, err := m.AddBackend("nope", "b", "c1", backend.Config{}, constProfile(0, true)); err == nil {
		t.Fatal("backend for unknown service accepted")
	}
	addBackend(t, m, "api", "api-c1", "cluster-1", time.Millisecond, true)
	if _, err := m.AddBackend("api", "api-c1", "cluster-1", backend.Config{}, constProfile(0, true)); err == nil {
		t.Fatal("duplicate backend accepted")
	}
	svc, ok := m.Service("api")
	if !ok || len(svc.Backends()) != 1 {
		t.Fatal("Service lookup broken")
	}
}

func TestCallUnknownServiceErrors(t *testing.T) {
	m, _ := newTestMesh(t)
	if err := m.Call("cluster-1", "nope", func(Result) {}); err == nil {
		t.Fatal("Call to unknown service did not error")
	}
	_, _ = m.AddService("empty")
	if err := m.Call("cluster-1", "empty", func(Result) {}); err == nil {
		t.Fatal("Call to backend-less service did not error")
	}
}

func TestLocalCallLatencyIsServicePlusLocalHops(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "api-c1", "cluster-1", 100*time.Millisecond, true)
	var res Result
	if err := m.Call("cluster-1", "api", func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(time.Second)
	// 100ms exec + 2×500µs local proxy hops.
	want := 101 * time.Millisecond
	if res.Latency != want {
		t.Fatalf("latency = %v, want %v", res.Latency, want)
	}
	if !res.Success || res.Backend != "api-c1" {
		t.Fatalf("result = %+v", res)
	}
}

func TestRemoteCallAddsWANDelay(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "api-c2", "cluster-2", 100*time.Millisecond, true)
	var res Result
	_ = m.Call("cluster-1", "api", func(r Result) { res = r })
	e.RunUntil(time.Second)
	if res.Latency <= 103*time.Millisecond {
		t.Fatalf("remote latency = %v, want clearly above local path (~10ms WAN RTT)", res.Latency)
	}
	if res.Latency > 130*time.Millisecond {
		t.Fatalf("remote latency = %v, implausibly high", res.Latency)
	}
}

func TestPickerChoosesBackend(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "api-c1", "cluster-1", time.Millisecond, true)
	addBackend(t, m, "api", "api-c2", "cluster-2", time.Millisecond, true)
	if err := m.SetPicker("api", pickFirst{}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPicker("nope", pickFirst{}); err == nil {
		t.Fatal("SetPicker on unknown service accepted")
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		_ = m.Call("cluster-1", "api", func(r Result) { counts[r.Backend]++ })
	}
	e.RunUntil(time.Second)
	if counts["api-c1"] != 20 {
		t.Fatalf("picker bypassed: %v", counts)
	}
}

func TestNilPickerFallsBackToRandom(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "a", "cluster-1", time.Millisecond, true)
	addBackend(t, m, "api", "b", "cluster-2", time.Millisecond, true)
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		_ = m.Call("cluster-1", "api", func(r Result) { counts[r.Backend]++ })
	}
	e.RunUntil(time.Minute)
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("random fallback never used a backend: %v", counts)
	}
}

func TestMetricsRecorded(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "good", "cluster-1", 10*time.Millisecond, true)
	_ = m.SetPicker("api", pickFirst{})
	for i := 0; i < 10; i++ {
		_ = m.Call("cluster-1", "api", func(Result) {})
	}
	e.RunUntil(time.Second)

	reg := m.Registry()
	succ := reg.Counter(MetricResponseTotal, metrics.Labels{
		"service": "api", "backend": "good", "classification": ClassSuccess, "src": "cluster-1",
	})
	if succ.Value() != 10 {
		t.Fatalf("success counter = %v, want 10", succ.Value())
	}
	inflight := reg.Gauge(MetricInflight, metrics.Labels{"service": "api", "backend": "good", "src": "cluster-1"})
	if inflight.Value() != 0 {
		t.Fatalf("inflight at rest = %v, want 0", inflight.Value())
	}
}

func TestFailureClassification(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "bad", "cluster-1", time.Millisecond, false)
	_ = m.SetPicker("api", pickFirst{})
	var failures int
	for i := 0; i < 5; i++ {
		_ = m.Call("cluster-1", "api", func(r Result) {
			if !r.Success {
				failures++
			}
		})
	}
	e.RunUntil(time.Second)
	if failures != 5 {
		t.Fatalf("failures = %d, want 5", failures)
	}
	fail := m.Registry().Counter(MetricResponseTotal, metrics.Labels{
		"service": "api", "backend": "bad", "classification": ClassFailure, "src": "cluster-1",
	})
	if fail.Value() != 5 {
		t.Fatalf("failure counter = %v, want 5", fail.Value())
	}
}

func TestInflightGaugeDuringRequest(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "slow", "cluster-1", time.Second, true)
	_ = m.SetPicker("api", pickFirst{})
	for i := 0; i < 3; i++ {
		_ = m.Call("cluster-1", "api", func(Result) {})
	}
	inflight := m.Registry().Gauge(MetricInflight, metrics.Labels{"service": "api", "backend": "slow", "src": "cluster-1"})
	if inflight.Value() != 3 {
		t.Fatalf("inflight right after issue = %v, want 3", inflight.Value())
	}
	e.RunUntil(500 * time.Millisecond)
	if inflight.Value() != 3 {
		t.Fatalf("inflight mid-flight = %v, want 3", inflight.Value())
	}
	e.RunUntil(5 * time.Second)
	if inflight.Value() != 0 {
		t.Fatalf("inflight after completion = %v, want 0", inflight.Value())
	}
}

func TestObserverReceivesFeedback(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "x", "cluster-1", time.Millisecond, true)
	p := &recordingPicker{}
	_ = m.SetPicker("api", p)
	for i := 0; i < 4; i++ {
		_ = m.Call("cluster-1", "api", func(Result) {})
	}
	e.RunUntil(time.Second)
	if len(p.observed) != 4 {
		t.Fatalf("observer saw %d responses, want 4", len(p.observed))
	}
}

func TestRejectedRequestIsFailure(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	b, err := m.AddBackend("api", "tiny", "cluster-1",
		backend.Config{Concurrency: 1, QueueCapacity: 1}, constProfile(time.Second, true))
	if err != nil {
		t.Fatal(err)
	}
	_ = b
	_ = m.SetPicker("api", pickFirst{})
	var results []Result
	for i := 0; i < 3; i++ {
		_ = m.Call("cluster-1", "api", func(r Result) { results = append(results, r) })
	}
	e.RunUntil(time.Minute)
	failures := 0
	for _, r := range results {
		if !r.Success {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("shed request not classified as failure: %+v", results)
	}
}

func TestNewPanicsOnNilDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil deps) did not panic")
		}
	}()
	New(nil, nil, nil, nil)
}

func TestMetricsSeparatedBySourceCluster(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "b", "cluster-1", time.Millisecond, true)
	_ = m.SetPicker("api", pickFirst{})
	for i := 0; i < 3; i++ {
		_ = m.Call("cluster-1", "api", func(Result) {})
	}
	for i := 0; i < 7; i++ {
		_ = m.Call("cluster-2", "api", func(Result) {})
	}
	e.RunUntil(time.Second)
	reg := m.Registry()
	c1 := reg.Counter(MetricResponseTotal, metrics.Labels{
		"service": "api", "backend": "b", "classification": ClassSuccess, "src": "cluster-1",
	})
	c2 := reg.Counter(MetricResponseTotal, metrics.Labels{
		"service": "api", "backend": "b", "classification": ClassSuccess, "src": "cluster-2",
	})
	if c1.Value() != 3 || c2.Value() != 7 {
		t.Fatalf("per-source counters = %v/%v, want 3/7", c1.Value(), c2.Value())
	}
}

func TestPickerReceivesSourceCluster(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "b", "cluster-1", time.Millisecond, true)
	p := &srcRecorder{}
	_ = m.SetPicker("api", p)
	_ = m.Call("cluster-3", "api", func(Result) {})
	e.RunUntil(time.Second)
	if len(p.srcs) != 1 || p.srcs[0] != "cluster-3" {
		t.Fatalf("picker saw srcs %v", p.srcs)
	}
}

type srcRecorder struct{ srcs []string }

func (s *srcRecorder) Pick(_ time.Duration, src, _ string, bs []*Backend) *Backend {
	s.srcs = append(s.srcs, src)
	return bs[0]
}
