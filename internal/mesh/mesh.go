// Package mesh is the multi-cluster service-mesh data plane of the
// reproduction: services with backend deployments spread across clusters,
// and client-side proxies that route each request to a backend, add WAN
// transit, and record Linkerd-style data-plane metrics (response_total,
// response_latency, request_inflight) into a metrics registry that the
// Prometheus-flavoured pipeline scrapes.
//
// Routing strategy is pluggable through the Picker interface; the paper's
// TrafficSplit-driven weighted distribution, round-robin and the C3
// adaptation all live in internal/balancer and internal/c3.
//
// Fidelity note: the sidecar proxy's own forwarding overhead (~sub-ms
// median per the Linkerd benchmark study §4 cites) is folded into the WAN
// model's local delay rather than modelled separately.
package mesh

import (
	"fmt"
	"time"

	"l3/internal/backend"
	"l3/internal/histogram"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/wan"
)

// Metric family names, mirroring Linkerd's proxy metrics.
const (
	// MetricResponseTotal counts responses, labelled by service, backend
	// and classification (success/failure).
	MetricResponseTotal = "response_total"
	// MetricResponseLatency is the response-latency histogram in seconds,
	// labelled like MetricResponseTotal.
	MetricResponseLatency = "response_latency"
	// MetricInflight gauges requests issued but not yet answered, per
	// service and backend.
	MetricInflight = "request_inflight"
)

// Classification label values.
const (
	ClassSuccess = "success"
	ClassFailure = "failure"
)

// Server is anything that can serve a request arriving at a backend: a
// plain replica pool (backend.Replica) or an application-level node that
// issues nested mesh calls of its own (internal/dsb's microservices).
type Server interface {
	// Serve accepts one request at the current virtual time; done must be
	// invoked exactly once.
	Serve(done func(backend.Result))
}

// Backend is one deployment of a service in one cluster, addressable as a
// TrafficSplit backend.
type Backend struct {
	// Name is the backend service name (e.g. "api-cluster-2"), matching
	// the TrafficSplit backend entry.
	Name string
	// Cluster hosts the deployment.
	Cluster string
	// Server models the deployment's serving behaviour.
	Server Server

	// routes caches the resolved metric handles per source cluster. The
	// slice is tiny (one entry per source cluster) so a linear scan beats
	// any map, and the steady-state request path touches no maps at all.
	routes []*routeStats
}

// Picker chooses a backend for one request. Implementations may keep state
// (round-robin counters, EWMA scores) and may consult the TrafficSplit
// store.
type Picker interface {
	// Pick chooses among backends for a request originating in cluster
	// src. Per-source state lets strategies behave like real per-proxy
	// balancers (and lets TrafficSplit-driven strategies read the source
	// cluster's split, as a multi-cluster mesh does).
	Pick(now time.Duration, src, service string, backends []*Backend) *Backend
}

// Observer is optionally implemented by Pickers that want per-response
// feedback (per-request balancers like P2C/PeakEWMA need it; TrafficSplit
// weighted balancers do not).
type Observer interface {
	Observe(now time.Duration, src, backendName string, latency time.Duration, success bool)
}

// SpanRecorder receives one span per completed request, carrying both the
// client-observed timing and the backend-side duration — the feed a
// distributed-tracing pipeline (internal/tracing) consumes. Implementations
// must be cheap; they run on every response.
type SpanRecorder interface {
	RecordSpan(service, backendName, src string, start, end, serverDuration time.Duration, success bool)
}

// Result is the client-observed outcome of one request: end-to-end latency
// including WAN transit and queueing, plus the chosen backend.
type Result struct {
	Backend string
	Latency time.Duration
	Success bool
}

// Service is a routable service with backends in one or more clusters.
type Service struct {
	name     string
	backends []*Backend
	picker   Picker
	// observer is picker's Observer view, resolved once at SetPicker time so
	// the per-request path skips the type assertion and a mid-flight picker
	// swap cannot feed responses to a picker that never saw the pick.
	observer Observer
}

// Backends returns the service's deployments (shared slice; do not mutate).
func (s *Service) Backends() []*Backend { return s.backends }

// DefaultLostTimeout is how long a client waits on a request lost to a WAN
// partition before counting it as failed — the request timeout of an HTTP
// client talking into a blackholed link.
const DefaultLostTimeout = time.Second

// Mesh wires clusters, services, WAN and metrics together.
type Mesh struct {
	engine      *sim.Engine
	rng         *sim.Rand
	wan         *wan.Model
	registry    *metrics.Registry
	splits      *smi.Store
	services    map[string]*Service
	spans       SpanRecorder
	lostTimeout time.Duration
	// freeCalls recycles per-request state (and its pre-bound closures)
	// between requests; like the engine, a Mesh is single-threaded, so the
	// free list needs no lock.
	freeCalls []*call
}

// classStats holds the resolved response handles of one classification
// (success or failure) of one route. Handles resolve lazily on the first
// response of that classification, so the registry's series set and
// registration order are exactly what the label-built path produced.
type classStats struct {
	total   *metrics.Counter
	latency *metrics.Histogram
}

// routeStats caches the metric handles of one (service, backend, src)
// route. After the first few requests resolve its handles, a request
// records its metrics through pointer loads alone: no label maps, no series
// keys, no registry lock.
type routeStats struct {
	src     string
	service string
	backend string
	// inflight resolves when the route is first used (call time).
	inflight *metrics.Gauge
	success  classStats
	failure  classStats
}

// class returns the classification's resolved handles, registering the
// counter and histogram series on first use — counter first, histogram
// second, matching the order the label-built path registered them in.
func (rs *routeStats) class(reg *metrics.Registry, success bool) *classStats {
	cs, name := &rs.failure, ClassFailure
	if success {
		cs, name = &rs.success, ClassSuccess
	}
	if cs.total == nil {
		labels := metrics.Labels{
			"service": rs.service, "backend": rs.backend, "src": rs.src,
			"classification": name,
		}
		cs.total = reg.Counter(MetricResponseTotal, labels)
		cs.latency = reg.Histogram(MetricResponseLatency, labels, histogram.LinkerdLatencyBounds)
	}
	return cs
}

// route returns the cached routeStats for (service, b, src), resolving the
// inflight gauge (and the cache entry) on the route's first request.
func (m *Mesh) route(service string, b *Backend, src string) *routeStats {
	for _, rs := range b.routes {
		if rs.src == src {
			return rs
		}
	}
	labels := metrics.Labels{"service": service, "backend": b.Name, "src": src}
	rs := &routeStats{
		src: src, service: service, backend: b.Name,
		inflight: m.registry.Gauge(MetricInflight, labels),
	}
	b.routes = append(b.routes, rs)
	return rs
}

// call is the pooled per-request state: everything the completion path
// needs, plus the three callbacks of the request lifecycle bound once per
// struct (they capture only the struct pointer), so a steady-state request
// allocates neither closures nor state.
type call struct {
	m         *Mesh
	b         *Backend
	rs        *routeStats
	obs       Observer
	src       string
	start     time.Duration
	serverDur time.Duration
	success   bool
	done      func(Result)

	forward   func()               // fires after the forward WAN hop
	serveDone func(backend.Result) // the backend's completion callback
	finishFn  func()               // fires after the return WAN hop/timeout
}

// getCall pops a recycled request (or builds one, binding its callbacks).
func (m *Mesh) getCall() *call {
	if n := len(m.freeCalls); n > 0 {
		c := m.freeCalls[n-1]
		m.freeCalls[n-1] = nil
		m.freeCalls = m.freeCalls[:n-1]
		return c
	}
	c := &call{m: m}
	c.forward = func() { c.b.Server.Serve(c.serveDone) }
	c.serveDone = func(res backend.Result) { c.onServed(res) }
	c.finishFn = func() { c.finish() }
	return c
}

// putCall recycles a finished request, dropping caller references.
func (m *Mesh) putCall(c *call) {
	c.b, c.rs, c.obs, c.done = nil, nil, nil, nil
	m.freeCalls = append(m.freeCalls, c)
}

// New returns an empty mesh. All arguments are required.
func New(engine *sim.Engine, rng *sim.Rand, wanModel *wan.Model, registry *metrics.Registry) *Mesh {
	if engine == nil || rng == nil || wanModel == nil || registry == nil {
		panic("mesh: New requires engine, rng, wan model and registry")
	}
	return &Mesh{
		engine:      engine,
		rng:         rng,
		wan:         wanModel,
		registry:    registry,
		splits:      smi.NewStore(),
		services:    make(map[string]*Service),
		lostTimeout: DefaultLostTimeout,
	}
}

// SetLostTimeout overrides the client timeout applied to requests lost to a
// WAN partition. Non-positive values restore the default. Requests on
// healthy links are never subject to this timeout.
func (m *Mesh) SetLostTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultLostTimeout
	}
	m.lostTimeout = d
}

// Splits exposes the mesh's TrafficSplit store — the write-side interface
// controllers like L3 use.
func (m *Mesh) Splits() *smi.Store { return m.splits }

// Registry exposes the data-plane metrics registry (scraped by the
// timeseries pipeline).
func (m *Mesh) Registry() *metrics.Registry { return m.registry }

// Engine returns the mesh's simulation engine.
func (m *Mesh) Engine() *sim.Engine { return m.engine }

// SetSpanRecorder installs a tracing sink (nil disables tracing).
func (m *Mesh) SetSpanRecorder(r SpanRecorder) { m.spans = r }

// AddService registers a service. It errors if the name is taken.
func (m *Mesh) AddService(name string) (*Service, error) {
	if name == "" {
		return nil, fmt.Errorf("mesh: empty service name")
	}
	if _, ok := m.services[name]; ok {
		return nil, fmt.Errorf("mesh: service %q already exists", name)
	}
	svc := &Service{name: name}
	m.services[name] = svc
	return svc, nil
}

// Service returns a registered service.
func (m *Mesh) Service(name string) (*Service, bool) {
	svc, ok := m.services[name]
	return svc, ok
}

// AddBackend deploys a replica-pool backend of the named service into a
// cluster. The backend name must be unique within the service.
func (m *Mesh) AddBackend(service, backendName, cluster string, cfg backend.Config, profile backend.Profile) (*Backend, error) {
	cfg.Name = backendName
	return m.AddServerBackend(service, backendName, cluster,
		backend.New(m.engine, m.rng.Fork(), cfg, profile))
}

// AddServerBackend deploys an arbitrary Server as a backend of the named
// service — the hook application-level models (internal/dsb) use.
func (m *Mesh) AddServerBackend(service, backendName, cluster string, srv Server) (*Backend, error) {
	svc, ok := m.services[service]
	if !ok {
		return nil, fmt.Errorf("mesh: unknown service %q", service)
	}
	if srv == nil {
		return nil, fmt.Errorf("mesh: nil server for backend %q", backendName)
	}
	for _, b := range svc.backends {
		if b.Name == backendName {
			return nil, fmt.Errorf("mesh: backend %q already exists in service %q", backendName, service)
		}
	}
	b := &Backend{Name: backendName, Cluster: cluster, Server: srv}
	svc.backends = append(svc.backends, b)
	return b, nil
}

// SetPicker installs the routing strategy for a service. The picker's
// Observer view is resolved here, once, so requests in flight across a
// picker swap keep reporting to the picker that made their pick.
func (m *Mesh) SetPicker(service string, p Picker) error {
	svc, ok := m.services[service]
	if !ok {
		return fmt.Errorf("mesh: unknown service %q", service)
	}
	svc.picker = p
	svc.observer, _ = p.(Observer)
	return nil
}

// Picker returns the routing strategy currently installed for a service
// (nil when the service is unknown or has no picker). Wrapping layers —
// health failover, the resilience circuit breaker — read the installed
// strategy here and re-install their filtered view through SetPicker.
func (m *Mesh) Picker(service string) Picker {
	if svc, ok := m.services[service]; ok {
		return svc.picker
	}
	return nil
}

// Call issues one request from srcCluster to the named service. done fires
// exactly once with the client-observed result. The request path is:
// client proxy (pick backend, start metrics) → WAN to the backend's cluster
// → backend queue/execution → WAN back → client proxy (record metrics).
func (m *Mesh) Call(srcCluster, service string, done func(Result)) error {
	svc, ok := m.services[service]
	if !ok {
		return fmt.Errorf("mesh: unknown service %q", service)
	}
	if len(svc.backends) == 0 {
		return fmt.Errorf("mesh: service %q has no backends", service)
	}

	now := m.engine.Now()
	// Bind the picker and its Observer view at pick time: a SetPicker swap
	// mid-flight must not feed this response to a picker that never saw the
	// pick.
	picker, obs := svc.picker, svc.observer
	var b *Backend
	if picker != nil {
		b = picker.Pick(now, srcCluster, service, svc.backends)
	}
	if b == nil {
		b = svc.backends[m.rng.IntN(len(svc.backends))]
	}

	c := m.getCall()
	c.b, c.rs, c.obs = b, m.route(service, b, srcCluster), obs
	c.src, c.start, c.done = srcCluster, now, done
	c.rs.inflight.Inc()

	// A partitioned forward link swallows the request: the client observes
	// nothing until its timeout trips and counts the request as failed. The
	// return link is checked again at response time, so a partition injected
	// mid-request still blackholes the response.
	if m.wan.Partitioned(srcCluster, b.Cluster) {
		c.success, c.serverDur = false, 0
		m.engine.Schedule(now+m.lostTimeout, c.finishFn)
		return nil
	}
	forward := m.wan.OneWayDelay(srcCluster, b.Cluster, now)
	m.engine.ScheduleAfter(forward, c.forward)
	return nil
}

// onServed is the backend-completion leg of a request: check the return
// link, then schedule the finish after the return hop (or at the client
// timeout when the link is partitioned — Schedule clamps to "now" when the
// timeout already passed while the backend was serving).
func (c *call) onServed(res backend.Result) {
	m := c.m
	if m.wan.Partitioned(c.b.Cluster, c.src) {
		c.success, c.serverDur = false, res.Latency
		m.engine.Schedule(c.start+m.lostTimeout, c.finishFn)
		return
	}
	back := m.wan.OneWayDelay(c.b.Cluster, c.src, m.engine.Now())
	c.success, c.serverDur = res.Success && !res.Rejected, res.Latency
	m.engine.ScheduleAfter(back, c.finishFn)
}

// finish records the response at the client proxy — inflight, spans,
// response_total, response_latency, Observer feedback — through the route's
// cached handles, recycles the request state, and completes the caller.
func (c *call) finish() {
	m := c.m
	end := m.engine.Now()
	latency := end - c.start
	c.rs.inflight.Dec()
	if m.spans != nil {
		m.spans.RecordSpan(c.rs.service, c.b.Name, c.src, c.start, end, c.serverDur, c.success)
	}
	cs := c.rs.class(m.registry, c.success)
	cs.total.Inc()
	cs.latency.Observe(latency.Seconds())
	if c.obs != nil {
		c.obs.Observe(end, c.src, c.b.Name, latency, c.success)
	}
	done, backendName, success := c.done, c.b.Name, c.success
	m.putCall(c) // recycle before done: the callback may issue nested Calls
	done(Result{Backend: backendName, Latency: latency, Success: success})
}

// Probe issues one health probe from cluster src directly to backend b: WAN
// transit both ways, no load balancing, no data-plane metrics (probes are
// not client traffic). done fires with the probe outcome — unless either
// direction is partitioned, in which case done never fires and the caller's
// probe timeout counts the probe as failed, exactly as a real checker
// behind a blackholed link would observe.
func (m *Mesh) Probe(src string, b *Backend, done func(success bool)) {
	now := m.engine.Now()
	if m.wan.Partitioned(src, b.Cluster) {
		return
	}
	m.engine.After(m.wan.OneWayDelay(src, b.Cluster, now), func() {
		b.Server.Serve(func(res backend.Result) {
			back := m.engine.Now()
			if m.wan.Partitioned(b.Cluster, src) {
				return
			}
			m.engine.After(m.wan.OneWayDelay(b.Cluster, src, back), func() {
				done(res.Success && !res.Rejected)
			})
		})
	})
}
