// Package mesh is the multi-cluster service-mesh data plane of the
// reproduction: services with backend deployments spread across clusters,
// and client-side proxies that route each request to a backend, add WAN
// transit, and record Linkerd-style data-plane metrics (response_total,
// response_latency, request_inflight) into a metrics registry that the
// Prometheus-flavoured pipeline scrapes.
//
// Routing strategy is pluggable through the Picker interface; the paper's
// TrafficSplit-driven weighted distribution, round-robin and the C3
// adaptation all live in internal/balancer and internal/c3.
//
// A Mesh runs in one of two modes. The classic mode (New) drives everything
// on one sim.Engine. The sharded mode (NewSharded) keys one logical shard
// per cluster on a sim.ShardedEngine: each cluster's backends, load and
// client proxies execute on their own event loop with their own metrics
// registry, rng stream and request pool, and a WAN-traversing call crosses
// shards as a conservative lookahead message (forward hop to the backend's
// shard, return hop back to the source shard, where the response metrics are
// recorded). Since every piece of per-request state is confined to one shard
// at a time, the sharded data plane needs no locks and stays deterministic
// at any worker count.
//
// Fidelity note: the sidecar proxy's own forwarding overhead (~sub-ms
// median per the Linkerd benchmark study §4 cites) is folded into the WAN
// model's local delay rather than modelled separately.
package mesh

import (
	"fmt"
	"sync"
	"time"

	"l3/internal/backend"
	"l3/internal/histogram"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/smi"
	"l3/internal/wan"
)

// Metric family names, mirroring Linkerd's proxy metrics.
const (
	// MetricResponseTotal counts responses, labelled by service, backend
	// and classification (success/failure).
	MetricResponseTotal = "response_total"
	// MetricResponseLatency is the response-latency histogram in seconds,
	// labelled like MetricResponseTotal.
	MetricResponseLatency = "response_latency"
	// MetricInflight gauges requests issued but not yet answered, per
	// service and backend.
	MetricInflight = "request_inflight"
)

// Classification label values.
const (
	ClassSuccess = "success"
	ClassFailure = "failure"
)

// Server is anything that can serve a request arriving at a backend: a
// plain replica pool (backend.Replica) or an application-level node that
// issues nested mesh calls of its own (internal/dsb's microservices).
type Server interface {
	// Serve accepts one request at the current virtual time; done must be
	// invoked exactly once.
	Serve(done func(backend.Result))
}

// Backend is one deployment of a service in one cluster, addressable as a
// TrafficSplit backend.
type Backend struct {
	// Name is the backend service name (e.g. "api-cluster-2"), matching
	// the TrafficSplit backend entry.
	Name string
	// Cluster hosts the deployment.
	Cluster string
	// Server models the deployment's serving behaviour.
	Server Server

	// routes caches the resolved metric handles per source cluster, one
	// bucket per mesh shard (classic mode has exactly one). Each inner
	// slice is tiny (one entry per source cluster) so a linear scan beats
	// any map, and the steady-state request path touches no maps at all.
	// Bucket i is only touched by shard i's execution, so the cache needs
	// no lock in sharded mode.
	routes [][]*routeStats
}

// Picker chooses a backend for one request. Implementations may keep state
// (round-robin counters, EWMA scores) and may consult the TrafficSplit
// store.
type Picker interface {
	// Pick chooses among backends for a request originating in cluster
	// src. Per-source state lets strategies behave like real per-proxy
	// balancers (and lets TrafficSplit-driven strategies read the source
	// cluster's split, as a multi-cluster mesh does).
	Pick(now time.Duration, src, service string, backends []*Backend) *Backend
}

// Observer is optionally implemented by Pickers that want per-response
// feedback (per-request balancers like P2C/PeakEWMA need it; TrafficSplit
// weighted balancers do not).
type Observer interface {
	Observe(now time.Duration, src, backendName string, latency time.Duration, success bool)
}

// SpanRecorder receives one span per completed request, carrying both the
// client-observed timing and the backend-side duration — the feed a
// distributed-tracing pipeline (internal/tracing) consumes. Implementations
// must be cheap; they run on every response.
type SpanRecorder interface {
	RecordSpan(service, backendName, src string, start, end, serverDuration time.Duration, success bool)
}

// Result is the client-observed outcome of one request: end-to-end latency
// including WAN transit and queueing, plus the chosen backend.
type Result struct {
	Backend string
	Latency time.Duration
	Success bool
}

// Service is a routable service with backends in one or more clusters.
type Service struct {
	name     string
	backends []*Backend
	// pickers holds the routing strategy per mesh shard (classic mode uses
	// slot 0 only). Stateful pickers must be distinct instances per shard —
	// they execute concurrently during windows.
	pickers []Picker
	// observers are the pickers' Observer views, resolved once at
	// SetPicker/SetShardPicker time so the per-request path skips the type
	// assertion and a mid-flight picker swap cannot feed responses to a
	// picker that never saw the pick.
	observers []Observer
}

// Backends returns the service's deployments (shared slice; do not mutate).
func (s *Service) Backends() []*Backend { return s.backends }

// DefaultLostTimeout is how long a client waits on a request lost to a WAN
// partition before counting it as failed — the request timeout of an HTTP
// client talking into a blackholed link.
const DefaultLostTimeout = time.Second

// meshShard is the per-shard slice of the data plane: the event loop,
// metrics registry, rng stream and request pool owned by one cluster's
// logical shard. Classic mode has exactly one, wrapping the caller's engine,
// rng and registry.
type meshShard struct {
	id      int
	cluster string // "" in classic mode (one shard hosts every cluster)
	engine  *sim.Engine
	shard   *sim.Shard // nil in classic mode
	// rng is the shard's private stream. Classic mode holds the caller's
	// stream; sharded shards fork theirs lazily off the wiring stream on
	// first use, which keeps the wiring stream's draw sequence — and so the
	// backend rngs forked from it — identical to classic mode.
	rng      *sim.Rand
	registry *metrics.Registry
	// spans is the shard's tracing sink. Per-shard because finish() runs on
	// the source shard's timeline; a recorder shared across shards would be
	// written concurrently during windows.
	spans SpanRecorder
	// freeCalls recycles per-request state (and its pre-bound closures)
	// between requests. A call struct belongs to its source shard for life:
	// it is taken from and returned to this pool on the shard's own
	// timeline, so the free list needs no lock.
	freeCalls []*call
}

// Mesh wires clusters, services, WAN and metrics together.
type Mesh struct {
	wan         *wan.Model
	splits      *smi.Store
	services    map[string]*Service
	lostTimeout time.Duration

	// wiringRng is the stream every AddBackend forks a backend rng from, in
	// call order — the same discipline in both modes, so a sharded run's
	// backend streams are exactly a classic run's. Classic mode aliases it
	// to shard 0's rng.
	wiringRng *sim.Rand
	rngMu     sync.Mutex // guards lazy shard-rng forks off wiringRng

	shards         []*meshShard
	shardByCluster map[string]int // sharded mode only
	se             *sim.ShardedEngine
}

// classStats holds the resolved response handles of one classification
// (success or failure) of one route. Handles resolve lazily on the first
// response of that classification, so the registry's series set and
// registration order are exactly what the label-built path produced.
type classStats struct {
	total   *metrics.Counter
	latency *metrics.Histogram
}

// routeStats caches the metric handles of one (service, backend, src)
// route in one shard's registry. After the first few requests resolve its
// handles, a request records its metrics through pointer loads alone: no
// label maps, no series keys, no registry lock.
type routeStats struct {
	src     string
	service string
	backend string
	reg     *metrics.Registry // the source shard's registry
	// dst is the shard hosting the backend, resolved once at route-cache
	// creation so the per-call path never touches the cluster map (classic
	// mode: the one shard).
	dst *meshShard
	// inflight resolves when the route is first used (call time).
	inflight *metrics.Gauge
	success  classStats
	failure  classStats
}

// class returns the classification's resolved handles, registering the
// counter and histogram series on first use — counter first, histogram
// second, matching the order the label-built path registered them in.
func (rs *routeStats) class(success bool) *classStats {
	cs, name := &rs.failure, ClassFailure
	if success {
		cs, name = &rs.success, ClassSuccess
	}
	if cs.total == nil {
		labels := metrics.Labels{
			"service": rs.service, "backend": rs.backend, "src": rs.src,
			"classification": name,
		}
		cs.total = rs.reg.Counter(MetricResponseTotal, labels)
		cs.latency = rs.reg.Histogram(MetricResponseLatency, labels, histogram.LinkerdLatencyBounds)
	}
	return cs
}

// route returns the cached routeStats for (service, b, src) in the source
// shard's bucket, resolving the inflight gauge (and the cache entry) on the
// route's first request.
func (m *Mesh) route(service string, b *Backend, src string, ss *meshShard) *routeStats {
	for _, rs := range b.routes[ss.id] {
		if rs.src == src {
			return rs
		}
	}
	labels := metrics.Labels{"service": service, "backend": b.Name, "src": src}
	rs := &routeStats{
		src: src, service: service, backend: b.Name, reg: ss.registry,
		dst:      ss,
		inflight: ss.registry.Gauge(MetricInflight, labels),
	}
	if m.se != nil {
		if ds, err := m.shardFor(b.Cluster); err == nil {
			rs.dst = ds
		}
	}
	b.routes[ss.id] = append(b.routes[ss.id], rs)
	return rs
}

// call is the pooled per-request state: everything the completion path
// needs, plus the three callbacks of the request lifecycle bound once per
// struct (they capture only the struct pointer), so a steady-state request
// allocates neither closures nor state.
type call struct {
	m         *Mesh
	ss        *meshShard // source shard: pick, metrics, finish (never cleared)
	dst       *meshShard // destination shard: serve, return hop
	b         *Backend
	rs        *routeStats
	obs       Observer
	src       string
	start     time.Duration
	serverDur time.Duration
	success   bool
	done      func(Result)

	forward   func()               // fires after the forward WAN hop
	serveDone func(backend.Result) // the backend's completion callback
	finishFn  func()               // fires after the return WAN hop/timeout
}

// getCall pops a recycled request (or builds one, binding its callbacks).
func (ss *meshShard) getCall(m *Mesh) *call {
	if n := len(ss.freeCalls); n > 0 {
		c := ss.freeCalls[n-1]
		ss.freeCalls[n-1] = nil
		ss.freeCalls = ss.freeCalls[:n-1]
		return c
	}
	c := &call{m: m, ss: ss}
	c.forward = func() { c.b.Server.Serve(c.serveDone) }
	c.serveDone = func(res backend.Result) { c.onServed(res) }
	c.finishFn = func() { c.finish() }
	return c
}

// putCall recycles a finished request into its source shard's pool,
// dropping caller references.
func (c *call) putCall() {
	ss := c.ss
	c.b, c.rs, c.obs, c.done, c.dst = nil, nil, nil, nil, nil
	ss.freeCalls = append(ss.freeCalls, c)
}

// New returns an empty mesh in classic single-engine mode. All arguments
// are required.
func New(engine *sim.Engine, rng *sim.Rand, wanModel *wan.Model, registry *metrics.Registry) *Mesh {
	if engine == nil || rng == nil || wanModel == nil || registry == nil {
		panic("mesh: New requires engine, rng, wan model and registry")
	}
	return &Mesh{
		wan:         wanModel,
		splits:      smi.NewStore(),
		services:    make(map[string]*Service),
		lostTimeout: DefaultLostTimeout,
		wiringRng:   rng,
		shards: []*meshShard{{
			engine: engine, rng: rng, registry: registry,
		}},
	}
}

// NewSharded returns an empty mesh in sharded mode on se: one logical shard
// per cluster, in the given order (shard i hosts clusters[i]). Every shard
// gets its own metrics registry; rng becomes the wiring stream, consumed in
// the same order a classic mesh consumes it (one fork per AddBackend, then
// lazy per-shard forks on first RngFor), so a sharded run draws the exact
// backend rng streams a classic run with the same seed does. se's lookahead
// must lower-bound wanModel.MinOneWayDelay(); callers derive it from there.
func NewSharded(se *sim.ShardedEngine, clusters []string, rng *sim.Rand, wanModel *wan.Model) (*Mesh, error) {
	if se == nil || rng == nil || wanModel == nil {
		panic("mesh: NewSharded requires sharded engine, rng and wan model")
	}
	if len(clusters) != se.NumShards() {
		return nil, fmt.Errorf("mesh: %d clusters for %d shards", len(clusters), se.NumShards())
	}
	m := &Mesh{
		wan:            wanModel,
		splits:         smi.NewStore(),
		services:       make(map[string]*Service),
		lostTimeout:    DefaultLostTimeout,
		wiringRng:      rng,
		shards:         make([]*meshShard, len(clusters)),
		shardByCluster: make(map[string]int, len(clusters)),
		se:             se,
	}
	for i, cl := range clusters {
		if _, dup := m.shardByCluster[cl]; dup {
			return nil, fmt.Errorf("mesh: duplicate cluster %q", cl)
		}
		m.shardByCluster[cl] = i
		m.shards[i] = &meshShard{
			id: i, cluster: cl,
			engine:   se.Shard(i).Engine(),
			shard:    se.Shard(i),
			registry: metrics.NewRegistry(),
		}
	}
	return m, nil
}

// Sharded reports whether the mesh runs in sharded mode.
func (m *Mesh) Sharded() bool { return m.se != nil }

// shardFor resolves the shard hosting a cluster. Classic mode hosts every
// cluster on shard 0.
func (m *Mesh) shardFor(cluster string) (*meshShard, error) {
	if m.se == nil {
		return m.shards[0], nil
	}
	i, ok := m.shardByCluster[cluster]
	if !ok {
		return nil, fmt.Errorf("mesh: unknown cluster %q", cluster)
	}
	return m.shards[i], nil
}

// SetLostTimeout overrides the client timeout applied to requests lost to a
// WAN partition. Non-positive values restore the default. Requests on
// healthy links are never subject to this timeout.
func (m *Mesh) SetLostTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultLostTimeout
	}
	m.lostTimeout = d
}

// Splits exposes the mesh's TrafficSplit store — the write-side interface
// controllers like L3 use. In sharded mode, writes must happen on the
// control engine's timeline (shards paused); reads during windows are safe.
func (m *Mesh) Splits() *smi.Store { return m.splits }

// Registry exposes the data-plane metrics registry (scraped by the
// timeseries pipeline). In sharded mode this is shard 0's registry; scrape
// loops should use Registries.
func (m *Mesh) Registry() *metrics.Registry { return m.shards[0].registry }

// Registries returns every shard's registry in shard order — what a scrape
// round reads in sharded mode (core.NewScraperMulti consumes it).
func (m *Mesh) Registries() []*metrics.Registry {
	regs := make([]*metrics.Registry, len(m.shards))
	for i, sh := range m.shards {
		regs[i] = sh.registry
	}
	return regs
}

// Clusters returns the cluster names in shard order — the canonical
// iteration order for per-shard wiring (pickers, scrapes, reductions).
func (m *Mesh) Clusters() []string {
	names := make([]string, len(m.shards))
	for i, sh := range m.shards {
		names[i] = sh.cluster
	}
	return names
}

// RegistryFor returns the registry of the shard hosting a cluster.
func (m *Mesh) RegistryFor(cluster string) (*metrics.Registry, error) {
	sh, err := m.shardFor(cluster)
	if err != nil {
		return nil, err
	}
	return sh.registry, nil
}

// Engine returns the mesh's simulation engine (shard 0's in sharded mode;
// per-cluster components should use EngineFor).
func (m *Mesh) Engine() *sim.Engine { return m.shards[0].engine }

// EngineFor returns the event loop of the shard hosting a cluster — where
// that cluster's load generators and backends must schedule.
func (m *Mesh) EngineFor(cluster string) (*sim.Engine, error) {
	sh, err := m.shardFor(cluster)
	if err != nil {
		return nil, err
	}
	return sh.engine, nil
}

// RngFor returns the rng stream of the shard hosting a cluster, for wiring
// per-cluster components (load generators) deterministically. In sharded
// mode the stream is forked off the wiring stream on first access, so a run
// that never asks for shard streams consumes the wiring stream exactly like
// a classic run.
func (m *Mesh) RngFor(cluster string) (*sim.Rand, error) {
	sh, err := m.shardFor(cluster)
	if err != nil {
		return nil, err
	}
	return m.shardRng(sh), nil
}

// shardRng returns the shard's private rng, lazily forked off the wiring
// stream. The mutex only matters for the pickerless Call fallback, which may
// first touch a shard's stream mid-window; deterministic callers fork during
// single-threaded wiring.
func (m *Mesh) shardRng(sh *meshShard) *sim.Rand {
	if sh.rng == nil {
		m.rngMu.Lock()
		if sh.rng == nil {
			sh.rng = m.wiringRng.Fork()
		}
		m.rngMu.Unlock()
	}
	return sh.rng
}

// SetSpanRecorder installs a tracing sink (nil disables tracing). In
// sharded mode the same recorder is installed on every shard: spans record
// on the *source* shard's timeline, so shards write it concurrently during
// windows — the recorder must either be safe for concurrent use or (for
// deterministic traces) be installed per shard with SetShardSpanRecorder,
// the way tracing.NewSharded wires one buffer per cluster and merges
// canonically.
func (m *Mesh) SetSpanRecorder(r SpanRecorder) {
	for _, sh := range m.shards {
		sh.spans = r
	}
}

// SetShardSpanRecorder installs the tracing sink for spans whose *source* is
// the given cluster. The recorder is private to that shard's timeline, so an
// unsynchronized single-threaded recorder is safe.
func (m *Mesh) SetShardSpanRecorder(cluster string, r SpanRecorder) error {
	sh, err := m.shardFor(cluster)
	if err != nil {
		return err
	}
	sh.spans = r
	return nil
}

// AddService registers a service. It errors if the name is taken.
func (m *Mesh) AddService(name string) (*Service, error) {
	if name == "" {
		return nil, fmt.Errorf("mesh: empty service name")
	}
	if _, ok := m.services[name]; ok {
		return nil, fmt.Errorf("mesh: service %q already exists", name)
	}
	svc := &Service{
		name:      name,
		pickers:   make([]Picker, len(m.shards)),
		observers: make([]Observer, len(m.shards)),
	}
	m.services[name] = svc
	return svc, nil
}

// Service returns a registered service.
func (m *Mesh) Service(name string) (*Service, bool) {
	svc, ok := m.services[name]
	return svc, ok
}

// AddBackend deploys a replica-pool backend of the named service into a
// cluster. The backend name must be unique within the service. The backend
// lives on the cluster's shard: its replicas schedule on that shard's
// engine and draw from an rng forked off the wiring stream in AddBackend
// order — the same fork sequence in classic and sharded mode, which is what
// lets a sharded figure reproduce a classic one byte for byte.
func (m *Mesh) AddBackend(service, backendName, cluster string, cfg backend.Config, profile backend.Profile) (*Backend, error) {
	sh, err := m.shardFor(cluster)
	if err != nil {
		return nil, err
	}
	cfg.Name = backendName
	return m.AddServerBackend(service, backendName, cluster,
		backend.New(sh.engine, m.wiringRng.Fork(), cfg, profile))
}

// AddServerBackend deploys an arbitrary Server as a backend of the named
// service — the hook application-level models (internal/dsb) use. The
// server must schedule exclusively on its cluster's shard engine.
func (m *Mesh) AddServerBackend(service, backendName, cluster string, srv Server) (*Backend, error) {
	svc, ok := m.services[service]
	if !ok {
		return nil, fmt.Errorf("mesh: unknown service %q", service)
	}
	if srv == nil {
		return nil, fmt.Errorf("mesh: nil server for backend %q", backendName)
	}
	if _, err := m.shardFor(cluster); err != nil {
		return nil, err
	}
	for _, b := range svc.backends {
		if b.Name == backendName {
			return nil, fmt.Errorf("mesh: backend %q already exists in service %q", backendName, service)
		}
	}
	b := &Backend{
		Name: backendName, Cluster: cluster, Server: srv,
		routes: make([][]*routeStats, len(m.shards)),
	}
	svc.backends = append(svc.backends, b)
	return b, nil
}

// SetPicker installs the routing strategy for a service on every shard.
// Classic mode has one shard, so this is the complete wiring. In sharded
// mode it only suits stateless pickers; stateful ones (round-robin
// counters, P2C state, split-weighted rngs) execute concurrently across
// shards and must be installed per shard with SetShardPicker.
func (m *Mesh) SetPicker(service string, p Picker) error {
	svc, ok := m.services[service]
	if !ok {
		return fmt.Errorf("mesh: unknown service %q", service)
	}
	obs, _ := p.(Observer)
	for i := range svc.pickers {
		svc.pickers[i] = p
		svc.observers[i] = obs
	}
	return nil
}

// SetShardPicker installs the routing strategy one cluster's proxies use —
// each shard's picker instance is private to that shard's timeline.
func (m *Mesh) SetShardPicker(service, cluster string, p Picker) error {
	svc, ok := m.services[service]
	if !ok {
		return fmt.Errorf("mesh: unknown service %q", service)
	}
	sh, err := m.shardFor(cluster)
	if err != nil {
		return err
	}
	svc.pickers[sh.id] = p
	svc.observers[sh.id], _ = p.(Observer)
	return nil
}

// Picker returns the routing strategy currently installed for a service
// (nil when the service is unknown or has no picker; shard 0's in sharded
// mode). Wrapping layers — health failover, the resilience circuit breaker —
// read the installed strategy here and re-install their filtered view
// through SetPicker.
func (m *Mesh) Picker(service string) Picker {
	if svc, ok := m.services[service]; ok {
		return svc.pickers[0]
	}
	return nil
}

// PickerFor returns the routing strategy installed for a service on the
// shard hosting a cluster (nil when the service is unknown or the shard has
// no picker) — what a per-source wrapping layer (the sharded resilience
// breaker) reads before re-installing its filtered view with
// SetShardPicker.
func (m *Mesh) PickerFor(service, cluster string) (Picker, error) {
	svc, ok := m.services[service]
	if !ok {
		return nil, fmt.Errorf("mesh: unknown service %q", service)
	}
	sh, err := m.shardFor(cluster)
	if err != nil {
		return nil, err
	}
	return svc.pickers[sh.id], nil
}

// Call issues one request from srcCluster to the named service. done fires
// exactly once with the client-observed result. The request path is:
// client proxy (pick backend, start metrics) → WAN to the backend's cluster
// → backend queue/execution → WAN back → client proxy (record metrics).
//
// In sharded mode, Call must be invoked on the source cluster's shard
// timeline (from an event executing on that shard's engine); done fires
// there too. A WAN hop to another cluster's shard travels as a cross-shard
// message whose delay — the WAN one-way delay — is lower-bounded by the
// engine's lookahead, which is what keeps barrier delivery conservative.
func (m *Mesh) Call(srcCluster, service string, done func(Result)) error {
	ss, err := m.shardFor(srcCluster)
	if err != nil {
		return err
	}
	return m.callFrom(ss, srcCluster, service, done)
}

// Proxy is a client-side handle bound to one source cluster's shard: the
// per-request path skips the cluster-map lookup Call pays on every request.
// Hot loops that always issue from the same cluster (load generators, the
// sharded harness) should hold one.
type Proxy struct {
	m   *Mesh
	ss  *meshShard
	src string
}

// Proxy returns the bound client-side handle for a source cluster.
func (m *Mesh) Proxy(cluster string) (*Proxy, error) {
	ss, err := m.shardFor(cluster)
	if err != nil {
		return nil, err
	}
	src := cluster
	return &Proxy{m: m, ss: ss, src: src}, nil
}

// Call issues one request from the proxy's source cluster, exactly like
// Mesh.Call with the source pre-resolved.
func (p *Proxy) Call(service string, done func(Result)) error {
	return p.m.callFrom(p.ss, p.src, service, done)
}

// callFrom is the shared request path behind Mesh.Call and Proxy.Call; ss
// must be the shard hosting srcCluster.
func (m *Mesh) callFrom(ss *meshShard, srcCluster, service string, done func(Result)) error {
	svc, ok := m.services[service]
	if !ok {
		return fmt.Errorf("mesh: unknown service %q", service)
	}
	if len(svc.backends) == 0 {
		return fmt.Errorf("mesh: service %q has no backends", service)
	}

	now := ss.engine.Now()
	// Bind the picker and its Observer view at pick time: a SetPicker swap
	// mid-flight must not feed this response to a picker that never saw the
	// pick.
	picker, obs := svc.pickers[ss.id], svc.observers[ss.id]
	var b *Backend
	if picker != nil {
		b = picker.Pick(now, srcCluster, service, svc.backends)
	}
	if b == nil {
		b = svc.backends[m.shardRng(ss).IntN(len(svc.backends))]
	}

	c := ss.getCall(m)
	c.b, c.rs, c.obs = b, m.route(service, b, srcCluster, ss), obs
	c.src, c.start, c.done = srcCluster, now, done
	c.rs.inflight.Inc()
	c.dst = c.rs.dst

	// A partitioned forward link swallows the request: the client observes
	// nothing until its timeout trips and counts the request as failed. The
	// return link is checked again at response time, so a partition injected
	// mid-request still blackholes the response. The timeout runs locally on
	// the source shard — the request never leaves it.
	if m.wan.Partitioned(srcCluster, b.Cluster) {
		c.success, c.serverDur = false, 0
		ss.engine.Schedule(now+m.lostTimeout, c.finishFn)
		return nil
	}
	forward := m.wan.OneWayDelay(srcCluster, b.Cluster, now)
	if c.dst == ss {
		ss.engine.Schedule(now+forward, c.forward)
	} else {
		ss.shard.Send(c.dst.id, now+forward, c.forward)
	}
	return nil
}

// onServed is the backend-completion leg of a request, executing on the
// destination shard: check the return link, then route the finish back to
// the source shard after the return hop (or at the client timeout when the
// link is partitioned — Schedule clamps to "now" when the timeout already
// passed while the backend was serving; a cross-shard timeout delivery is
// clamped to the next barrier, the sharded analogue).
func (c *call) onServed(res backend.Result) {
	m := c.m
	now := c.dst.engine.Now()
	if m.wan.Partitioned(c.b.Cluster, c.src) {
		c.success, c.serverDur = false, res.Latency
		at := c.start + m.lostTimeout
		if c.dst == c.ss {
			c.dst.engine.Schedule(at, c.finishFn)
		} else {
			c.dst.shard.Send(c.ss.id, at, c.finishFn)
		}
		return
	}
	back := m.wan.OneWayDelay(c.b.Cluster, c.src, now)
	c.success, c.serverDur = res.Success && !res.Rejected, res.Latency
	if c.dst == c.ss {
		c.dst.engine.Schedule(now+back, c.finishFn)
	} else {
		c.dst.shard.Send(c.ss.id, now+back, c.finishFn)
	}
}

// finish records the response at the client proxy — inflight, spans,
// response_total, response_latency, Observer feedback — through the route's
// cached handles into the source shard's registry, recycles the request
// state, and completes the caller. It executes on the source shard.
func (c *call) finish() {
	end := c.ss.engine.Now()
	latency := end - c.start
	c.rs.inflight.Dec()
	if c.ss.spans != nil {
		c.ss.spans.RecordSpan(c.rs.service, c.b.Name, c.src, c.start, end, c.serverDur, c.success)
	}
	cs := c.rs.class(c.success)
	cs.total.Inc()
	cs.latency.Observe(latency.Seconds())
	if c.obs != nil {
		c.obs.Observe(end, c.src, c.b.Name, latency, c.success)
	}
	done, backendName, success := c.done, c.b.Name, c.success
	c.putCall() // recycle before done: the callback may issue nested Calls
	done(Result{Backend: backendName, Latency: latency, Success: success})
}

// Probe issues one health probe from cluster src directly to backend b: WAN
// transit both ways, no load balancing, no data-plane metrics (probes are
// not client traffic). done fires with the probe outcome — unless either
// direction is partitioned, in which case done never fires and the caller's
// probe timeout counts the probe as failed, exactly as a real checker
// behind a blackholed link would observe.
//
// In sharded mode, Probe must be called from the control engine's timeline
// (health checkers live there): the probe's serve leg is scheduled straight
// onto the backend's shard — legal because every shard is paused at the
// control barrier — and the response returns as a shard→control message, so
// done fires at the first barrier after the return hop lands (quantized at
// most one lookahead late, uniformly for every probe).
func (m *Mesh) Probe(src string, b *Backend, done func(success bool)) {
	if m.se == nil {
		m.probeClassic(src, b, done)
		return
	}
	ds, err := m.shardFor(b.Cluster)
	if err != nil {
		return
	}
	now := m.se.Control().Now()
	if m.wan.Partitioned(src, b.Cluster) {
		return
	}
	forward := m.wan.OneWayDelay(src, b.Cluster, now)
	ds.engine.Schedule(now+forward, func() {
		b.Server.Serve(func(res backend.Result) {
			served := ds.engine.Now()
			if m.wan.Partitioned(b.Cluster, src) {
				return
			}
			back := m.wan.OneWayDelay(b.Cluster, src, served)
			ds.shard.SendControl(served+back, func() {
				done(res.Success && !res.Rejected)
			})
		})
	})
}

// probeClassic is the single-engine probe path.
func (m *Mesh) probeClassic(src string, b *Backend, done func(success bool)) {
	eng := m.shards[0].engine
	now := eng.Now()
	if m.wan.Partitioned(src, b.Cluster) {
		return
	}
	eng.After(m.wan.OneWayDelay(src, b.Cluster, now), func() {
		b.Server.Serve(func(res backend.Result) {
			back := eng.Now()
			if m.wan.Partitioned(b.Cluster, src) {
				return
			}
			eng.After(m.wan.OneWayDelay(b.Cluster, src, back), func() {
				done(res.Success && !res.Rejected)
			})
		})
	})
}
