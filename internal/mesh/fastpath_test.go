package mesh

import (
	"sort"
	"testing"
	"time"

	"l3/internal/backend"
	"l3/internal/histogram"
	"l3/internal/metrics"
	"l3/internal/sim"
	"l3/internal/wan"
)

// span is one completed request as a SpanRecorder sees it — enough to replay
// the exact metric updates the pre-fast-path labelled API performed.
type span struct {
	service, backendName, src string
	start, end, serverDur     time.Duration
	success                   bool
}

type spanLog struct{ spans []span }

func (l *spanLog) RecordSpan(service, backendName, src string, start, end, serverDuration time.Duration, success bool) {
	l.spans = append(l.spans, span{service, backendName, src, start, end, serverDuration, success})
}

// TestRouteCachedMetricsMatchLabelledReplay is the metric-equivalence pin for
// the fast path: a seeded run recorded through the route-cached handles must
// produce exactly the samples that replaying the same responses through the
// old labelled get-or-create API produces — same series set, same values,
// bit-identical float sums.
func TestRouteCachedMetricsMatchLabelledReplay(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, sim.NewRand(7), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	log := &spanLog{}
	m.SetSpanRecorder(log)
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	flaky := func(d time.Duration) backend.Profile {
		return func(_ time.Duration, r *sim.Rand) (time.Duration, bool) {
			return d, r.Float64() < 0.7
		}
	}
	addSpanBackend := func(name, cluster string, d time.Duration) {
		if _, err := m.AddBackend("api", name, cluster, backend.Config{}, flaky(d)); err != nil {
			t.Fatal(err)
		}
	}
	addSpanBackend("api-c1", "cluster-1", 5*time.Millisecond)
	addSpanBackend("api-c2", "cluster-2", 9*time.Millisecond)
	addSpanBackend("api-c3", "cluster-3", 3*time.Millisecond)

	// Seeded mixed workload: every source cluster calls into the random
	// fallback picker, staggered so requests interleave in flight.
	srcs := []string{"cluster-1", "cluster-2", "cluster-3"}
	for i := 0; i < 120; i++ {
		src := srcs[i%len(srcs)]
		at := time.Duration(i) * 2 * time.Millisecond
		e.At(at, func() {
			if err := m.Call(src, "api", func(Result) {}); err != nil {
				t.Error(err)
			}
		})
	}
	e.Run()
	if len(log.spans) != 120 {
		t.Fatalf("recorded %d spans, want 120", len(log.spans))
	}

	// Replay each response through the labelled API, in completion order —
	// exactly what the pre-fast-path finish() did per response.
	ref := metrics.NewRegistry()
	for _, s := range log.spans {
		labels := metrics.Labels{"service": s.service, "backend": s.backendName, "src": s.src}
		g := ref.Gauge(MetricInflight, labels)
		g.Inc()
		g.Dec()
		class := ClassFailure
		if s.success {
			class = ClassSuccess
		}
		cl := labels.With("classification", class)
		ref.Counter(MetricResponseTotal, cl).Inc()
		ref.Histogram(MetricResponseLatency, cl, histogram.LinkerdLatencyBounds).
			Observe((s.end - s.start).Seconds())
	}

	// The replay cannot reproduce interleaved registration order, so compare
	// canonically sorted samples. Values must match exactly: per-series the
	// replay applies the same float additions in the same order.
	got, want := sortedSamples(m.Registry()), sortedSamples(ref)
	if len(got) != len(want) {
		t.Fatalf("sample counts differ: fast path %d, labelled replay %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Name != want[i].Name || got[i].Labels.Key() != want[i].Labels.Key() {
			t.Fatalf("series %d differs: %s%s vs %s%s",
				i, got[i].Name, got[i].Labels, want[i].Name, want[i].Labels)
		}
		if got[i].Value != want[i].Value {
			t.Fatalf("series %s%s = %v via fast path, %v via labelled replay",
				got[i].Name, got[i].Labels, got[i].Value, want[i].Value)
		}
	}
}

func sortedSamples(r *metrics.Registry) []metrics.Sample {
	s := r.Snapshot()
	sort.Slice(s, func(i, j int) bool {
		if s[i].Name != s[j].Name {
			return s[i].Name < s[j].Name
		}
		return s[i].Labels.Key() < s[j].Labels.Key()
	})
	return s
}

// TestPickerSwapMidFlightKeepsObserverBinding pins the Call-time binding fix:
// a response must report to the picker that made the pick, even if SetPicker
// swapped the strategy while the request was in flight.
func TestPickerSwapMidFlightKeepsObserverBinding(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	addBackend(t, m, "api", "b", "cluster-1", 50*time.Millisecond, true)
	old := &recordingPicker{}
	_ = m.SetPicker("api", old)
	if err := m.Call("cluster-1", "api", func(Result) {}); err != nil {
		t.Fatal(err)
	}
	// Swap strategies while the request is mid-flight.
	replacement := &recordingPicker{}
	_ = m.SetPicker("api", replacement)
	e.RunUntil(time.Second)
	if len(old.observed) != 1 {
		t.Fatalf("original picker saw %d responses, want 1 (its own pick)", len(old.observed))
	}
	if len(replacement.observed) != 0 {
		t.Fatalf("replacement picker saw %d responses for picks it never made", len(replacement.observed))
	}
	// And the new picker owns subsequent requests.
	if err := m.Call("cluster-1", "api", func(Result) {}); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(2 * time.Second)
	if len(old.observed) != 1 || len(replacement.observed) != 1 {
		t.Fatalf("post-swap feedback routing wrong: old=%d new=%d",
			len(old.observed), len(replacement.observed))
	}
}

// TestRouteCacheResolvesOncePerRoute checks the per-backend cache: repeated
// calls over the same (service, backend, src) route reuse one routeStats, and
// distinct source clusters get distinct entries.
func TestRouteCacheResolvesOncePerRoute(t *testing.T) {
	m, e := newTestMesh(t)
	_, _ = m.AddService("api")
	b := addBackend(t, m, "api", "b", "cluster-1", time.Millisecond, true)
	_ = m.SetPicker("api", pickFirst{})
	for i := 0; i < 5; i++ {
		_ = m.Call("cluster-1", "api", func(Result) {})
	}
	e.RunUntil(time.Second)
	if len(b.routes[0]) != 1 {
		t.Fatalf("route cache has %d entries after one route, want 1", len(b.routes[0]))
	}
	_ = m.Call("cluster-2", "api", func(Result) {})
	e.RunUntil(2 * time.Second)
	if len(b.routes[0]) != 2 {
		t.Fatalf("route cache has %d entries after two routes, want 2", len(b.routes[0]))
	}
	if b.routes[0][0] == b.routes[0][1] {
		t.Fatal("distinct source clusters share a routeStats")
	}
}

// TestSteadyStateCallAllocationFree pins the tentpole: once route handles and
// pools are warm, a full request lifecycle (pick, WAN out, serve, WAN back,
// metric recording, completion) performs zero heap allocations.
func TestSteadyStateCallAllocationFree(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, sim.NewRand(1), wan.New(wan.DefaultConfig()), metrics.NewRegistry())
	if _, err := m.AddService("api"); err != nil {
		t.Fatal(err)
	}
	addBackend(t, m, "api", "api-c1", "cluster-1", time.Millisecond, true)
	addBackend(t, m, "api", "api-c2", "cluster-2", time.Millisecond, true)
	_ = m.SetPicker("api", pickFirst{})
	completed := 0
	onDone := func(Result) { completed++ }
	issue := func() {
		if err := m.Call("cluster-1", "api", onDone); err != nil {
			t.Fatal(err)
		}
		e.Run()
	}
	for i := 0; i < 8; i++ {
		issue() // warm route cache, series, pools and the event heap
	}
	allocs := testing.AllocsPerRun(200, issue)
	if allocs != 0 {
		t.Fatalf("steady-state Call allocates %.1f objects per request, want 0", allocs)
	}
	if completed == 0 {
		t.Fatal("no requests completed")
	}
}
