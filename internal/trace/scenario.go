package trace

import (
	"fmt"
	"time"

	"l3/internal/sim"
)

// ClusterTrace is one cluster's backend behaviour over a scenario: the
// time-varying latency distribution of its service replicas (summarised by
// median and P99, the two statistics the paper plots) plus its success
// rate. The latency distribution at any instant is log-normal, which §3.1
// of the paper takes as the characteristic shape of network service
// latency.
type ClusterTrace struct {
	Cluster string
	Median  Series // seconds
	P99     Series // seconds
	Success Series // fraction in [0, 1]
}

// SampleLatency draws one service-time from the cluster's distribution at
// virtual time now.
func (ct *ClusterTrace) SampleLatency(now time.Duration, rng *sim.Rand) time.Duration {
	med := time.Duration(ct.Median.At(now) * float64(time.Second))
	p99 := time.Duration(ct.P99.At(now) * float64(time.Second))
	return sim.NewLogNormalFromQuantiles(med, p99).Sample(rng)
}

// SampleSuccess draws whether a request at time now succeeds.
func (ct *ClusterTrace) SampleSuccess(now time.Duration, rng *sim.Rand) bool {
	return rng.Bool(ct.Success.At(now))
}

// Scenario is a complete workload: per-cluster backend behaviour plus the
// offered load entering the mesh.
type Scenario struct {
	Name     string
	Duration time.Duration
	Step     time.Duration
	RPS      Series
	Clusters []ClusterTrace
}

// Cluster returns the trace for the named cluster, or nil.
func (s *Scenario) Cluster(name string) *ClusterTrace {
	for i := range s.Clusters {
		if s.Clusters[i].Cluster == name {
			return &s.Clusters[i]
		}
	}
	return nil
}

// ClusterNames returns the cluster names in order.
func (s *Scenario) ClusterNames() []string {
	out := make([]string, len(s.Clusters))
	for i := range s.Clusters {
		out[i] = s.Clusters[i].Cluster
	}
	return out
}

// scenario names accepted by Generate.
const (
	Scenario1 = "scenario-1"
	Scenario2 = "scenario-2"
	Scenario3 = "scenario-3"
	Scenario4 = "scenario-4"
	Scenario5 = "scenario-5"
	Failure1  = "failure-1"
	Failure2  = "failure-2"
)

// Names lists every scenario Generate accepts, in the paper's order.
func Names() []string {
	return []string{Scenario1, Scenario2, Scenario3, Scenario4, Scenario5, Failure1, Failure2}
}

// clusterNames are the three clusters of the paper's testbed.
var clusterNames = []string{"cluster-1", "cluster-2", "cluster-3"}

// Generate synthesises the named scenario with the given seed. The same
// (name, seed) pair always yields the identical scenario.
func Generate(name string, seed uint64) (*Scenario, error) {
	const (
		step     = time.Second
		duration = 10 * time.Minute
	)
	n := int(duration/step) + 1
	rng := sim.NewRand(seed ^ hashName(name))

	sc := &Scenario{Name: name, Duration: duration, Step: step}
	switch name {
	case Scenario1, Failure1:
		// Median 50-100 ms most of the time with cluster-2 peaks up to
		// ~350 ms; P99 fluctuating 100-950 ms; stable ~300 RPS. §5.3.1
		// notes the median of one backend is often worse than the P99 of
		// the others — cluster-2's episodes provide those phases.
		for i, c := range clusterNames {
			p := clusterParams{
				medLo: 0.050, medHi: 0.085,
				ratioLo: 2.0, ratioHi: 3.5,
				epCount: 2, epMinLen: 30, epMaxLen: 60,
				epMagLo: 2.0, epMagHi: 3.0, epMedFraction: 0.3,
				p99Cap: 0.950,
			}
			if i == 1 { // cluster-2 carries the deep sustained episodes
				p.epCount, p.epMinLen, p.epMaxLen = 3, 40, 100
				p.epMagLo, p.epMagHi, p.epMedFraction = 4.5, 6.5, 0.45
			}
			sc.Clusters = append(sc.Clusters, buildCluster(rng.Fork(), c, n, step, p))
		}
		sc.RPS = Series{Step: step, Values: walk(rng.Fork(), n, 280, 320, 0.05)}
	case Scenario2, Failure2:
		// Median 3-9 ms; P99 10-100 ms with intermittent spikes past
		// 2000 ms (sustained for tens of seconds on one cluster at a
		// time); RPS fluctuating between ~45 and 200.
		for _, c := range clusterNames {
			sc.Clusters = append(sc.Clusters, buildCluster(rng.Fork(), c, n, step, clusterParams{
				medLo: 0.0035, medHi: 0.0075,
				ratioLo: 3.0, ratioHi: 11.0,
				epCount: 2, epMinLen: 15, epMaxLen: 40,
				epMagLo: 16, epMagHi: 40, epMedFraction: 0.02,
				p99Cap: 2.4,
			}))
		}
		sc.RPS = Series{Step: step, Values: walk(rng.Fork(), n, 45, 200, 0.35)}
	case Scenario3:
		// Stable median, irregular sustained P99 peaks up to ~2000 ms.
		for _, c := range clusterNames {
			sc.Clusters = append(sc.Clusters, buildCluster(rng.Fork(), c, n, step, clusterParams{
				medLo: 0.040, medHi: 0.070,
				ratioLo: 3.0, ratioHi: 6.0,
				epCount: 3, epMinLen: 25, epMaxLen: 50,
				epMagLo: 3.0, epMagHi: 5.5, epMedFraction: 0.1,
				p99Cap: 2.0,
			}))
		}
		sc.RPS = Series{Step: step, Values: walk(rng.Fork(), n, 150, 250, 0.15)}
	case Scenario4:
		// The most violent tail of the five: P99 spikes toward 5000 ms,
		// in episodes short enough that a 5-second control loop struggles
		// (the paper's gains are smallest here).
		for _, c := range clusterNames {
			sc.Clusters = append(sc.Clusters, buildCluster(rng.Fork(), c, n, step, clusterParams{
				medLo: 0.050, medHi: 0.090,
				ratioLo: 3.0, ratioHi: 7.0,
				epCount: 7, epMinLen: 18, epMaxLen: 32,
				epMagLo: 5.0, epMagHi: 10.0, epMedFraction: 0.05,
				p99Cap: 5.0,
			}))
		}
		sc.RPS = Series{Step: step, Values: walk(rng.Fork(), n, 120, 220, 0.2)}
	case Scenario5:
		// Calm: P99 within ~0-300 ms, cluster medians within a few ms of
		// each other (the paper reports σ = 6.3 ms between backends).
		for _, c := range clusterNames {
			sc.Clusters = append(sc.Clusters, buildCluster(rng.Fork(), c, n, step, clusterParams{
				medLo: 0.038, medHi: 0.052,
				ratioLo: 2.0, ratioHi: 4.0,
				epCount: 3, epMinLen: 30, epMaxLen: 60,
				epMagLo: 1.6, epMagHi: 2.4, epMedFraction: 0.25,
				p99Cap: 0.3,
			}))
		}
		sc.RPS = Series{Step: step, Values: walk(rng.Fork(), n, 150, 220, 0.1)}
	default:
		return nil, fmt.Errorf("trace: unknown scenario %q (valid: %v)", name, Names())
	}

	switch name {
	case Failure1:
		// Average success 91.4 % with intermittent single-cluster drops
		// down to 30 %.
		injectFailures(rng.Fork(), sc, failureParams{
			base: 0.94, baseJitter: 0.03,
			dips: 5, dipDepth: 0.68, dipLen: 25,
		})
	case Failure2:
		// Average success 98.5 %: mostly ~99 % with recurring short dips of
		// a few points; the healthiest backend averages 99.8 %.
		injectFailures(rng.Fork(), sc, failureParams{
			base: 0.99, baseJitter: 0.02,
			dips: 5, dipDepth: 0.065, dipLen: 40,
		})
	}
	return sc, nil
}

// MustGenerate is Generate for known-good names; it panics on error and is
// intended for benchmarks and examples.
func MustGenerate(name string, seed uint64) *Scenario {
	sc, err := Generate(name, seed)
	if err != nil {
		panic(err)
	}
	return sc
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
