// Package trace synthesises the workload scenarios of the paper's
// evaluation. The originals are 10-minute captures from TIER Mobility's
// production mesh (scenario-1..5) plus two derived failure-injection
// variants (failure-1, failure-2); the captures are proprietary, so this
// package regenerates each scenario as seeded stochastic processes matched
// to every statistic the paper reports: per-cluster median and P99 latency
// bands, spike magnitudes, RPS ranges, success-rate averages and dip depths
// (§2.1, §5.1, §5.2.1, Figures 1, 2, 6 and 7a).
package trace

import (
	"fmt"
	"math"
	"time"
)

// Series is a regularly sampled time series (one value per Step). Reads
// between sample points interpolate linearly; reads outside the series
// clamp to the ends.
type Series struct {
	Step   time.Duration
	Values []float64
}

// At returns the interpolated value at time t.
func (s Series) At(t time.Duration) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	if t <= 0 {
		return s.Values[0]
	}
	pos := float64(t) / float64(s.Step)
	i := int(pos)
	if i >= len(s.Values)-1 {
		return s.Values[len(s.Values)-1]
	}
	frac := pos - float64(i)
	return s.Values[i]*(1-frac) + s.Values[i+1]*frac
}

// Duration returns the time span the series covers.
func (s Series) Duration() time.Duration {
	if len(s.Values) == 0 {
		return 0
	}
	return time.Duration(len(s.Values)-1) * s.Step
}

// Min returns the smallest value, or 0 if empty.
func (s Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value, or 0 if empty.
func (s Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean, or 0 if empty.
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Stddev returns the population standard deviation, or 0 if empty.
func (s Series) Stddev() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.Values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.Values)))
}

// Scale returns a copy with every value multiplied by f.
func (s Series) Scale(f float64) Series {
	out := Series{Step: s.Step, Values: make([]float64, len(s.Values))}
	for i, v := range s.Values {
		out.Values[i] = v * f
	}
	return out
}

// Constant returns a series of n steps all holding v.
func Constant(step time.Duration, n int, v float64) Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return Series{Step: step, Values: vals}
}

// String summarises the series.
func (s Series) String() string {
	return fmt.Sprintf("series{n=%d step=%v min=%.3g mean=%.3g max=%.3g}",
		len(s.Values), s.Step, s.Min(), s.Mean(), s.Max())
}
