package trace

import (
	"math"
	"time"

	"l3/internal/sim"
)

// walkCoarseStep is the step, in samples, of the underlying coarse random
// walk. The paper's production traces vary on timescales of tens of
// seconds to minutes — sustained excursions a 5-second control loop can
// react to — not white noise; generating the walk at a 20-sample (20 s)
// granularity and interpolating reproduces that temporal structure.
const walkCoarseStep = 20

// walk produces n samples of a mean-reverting random walk confined to
// [lo, hi], varying on multi-ten-second timescales with a little
// sample-level jitter on top. vol controls the coarse-step volatility
// relative to the band width.
func walk(rng *sim.Rand, n int, lo, hi, vol float64) []float64 {
	if hi < lo {
		hi = lo
	}
	band := hi - lo
	coarseN := n/walkCoarseStep + 2
	coarse := make([]float64, coarseN)
	x := lo + band*rng.Float64()
	mid := lo + band/2
	for i := range coarse {
		// Ornstein-Uhlenbeck-flavoured step: weak pull toward the middle,
		// perturbed by noise, reflected at the band edges.
		x += 0.15*(mid-x) + rng.Normal(0, vol*band)
		if x < lo {
			x = lo + (lo - x)
		}
		if x > hi {
			x = hi - (x - hi)
		}
		x = math.Min(hi, math.Max(lo, x))
		coarse[i] = x
	}
	out := make([]float64, n)
	for i := range out {
		pos := float64(i) / walkCoarseStep
		j := int(pos)
		frac := pos - float64(j)
		v := coarse[j]*(1-frac) + coarse[j+1]*frac
		// Small per-second jitter so the series is not piecewise linear.
		v *= 1 + rng.Normal(0, 0.02)
		out[i] = math.Min(hi, math.Max(lo, v))
	}
	return out
}

// episodes builds a multiplier series modelling sustained degradation
// phases: count episodes at random positions, each lasting minLen..maxLen
// steps with a peak multiplier in [magLo, magHi] and ~5-step half-cosine
// ramps at the edges. Outside episodes the multiplier is 1; overlapping
// episodes take the larger multiplier. These are the paper's
// characteristic trace feature — one backend's latency staying elevated
// for tens of seconds to minutes while the others are healthy (§2.1,
// §5.3.1's "median of one backend often worse than the P99 of the
// others").
func episodes(rng *sim.Rand, n, count, minLen, maxLen int, magLo, magHi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	if n == 0 || count <= 0 {
		return out
	}
	const ramp = 5
	for e := 0; e < count; e++ {
		length := minLen
		if maxLen > minLen {
			length += rng.IntN(maxLen - minLen)
		}
		if length >= n {
			length = n - 1
		}
		at := rng.IntN(n - length)
		mag := magLo + (magHi-magLo)*rng.Float64()
		for i := 0; i < length; i++ {
			env := 1.0
			if i < ramp {
				env = 0.5 - 0.5*math.Cos(math.Pi*float64(i)/ramp)
			} else if i >= length-ramp {
				env = 0.5 - 0.5*math.Cos(math.Pi*float64(length-1-i)/ramp)
			}
			m := 1 + (mag-1)*env
			if m > out[at+i] {
				out[at+i] = m
			}
		}
	}
	return out
}

// mulInto multiplies dst element-wise by a blend of the multiplier series:
// dst[i] *= 1 + (mul[i]-1)*fraction.
func mulInto(dst, mul []float64, fraction float64) {
	for i := range dst {
		dst[i] *= 1 + (mul[i]-1)*fraction
	}
}

// clampMax caps every value at maxV.
func clampMax(vals []float64, maxV float64) {
	for i, v := range vals {
		if v > maxV {
			vals[i] = maxV
		}
	}
}

// failureParams describes an artificial failure injection: a base success
// rate with jitter, plus a number of dips during which one cluster's
// success rate collapses toward (1-dipDepth)·base... concretely the dip
// floor is base·(1-dipDepth), held for dipLen steps with smooth edges.
type failureParams struct {
	base       float64 // steady-state success rate
	baseJitter float64 // uniform jitter amplitude around base
	dips       int     // number of single-cluster dips over the scenario
	dipDepth   float64 // fraction of base removed at the dip floor
	dipLen     int     // dip duration in steps
}

// injectFailures rewrites every cluster's Success series per p. Dips are
// assigned round-robin across clusters so each failure episode affects a
// single cluster, as in the paper's failure-1/failure-2 construction. One
// cluster (the last) receives a reduced jitter and no deep dips so that the
// scenario has a "healthiest backend" whose average success stays near the
// base, mirroring failure-2's 99.8 %-availability backend.
func injectFailures(rng *sim.Rand, sc *Scenario, p failureParams) {
	n := len(sc.Clusters[0].Success.Values)
	for ci := range sc.Clusters {
		r := rng.Fork()
		jitter := p.baseJitter
		if ci == len(sc.Clusters)-1 {
			jitter = p.baseJitter / 4
		}
		// The baseline success rate wanders slowly within its band (like
		// every other signal in the production traces) rather than
		// flickering i.i.d.: sustained small differences are what a
		// success-rate-weighted balancer actually reacts to.
		hi := p.base + jitter
		if hi > 1 {
			hi = 1
		}
		vals := walk(r, n, p.base-jitter, hi, 0.2)
		sc.Clusters[ci].Success = Series{Step: sc.Step, Values: vals}
	}

	healthy := len(sc.Clusters) - 1
	for d := 0; d < p.dips; d++ {
		ci := d % healthy // never dip the healthiest cluster
		vals := sc.Clusters[ci].Success.Values
		at := rng.IntN(n - p.dipLen)
		floor := p.base * (1 - p.dipDepth)
		for i := 0; i < p.dipLen; i++ {
			// Smooth edges: half-cosine envelope into and out of the dip.
			frac := float64(i) / float64(p.dipLen-1)
			env := 0.5 - 0.5*math.Cos(2*math.Pi*frac) // 0..1..0
			v := vals[at+i]*(1-env) + floor*env
			if v < vals[at+i] {
				vals[at+i] = v
			}
		}
	}
}

// Walk exposes the generator's band-confined, multi-ten-second-timescale
// random walk as a Series, for models needing trace-like variability
// outside the named scenarios (e.g. per-node performance factors of the
// DSB testbed).
func Walk(rng *sim.Rand, step time.Duration, n int, lo, hi, vol float64) Series {
	return Series{Step: step, Values: walk(rng, n, lo, hi, vol)}
}

// EpisodeMultipliers exposes the sustained-degradation multiplier process
// as a Series (1 outside episodes).
func EpisodeMultipliers(rng *sim.Rand, step time.Duration, n, count, minLen, maxLen int, magLo, magHi float64) Series {
	return Series{Step: step, Values: episodes(rng, n, count, minLen, maxLen, magLo, magHi)}
}

// Mul returns the element-wise product of two equal-step series, truncated
// to the shorter length.
func Mul(a, b Series) Series {
	n := len(a.Values)
	if len(b.Values) < n {
		n = len(b.Values)
	}
	out := Series{Step: a.Step, Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		out.Values[i] = a.Values[i] * b.Values[i]
	}
	return out
}
