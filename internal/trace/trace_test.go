package trace

import (
	"math"
	"testing"
	"time"

	"l3/internal/sim"
)

func TestSeriesAtInterpolatesAndClamps(t *testing.T) {
	s := Series{Step: time.Second, Values: []float64{0, 10, 20}}
	if got := s.At(-time.Second); got != 0 {
		t.Fatalf("At(-1s) = %v", got)
	}
	if got := s.At(500 * time.Millisecond); got != 5 {
		t.Fatalf("At(0.5s) = %v, want 5", got)
	}
	if got := s.At(time.Second); got != 10 {
		t.Fatalf("At(1s) = %v, want 10", got)
	}
	if got := s.At(time.Hour); got != 20 {
		t.Fatalf("At(1h) = %v, want clamp to 20", got)
	}
	if got := (Series{}).At(time.Second); got != 0 {
		t.Fatalf("empty series At = %v", got)
	}
}

func TestSeriesStats(t *testing.T) {
	s := Series{Step: time.Second, Values: []float64{2, 4, 6}}
	if s.Min() != 2 || s.Max() != 6 || s.Mean() != 4 {
		t.Fatalf("stats = %v %v %v", s.Min(), s.Max(), s.Mean())
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(8.0/3)) > 1e-12 {
		t.Fatalf("Stddev = %v", got)
	}
	if s.Duration() != 2*time.Second {
		t.Fatalf("Duration = %v", s.Duration())
	}
	scaled := s.Scale(10)
	if scaled.Values[2] != 60 || s.Values[2] != 6 {
		t.Fatal("Scale wrong or mutated original")
	}
}

func TestConstantSeries(t *testing.T) {
	s := Constant(time.Second, 5, 3.14)
	if len(s.Values) != 5 || s.Min() != 3.14 || s.Max() != 3.14 {
		t.Fatalf("Constant = %v", s)
	}
}

func TestGenerateUnknownScenario(t *testing.T) {
	if _, err := Generate("scenario-99", 1); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Scenario1, 7)
	b := MustGenerate(Scenario1, 7)
	for ci := range a.Clusters {
		for i := range a.Clusters[ci].P99.Values {
			if a.Clusters[ci].P99.Values[i] != b.Clusters[ci].P99.Values[i] {
				t.Fatalf("scenario not deterministic at cluster %d step %d", ci, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(Scenario1, 1)
	b := MustGenerate(Scenario1, 2)
	same := 0
	for i := range a.RPS.Values {
		if a.RPS.Values[i] == b.RPS.Values[i] {
			same++
		}
	}
	if same > len(a.RPS.Values)/10 {
		t.Fatalf("seeds produce near-identical RPS series (%d/%d equal)", same, len(a.RPS.Values))
	}
}

func TestAllScenariosStructure(t *testing.T) {
	for _, name := range Names() {
		sc := MustGenerate(name, 1)
		if sc.Duration != 10*time.Minute {
			t.Fatalf("%s duration = %v", name, sc.Duration)
		}
		if len(sc.Clusters) != 3 {
			t.Fatalf("%s has %d clusters", name, len(sc.Clusters))
		}
		for _, ct := range sc.Clusters {
			n := len(ct.Median.Values)
			if n == 0 || len(ct.P99.Values) != n || len(ct.Success.Values) != n {
				t.Fatalf("%s/%s series lengths inconsistent", name, ct.Cluster)
			}
			for i := range ct.Median.Values {
				if ct.Median.Values[i] <= 0 {
					t.Fatalf("%s/%s non-positive median at %d", name, ct.Cluster, i)
				}
				if ct.P99.Values[i] < ct.Median.Values[i] {
					t.Fatalf("%s/%s P99 below median at %d", name, ct.Cluster, i)
				}
				if s := ct.Success.Values[i]; s < 0 || s > 1 {
					t.Fatalf("%s/%s success %v out of range", name, ct.Cluster, s)
				}
			}
		}
		if sc.RPS.Min() <= 0 {
			t.Fatalf("%s RPS min = %v", name, sc.RPS.Min())
		}
		if sc.Cluster("cluster-2") == nil || sc.Cluster("nope") != nil {
			t.Fatalf("%s Cluster lookup broken", name)
		}
	}
}

func TestScenario1MatchesPaperStatistics(t *testing.T) {
	sc := MustGenerate(Scenario1, 1)
	for _, ct := range sc.Clusters {
		// Median mostly 50-100ms; cluster-2 spikes allowed to ~350ms.
		if m := ct.Median.Mean(); m < 0.045 || m > 0.120 {
			t.Fatalf("%s mean median = %v s, want ~50-100ms", ct.Cluster, m)
		}
		if ct.P99.Max() > 0.96 {
			t.Fatalf("%s P99 max = %v s, paper band tops at ~950ms", ct.Cluster, ct.P99.Max())
		}
		if ct.P99.Min() < 0.05 {
			t.Fatalf("%s P99 min = %v s, implausibly low", ct.Cluster, ct.P99.Min())
		}
	}
	if sc.Cluster("cluster-2").Median.Max() < 0.15 {
		t.Fatal("cluster-2 should carry median spikes above 150ms")
	}
	if r := sc.RPS.Mean(); r < 280 || r > 320 {
		t.Fatalf("RPS mean = %v, want ~300", r)
	}
}

func TestScenario2MatchesPaperStatistics(t *testing.T) {
	sc := MustGenerate(Scenario2, 1)
	for _, ct := range sc.Clusters {
		if m := ct.Median.Mean(); m < 0.003 || m > 0.009 {
			t.Fatalf("%s mean median = %v s, want 3-9ms", ct.Cluster, m)
		}
		if ct.P99.Max() > 2.5 {
			t.Fatalf("%s P99 max = %v s, want <= 2.4s", ct.Cluster, ct.P99.Max())
		}
	}
	// At least one cluster must show a spike beyond 1s (Fig 1b).
	spiky := false
	for _, ct := range sc.Clusters {
		if ct.P99.Max() > 1.0 {
			spiky = true
		}
	}
	if !spiky {
		t.Fatal("no cluster carries an intermittent spike past 1s")
	}
	if sc.RPS.Min() < 40 || sc.RPS.Max() > 210 {
		t.Fatalf("RPS range [%v, %v], want within ~45-200", sc.RPS.Min(), sc.RPS.Max())
	}
}

func TestScenario4HasTheWildestTail(t *testing.T) {
	worst := func(name string) float64 {
		sc := MustGenerate(name, 1)
		m := 0.0
		for _, ct := range sc.Clusters {
			if v := ct.P99.Max(); v > m {
				m = v
			}
		}
		return m
	}
	s4 := worst(Scenario4)
	if s4 < 2.0 || s4 > 5.0 {
		t.Fatalf("scenario-4 worst P99 = %v s, want spikes in the 2-5s range", s4)
	}
	if s5 := worst(Scenario5); s5 > 0.31 {
		t.Fatalf("scenario-5 worst P99 = %v s, want <= ~0.3s", s5)
	}
}

func TestScenario5IsCalm(t *testing.T) {
	sc := MustGenerate(Scenario5, 1)
	// Backend medians stay within a few ms of each other (paper: σ=6.3ms).
	var means []float64
	for _, ct := range sc.Clusters {
		means = append(means, ct.Median.Mean())
	}
	lo, hi := means[0], means[0]
	for _, m := range means {
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	if hi-lo > 0.015 {
		t.Fatalf("scenario-5 cluster median spread = %v s, want tight", hi-lo)
	}
}

func TestFailure1SuccessStatistics(t *testing.T) {
	sc := MustGenerate(Failure1, 1)
	var total float64
	minSeen := 1.0
	for _, ct := range sc.Clusters {
		total += ct.Success.Mean()
		if m := ct.Success.Min(); m < minSeen {
			minSeen = m
		}
	}
	avg := total / 3
	if avg < 0.88 || avg > 0.96 {
		t.Fatalf("failure-1 average success = %v, paper reports 91.4%%", avg)
	}
	if minSeen > 0.45 {
		t.Fatalf("failure-1 deepest dip = %v, want down toward 30%%", minSeen)
	}
}

func TestFailure2SuccessStatistics(t *testing.T) {
	sc := MustGenerate(Failure2, 1)
	var total float64
	best := 0.0
	for _, ct := range sc.Clusters {
		m := ct.Success.Mean()
		total += m
		if m > best {
			best = m
		}
	}
	avg := total / 3
	if avg < 0.975 || avg > 0.995 {
		t.Fatalf("failure-2 average success = %v, paper reports 98.5%%", avg)
	}
	if best < 0.985 {
		t.Fatalf("failure-2 best backend = %v, paper reports a 99.8%% backend", best)
	}
	// Latency shape is scenario-2's.
	if m := sc.Clusters[0].Median.Mean(); m < 0.003 || m > 0.009 {
		t.Fatalf("failure-2 median = %v, want scenario-2's 3-9ms", m)
	}
}

func TestScenariosWithoutFailureHavePerfectSuccess(t *testing.T) {
	for _, name := range []string{Scenario1, Scenario2, Scenario3, Scenario4, Scenario5} {
		sc := MustGenerate(name, 3)
		for _, ct := range sc.Clusters {
			if ct.Success.Min() != 1 {
				t.Fatalf("%s/%s success dips to %v without failure injection", name, ct.Cluster, ct.Success.Min())
			}
		}
	}
}

func TestSampleLatencyFollowsTrace(t *testing.T) {
	sc := MustGenerate(Scenario1, 1)
	ct := sc.Cluster("cluster-1")
	rng := sim.NewRand(5)
	const n = 20000
	at := 2 * time.Minute
	var samples []time.Duration
	for i := 0; i < n; i++ {
		samples = append(samples, ct.SampleLatency(at, rng))
	}
	var sum time.Duration
	below := 0
	med := time.Duration(ct.Median.At(at) * float64(time.Second))
	for _, s := range samples {
		sum += s
		if s <= med {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("fraction below trace median = %v, want ~0.5", frac)
	}
}

func TestSampleSuccessFollowsTrace(t *testing.T) {
	sc := MustGenerate(Failure1, 1)
	ct := sc.Cluster("cluster-1")
	rng := sim.NewRand(5)
	at := 5 * time.Minute
	want := ct.Success.At(at)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if ct.SampleSuccess(at, rng) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("success frequency = %v, trace value %v", got, want)
	}
}
