package trace

import (
	"time"

	"l3/internal/sim"
)

// clusterParams parameterises one cluster's latency process: a base median
// band, a tail-ratio band (P99/median), and sustained degradation
// episodes.
type clusterParams struct {
	medLo, medHi       float64 // base median band, seconds
	ratioLo, ratioHi   float64 // P99/median band
	epCount            int     // degradation episodes over the scenario
	epMinLen, epMaxLen int     // episode duration, steps
	epMagLo, epMagHi   float64 // episode P99 multiplier at the peak
	epMedFraction      float64 // fraction of the episode magnitude hitting the median
	p99Cap             float64 // hard cap on P99, seconds
}

// buildCluster synthesises one cluster's latency trace.
func buildCluster(r *sim.Rand, name string, n int, step time.Duration, p clusterParams) ClusterTrace {
	med := walk(r, n, p.medLo, p.medHi, 0.08)
	ratio := walk(r, n, p.ratioLo, p.ratioHi, 0.1)
	ep := episodes(r, n, p.epCount, p.epMinLen, p.epMaxLen, p.epMagLo, p.epMagHi)

	p99 := make([]float64, n)
	for i := range p99 {
		p99[i] = med[i] * ratio[i]
	}
	mulInto(p99, ep, 1)
	mulInto(med, ep, p.epMedFraction)
	if p.p99Cap > 0 {
		clampMax(p99, p.p99Cap)
	}
	for i := range p99 {
		if med[i] > p99[i] {
			med[i] = p99[i]
		}
	}
	return ClusterTrace{
		Cluster: name,
		Median:  Series{Step: step, Values: med},
		P99:     Series{Step: step, Values: p99},
		Success: Constant(step, n, 1),
	}
}
