package chaos

import (
	"fmt"
	"testing"
	"time"

	"l3/internal/sim"
)

// fakeLinks records link fault calls.
type fakeLinks struct {
	log []string
}

func (f *fakeLinks) InjectLinkFault(from, to string, extra time.Duration, partitioned bool, flap time.Duration) {
	f.log = append(f.log, fmt.Sprintf("inject %s>%s extra=%v part=%v flap=%v", from, to, extra, partitioned, flap))
}

func (f *fakeLinks) HealLinkFault(from, to string) {
	f.log = append(f.log, fmt.Sprintf("heal %s>%s", from, to))
}

// fakeBackend records crash/restart/concurrency calls.
type fakeBackend struct {
	conc      int
	crashed   int
	restarted []time.Duration
}

func (f *fakeBackend) Crash()                          { f.crashed++ }
func (f *fakeBackend) Restart(slowStart time.Duration) { f.restarted = append(f.restarted, slowStart) }
func (f *fakeBackend) Concurrency() int                { return f.conc }
func (f *fakeBackend) SetConcurrency(n int)            { f.conc = n }

type fakeGate struct{ dropping bool }

func (f *fakeGate) SetDropping(d bool) { f.dropping = d }

type fakeLeader struct {
	leading bool
	kills   int
	revives int
}

func (f *fakeLeader) Kill()          { f.kills++; f.leading = false }
func (f *fakeLeader) Revive()        { f.revives++ }
func (f *fakeLeader) IsLeader() bool { return f.leading }

func mustParse(t *testing.T, s string) Schedule {
	t.Helper()
	sched, err := ParseSchedule(s)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", s, err)
	}
	return *sched
}

func TestInjectorPartitionBidirectionalAndWildcard(t *testing.T) {
	engine := sim.NewEngine()
	links := &fakeLinks{}
	inj := New(engine, mustParse(t, "partition@10s+5s:c2/*"), Targets{
		Clusters: []string{"c1", "c2", "c3"},
		Links:    links,
	}, 0)
	if err := inj.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	engine.RunUntil(time.Minute)
	want := []string{
		"inject c2>c1 extra=0s part=true flap=0s",
		"inject c1>c2 extra=0s part=true flap=0s",
		"inject c2>c3 extra=0s part=true flap=0s",
		"inject c3>c2 extra=0s part=true flap=0s",
		"heal c2>c1", "heal c1>c2", "heal c2>c3", "heal c3>c2",
	}
	if len(links.log) != len(want) {
		t.Fatalf("log = %v", links.log)
	}
	for i, w := range want {
		if links.log[i] != w {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, links.log[i], w, links.log)
		}
	}
	if inj.Applied() != 1 || inj.Healed() != 1 {
		t.Fatalf("applied=%d healed=%d, want 1/1", inj.Applied(), inj.Healed())
	}
}

func TestInjectorDelaySpikeIsDirected(t *testing.T) {
	engine := sim.NewEngine()
	links := &fakeLinks{}
	inj := New(engine, mustParse(t, "delay@1s+1s:c1/c2/40ms"), Targets{Links: links}, 0)
	if err := inj.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	engine.RunUntil(time.Minute)
	if len(links.log) != 2 || links.log[0] != "inject c1>c2 extra=40ms part=false flap=0s" || links.log[1] != "heal c1>c2" {
		t.Fatalf("log = %v", links.log)
	}
}

func TestInjectorCrashAndSaturate(t *testing.T) {
	engine := sim.NewEngine()
	be := &fakeBackend{conc: 8}
	inj := New(engine, mustParse(t, "crash@1s+2s:api/15s; saturate@10s+5s:api/0.25"), Targets{
		Backends: map[string]BackendInjector{"api": be},
	}, 0)
	if err := inj.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	engine.RunUntil(5 * time.Second)
	if be.crashed != 1 || len(be.restarted) != 1 || be.restarted[0] != 15*time.Second {
		t.Fatalf("crash/restart: crashed=%d restarted=%v", be.crashed, be.restarted)
	}
	engine.RunUntil(12 * time.Second)
	if be.conc != 2 { // 8 * 0.25
		t.Fatalf("saturated concurrency = %d, want 2", be.conc)
	}
	engine.RunUntil(time.Minute)
	if be.conc != 8 {
		t.Fatalf("healed concurrency = %d, want 8", be.conc)
	}
}

func TestInjectorScrapeDropAndShift(t *testing.T) {
	engine := sim.NewEngine()
	gate := &fakeGate{}
	// Shift by 30s: the event written at 10s lands at 40s of engine time.
	inj := New(engine, mustParse(t, "scrapedrop@10s+5s"), Targets{
		Scrapers: []ScrapeGate{gate},
	}, 30*time.Second)
	if err := inj.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	engine.RunUntil(39 * time.Second)
	if gate.dropping {
		t.Fatal("dropping before shifted At")
	}
	engine.RunUntil(41 * time.Second)
	if !gate.dropping {
		t.Fatal("not dropping after shifted At")
	}
	engine.RunUntil(46 * time.Second)
	if gate.dropping {
		t.Fatal("still dropping after shifted heal")
	}
}

func TestInjectorLeaderKillPicksCurrentLeader(t *testing.T) {
	engine := sim.NewEngine()
	a := &fakeLeader{}
	b := &fakeLeader{leading: true}
	inj := New(engine, mustParse(t, "leaderkill@1s+10s"), Targets{
		Leaders: map[string]Leader{"l3-0": a, "l3-1": b},
	}, 0)
	if err := inj.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	engine.RunUntil(time.Minute)
	if a.kills != 0 || b.kills != 1 || b.revives != 1 {
		t.Fatalf("kills a=%d b=%d revives b=%d; want 0/1/1", a.kills, b.kills, b.revives)
	}
}

// fakeCorruptGate is a scrape gate with every hygiene-fault capability.
type fakeCorruptGate struct {
	fakeGate
	garbage map[string]string
	skew    time.Duration
	slow    int
	resets  []string
}

func (f *fakeCorruptGate) SetGarbage(backend, mode string, on bool) {
	if f.garbage == nil {
		f.garbage = make(map[string]string)
	}
	if on {
		f.garbage[backend] = mode
	} else {
		delete(f.garbage, backend)
	}
}

func (f *fakeCorruptGate) SetSkew(d time.Duration) { f.skew = d }
func (f *fakeCorruptGate) SetSlowFactor(n int)     { f.slow = n }

func (f *fakeCorruptGate) ResetBackendCounters(b string) { f.resets = append(f.resets, b) }

func TestInjectorHygieneFaults(t *testing.T) {
	engine := sim.NewEngine()
	gate := &fakeCorruptGate{}
	sched := mustParse(t,
		"garbage@1s+10s:negative/api-1; clockskew@2s+10s:6s; slowscrape@3s+10s:3; counterreset@4s:api-1")
	inj := New(engine, sched, Targets{
		Scrapers: []ScrapeGate{gate},
		Metrics:  gate,
	}, 0)
	if err := inj.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	engine.RunUntil(5 * time.Second)
	if gate.garbage["api-1"] != "negative" {
		t.Fatalf("garbage = %v", gate.garbage)
	}
	if gate.skew != 6*time.Second || gate.slow != 3 {
		t.Fatalf("skew=%v slow=%d", gate.skew, gate.slow)
	}
	if len(gate.resets) != 1 || gate.resets[0] != "api-1" {
		t.Fatalf("resets = %v", gate.resets)
	}
	engine.RunUntil(time.Minute)
	if len(gate.garbage) != 0 || gate.skew != 0 || gate.slow != 0 {
		t.Fatalf("faults not healed: garbage=%v skew=%v slow=%d", gate.garbage, gate.skew, gate.slow)
	}
	if inj.Applied() != 4 || inj.Healed() != 3 {
		t.Fatalf("applied=%d healed=%d, want 4/3", inj.Applied(), inj.Healed())
	}
}

func TestInjectorValidatesTargets(t *testing.T) {
	engine := sim.NewEngine()
	cases := []struct {
		sched   string
		targets Targets
	}{
		{"partition@1s+1s:a/b", Targets{}},
		{"partition@1s+1s:a/*", Targets{Links: &fakeLinks{}}},
		{"crash@1s+1s:ghost", Targets{Backends: map[string]BackendInjector{"api": &fakeBackend{}}}},
		{"scrapedrop@1s+1s", Targets{}},
		{"leaderkill@1s", Targets{}},
		{"leaderkill@1s:ghost", Targets{Leaders: map[string]Leader{"l3-0": &fakeLeader{}}}},
		// A plain ScrapeGate lacks the corruption capabilities; counterreset
		// needs a metric resetter.
		{"garbage@1s+1s", Targets{Scrapers: []ScrapeGate{&fakeGate{}}}},
		{"clockskew@1s+1s:6s", Targets{Scrapers: []ScrapeGate{&fakeGate{}}}},
		{"slowscrape@1s+1s:3", Targets{Scrapers: []ScrapeGate{&fakeGate{}}}},
		{"counterreset@1s:api", Targets{}},
	}
	for _, c := range cases {
		inj := New(engine, mustParse(t, c.sched), c.targets, 0)
		if err := inj.Start(); err == nil {
			t.Errorf("Start(%q) = nil error, want target validation failure", c.sched)
		}
	}
}
