package chaos

import "testing"

// FuzzParseSchedule drives the schedule grammar with arbitrary input. Two
// properties must hold for every input the parser accepts:
//
//  1. the parsed schedule passes Validate (ParseSchedule promises only
//     valid schedules come back), and
//  2. String() renders a canonical form that is a parser fixed point:
//     it re-parses successfully and renders to the same bytes again.
func FuzzParseSchedule(f *testing.F) {
	seeds := []string{
		// One well-formed example per kind and operand arity.
		"partition@2m+1m:cluster-1/cluster-2",
		"partition@2m+1m:cluster-2/*",
		"delay@2m+1m:cluster-1/cluster-3/40ms",
		"flap@2m+1m:cluster-1/cluster-3/40ms/10s",
		"crash@3m+30s:api-cluster-2",
		"crash@3m+30s:api-cluster-2/15s",
		"saturate@2m+1m:api-cluster-3/0.25",
		"scrapedrop@2m+30s",
		"leaderkill@2m",
		"leaderkill@2m+1m:l3-0",
		"counterreset@2m:api-cluster-2",
		"garbage@2m+30s",
		"garbage@2m+30s:nan",
		"garbage@2m+30s:negative/api-cluster-1",
		"clockskew@2m+1m:6s",
		"slowscrape@2m+1m:3",
		// Multi-event, whitespace, and near-miss shapes.
		"partition@1s+1s:a/b; crash@2s+1s:c",
		"  scrapedrop@90s+30s ;  ",
		"partition@-1s+1s:a/b",
		"saturate@1s+1s:b/2",
		"saturate@1s+1s:b/NaN",
		"garbage@1s+1s:bogus",
		"clockskew@1s:6s",
		"kind@1s",
		"@",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseSchedule(s)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		if err := sched.Validate(); err != nil {
			t.Fatalf("accepted schedule fails Validate: %v (input %q)", err, s)
		}
		canonical := sched.String()
		again, err := ParseSchedule(canonical)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v (input %q)", canonical, err, s)
		}
		if got := again.String(); got != canonical {
			t.Fatalf("canonical form is not a fixed point: %q -> %q (input %q)", canonical, got, s)
		}
	})
}
