package chaos

import (
	"math"
	"sort"
	"time"
)

// Report is the recovery scorecard of one run under a fault schedule — the
// quantities the chaos figures compare across load-balancing algorithms.
type Report struct {
	// TimeToRecover is how long after fault injection the success rate
	// stayed back above threshold (zero if it never dipped). Valid only
	// when Recovered.
	TimeToRecover time.Duration
	// Recovered reports whether the success rate came back at all.
	Recovered bool
	// SLOViolation is the total measured time the success rate spent below
	// threshold.
	SLOViolation time.Duration
	// Trough is the lowest per-bucket success rate observed after
	// injection (1 = unscathed, 0 = full blackout).
	Trough float64
	// Reconverge is how long after heal the TrafficSplit weights settled
	// back to their final steady state. Valid only when ReconvergeOK.
	Reconverge time.Duration
	// ReconvergeOK reports whether the weights settled within the run.
	ReconvergeOK bool
	// FailoverGap is the longest interval without a TrafficSplit update
	// spanning a leader kill (zero when no kill was scheduled).
	FailoverGap time.Duration
}

// WeightSnapshot is one observed TrafficSplit state: the virtual time of
// the update and the integer weight per backend.
type WeightSnapshot struct {
	At      time.Duration
	Weights map[string]int64
}

// TimeToRecover scans a per-bucket success-rate series (fractions in
// [0,1], bucket i covering [i*bucket, (i+1)*bucket)) for recovery from a
// fault injected at faultStart: the first moment at or after injection
// where the rate holds at or above threshold for sustain consecutive
// buckets. It returns the delay from injection to that moment, and false
// if the series never recovers. A series that never dips returns (0,
// true).
func TimeToRecover(success []float64, bucket time.Duration, faultStart time.Duration, threshold float64, sustain int) (time.Duration, bool) {
	if bucket <= 0 || len(success) == 0 {
		return 0, false
	}
	if sustain < 1 {
		sustain = 1
	}
	from := int(faultStart / bucket)
	if from < 0 {
		from = 0
	}
	if from >= len(success) {
		return 0, false
	}
	dipped := false
	run := 0
	for i := from; i < len(success); i++ {
		if success[i] < threshold {
			dipped = true
			run = 0
			continue
		}
		run++
		if run >= sustain {
			if !dipped {
				return 0, true
			}
			start := time.Duration(i-sustain+1) * bucket
			if d := start - faultStart; d > 0 {
				return d, true
			}
			return 0, true
		}
	}
	if !dipped {
		return 0, true
	}
	return 0, false
}

// SLOViolation totals the time the success-rate series spent below
// threshold, counting each violating bucket at full width.
func SLOViolation(success []float64, bucket time.Duration, threshold float64) time.Duration {
	var total time.Duration
	for _, v := range success {
		if v < threshold {
			total += bucket
		}
	}
	return total
}

// Trough returns the lowest success rate at or after faultStart — the
// depth of the availability dip. An empty window returns 1 (no data, no
// observed dip).
func Trough(success []float64, bucket time.Duration, faultStart time.Duration) float64 {
	if bucket <= 0 {
		return 1
	}
	from := int(faultStart / bucket)
	if from < 0 {
		from = 0
	}
	low := 1.0
	for i := from; i < len(success); i++ {
		if success[i] < low {
			low = success[i]
		}
	}
	return low
}

// ReconvergeTime measures how long after heal the TrafficSplit weights
// settled: the earliest snapshot at or after heal from which every later
// snapshot (itself included) stays within tol normalized-L1 distance of
// the final snapshot. It returns the delay from heal to that snapshot, and
// false when no snapshot after heal settles (or none exists).
func ReconvergeTime(snaps []WeightSnapshot, heal time.Duration, tol float64) (time.Duration, bool) {
	if len(snaps) == 0 {
		return 0, false
	}
	ordered := make([]WeightSnapshot, len(snaps))
	copy(ordered, snaps)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	final := ordered[len(ordered)-1].Weights
	settled := -1
	for i := len(ordered) - 1; i >= 0; i-- {
		if weightDistance(ordered[i].Weights, final) > tol {
			break
		}
		settled = i
	}
	if settled < 0 {
		return 0, false
	}
	for i := settled; i < len(ordered); i++ {
		if ordered[i].At >= heal {
			return ordered[i].At - heal, true
		}
	}
	// Settled before the heal even landed — converged instantly.
	return 0, true
}

// weightDistance is the normalized L1 distance between two weight vectors:
// half the sum of per-backend share differences, so 0 means identical
// traffic shares and 1 means fully disjoint.
func weightDistance(a, b map[string]int64) float64 {
	norm := func(w map[string]int64) map[string]float64 {
		var sum float64
		for _, v := range w {
			sum += float64(v)
		}
		out := make(map[string]float64, len(w))
		if sum <= 0 {
			return out
		}
		for k, v := range w {
			out[k] = float64(v) / sum
		}
		return out
	}
	na, nb := norm(a), norm(b)
	keys := make(map[string]bool, len(na)+len(nb))
	for k := range na {
		keys[k] = true
	}
	for k := range nb {
		keys[k] = true
	}
	var dist float64
	for k := range keys {
		dist += math.Abs(na[k] - nb[k])
	}
	return dist / 2
}

// FailoverGap returns the longest stretch without a TrafficSplit update
// that spans killAt — the window in which no controller was writing
// weights. updates are the virtual times of observed split writes; end is
// the end of the run (bounding the gap when no update ever followed the
// kill). No updates before the kill anchor the gap at the kill itself.
func FailoverGap(updates []time.Duration, killAt, end time.Duration) time.Duration {
	ordered := make([]time.Duration, len(updates))
	copy(ordered, updates)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	last := killAt
	for _, u := range ordered {
		if u <= killAt {
			last = u
			continue
		}
		return u - last
	}
	if end > last {
		return end - last
	}
	return 0
}
