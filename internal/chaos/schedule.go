// Package chaos is a seeded, declarative fault-injection engine for the
// discrete-event simulation: a Schedule of timed fault events (inject at At,
// heal at At+Duration) applied through small injector interfaces the
// substrates expose — WAN links (internal/wan), backend deployments
// (internal/backend), the metrics scraper (internal/core) and the
// leader-elected controller instances (internal/core + internal/cluster).
//
// The paper's failure scenarios (§5.1) model failures statistically, as
// success-rate dips baked into the input traces. Chaos schedules instead
// inject structural faults — the link actually blackholes, the pod actually
// dies, the leader actually stops renewing its lease — so the repository can
// measure recovery: how long each balancing strategy needs to steer away
// from (and back to) a failed resource, and what the failure costs in
// SLO-violation seconds. Everything is scheduled on the virtual clock, so a
// chaos run is exactly as deterministic as the simulation it perturbs.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kind enumerates the fault types the engine can inject.
type Kind int

const (
	// Partition blackholes the From↔To links in both directions (To may be
	// "*" for "From against every other cluster"): requests and probes in
	// transit are lost and clients time out.
	Partition Kind = iota + 1
	// DelaySpike adds Extra one-way delay to the directed From→To link —
	// asymmetric by construction; schedule the reverse link for symmetry.
	DelaySpike
	// LinkFlap makes the Extra delay of the directed From→To link come and
	// go every Flap interval — a routing path bouncing between a short and
	// a long route.
	LinkFlap
	// BackendCrash kills the named Backend; healing restarts it with
	// SlowStart worth of cold-start capacity ramp.
	BackendCrash
	// Saturate shrinks the named Backend's worker pool to Factor of its
	// capacity, so offered load drives it into queueing.
	Saturate
	// ScrapeDrop makes the control plane's metric scrapes fail, freezing
	// the TSDB at stale values.
	ScrapeDrop
	// LeaderKill crashes the Target controller instance without releasing
	// its leadership lease; healing revives the instance.
	LeaderKill
	// CounterReset zeroes the cumulative metric series of the named Backend
	// at the event time, as a pod restart would — instantaneous, no heal.
	CounterReset
	// Garbage corrupts scraped sample values (NaN and/or negated, per Mode)
	// for the named Backend's series, or every series when Backend is empty.
	Garbage
	// ClockSkew back-dates alternating scrape passes by Skew, jittering (or,
	// beyond the scrape interval, reordering) ingestion timestamps.
	ClockSkew
	// SlowScrape stretches the effective scrape interval SlowFactor-fold by
	// letting only every n-th scheduled scrape run.
	SlowScrape

	// Wall-clock fault kinds: real-socket misbehaviour injected into the
	// serving mode's stub fleet (chaos.WallRunner + serve.ChaosStub). They
	// share this grammar so a schedule written for `l3serve -chaostest`
	// reads exactly like one written for `l3bench -chaos`; the simulator's
	// Injector rejects them loudly — a sim backend has no TCP connection to
	// reset.

	// Stall makes the named Backend accept connections but never answer
	// until healed — the slow-loris server, the wedged runtime, the full
	// accept queue. Clients hang until their deadline fires.
	Stall
	// ConnReset makes the named Backend reset (TCP RST) every connection at
	// the first request — a crashed process with a live listener socket.
	ConnReset
	// SlowLoris makes the named Backend answer headers promptly, then drip
	// the response body one byte per Extra interval until healed.
	SlowLoris
	// ErrorBurst makes the named Backend answer 500 to Factor of requests.
	ErrorBurst
	// LatencyRamp linearly ramps the named Backend's added latency from 0
	// to Extra across the event window, then drops it back at heal — the
	// degrading-disk / saturating-neighbour shape that breaks controllers
	// tuned only for step faults.
	LatencyRamp
	// BackendFlap alternates the named Backend between resetting
	// connections and serving normally every Flap interval — a
	// crash-looping process behind a stable address.
	BackendFlap
)

// name returns the schedule-format keyword of the kind.
func (k Kind) name() string {
	switch k {
	case Partition:
		return "partition"
	case DelaySpike:
		return "delay"
	case LinkFlap:
		return "flap"
	case BackendCrash:
		return "crash"
	case Saturate:
		return "saturate"
	case ScrapeDrop:
		return "scrapedrop"
	case LeaderKill:
		return "leaderkill"
	case CounterReset:
		return "counterreset"
	case Garbage:
		return "garbage"
	case ClockSkew:
		return "clockskew"
	case SlowScrape:
		return "slowscrape"
	case Stall:
		return "stall"
	case ConnReset:
		return "reset"
	case SlowLoris:
		return "slowloris"
	case ErrorBurst:
		return "errorburst"
	case LatencyRamp:
		return "ramp"
	case BackendFlap:
		return "bflap"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timed fault: injected at At, healed at At+Duration (a zero
// Duration never heals). Times are relative to the start of measurement;
// harnesses that warm up first shift them.
type Event struct {
	Kind     Kind
	At       time.Duration
	Duration time.Duration

	// From/To name the directed WAN link (Partition treats the pair as
	// bidirectional; To "*" expands to every other cluster).
	From, To string
	// Backend names the deployment for BackendCrash/Saturate.
	Backend string
	// Target names the controller instance for LeaderKill.
	Target string
	// Extra is the added one-way delay for DelaySpike/LinkFlap.
	Extra time.Duration
	// Flap is the on/off period for LinkFlap.
	Flap time.Duration
	// Factor is the capacity fraction kept under Saturate (0 < Factor < 1).
	Factor float64
	// SlowStart is the capacity ramp after a BackendCrash heals.
	SlowStart time.Duration
	// Mode selects Garbage corruption: "nan", "negative" or "mixed"
	// (alternating; the default when empty).
	Mode string
	// Skew is the back-dating applied by ClockSkew.
	Skew time.Duration
	// SlowFactor is SlowScrape's interval multiplier (≥ 2).
	SlowFactor int
}

// String renders the event in the schedule format ParseSchedule accepts.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", e.Kind.name(), e.At)
	if e.Duration > 0 {
		fmt.Fprintf(&b, "+%s", e.Duration)
	}
	switch e.Kind {
	case Partition:
		fmt.Fprintf(&b, ":%s/%s", e.From, e.To)
	case DelaySpike:
		fmt.Fprintf(&b, ":%s/%s/%s", e.From, e.To, e.Extra)
	case LinkFlap:
		fmt.Fprintf(&b, ":%s/%s/%s/%s", e.From, e.To, e.Extra, e.Flap)
	case BackendCrash:
		fmt.Fprintf(&b, ":%s", e.Backend)
		if e.SlowStart > 0 {
			fmt.Fprintf(&b, "/%s", e.SlowStart)
		}
	case Saturate:
		fmt.Fprintf(&b, ":%s/%g", e.Backend, e.Factor)
	case LeaderKill:
		if e.Target != "" {
			fmt.Fprintf(&b, ":%s", e.Target)
		}
	case CounterReset:
		fmt.Fprintf(&b, ":%s", e.Backend)
	case Garbage:
		switch {
		case e.Backend != "":
			mode := e.Mode
			if mode == "" {
				mode = "mixed"
			}
			fmt.Fprintf(&b, ":%s/%s", mode, e.Backend)
		case e.Mode != "":
			fmt.Fprintf(&b, ":%s", e.Mode)
		}
	case ClockSkew:
		fmt.Fprintf(&b, ":%s", e.Skew)
	case SlowScrape:
		fmt.Fprintf(&b, ":%d", e.SlowFactor)
	case Stall, ConnReset:
		fmt.Fprintf(&b, ":%s", e.Backend)
	case SlowLoris, LatencyRamp:
		fmt.Fprintf(&b, ":%s/%s", e.Backend, e.Extra)
	case ErrorBurst:
		fmt.Fprintf(&b, ":%s/%g", e.Backend, e.Factor)
	case BackendFlap:
		fmt.Fprintf(&b, ":%s/%s", e.Backend, e.Flap)
	}
	return b.String()
}

// Validate checks the event's structural invariants.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("chaos: %s event at negative time %v", e.Kind.name(), e.At)
	}
	if e.Duration < 0 {
		return fmt.Errorf("chaos: %s event with negative duration %v", e.Kind.name(), e.Duration)
	}
	switch e.Kind {
	case Partition:
		if e.From == "" || e.To == "" {
			return fmt.Errorf("chaos: partition needs both link endpoints")
		}
	case DelaySpike:
		if e.From == "" || e.To == "" || e.Extra <= 0 {
			return fmt.Errorf("chaos: delay spike needs link endpoints and a positive extra delay")
		}
	case LinkFlap:
		if e.From == "" || e.To == "" || e.Extra <= 0 || e.Flap <= 0 {
			return fmt.Errorf("chaos: link flap needs link endpoints, extra delay and a period")
		}
	case BackendCrash:
		if e.Backend == "" {
			return fmt.Errorf("chaos: backend crash needs a backend name")
		}
	case Saturate:
		// Written as a positive range check so NaN (every comparison false)
		// cannot slip through.
		if e.Backend == "" || !(e.Factor > 0 && e.Factor < 1) {
			return fmt.Errorf("chaos: saturate needs a backend and a factor in (0, 1)")
		}
		if e.Duration == 0 {
			return fmt.Errorf("chaos: saturate needs a heal time (capacity must come back)")
		}
	case ScrapeDrop:
		// No operands.
	case LeaderKill:
		// Target may be empty: the engine then kills the current leader.
	case CounterReset:
		if e.Backend == "" {
			return fmt.Errorf("chaos: counterreset needs a backend name")
		}
		if e.Duration != 0 {
			return fmt.Errorf("chaos: counterreset is instantaneous (no duration)")
		}
	case Garbage:
		switch e.Mode {
		case "", "nan", "negative", "mixed":
		default:
			return fmt.Errorf("chaos: unknown garbage mode %q", e.Mode)
		}
		if e.Duration == 0 {
			return fmt.Errorf("chaos: garbage needs a heal time (corruption must stop)")
		}
	case ClockSkew:
		if e.Skew <= 0 {
			return fmt.Errorf("chaos: clockskew needs a positive skew")
		}
		if e.Duration == 0 {
			return fmt.Errorf("chaos: clockskew needs a heal time")
		}
	case SlowScrape:
		if e.SlowFactor < 2 {
			return fmt.Errorf("chaos: slowscrape needs a factor of at least 2")
		}
		if e.Duration == 0 {
			return fmt.Errorf("chaos: slowscrape needs a heal time")
		}
	case Stall, ConnReset:
		if e.Backend == "" {
			return fmt.Errorf("chaos: %s needs a backend name", e.Kind.name())
		}
	case SlowLoris:
		if e.Backend == "" || e.Extra <= 0 {
			return fmt.Errorf("chaos: slowloris needs a backend and a positive drip interval")
		}
	case ErrorBurst:
		// Positive range check so NaN cannot slip through (as Saturate).
		if e.Backend == "" || !(e.Factor > 0 && e.Factor <= 1) {
			return fmt.Errorf("chaos: errorburst needs a backend and an error fraction in (0, 1]")
		}
		if e.Duration == 0 {
			return fmt.Errorf("chaos: errorburst needs a heal time (errors must stop)")
		}
	case LatencyRamp:
		if e.Backend == "" || e.Extra <= 0 {
			return fmt.Errorf("chaos: ramp needs a backend and a positive target latency")
		}
		if e.Duration == 0 {
			return fmt.Errorf("chaos: ramp needs a duration (the ramp's length is the window)")
		}
	case BackendFlap:
		if e.Backend == "" || e.Flap <= 0 {
			return fmt.Errorf("chaos: bflap needs a backend and a flap period")
		}
		if e.Duration == 0 {
			return fmt.Errorf("chaos: bflap needs a heal time (flapping must stop)")
		}
		if e.Flap >= e.Duration {
			return fmt.Errorf("chaos: bflap period %v must be shorter than the window %v", e.Flap, e.Duration)
		}
	default:
		return fmt.Errorf("chaos: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// Validate checks every event.
func (s *Schedule) Validate() error {
	if len(s.Events) == 0 {
		return fmt.Errorf("chaos: empty schedule")
	}
	for _, e := range s.Events {
		if err := e.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Start returns the earliest injection time of the schedule.
func (s *Schedule) Start() time.Duration {
	first := time.Duration(-1)
	for _, e := range s.Events {
		if first < 0 || e.At < first {
			first = e.At
		}
	}
	if first < 0 {
		first = 0
	}
	return first
}

// End returns the latest heal time of the schedule; ok is false when some
// event never heals.
func (s *Schedule) End() (last time.Duration, ok bool) {
	ok = true
	for _, e := range s.Events {
		if e.Duration == 0 {
			ok = false
			continue
		}
		if t := e.At + e.Duration; t > last {
			last = t
		}
	}
	return last, ok
}

// String renders the schedule in the format ParseSchedule accepts, events
// sorted by injection time.
func (s *Schedule) String() string {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// ParseSchedule parses the textual schedule format used by the l3bench
// -chaos flag: semicolon-separated events, each
//
//	kind@at[+duration][:operands]
//
// with durations in Go syntax (90s, 2m30s) and slash-separated operands:
//
//	partition@2m+1m:cluster-1/cluster-2     blackhole the pair both ways
//	partition@2m+1m:cluster-2/*             cut cluster-2 off entirely
//	delay@2m+1m:cluster-1/cluster-3/40ms    one-way delay spike
//	flap@2m+1m:cluster-1/cluster-3/40ms/10s delay comes and goes every 10 s
//	crash@3m+30s:api-cluster-2/15s          crash; restart ramps over 15 s
//	saturate@2m+1m:api-cluster-3/0.25       keep 25 % of worker capacity
//	scrapedrop@2m+30s                       control plane loses scrapes
//	leaderkill@2m                           kill the leader (never revived)
//	leaderkill@2m+1m:l3-0                   kill instance l3-0, revive at 3m
//	counterreset@2m:api-cluster-2           pod restart zeroes its counters
//	garbage@2m+30s                          corrupt every scrape (mixed mode)
//	garbage@2m+30s:nan                      NaN-poison every scraped value
//	garbage@2m+30s:negative/api-cluster-1   negate one backend's samples
//	clockskew@2m+1m:6s                      back-date alternating scrapes 6 s
//	slowscrape@2m+1m:3                      scrape every 15 s instead of 5 s
//
// Wall-clock fault kinds (injected by WallRunner into the serving mode's
// chaos stubs; the simulator rejects them):
//
//	stall@5s+4s:api-a                       accept connections, never answer
//	reset@5s+4s:api-a                       TCP-reset every connection
//	slowloris@5s+4s:api-a/100ms             drip body bytes every 100 ms
//	errorburst@5s+4s:api-a/0.8              80 % of requests answer 500
//	ramp@5s+6s:api-a/300ms                  latency ramps 0→300 ms over 6 s
//	bflap@5s+8s:api-a/1s                    resets come and go every 1 s
func ParseSchedule(s string) (*Schedule, error) {
	sched := &Schedule{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		sched.Events = append(sched.Events, ev)
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return sched, nil
}

func parseEvent(s string) (Event, error) {
	var ev Event
	head, operands, hasOps := strings.Cut(s, ":")
	kindName, when, ok := strings.Cut(head, "@")
	if !ok {
		return ev, fmt.Errorf("chaos: event %q lacks an @time", s)
	}
	switch strings.TrimSpace(kindName) {
	case "partition":
		ev.Kind = Partition
	case "delay":
		ev.Kind = DelaySpike
	case "flap":
		ev.Kind = LinkFlap
	case "crash":
		ev.Kind = BackendCrash
	case "saturate":
		ev.Kind = Saturate
	case "scrapedrop":
		ev.Kind = ScrapeDrop
	case "leaderkill":
		ev.Kind = LeaderKill
	case "counterreset":
		ev.Kind = CounterReset
	case "garbage":
		ev.Kind = Garbage
	case "clockskew":
		ev.Kind = ClockSkew
	case "slowscrape":
		ev.Kind = SlowScrape
	case "stall":
		ev.Kind = Stall
	case "reset":
		ev.Kind = ConnReset
	case "slowloris":
		ev.Kind = SlowLoris
	case "errorburst":
		ev.Kind = ErrorBurst
	case "ramp":
		ev.Kind = LatencyRamp
	case "bflap":
		ev.Kind = BackendFlap
	default:
		return ev, fmt.Errorf("chaos: unknown event kind %q", kindName)
	}

	atStr, durStr, hasDur := strings.Cut(when, "+")
	at, err := time.ParseDuration(strings.TrimSpace(atStr))
	if err != nil {
		return ev, fmt.Errorf("chaos: event %q: bad time: %w", s, err)
	}
	ev.At = at
	if hasDur {
		d, err := time.ParseDuration(strings.TrimSpace(durStr))
		if err != nil {
			return ev, fmt.Errorf("chaos: event %q: bad duration: %w", s, err)
		}
		ev.Duration = d
	}

	var fields []string
	if hasOps {
		for _, f := range strings.Split(operands, "/") {
			fields = append(fields, strings.TrimSpace(f))
		}
	}
	if err := ev.parseOperands(fields); err != nil {
		return ev, fmt.Errorf("chaos: event %q: %w", s, err)
	}
	return ev, ev.Validate()
}

func (e *Event) parseOperands(fields []string) error {
	need := func(n int) error {
		if len(fields) != n {
			return fmt.Errorf("%s takes %d operand(s), got %d", e.Kind.name(), n, len(fields))
		}
		return nil
	}
	switch e.Kind {
	case Partition:
		if err := need(2); err != nil {
			return err
		}
		e.From, e.To = fields[0], fields[1]
	case DelaySpike:
		if err := need(3); err != nil {
			return err
		}
		e.From, e.To = fields[0], fields[1]
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return err
		}
		e.Extra = d
	case LinkFlap:
		if err := need(4); err != nil {
			return err
		}
		e.From, e.To = fields[0], fields[1]
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return err
		}
		e.Extra = d
		p, err := time.ParseDuration(fields[3])
		if err != nil {
			return err
		}
		e.Flap = p
	case BackendCrash:
		if len(fields) != 1 && len(fields) != 2 {
			return fmt.Errorf("crash takes a backend and an optional slow-start, got %d operand(s)", len(fields))
		}
		e.Backend = fields[0]
		if len(fields) == 2 {
			d, err := time.ParseDuration(fields[1])
			if err != nil {
				return err
			}
			e.SlowStart = d
		}
	case Saturate:
		if err := need(2); err != nil {
			return err
		}
		e.Backend = fields[0]
		if _, err := fmt.Sscanf(fields[1], "%g", &e.Factor); err != nil {
			return fmt.Errorf("bad saturate factor %q: %w", fields[1], err)
		}
	case ScrapeDrop:
		return need(0)
	case LeaderKill:
		if len(fields) > 1 {
			return fmt.Errorf("leaderkill takes at most one target, got %d operands", len(fields))
		}
		if len(fields) == 1 {
			e.Target = fields[0]
		}
	case CounterReset:
		if err := need(1); err != nil {
			return err
		}
		e.Backend = fields[0]
	case Garbage:
		if len(fields) > 2 {
			return fmt.Errorf("garbage takes a mode and an optional backend, got %d operands", len(fields))
		}
		if len(fields) >= 1 {
			e.Mode = fields[0]
		}
		if len(fields) == 2 {
			e.Backend = fields[1]
		}
	case ClockSkew:
		if err := need(1); err != nil {
			return err
		}
		d, err := time.ParseDuration(fields[0])
		if err != nil {
			return err
		}
		e.Skew = d
	case SlowScrape:
		if err := need(1); err != nil {
			return err
		}
		if _, err := fmt.Sscanf(fields[0], "%d", &e.SlowFactor); err != nil {
			return fmt.Errorf("bad slowscrape factor %q: %w", fields[0], err)
		}
	case Stall, ConnReset:
		if err := need(1); err != nil {
			return err
		}
		e.Backend = fields[0]
	case SlowLoris, LatencyRamp:
		if err := need(2); err != nil {
			return err
		}
		e.Backend = fields[0]
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return err
		}
		e.Extra = d
	case ErrorBurst:
		if err := need(2); err != nil {
			return err
		}
		e.Backend = fields[0]
		if _, err := fmt.Sscanf(fields[1], "%g", &e.Factor); err != nil {
			return fmt.Errorf("bad errorburst fraction %q: %w", fields[1], err)
		}
	case BackendFlap:
		if err := need(2); err != nil {
			return err
		}
		e.Backend = fields[0]
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return err
		}
		e.Flap = d
	}
	return nil
}
