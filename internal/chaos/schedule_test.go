package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	in := "partition@2m+1m:cluster-1/cluster-2; delay@2m+1m:cluster-1/cluster-3/40ms; " +
		"flap@2m+1m:cluster-1/cluster-3/40ms/10s; crash@3m+30s:api-cluster-2/15s; " +
		"saturate@2m+1m:api-cluster-3/0.25; scrapedrop@2m+30s; leaderkill@2m+1m:l3-0"
	sched, err := ParseSchedule(in)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(sched.Events) != 7 {
		t.Fatalf("got %d events, want 7", len(sched.Events))
	}
	// String must render back to something ParseSchedule accepts and that
	// parses to the same schedule.
	again, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sched.String(), err)
	}
	if got, want := again.String(), sched.String(); got != want {
		t.Fatalf("round trip drifted:\n got %s\nwant %s", got, want)
	}
}

func TestParseScheduleWallKindsRoundTrip(t *testing.T) {
	in := "stall@5s+4s:api-a; reset@10s+2s:api-b; slowloris@3s+6s:api-a/50ms; " +
		"errorburst@8s+3s:api-b/0.8; ramp@2s+10s:api-a/300ms; bflap@4s+8s:api-b/2s"
	sched, err := ParseSchedule(in)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(sched.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(sched.Events))
	}
	again, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sched.String(), err)
	}
	if got, want := again.String(), sched.String(); got != want {
		t.Fatalf("round trip drifted:\n got %s\nwant %s", got, want)
	}
	ev := sched.Events[4]
	if ev.Kind != LatencyRamp || ev.Backend != "api-a" || ev.Extra != 300*time.Millisecond {
		t.Fatalf("bad ramp event: %+v", ev)
	}
	for _, s := range []string{
		"stall@5s",                // stall needs a backend
		"slowloris@3s+6s:api-a",   // slowloris needs a drip interval
		"errorburst@8s+3s:a/1.5",  // rate out of range
		"errorburst@8s:a/0.5",     // errorburst must heal
		"ramp@2s:api-a/300ms",     // ramp needs a window
		"bflap@4s+2s:api-b/5s",    // flap period longer than window
		"reset@10s+2s:api-b/oops", // reset takes one operand
	} {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) = nil error, want failure", s)
		}
	}
}

func TestParseScheduleEvents(t *testing.T) {
	sched, err := ParseSchedule("crash@3m+30s:api-cluster-2/15s")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	ev := sched.Events[0]
	if ev.Kind != BackendCrash || ev.At != 3*time.Minute || ev.Duration != 30*time.Second ||
		ev.Backend != "api-cluster-2" || ev.SlowStart != 15*time.Second {
		t.Fatalf("bad crash event: %+v", ev)
	}

	sched, err = ParseSchedule("partition@90s:cluster-2/*")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	ev = sched.Events[0]
	if ev.Kind != Partition || ev.At != 90*time.Second || ev.Duration != 0 || ev.To != "*" {
		t.Fatalf("bad partition event: %+v", ev)
	}

	sched, err = ParseSchedule("leaderkill@2m")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if ev = sched.Events[0]; ev.Kind != LeaderKill || ev.Target != "" {
		t.Fatalf("bad leaderkill event: %+v", ev)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"",                               // empty schedule
		"partition@2m",                   // missing operands
		"warp@2m+1m:a/b",                 // unknown kind
		"crash+30s:api",                  // missing @time
		"saturate@2m+1m:api/1.5",         // factor out of range
		"saturate@2m:api/0.5",            // saturate must heal
		"delay@2m+1m:a/b/not-a-duration", // bad duration operand
		"partition@-5s+1m:a/b",           // negative time
		"scrapedrop@1m+30s:extra",        // scrapedrop takes no operands
	}
	for _, s := range bad {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) = nil error, want failure", s)
		}
	}
}

func TestScheduleStartEnd(t *testing.T) {
	sched, err := ParseSchedule("crash@3m+30s:api; partition@2m+1m:a/b")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if got := sched.Start(); got != 2*time.Minute {
		t.Fatalf("Start = %v, want 2m", got)
	}
	end, ok := sched.End()
	if !ok || end != 3*time.Minute+30*time.Second {
		t.Fatalf("End = %v, %v; want 3m30s, true", end, ok)
	}

	sched, err = ParseSchedule("leaderkill@2m")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if _, ok := sched.End(); ok {
		t.Fatal("End ok for a never-healing schedule, want false")
	}
	if !strings.Contains(sched.String(), "leaderkill@2m0s") {
		t.Fatalf("String = %q", sched.String())
	}
}
