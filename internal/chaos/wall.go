package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"l3/internal/clock"
)

// WallBackend is the fault surface of one wall-clock stub backend
// (implemented by serve.ChaosStub). Setters are idempotent and safe from
// any goroutine: the runner drives them from clock callbacks while the
// stub's request handlers read them concurrently.
type WallBackend interface {
	// SetStalled makes the backend accept connections but never answer.
	SetStalled(on bool)
	// SetResetting makes the backend TCP-reset every connection.
	SetResetting(on bool)
	// SetSlowLoris drips response bodies one byte per interval (0 = off).
	SetSlowLoris(interval time.Duration)
	// SetErrorRate answers 500 to the given fraction of requests (0 = off).
	SetErrorRate(rate float64)
	// SetExtraLatency adds a fixed delay to every response (0 = off).
	SetExtraLatency(extra time.Duration)
}

// WallTargets binds a schedule's events to a wall-clock run. Scrapers
// receive the control-plane faults the sim grammar already defines
// (scrapedrop, garbage); gates additionally implementing ScrapeCorrupter
// receive garbage events, exactly as in the sim Injector.
type WallTargets struct {
	// Backends maps backend name to its fault surface.
	Backends map[string]WallBackend
	// Scrapers are the control plane's scrape gates.
	Scrapers []ScrapeGate
}

// WallRunner schedules a fault schedule onto a real clock: the wall-mode
// counterpart of Injector. The schedule grammar is shared — a schedule
// string works in either mode as long as its kinds fit the mode — but the
// injected faults are real socket misbehaviour (stalls, resets, slow-loris
// bodies) rather than structural simulator state. Ramps and flaps need
// in-window ticks, which the runner drives on the same clock, so a stopped
// runner leaves no timer behind.
type WallRunner struct {
	clk     clock.Clock
	sched   Schedule
	targets WallTargets
	shift   time.Duration

	// mu guards timers: ramp/flap ticks append from clock callbacks while
	// Stop drains from the harness goroutine.
	mu      sync.Mutex
	stopped bool
	timers  []clock.Timer
	applied atomic.Int64
	healed  atomic.Int64
}

// NewWallRunner returns a runner for one wall-clock run. shift displaces
// every event time, as Injector's does.
func NewWallRunner(clk clock.Clock, sched Schedule, targets WallTargets, shift time.Duration) *WallRunner {
	if clk == nil {
		panic("chaos: NewWallRunner requires a clock")
	}
	return &WallRunner{clk: clk, sched: sched, targets: targets, shift: shift}
}

// Start validates the schedule against the targets and arms every
// inject/heal pair. Faults already due (At ≤ 0 after shifting) fire one
// clock tick from now.
func (r *WallRunner) Start() error {
	if err := r.sched.Validate(); err != nil {
		return err
	}
	for _, ev := range r.sched.Events {
		if err := r.check(ev); err != nil {
			return err
		}
	}
	for _, ev := range r.sched.Events {
		ev := ev
		r.track(r.clk.After(r.shift+ev.At, func() {
			r.apply(ev)
			r.applied.Add(1)
		}))
		if ev.Duration > 0 {
			r.track(r.clk.After(r.shift+ev.At+ev.Duration, func() {
				r.heal(ev)
				r.healed.Add(1)
			}))
		}
	}
	return nil
}

// track registers a timer for Stop's drain; a timer registered after Stop
// is cancelled immediately.
func (r *WallRunner) track(t clock.Timer) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		t.Cancel()
		return
	}
	r.timers = append(r.timers, t)
	r.mu.Unlock()
}

// Stop cancels every pending timer and heals all injected faults, leaving
// the targets clean — the teardown path for harnesses that end mid-window.
func (r *WallRunner) Stop() {
	r.mu.Lock()
	r.stopped = true
	timers := r.timers
	r.timers = nil
	r.mu.Unlock()
	for _, t := range timers {
		t.Cancel()
	}
	for _, ev := range r.sched.Events {
		r.heal(ev)
	}
}

// Applied and Healed report progress (safe from any goroutine).
func (r *WallRunner) Applied() int { return int(r.applied.Load()) }
func (r *WallRunner) Healed() int  { return int(r.healed.Load()) }

// check verifies the run exposes the target an event needs and the kind is
// wall-injectable.
func (r *WallRunner) check(ev Event) error {
	switch ev.Kind {
	case Stall, ConnReset, SlowLoris, ErrorBurst, LatencyRamp, BackendFlap:
		if _, ok := r.targets.Backends[ev.Backend]; !ok {
			return fmt.Errorf("chaos: %s event targets unknown wall backend %q", ev.Kind.name(), ev.Backend)
		}
	case ScrapeDrop:
		if len(r.targets.Scrapers) == 0 {
			return fmt.Errorf("chaos: scrapedrop event but no scrapers")
		}
	case Garbage:
		if !anyScraper(r.targets.Scrapers, func(s ScrapeGate) bool { _, ok := s.(ScrapeCorrupter); return ok }) {
			return fmt.Errorf("chaos: garbage event but no corruptible scraper")
		}
	default:
		return fmt.Errorf("chaos: %s is not wall-injectable; run it through the simulator's Injector", ev.Kind.name())
	}
	return nil
}

func (r *WallRunner) apply(ev Event) {
	switch ev.Kind {
	case Stall:
		r.targets.Backends[ev.Backend].SetStalled(true)
	case ConnReset:
		r.targets.Backends[ev.Backend].SetResetting(true)
	case SlowLoris:
		r.targets.Backends[ev.Backend].SetSlowLoris(ev.Extra)
	case ErrorBurst:
		r.targets.Backends[ev.Backend].SetErrorRate(ev.Factor)
	case LatencyRamp:
		r.startRamp(ev)
	case BackendFlap:
		r.startFlap(ev)
	case ScrapeDrop:
		for _, s := range r.targets.Scrapers {
			s.SetDropping(true)
		}
	case Garbage:
		for _, s := range r.targets.Scrapers {
			if c, ok := s.(ScrapeCorrupter); ok {
				c.SetGarbage(ev.Backend, ev.Mode, true)
			}
		}
	}
}

// heal is idempotent: Stop replays it over every event, fired or not.
func (r *WallRunner) heal(ev Event) {
	b := r.targets.Backends[ev.Backend]
	switch ev.Kind {
	case Stall:
		b.SetStalled(false)
	case ConnReset, BackendFlap:
		b.SetResetting(false)
	case SlowLoris:
		b.SetSlowLoris(0)
	case ErrorBurst:
		b.SetErrorRate(0)
	case LatencyRamp:
		b.SetExtraLatency(0)
	case ScrapeDrop:
		for _, s := range r.targets.Scrapers {
			s.SetDropping(false)
		}
	case Garbage:
		for _, s := range r.targets.Scrapers {
			if c, ok := s.(ScrapeCorrupter); ok {
				c.SetGarbage(ev.Backend, ev.Mode, false)
			}
		}
	}
}

// startRamp drives the linear latency ramp with in-window ticks; the final
// heal timer (scheduled by Start) zeroes the latency.
func (r *WallRunner) startRamp(ev Event) {
	b := r.targets.Backends[ev.Backend]
	tick := ev.Duration / 16
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	start := r.clk.Now()
	var timer clock.Timer
	timer = r.clk.Every(tick, func() {
		elapsed := r.clk.Now() - start
		if elapsed >= ev.Duration {
			// The heal timer zeroes the latency; setting the full Extra here
			// would race it when both land on the same instant.
			timer.Cancel()
			return
		}
		b.SetExtraLatency(time.Duration(float64(ev.Extra) * float64(elapsed) / float64(ev.Duration)))
	})
	r.track(timer)
}

// startFlap toggles resetting every Flap period; the heal timer clears it.
func (r *WallRunner) startFlap(ev Event) {
	b := r.targets.Backends[ev.Backend]
	b.SetResetting(true)
	on := true
	var timer clock.Timer
	end := r.clk.Now() + ev.Duration
	timer = r.clk.Every(ev.Flap, func() {
		if r.clk.Now() >= end {
			timer.Cancel()
			return
		}
		on = !on
		b.SetResetting(on)
	})
	r.track(timer)
}
