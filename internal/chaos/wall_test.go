package chaos

import (
	"testing"
	"time"

	"l3/internal/clock"
	"l3/internal/sim"
)

// fakeWallBackend records the fault setters' trajectory.
type fakeWallBackend struct {
	stalled, resetting bool
	slowLoris          time.Duration
	errorRate          float64
	extra              time.Duration
	extraHistory       []time.Duration
	resetToggles       int
}

func (f *fakeWallBackend) SetStalled(on bool)   { f.stalled = on }
func (f *fakeWallBackend) SetResetting(on bool) { f.resetting = on; f.resetToggles++ }
func (f *fakeWallBackend) SetSlowLoris(d time.Duration) {
	f.slowLoris = d
}
func (f *fakeWallBackend) SetErrorRate(r float64) { f.errorRate = r }
func (f *fakeWallBackend) SetExtraLatency(d time.Duration) {
	f.extra = d
	f.extraHistory = append(f.extraHistory, d)
}

type fakeWallScraper struct {
	dropping    bool
	garbageOn   bool
	garbageMode string
}

func (f *fakeWallScraper) SetDropping(on bool) { f.dropping = on }
func (f *fakeWallScraper) SetGarbage(backend, mode string, on bool) {
	f.garbageOn = on
	f.garbageMode = mode
}

// runWall executes a schedule against fakes on the deterministic sim clock
// (the runner only sees clock.Clock, so virtual time exercises exactly the
// wall code paths).
func runWall(t *testing.T, sched string, until time.Duration) (*fakeWallBackend, *fakeWallScraper, *WallRunner, *sim.Engine) {
	t.Helper()
	s, err := ParseSchedule(sched)
	if err != nil {
		t.Fatalf("parse %q: %v", sched, err)
	}
	e := sim.NewEngine()
	b := &fakeWallBackend{}
	sc := &fakeWallScraper{}
	r := NewWallRunner(clock.Sim(e), *s, WallTargets{
		Backends: map[string]WallBackend{"api-a": b},
		Scrapers: []ScrapeGate{sc},
	}, 0)
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	e.RunUntil(until)
	return b, sc, r, e
}

func TestWallRunnerStallInjectHeal(t *testing.T) {
	e := sim.NewEngine()
	b := &fakeWallBackend{}
	s, err := ParseSchedule("stall@2s+3s:api-a")
	if err != nil {
		t.Fatal(err)
	}
	r := NewWallRunner(clock.Sim(e), *s, WallTargets{Backends: map[string]WallBackend{"api-a": b}}, 0)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(2500 * time.Millisecond)
	if !b.stalled {
		t.Fatal("stall not injected at 2s")
	}
	e.RunUntil(6 * time.Second)
	if b.stalled {
		t.Fatal("stall not healed at 5s")
	}
	if r.Applied() != 1 || r.Healed() != 1 {
		t.Fatalf("applied=%d healed=%d, want 1/1", r.Applied(), r.Healed())
	}
}

func TestWallRunnerAllKinds(t *testing.T) {
	sched := "reset@1s+1s:api-a; slowloris@3s+1s:api-a/50ms; errorburst@5s+1s:api-a/0.8; scrapedrop@7s+1s; garbage@9s+1s:nan/api-a"
	b, sc, _, e := runWall(t, sched, 1500*time.Millisecond)
	if !b.resetting {
		t.Fatal("reset not injected")
	}
	e.RunUntil(3500 * time.Millisecond)
	if b.resetting {
		t.Fatal("reset not healed")
	}
	if b.slowLoris != 50*time.Millisecond {
		t.Fatalf("slowloris = %v, want 50ms", b.slowLoris)
	}
	e.RunUntil(5500 * time.Millisecond)
	if b.slowLoris != 0 {
		t.Fatal("slowloris not healed")
	}
	if b.errorRate != 0.8 {
		t.Fatalf("errorRate = %v, want 0.8", b.errorRate)
	}
	e.RunUntil(7500 * time.Millisecond)
	if b.errorRate != 0 {
		t.Fatal("errorburst not healed")
	}
	if !sc.dropping {
		t.Fatal("scrapedrop not injected")
	}
	e.RunUntil(9500 * time.Millisecond)
	if sc.dropping {
		t.Fatal("scrapedrop not healed")
	}
	if !sc.garbageOn || sc.garbageMode != "nan" {
		t.Fatalf("garbage on=%v mode=%q, want on/nan", sc.garbageOn, sc.garbageMode)
	}
	e.RunUntil(11 * time.Second)
	if sc.garbageOn {
		t.Fatal("garbage not healed")
	}
}

func TestWallRunnerRampIsMonotonic(t *testing.T) {
	b, _, _, _ := runWall(t, "ramp@1s+2s:api-a/400ms", 4*time.Second)
	if len(b.extraHistory) < 3 {
		t.Fatalf("ramp produced %d steps, want several", len(b.extraHistory))
	}
	// Steps rise monotonically until the heal resets to zero.
	last := b.extraHistory[len(b.extraHistory)-1]
	if last != 0 {
		t.Fatalf("final extra = %v, want 0 after heal", last)
	}
	prev := time.Duration(-1)
	for _, v := range b.extraHistory[:len(b.extraHistory)-1] {
		if v < prev {
			t.Fatalf("ramp went backwards: %v after %v (history %v)", v, prev, b.extraHistory)
		}
		prev = v
	}
	if prev < 300*time.Millisecond {
		t.Fatalf("ramp peaked at %v, want near 400ms", prev)
	}
}

func TestWallRunnerFlapTogglesAndHeals(t *testing.T) {
	b, _, _, _ := runWall(t, "bflap@1s+5s:api-a/1s", 10*time.Second)
	if b.resetting {
		t.Fatal("flap not healed")
	}
	if b.resetToggles < 4 {
		t.Fatalf("flap toggled %d times over a 5s window at 1s period, want >= 4", b.resetToggles)
	}
}

func TestWallRunnerStopHealsEverything(t *testing.T) {
	b, sc, r, _ := runWall(t, "stall@1s:api-a; scrapedrop@1s", 2*time.Second)
	if !b.stalled || !sc.dropping {
		t.Fatal("faults not injected before stop")
	}
	r.Stop()
	if b.stalled || sc.dropping {
		t.Fatal("Stop left faults active")
	}
}

func TestWallRunnerRejectsUnknownTargetsAndSimKinds(t *testing.T) {
	e := sim.NewEngine()
	s, err := ParseSchedule("stall@1s+1s:nope")
	if err != nil {
		t.Fatal(err)
	}
	r := NewWallRunner(clock.Sim(e), *s, WallTargets{Backends: map[string]WallBackend{"api-a": &fakeWallBackend{}}}, 0)
	if err := r.Start(); err == nil {
		t.Fatal("unknown backend accepted")
	}
	s2, err := ParseSchedule("partition@1s+1s:c1/c2")
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewWallRunner(clock.Sim(e), *s2, WallTargets{}, 0)
	if err := r2.Start(); err == nil {
		t.Fatal("sim-only kind accepted by wall runner")
	}
}

func TestSimInjectorRejectsWallKinds(t *testing.T) {
	e := sim.NewEngine()
	s, err := ParseSchedule("reset@1s+1s:api-a")
	if err != nil {
		t.Fatal(err)
	}
	in := New(e, *s, Targets{}, 0)
	if err := in.Start(); err == nil {
		t.Fatal("sim injector accepted a wall-clock fault kind")
	}
}
