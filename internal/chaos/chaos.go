package chaos

import (
	"fmt"
	"sort"
	"time"

	"l3/internal/sim"
)

// LinkInjector is the WAN-layer hook (implemented by wan.Model): install and
// remove structural faults on directed links.
type LinkInjector interface {
	InjectLinkFault(from, to string, extra time.Duration, partitioned bool, flap time.Duration)
	HealLinkFault(from, to string)
}

// BackendInjector is the data-plane hook (implemented by backend.Replica):
// crash/restart a deployment and resize its worker pool.
type BackendInjector interface {
	Crash()
	Restart(slowStart time.Duration)
	Concurrency() int
	SetConcurrency(n int)
}

// ScrapeGate is the control-plane metrics hook (implemented by
// core.Scraper): drop scrapes while a fault is active.
type ScrapeGate interface {
	SetDropping(drop bool)
}

// ScrapeCorrupter is the garbage-injection capability of a scrape gate
// (implemented by core.Scraper): corrupt scraped values for one backend's
// series ("" = all) with the given mode while on.
type ScrapeCorrupter interface {
	SetGarbage(backend, mode string, on bool)
}

// ScrapeSkewer is the clock-skew capability of a scrape gate (implemented
// by core.Scraper): back-date alternating scrape passes by d (0 disables).
type ScrapeSkewer interface {
	SetSkew(d time.Duration)
}

// ScrapeSlower is the slow-scrape capability of a scrape gate (implemented
// by core.Scraper): run only every n-th scheduled scrape (< 2 disables).
type ScrapeSlower interface {
	SetSlowFactor(n int)
}

// MetricResetter zeroes a backend's cumulative metric series, as a pod
// restart would (adapted over metrics.Registry by the harness).
type MetricResetter interface {
	ResetBackendCounters(backend string)
}

// Leader is one killable controller instance (a core.Controller plus its
// elector, adapted by the harness): Kill crashes it without releasing the
// leadership lease, Revive restarts it, IsLeader reports whether it
// currently leads.
type Leader interface {
	Kill()
	Revive()
	IsLeader() bool
}

// Targets binds a schedule's events to the substrates of one simulation
// run. Only the layers a schedule actually touches need to be set; Start
// fails fast when an event has no target.
type Targets struct {
	// Clusters lists every cluster name, for expanding "*" link events.
	Clusters []string
	// Links injects WAN faults.
	Links LinkInjector
	// Backends maps backend name to its injector.
	Backends map[string]BackendInjector
	// Scrapers are the control plane's scrape gates. Gates additionally
	// implementing ScrapeCorrupter/ScrapeSkewer/ScrapeSlower receive the
	// garbage, clockskew and slowscrape faults.
	Scrapers []ScrapeGate
	// Leaders maps controller instance id to its kill handle.
	Leaders map[string]Leader
	// Metrics receives counterreset events.
	Metrics MetricResetter
}

// Injector schedules a fault schedule onto a simulation engine. One
// injector serves one run; the schedule itself is reusable across runs.
type Injector struct {
	engine  *sim.Engine
	sched   Schedule
	targets Targets
	shift   time.Duration
	applied int
	healed  int
	// killed remembers, per event index, which instance a LeaderKill hit,
	// so the heal revives that one even though it no longer leads.
	killed map[int]Leader
}

// New returns an injector for one run. shift displaces every event time
// (schedules are written relative to measurement start; harnesses pass
// their warm-up so faults land in measured time).
func New(engine *sim.Engine, sched Schedule, targets Targets, shift time.Duration) *Injector {
	return &Injector{engine: engine, sched: sched, targets: targets, shift: shift, killed: make(map[int]Leader)}
}

// Start validates the schedule against the targets and schedules every
// inject/heal pair on the engine.
func (in *Injector) Start() error {
	if err := in.sched.Validate(); err != nil {
		return err
	}
	for _, ev := range in.sched.Events {
		if err := in.check(ev); err != nil {
			return err
		}
	}
	for i, ev := range in.sched.Events {
		i, ev := i, ev
		in.engine.At(in.shift+ev.At, func() {
			in.apply(i, ev)
			in.applied++
		})
		if ev.Duration > 0 {
			in.engine.At(in.shift+ev.At+ev.Duration, func() {
				in.heal(i, ev)
				in.healed++
			})
		}
	}
	return nil
}

// Applied returns how many events have been injected so far.
func (in *Injector) Applied() int { return in.applied }

// Healed returns how many events have been healed so far.
func (in *Injector) Healed() int { return in.healed }

// check verifies the run exposes the target an event needs.
func (in *Injector) check(ev Event) error {
	switch ev.Kind {
	case Partition, DelaySpike, LinkFlap:
		if in.targets.Links == nil {
			return fmt.Errorf("chaos: %s event but no link injector", ev.Kind.name())
		}
		if ev.To == "*" && len(in.targets.Clusters) == 0 {
			return fmt.Errorf("chaos: %s event with wildcard link but no cluster list", ev.Kind.name())
		}
	case BackendCrash, Saturate:
		if _, ok := in.targets.Backends[ev.Backend]; !ok {
			return fmt.Errorf("chaos: %s event targets unknown backend %q", ev.Kind.name(), ev.Backend)
		}
	case ScrapeDrop:
		if len(in.targets.Scrapers) == 0 {
			return fmt.Errorf("chaos: scrapedrop event but no scrapers")
		}
	case LeaderKill:
		if len(in.targets.Leaders) == 0 {
			return fmt.Errorf("chaos: leaderkill event but no leader handles")
		}
		if ev.Target != "" {
			if _, ok := in.targets.Leaders[ev.Target]; !ok {
				return fmt.Errorf("chaos: leaderkill targets unknown instance %q", ev.Target)
			}
		}
	case CounterReset:
		if in.targets.Metrics == nil {
			return fmt.Errorf("chaos: counterreset event but no metric resetter")
		}
	case Garbage:
		if !anyScraper(in.targets.Scrapers, func(s ScrapeGate) bool { _, ok := s.(ScrapeCorrupter); return ok }) {
			return fmt.Errorf("chaos: garbage event but no corruptible scraper")
		}
	case ClockSkew:
		if !anyScraper(in.targets.Scrapers, func(s ScrapeGate) bool { _, ok := s.(ScrapeSkewer); return ok }) {
			return fmt.Errorf("chaos: clockskew event but no skewable scraper")
		}
	case SlowScrape:
		if !anyScraper(in.targets.Scrapers, func(s ScrapeGate) bool { _, ok := s.(ScrapeSlower); return ok }) {
			return fmt.Errorf("chaos: slowscrape event but no slowable scraper")
		}
	case Stall, ConnReset, SlowLoris, ErrorBurst, LatencyRamp, BackendFlap:
		// A simulated backend has no TCP connection to reset or socket to
		// stall; these kinds exist for the wall-clock serving mode only.
		return fmt.Errorf("chaos: %s is a wall-clock fault; run it through chaos.WallRunner (l3serve -chaostest), not the simulator", ev.Kind.name())
	}
	return nil
}

func anyScraper(ss []ScrapeGate, has func(ScrapeGate) bool) bool {
	for _, s := range ss {
		if has(s) {
			return true
		}
	}
	return false
}

// links expands an event's From/To into the directed links it covers.
func (in *Injector) links(ev Event) [][2]string {
	others := func(c string) []string {
		var out []string
		for _, o := range in.targets.Clusters {
			if o != c {
				out = append(out, o)
			}
		}
		return out
	}
	var out [][2]string
	tos := []string{ev.To}
	if ev.To == "*" {
		tos = others(ev.From)
	}
	for _, to := range tos {
		out = append(out, [2]string{ev.From, to})
		if ev.Kind == Partition {
			// Partitions cut the pair in both directions; delay spikes and
			// flaps stay directed (asymmetric by design).
			out = append(out, [2]string{to, ev.From})
		}
	}
	return out
}

func (in *Injector) apply(idx int, ev Event) {
	switch ev.Kind {
	case Partition:
		for _, l := range in.links(ev) {
			in.targets.Links.InjectLinkFault(l[0], l[1], 0, true, 0)
		}
	case DelaySpike:
		for _, l := range in.links(ev) {
			in.targets.Links.InjectLinkFault(l[0], l[1], ev.Extra, false, 0)
		}
	case LinkFlap:
		for _, l := range in.links(ev) {
			in.targets.Links.InjectLinkFault(l[0], l[1], ev.Extra, false, ev.Flap)
		}
	case BackendCrash:
		in.targets.Backends[ev.Backend].Crash()
	case Saturate:
		b := in.targets.Backends[ev.Backend]
		kept := int(float64(b.Concurrency()) * ev.Factor)
		if kept < 1 {
			kept = 1
		}
		b.SetConcurrency(kept)
	case ScrapeDrop:
		for _, s := range in.targets.Scrapers {
			s.SetDropping(true)
		}
	case LeaderKill:
		l := in.leader(ev)
		in.killed[idx] = l
		l.Kill()
	case CounterReset:
		in.targets.Metrics.ResetBackendCounters(ev.Backend)
	case Garbage:
		for _, s := range in.targets.Scrapers {
			if c, ok := s.(ScrapeCorrupter); ok {
				c.SetGarbage(ev.Backend, ev.Mode, true)
			}
		}
	case ClockSkew:
		for _, s := range in.targets.Scrapers {
			if sk, ok := s.(ScrapeSkewer); ok {
				sk.SetSkew(ev.Skew)
			}
		}
	case SlowScrape:
		for _, s := range in.targets.Scrapers {
			if sl, ok := s.(ScrapeSlower); ok {
				sl.SetSlowFactor(ev.SlowFactor)
			}
		}
	}
}

func (in *Injector) heal(idx int, ev Event) {
	switch ev.Kind {
	case Partition, DelaySpike, LinkFlap:
		for _, l := range in.links(ev) {
			in.targets.Links.HealLinkFault(l[0], l[1])
		}
	case BackendCrash:
		in.targets.Backends[ev.Backend].Restart(ev.SlowStart)
	case Saturate:
		b := in.targets.Backends[ev.Backend]
		restored := int(float64(b.Concurrency()) / ev.Factor)
		if restored < 1 {
			restored = 1
		}
		b.SetConcurrency(restored)
	case ScrapeDrop:
		for _, s := range in.targets.Scrapers {
			s.SetDropping(false)
		}
	case LeaderKill:
		if l, ok := in.killed[idx]; ok {
			l.Revive()
		}
	case Garbage:
		for _, s := range in.targets.Scrapers {
			if c, ok := s.(ScrapeCorrupter); ok {
				c.SetGarbage(ev.Backend, ev.Mode, false)
			}
		}
	case ClockSkew:
		for _, s := range in.targets.Scrapers {
			if sk, ok := s.(ScrapeSkewer); ok {
				sk.SetSkew(0)
			}
		}
	case SlowScrape:
		for _, s := range in.targets.Scrapers {
			if sl, ok := s.(ScrapeSlower); ok {
				sl.SetSlowFactor(0)
			}
		}
	}
}

// leader resolves an event's target instance: the named one, or — for an
// empty target — the instance currently leading (falling back to the first
// by name, so the choice is deterministic even when no one leads).
func (in *Injector) leader(ev Event) Leader {
	if ev.Target != "" {
		return in.targets.Leaders[ev.Target]
	}
	ids := make([]string, 0, len(in.targets.Leaders))
	for id := range in.targets.Leaders {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if in.targets.Leaders[id].IsLeader() {
			return in.targets.Leaders[id]
		}
	}
	return in.targets.Leaders[ids[0]]
}
