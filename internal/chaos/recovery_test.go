package chaos

import (
	"testing"
	"time"
)

func TestTimeToRecover(t *testing.T) {
	bucket := time.Second
	// Fault at 2s: dips at buckets 2-4, back up from bucket 5 onward.
	series := []float64{1, 1, 0.4, 0.3, 0.8, 0.99, 1, 1}
	d, ok := TimeToRecover(series, bucket, 2*time.Second, 0.95, 2)
	if !ok || d != 3*time.Second { // recovered window starts at bucket 5
		t.Fatalf("TimeToRecover = %v, %v; want 3s, true", d, ok)
	}

	// Never recovers.
	if _, ok := TimeToRecover([]float64{1, 0.2, 0.3, 0.1}, bucket, time.Second, 0.95, 2); ok {
		t.Fatal("recovered from a permanent outage")
	}

	// Never dips.
	d, ok = TimeToRecover([]float64{1, 1, 1, 1}, bucket, time.Second, 0.95, 2)
	if !ok || d != 0 {
		t.Fatalf("undipped series: got %v, %v; want 0, true", d, ok)
	}

	// Sustain filters a one-bucket blip from counting as recovery.
	blip := []float64{1, 0.2, 0.96, 0.2, 0.2, 0.97, 0.98, 0.99}
	d, ok = TimeToRecover(blip, bucket, time.Second, 0.95, 3)
	if !ok || d != 4*time.Second { // sustained run starts at bucket 5
		t.Fatalf("blip series: got %v, %v; want 4s, true", d, ok)
	}
}

func TestSLOViolationAndTrough(t *testing.T) {
	bucket := 2 * time.Second
	series := []float64{1, 0.9, 0.4, 0.97, 1}
	if got := SLOViolation(series, bucket, 0.95); got != 4*time.Second {
		t.Fatalf("SLOViolation = %v, want 4s", got)
	}
	if got := Trough(series, bucket, 0); got != 0.4 {
		t.Fatalf("Trough = %v, want 0.4", got)
	}
	// Window start past the dip: dip not counted.
	if got := Trough(series, bucket, 6*time.Second); got != 0.97 {
		t.Fatalf("Trough(from 6s) = %v, want 0.97", got)
	}
	if got := Trough(nil, bucket, 0); got != 1 {
		t.Fatalf("Trough(empty) = %v, want 1", got)
	}
}

func snap(at time.Duration, a, b int64) WeightSnapshot {
	return WeightSnapshot{At: at, Weights: map[string]int64{"a": a, "b": b}}
}

func TestReconvergeTime(t *testing.T) {
	// Weights shift away during the fault, then settle back from 70s on.
	snaps := []WeightSnapshot{
		snap(10*time.Second, 500, 500),
		snap(30*time.Second, 950, 50),
		snap(50*time.Second, 800, 200),
		snap(70*time.Second, 510, 490),
		snap(90*time.Second, 500, 500),
	}
	d, ok := ReconvergeTime(snaps, 60*time.Second, 0.05)
	if !ok || d != 10*time.Second {
		t.Fatalf("ReconvergeTime = %v, %v; want 10s, true", d, ok)
	}

	// Still drifting at the end relative to tolerance: the last snapshot
	// alone always matches itself, so reconvergence is its timestamp.
	drifting := []WeightSnapshot{
		snap(10*time.Second, 500, 500),
		snap(80*time.Second, 900, 100),
	}
	d, ok = ReconvergeTime(drifting, 60*time.Second, 0.05)
	if !ok || d != 20*time.Second {
		t.Fatalf("drifting ReconvergeTime = %v, %v; want 20s, true", d, ok)
	}

	// No snapshot at all.
	if _, ok := ReconvergeTime(nil, 0, 0.05); ok {
		t.Fatal("ReconvergeTime ok with no snapshots")
	}

	// Weights already settled before heal → instant reconvergence.
	settled := []WeightSnapshot{snap(10*time.Second, 500, 500), snap(20*time.Second, 500, 500)}
	d, ok = ReconvergeTime(settled, 40*time.Second, 0.05)
	if !ok || d != 0 {
		t.Fatalf("settled ReconvergeTime = %v, %v; want 0, true", d, ok)
	}
}

func TestWeightDistance(t *testing.T) {
	a := map[string]int64{"x": 500, "y": 500}
	if d := weightDistance(a, map[string]int64{"x": 50, "y": 50}); d != 0 {
		t.Fatalf("same shares: distance = %v, want 0", d)
	}
	if d := weightDistance(a, map[string]int64{"x": 1000}); d != 0.5 {
		t.Fatalf("half-moved shares: distance = %v, want 0.5", d)
	}
	if d := weightDistance(map[string]int64{"x": 1}, map[string]int64{"y": 1}); d != 1 {
		t.Fatalf("disjoint shares: distance = %v, want 1", d)
	}
}

func TestFailoverGap(t *testing.T) {
	updates := []time.Duration{5 * time.Second, 10 * time.Second, 40 * time.Second, 45 * time.Second}
	// Kill at 12s: gap spans 10s → 40s.
	if g := FailoverGap(updates, 12*time.Second, time.Minute); g != 30*time.Second {
		t.Fatalf("FailoverGap = %v, want 30s", g)
	}
	// No update after the kill: bounded by run end.
	if g := FailoverGap(updates, 50*time.Second, time.Minute); g != 15*time.Second {
		t.Fatalf("tail FailoverGap = %v, want 15s", g)
	}
	// No updates at all: whole remainder of the run.
	if g := FailoverGap(nil, 50*time.Second, time.Minute); g != 10*time.Second {
		t.Fatalf("empty FailoverGap = %v, want 10s", g)
	}
}
