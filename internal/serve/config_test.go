package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func envMap(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}

func TestLoadConfigLayering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "l3serve.yaml")
	yaml := `
listen: 127.0.0.1:9999
algo: c3
scrape_interval: 1s
backends:
  - name: a
    url: http://10.0.0.1:8001
  - name: b
    url: http://10.0.0.2:8001
`
	if err := os.WriteFile(path, []byte(yaml), 0o644); err != nil {
		t.Fatal(err)
	}

	// File over defaults; env over file.
	cfg, err := loadConfig(path, envMap(map[string]string{
		"L3SERVE_ALGO":     "failover",
		"L3SERVE_BACKENDS": "x=http://127.0.0.1:1, y=http://127.0.0.1:2",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "127.0.0.1:9999" {
		t.Fatalf("Listen = %q, want file value", cfg.Listen)
	}
	if cfg.Algo != AlgoFailover {
		t.Fatalf("Algo = %q, want env override", cfg.Algo)
	}
	if got := cfg.BackendNames(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Backends = %v, want env override [x y]", got)
	}
	// Derived: reconcile follows scrape, window = 2× scrape floored at 2s.
	if cfg.ReconcileInterval != time.Second {
		t.Fatalf("ReconcileInterval = %v, want 1s (derived from scrape)", cfg.ReconcileInterval)
	}
	if cfg.Window != 2*time.Second {
		t.Fatalf("Window = %v, want 2s floor", cfg.Window)
	}
	// Untouched keys keep documented defaults.
	if cfg.Service != "api" || cfg.Percentile != 0.99 || !cfg.Guard {
		t.Fatalf("defaults leaked: service=%q percentile=%v guard=%v", cfg.Service, cfg.Percentile, cfg.Guard)
	}
}

func TestLoadConfigUnknownKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.yaml")
	os.WriteFile(path, []byte("percentil: 0.98\n"), 0o644)
	_, err := loadConfig(path, envMap(nil))
	if err == nil || !strings.Contains(err.Error(), `unknown key "percentil"`) {
		t.Fatalf("err = %v, want unknown-key error", err)
	}
}

func TestValidateCollectsAllProblems(t *testing.T) {
	cfg := Config{
		Algo:     "fancy",
		Backends: []BackendConfig{{Name: "", URL: "not-a-url"}, {Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}},
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	for _, sub := range []string{
		"listen address is empty",
		"service name is empty",
		`algo "fancy"`,
		"has no name",
		`name "a" is duplicated`,
		"not an absolute http(s) URL",
		"scrape_interval must be positive",
		"percentile",
	} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("error missing %q:\n%v", sub, err)
		}
	}
}

func TestParseBackendList(t *testing.T) {
	got, err := ParseBackendList("a=http://h:1, b=http://h:2,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].URL != "http://h:2" {
		t.Fatalf("got %+v", got)
	}
	if _, err := ParseBackendList("nourl"); err == nil {
		t.Fatal("want error for entry without =")
	}
	if _, err := ParseBackendList(" , "); err == nil {
		t.Fatal("want error for empty list")
	}
}

func TestLoadConfigOverloadAndPoolKnobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "l3serve.yaml")
	yaml := `
backends:
  - name: a
    url: http://10.0.0.1:8001
overload: limit=16,target=10ms,qcap=64,tiers=on
max_idle_conns_per_host: 7
idle_conn_timeout: 45s
`
	if err := os.WriteFile(path, []byte(yaml), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := loadConfig(path, envMap(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxIdleConnsPerHost != 7 || cfg.IdleConnTimeout != 45*time.Second {
		t.Fatalf("pool knobs = %d/%v, want file values 7/45s", cfg.MaxIdleConnsPerHost, cfg.IdleConnTimeout)
	}
	pol, err := cfg.OverloadPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Enabled() || pol.Limiter.Initial != 16 || !pol.Tiers.Enabled {
		t.Fatalf("overload policy = %+v, want enabled limit=16 tiers=on", pol)
	}

	// Env overrides the file; "off" parses as a disabled policy.
	cfg, err = loadConfig(path, envMap(map[string]string{
		"L3SERVE_OVERLOAD":                "off",
		"L3SERVE_MAX_IDLE_CONNS_PER_HOST": "12",
		"L3SERVE_IDLE_CONN_TIMEOUT":       "30s",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxIdleConnsPerHost != 12 || cfg.IdleConnTimeout != 30*time.Second {
		t.Fatalf("pool knobs = %d/%v, want env overrides 12/30s", cfg.MaxIdleConnsPerHost, cfg.IdleConnTimeout)
	}
	if pol, err := cfg.OverloadPolicy(); err != nil || pol.Enabled() {
		t.Fatalf("OverloadPolicy() = %+v, %v; want disabled, nil", pol, err)
	}

	// Validation rejects a malformed policy and bad pool bounds, naming both.
	bad := DefaultConfig()
	bad.Backends = []BackendConfig{{Name: "a", URL: "http://h:1"}}
	bad.Overload = "limit=banana"
	bad.MaxIdleConnsPerHost = 0
	bad.IdleConnTimeout = -time.Second
	err = bad.Validate()
	if err == nil {
		t.Fatal("want error")
	}
	for _, sub := range []string{"overload policy", "max_idle_conns_per_host", "idle_conn_timeout"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("error missing %q:\n%v", sub, err)
		}
	}
}

func TestLoadConfigBadEnvDuration(t *testing.T) {
	_, err := loadConfig("", envMap(map[string]string{
		"L3SERVE_SCRAPE_INTERVAL": "soon",
		"L3SERVE_BACKENDS":        "a=http://h:1",
	}))
	if err == nil || !strings.Contains(err.Error(), "L3SERVE_SCRAPE_INTERVAL") {
		t.Fatalf("err = %v, want duration parse error naming the variable", err)
	}
}
