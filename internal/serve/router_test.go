package serve

import (
	"net/http"
	"testing"
	"time"

	"l3/internal/metrics"
)

func testBackends(t *testing.T, names ...string) []*Backend {
	t.Helper()
	reg := metrics.NewRegistry()
	out := make([]*Backend, 0, len(names))
	for _, n := range names {
		b, err := newBackend(BackendConfig{Name: n, URL: "http://127.0.0.1:1"}, "api", reg, 3, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestRouterWeightedDistribution(t *testing.T) {
	backends := testBackends(t, "a", "b", "c")
	r := NewRouter(backends)
	r.rebuild(backends, map[string]int64{"a": 800, "b": 190, "c": 10})

	counts := map[string]int{}
	for i := 0; i < 100000; i++ {
		counts[r.Pick(0).Name]++
	}
	if aShare := float64(counts["a"]) / 100000; aShare < 0.77 || aShare > 0.83 {
		t.Fatalf("a share = %v, want ~0.80", aShare)
	}
	if cShare := float64(counts["c"]) / 100000; cShare < 0.005 || cShare > 0.02 {
		t.Fatalf("c share = %v, want ~0.01", cShare)
	}
}

func TestRouterDropsZeroWeight(t *testing.T) {
	backends := testBackends(t, "a", "b")
	r := NewRouter(backends)
	r.rebuild(backends, map[string]int64{"a": 1, "b": 0})
	for i := 0; i < 1000; i++ {
		if got := r.Pick(0); got.Name != "a" {
			t.Fatalf("picked %q, want only a", got.Name)
		}
	}
}

func TestRouterSkipsUnavailable(t *testing.T) {
	backends := testBackends(t, "a", "b")
	r := NewRouter(backends)
	backends[0].SetHealthy(false)
	for i := 0; i < 1000; i++ {
		if got := r.Pick(0); got.Name != "b" {
			t.Fatalf("picked unhealthy %q", got.Name)
		}
	}
	// All unavailable: fail open rather than return nil.
	backends[1].SetHealthy(false)
	if got := r.Pick(0); got == nil {
		t.Fatal("Pick failed closed with every backend unavailable")
	}
}

func TestRouterPickAvoiding(t *testing.T) {
	backends := testBackends(t, "a", "b")
	r := NewRouter(backends)
	for i := 0; i < 1000; i++ {
		if got := r.PickAvoiding(0, backends[0]); got != backends[1] {
			t.Fatalf("PickAvoiding returned the avoided backend")
		}
	}
	// Single backend: falling back to the avoided one beats nothing.
	r.rebuild(backends, map[string]int64{"a": 1})
	if got := r.PickAvoiding(0, backends[0]); got != backends[0] {
		t.Fatalf("PickAvoiding sole-backend = %v, want fail-open to a", got)
	}
}

func TestBreakerOpensAndReArms(t *testing.T) {
	backends := testBackends(t, "a")
	b := backends[0]
	now := 10 * time.Second
	for i := 0; i < 3; i++ {
		if !b.Available(now) {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i)
		}
		b.Record(now, time.Millisecond, false)
	}
	if b.Available(now) {
		t.Fatal("breaker still closed after threshold failures")
	}
	if !b.Available(now + 1100*time.Millisecond) {
		t.Fatal("breaker still open after the 1s window")
	}
	// A success resets the consecutive-failure streak.
	later := now + 2*time.Second
	b.Record(later, time.Millisecond, false)
	b.Record(later, time.Millisecond, true)
	b.Record(later, time.Millisecond, false)
	b.Record(later, time.Millisecond, false)
	if !b.Available(later) {
		t.Fatal("streak should have reset on success")
	}
}

func TestRetryBudgetBounds(t *testing.T) {
	b := newRetryBudget(0.1)
	// Drain the initial burst.
	for b.withdraw() {
	}
	// 10% earn rate: 10 deposits buy one retry.
	for i := 0; i < 9; i++ {
		b.deposit()
	}
	if b.withdraw() {
		t.Fatal("withdraw succeeded before a full token accrued")
	}
	b.deposit()
	if !b.withdraw() {
		t.Fatal("withdraw failed with a full token in the bucket")
	}
	if zero := newRetryBudget(0); zero.withdraw() {
		t.Fatal("zero-ratio budget must never grant retries")
	}
}

// TestProxyHotPathZeroAllocs pins the acceptance bar: the serve layer's own
// per-request work — weighted pick, outcome recording, budget bookkeeping,
// status-writer pooling — allocates nothing. net/http's per-request
// allocations are the socket layer's and are reported separately.
func TestProxyHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race; the pin only holds without it")
	}
	backends := testBackends(t, "a", "b", "c")
	r := NewRouter(backends)
	budget := newRetryBudget(0.2)
	tracker := newHedgeTracker(0.95, time.Millisecond)
	req, err := http.NewRequest(http.MethodGet, "http://127.0.0.1:1/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderDeadline, "250")
	now := 42 * time.Millisecond
	if got := testing.AllocsPerRun(10000, func() {
		budget.deposit()
		sw := acquireStatusWriter(nil)
		b := r.Pick(now)
		_ = deadlineBudget(req, 10*time.Second)
		_ = hedgeEligible(req)
		b.inflight.Inc()
		b.inflight.Dec()
		b.Record(now, 3*time.Millisecond, true)
		tracker.observe(3 * time.Millisecond)
		_ = tracker.hedgeAfter()
		releaseStatusWriter(sw)
	}); got != 0 {
		t.Fatalf("proxy-layer hot path = %v allocs/op, want 0", got)
	}
	// Failure path (breaker bookkeeping) must not allocate either.
	if got := testing.AllocsPerRun(10000, func() {
		b := r.Pick(now)
		b.Record(now, 3*time.Millisecond, false)
	}); got != 0 {
		t.Fatalf("failure path = %v allocs/op, want 0", got)
	}
}

func TestMeasureProxyLayerAllocsAgrees(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under -race; the pin only holds without it")
	}
	if got := MeasureProxyLayerAllocs(); got != 0 {
		t.Fatalf("MeasureProxyLayerAllocs = %v, want 0 (selftest reporting must agree with the pin)", got)
	}
}
