package serve

import (
	"fmt"
	"strings"
)

// The repo is dependency-free (go.mod has no requires), so l3serve's config
// loader hand-rolls the slice of YAML it documents instead of importing a
// parser: block mappings, block sequences of scalars or mappings, scalar
// values with optional double quotes, and '#' comments. That subset covers
// every config in docs/ and the README; anything outside it (flow
// collections, anchors, multi-line scalars, tabs) is a parse error rather
// than a silent misread.

// yamlNode is one parsed value: exactly one of scalar (leaf), mapping or
// sequence is populated.
type yamlNode struct {
	scalar   string
	isScalar bool
	mapping  map[string]*yamlNode
	order    []string // mapping keys in document order
	sequence []*yamlNode
}

func (n *yamlNode) isMapping() bool  { return n.mapping != nil }
func (n *yamlNode) isSequence() bool { return n.sequence != nil }

// child returns the mapping value for key, or nil.
func (n *yamlNode) child(key string) *yamlNode {
	if n == nil || n.mapping == nil {
		return nil
	}
	return n.mapping[key]
}

type yamlLine struct {
	no     int // 1-based line number in the source
	indent int
	text   string // content with indentation stripped
}

// parseYAML parses a document into its root mapping.
func parseYAML(src string) (*yamlNode, error) {
	lines, err := splitYAMLLines(src)
	if err != nil {
		return nil, err
	}
	node, rest, err := parseBlock(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("yaml: line %d: unexpected de-indented content %q", rest[0].no, rest[0].text)
	}
	if node == nil {
		node = &yamlNode{mapping: map[string]*yamlNode{}}
	}
	return node, nil
}

func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		no := i + 1
		// Comments: '#' at start of content or preceded by whitespace.
		if idx := findComment(raw); idx >= 0 {
			raw = raw[:idx]
		}
		trimmed := strings.TrimRight(raw, " \r")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := len(trimmed) - len(strings.TrimLeft(trimmed, " "))
		text := trimmed[indent:]
		if strings.HasPrefix(text, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tab indentation is not supported", no)
		}
		out = append(out, yamlLine{no: no, indent: indent, text: text})
	}
	return out, nil
}

// findComment locates an unquoted comment marker in a raw line.
func findComment(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '#':
			if inQuote {
				continue
			}
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return i
			}
		}
	}
	return -1
}

// parseBlock parses the run of lines at the first line's indentation into
// one node (mapping or sequence), returning the unconsumed tail.
func parseBlock(lines []yamlLine, minIndent int) (*yamlNode, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, nil, nil
	}
	indent := lines[0].indent
	if indent < minIndent {
		return nil, lines, nil
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseSequence(lines, indent)
	}
	return parseMapping(lines, indent)
}

func parseMapping(lines []yamlLine, indent int) (*yamlNode, []yamlLine, error) {
	node := &yamlNode{mapping: map[string]*yamlNode{}}
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", l.no)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := node.mapping[key]; dup {
			return nil, nil, fmt.Errorf("yaml: line %d: duplicate key %q", l.no, key)
		}
		lines = lines[1:]
		var value *yamlNode
		if rest != "" {
			value = &yamlNode{scalar: unquoteScalar(rest), isScalar: true}
		} else {
			// Block value: everything indented deeper than the key.
			if len(lines) > 0 && lines[0].indent > indent {
				if value, lines, err = parseBlock(lines, indent+1); err != nil {
					return nil, nil, err
				}
			} else {
				value = &yamlNode{scalar: "", isScalar: true} // empty value
			}
		}
		node.mapping[key] = value
		node.order = append(node.order, key)
	}
	return node, lines, nil
}

func parseSequence(lines []yamlLine, indent int) (*yamlNode, []yamlLine, error) {
	node := &yamlNode{sequence: []*yamlNode{}}
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent || !(strings.HasPrefix(l.text, "- ") || l.text == "-") {
			return nil, nil, fmt.Errorf("yaml: line %d: expected a %q sequence item", l.no, "- ")
		}
		item := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if item == "" {
			// "-" alone: the item is the following deeper block.
			lines = lines[1:]
			var value *yamlNode
			var err error
			if len(lines) > 0 && lines[0].indent > indent {
				if value, lines, err = parseBlock(lines, indent+1); err != nil {
					return nil, nil, err
				}
			} else {
				value = &yamlNode{scalar: "", isScalar: true}
			}
			node.sequence = append(node.sequence, value)
			continue
		}
		if key, rest, err := splitKey(yamlLine{no: l.no, text: item}); err == nil {
			// "- key: value": a mapping item whose further keys sit on the
			// following lines, indented past the dash.
			inner := &yamlNode{mapping: map[string]*yamlNode{}, order: []string{key}}
			itemIndent := l.indent + (len(l.text) - len(item))
			if rest != "" {
				inner.mapping[key] = &yamlNode{scalar: unquoteScalar(rest), isScalar: true}
				lines = lines[1:]
			} else {
				lines = lines[1:]
				var value *yamlNode
				if len(lines) > 0 && lines[0].indent > itemIndent {
					if value, lines, err = parseBlock(lines, itemIndent+1); err != nil {
						return nil, nil, err
					}
				} else {
					value = &yamlNode{scalar: "", isScalar: true}
				}
				inner.mapping[key] = value
			}
			for len(lines) > 0 && lines[0].indent == itemIndent {
				more, restLines, err := parseMapping(lines, itemIndent)
				if err != nil {
					return nil, nil, err
				}
				for _, k := range more.order {
					if _, dup := inner.mapping[k]; dup {
						return nil, nil, fmt.Errorf("yaml: line %d: duplicate key %q in sequence item", lines[0].no, k)
					}
					inner.mapping[k] = more.mapping[k]
					inner.order = append(inner.order, k)
				}
				lines = restLines
			}
			node.sequence = append(node.sequence, inner)
			continue
		}
		// Plain scalar item.
		node.sequence = append(node.sequence, &yamlNode{scalar: unquoteScalar(item), isScalar: true})
		lines = lines[1:]
	}
	return node, lines, nil
}

// splitKey splits "key: value" (value optional). The colon must be followed
// by a space or end the line, so URLs in values never split.
func splitKey(l yamlLine) (key, value string, err error) {
	for i := 0; i < len(l.text); i++ {
		if l.text[i] != ':' {
			continue
		}
		if i+1 == len(l.text) {
			return strings.TrimSpace(l.text[:i]), "", nil
		}
		if l.text[i+1] == ' ' {
			return strings.TrimSpace(l.text[:i]), strings.TrimSpace(l.text[i+2:]), nil
		}
	}
	return "", "", fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", l.no, l.text)
}

// unquoteScalar strips one level of double quotes, honouring \" and \\.
func unquoteScalar(s string) string {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return s
	}
	var b strings.Builder
	body := s[1 : len(s)-1]
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(body[i])
			}
			continue
		}
		b.WriteByte(body[i])
	}
	return b.String()
}
