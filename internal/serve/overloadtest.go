package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"l3/internal/mesh"
	"l3/internal/overload"
)

// The overload scene is the wall-clock counterpart of figures O1/O2: boot
// the proxy with an admission policy over constant-latency stubs, drive a
// three-phase load square wave (warm, saturating burst, recovery) with the
// criticality tier cycling per request, and assert the overload-control
// contract on the live process — queue delay stays under the policy's
// MaxWait ceiling, shedding is tier-ordered (sheddable first, critical
// last), the per-backend in-flight gauges on /metrics never exceed the
// concurrency limit, and the tier gate re-admits everything after the
// burst. It runs as part of `l3serve -chaostest`, and its numbers land in
// BENCH_serve.json as the serve_overload_scene record.

// overloadScenePolicy is the scene's admission policy: per-backend Vegas
// limiter 8→12, 20ms CoDel target over a 100ms interval, a 128-deep queue
// with a 400ms hard sojourn ceiling, and tier gating with 500ms readmit
// hysteresis so the square wave's recovery fits a CI-sized run.
const overloadScenePolicy = "limit=8,min=4,max=12,target=20ms,interval=100ms,qcap=128,maxwait=400ms,tiers=on,readmit=500ms"

// OverloadOptions parameterise one overload scene run.
type OverloadOptions struct {
	Quick       bool
	BaseLatency time.Duration // stub service time (default 100ms, constant)
	WarmRate    float64       // healthy offered load (default 120 rps)
	BurstRate   float64       // saturating offered load (default 600 rps)
	Warm        time.Duration // default 2s (quick 1s)
	Burst       time.Duration // default 4s (quick 3s)
	Cool        time.Duration // default 3s (quick 2.5s)
}

func (o OverloadOptions) withDefaults() OverloadOptions {
	if o.BaseLatency <= 0 {
		o.BaseLatency = 100 * time.Millisecond
	}
	if o.WarmRate <= 0 {
		o.WarmRate = 120
	}
	if o.BurstRate <= 0 {
		o.BurstRate = 600
	}
	if o.Warm <= 0 {
		o.Warm = 2 * time.Second
		if o.Quick {
			o.Warm = time.Second
		}
	}
	if o.Burst <= 0 {
		o.Burst = 4 * time.Second
		if o.Quick {
			o.Burst = 3 * time.Second
		}
	}
	if o.Cool <= 0 {
		o.Cool = 3 * time.Second
		if o.Quick {
			o.Cool = 2500 * time.Millisecond
		}
	}
	return o
}

// TierOutcome is one criticality tier's client-observed traffic.
type TierOutcome struct {
	Sent    int64 `json:"sent"`
	OK      int64 `json:"ok"`
	Shed429 int64 `json:"shed_429"`
	Shed503 int64 `json:"shed_503"`
	Other   int64 `json:"other"`
}

// OverloadReport is the scene's full outcome.
type OverloadReport struct {
	Policy string                         `json:"policy"`
	Tiers  [overload.NumTiers]TierOutcome `json:"tiers"`
	Stats  overload.WallAdmitterStats     `json:"admitter_stats"`
	// MaxWait is the policy's hard sojourn ceiling, the bound Stats.MaxSojourn
	// is asserted against.
	MaxWait time.Duration `json:"max_wait_ns"`
	// PeakQueueDepth and PeakInflightSum are the largest overload_queue_depth
	// gauge and the largest per-backend request_inflight gauge sum observed
	// over /metrics during the burst — the gauges' load-bearing check.
	PeakQueueDepth  float64 `json:"peak_queue_depth"`
	PeakInflightSum float64 `json:"peak_inflight_sum"`
	// InflightViolation holds the worst "in-flight sum over limit" sample
	// ("" = none): the per-backend gauges must never show more concurrency
	// than the admitter granted.
	InflightViolation string `json:"inflight_violation,omitempty"`
	// ReadmitTTR is how long after the burst ended the tier gate took to
	// re-admit every tier; ReadmittedAll is whether it did.
	ReadmitTTR    time.Duration `json:"readmit_ttr_ns"`
	ReadmittedAll bool          `json:"readmitted_all"`
	AchievedRPS   float64       `json:"achieved_rps"`
	Dropped       int64         `json:"dropped"`
	AllocsPerOp   float64       `json:"admit_path_allocs_per_op"`
	Cores         int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
}

// tierHeaderValues cycles the criticality annotation over requests.
var tierHeaderValues = [overload.NumTiers]string{"critical", "default", "sheddable"}

// RunOverloadChaostest runs the overload scene against a live proxy and
// asserts the admission-control contract. Like RunChaostest, the report is
// returned even when assertions fail.
func RunOverloadChaostest(opts OverloadOptions, out io.Writer) (*OverloadReport, error) {
	opts = opts.withDefaults()

	stubs := make([]*ChaosStub, 0, len(chaosBackendNames))
	defer func() {
		for _, s := range stubs {
			s.Close()
		}
	}()
	for _, name := range chaosBackendNames {
		s, err := NewChaosStub(name, opts.BaseLatency)
		if err != nil {
			return nil, err
		}
		stubs = append(stubs, s)
	}

	cfg := DefaultConfig()
	cfg.Listen = "127.0.0.1:0"
	cfg.Algo = AlgoRR // uniform weights: the scene isolates the admission layer
	cfg.Overload = overloadScenePolicy
	cfg.ScrapeInterval = 500 * time.Millisecond
	cfg.ReconcileInterval = 500 * time.Millisecond
	cfg.Window = 2 * time.Second
	cfg.RequestTimeout = 2 * time.Second
	cfg.HedgePercentile = 0 // hedges would double-count backend load
	cfg.DrainTimeout = 5 * time.Second
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.BackendConfigOf())
	}
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	srv.ScrapeWait(1, 5*time.Second)

	pol, _ := cfg.OverloadPolicy()
	pol = pol.WithDefaults()
	report := &OverloadReport{
		Policy:  cfg.Overload,
		MaxWait: pol.Queue.MaxWait,
		Cores:   runtime.GOMAXPROCS(0),
		NumCPU:  runtime.NumCPU(),
	}
	fmt.Fprintf(out, "overload scene: %d stubs at %v, warm %v rps / burst %v rps, policy %q\n",
		len(stubs), opts.BaseLatency, opts.WarmRate, opts.BurstRate, cfg.Overload)

	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	}
	target := srv.URL() + "/"

	var wg sync.WaitGroup
	var seq atomic.Int64
	var sent, okC, c429, c503, other [overload.NumTiers]atomic.Int64
	fire := func() {
		tier := int(seq.Add(1)) % overload.NumTiers
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodGet, target, nil)
			if err != nil {
				other[tier].Add(1)
				sent[tier].Add(1)
				return
			}
			req.Header.Set(HeaderCriticality, tierHeaderValues[tier])
			resp, err := client.Do(req)
			if err == nil {
				switch {
				case resp.StatusCode < http.StatusInternalServerError && resp.StatusCode != http.StatusTooManyRequests:
					okC[tier].Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					c429[tier].Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					c503[tier].Add(1)
				default:
					other[tier].Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			} else {
				other[tier].Add(1)
			}
			sent[tier].Add(1)
		}()
	}
	// drive paces fire() open-loop at rate for d — no feedback from
	// responses, so a shedding proxy faces undiminished offered load,
	// exactly the regime admission control exists for.
	drive := func(rate float64, d time.Duration) {
		interval := time.Duration(float64(time.Second) / rate)
		end := time.Now().Add(d)
		next := time.Now()
		for time.Now().Before(end) {
			fire()
			next = next.Add(interval)
			if sleep := time.Until(next); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}

	// The gauge sampler polls /metrics through the burst: the per-backend
	// in-flight gauges and the admission-queue depth must be live and
	// consistent with the limit while the scene is actually overloaded.
	samplerCtx, samplerStop := context.WithCancel(context.Background())
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var peakLimit float64
		for {
			select {
			case <-samplerCtx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			body, err := fetchMetrics(client, srv.URL()+"/metrics")
			if err != nil {
				continue
			}
			inflightSum := sumGauge(body, mesh.MetricInflight)
			qdepth := sumGauge(body, MetricAdmissionQueueDepth)
			if limit := float64(srv.Admitter().TotalLimit()); limit > peakLimit {
				peakLimit = limit
			}
			if inflightSum > report.PeakInflightSum {
				report.PeakInflightSum = inflightSum
			}
			if qdepth > report.PeakQueueDepth {
				report.PeakQueueDepth = qdepth
			}
			// The bound is the peak limit, not the current one: an AIMD
			// shrink mid-burst legitimately leaves work admitted at the old,
			// larger limit still in flight. Slack covers the gauge lagging
			// the admitter by the few instructions between slot grant and
			// gauge increment.
			if inflightSum > peakLimit+8 && report.InflightViolation == "" {
				report.InflightViolation = fmt.Sprintf("in-flight gauge sum %.0f exceeds peak limit %0.f", inflightSum, peakLimit)
			}
		}
	}()

	start := time.Now()
	drive(opts.WarmRate, opts.Warm)
	drive(opts.BurstRate, opts.Burst)
	burstEnd := time.Now()
	drive(opts.WarmRate, opts.Cool)
	wallDur := time.Since(start)
	wg.Wait()
	samplerStop()
	<-samplerDone

	// The gate's recovery: all tiers re-admitted within the cool-down plus
	// a grace window (readmit hysteresis needs sustained healthy sojourns,
	// which need traffic — keep trickling requests while polling).
	readmitDeadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(readmitDeadline) {
		st := srv.Admitter().Stats()
		if st.AdmitMax == overload.NumTiers-1 {
			report.ReadmittedAll = true
			break
		}
		fire()
		time.Sleep(50 * time.Millisecond)
	}
	report.ReadmitTTR = time.Since(burstEnd)
	wg.Wait()

	report.Stats = srv.Admitter().Stats()
	var total int64
	for tier := 0; tier < overload.NumTiers; tier++ {
		report.Tiers[tier] = TierOutcome{
			Sent:    sent[tier].Load(),
			OK:      okC[tier].Load(),
			Shed429: c429[tier].Load(),
			Shed503: c503[tier].Load(),
			Other:   other[tier].Load(),
		}
		total += report.Tiers[tier].Sent
	}
	report.AchievedRPS = float64(total) / wallDur.Seconds()
	report.AllocsPerOp = MeasureAdmitAllocs()

	dropped, err := srv.ShutdownTimeout()
	if err != nil {
		return report, err
	}
	report.Dropped = dropped

	for tier := 0; tier < overload.NumTiers; tier++ {
		t := report.Tiers[tier]
		fmt.Fprintf(out, "  %-9s sent=%d ok=%d 429=%d 503=%d other=%d shed(server)=%d\n",
			overload.TierName(tier), t.Sent, t.OK, t.Shed429, t.Shed503, t.Other, report.Stats.Shed[tier])
	}
	fmt.Fprintf(out, "  queue: max-sojourn=%v (ceiling %v) codel-drops=%d overflow=%d lifo-flips=%d peak-depth=%.0f\n",
		report.Stats.MaxSojourn.Round(time.Millisecond), report.MaxWait,
		report.Stats.CodelDropped, report.Stats.QueueOverflow, report.Stats.LifoFlips, report.PeakQueueDepth)
	fmt.Fprintf(out, "  gate: readmits=%d admit-max=%d readmitted-all=%v ttr=%v; limit=%d peak-inflight=%.0f; rps=%.1f allocs/op=%v dropped=%d\n",
		report.Stats.Readmits, report.Stats.AdmitMax, report.ReadmittedAll,
		report.ReadmitTTR.Round(time.Millisecond), report.Stats.TotalLimit,
		report.PeakInflightSum, report.AchievedRPS, report.AllocsPerOp, report.Dropped)

	if fails := report.assertions(); len(fails) > 0 {
		return report, fmt.Errorf("overload scene: %s", strings.Join(fails, "; "))
	}
	fmt.Fprintln(out, "overload scene: all admission-control assertions held")
	return report, nil
}

// assertions is the overload scene's acceptance bar.
func (r *OverloadReport) assertions() []string {
	var fails []string
	crit, def, shed := r.Stats.Shed[overload.TierCritical], r.Stats.Shed[overload.TierDefault], r.Stats.Shed[overload.TierSheddable]
	if shed == 0 {
		fails = append(fails, "burst never shed any sheddable traffic — the scene did not overload")
	}
	if shed < def || def < crit {
		fails = append(fails, fmt.Sprintf("shedding not tier-ordered: sheddable=%d default=%d critical=%d", shed, def, crit))
	}
	if c := r.Tiers[overload.TierCritical]; c.Sent > 0 && float64(c.OK) < 0.99*float64(c.Sent) {
		fails = append(fails, fmt.Sprintf("critical tier success %d/%d under overload, want >= 99%%", c.OK, c.Sent))
	}
	if r.Stats.MaxSojourn <= 0 {
		fails = append(fails, "admission queue never held a request — the scene did not queue")
	} else if r.Stats.MaxSojourn >= r.MaxWait {
		fails = append(fails, fmt.Sprintf("max queue sojourn %v not under the %v ceiling", r.Stats.MaxSojourn, r.MaxWait))
	}
	if r.PeakQueueDepth <= 0 {
		fails = append(fails, "overload_queue_depth gauge never showed a standing queue on /metrics")
	}
	if r.PeakInflightSum <= 0 {
		fails = append(fails, "request_inflight gauges never showed traffic on /metrics")
	}
	if r.InflightViolation != "" {
		fails = append(fails, r.InflightViolation)
	}
	if !r.ReadmittedAll {
		fails = append(fails, fmt.Sprintf("tier gate never re-admitted all tiers after the burst (admit-max %d)", r.Stats.AdmitMax))
	}
	if r.Dropped > 0 {
		fails = append(fails, fmt.Sprintf("%d requests dropped at drain", r.Dropped))
	}
	if !raceEnabled && r.AllocsPerOp != 0 {
		fails = append(fails, fmt.Sprintf("admit fast path allocates %v per op, contract is 0", r.AllocsPerOp))
	}
	return fails
}

// BenchEntries converts the report into BENCH_serve.json records.
func (r *OverloadReport) BenchEntries() []BenchEntry {
	return []BenchEntry{{
		Name:          "serve_overload_scene",
		Algo:          AlgoRR,
		RPS:           r.AchievedRPS,
		AllocsPerOp:   r.AllocsPerOp,
		Cores:         r.Cores,
		NumCPU:        r.NumCPU,
		Fault:         "overload",
		TTRMs:         float64(r.ReadmitTTR) / float64(time.Millisecond),
		Recovered:     r.ReadmittedAll,
		ShedCritical:  r.Stats.Shed[overload.TierCritical],
		ShedDefault:   r.Stats.Shed[overload.TierDefault],
		ShedSheddable: r.Stats.Shed[overload.TierSheddable],
		MaxQueueMs:    float64(r.Stats.MaxSojourn) / float64(time.Millisecond),
	}}
}

// MeasureAdmitAllocs reports the admission layer's own allocations per
// admitted request on the no-shed fast path: Admit grant, the per-attempt
// Observe, Release. The contract is zero — the gate must cost nothing when
// the system is healthy.
func MeasureAdmitAllocs() float64 {
	p, err := overload.ParsePolicy("limit=64,target=20ms,qcap=32")
	if err != nil {
		return -1
	}
	a := overload.NewWallAdmitter(p, 3, time.Now())
	ctx := context.Background()
	op := func() {
		if v := a.Admit(ctx, time.Now(), overload.TierDefault); v == overload.Admitted {
			a.Observe(0, 5*time.Millisecond, true)
			a.Release()
		}
	}
	return allocsPerRun(10000, op)
}

// fetchMetrics GETs a /metrics endpoint and returns the body.
func fetchMetrics(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// sumGauge sums every sample of one metric family in Prometheus text
// exposition (all label sets), returning 0 when the family is absent.
func sumGauge(body, family string) float64 {
	var sum float64
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue // a longer family name sharing the prefix
		}
		idx := strings.LastIndexByte(rest, ' ')
		if idx < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(rest[idx+1:], 64); err == nil {
			sum += v
		}
	}
	return sum
}
