//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in. Allocation
// pins are meaningless under -race: sync.Pool deliberately drops a fraction
// of Puts to expose races, so the pooled hot path appears to allocate.
const raceEnabled = true
