package serve

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"l3/internal/overload"
)

// TestDrainWithQueuedAdmissions drains the server while the admission queue
// holds parked requests behind stalled backends: the queued requests must be
// flushed with 503s (not stranded), the stalled in-flight ones counted as
// dropped, and the goroutine population must return to baseline once the
// stall lifts.
func TestDrainWithQueuedAdmissions(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, stubs := chaosServer(t, 2, func(c *Config) {
		// One slot per backend, so two admitted requests saturate the
		// concurrency budget and everything else parks in the queue.
		c.Overload = "limit=1,max=1,target=20ms,qcap=32,tiers=on"
		c.RequestTimeout = 10 * time.Second // queued work outlives the drain window
		c.PerTryTimeout = 5 * time.Second
		c.DrainTimeout = time.Second
		c.HedgePercentile = 0 // hedges would hold extra slots mid-drain
	})

	for _, s := range stubs {
		s.SetStalled(true)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	var got503, gotOther atomic.Int64
	fire := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Get(srv.URL() + "/")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					got503.Add(1)
				} else {
					gotOther.Add(1)
				}
			}()
		}
	}

	// Two requests take the two slots and stall in flight…
	const admitted = 2
	fire(admitted)
	deadline := time.Now().Add(2 * time.Second)
	for srv.Admitter().Stats().Admitted < admitted && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Admitter().Stats().Admitted; got != admitted {
		t.Fatalf("admitted = %d before queueing, want %d", got, admitted)
	}
	// …then six more park in the admission queue.
	const queued = 6
	fire(queued)
	for srv.Admitter().Stats().QueueLen < queued && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Admitter().Stats().QueueLen; got != queued {
		t.Fatalf("queue length = %d before drain, want %d", got, queued)
	}

	dropped, err := srv.ShutdownTimeout()
	if err != nil {
		// The stalled in-flight pair outlives DrainTimeout; a deadline error
		// alongside the dropped count is the expected shape.
		t.Logf("drain err (expected with stalled in-flight work): %v", err)
	}
	if dropped != admitted {
		t.Errorf("dropped = %d, want %d (queued requests flushed, not dropped)", dropped, admitted)
	}
	st := srv.Admitter().Stats()
	var shedTotal int64
	for tier := 0; tier < overload.NumTiers; tier++ {
		shedTotal += st.Shed[tier]
	}
	if shedTotal != queued {
		t.Errorf("admitter shed %d, want the %d flushed queue entries", shedTotal, queued)
	}
	if st.QueueLen != 0 {
		t.Errorf("queue length = %d after drain, want 0", st.QueueLen)
	}

	// The flushed waiters answer 503 promptly even while the stall holds.
	for end := time.Now().Add(2 * time.Second); got503.Load() < queued && time.Now().Before(end); {
		time.Sleep(10 * time.Millisecond)
	}
	if got503.Load() != queued {
		t.Errorf("queued requests answered 503: %d, want %d (other: %d)", got503.Load(), queued, gotOther.Load())
	}

	// Release the stalled handlers; every goroutine must come home.
	for _, s := range stubs {
		s.SetStalled(false)
	}
	wg.Wait()
	var after int
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(50 * time.Millisecond) {
		client.CloseIdleConnections()
		srv.CloseIdleConnections()
		if after = runtime.NumGoroutine(); after <= before+2 {
			break
		}
	}
	if after > before+2 {
		t.Errorf("goroutines: %d before, %d after drain — leak", before, after)
	}
}

// TestServeOverloadScene is the wall-clock overload gate: the quick
// square-wave scene — warm, saturating burst, recovery — against the live
// admission-controlled proxy, asserting bounded queue delay, tier-ordered
// shedding, live in-flight gauges and full tier re-admission end to end.
// ~10s of wall time; `make overload-smoke` runs it explicitly (with the
// report shown), so -short skips it here.
func TestServeOverloadScene(t *testing.T) {
	if testing.Short() {
		t.Skip("overload scene needs ~10s of wall-clock; run make overload-smoke")
	}
	var buf strings.Builder
	report, err := RunOverloadChaostest(OverloadOptions{Quick: true}, &buf)
	t.Log("\n" + buf.String())
	if err != nil {
		t.Fatal(err)
	}
	entries := report.BenchEntries()
	if len(entries) != 1 || entries[0].Name != "serve_overload_scene" {
		t.Fatalf("BenchEntries = %+v, want one serve_overload_scene record", entries)
	}
	e := entries[0]
	if e.Fault != "overload" || !e.Recovered || e.MaxQueueMs <= 0 {
		t.Errorf("record %+v: want fault=overload, recovered, max_queue_ms > 0", e)
	}
}

// TestAdmitPathAllocsPinned pins the serve-side admission fast path at zero
// allocations per admitted request (Admit grant + Observe + Release), the
// same measurement the overload scene reports into BENCH_serve.json.
func TestAdmitPathAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc pin not meaningful under -race")
	}
	if allocs := MeasureAdmitAllocs(); allocs != 0 {
		t.Fatalf("admit fast path allocs = %v per op, contract is 0", allocs)
	}
}
