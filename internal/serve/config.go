package serve

import (
	"fmt"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"l3/internal/overload"
)

// Algorithms the serving mode can run. They mirror internal/bench's
// ablation arms: weighted selection with uniform weights (rr), uniform
// weights gated on health probes (failover), and the two metric-driven
// controllers (l3, c3).
const (
	AlgoRR       = "rr"
	AlgoFailover = "failover"
	AlgoL3       = "l3"
	AlgoC3       = "c3"
)

// BackendConfig names one upstream HTTP server.
type BackendConfig struct {
	// Name is the backend's identity in metrics, TrafficSplits and logs.
	Name string
	// URL is the upstream base URL (scheme + host[:port]).
	URL string
}

// Config parameterises a serve.Server. Durations are real wall-clock time.
type Config struct {
	// Listen is the proxy's listen address (default "127.0.0.1:8080";
	// ":0" picks an ephemeral port, the smoke tests' mode).
	Listen string
	// Service is the logical service name carried in every metric label
	// and the TrafficSplit (default "api").
	Service string
	// Algo selects the balancing algorithm: rr, failover, l3 or c3
	// (default l3).
	Algo string
	// Backends are the upstreams. At least one is required.
	Backends []BackendConfig

	// ScrapeInterval is how often the control plane scrapes its own
	// /metrics endpoint over HTTP (default 5s, the paper's Prometheus
	// interval; the smoke tests shrink it).
	ScrapeInterval time.Duration
	// ScrapeTimeout bounds one self-scrape GET (default and cap:
	// ScrapeInterval/2, so a stalled /metrics can never push the next
	// control round late).
	ScrapeTimeout time.Duration
	// ReconcileInterval is the controller's reweighting period (default
	// matches ScrapeInterval).
	ReconcileInterval time.Duration
	// Window is the collector's trailing query window (default 2×
	// ScrapeInterval, min 2s).
	Window time.Duration
	// Percentile is the latency quantile steering L3 (default 0.99).
	Percentile float64
	// Guard enables the internal/guard hardening layer — ingestion
	// hygiene, write gating, stall watchdog (default true).
	Guard bool

	// HealthInterval is the HTTP health-probe period (default 2s).
	HealthInterval time.Duration
	// HealthTimeout fails an unanswered probe (default 1s).
	HealthTimeout time.Duration
	// HealthPath is the upstream path probed (default "/healthz").
	HealthPath string

	// BreakerThreshold opens a backend's circuit after this many
	// consecutive proxy-observed failures (default 5; 0 disables).
	BreakerThreshold int
	// BreakerWindow is how long an opened circuit stays open (default 2s).
	BreakerWindow time.Duration

	// MaxAttempts bounds proxy-level attempts per request: transport
	// errors where no bytes reached the client retry on another backend
	// (default 2; 1 disables retries).
	MaxAttempts int
	// RetryBudgetRatio is the Finagle-style token-bucket earn rate
	// bounding the steady-state retry ratio (default 0.2). Hedges draw
	// from the same bucket.
	RetryBudgetRatio float64

	// RequestTimeout is the default per-request latency budget when the
	// client sends no X-L3-Deadline header (default 10s; 0 disables
	// deadlines entirely).
	RequestTimeout time.Duration
	// PerTryTimeout bounds one proxy attempt. Zero derives it per request
	// as budget/MaxAttempts, so a stalled backend leaves time to retry.
	PerTryTimeout time.Duration
	// HedgePercentile is the latency quantile of the proxy's own observed
	// successes after which an idempotent bodyless request launches a
	// hedge to a second backend (default 0.95; 0 disables hedging).
	HedgePercentile float64
	// HedgeMinDelay floors the learned hedge delay so sub-millisecond
	// backends don't double traffic (default 1ms).
	HedgeMinDelay time.Duration

	// StaleAfter is how long the control plane may go without a
	// successful self-scrape before the data plane enters fail-static
	// mode: the routing table freezes against further control writes and
	// decays toward uniform (default 3× ScrapeInterval; negative
	// disables).
	StaleAfter time.Duration
	// DecayFactor is the per-reconcile-tick multiplier pulling fail-static
	// weights toward uniform: 1 freezes the last table forever, smaller
	// values forget the stale signal faster (default 0.8).
	DecayFactor float64

	// DrainTimeout bounds graceful shutdown (default 15s).
	DrainTimeout time.Duration

	// Overload is the admission-control policy in internal/overload's
	// key=value grammar ("limit=32,target=20ms,qcap=128,tiers=on"; empty
	// or "off" disables). When enabled the proxy runs an adaptive
	// concurrency limiter with a CoDel admission queue ahead of backend
	// selection; shed requests answer 429 (tier-gated) or 503 with
	// Retry-After before any upstream work happens.
	Overload string
	// MaxIdleConnsPerHost caps the transport's idle keep-alive
	// connections per upstream (default 32). The Go default of 2 forces
	// reconnect churn exactly when a burst needs the pool most.
	MaxIdleConnsPerHost int
	// IdleConnTimeout closes idle upstream connections after this long
	// (default 90s).
	IdleConnTimeout time.Duration
}

// DefaultConfig returns the documented defaults (no backends).
func DefaultConfig() Config {
	return Config{
		Listen:           "127.0.0.1:8080",
		Service:          "api",
		Algo:             AlgoL3,
		ScrapeInterval:   5 * time.Second,
		Percentile:       0.99,
		Guard:            true,
		HealthInterval:   2 * time.Second,
		HealthTimeout:    time.Second,
		HealthPath:       "/healthz",
		BreakerThreshold: 5,
		BreakerWindow:    2 * time.Second,
		MaxAttempts:      2,
		RetryBudgetRatio: 0.2,
		RequestTimeout:   10 * time.Second,
		HedgePercentile:  0.95,
		HedgeMinDelay:    time.Millisecond,
		DecayFactor:      0.8,
		DrainTimeout:     15 * time.Second,

		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
	}
}

// withDerived fills the intervals that default relative to others.
func (c Config) withDerived() Config {
	if c.ReconcileInterval <= 0 {
		c.ReconcileInterval = c.ScrapeInterval
	}
	if c.Window <= 0 {
		c.Window = 2 * c.ScrapeInterval
		if c.Window < 2*time.Second {
			c.Window = 2 * time.Second
		}
	}
	if c.ScrapeTimeout <= 0 || c.ScrapeTimeout > c.ScrapeInterval/2 {
		c.ScrapeTimeout = c.ScrapeInterval / 2
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 3 * c.ScrapeInterval
	}
	return c
}

// Validate checks the configuration, returning every problem at once so an
// operator fixes one bad file in one round trip.
func (c Config) Validate() error {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if c.Listen == "" {
		bad("listen address is empty")
	}
	if c.Service == "" {
		bad("service name is empty")
	}
	switch c.Algo {
	case AlgoRR, AlgoFailover, AlgoL3, AlgoC3:
	default:
		bad("algo %q is not one of rr, failover, l3, c3", c.Algo)
	}
	if len(c.Backends) == 0 {
		bad("no backends configured")
	}
	seen := make(map[string]bool, len(c.Backends))
	for i, b := range c.Backends {
		if b.Name == "" {
			bad("backend %d has no name", i)
		}
		if seen[b.Name] {
			bad("backend name %q is duplicated", b.Name)
		}
		seen[b.Name] = true
		u, err := url.Parse(b.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			bad("backend %q URL %q is not an absolute http(s) URL", b.Name, b.URL)
		} else if u.Scheme != "http" && u.Scheme != "https" {
			bad("backend %q URL scheme %q is not http or https", b.Name, u.Scheme)
		}
	}
	if c.ScrapeInterval <= 0 {
		bad("scrape_interval must be positive")
	}
	if c.Percentile <= 0 || c.Percentile >= 1 {
		bad("percentile %v is outside (0, 1)", c.Percentile)
	}
	if c.MaxAttempts < 1 {
		bad("max_attempts must be at least 1")
	}
	if c.RetryBudgetRatio < 0 {
		bad("retry_budget_ratio must be non-negative")
	}
	if c.HedgePercentile < 0 || c.HedgePercentile >= 1 {
		bad("hedge_percentile %v is outside [0, 1) (0 disables hedging)", c.HedgePercentile)
	}
	if c.RequestTimeout < 0 {
		bad("request_timeout must be non-negative")
	}
	if c.PerTryTimeout < 0 {
		bad("per_try_timeout must be non-negative")
	}
	if c.DecayFactor <= 0 || c.DecayFactor > 1 {
		bad("decay_factor %v is outside (0, 1]", c.DecayFactor)
	}
	if _, err := c.OverloadPolicy(); err != nil {
		bad("overload policy: %v", err)
	}
	if c.MaxIdleConnsPerHost < 1 {
		bad("max_idle_conns_per_host must be at least 1")
	}
	if c.IdleConnTimeout <= 0 {
		bad("idle_conn_timeout must be positive")
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("serve: invalid config:\n  - %s", strings.Join(problems, "\n  - "))
}

// LoadConfig builds the effective configuration: defaults, then the YAML
// file (optional, "" skips), then L3SERVE_* environment overrides. The
// layering matches the 12-factor convention: files declare, the environment
// overrides. Validation happens in NewServer, after any command-line
// overrides land on top.
func LoadConfig(path string) (Config, error) {
	return loadConfig(path, os.LookupEnv)
}

func loadConfig(path string, lookup func(string) (string, bool)) (Config, error) {
	cfg := DefaultConfig()
	if path != "" {
		src, err := os.ReadFile(path)
		if err != nil {
			return cfg, fmt.Errorf("serve: reading config: %w", err)
		}
		if err := cfg.applyYAML(string(src)); err != nil {
			return cfg, err
		}
	}
	if err := cfg.applyEnv(lookup); err != nil {
		return cfg, err
	}
	return cfg.withDerived(), nil
}

// applyYAML folds a YAML document into the config. Unknown keys are errors:
// a typoed "percentil:" silently running defaults is how production configs
// rot.
func (c *Config) applyYAML(src string) error {
	root, err := parseYAML(src)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if !root.isMapping() {
		return fmt.Errorf("serve: config root must be a mapping")
	}
	for _, key := range root.order {
		node := root.mapping[key]
		var err error
		switch key {
		case "listen":
			err = node.toString(&c.Listen)
		case "service":
			err = node.toString(&c.Service)
		case "algo":
			err = node.toString(&c.Algo)
		case "backends":
			err = c.applyBackendsYAML(node)
		case "scrape_interval":
			err = node.toDuration(&c.ScrapeInterval)
		case "scrape_timeout":
			err = node.toDuration(&c.ScrapeTimeout)
		case "reconcile_interval":
			err = node.toDuration(&c.ReconcileInterval)
		case "window":
			err = node.toDuration(&c.Window)
		case "percentile":
			err = node.toFloat(&c.Percentile)
		case "guard":
			err = node.toBool(&c.Guard)
		case "health_interval":
			err = node.toDuration(&c.HealthInterval)
		case "health_timeout":
			err = node.toDuration(&c.HealthTimeout)
		case "health_path":
			err = node.toString(&c.HealthPath)
		case "breaker_threshold":
			err = node.toInt(&c.BreakerThreshold)
		case "breaker_window":
			err = node.toDuration(&c.BreakerWindow)
		case "max_attempts":
			err = node.toInt(&c.MaxAttempts)
		case "retry_budget_ratio":
			err = node.toFloat(&c.RetryBudgetRatio)
		case "request_timeout":
			err = node.toDuration(&c.RequestTimeout)
		case "per_try_timeout":
			err = node.toDuration(&c.PerTryTimeout)
		case "hedge_percentile":
			err = node.toFloat(&c.HedgePercentile)
		case "hedge_min_delay":
			err = node.toDuration(&c.HedgeMinDelay)
		case "stale_after":
			err = node.toDuration(&c.StaleAfter)
		case "decay_factor":
			err = node.toFloat(&c.DecayFactor)
		case "drain_timeout":
			err = node.toDuration(&c.DrainTimeout)
		case "overload":
			err = node.toString(&c.Overload)
		case "max_idle_conns_per_host":
			err = node.toInt(&c.MaxIdleConnsPerHost)
		case "idle_conn_timeout":
			err = node.toDuration(&c.IdleConnTimeout)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return fmt.Errorf("serve: config key %q: %w", key, err)
		}
	}
	return nil
}

func (c *Config) applyBackendsYAML(node *yamlNode) error {
	if !node.isSequence() {
		return fmt.Errorf("expected a sequence of {name, url} mappings")
	}
	c.Backends = nil
	for i, item := range node.sequence {
		if !item.isMapping() {
			return fmt.Errorf("backend %d: expected a {name, url} mapping", i)
		}
		var b BackendConfig
		for _, k := range item.order {
			switch k {
			case "name":
				if err := item.mapping[k].toString(&b.Name); err != nil {
					return fmt.Errorf("backend %d name: %w", i, err)
				}
			case "url":
				if err := item.mapping[k].toString(&b.URL); err != nil {
					return fmt.Errorf("backend %d url: %w", i, err)
				}
			default:
				return fmt.Errorf("backend %d: unknown key %q", i, k)
			}
		}
		c.Backends = append(c.Backends, b)
	}
	return nil
}

// applyEnv folds L3SERVE_* variables over the config. Every scalar key has
// an override; backends use L3SERVE_BACKENDS="name=url,name=url".
func (c *Config) applyEnv(lookup func(string) (string, bool)) error {
	str := func(name string, dst *string) error {
		if v, ok := lookup(name); ok {
			*dst = v
		}
		return nil
	}
	var firstErr error
	record := func(name string, err error) {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: %s: %w", name, err)
		}
	}
	dur := func(name string, dst *time.Duration) {
		if v, ok := lookup(name); ok {
			d, err := time.ParseDuration(v)
			record(name, err)
			if err == nil {
				*dst = d
			}
		}
	}
	_ = str("L3SERVE_LISTEN", &c.Listen)
	_ = str("L3SERVE_SERVICE", &c.Service)
	_ = str("L3SERVE_ALGO", &c.Algo)
	_ = str("L3SERVE_HEALTH_PATH", &c.HealthPath)
	_ = str("L3SERVE_OVERLOAD", &c.Overload)
	dur("L3SERVE_SCRAPE_INTERVAL", &c.ScrapeInterval)
	dur("L3SERVE_SCRAPE_TIMEOUT", &c.ScrapeTimeout)
	dur("L3SERVE_REQUEST_TIMEOUT", &c.RequestTimeout)
	dur("L3SERVE_PER_TRY_TIMEOUT", &c.PerTryTimeout)
	dur("L3SERVE_HEDGE_MIN_DELAY", &c.HedgeMinDelay)
	dur("L3SERVE_STALE_AFTER", &c.StaleAfter)
	dur("L3SERVE_RECONCILE_INTERVAL", &c.ReconcileInterval)
	dur("L3SERVE_WINDOW", &c.Window)
	dur("L3SERVE_HEALTH_INTERVAL", &c.HealthInterval)
	dur("L3SERVE_HEALTH_TIMEOUT", &c.HealthTimeout)
	dur("L3SERVE_BREAKER_WINDOW", &c.BreakerWindow)
	dur("L3SERVE_DRAIN_TIMEOUT", &c.DrainTimeout)
	dur("L3SERVE_IDLE_CONN_TIMEOUT", &c.IdleConnTimeout)
	if v, ok := lookup("L3SERVE_PERCENTILE"); ok {
		f, err := strconv.ParseFloat(v, 64)
		record("L3SERVE_PERCENTILE", err)
		if err == nil {
			c.Percentile = f
		}
	}
	if v, ok := lookup("L3SERVE_RETRY_BUDGET_RATIO"); ok {
		f, err := strconv.ParseFloat(v, 64)
		record("L3SERVE_RETRY_BUDGET_RATIO", err)
		if err == nil {
			c.RetryBudgetRatio = f
		}
	}
	if v, ok := lookup("L3SERVE_HEDGE_PERCENTILE"); ok {
		f, err := strconv.ParseFloat(v, 64)
		record("L3SERVE_HEDGE_PERCENTILE", err)
		if err == nil {
			c.HedgePercentile = f
		}
	}
	if v, ok := lookup("L3SERVE_DECAY_FACTOR"); ok {
		f, err := strconv.ParseFloat(v, 64)
		record("L3SERVE_DECAY_FACTOR", err)
		if err == nil {
			c.DecayFactor = f
		}
	}
	if v, ok := lookup("L3SERVE_GUARD"); ok {
		b, err := strconv.ParseBool(v)
		record("L3SERVE_GUARD", err)
		if err == nil {
			c.Guard = b
		}
	}
	if v, ok := lookup("L3SERVE_BREAKER_THRESHOLD"); ok {
		n, err := strconv.Atoi(v)
		record("L3SERVE_BREAKER_THRESHOLD", err)
		if err == nil {
			c.BreakerThreshold = n
		}
	}
	if v, ok := lookup("L3SERVE_MAX_ATTEMPTS"); ok {
		n, err := strconv.Atoi(v)
		record("L3SERVE_MAX_ATTEMPTS", err)
		if err == nil {
			c.MaxAttempts = n
		}
	}
	if v, ok := lookup("L3SERVE_MAX_IDLE_CONNS_PER_HOST"); ok {
		n, err := strconv.Atoi(v)
		record("L3SERVE_MAX_IDLE_CONNS_PER_HOST", err)
		if err == nil {
			c.MaxIdleConnsPerHost = n
		}
	}
	if v, ok := lookup("L3SERVE_BACKENDS"); ok {
		backends, err := ParseBackendList(v)
		record("L3SERVE_BACKENDS", err)
		if err == nil {
			c.Backends = backends
		}
	}
	return firstErr
}

// ParseBackendList parses the "name=url,name=url" form shared by the
// L3SERVE_BACKENDS variable and the -backends flag.
func ParseBackendList(s string) ([]BackendConfig, error) {
	var out []BackendConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("backend %q is not name=url", part)
		}
		out = append(out, BackendConfig{Name: strings.TrimSpace(name), URL: strings.TrimSpace(u)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty backend list")
	}
	return out, nil
}

// OverloadPolicy parses the Overload string into a policy with defaults
// applied. An empty or "off" string returns a disabled policy and no error.
func (c Config) OverloadPolicy() (overload.Policy, error) {
	if strings.TrimSpace(c.Overload) == "" {
		return overload.Policy{}, nil
	}
	return overload.ParsePolicy(c.Overload)
}

// BackendNames returns the configured backend names, sorted.
func (c Config) BackendNames() []string {
	names := make([]string, len(c.Backends))
	for i, b := range c.Backends {
		names[i] = b.Name
	}
	sort.Strings(names)
	return names
}

// Typed extraction helpers from parsed YAML scalars.

func (n *yamlNode) toString(dst *string) error {
	if n == nil || !n.isScalar {
		return fmt.Errorf("expected a scalar")
	}
	*dst = n.scalar
	return nil
}

func (n *yamlNode) toDuration(dst *time.Duration) error {
	if n == nil || !n.isScalar {
		return fmt.Errorf("expected a duration scalar")
	}
	d, err := time.ParseDuration(n.scalar)
	if err != nil {
		return err
	}
	*dst = d
	return nil
}

func (n *yamlNode) toFloat(dst *float64) error {
	if n == nil || !n.isScalar {
		return fmt.Errorf("expected a number")
	}
	f, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		return err
	}
	*dst = f
	return nil
}

func (n *yamlNode) toInt(dst *int) error {
	if n == nil || !n.isScalar {
		return fmt.Errorf("expected an integer")
	}
	v, err := strconv.Atoi(n.scalar)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func (n *yamlNode) toBool(dst *bool) error {
	if n == nil || !n.isScalar {
		return fmt.Errorf("expected a boolean")
	}
	b, err := strconv.ParseBool(n.scalar)
	if err != nil {
		return err
	}
	*dst = b
	return nil
}
