package serve

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// StubBackend is a controllable upstream for tests and the selftest: fixed
// (settable) latency, settable failure rate via an explicit fail switch, a
// health endpoint that can be flipped, and request accounting.
type StubBackend struct {
	Name string

	latencyNs atomic.Int64
	failing   atomic.Bool
	unhealthy atomic.Bool
	requests  atomic.Int64

	listener net.Listener
	srv      *http.Server
	done     chan struct{}
}

// NewStubBackend starts a stub on an ephemeral 127.0.0.1 port.
func NewStubBackend(name string, latency time.Duration) (*StubBackend, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &StubBackend{Name: name, listener: ln, done: make(chan struct{})}
	s.latencyNs.Store(int64(latency))
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.unhealthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		s.requests.Add(1)
		if d := time.Duration(s.latencyNs.Load()); d > 0 {
			time.Sleep(d)
		}
		if s.failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, "stub failure")
			return
		}
		fmt.Fprintf(w, "ok from %s\n", s.Name)
	})
	s.srv = &http.Server{Handler: mux}
	go func() {
		s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// URL returns the stub's base URL.
func (s *StubBackend) URL() string { return "http://" + s.listener.Addr().String() }

// SetLatency changes the per-request sleep.
func (s *StubBackend) SetLatency(d time.Duration) { s.latencyNs.Store(int64(d)) }

// SetFailing makes (or stops making) every request answer 500.
func (s *StubBackend) SetFailing(v bool) { s.failing.Store(v) }

// SetUnhealthy makes (or stops making) /healthz answer 503.
func (s *StubBackend) SetUnhealthy(v bool) { s.unhealthy.Store(v) }

// Requests returns the number of proxied requests served (health probes hit
// /healthz and are not counted).
func (s *StubBackend) Requests() int64 { return s.requests.Load() }

// Close stops the stub immediately.
func (s *StubBackend) Close() {
	s.srv.Close()
	<-s.done
}

// BackendConfigOf returns the serve config entry pointing at the stub.
func (s *StubBackend) BackendConfigOf() BackendConfig {
	return BackendConfig{Name: s.Name, URL: s.URL()}
}
