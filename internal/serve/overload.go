package serve

import (
	"net/http"

	"l3/internal/metrics"
	"l3/internal/overload"
)

// HeaderCriticality carries a request's criticality tier ("critical",
// "default", "sheddable"; overload.ParseTier's grammar). Unmarked requests
// run at TierDefault. Under overload the tier gate clamps sheddable traffic
// first, then default, and a CoDel drop falls on the most sheddable queued
// request; critical is only ever rejected by queue overflow or the MaxWait
// staleness ceiling, never by the gate or by the drop law.
const HeaderCriticality = "X-L3-Criticality"

// Serve-side admission metric families, alongside the overload package's
// own counter names (which the sim client registers per service). The
// admitter keeps its counters under its own mutex for the hot path;
// serveMetrics folds a snapshot into these handles at scrape time, so
// /metrics shows them without the request path touching the registry.
const (
	// MetricAdmissionQueueDepth gauges requests parked in the admission
	// queue right now.
	MetricAdmissionQueueDepth = "overload_queue_depth"
	// MetricAdmitMaxTier gauges the highest tier currently admitted
	// (NumTiers-1 = everything, 0 = critical only).
	MetricAdmitMaxTier = "overload_admit_max_tier"
	// MetricMaxSojournSeconds gauges the longest queue wait any admitted
	// request has experienced — the bounded-delay witness.
	MetricMaxSojournSeconds = "overload_queue_max_sojourn_seconds"
)

// admissionMetrics are the /metrics handles for the admission layer. The
// counters mirror the admitter's internal stats; sync advances each by the
// snapshot delta (the stats are monotonic), gauges are set outright.
type admissionMetrics struct {
	admitted, codelDrop, overflow, lifoFlips, readmits *metrics.Counter
	shed                                               [overload.NumTiers]*metrics.Counter
	gLimit, gQueue, gAdmitMax, gMaxSojourn             *metrics.Gauge
}

func newAdmissionMetrics(reg *metrics.Registry, service string) *admissionMetrics {
	labels := metrics.Labels{"service": service}
	m := &admissionMetrics{
		admitted:    reg.Counter(overload.MetricAdmittedTotal, labels),
		codelDrop:   reg.Counter(overload.MetricCodelDroppedTotal, labels),
		overflow:    reg.Counter(overload.MetricQueueOverflowTotal, labels),
		lifoFlips:   reg.Counter(overload.MetricLifoFlipsTotal, labels),
		readmits:    reg.Counter(overload.MetricReadmitsTotal, labels),
		gLimit:      reg.Gauge(overload.MetricConcurrencyLimit, labels),
		gQueue:      reg.Gauge(MetricAdmissionQueueDepth, labels),
		gAdmitMax:   reg.Gauge(MetricAdmitMaxTier, labels),
		gMaxSojourn: reg.Gauge(MetricMaxSojournSeconds, labels),
	}
	for tier := 0; tier < overload.NumTiers; tier++ {
		m.shed[tier] = reg.Counter(overload.MetricShedTotal, labels.With("tier", overload.TierName(tier)))
	}
	return m
}

// sync folds an admitter snapshot into the registry. Only sync writes these
// counters, so each handle's current value is the last synced snapshot and
// the delta is exact.
func (m *admissionMetrics) sync(st overload.WallAdmitterStats) {
	catchUp := func(c *metrics.Counter, v int64) {
		if d := float64(v) - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	catchUp(m.admitted, st.Admitted)
	catchUp(m.codelDrop, st.CodelDropped)
	catchUp(m.overflow, st.QueueOverflow)
	catchUp(m.lifoFlips, st.LifoFlips)
	catchUp(m.readmits, st.Readmits)
	for tier := 0; tier < overload.NumTiers; tier++ {
		catchUp(m.shed[tier], st.Shed[tier])
	}
	m.gLimit.Set(float64(st.TotalLimit))
	m.gQueue.Set(float64(st.QueueLen))
	m.gAdmitMax.Set(float64(st.AdmitMax))
	m.gMaxSojourn.Set(st.MaxSojourn.Seconds())
}

// newUpstreamTransport builds the one transport every backend ReverseProxy
// and the hedging path share, with the connection pool sized from config:
// net/http's default of 2 idle conns per host forces reconnect churn
// exactly when a recovering backend faces its backlog.
func newUpstreamTransport(cfg Config) *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = cfg.MaxIdleConnsPerHost
	if t.MaxIdleConns < cfg.MaxIdleConnsPerHost {
		t.MaxIdleConns = cfg.MaxIdleConnsPerHost * 4
	}
	t.IdleConnTimeout = cfg.IdleConnTimeout
	return t
}

// shedResponse answers a rejected request: tier-gated sheds are the
// client's fault class (429 — slow down, or mark the request critical),
// every other shed is the proxy declining work (503). Both carry
// Retry-After so well-behaved clients back off, and both happen before any
// backend was picked or any retry-budget token moved.
func shedResponse(w http.ResponseWriter, v overload.Verdict) {
	w.Header().Set("Retry-After", "1")
	code := http.StatusServiceUnavailable
	if v == overload.ShedTier {
		code = http.StatusTooManyRequests
	}
	http.Error(w, "overloaded: "+v.String(), code)
}
