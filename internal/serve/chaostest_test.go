package serve

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeChaosSmoke is the wall-clock chaos gate: the quick schedule —
// stall, connection-reset burst, scrape outage, slow-loris drip, latency
// ramp, availability flap — against the live proxy, asserting breaker
// ejection bounds, p99 re-convergence and fail-static engagement end to
// end. ~32s of wall time; `make serve-chaos-smoke` runs it explicitly (with
// the report shown), so -short skips it here.
func TestServeChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaostest needs ~32s of wall-clock; run make serve-chaos-smoke")
	}
	var buf strings.Builder
	report, err := RunChaostest(ChaostestOptions{Quick: true}, &buf)
	t.Log("\n" + buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 6 {
		t.Fatalf("got %d fault results, want 6", len(report.Results))
	}
	kinds := map[string]bool{}
	for _, fr := range report.Results {
		kinds[fr.Fault] = true
	}
	for _, want := range []string{"stall", "reset", "scrapedrop", "slowloris", "ramp", "bflap"} {
		if !kinds[want] {
			t.Errorf("schedule did not exercise %q", want)
		}
	}
	entries := report.BenchEntries()
	if len(entries) != 6 {
		t.Fatalf("BenchEntries = %d records, want 6", len(entries))
	}
	for _, e := range entries {
		if !e.Recovered {
			t.Errorf("%s: recovered=false in bench record", e.Name)
		}
	}
}

// chaosServer boots a server over n chaos stubs with fast control loops.
func chaosServer(t *testing.T, n int, mutate func(*Config)) (*Server, []*ChaosStub) {
	t.Helper()
	var stubs []*ChaosStub
	cfg := DefaultConfig()
	cfg.Listen = "127.0.0.1:0"
	cfg.Algo = AlgoL3
	cfg.ScrapeInterval = 250 * time.Millisecond
	cfg.ReconcileInterval = 250 * time.Millisecond
	cfg.Window = 2 * time.Second
	cfg.HealthInterval = 2 * time.Second
	cfg.HealthTimeout = 500 * time.Millisecond
	cfg.DrainTimeout = 3 * time.Second
	for i := 0; i < n; i++ {
		s, err := NewChaosStub(fmt.Sprintf("cb-%d", i), 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		stubs = append(stubs, s)
		cfg.Backends = append(cfg.Backends, s.BackendConfigOf())
	}
	t.Cleanup(func() {
		for _, s := range stubs {
			s.Close()
		}
	})
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return srv, stubs
}

// TestDrainMidHedge drains the server while requests are mid-flight against
// a stalled backend — retried, hedged, some doomed. The drain must count
// each in-flight request once, finish inside the configured timeout, and
// leak no goroutines.
func TestDrainMidHedge(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, stubs := chaosServer(t, 2, func(c *Config) {
		c.RequestTimeout = 10 * time.Second // in-flight work outlives the drain window
		c.PerTryTimeout = 5 * time.Second
		c.DrainTimeout = time.Second
	})
	// Warm the hedge tracker past its 64-observation gate so in-flight
	// requests at drain time are on the hedged path.
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 80; i++ {
		resp, err := client.Get(srv.URL() + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Stall both backends and launch requests that will still be in flight
	// (stalled primaries, stalled hedges) when the drain begins.
	for _, s := range stubs {
		s.SetStalled(true)
	}
	const inflight = 8
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(srv.URL() + "/")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Handler().Inflight() < inflight && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Handler().Inflight(); got != inflight {
		t.Fatalf("inflight = %d before drain, want %d", got, inflight)
	}

	drainStart := time.Now()
	dropped, err := srv.ShutdownTimeout()
	drainTook := time.Since(drainStart)
	if err != nil && err != http.ErrServerClosed {
		// A timed-out drain reports context.DeadlineExceeded alongside the
		// dropped count; that is the expected shape here.
		t.Logf("drain err (expected with stalled in-flight work): %v", err)
	}
	if dropped != inflight {
		t.Errorf("dropped = %d, want %d (each stalled request counted once)", dropped, inflight)
	}
	if drainTook > 3*time.Second {
		t.Errorf("drain took %v, want bounded by ~DrainTimeout (1s) + slack", drainTook)
	}

	// Release the stalled handlers and in-flight clients, then the goroutine
	// population must return to the baseline.
	for _, s := range stubs {
		s.SetStalled(false)
	}
	wg.Wait()
	var after int
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(50 * time.Millisecond) {
		client.CloseIdleConnections()
		// Requests the drain abandoned finish only after the un-stall above
		// and re-pool their upstream connections; flush those too.
		srv.CloseIdleConnections()
		if after = runtime.NumGoroutine(); after <= before+2 {
			break
		}
	}
	if after > before+2 {
		t.Errorf("goroutines: %d before, %d after drain — leak", before, after)
	}
}

// TestFailStaticEngagesAndReleases starves the control plane of scrapes and
// watches the degraded mode: engagement after StaleAfter, weight decay
// toward uniform, release on the next good scrape.
func TestFailStaticEngagesAndReleases(t *testing.T) {
	srv, _ := chaosServer(t, 3, func(c *Config) {
		c.StaleAfter = 500 * time.Millisecond
	})
	defer srv.ShutdownTimeout()
	if !srv.ScrapeWait(1, 5*time.Second) {
		t.Fatal("control plane never scraped")
	}

	// Skew the published table so the decay has something to pull uniform.
	srv.Router().rebuild(srv.backends, map[string]int64{"cb-0": 900, "cb-1": 50, "cb-2": 50})

	srv.Control().SetDropping(true)
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Control().FailStaticActive() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !srv.Control().FailStaticActive() {
		t.Fatal("fail-static never engaged with scrapes dropped")
	}
	if got := srv.Control().FailStaticEngagements(); got != 1 {
		t.Fatalf("engagements = %d, want 1", got)
	}

	// Decay: within a few reconcile ticks the dominant backend's share must
	// shrink toward uniform (1/3), and never below it.
	share := func() float64 {
		w := srv.Router().Weights()
		var total uint64
		for _, v := range w {
			total += v
		}
		return float64(w["cb-0"]) / float64(total)
	}
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(50 * time.Millisecond) {
		if share() < 0.5 {
			break
		}
	}
	if s := share(); s >= 0.5 || s < 0.33 {
		t.Fatalf("cb-0 share = %.3f under decay, want in [1/3, 0.5)", s)
	}

	// Heal: the next successful scrape lifts the mode.
	srv.Control().SetDropping(false)
	deadline = time.Now().Add(5 * time.Second)
	for srv.Control().FailStaticActive() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Control().FailStaticActive() {
		t.Fatal("fail-static never released after scrapes resumed")
	}
}

// TestDeadlineBudgetReturns504 sends a request whose X-L3-Deadline is far
// shorter than the only backend's stall: the proxy must answer 504 at
// roughly the budget, not ride its own larger RequestTimeout.
func TestDeadlineBudgetReturns504(t *testing.T) {
	srv, stubs := chaosServer(t, 1, func(c *Config) {
		c.RequestTimeout = 10 * time.Second
	})
	defer srv.ShutdownTimeout()
	stubs[0].SetStalled(true)

	req, err := http.NewRequest(http.MethodGet, srv.URL()+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderDeadline, "200")
	start := time.Now()
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Do(req)
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if took > 2*time.Second {
		t.Fatalf("504 took %v, want ~200ms budget", took)
	}
}

// TestDeadlinePropagatesShrunkenBudget checks the header-level half of
// deadline propagation: the backend sees X-L3-Deadline no larger than the
// client sent, and smaller once retries have burned budget.
func TestDeadlinePropagatesShrunkenBudget(t *testing.T) {
	srv, stubs := chaosServer(t, 1, nil)
	defer srv.ShutdownTimeout()
	_ = stubs

	// A raw stub observing the forwarded header.
	seen := make(chan string, 1)
	obs, err := NewChaosStub("observer", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	obs.srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case seen <- r.Header.Get(HeaderDeadline):
		default:
		}
		w.WriteHeader(http.StatusOK)
	})

	cfg := DefaultConfig()
	cfg.Listen = "127.0.0.1:0"
	cfg.Algo = AlgoRR
	cfg.Backends = []BackendConfig{{Name: "observer", URL: obs.URL()}}
	srv2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv2.ShutdownTimeout()

	req, err := http.NewRequest(http.MethodGet, srv2.URL()+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderDeadline, "750")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := <-seen
	ms, err := strconv.Atoi(got)
	if err != nil {
		t.Fatalf("backend saw X-L3-Deadline=%q, want integer millis", got)
	}
	if ms <= 0 || ms > 750 {
		t.Fatalf("propagated deadline %dms, want in (0, 750]", ms)
	}
}

// TestPanicRecovery feeds the handler a panicking round-tripper: the request
// must come back 500 (when nothing was written) and the process must live.
func TestPanicRecovery(t *testing.T) {
	srv, _ := chaosServer(t, 2, nil)
	defer srv.ShutdownTimeout()

	h := srv.Handler()
	orig := h.transport
	h.transport = panicTripper{}
	for _, b := range srv.backends {
		b.rp.Transport = panicTripper{}
	}
	defer func() {
		h.transport = orig
		for _, b := range srv.backends {
			b.rp.Transport = nil
		}
	}()

	resp, err := http.Get(srv.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 500 or 502 from recovered panic", resp.StatusCode)
	}
	if got := h.Panics(); got == 0 {
		t.Fatal("panic counter did not increment")
	}
	// The proxy must still serve: restore transports and round-trip again.
	h.transport = orig
	for _, b := range srv.backends {
		b.rp.Transport = nil
	}
	resp, err = http.Get(srv.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d after recovery, want 200", resp.StatusCode)
	}
}

type panicTripper struct{}

func (panicTripper) RoundTrip(*http.Request) (*http.Response, error) {
	panic("chaos: transport panic")
}

// TestHedgeTrackerGatesAndLearns pins the tracker's contract: silent before
// 64 observations, then a delay at the configured percentile floor-bounded
// by the minimum.
func TestHedgeTrackerGatesAndLearns(t *testing.T) {
	tr := newHedgeTracker(0.95, time.Millisecond)
	if d := tr.hedgeAfter(); d != 0 {
		t.Fatalf("hedgeAfter = %v before any observations, want 0", d)
	}
	for i := 0; i < 63; i++ {
		tr.observe(5 * time.Millisecond)
	}
	if d := tr.hedgeAfter(); d != 0 {
		t.Fatalf("hedgeAfter = %v at 63 observations, want 0 (gate is 64)", d)
	}
	tr.observe(5 * time.Millisecond)
	d := tr.hedgeAfter()
	if d < time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("hedgeAfter = %v after 64x5ms, want near 5ms histogram bucket", d)
	}
	// Disabled tracker (percentile 0) never hedges.
	off := newHedgeTracker(0, time.Millisecond)
	for i := 0; i < 128; i++ {
		off.observe(5 * time.Millisecond)
	}
	if d := off.hedgeAfter(); d != 0 {
		t.Fatalf("disabled tracker hedgeAfter = %v, want 0", d)
	}
}

// TestHedgedRequestRescuesStalledBackend is the hedging path end to end: two
// backends, tracker warmed, one stalled — requests that pick the stalled
// backend as primary must be rescued by a hedge at ~the learned delay rather
// than waiting for a per-try timeout, and the stalled backend must still
// accumulate breaker failures (the cancelled-primary accounting).
func TestHedgedRequestRescuesStalledBackend(t *testing.T) {
	srv, stubs := chaosServer(t, 2, func(c *Config) {
		c.RequestTimeout = 5 * time.Second
		c.PerTryTimeout = 2 * time.Second // hedging, not the per-try bound, must do the rescuing
	})
	defer srv.ShutdownTimeout()

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 80; i++ {
		resp, err := client.Get(srv.URL() + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if d := srv.Handler().hedge.hedgeAfter(); d == 0 {
		t.Fatal("hedge tracker still gated after 80 successes")
	}

	stubs[0].SetStalled(true)
	defer stubs[0].SetStalled(false)
	var slow int
	var ejectionsSeen bool
	for i := 0; i < 60; i++ {
		start := time.Now()
		resp, err := client.Get(srv.URL() + "/")
		if err != nil {
			t.Fatal(err)
		}
		took := time.Since(start)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d under single-backend stall", i, resp.StatusCode)
		}
		if took > time.Second {
			slow++
		}
		if int64(srv.backends[0].ejections.Value()) > 0 {
			ejectionsSeen = true
		}
	}
	if slow > 2 {
		t.Errorf("%d/60 requests waited >1s despite hedging", slow)
	}
	if !ejectionsSeen {
		t.Error("stalled backend never tripped its breaker — cancelled-primary failures not recorded")
	}
}
