package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"l3/internal/chaos"
)

var _ chaos.WallBackend = (*ChaosStub)(nil)

func newTestChaosStub(t *testing.T) *ChaosStub {
	t.Helper()
	s, err := NewChaosStub("api-a", 0)
	if err != nil {
		t.Fatalf("NewChaosStub: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestChaosStubHealthy(t *testing.T) {
	s := newTestChaosStub(t)
	resp, err := http.Get(s.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok from api-a") {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
}

func TestChaosStubReset(t *testing.T) {
	s := newTestChaosStub(t)
	s.SetResetting(true)
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := client.Get(s.URL() + "/"); err == nil {
		t.Fatal("resetting stub answered cleanly")
	}
	if s.Resets() == 0 {
		t.Fatal("no RST recorded")
	}
	s.SetResetting(false)
	resp, err := client.Get(s.URL() + "/")
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	resp.Body.Close()
}

func TestChaosStubStallReleasesOnHeal(t *testing.T) {
	s := newTestChaosStub(t)
	s.SetStalled(true)
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(s.URL() + "/")
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled request returned early (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	s.SetStalled(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healed request failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request still stuck after heal")
	}
}

func TestChaosStubErrorRateDeterministic(t *testing.T) {
	s := newTestChaosStub(t)
	s.SetErrorRate(0.8)
	var fails int
	for i := 0; i < 50; i++ {
		resp, err := http.Get(s.URL() + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 500 {
			fails++
		}
	}
	if fails != 40 {
		t.Fatalf("got %d failures of 50 at rate 0.8, want exactly 40", fails)
	}
}

func TestChaosStubSlowLoris(t *testing.T) {
	s := newTestChaosStub(t)
	s.SetSlowLoris(10 * time.Millisecond)
	start := time.Now()
	resp, err := http.Get(s.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ok from api-a") {
		t.Fatalf("dripped body %q", body)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("full body in %v, want >= 100ms of dripping", d)
	}
}

func TestChaosStubExtraLatency(t *testing.T) {
	s := newTestChaosStub(t)
	s.SetExtraLatency(80 * time.Millisecond)
	start := time.Now()
	resp, err := http.Get(s.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("answered in %v despite 80ms extra latency", d)
	}
}
