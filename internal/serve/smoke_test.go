package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"l3/internal/mesh"
	"l3/internal/metrics"
)

func testServer(t *testing.T, mutate func(*Config), stubs ...*StubBackend) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Listen = "127.0.0.1:0"
	cfg.Algo = AlgoRR
	cfg.ScrapeInterval = 500 * time.Millisecond
	cfg.HealthInterval = 200 * time.Millisecond
	cfg.HealthTimeout = 100 * time.Millisecond
	cfg.DrainTimeout = 5 * time.Second
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.BackendConfigOf())
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return srv
}

func mustGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

func TestMetricsEndpointAndDrain(t *testing.T) {
	a, err := NewStubBackend("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewStubBackend("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	srv := testServer(t, nil, a, b)
	for i := 0; i < 50; i++ {
		if code, _ := mustGet(t, srv.URL()+"/"); code != http.StatusOK {
			t.Fatalf("proxy request %d: status %d", i, code)
		}
	}

	// /metrics must parse as Prometheus exposition and carry the mesh
	// schema for both backends.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := metrics.ParseExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	var total float64
	seen := map[string]bool{}
	for _, s := range samples {
		if s.Name == mesh.MetricResponseTotal && s.Labels["classification"] == mesh.ClassSuccess {
			total += s.Value
			seen[s.Labels["backend"]] = true
			if s.Labels["service"] != "api" || s.Labels["src"] != srcLabel {
				t.Fatalf("bad label schema on %v", s.Labels)
			}
		}
	}
	if total != 50 {
		t.Fatalf("response_total success sum = %v, want 50", total)
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("response_total backends = %v, want both a and b", seen)
	}
	if code, _ := mustGet(t, srv.URL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := mustGet(t, srv.URL()+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	dropped, err := srv.ShutdownTimeout()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if dropped != 0 {
		t.Fatalf("drain dropped %d in-flight requests, want 0", dropped)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	a, err := NewStubBackend("a", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	srv := testServer(t, nil, a)

	// One slow request in flight across the drain boundary.
	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the stub's sleep

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dropped, err := srv.Shutdown(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if dropped != 0 {
		t.Fatalf("drain dropped %d, want 0 (the in-flight request had 5s to finish)", dropped)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d, want 200", code)
	}
	// The listener is closed; fresh connections must fail.
	if _, err := http.Get(srv.URL() + "/"); err == nil {
		t.Fatal("post-drain request succeeded, want connection error")
	}
}

func TestFailoverAvoidsUnhealthyBackend(t *testing.T) {
	good, err := NewStubBackend("good", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	bad, err := NewStubBackend("bad", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bad.SetUnhealthy(true)

	srv := testServer(t, func(c *Config) { c.Algo = AlgoFailover }, good, bad)
	defer srv.ShutdownTimeout()

	// Wait for the prober to demote the bad backend (threshold is a few
	// failed probes at 200 ms).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !backendByName(srv, "bad").Healthy() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if backendByName(srv, "bad").Healthy() {
		t.Fatal("checker never demoted the 503-ing backend")
	}

	before := good.Requests()
	for i := 0; i < 100; i++ {
		if code, _ := mustGet(t, srv.URL()+"/"); code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := good.Requests() - before; got != 100 {
		t.Fatalf("healthy backend served %d of 100 requests, want all", got)
	}
}

func backendByName(srv *Server, name string) *Backend {
	for _, b := range srv.backends {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestRetryRecoversTransportError(t *testing.T) {
	live, err := NewStubBackend("live", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	// Reserve a port and close it: connections there fail instantly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	srv := testServer(t, func(c *Config) {
		c.Backends = append(c.Backends, BackendConfig{Name: "dead", URL: deadURL})
	}, live)
	defer srv.ShutdownTimeout()

	for i := 0; i < 100; i++ {
		code, body := mustGet(t, srv.URL()+"/")
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d body %q (transport errors should retry)", i, code, body)
		}
	}
	if srv.Handler().Retries() == 0 {
		t.Fatal("no retries recorded against a dead backend in rotation")
	}
	if !strings.Contains(srv.Handler().String(), "retries=") {
		t.Fatal("handler String() lost its retry counter")
	}
}

// TestServeSmoke is the serve-smoke acceptance run: the full selftest —
// two fast stubs, one slow, one pass per algorithm under open-loop load,
// ~1k requests per pass — asserting the L3 control loop measurably beats
// round-robin on p99, the weight table shifted off the slow backend, every
// drain dropped nothing, and the proxy layer stayed allocation-free.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve smoke needs ~25s of wall clock")
	}
	var out strings.Builder
	report, err := RunSelftest(SelftestOptions{Rate: 120, Duration: 6 * time.Second}, &out)
	if err != nil {
		t.Fatalf("selftest: %v\n%s", err, out.String())
	}
	t.Logf("serve-smoke report:\n%s", out.String())

	rr, l3 := report.result(AlgoRR), report.result(AlgoL3)
	if rr == nil || l3 == nil {
		t.Fatal("report missing an algorithm pass")
	}
	if total := rr.Issued + l3.Issued; total < 1000 {
		t.Errorf("smoke drove %d requests total, want >= 1000", total)
	}
	for _, res := range []*AlgoResult{rr, l3} {
		if res.Issued < 400 {
			t.Errorf("%s pass issued %d requests, want >= 400", res.Algo, res.Issued)
		}
		if res.Errors != 0 {
			t.Errorf("%s pass had %d issue errors", res.Algo, res.Errors)
		}
		if res.SuccessRate < 0.99 {
			t.Errorf("%s pass success rate %v, want >= 0.99", res.Algo, res.SuccessRate)
		}
		if res.Dropped != 0 {
			t.Errorf("%s pass dropped %d in-flight requests on drain, want 0", res.Algo, res.Dropped)
		}
		if res.Scrapes == 0 {
			t.Errorf("%s pass recorded no successful /metrics self-scrapes", res.Algo)
		}
	}
	if l3.P99 >= rr.P99/3 {
		t.Errorf("l3 p99 %v vs rr p99 %v: want at least 3x better", l3.P99, rr.P99)
	}
	slow, fastA, fastB := l3.Weights["slow-c"], l3.Weights["fast-a"], l3.Weights["fast-b"]
	if slow >= fastA/5 || slow >= fastB/5 {
		t.Errorf("l3 weights %v: slow backend not demoted", l3.Weights)
	}
	if !raceEnabled && report.AllocsPerOp != 0 {
		t.Errorf("proxy layer %v allocs/op, want 0", report.AllocsPerOp)
	}
	for _, want := range []string{"p99", "allocs/op"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q", want)
		}
	}
	_ = fmt.Sprintf("%v", report.BenchEntries()) // entries must build from any report
}
