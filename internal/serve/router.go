// Package serve is the wall-clock serving mode: a reverse proxy that runs
// the repository's mesh machinery — weighted TrafficSplit routing, the L3/C3
// controllers, health probing, guard-hardened control loops — against real
// HTTP backends. The simulator validates the algorithms; this package is
// where they meet sockets.
//
// The split of responsibilities mirrors the sim mesh. The data plane
// (Router, Backend, the proxy handler) is lock-free and allocation-free in
// this package's own code: backend selection reads an atomic snapshot
// table, outcome recording is atomic counter/histogram updates, and breaker
// state is a pair of atomics per backend. The control plane (control.go)
// runs single-threaded on a clock.Wall — the same components, the same
// execution model, as the simulated control plane — and publishes new
// weight tables with one atomic pointer store.
package serve

import (
	"math/rand/v2"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"

	"l3/internal/histogram"
	"l3/internal/mesh"
	"l3/internal/metrics"
)

// Backend is one upstream server with its hot-path state: pre-resolved
// metric handles (so recording never touches the registry's lock), health
// and breaker bits, and a dedicated ReverseProxy.
type Backend struct {
	Name string
	URL  *url.URL

	// idx is the backend's position in the server's fleet — the admission
	// layer's per-backend limiter index (0 when no admitter runs).
	idx int

	rp *httputil.ReverseProxy

	// healthy mirrors the health checker's verdict (control plane writes,
	// data plane reads). Backends start healthy, like the checker's states.
	healthy atomic.Bool
	// consecFails and openUntil are the serve-native circuit breaker:
	// BreakerThreshold consecutive proxy-observed failures open the
	// circuit until the wall-clock instant openUntil (nanoseconds on the
	// server's clock). Unlike internal/resilience's single-threaded
	// breaker, this one is written from concurrent request goroutines, so
	// it is a pair of atomics rather than a state machine.
	consecFails atomic.Int32
	openUntil   atomic.Int64

	breakerThreshold int32
	breakerWindow    time.Duration

	// Pre-resolved metric handles, same families and label schema as the
	// sim mesh ({service, backend, src, classification}), so the untouched
	// core.Collector reads serve traffic exactly as it reads sim traffic.
	okTotal     *metrics.Counter
	failTotal   *metrics.Counter
	okLatency   *metrics.Histogram
	failLatency *metrics.Histogram
	inflight    *metrics.Gauge
	ejections   *metrics.Counter
}

// MetricBreakerEjectionsTotal counts serve-side circuit opens per backend.
const MetricBreakerEjectionsTotal = "serve_breaker_ejections_total"

// srcLabel is the constant "src" label of serve-mode data-plane metrics —
// one proxy process is one traffic source, where the sim mesh has one
// source per cluster.
const srcLabel = "l3serve"

func newBackend(cfg BackendConfig, serviceName string, reg *metrics.Registry, breakerThreshold int, breakerWindow time.Duration) (*Backend, error) {
	u, err := url.Parse(cfg.URL)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		Name:             cfg.Name,
		URL:              u,
		breakerThreshold: int32(breakerThreshold),
		breakerWindow:    breakerWindow,
	}
	b.healthy.Store(true)
	base := metrics.Labels{"service": serviceName, "backend": cfg.Name, "src": srcLabel}
	ok := base.With("classification", mesh.ClassSuccess)
	fail := base.With("classification", mesh.ClassFailure)
	b.okTotal = reg.Counter(mesh.MetricResponseTotal, ok)
	b.failTotal = reg.Counter(mesh.MetricResponseTotal, fail)
	b.okLatency = reg.Histogram(mesh.MetricResponseLatency, ok, histogram.LinkerdLatencyBounds)
	b.failLatency = reg.Histogram(mesh.MetricResponseLatency, fail, histogram.LinkerdLatencyBounds)
	b.inflight = reg.Gauge(mesh.MetricInflight, base)
	b.ejections = reg.Counter(MetricBreakerEjectionsTotal, metrics.Labels{"backend": cfg.Name})
	b.rp = httputil.NewSingleHostReverseProxy(u)
	b.rp.ErrorHandler = proxyErrorHandler
	// Stamp which backend served: clients (l3load) bucket latency by this
	// header, making convergence observable from outside the proxy.
	b.rp.ModifyResponse = func(resp *http.Response) error {
		resp.Header.Set(HeaderBackend, cfg.Name)
		return nil
	}
	return b, nil
}

// Available reports whether the data plane may route to the backend now:
// health-checker verdict plus breaker state.
func (b *Backend) Available(now time.Duration) bool {
	return b.healthy.Load() && now >= time.Duration(b.openUntil.Load())
}

// Record books one response outcome: metrics plus breaker accounting.
// Allocation-free and safe from any goroutine.
func (b *Backend) Record(now, latency time.Duration, ok bool) {
	if ok {
		b.okTotal.Inc()
		b.okLatency.Observe(latency.Seconds())
		b.consecFails.Store(0)
		return
	}
	b.failTotal.Inc()
	b.failLatency.Observe(latency.Seconds())
	if b.breakerThreshold <= 0 {
		return
	}
	if f := b.consecFails.Add(1); f >= b.breakerThreshold {
		b.consecFails.Store(0)
		b.openUntil.Store(int64(now + b.breakerWindow))
		b.ejections.Inc()
	}
}

// Healthy reports the health bit (control-plane view; tests).
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// SetHealthy is the control plane's push of the checker's verdict.
func (b *Backend) SetHealthy(v bool) { b.healthy.Store(v) }

// Router picks backends proportionally to an atomically swapped weight
// table — the serve-mode analogue of balancer.WeightedSplit. The sim
// picker reads the SMI store on every pick (Get clones, which allocates);
// the serve hot path instead reads a prebuilt cumulative-weight snapshot
// that the control plane republishes on every split write, keeping Pick at
// zero allocations.
type Router struct {
	table atomic.Pointer[weightTable]
}

type weightTable struct {
	entries []weightEntry
	total   uint64
}

type weightEntry struct {
	b *Backend
	// cum is the cumulative weight at and below this entry; a uniform
	// draw from [0, total) lands in exactly one entry's slice.
	cum uint64
}

// NewRouter returns a router over the backends with uniform weights — the
// state before (or without) a controller, and the rr algorithm's permanent
// state.
func NewRouter(backends []*Backend) *Router {
	r := &Router{}
	uniform := make(map[string]int64, len(backends))
	for _, b := range backends {
		uniform[b.Name] = 1
	}
	r.rebuild(backends, uniform)
	return r
}

// rebuild publishes a new weight table. Backends absent from weights (or
// at weight 0) leave the rotation.
func (r *Router) rebuild(backends []*Backend, weights map[string]int64) {
	t := &weightTable{entries: make([]weightEntry, 0, len(backends))}
	for _, b := range backends {
		w := weights[b.Name]
		if w <= 0 {
			continue
		}
		t.total += uint64(w)
		t.entries = append(t.entries, weightEntry{b: b, cum: t.total})
	}
	r.table.Store(t)
}

// Pick selects a backend proportionally to the current weights, skipping
// unavailable backends (unhealthy or open-circuit). If every backend is
// unavailable it fails open to the pure weighted choice — sending somewhere
// beats sending nowhere, same as health.FailoverPicker. Returns nil only
// for an empty table. Zero allocations.
func (r *Router) Pick(now time.Duration) *Backend {
	t := r.table.Load()
	if t == nil || len(t.entries) == 0 || t.total == 0 {
		return nil
	}
	x := rand.Uint64N(t.total)
	// Find the entry whose cumulative slice contains x. Tables are a
	// handful of backends, so a linear scan beats binary search's branch
	// misses.
	i := 0
	for t.entries[i].cum <= x {
		i++
	}
	if b := t.entries[i].b; b.Available(now) {
		return b
	}
	// Weighted choice is unavailable: take the next available entry in
	// ring order, preserving rough weight proportions among survivors.
	for j := 1; j < len(t.entries); j++ {
		if b := t.entries[(i+j)%len(t.entries)].b; b.Available(now) {
			return b
		}
	}
	return t.entries[i].b
}

// PickAvoiding is Pick for retries: it prefers any available backend other
// than avoid, falling back to Pick's own fail-open result when avoid is the
// only choice.
func (r *Router) PickAvoiding(now time.Duration, avoid *Backend) *Backend {
	t := r.table.Load()
	if t == nil || len(t.entries) == 0 {
		return nil
	}
	b := r.Pick(now)
	if b != avoid {
		return b
	}
	for j := 0; j < len(t.entries); j++ {
		if c := t.entries[j].b; c != avoid && c.Available(now) {
			return c
		}
	}
	return b
}

// Weights returns the published table as name → weight (control-plane
// introspection and tests; allocates, not for the hot path).
func (r *Router) Weights() map[string]uint64 {
	t := r.table.Load()
	out := make(map[string]uint64)
	if t == nil {
		return out
	}
	prev := uint64(0)
	for _, e := range t.entries {
		out[e.b.Name] = e.cum - prev
		prev = e.cum
	}
	return out
}
