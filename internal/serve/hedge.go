package serve

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"l3/internal/histogram"
)

// Headers of the serve-mode request protocol.
const (
	// HeaderDeadline carries the remaining latency budget in integer
	// milliseconds. The proxy honors it inbound (capping its own
	// RequestTimeout) and restamps the remainder outbound, so budgets
	// shrink hop by hop instead of resetting.
	HeaderDeadline = "X-L3-Deadline"
	// HeaderBackend names the backend that served the response, stamped by
	// the proxy so clients (l3load) can bucket latency per backend.
	HeaderBackend = "X-L3-Backend"
)

// hedgeTracker learns the hedge delay from the proxy's own successful
// latencies, the wall-clock counterpart of internal/resilience's per-service
// policy state: bucket counts over the same Linkerd bounds, the configured
// quantile recomputed every 64 observations, floored at MinDelay. Where
// resilience's svcState lives on the single sim thread, this one is hit by
// every request goroutine, so counts are atomics and the recompute is an
// optimistic single-flight over a preallocated buffer — observe and
// hedgeAfter stay allocation-free on the hot path.
type hedgeTracker struct {
	pct        float64
	minDelayNs int64

	buckets  []atomic.Int64
	observed atomic.Int64
	delayNs  atomic.Int64

	recomputing atomic.Bool
	countsBuf   []float64
}

// newHedgeTracker returns a tracker, or nil when pct disables hedging.
func newHedgeTracker(pct float64, minDelay time.Duration) *hedgeTracker {
	if pct <= 0 {
		return nil
	}
	n := len(histogram.LinkerdLatencyBounds) + 1
	return &hedgeTracker{
		pct:        pct,
		minDelayNs: int64(minDelay),
		buckets:    make([]atomic.Int64, n),
		countsBuf:  make([]float64, n),
	}
}

// observe books one successful latency. Allocation-free; every 64th call
// recomputes the cached delay (single-flight — a concurrent loser just skips,
// the next multiple catches up).
func (h *hedgeTracker) observe(latency time.Duration) {
	if h == nil {
		return
	}
	i := histogram.BucketFor(histogram.LinkerdLatencyBounds, latency.Seconds())
	h.buckets[i].Add(1)
	if h.observed.Add(1)&63 == 0 {
		h.recompute()
	}
}

func (h *hedgeTracker) recompute() {
	if !h.recomputing.CompareAndSwap(false, true) {
		return
	}
	for i := range h.buckets {
		h.countsBuf[i] = float64(h.buckets[i].Load())
	}
	d := int64(histogram.DurationQuantile(h.pct, histogram.LinkerdLatencyBounds, h.countsBuf))
	if d < h.minDelayNs {
		d = h.minDelayNs
	}
	h.delayNs.Store(d)
	h.recomputing.Store(false)
}

// hedgeAfter returns the learned hedge delay, or 0 while fewer than 64
// successes have been observed (no hedging before there is a distribution to
// hedge against). Allocation-free.
func (h *hedgeTracker) hedgeAfter() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.delayNs.Load())
}

// hedgeEligible reports whether a request may be hedged: idempotent bodyless
// methods only, since a hedge replays the request verbatim to a second
// backend.
func hedgeEligible(req *http.Request) bool {
	if req.Body != nil && req.Body != http.NoBody {
		return false
	}
	return req.Method == http.MethodGet || req.Method == http.MethodHead
}

// deadlineBudget resolves a request's latency budget: the client's
// X-L3-Deadline remainder if present, capped by the proxy's own default;
// zero means unbounded. Allocation-free (header lookup by canonical key,
// integer parse).
func deadlineBudget(req *http.Request, def time.Duration) time.Duration {
	budget := def
	if v := req.Header.Get(HeaderDeadline); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; budget <= 0 || d < budget {
				budget = d
			}
		}
	}
	return budget
}
