package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"l3/internal/c3"
	"l3/internal/clock"
	"l3/internal/cluster"
	"l3/internal/core"
	"l3/internal/guard"
	"l3/internal/health"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/smi"
	"l3/internal/timeseries"
)

// control is the serve-mode control plane: the same component graph the
// simulated benches wire — scraper → TSDB (guard-gated) → collector →
// assigner → controller → SMI store → data plane — running single-threaded
// on a clock.Wall instead of a sim.Engine.
//
// Two deliberate differences from the in-process sim wiring:
//
//   - The scrape is a real HTTP GET of the server's own /metrics endpoint,
//     parsed from exposition text (metrics.ParseExposition). The controller
//     steers from what a real Prometheus would see — serialization quirks
//     included — not from registry pointers.
//   - Split updates additionally publish a new Router weight table, the
//     atomic handoff from the single-threaded control world to the
//     concurrent data plane.
type control struct {
	cfg      Config
	wall     *clock.Wall
	router   *Router
	backends []*Backend

	splits     *smi.Store
	db         *timeseries.DB
	collector  *core.Collector
	controller *core.Controller
	checker    *health.Checker
	watchdog   *guard.Watchdog
	gate       *guard.WriteGate

	client     *http.Client
	metricsURL string

	scrapes        atomic.Int64
	scrapeFailures atomic.Int64
	// scrapeBusy single-flights the async scrape: a fetch slower than the
	// interval skips rounds instead of piling up goroutines.
	scrapeBusy  atomic.Bool
	scrapeTimer clock.Timer
	pushTimer   clock.Timer
	staleTimer  clock.Timer

	// lastOKScrape (wall nanoseconds) drives fail-static: when the control
	// plane has not ingested a successful scrape for StaleAfter, the data
	// plane stops trusting new split writes and decays the routing table
	// toward uniform. The scrape goroutine writes, the stale check reads.
	lastOKScrape    atomic.Int64
	failStatic      atomic.Bool
	engagements     atomic.Int64
	failStaticGauge *metrics.Gauge

	// dropping and the garbage fields implement chaos.ScrapeGate and
	// chaos.ScrapeCorrupter for the wall-clock chaos harness.
	dropping       atomic.Bool
	garbageMu      sync.Mutex
	garbageBackend string
	garbageMode    string
	garbageOn      bool

	cancelWatch func()
}

// newControl wires the control plane over an already-listening server.
// metricsURL is the server's own /metrics endpoint. Nothing runs until
// start.
func newControl(cfg Config, wall *clock.Wall, router *Router, backends []*Backend, ctrlReg *metrics.Registry, metricsURL string) *control {
	c := &control{
		cfg:      cfg,
		wall:     wall,
		router:   router,
		backends: backends,
		splits:   smi.NewStore(),
		db:       timeseries.NewDB(2 * cfg.Window),
		// The client timeout backstops the per-scrape context: both are
		// capped well under the interval so a stalled /metrics endpoint
		// can never push the next control round late.
		client:     &http.Client{Timeout: cfg.ScrapeTimeout},
		metricsURL: metricsURL,
	}
	c.failStaticGauge = ctrlReg.Gauge("serve_failstatic_active", metrics.Labels{"service": cfg.Service})

	var hyg *guard.Hygiene
	if cfg.Guard {
		hyg = guard.NewHygiene(guard.Config{}, ctrlReg)
		c.db.SetGate(hyg)
		c.gate = guard.NewWriteGate(guard.Config{}, ctrlReg)
	}

	// The TrafficSplit under management: one split, the configured
	// service, uniform initial weights — the state a fresh deployment
	// declares before any controller has observed traffic.
	ts := &smi.TrafficSplit{Name: cfg.Service, RootService: cfg.Service}
	for _, b := range backends {
		ts.Backends = append(ts.Backends, smi.Backend{Service: b.Name, Weight: 1})
	}
	if err := c.splits.Create(ts); err != nil {
		panic(fmt.Sprintf("serve: creating own split: %v", err))
	}

	c.collector = &core.Collector{DB: c.db, Window: cfg.Window, Percentile: cfg.Percentile}
	if hyg != nil {
		c.collector.Resets = hyg
	}

	if cfg.Algo == AlgoL3 || cfg.Algo == AlgoC3 {
		// The paper's filter half-lives (5 s latency/in-flight, 10 s
		// success/RPS) assume its 5 s reconcile interval. Serve configs may
		// reconcile faster (the selftest runs at 500 ms); scaling the
		// half-lives with the interval keeps the paper's convergence
		// behaviour — N rounds to settle — instead of its absolute seconds.
		wcfg := core.WeightingConfig{
			LatencyHalfLife:  cfg.ReconcileInterval,
			InflightHalfLife: cfg.ReconcileInterval,
			SuccessHalfLife:  2 * cfg.ReconcileInterval,
			RPSHalfLife:      2 * cfg.ReconcileInterval,
		}
		rcfg := core.RateControlConfig{RPSHalfLife: 2 * cfg.ReconcileInterval}
		newAssigner := func() core.Assigner {
			var a core.Assigner
			if cfg.Algo == AlgoC3 {
				a = c3.New(c3.Config{})
			} else {
				a = core.NewL3Assigner(wcfg, rcfg, true)
			}
			if cfg.Guard {
				a = guard.NewAssigner(a, guard.Config{}, ctrlReg)
			}
			return a
		}
		ctrlCfg := core.ControllerConfig{
			Interval:     cfg.ReconcileInterval,
			NewAssigner:  newAssigner,
			SelfRegistry: ctrlReg,
		}
		if c.gate != nil {
			ctrlCfg.WriteGuard = c.gate
		}
		c.controller = core.NewControllerClock(wall, c.splits, c.collector, ctrlCfg)
		if c.gate != nil {
			c.watchdog = guard.NewWatchdogClock(wall, c.splits, guard.Config{}, ctrlReg, nil, c.gate)
		}
	}

	if cfg.Algo != AlgoRR {
		hcfg := health.Config{
			Interval: cfg.HealthInterval,
			Timeout:  cfg.HealthTimeout,
			Registry: ctrlReg,
			Probe:    c.httpProber(),
		}
		c.checker = health.NewCheckerClock(wall, hcfg)
	}

	return c
}

// start arms every loop. Must be called before traffic; it touches
// single-threaded state from the caller's goroutine, so the wall clock must
// not be delivering callbacks yet (Server.Start guarantees the ordering).
func (c *control) start(router *Router) {
	// Rebuild the router on every split write (the watch fires
	// synchronously inside store mutations, which happen only on the wall
	// clock's single thread), and via replay once now for the initial
	// uniform table. The data plane sees each rebuild as one atomic
	// pointer swap.
	c.cancelWatch = c.splits.Watch(true, func(e cluster.Event[*smi.TrafficSplit]) {
		ts := e.Object
		if ts.Name != c.cfg.Service || e.Type == cluster.Deleted {
			return
		}
		// While fail-static, split writes come from a controller steering on
		// stale data; the frozen (decaying) table outranks them.
		if c.failStatic.Load() {
			return
		}
		weights := make(map[string]int64, len(ts.Backends))
		for _, b := range ts.Backends {
			weights[b.Service] = b.Weight
		}
		router.rebuild(c.backends, weights)
	})

	c.lastOKScrape.Store(int64(c.wall.Now()))
	c.scrapeTimer = c.wall.Every(c.cfg.ScrapeInterval, c.scrape)
	if c.cfg.StaleAfter > 0 {
		c.staleTimer = c.wall.Every(c.cfg.ReconcileInterval, c.staleCheck)
	}
	if c.checker != nil {
		for _, b := range c.backends {
			// The checker keys on Name; the shell backend never serves.
			c.checker.Watch(&mesh.Backend{Name: b.Name})
		}
		// Push the checker's verdicts into the data plane's atomic bits.
		interval := c.cfg.HealthInterval / 2
		if interval < 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		c.pushTimer = c.wall.Every(interval, func() {
			for _, b := range c.backends {
				b.SetHealthy(c.checker.Healthy(b.Name))
			}
		})
	}
	if c.controller != nil {
		c.controller.Start()
	}
	if c.watchdog != nil {
		c.watchdog.Start()
	}
}

// stop halts every loop (the wall clock itself is stopped by the server).
func (c *control) stop() {
	if c.cancelWatch != nil {
		c.cancelWatch()
	}
	if c.scrapeTimer != nil {
		c.scrapeTimer.Cancel()
	}
	if c.staleTimer != nil {
		c.staleTimer.Cancel()
	}
	if c.pushTimer != nil {
		c.pushTimer.Cancel()
	}
	if c.controller != nil {
		c.controller.Stop()
	}
	if c.watchdog != nil {
		c.watchdog.Stop()
	}
	if c.checker != nil {
		c.checker.Stop()
	}
}

// scrape is the control plane's Prometheus stand-in: GET the server's own
// /metrics over HTTP, parse the exposition text, ingest into the TSDB. The
// timer callback only launches the fetch; the GET and parse run on their own
// goroutine (a wall callback must never block on a socket — the lesson of a
// /metrics stall taking the whole control loop down with it), bounded by
// ScrapeTimeout, and the parsed samples re-enter the single-threaded world
// via wall.Do, the same shape as httpProber.
func (c *control) scrape() {
	if c.dropping.Load() {
		// The chaos scrapedrop fault: the scheduled scrape never happens,
		// exactly as a partitioned Prometheus would miss its round.
		c.scrapeFailures.Add(1)
		return
	}
	if !c.scrapeBusy.CompareAndSwap(false, true) {
		c.scrapeFailures.Add(1)
		return
	}
	now := c.wall.Now()
	go func() {
		defer c.scrapeBusy.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ScrapeTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.metricsURL, nil)
		if err != nil {
			c.scrapeFailures.Add(1)
			return
		}
		resp, err := c.client.Do(req)
		if err != nil {
			c.scrapeFailures.Add(1)
			return
		}
		samples, err := metrics.ParseExposition(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			c.scrapeFailures.Add(1)
			return
		}
		c.corrupt(samples)
		c.wall.Do(func() {
			for _, s := range samples {
				c.db.AppendSample(s.Name, s.Labels, s.Kind, now, s.Value)
			}
			c.scrapes.Add(1)
			c.lastOKScrape.Store(int64(c.wall.Now()))
			if c.failStatic.CompareAndSwap(true, false) {
				// Control data is flowing again: lift fail-static and let
				// the controller's next reconcile republish real weights.
				c.failStaticGauge.Set(0)
			}
		})
	}()
}

// staleCheck runs every reconcile tick: when the last good scrape is older
// than StaleAfter, engage fail-static (freeze the table against
// stale-control writes) and decay the frozen weights toward uniform — the
// graceful-degradation half of the guard story, covering the failure the
// in-loop watchdog cannot see: a controller that keeps writing splits
// computed from data that stopped arriving.
func (c *control) staleCheck() {
	last := time.Duration(c.lastOKScrape.Load())
	if c.wall.Now()-last <= c.cfg.StaleAfter {
		return
	}
	if c.failStatic.CompareAndSwap(false, true) {
		c.engagements.Add(1)
		c.failStaticGauge.Set(1)
	}
	c.decayWeights()
}

// decayWeights pulls the published table toward uniform by DecayFactor:
// weight' = u + f·(weight − u) over every configured backend, so backends
// the stale controller had ejected also return as the signal is forgotten.
func (c *control) decayWeights() {
	if len(c.backends) == 0 {
		return
	}
	w := c.router.Weights()
	var total float64
	for _, b := range c.backends {
		total += float64(w[b.Name])
	}
	if total <= 0 {
		return
	}
	u := total / float64(len(c.backends))
	nw := make(map[string]int64, len(c.backends))
	changed := false
	for _, b := range c.backends {
		cur := float64(w[b.Name])
		decayed := int64(u + c.cfg.DecayFactor*(cur-u) + 0.5)
		if decayed < 1 {
			decayed = 1
		}
		nw[b.Name] = decayed
		if decayed != int64(cur) {
			changed = true
		}
	}
	if changed {
		c.router.rebuild(c.backends, nw)
	}
}

// corrupt applies the chaos garbage fault to scraped samples in place, the
// wall-mode analogue of the sim Scraper's corruption (same modes: "nan",
// "negative", "mixed" — guard's ingestion hygiene is what should catch it).
func (c *control) corrupt(samples []metrics.Sample) {
	c.garbageMu.Lock()
	on, backend, mode := c.garbageOn, c.garbageBackend, c.garbageMode
	c.garbageMu.Unlock()
	if !on {
		return
	}
	for i := range samples {
		if backend != "" && samples[i].Labels["backend"] != backend {
			continue
		}
		switch mode {
		case "nan":
			samples[i].Value = math.NaN()
		case "negative":
			samples[i].Value = -samples[i].Value - 1
		default: // mixed
			if i%2 == 0 {
				samples[i].Value = math.NaN()
			} else {
				samples[i].Value = -samples[i].Value - 1
			}
		}
	}
}

// SetDropping implements chaos.ScrapeGate: while on, scheduled self-scrapes
// are skipped, starving the control plane exactly as a dead Prometheus
// would.
func (c *control) SetDropping(on bool) { c.dropping.Store(on) }

// SetGarbage implements chaos.ScrapeCorrupter: corrupt scraped values for
// one backend's series ("" = all) while on.
func (c *control) SetGarbage(backend, mode string, on bool) {
	c.garbageMu.Lock()
	c.garbageOn, c.garbageBackend, c.garbageMode = on, backend, mode
	c.garbageMu.Unlock()
}

// FailStaticActive reports whether the data plane is in fail-static
// degraded mode (safe from any goroutine).
func (c *control) FailStaticActive() bool { return c.failStatic.Load() }

// FailStaticEngagements counts distinct fail-static engagements.
func (c *control) FailStaticEngagements() int64 { return c.engagements.Load() }

// httpProber probes a backend's health endpoint over real HTTP. The fetch
// runs on its own goroutine (a wall callback must not block on a remote
// server); the verdict re-enters the single-threaded world via wall.Do.
func (c *control) httpProber() health.Prober {
	client := &http.Client{Timeout: c.cfg.HealthTimeout}
	byName := make(map[string]*Backend, len(c.backends))
	for _, b := range c.backends {
		byName[b.Name] = b
	}
	return func(mb *mesh.Backend, done func(success bool)) {
		b := byName[mb.Name]
		if b == nil {
			done(false)
			return
		}
		probeURL := b.URL.JoinPath(c.cfg.HealthPath).String()
		go func() {
			ok := false
			if resp, err := client.Get(probeURL); err == nil {
				ok = resp.StatusCode >= 200 && resp.StatusCode < 400
				resp.Body.Close()
			}
			c.wall.Do(func() { done(ok) })
		}()
	}
}

// Scrapes and ScrapeFailures expose scrape-loop counters for smoke tests.
func (c *control) Scrapes() int64        { return c.scrapes.Load() }
func (c *control) ScrapeFailures() int64 { return c.scrapeFailures.Load() }
