package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"l3/internal/c3"
	"l3/internal/clock"
	"l3/internal/cluster"
	"l3/internal/core"
	"l3/internal/guard"
	"l3/internal/health"
	"l3/internal/mesh"
	"l3/internal/metrics"
	"l3/internal/smi"
	"l3/internal/timeseries"
)

// control is the serve-mode control plane: the same component graph the
// simulated benches wire — scraper → TSDB (guard-gated) → collector →
// assigner → controller → SMI store → data plane — running single-threaded
// on a clock.Wall instead of a sim.Engine.
//
// Two deliberate differences from the in-process sim wiring:
//
//   - The scrape is a real HTTP GET of the server's own /metrics endpoint,
//     parsed from exposition text (metrics.ParseExposition). The controller
//     steers from what a real Prometheus would see — serialization quirks
//     included — not from registry pointers.
//   - Split updates additionally publish a new Router weight table, the
//     atomic handoff from the single-threaded control world to the
//     concurrent data plane.
type control struct {
	cfg      Config
	wall     *clock.Wall
	backends []*Backend

	splits     *smi.Store
	db         *timeseries.DB
	collector  *core.Collector
	controller *core.Controller
	checker    *health.Checker
	watchdog   *guard.Watchdog
	gate       *guard.WriteGate

	client     *http.Client
	metricsURL string

	scrapes        atomic.Int64
	scrapeFailures atomic.Int64
	scrapeTimer    clock.Timer
	pushTimer      clock.Timer

	cancelWatch func()
}

// newControl wires the control plane over an already-listening server.
// metricsURL is the server's own /metrics endpoint. Nothing runs until
// start.
func newControl(cfg Config, wall *clock.Wall, router *Router, backends []*Backend, ctrlReg *metrics.Registry, metricsURL string) *control {
	c := &control{
		cfg:        cfg,
		wall:       wall,
		backends:   backends,
		splits:     smi.NewStore(),
		db:         timeseries.NewDB(2 * cfg.Window),
		client:     &http.Client{Timeout: cfg.ScrapeInterval},
		metricsURL: metricsURL,
	}

	var hyg *guard.Hygiene
	if cfg.Guard {
		hyg = guard.NewHygiene(guard.Config{}, ctrlReg)
		c.db.SetGate(hyg)
		c.gate = guard.NewWriteGate(guard.Config{}, ctrlReg)
	}

	// The TrafficSplit under management: one split, the configured
	// service, uniform initial weights — the state a fresh deployment
	// declares before any controller has observed traffic.
	ts := &smi.TrafficSplit{Name: cfg.Service, RootService: cfg.Service}
	for _, b := range backends {
		ts.Backends = append(ts.Backends, smi.Backend{Service: b.Name, Weight: 1})
	}
	if err := c.splits.Create(ts); err != nil {
		panic(fmt.Sprintf("serve: creating own split: %v", err))
	}

	c.collector = &core.Collector{DB: c.db, Window: cfg.Window, Percentile: cfg.Percentile}
	if hyg != nil {
		c.collector.Resets = hyg
	}

	if cfg.Algo == AlgoL3 || cfg.Algo == AlgoC3 {
		// The paper's filter half-lives (5 s latency/in-flight, 10 s
		// success/RPS) assume its 5 s reconcile interval. Serve configs may
		// reconcile faster (the selftest runs at 500 ms); scaling the
		// half-lives with the interval keeps the paper's convergence
		// behaviour — N rounds to settle — instead of its absolute seconds.
		wcfg := core.WeightingConfig{
			LatencyHalfLife:  cfg.ReconcileInterval,
			InflightHalfLife: cfg.ReconcileInterval,
			SuccessHalfLife:  2 * cfg.ReconcileInterval,
			RPSHalfLife:      2 * cfg.ReconcileInterval,
		}
		rcfg := core.RateControlConfig{RPSHalfLife: 2 * cfg.ReconcileInterval}
		newAssigner := func() core.Assigner {
			var a core.Assigner
			if cfg.Algo == AlgoC3 {
				a = c3.New(c3.Config{})
			} else {
				a = core.NewL3Assigner(wcfg, rcfg, true)
			}
			if cfg.Guard {
				a = guard.NewAssigner(a, guard.Config{}, ctrlReg)
			}
			return a
		}
		ctrlCfg := core.ControllerConfig{
			Interval:     cfg.ReconcileInterval,
			NewAssigner:  newAssigner,
			SelfRegistry: ctrlReg,
		}
		if c.gate != nil {
			ctrlCfg.WriteGuard = c.gate
		}
		c.controller = core.NewControllerClock(wall, c.splits, c.collector, ctrlCfg)
		if c.gate != nil {
			c.watchdog = guard.NewWatchdogClock(wall, c.splits, guard.Config{}, ctrlReg, nil, c.gate)
		}
	}

	if cfg.Algo != AlgoRR {
		hcfg := health.Config{
			Interval: cfg.HealthInterval,
			Timeout:  cfg.HealthTimeout,
			Registry: ctrlReg,
			Probe:    c.httpProber(),
		}
		c.checker = health.NewCheckerClock(wall, hcfg)
	}

	return c
}

// start arms every loop. Must be called before traffic; it touches
// single-threaded state from the caller's goroutine, so the wall clock must
// not be delivering callbacks yet (Server.Start guarantees the ordering).
func (c *control) start(router *Router) {
	// Rebuild the router on every split write (the watch fires
	// synchronously inside store mutations, which happen only on the wall
	// clock's single thread), and via replay once now for the initial
	// uniform table. The data plane sees each rebuild as one atomic
	// pointer swap.
	c.cancelWatch = c.splits.Watch(true, func(e cluster.Event[*smi.TrafficSplit]) {
		ts := e.Object
		if ts.Name != c.cfg.Service || e.Type == cluster.Deleted {
			return
		}
		weights := make(map[string]int64, len(ts.Backends))
		for _, b := range ts.Backends {
			weights[b.Service] = b.Weight
		}
		router.rebuild(c.backends, weights)
	})

	c.scrapeTimer = c.wall.Every(c.cfg.ScrapeInterval, c.scrape)
	if c.checker != nil {
		for _, b := range c.backends {
			// The checker keys on Name; the shell backend never serves.
			c.checker.Watch(&mesh.Backend{Name: b.Name})
		}
		// Push the checker's verdicts into the data plane's atomic bits.
		interval := c.cfg.HealthInterval / 2
		if interval < 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		c.pushTimer = c.wall.Every(interval, func() {
			for _, b := range c.backends {
				b.SetHealthy(c.checker.Healthy(b.Name))
			}
		})
	}
	if c.controller != nil {
		c.controller.Start()
	}
	if c.watchdog != nil {
		c.watchdog.Start()
	}
}

// stop halts every loop (the wall clock itself is stopped by the server).
func (c *control) stop() {
	if c.cancelWatch != nil {
		c.cancelWatch()
	}
	if c.scrapeTimer != nil {
		c.scrapeTimer.Cancel()
	}
	if c.pushTimer != nil {
		c.pushTimer.Cancel()
	}
	if c.controller != nil {
		c.controller.Stop()
	}
	if c.watchdog != nil {
		c.watchdog.Stop()
	}
	if c.checker != nil {
		c.checker.Stop()
	}
}

// scrape is the control plane's Prometheus stand-in: GET the server's own
// /metrics over HTTP, parse the exposition text, ingest into the TSDB. It
// runs as a wall callback; the GET targets the local listener, so the
// blocking fetch holds the control plane for microseconds (bounded by the
// client timeout either way — a stall shorter than the watchdog TTL).
func (c *control) scrape() {
	now := c.wall.Now()
	resp, err := c.client.Get(c.metricsURL)
	if err != nil {
		c.scrapeFailures.Add(1)
		return
	}
	samples, err := metrics.ParseExposition(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		c.scrapeFailures.Add(1)
		return
	}
	for _, s := range samples {
		c.db.AppendSample(s.Name, s.Labels, s.Kind, now, s.Value)
	}
	c.scrapes.Add(1)
}

// httpProber probes a backend's health endpoint over real HTTP. The fetch
// runs on its own goroutine (a wall callback must not block on a remote
// server); the verdict re-enters the single-threaded world via wall.Do.
func (c *control) httpProber() health.Prober {
	client := &http.Client{Timeout: c.cfg.HealthTimeout}
	byName := make(map[string]*Backend, len(c.backends))
	for _, b := range c.backends {
		byName[b.Name] = b
	}
	return func(mb *mesh.Backend, done func(success bool)) {
		b := byName[mb.Name]
		if b == nil {
			done(false)
			return
		}
		probeURL := b.URL.JoinPath(c.cfg.HealthPath).String()
		go func() {
			ok := false
			if resp, err := client.Get(probeURL); err == nil {
				ok = resp.StatusCode >= 200 && resp.StatusCode < 400
				resp.Body.Close()
			}
			c.wall.Do(func() { done(ok) })
		}()
	}
}

// Scrapes and ScrapeFailures expose scrape-loop counters for smoke tests.
func (c *control) Scrapes() int64        { return c.scrapes.Load() }
func (c *control) ScrapeFailures() int64 { return c.scrapeFailures.Load() }
