package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"l3/internal/clock"
	"l3/internal/loadgen"
	"l3/internal/metrics"
)

// Selftest is the serve-mode benchmark harness: spin up skewed stub
// backends (two fast, one slow), run the proxy once per algorithm under the
// open-loop wall-clock load generator, and report achieved RPS, latency
// percentiles, the converged weight table, and the proxy layer's allocs/op.
// It is the wall-clock analogue of the simulator's figure benches — same
// skew shape, same open-loop discipline, real sockets — and the producer of
// BENCH_serve.json.

// SelftestOptions parameterise one selftest run.
type SelftestOptions struct {
	Rate        float64       // offered load per algorithm pass (default 250 rps)
	Duration    time.Duration // measured length of each pass (default 8s)
	WarmUp      time.Duration // discarded head of each pass (default 3s)
	FastLatency time.Duration // latency of the two fast stubs (default 5ms)
	SlowLatency time.Duration // latency of the slow stub (default 60ms)
	Algos       []string      // passes to run (default rr, l3)
}

func (o SelftestOptions) withDefaults() SelftestOptions {
	if o.Rate <= 0 {
		o.Rate = 250
	}
	if o.Duration <= 0 {
		o.Duration = 6 * time.Second
	}
	if o.WarmUp <= 0 {
		// WarmUp caps the convergence wait: a controller pass starts its
		// measured window as soon as the weight table has actually shifted
		// off the slow backend (or this deadline passes), so the selftest
		// is robust to -race and one-core slowdowns instead of guessing a
		// fixed settle time.
		o.WarmUp = 12 * time.Second
	}
	if o.FastLatency <= 0 {
		o.FastLatency = 5 * time.Millisecond
	}
	if o.SlowLatency <= 0 {
		// Deep skew on purpose: L3's converged share for the slow backend
		// is roughly fast/slow of a fast backend's share (amplified by the
		// squared in-flight term), and the p99 comparison against
		// round-robin only reads statistically clean when that share sinks
		// well below 1% of traffic. 5 ms vs 1 s converges to ~0.3%, so a
		// measured window of a few hundred samples holds a couple of slow
		// responses against a p99 rank margin of several.
		o.SlowLatency = time.Second
	}
	if len(o.Algos) == 0 {
		o.Algos = []string{AlgoRR, AlgoL3}
	}
	return o
}

// AlgoResult is one algorithm's pass.
type AlgoResult struct {
	Algo        string            `json:"algo"`
	Issued      uint64            `json:"issued"`
	Errors      uint64            `json:"errors"`
	Converged   time.Duration     `json:"converged_after_ns"`
	AchievedRPS float64           `json:"achieved_rps"`
	P50         time.Duration     `json:"p50_ns"`
	P99         time.Duration     `json:"p99_ns"`
	P999        time.Duration     `json:"p999_ns"`
	SuccessRate float64           `json:"success_rate"`
	Weights     map[string]uint64 `json:"weights"`
	Scrapes     int64             `json:"scrapes"`
	Retries     int64             `json:"retries"`
	Dropped     int64             `json:"dropped"`
}

// SelftestReport is the full selftest outcome.
type SelftestReport struct {
	Results     []AlgoResult `json:"results"`
	AllocsPerOp float64      `json:"proxy_layer_allocs_per_op"`
	Cores       int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
}

// RunSelftest runs the passes and streams a human-readable report to out.
func RunSelftest(opts SelftestOptions, out io.Writer) (*SelftestReport, error) {
	opts = opts.withDefaults()
	report := &SelftestReport{Cores: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	stubs, err := startSkewedStubs(opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, s := range stubs {
			s.Close()
		}
	}()
	fmt.Fprintf(out, "selftest: %d stub backends (fast=%v slow=%v), %v rps for %v per algorithm (warm-up %v), GOMAXPROCS=%d\n",
		len(stubs), opts.FastLatency, opts.SlowLatency, opts.Rate, opts.Duration, opts.WarmUp, report.Cores)

	for _, algo := range opts.Algos {
		res, err := runAlgoPass(algo, opts, stubs)
		if err != nil {
			return nil, fmt.Errorf("selftest %s pass: %w", algo, err)
		}
		report.Results = append(report.Results, *res)
		fmt.Fprintf(out, "  %-8s rps=%.1f p50=%v p99=%v p999=%v ok=%.4f converged=%v weights=%v scrapes=%d retries=%d dropped=%d\n",
			algo, res.AchievedRPS, res.P50, res.P99, res.P999, res.SuccessRate, res.Converged, res.Weights, res.Scrapes, res.Retries, res.Dropped)
	}

	report.AllocsPerOp = MeasureProxyLayerAllocs()
	if raceEnabled {
		fmt.Fprintf(out, "  proxy-layer hot path: %.2f allocs/op — race detector build; sync.Pool drops Puts under -race, so 0 is only measurable without it\n", report.AllocsPerOp)
	} else {
		fmt.Fprintf(out, "  proxy-layer hot path: %.2f allocs/op (pick + record + budget + status-writer pool)\n", report.AllocsPerOp)
	}

	if rr, l3 := report.result(AlgoRR), report.result(AlgoL3); rr != nil && l3 != nil {
		fmt.Fprintf(out, "  p99 %s=%v vs %s=%v (%.1fx)\n", AlgoRR, rr.P99, AlgoL3, l3.P99, float64(rr.P99)/float64(l3.P99))
	}
	return report, nil
}

// slowShare returns the slow stub's fraction of the published weight table.
func slowShare(weights map[string]uint64) float64 {
	var total uint64
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return 1
	}
	return float64(weights[selftestSlowName]) / float64(total)
}

func (r *SelftestReport) result(algo string) *AlgoResult {
	for i := range r.Results {
		if r.Results[i].Algo == algo {
			return &r.Results[i]
		}
	}
	return nil
}

// selftestSlowName is the slow stub's backend name; the convergence gate
// watches its weight.
const selftestSlowName = "slow-c"

// startSkewedStubs starts the canonical selftest backend set: two fast, one
// slow — the skew shape of the paper's heterogeneous-cluster experiments.
func startSkewedStubs(opts SelftestOptions) ([]*StubBackend, error) {
	var stubs []*StubBackend
	for _, spec := range []struct {
		name    string
		latency time.Duration
	}{
		{"fast-a", opts.FastLatency},
		{"fast-b", opts.FastLatency},
		{selftestSlowName, opts.SlowLatency},
	} {
		s, err := NewStubBackend(spec.name, spec.latency)
		if err != nil {
			for _, prev := range stubs {
				prev.Close()
			}
			return nil, err
		}
		stubs = append(stubs, s)
	}
	return stubs, nil
}

// runAlgoPass boots a server with algo, offers open-loop load through the
// wall-clock load generator, drains, and summarises.
func runAlgoPass(algo string, opts SelftestOptions, stubs []*StubBackend) (*AlgoResult, error) {
	cfg := DefaultConfig()
	cfg.Listen = "127.0.0.1:0"
	cfg.Algo = algo
	cfg.ScrapeInterval = 500 * time.Millisecond
	cfg.ReconcileInterval = 500 * time.Millisecond
	cfg.Window = 2 * time.Second
	cfg.HealthInterval = 500 * time.Millisecond
	cfg.HealthTimeout = 250 * time.Millisecond
	cfg.DrainTimeout = 5 * time.Second
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.BackendConfigOf())
	}
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}

	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 128},
	}
	target := srv.URL() + "/"

	const bucketWidth = 250 * time.Millisecond
	loadWall := clock.NewWall()
	gen := loadgen.NewClock(loadWall, loadgen.Config{
		Rate:        loadgen.ConstantRate(opts.Rate),
		BucketWidth: bucketWidth,
		CatchUp:     true,
	}, func(done func(latency time.Duration, success bool)) error {
		go func() {
			start := time.Now()
			ok := false
			if resp, err := client.Get(target); err == nil {
				ok = resp.StatusCode < http.StatusInternalServerError
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			latency := time.Since(start)
			// The Recorder is single-threaded; re-enter through the load
			// generator's wall to serialize completions with arrivals.
			loadWall.Do(func() { done(latency, ok) })
		}()
		return nil
	})

	loadWall.Do(gen.Start)
	res := &AlgoResult{Algo: algo}
	passStart := time.Now()

	// Convergence gate: a controller pass starts measuring once the weight
	// table has actually pushed the slow backend below 1% of traffic (the
	// share where it leaves the p99 population), bounded by WarmUp. Fixed
	// settle times guess wrong under -race or one-core slowdowns; the gate
	// watches the thing the measurement depends on. Uncontrolled passes
	// (rr, failover) keep uniform weights forever, so they settle briefly
	// and measure.
	if algo == AlgoL3 || algo == AlgoC3 {
		deadline := passStart.Add(opts.WarmUp)
		for time.Now().Before(deadline) {
			if slowShare(srv.Router().Weights()) < 0.008 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		res.Converged = time.Since(passStart).Round(time.Millisecond)
	}
	time.Sleep(time.Second)

	// Measure over whole recorder buckets: samples are bucketed by request
	// start time, so the window holds exactly the picks made after m0.
	m0 := (loadWall.Now()/bucketWidth + 1) * bucketWidth
	time.Sleep(opts.Duration)
	stopAt := loadWall.Now()
	loadWall.Do(gen.Stop)
	// In-flight requests must record before the stats read: the slowest
	// possible straggler is one that picked the slow backend at stop time.
	time.Sleep(opts.SlowLatency + 500*time.Millisecond)

	res.Weights = srv.Router().Weights()
	loadWall.Do(func() {
		rec := gen.Recorder()
		res.Issued = gen.Issued()
		res.Errors = gen.IssueErrors()
		res.P50 = rec.WindowQuantile(0.50, m0, stopAt)
		res.P99 = rec.WindowQuantile(0.99, m0, stopAt)
		res.P999 = rec.WindowQuantile(0.999, m0, stopAt)
		res.SuccessRate = rec.SuccessRate()
		lo, hi := int(m0/bucketWidth), int(stopAt/bucketWidth)
		series := rec.RPSSeries()
		var sum float64
		for i := lo; i < hi && i < len(series); i++ {
			sum += series[i]
		}
		if hi > lo {
			res.AchievedRPS = sum / float64(hi-lo)
		}
	})
	res.Scrapes = srv.Control().Scrapes()
	res.Retries = srv.Handler().Retries()

	dropped, err := srv.ShutdownTimeout()
	loadWall.Stop()
	if err != nil {
		return nil, err
	}
	res.Dropped = dropped
	return res, nil
}

// MeasureProxyLayerAllocs measures the serve package's own per-request hot
// path — weighted pick, outcome recording, budget bookkeeping, status-writer
// pooling — isolated from net/http (whose per-request allocations belong to
// the socket layer and are reported separately in EXPERIMENTS.md). The
// acceptance bar is 0 allocs/op; the number is re-pinned by a test with
// testing.AllocsPerRun.
func MeasureProxyLayerAllocs() float64 {
	reg := metrics.NewRegistry()
	backends := make([]*Backend, 0, 3)
	for _, name := range []string{"a", "b", "c"} {
		b, err := newBackend(BackendConfig{Name: name, URL: "http://127.0.0.1:1"}, "api", reg, 5, time.Second)
		if err != nil {
			panic(err)
		}
		backends = append(backends, b)
	}
	router := NewRouter(backends)
	budget := newRetryBudget(0.2)
	tracker := newHedgeTracker(0.95, time.Millisecond)
	req, err := http.NewRequest(http.MethodGet, "http://127.0.0.1:1/", nil)
	if err != nil {
		panic(err)
	}
	req.Header.Set(HeaderDeadline, "250")
	op := func() {
		now := 42 * time.Millisecond
		budget.deposit()
		sw := acquireStatusWriter(nil)
		b := router.Pick(now)
		_ = deadlineBudget(req, 10*time.Second)
		_ = hedgeEligible(req)
		b.inflight.Inc()
		b.inflight.Dec()
		b.Record(now, 3*time.Millisecond, true)
		tracker.observe(3 * time.Millisecond)
		_ = tracker.hedgeAfter()
		releaseStatusWriter(sw)
	}
	return allocsPerRun(10000, op)
}

// allocsPerRun is testing.AllocsPerRun without importing package testing
// into the l3serve binary: pin to one OS thread's worth of parallelism,
// warm up once, then average mallocs over runs.
func allocsPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// BenchEntry is one BENCH_serve.json record — the serve-mode counterpart of
// the simulator's BENCH.json trajectory points.
type BenchEntry struct {
	Name        string  `json:"name"`
	Algo        string  `json:"algo"`
	RPS         float64 `json:"rps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	AllocsPerOp float64 `json:"proxy_layer_allocs_per_op"`
	Cores       int     `json:"gomaxprocs"`
	// NumCPU stamps the physical host the wall-clock numbers came from
	// (Cores is the GOMAXPROCS cap, which may be lower).
	NumCPU int `json:"num_cpu"`

	// Chaostest-only fields: set on serve_chaos_* records, absent on the
	// selftest trajectory entries.
	Fault      string  `json:"fault,omitempty"`
	TTRMs      float64 `json:"ttr_ms,omitempty"`
	Ejections  int64   `json:"breaker_ejections,omitempty"`
	FailStatic bool    `json:"failstatic,omitempty"`
	Recovered  bool    `json:"recovered,omitempty"`

	// Overload-scene fields: set on the serve_overload_* records — server-side
	// sheds per criticality tier and the longest admitted queue sojourn.
	ShedCritical  int64   `json:"shed_critical,omitempty"`
	ShedDefault   int64   `json:"shed_default,omitempty"`
	ShedSheddable int64   `json:"shed_sheddable,omitempty"`
	MaxQueueMs    float64 `json:"max_queue_ms,omitempty"`
}

// BenchEntries converts the report into BENCH_serve.json records.
func (r *SelftestReport) BenchEntries() []BenchEntry {
	entries := make([]BenchEntry, 0, len(r.Results))
	for _, res := range r.Results {
		entries = append(entries, BenchEntry{
			Name:        "serve_skewed_" + res.Algo,
			Algo:        res.Algo,
			RPS:         res.AchievedRPS,
			P50Ms:       float64(res.P50) / float64(time.Millisecond),
			P99Ms:       float64(res.P99) / float64(time.Millisecond),
			P999Ms:      float64(res.P999) / float64(time.Millisecond),
			AllocsPerOp: r.AllocsPerOp,
			Cores:       r.Cores,
			NumCPU:      r.NumCPU,
		})
	}
	return entries
}

// WriteBenchJSON writes the entries as indented JSON to path.
func WriteBenchJSON(path string, entries []BenchEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
