package serve

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"l3/internal/chaos"
	"l3/internal/clock"
	"l3/internal/loadgen"
)

// Chaostest is the serve-mode resilience harness: boot the proxy over
// chaos-capable stub backends, drive open-loop load, run a scripted fault
// schedule through chaos.WallRunner against the live process, and assert
// recovery — the breaker ejects a stalled backend within a bounded number of
// failures, windowed p99 re-converges after each fault, and a starved
// control plane engages (and later releases) fail-static. It is the
// wall-clock counterpart of the simulator's -chaos runs: same schedule
// grammar, real sockets, and the recovery numbers land in BENCH_serve.json
// next to the selftest trajectory.

// DefaultChaosSchedule is the canonical chaostest script: a stall (the
// hardest fault — accepted connections that never answer), a connection-reset
// burst, a control-plane scrape outage, a slow-loris drip, a latency ramp and
// an availability flap, in sequence with clean air between them so each
// fault's recovery is measured in isolation.
const DefaultChaosSchedule = "stall@3s+4s:chaos-a; reset@10s+3s:chaos-b; scrapedrop@16s+4s; " +
	"slowloris@23s+4s:chaos-c/50ms; ramp@30s+4s:chaos-a/400ms; bflap@37s+4s:chaos-b/500ms"

// QuickChaosSchedule compresses the same six faults for CI smoke runs.
const QuickChaosSchedule = "stall@2s+3s:chaos-a; reset@7s+2s:chaos-b; scrapedrop@11s+3s; " +
	"slowloris@16s+3s:chaos-c/20ms; ramp@21s+3s:chaos-a/300ms; bflap@26s+3s:chaos-b/400ms"

// ChaostestOptions parameterise one chaostest run.
type ChaostestOptions struct {
	Rate        float64       // offered load (default 150 rps)
	Schedule    string        // fault schedule (default DefaultChaosSchedule)
	Quick       bool          // default to the compressed schedule
	BaseLatency time.Duration // healthy stub latency (default 5ms)
	Tail        time.Duration // observation window after the last heal (default 3s)
}

func (o ChaostestOptions) withDefaults() ChaostestOptions {
	if o.Rate <= 0 {
		o.Rate = 150
	}
	if o.Schedule == "" {
		if o.Quick {
			o.Schedule = QuickChaosSchedule
		} else {
			o.Schedule = DefaultChaosSchedule
		}
	}
	if o.BaseLatency <= 0 {
		o.BaseLatency = 5 * time.Millisecond
	}
	if o.Tail <= 0 {
		o.Tail = 3 * time.Second
	}
	return o
}

// FaultResult is one scheduled fault's observed recovery.
type FaultResult struct {
	Fault      string        `json:"fault"`
	Backend    string        `json:"backend,omitempty"`
	InjectedAt time.Duration `json:"injected_at_ns"`
	HealedAt   time.Duration `json:"healed_at_ns"`
	// Ejections counts breaker opens of the target backend across the fault
	// window; FailsToEject is the target's failure count between injection
	// and the first ejection — the "breaker ejects within N responses" bound.
	Ejections    int64 `json:"breaker_ejections"`
	FailsToEject int64 `json:"fails_to_eject,omitempty"`
	// FailStatic reports whether the control plane engaged fail-static
	// (scrapedrop faults only).
	FailStatic bool `json:"failstatic_engaged,omitempty"`
	// TTR is the time-to-recover: injection until the first full recovery
	// window ran at converged p99 (data-plane faults), or heal until
	// fail-static disengaged (scrapedrop).
	TTR       time.Duration `json:"ttr_ns"`
	Recovered bool          `json:"recovered"`
	// WindowP50/P99/P999 are the post-recovery window's latency quantiles.
	WindowP50  time.Duration `json:"window_p50_ns"`
	WindowP99  time.Duration `json:"window_p99_ns"`
	WindowP999 time.Duration `json:"window_p999_ns"`
}

// ChaosReport is the full chaostest outcome.
type ChaosReport struct {
	Schedule    string        `json:"schedule"`
	Results     []FaultResult `json:"results"`
	BaselineP99 time.Duration `json:"baseline_p99_ns"`
	Issued      uint64        `json:"issued"`
	AchievedRPS float64       `json:"achieved_rps"`
	SuccessRate float64       `json:"success_rate"`
	Retries     int64         `json:"retries"`
	Hedges      int64         `json:"hedges"`
	Panics      int64         `json:"panics"`
	Dropped     int64         `json:"dropped"`
	AllocsPerOp float64       `json:"proxy_layer_allocs_per_op"`
	Cores       int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
}

// chaosBackendNames is the chaostest stub fleet; schedules address these.
var chaosBackendNames = []string{"chaos-a", "chaos-b", "chaos-c"}

// RunChaostest runs the schedule against a live proxy and asserts recovery.
// The report is returned even when assertions fail, so callers can inspect
// what the run actually measured alongside the error.
func RunChaostest(opts ChaostestOptions, out io.Writer) (*ChaosReport, error) {
	opts = opts.withDefaults()
	sched, err := chaos.ParseSchedule(opts.Schedule)
	if err != nil {
		return nil, fmt.Errorf("chaostest: %w", err)
	}
	events := append([]chaos.Event(nil), sched.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	if len(events) == 0 {
		return nil, fmt.Errorf("chaostest: empty schedule")
	}
	lastHeal := time.Duration(0)
	for _, ev := range events {
		if end := ev.At + ev.Duration; end > lastHeal {
			lastHeal = end
		}
	}

	stubs := make([]*ChaosStub, 0, len(chaosBackendNames))
	defer func() {
		for _, s := range stubs {
			s.Close()
		}
	}()
	for _, name := range chaosBackendNames {
		s, err := NewChaosStub(name, opts.BaseLatency)
		if err != nil {
			return nil, err
		}
		stubs = append(stubs, s)
	}

	// Fast control loops so faults and recoveries fit a CI-sized run; a
	// tight per-try timeout so a stalled attempt fails over quickly; health
	// probing slowed down so the breaker — the component under test — is
	// what ejects, not the prober.
	cfg := DefaultConfig()
	cfg.Listen = "127.0.0.1:0"
	cfg.Algo = AlgoL3
	cfg.ScrapeInterval = 500 * time.Millisecond
	cfg.ReconcileInterval = 500 * time.Millisecond
	cfg.Window = 2 * time.Second
	cfg.HealthInterval = 2 * time.Second
	cfg.HealthTimeout = 500 * time.Millisecond
	cfg.RequestTimeout = 2 * time.Second
	cfg.PerTryTimeout = 250 * time.Millisecond
	cfg.DrainTimeout = 5 * time.Second
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.BackendConfigOf())
	}
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	cfg = srv.cfg // pick up derived fields (StaleAfter, ScrapeTimeout)
	srv.ScrapeWait(1, 5*time.Second)

	byName := make(map[string]*Backend, len(srv.backends))
	for _, b := range srv.backends {
		byName[b.Name] = b
	}

	report := &ChaosReport{
		Schedule: opts.Schedule,
		Cores:    runtime.GOMAXPROCS(0),
		NumCPU:   runtime.NumCPU(),
	}
	fmt.Fprintf(out, "chaostest: %d chaos stubs at %v, %v rps, schedule %q, GOMAXPROCS=%d\n",
		len(stubs), opts.BaseLatency, opts.Rate, opts.Schedule, report.Cores)

	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 128},
	}
	target := srv.URL() + "/"

	const bucketWidth = 250 * time.Millisecond
	loadWall := clock.NewWall()
	gen := loadgen.NewClock(loadWall, loadgen.Config{
		Rate:        loadgen.ConstantRate(opts.Rate),
		BucketWidth: bucketWidth,
		CatchUp:     true,
	}, func(done func(latency time.Duration, success bool)) error {
		go func() {
			start := time.Now()
			ok := false
			if resp, err := client.Get(target); err == nil {
				ok = resp.StatusCode < http.StatusInternalServerError
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			latency := time.Since(start)
			loadWall.Do(func() { done(latency, ok) })
		}()
		return nil
	})

	// The fault schedule and the load share one wall clock, so event times
	// and recorder buckets are on the same timeline.
	targets := chaos.WallTargets{
		Backends: make(map[string]chaos.WallBackend, len(stubs)),
		Scrapers: []chaos.ScrapeGate{srv.Control()},
	}
	for _, s := range stubs {
		targets.Backends[s.Name] = s
	}
	runner := chaos.NewWallRunner(loadWall, chaos.Schedule{Events: sched.Events}, targets, 0)
	loadWall.Do(gen.Start)
	if err := runner.Start(); err != nil {
		srv.ShutdownTimeout()
		loadWall.Stop()
		return nil, fmt.Errorf("chaostest: %w", err)
	}

	// Live observation: each fault window is watched for the signal only the
	// running process can show — breaker ejections (and the failure count it
	// took to trip), fail-static engagement and release.
	for _, ev := range events {
		fr := FaultResult{
			Fault:      chaosKindName(ev.Kind),
			Backend:    ev.Backend,
			InjectedAt: ev.At,
			HealedAt:   ev.At + ev.Duration,
		}
		switch ev.Kind {
		case chaos.ScrapeDrop:
			waitWall(loadWall, ev.At)
			fr.FailStatic = pollWall(loadWall, fr.HealedAt, srv.Control().FailStaticActive)
			waitWall(loadWall, fr.HealedAt)
			healAt := loadWall.Now()
			deadline := fr.HealedAt + 5*cfg.ScrapeInterval + 2*time.Second
			if pollWall(loadWall, deadline, func() bool { return !srv.Control().FailStaticActive() }) && fr.FailStatic {
				fr.TTR = loadWall.Now() - healAt
				fr.Recovered = true
			}
		default:
			b := byName[ev.Backend]
			ejBefore := int64(b.ejections.Value())
			failBefore := int64(b.failTotal.Value())
			waitWall(loadWall, ev.At)
			if pollWall(loadWall, fr.HealedAt, func() bool { return int64(b.ejections.Value()) > ejBefore }) {
				fr.FailsToEject = int64(b.failTotal.Value()) - failBefore
			}
			waitWall(loadWall, fr.HealedAt)
			fr.Ejections = int64(b.ejections.Value()) - ejBefore
		}
		report.Results = append(report.Results, fr)
	}

	waitWall(loadWall, lastHeal+opts.Tail)
	stopAt := loadWall.Now()
	loadWall.Do(gen.Stop)
	// Stragglers: the slowest possible in-flight request rides the full
	// request budget before it records.
	time.Sleep(cfg.RequestTimeout + 500*time.Millisecond)
	runner.Stop()

	// Post-hoc recovery scan over the recorder's time-bucketed quantiles:
	// for each data-plane fault, find the first full window after injection
	// that ran at converged p99. TTR counts from injection — the breaker
	// ejecting the bad backend DURING the fault is the recovery story, not
	// just the heal.
	const recoveryWindow = time.Second
	loadWall.Do(func() {
		rec := gen.Recorder()
		report.Issued = gen.Issued()
		report.SuccessRate = rec.SuccessRate()
		report.AchievedRPS = float64(rec.Count()) / stopAt.Seconds()
		report.BaselineP99 = rec.WindowQuantile(0.99, bucketWidth, events[0].At)
		thresh := 4 * report.BaselineP99
		if thresh < 50*time.Millisecond {
			thresh = 50 * time.Millisecond
		}
		for i := range report.Results {
			fr := &report.Results[i]
			bound := stopAt
			if i+1 < len(events) && events[i+1].At < bound {
				bound = events[i+1].At
			}
			if fr.Fault == "scrapedrop" {
				// Control-plane outage: the data plane keeps serving; report
				// the fault window's own quantiles as proof.
				fr.WindowP50 = rec.WindowQuantile(0.50, fr.InjectedAt, bound)
				fr.WindowP99 = rec.WindowQuantile(0.99, fr.InjectedAt, bound)
				fr.WindowP999 = rec.WindowQuantile(0.999, fr.InjectedAt, bound)
				continue
			}
			start := ((fr.InjectedAt + bucketWidth - 1) / bucketWidth) * bucketWidth
			for t := start; t+recoveryWindow <= bound; t += bucketWidth {
				p99 := rec.WindowQuantile(0.99, t, t+recoveryWindow)
				if p99 <= 0 || p99 >= thresh {
					continue
				}
				fr.Recovered = true
				fr.TTR = t + recoveryWindow - fr.InjectedAt
				fr.WindowP50 = rec.WindowQuantile(0.50, t, t+recoveryWindow)
				fr.WindowP99 = p99
				fr.WindowP999 = rec.WindowQuantile(0.999, t, t+recoveryWindow)
				break
			}
		}
	})
	report.Retries = srv.Handler().Retries()
	report.Hedges = srv.Handler().Hedges()
	report.Panics = srv.Handler().Panics()
	report.AllocsPerOp = MeasureProxyLayerAllocs()

	dropped, err := srv.ShutdownTimeout()
	loadWall.Stop()
	if err != nil {
		return report, err
	}
	report.Dropped = dropped

	for _, fr := range report.Results {
		fmt.Fprintf(out, "  %-10s %-8s inject=%v heal=%v ejections=%d fails-to-eject=%d failstatic=%v recovered=%v ttr=%v window-p99=%v\n",
			fr.Fault, fr.Backend, fr.InjectedAt, fr.HealedAt, fr.Ejections, fr.FailsToEject,
			fr.FailStatic, fr.Recovered, fr.TTR.Round(time.Millisecond), fr.WindowP99.Round(time.Millisecond))
	}
	fmt.Fprintf(out, "  overall: issued=%d rps=%.1f ok=%.4f baseline-p99=%v retries=%d hedges=%d panics=%d dropped=%d\n",
		report.Issued, report.AchievedRPS, report.SuccessRate, report.BaselineP99.Round(time.Millisecond),
		report.Retries, report.Hedges, report.Panics, report.Dropped)

	if fails := report.assertions(cfg); len(fails) > 0 {
		return report, fmt.Errorf("chaostest: %s", strings.Join(fails, "; "))
	}
	fmt.Fprintln(out, "chaostest: all recovery assertions held")
	return report, nil
}

// assertions is the chaostest acceptance bar; every failed clause is
// reported, not just the first.
func (r *ChaosReport) assertions(cfg Config) []string {
	var fails []string
	// The breaker must eject within a bounded number of failed responses:
	// the threshold itself, times slack for requests already in flight when
	// the circuit opened and for the observation poll's granularity.
	ejectBound := int64(5 * cfg.BreakerThreshold)
	for _, fr := range r.Results {
		switch fr.Fault {
		case "stall", "reset", "bflap":
			if fr.Ejections == 0 {
				fails = append(fails, fmt.Sprintf("%s(%s): breaker never ejected", fr.Fault, fr.Backend))
			} else if fr.FailsToEject > ejectBound {
				fails = append(fails, fmt.Sprintf("%s(%s): %d failures before first ejection, bound %d",
					fr.Fault, fr.Backend, fr.FailsToEject, ejectBound))
			}
			if !fr.Recovered {
				fails = append(fails, fmt.Sprintf("%s(%s): p99 never re-converged", fr.Fault, fr.Backend))
			}
		case "scrapedrop":
			if !fr.FailStatic {
				fails = append(fails, "scrapedrop: fail-static never engaged")
			}
			if !fr.Recovered {
				fails = append(fails, "scrapedrop: fail-static never released after heal")
			}
		default:
			if !fr.Recovered {
				fails = append(fails, fmt.Sprintf("%s(%s): p99 never re-converged", fr.Fault, fr.Backend))
			}
		}
	}
	if r.SuccessRate < 0.95 {
		fails = append(fails, fmt.Sprintf("success rate %.4f under chaos, want >= 0.95", r.SuccessRate))
	}
	if r.Dropped > 0 {
		fails = append(fails, fmt.Sprintf("%d requests dropped at drain", r.Dropped))
	}
	return fails
}

// BenchEntries converts the report into BENCH_serve.json records, one per
// fault, alongside the selftest's trajectory entries.
func (r *ChaosReport) BenchEntries() []BenchEntry {
	entries := make([]BenchEntry, 0, len(r.Results))
	seen := map[string]int{}
	for _, fr := range r.Results {
		name := "serve_chaos_" + fr.Fault
		seen[name]++
		if n := seen[name]; n > 1 {
			name = fmt.Sprintf("%s_%d", name, n)
		}
		entries = append(entries, BenchEntry{
			Name:        name,
			Algo:        AlgoL3,
			RPS:         r.AchievedRPS,
			P50Ms:       float64(fr.WindowP50) / float64(time.Millisecond),
			P99Ms:       float64(fr.WindowP99) / float64(time.Millisecond),
			P999Ms:      float64(fr.WindowP999) / float64(time.Millisecond),
			AllocsPerOp: r.AllocsPerOp,
			Cores:       r.Cores,
			NumCPU:      r.NumCPU,
			Fault:       fr.Fault,
			TTRMs:       float64(fr.TTR) / float64(time.Millisecond),
			Ejections:   fr.Ejections,
			FailStatic:  fr.FailStatic,
			Recovered:   fr.Recovered,
		})
	}
	return entries
}

// chaosKindName names a kind without reaching into the chaos package's
// unexported grammar table.
func chaosKindName(k chaos.Kind) string {
	switch k {
	case chaos.Stall:
		return "stall"
	case chaos.ConnReset:
		return "reset"
	case chaos.SlowLoris:
		return "slowloris"
	case chaos.ErrorBurst:
		return "errorburst"
	case chaos.LatencyRamp:
		return "ramp"
	case chaos.BackendFlap:
		return "bflap"
	case chaos.ScrapeDrop:
		return "scrapedrop"
	case chaos.Garbage:
		return "garbage"
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// waitWall sleeps until the wall clock reaches t.
func waitWall(w *clock.Wall, t time.Duration) {
	for w.Now() < t {
		time.Sleep(5 * time.Millisecond)
	}
}

// pollWall polls cond until it holds or the wall clock reaches deadline.
func pollWall(w *clock.Wall, deadline time.Duration, cond func() bool) bool {
	for {
		if cond() {
			return true
		}
		if w.Now() >= deadline {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
