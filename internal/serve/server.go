package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"l3/internal/clock"
	"l3/internal/metrics"
	"l3/internal/overload"
)

// Server assembles the serve mode: data plane (Router + proxy handler on
// real sockets), control plane (control.go on a clock.Wall), and the
// operational endpoints (/metrics, /healthz, /debug/pprof).
type Server struct {
	cfg  Config
	wall *clock.Wall

	// dataReg holds the data plane's mesh-schema metrics (what the control
	// plane scrapes and steers from); ctrlReg holds the control plane's own
	// self-metrics (guard verdicts, reconcile counters, health transitions).
	// Both are exposed on /metrics.
	dataReg *metrics.Registry
	ctrlReg *metrics.Registry

	backends []*Backend
	router   *Router
	handler  *proxyHandler
	control  *control

	// admitter is the overload-control gate ahead of backend pick (nil when
	// cfg.Overload is empty/off); admMetrics are its /metrics handles.
	admitter   *overload.WallAdmitter
	admMetrics *admissionMetrics

	// transport is the one upstream pool every backend ReverseProxy and the
	// hedge path share; Shutdown closes its idle connections.
	transport *http.Transport

	listener net.Listener
	httpSrv  *http.Server
	serveErr chan error
}

// NewServer builds a stopped server from a validated config. Call Start to
// listen and arm the control plane.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDerived()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		wall:     clock.NewWall(),
		dataReg:  metrics.NewRegistry(),
		ctrlReg:  metrics.NewRegistry(),
		serveErr: make(chan error, 1),
	}
	transport := newUpstreamTransport(cfg)
	s.transport = transport
	for i, bc := range cfg.Backends {
		b, err := newBackend(bc, cfg.Service, s.dataReg, cfg.BreakerThreshold, cfg.BreakerWindow)
		if err != nil {
			return nil, fmt.Errorf("serve: backend %s: %w", bc.Name, err)
		}
		b.idx = i
		b.rp.Transport = transport
		s.backends = append(s.backends, b)
	}
	s.router = NewRouter(s.backends)
	if pol, err := cfg.OverloadPolicy(); err != nil {
		return nil, err // unreachable after Validate; defensive
	} else if pol.Enabled() {
		s.admitter = overload.NewWallAdmitter(pol, len(s.backends), time.Now())
		s.admMetrics = newAdmissionMetrics(s.dataReg, cfg.Service)
	}
	s.handler = newProxyHandler(s.router, s.wall.Now, cfg, transport, s.admitter)
	return s, nil
}

// Start binds the listener, serves in a background goroutine, and arms the
// control plane. With cfg.Listen ending in ":0" the kernel picks the port;
// Addr reports the bound address.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Listen)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Listen, err)
	}
	s.listener = ln

	// The control plane scrapes through the real listener, same path a
	// Prometheus would take. Built before the listener serves so the
	// endpoint handlers below read s.control without racing the assignment.
	metricsURL := fmt.Sprintf("http://%s/metrics", ln.Addr().String())
	s.control = newControl(s.cfg, s.wall, s.router, s.backends, s.ctrlReg, metricsURL)

	mux := http.NewServeMux()
	// The /metrics handler reads the registries directly — it must not
	// enter the wall clock's mutex, because the control plane's own scrape
	// GETs this endpoint from inside a wall callback.
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Fail-static is degraded-but-serving: the proxy still answers, so
		// the health check stays green with the mode on the wire for
		// operators (and chaostest) to see.
		w.WriteHeader(http.StatusOK)
		if s.control.FailStaticActive() {
			fmt.Fprintln(w, "degraded: fail-static (control plane stale)")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", s.handler)

	s.httpSrv = &http.Server{Handler: mux}
	go func() {
		err := s.httpSrv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			s.serveErr <- err
		}
		close(s.serveErr)
	}()

	// start touches single-threaded control state from this goroutine; no
	// wall callbacks can be pending yet because nothing has been scheduled.
	s.control.start(s.router)
	return nil
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// The admission layer's counters live behind the admitter's own mutex;
	// each scrape folds a snapshot into the registry so /metrics (and the
	// control plane's self-scrape) sees them without hot-path registry work.
	if s.admitter != nil {
		s.admMetrics.sync(s.admitter.Stats())
	}
	if err := s.dataReg.WritePrometheus(w); err != nil {
		return
	}
	s.ctrlReg.WritePrometheus(w)
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.listener == nil {
		return s.cfg.Listen
	}
	return s.listener.Addr().String()
}

// URL returns the server's base URL (valid after Start).
func (s *Server) URL() string { return "http://" + s.Addr() }

// Handler exposes the proxy handler (tests, drain accounting).
func (s *Server) Handler() *proxyHandler { return s.handler }

// Router exposes the routing table (tests, selftest reporting).
func (s *Server) Router() *Router { return s.router }

// Control exposes the control plane (tests, selftest reporting).
func (s *Server) Control() *control { return s.control }

// Admitter exposes the overload-control gate (nil when disabled).
func (s *Server) Admitter() *overload.WallAdmitter { return s.admitter }

// DataRegistry exposes the data-plane metric registry.
func (s *Server) DataRegistry() *metrics.Registry { return s.dataReg }

// Shutdown drains gracefully: stop admitting proxy requests, let in-flight
// requests finish (bounded by the context), halt the control loops, stop the
// wall clock. It returns the number of requests still in flight when the
// drain gave up — zero on a clean drain.
func (s *Server) Shutdown(ctx context.Context) (dropped int64, err error) {
	if s.httpSrv == nil {
		return 0, nil
	}
	s.handler.setDraining()
	// Flush the admission queue before waiting on connections: every parked
	// waiter wakes with ShedDraining, answers 503 and releases its
	// connection, so a loaded admission queue cannot stall the drain.
	if s.admitter != nil {
		s.admitter.DrainFlush()
	}
	// Control loops stop first so no callback re-arms after the wall stops;
	// the scrape GET may still be in flight — Shutdown below waits for it.
	s.wall.Do(s.control.stop)
	err = s.httpSrv.Shutdown(ctx)
	dropped = s.handler.Inflight()
	s.wall.Stop()
	// Release pooled upstream sockets. Requests the drain abandoned may
	// still finish later and re-pool their connections; CloseIdleConnections
	// is safe to call again (see the drain test's settle loop).
	s.transport.CloseIdleConnections()
	if serveErr := <-s.serveErr; serveErr != nil && err == nil {
		err = serveErr
	}
	return dropped, err
}

// CloseIdleConnections closes the upstream transport's pooled keep-alive
// connections. Shutdown calls it once; callers that let abandoned in-flight
// work finish after a timed-out drain can call it again to flush the
// connections that work returned to the pool.
func (s *Server) CloseIdleConnections() { s.transport.CloseIdleConnections() }

// ShutdownTimeout is Shutdown with the configured drain deadline.
func (s *Server) ShutdownTimeout() (int64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// WaitErr returns the terminal serve error, if the listener failed.
func (s *Server) WaitErr() <-chan error { return s.serveErr }

// ScrapeWait blocks until the control plane has completed at least n
// successful self-scrapes or the timeout passes (tests and selftest).
func (s *Server) ScrapeWait(n int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.control != nil && s.control.Scrapes() >= n {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}
