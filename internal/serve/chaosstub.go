package serve

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// ChaosStub is a stub backend whose misbehaviour is scriptable: it
// implements chaos.WallBackend so a chaos.WallRunner can stall it, reset its
// connections, drip bodies slow-loris style, burst 5xx errors, and ramp its
// latency on a schedule. All fault switches are atomics — the runner flips
// them from clock callbacks while handlers read them mid-request — and every
// fault path watches the switch so a heal releases requests already caught
// in it.
type ChaosStub struct {
	Name string

	baseLatencyNs atomic.Int64
	extraNs       atomic.Int64
	stalled       atomic.Bool
	resetting     atomic.Bool
	slowLorisNs   atomic.Int64
	// errorRateMilli holds the 5xx fraction in thousandths; failures are
	// assigned deterministically by sequence number so short chaostest
	// windows see exactly the configured rate.
	errorRateMilli atomic.Int64
	requests       atomic.Int64
	resets         atomic.Int64

	listener net.Listener
	srv      *http.Server
	done     chan struct{}
}

// NewChaosStub starts a chaos-capable stub on an ephemeral 127.0.0.1 port
// with the given healthy-path latency.
func NewChaosStub(name string, latency time.Duration) (*ChaosStub, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &ChaosStub{Name: name, listener: ln, done: make(chan struct{})}
	s.baseLatencyNs.Store(int64(latency))
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Health probes share the backend's fate: a stalled or resetting
		// backend can't answer its health check either.
		if s.resetting.Load() {
			s.reset(w)
			return
		}
		if s.stalled.Load() {
			s.stallUntilHealed(r)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/", s.serve)
	s.srv = &http.Server{Handler: mux}
	go func() {
		s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

func (s *ChaosStub) serve(w http.ResponseWriter, r *http.Request) {
	n := s.requests.Add(1)
	if s.resetting.Load() {
		s.reset(w)
		return
	}
	if s.stalled.Load() {
		s.stallUntilHealed(r)
		return
	}
	if d := time.Duration(s.baseLatencyNs.Load() + s.extraNs.Load()); d > 0 {
		time.Sleep(d)
	}
	if rate := s.errorRateMilli.Load(); rate > 0 {
		// Bresenham over the sequence number: exactly rate‰ of requests fail,
		// evenly interleaved, at any rate in (0,1].
		if (n*rate)%1000 < rate {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, "chaos 5xx burst")
			return
		}
	}
	body := fmt.Sprintf("ok from %s\n", s.Name)
	if drip := time.Duration(s.slowLorisNs.Load()); drip > 0 {
		s.dripBody(w, r, body, drip)
		return
	}
	fmt.Fprint(w, body)
}

// reset tears the TCP connection down with an RST (SO_LINGER 0) so the
// proxy sees "connection reset by peer", not a clean close.
func (s *ChaosStub) reset(w http.ResponseWriter) {
	s.resets.Add(1)
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos stub: response writer is not a hijacker")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// stallUntilHealed holds the request open without writing a byte: the
// connection is accepted and the request parsed, but no response comes until
// the fault heals (polled) or the client gives up.
func (s *ChaosStub) stallUntilHealed(r *http.Request) {
	for s.stalled.Load() {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// dripBody writes the response one byte per interval, flushing each, until
// the body is done, the fault heals (rest written at once), or the client
// hangs up.
func (s *ChaosStub) dripBody(w http.ResponseWriter, r *http.Request, body string, drip time.Duration) {
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	for i := 0; i < len(body); i++ {
		if time.Duration(s.slowLorisNs.Load()) == 0 {
			fmt.Fprint(w, body[i:])
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(drip):
		}
		fmt.Fprint(w, body[i:i+1])
		if fl != nil {
			fl.Flush()
		}
	}
}

// SetStalled, SetResetting, SetSlowLoris, SetErrorRate and SetExtraLatency
// implement chaos.WallBackend.
func (s *ChaosStub) SetStalled(on bool)   { s.stalled.Store(on) }
func (s *ChaosStub) SetResetting(on bool) { s.resetting.Store(on) }
func (s *ChaosStub) SetSlowLoris(interval time.Duration) {
	s.slowLorisNs.Store(int64(interval))
}
func (s *ChaosStub) SetErrorRate(rate float64) {
	if math.IsNaN(rate) || rate < 0 {
		rate = 0
	}
	s.errorRateMilli.Store(int64(rate * 1000))
}
func (s *ChaosStub) SetExtraLatency(extra time.Duration) {
	s.extraNs.Store(int64(extra))
}

// SetLatency changes the healthy-path latency.
func (s *ChaosStub) SetLatency(d time.Duration) { s.baseLatencyNs.Store(int64(d)) }

// URL returns the stub's base URL.
func (s *ChaosStub) URL() string { return "http://" + s.listener.Addr().String() }

// Requests returns proxied requests served (health probes excluded).
func (s *ChaosStub) Requests() int64 { return s.requests.Load() }

// Resets returns connections torn down with an RST.
func (s *ChaosStub) Resets() int64 { return s.resets.Load() }

// Close stops the stub immediately, releasing any stalled handlers.
func (s *ChaosStub) Close() {
	s.stalled.Store(false)
	s.srv.Close()
	<-s.done
}

// BackendConfigOf returns the serve config entry pointing at the stub.
func (s *ChaosStub) BackendConfigOf() BackendConfig {
	return BackendConfig{Name: s.Name, URL: s.URL()}
}
