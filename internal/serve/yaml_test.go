package serve

import (
	"strings"
	"testing"
)

func TestParseYAMLMappingAndSequence(t *testing.T) {
	src := `
# top comment
listen: 127.0.0.1:9000
service: "quoted api"   # trailing comment
backends:
  - name: a
    url: http://10.0.0.1:8001
  - name: b
    url: http://10.0.0.2:8001
nested:
  inner: 5s
  flag: true
plain_list:
  - one
  - "two # not a comment"
`
	root, err := parseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.child("listen").scalar; got != "127.0.0.1:9000" {
		t.Fatalf("listen = %q", got)
	}
	if got := root.child("service").scalar; got != "quoted api" {
		t.Fatalf("service = %q (quotes should strip, comment should drop)", got)
	}
	b := root.child("backends")
	if !b.isSequence() || len(b.sequence) != 2 {
		t.Fatalf("backends = %+v, want 2-item sequence", b)
	}
	if got := b.sequence[1].child("url").scalar; got != "http://10.0.0.2:8001" {
		t.Fatalf("backend[1].url = %q (the URL colon must not split the key)", got)
	}
	if got := root.child("nested").child("inner").scalar; got != "5s" {
		t.Fatalf("nested.inner = %q", got)
	}
	pl := root.child("plain_list")
	if len(pl.sequence) != 2 || pl.sequence[1].scalar != "two # not a comment" {
		t.Fatalf("plain_list = %+v (quoted # is content)", pl)
	}
	if want := []string{"listen", "service", "backends", "nested", "plain_list"}; strings.Join(root.order, ",") != strings.Join(want, ",") {
		t.Fatalf("key order = %v, want %v", root.order, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"tab indent", "a:\n\tb: 1", "tab"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"bad indent", "a: 1\n  b: 2", "indent"},
		{"no colon", "just words", "key: value"},
		{"mixed seq", "a:\n  - one\n  two: 3", "sequence item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML(tc.src)
			if err == nil {
				t.Fatalf("parseYAML(%q) succeeded, want error about %q", tc.src, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error %q does not carry a line number", err)
			}
		})
	}
}

func TestParseYAMLEmptyDocument(t *testing.T) {
	root, err := parseYAML("\n# only comments\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if !root.isMapping() || len(root.mapping) != 0 {
		t.Fatalf("empty doc = %+v, want empty mapping", root)
	}
}

func TestUnquoteScalarEscapes(t *testing.T) {
	if got := unquoteScalar(`"a\"b\\c\nd"`); got != "a\"b\\c\nd" {
		t.Fatalf("unquote = %q", got)
	}
	if got := unquoteScalar(`plain`); got != "plain" {
		t.Fatalf("plain = %q", got)
	}
}
